/**
 * @file
 * `fpraker` — the experiment multiplexer. One binary drives every
 * registered figure/table/extension experiment:
 *
 *   fpraker list
 *   fpraker run fig11 --threads=8 --json=fig11.json
 *   fpraker run --all --json-dir=results
 *
 * The per-figure binaries in bench/ are thin shims over the same
 * registry; see docs/API.md for the Session/Registry/Result tour.
 */

#include "api/driver.h"

int
main(int argc, char **argv)
{
    return fpraker::api::cliMain(argc, argv);
}
