/**
 * @file
 * `fprakerd` — the persistent simulation daemon. Serves experiment
 * jobs over a Unix-domain socket with a shared SimEngine and a
 * content-addressed result cache:
 *
 *   fprakerd --socket=/tmp/fpraker.sock --threads=8 --workers=4 \
 *            --cache-bytes=67108864 --cache-dir=/var/cache/fpraker
 *
 * `fpraker serve` is the same entry point; `fpraker submit/stats/
 * shutdown` are the clients. docs/SERVING.md documents the protocol.
 */

#include "serve/serve_cli.h"

int
main(int argc, char **argv)
{
    return fpraker::serve::serveMain(argc, argv, 1);
}
