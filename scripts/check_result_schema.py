#!/usr/bin/env python3
"""Validate fpraker-result-v1 JSON documents.

Every document the new experiment API emits (``fpraker run <id>
--json=...`` / ``--json-dir=...`` and the BENCH_PR<N>.json trajectory
files) must satisfy this schema; CI runs the script over the output of
``fpraker run --all``.

    scripts/check_result_schema.py result.json [more.json ...]

Exit status: 0 when every document validates, 1 otherwise.
"""

import json
import re
import sys

SCHEMA = "fpraker-result-v1"
HEX16 = re.compile(r"^[0-9a-f]{16}$")


def _fail(path, errors, message):
    errors.append(f"{path}: {message}")


def _is_scalar(value):
    return isinstance(value, (int, float, str, bool)) or value is None


def validate(path, doc, errors):
    n0 = len(errors)
    if not isinstance(doc, dict):
        _fail(path, errors, "top level is not an object")
        return False

    if doc.get("schema") != SCHEMA:
        _fail(path, errors, f"schema != {SCHEMA!r}: {doc.get('schema')!r}")

    for key in ("experiment", "title", "expectation"):
        if not isinstance(doc.get(key), str) or not doc.get(key):
            _fail(path, errors, f"missing/empty string field {key!r}")
    if not isinstance(doc.get("ok"), bool):
        _fail(path, errors, "missing boolean field 'ok'")

    fingerprint = doc.get("fingerprint")
    if not isinstance(fingerprint, str) or not HEX16.match(fingerprint):
        _fail(path, errors,
              f"fingerprint not 16 hex chars: {fingerprint!r}")

    prov = doc.get("provenance")
    if not isinstance(prov, dict):
        _fail(path, errors, "missing object field 'provenance'")
    else:
        digest = prov.get("config_digest")
        if not isinstance(digest, str) or not (
                digest == "" or HEX16.match(digest)):
            _fail(path, errors,
                  f"provenance.config_digest not 16 hex chars: {digest!r}")
        threads = prov.get("threads")
        if not isinstance(threads, int) or isinstance(threads, bool) \
                or threads < 1:
            _fail(path, errors,
                  f"provenance.threads not a positive int: {threads!r}")
        steps = prov.get("sample_steps")
        if not isinstance(steps, int) or isinstance(steps, bool) \
                or steps < 0:
            _fail(path, errors,
                  f"provenance.sample_steps invalid: {steps!r}")
        simd = prov.get("simd_level")
        if simd not in ("scalar", "sse2", "avx2", "avx512"):
            _fail(path, errors,
                  f"provenance.simd_level not a dispatch tier: {simd!r}")
        variants = prov.get("variants")
        if not isinstance(variants, list) or not all(
                isinstance(v, str) for v in variants):
            _fail(path, errors, "provenance.variants not a string list")
        cached = prov.get("cached")
        if not isinstance(cached, bool):
            _fail(path, errors,
                  f"provenance.cached not a boolean: {cached!r}")
        # Optional: only present when the serving layer completed the
        # job past its deadline (never on cached copies).
        if "deadline_overrun_ms" in prov:
            overrun = prov["deadline_overrun_ms"]
            if not isinstance(overrun, int) or isinstance(overrun, bool) \
                    or overrun < 1:
                _fail(path, errors,
                      "provenance.deadline_overrun_ms not a positive "
                      f"int: {overrun!r}")
        # Optional: only when the experiment opted into simulation-memo
        # provenance; the three fields travel together.
        if "memo_mode" in prov or "memo_hits" in prov \
                or "memo_misses" in prov:
            mode = prov.get("memo_mode")
            if mode not in ("on", "off"):
                _fail(path, errors,
                      f"provenance.memo_mode not on/off: {mode!r}")
            for key in ("memo_hits", "memo_misses"):
                count = prov.get(key)
                if not isinstance(count, int) \
                        or isinstance(count, bool) or count < 0:
                    _fail(path, errors,
                          f"provenance.{key} not a non-negative int: "
                          f"{count!r}")

    scalars = doc.get("scalars")
    if not isinstance(scalars, dict):
        _fail(path, errors, "missing object field 'scalars'")
    else:
        for key, value in scalars.items():
            if not _is_scalar(value):
                _fail(path, errors, f"scalars[{key!r}] not a scalar")

    groups = doc.get("groups")
    if not isinstance(groups, dict):
        _fail(path, errors, "missing object field 'groups'")
    else:
        for gname, group in groups.items():
            if not isinstance(group, dict):
                _fail(path, errors, f"groups[{gname!r}] not an object")
                continue
            for key, value in group.items():
                if not _is_scalar(value):
                    _fail(path, errors,
                          f"groups[{gname!r}][{key!r}] not a scalar")

    tables = doc.get("tables")
    if not isinstance(tables, list):
        _fail(path, errors, "missing array field 'tables'")
    else:
        for i, table in enumerate(tables):
            where = f"tables[{i}]"
            if not isinstance(table, dict):
                _fail(path, errors, f"{where} not an object")
                continue
            if not isinstance(table.get("name"), str) \
                    or not table.get("name"):
                _fail(path, errors, f"{where} missing 'name'")
            headers = table.get("headers")
            if not isinstance(headers, list) or not headers or not all(
                    isinstance(h, str) for h in headers):
                _fail(path, errors, f"{where} headers invalid")
                continue
            rows = table.get("rows")
            if not isinstance(rows, list):
                _fail(path, errors, f"{where} missing 'rows'")
                continue
            for j, row in enumerate(rows):
                if not isinstance(row, list) \
                        or len(row) != len(headers) or not all(
                            isinstance(c, str) for c in row):
                    _fail(path, errors,
                          f"{where}.rows[{j}] arity/type mismatch")

    series = doc.get("series")
    if not isinstance(series, list):
        _fail(path, errors, "missing array field 'series'")
    else:
        for i, s in enumerate(series):
            where = f"series[{i}]"
            if not isinstance(s, dict):
                _fail(path, errors, f"{where} not an object")
                continue
            if not isinstance(s.get("name"), str) or not s.get("name"):
                _fail(path, errors, f"{where} missing 'name'")
            labels = s.get("labels")
            values = s.get("values")
            if not isinstance(labels, list) or not all(
                    isinstance(l, str) for l in labels):
                _fail(path, errors, f"{where} labels invalid")
            elif not isinstance(values, list) or not all(
                    isinstance(v, (int, float)) and
                    not isinstance(v, bool) for v in values):
                _fail(path, errors, f"{where} values invalid")
            elif len(labels) != len(values):
                _fail(path, errors, f"{where} labels/values length "
                                    "mismatch")

    notes = doc.get("notes")
    if not isinstance(notes, list) or not all(
            isinstance(n, str) for n in notes):
        _fail(path, errors, "missing string-array field 'notes'")

    # Optional: the obs-registry snapshot `fpraker run --telemetry`
    # folds in (counters/gauges/histograms sub-objects).
    if "telemetry" in doc:
        telemetry = doc["telemetry"]
        if not isinstance(telemetry, dict):
            _fail(path, errors, "telemetry not an object")
        else:
            for key in ("counters", "gauges", "histograms"):
                if not isinstance(telemetry.get(key), dict):
                    _fail(path, errors,
                          f"telemetry.{key} missing or not an object")

    return len(errors) == n0


def main(argv):
    if len(argv) < 2:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    errors = []
    checked = 0
    for path in argv[1:]:
        try:
            with open(path, encoding="utf-8") as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            _fail(path, errors, f"unreadable: {e}")
            continue
        if validate(path, doc, errors):
            checked += 1
    for message in errors:
        print(f"schema error: {message}", file=sys.stderr)
    print(f"{checked}/{len(argv) - 1} documents validate against "
          f"{SCHEMA}")
    return 0 if not errors else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
