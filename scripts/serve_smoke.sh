#!/usr/bin/env bash
# Serve-layer smoke: start fprakerd on a temp socket (with span
# tracing on), submit experiments over the wire (one twice, proving a
# cache hit via both the submit summary and the stats counters),
# check that served documents are schema-valid fpraker-result-v1 and
# fingerprint-identical to direct `fpraker run` output, pull the live
# metrics surface in both formats, then shut the daemon down and fail
# if it leaks or hangs. On success the daemon's metrics snapshot and
# trace land in <build-dir>/serve_metrics.json and
# <build-dir>/serve_trace.json (CI plots and validates them).
#
#   scripts/serve_smoke.sh [build-dir]     (default: build)
#
# FPRAKER_SAMPLE_STEPS (default 8 here) keeps the simulations small;
# the script exercises the serving path, not the figures.
set -euo pipefail

bdir="${1:-build}"
work="$(mktemp -d)"
sock="$work/fprakerd.sock"
daemon_pid=""
cleanup() {
    [ -n "$daemon_pid" ] && kill -9 "$daemon_pid" 2>/dev/null || true
    rm -rf "$work"
}
trap cleanup EXIT

export FPRAKER_SAMPLE_STEPS="${FPRAKER_SAMPLE_STEPS:-8}"

"$bdir"/fprakerd --socket="$sock" --workers=2 \
    --cache-dir="$work/cache" --trace-out="$bdir/serve_trace.json" \
    > "$work/daemon.log" 2>&1 &
daemon_pid=$!

for _ in $(seq 1 100); do
    [ -S "$sock" ] && break
    kill -0 "$daemon_pid" 2>/dev/null || break
    sleep 0.1
done
if ! [ -S "$sock" ]; then
    echo "FAIL: daemon did not come up"
    cat "$work/daemon.log"
    exit 1
fi

mkdir -p "$work/served" "$work/direct" "$work/hot"
"$bdir"/fpraker submit fig02 --socket="$sock" \
    --json="$work/served/fig02.json"
"$bdir"/fpraker submit fig01 --socket="$sock" \
    --json="$work/served/fig01.json"

# The repeat submit must be served from the cache, not re-simulated.
"$bdir"/fpraker submit fig02 --socket="$sock" \
    --json="$work/hot/fig02.json" | tee "$work/hot.out"
grep -q "cached=true" "$work/hot.out" || {
    echo "FAIL: repeat submit was not served from the cache"
    exit 1
}

# Human-readable stats for the log, --json (the raw daemon reply)
# for the counter assertions.
"$bdir"/fpraker stats --socket="$sock"
"$bdir"/fpraker stats --socket="$sock" --json | tee "$work/stats.out"
grep -q '"cache_served": 1' "$work/stats.out" || {
    echo "FAIL: stats do not show the cache-served job"
    exit 1
}
grep -q '"executed": 2' "$work/stats.out" || {
    echo "FAIL: stats should show exactly 2 simulations for 3 submits"
    exit 1
}

# The live metrics surface: the registry snapshot as JSON (kept for
# the CI latency plot) and Prometheus text.
"$bdir"/fpraker metrics --socket="$sock" > "$bdir/serve_metrics.json"
grep -q '"serve.requests.submit"' "$bdir/serve_metrics.json" || {
    echo "FAIL: metrics snapshot lacks the per-op request counters"
    exit 1
}
"$bdir"/fpraker metrics --socket="$sock" --prom > "$work/metrics.prom"
grep -q '^fpraker_sched_submitted 3' "$work/metrics.prom" || {
    echo "FAIL: prometheus text does not count the 3 submits"
    exit 1
}

# Served documents are schema-valid ...
python3 scripts/check_result_schema.py "$work"/served/*.json \
    "$work"/hot/*.json

# ... and fingerprint-identical to direct `fpraker run` output, on
# both the cold and the cache-served path.
"$bdir"/fpraker run fig01 --json="$work/direct/fig01.json" > /dev/null
"$bdir"/fpraker run fig02 --json="$work/direct/fig02.json" > /dev/null
python3 scripts/check_fingerprints.py "$work/served" "$work/direct"
python3 - "$work/hot/fig02.json" "$work/direct/fig02.json" <<'EOF'
import json, sys
hot = json.load(open(sys.argv[1]))
direct = json.load(open(sys.argv[2]))
assert hot["provenance"]["cached"] is True, "hot doc not marked cached"
assert hot["fingerprint"] == direct["fingerprint"], \
    f'hot fingerprint {hot["fingerprint"]} != direct {direct["fingerprint"]}'
print("cache-served document fingerprint matches the direct run")
EOF

"$bdir"/fpraker shutdown --socket="$sock"
for _ in $(seq 1 100); do
    kill -0 "$daemon_pid" 2>/dev/null || break
    sleep 0.1
done
if kill -0 "$daemon_pid" 2>/dev/null; then
    echo "FAIL: daemon still running 10s after shutdown"
    exit 1
fi
rc=0
wait "$daemon_pid" || rc=$?
if [ "$rc" -ne 0 ]; then
    echo "FAIL: daemon exited with status $rc"
    exit 1
fi
if [ -S "$sock" ]; then
    echo "FAIL: daemon leaked its socket file"
    exit 1
fi
daemon_pid=""

# The daemon wrote its span trace on exit; it must be a well-formed
# trace_event capture covering the job lifecycle.
python3 scripts/check_trace_events.py --require=sched,experiment \
    "$bdir/serve_trace.json"

echo "serve smoke OK"
