#!/usr/bin/env python3
"""Compare per-experiment fingerprints across `--json-dir` trees.

The determinism contract says `fpraker run --all` must produce the
same results serially, in parallel, and at every slab_ops SIMD
dispatch tier; every fpraker-result-v1 document carries a content
fingerprint (timing experiments substitute their determinism
checksums), so N sweeps agree iff the fingerprints match experiment
by experiment. Accepts two or more trees; the first is the reference
the rest are diffed against. CI runs:

    fpraker run --all --json-dir=a            # serial
    fpraker run --all --threads=2 --json-dir=b
    FPRAKER_SIMD=scalar fpraker run --all --json-dir=c
    scripts/check_fingerprints.py a b c

Exit status: 0 when all trees hold the same experiments with equal
fingerprints, 1 otherwise.
"""

import glob
import json
import os
import sys


def load(tree):
    docs = {}
    for path in glob.glob(os.path.join(tree, "*.json")):
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
        # BENCH_*.json duplicates perf_regression's document (--out);
        # key by experiment id so the copy is not a spurious entry.
        docs[doc.get("experiment", os.path.basename(path))] = \
            doc.get("fingerprint")
    return docs


def compare(ref_name, ref, other_name, other):
    status = 0
    for missing in sorted(set(ref) ^ set(other)):
        side = other_name if missing in ref else ref_name
        print(f"MISSING: {missing} absent from {side}")
        status = 1
    for exp in sorted(set(ref) & set(other)):
        # A document without a fingerprint must fail the gate, not
        # vacuously "match" as None == None.
        if ref[exp] is None or other[exp] is None:
            print(f"NO FINGERPRINT: {exp} "
                  f"({ref_name}: {ref[exp]!r}, "
                  f"{other_name}: {other[exp]!r})")
            status = 1
        elif ref[exp] != other[exp]:
            print(f"MISMATCH: {exp} ({ref_name} vs {other_name}): "
                  f"{ref[exp]} vs {other[exp]}")
            status = 1
    return status


def main(argv):
    if len(argv) < 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    ref = load(argv[1])
    status = 0
    matched = set(ref)
    for tree in argv[2:]:
        other = load(tree)
        status |= compare(argv[1], ref, tree, other)
        matched &= set(other)
    if status == 0:
        print(f"{len(matched)} experiment fingerprints match across "
              f"{len(argv) - 1} trees")
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv))
