#!/usr/bin/env python3
"""Compare per-experiment fingerprints across two `--json-dir` trees.

The determinism contract says `fpraker run --all` must produce the
same results serially and in parallel; every fpraker-result-v1
document carries a content fingerprint (timing experiments substitute
their determinism checksums), so two sweeps agree iff the fingerprints
match experiment by experiment. CI runs:

    fpraker run --all --json-dir=a            # serial
    fpraker run --all --threads=2 --json-dir=b
    scripts/check_fingerprints.py a b

Exit status: 0 when both trees hold the same experiments with equal
fingerprints, 1 otherwise.
"""

import glob
import json
import os
import sys


def load(tree):
    docs = {}
    for path in glob.glob(os.path.join(tree, "*.json")):
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
        # BENCH_*.json duplicates perf_regression's document (--out);
        # key by experiment id so the copy is not a spurious entry.
        docs[doc.get("experiment", os.path.basename(path))] = \
            doc.get("fingerprint")
    return docs


def main(argv):
    if len(argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    a, b = load(argv[1]), load(argv[2])
    status = 0
    for missing in sorted(set(a) ^ set(b)):
        side = argv[2] if missing in a else argv[1]
        print(f"MISSING: {missing} absent from {side}")
        status = 1
    for exp in sorted(set(a) & set(b)):
        # A document without a fingerprint must fail the gate, not
        # vacuously "match" as None == None.
        if a[exp] is None or b[exp] is None:
            print(f"NO FINGERPRINT: {exp} "
                  f"({argv[1]}: {a[exp]!r}, {argv[2]}: {b[exp]!r})")
            status = 1
        elif a[exp] != b[exp]:
            print(f"MISMATCH: {exp}: {a[exp]} vs {b[exp]}")
            status = 1
    if status == 0:
        print(f"{len(set(a) & set(b))} experiment fingerprints match")
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv))
