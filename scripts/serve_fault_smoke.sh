#!/usr/bin/env bash
# Serve-layer fault smoke: drive fprakerd through its injected-failure
# matrix (docs/SERVING.md, "Failure modes & guarantees") and check
# that every fault surfaces as a structured error or a clean recovery
# — never a hang, a leaked job, or a wrong document:
#
#   1. torn spill write  -> quarantined on restart, re-simulated,
#                           fingerprint identical to a direct run
#   2. overload          -> structured "overloaded" + retry_after;
#                           client retries succeed once the queue
#                           drains
#   3. queued deadline   -> structured "timeout"; the pinned job
#                           still completes
#   4. stalled client    -> --io-timeout closes the connection; the
#                           daemon keeps serving others
#   5. dropped response  -> the client retry policy resubmits; the
#                           served document is bit-identical to a
#                           direct `fpraker run`
#
#   scripts/serve_fault_smoke.sh [build-dir]     (default: build)
#
# FPRAKER_SAMPLE_STEPS (default 8 here) keeps the simulations small;
# the script exercises failure handling, not the figures.
set -euo pipefail

bdir="${1:-build}"
work="$(mktemp -d)"
daemon_pid=""
cleanup() {
    [ -n "$daemon_pid" ] && kill -9 "$daemon_pid" 2>/dev/null || true
    rm -rf "$work"
}
trap cleanup EXIT

export FPRAKER_SAMPLE_STEPS="${FPRAKER_SAMPLE_STEPS:-8}"

# start_daemon <name> <extra flags...>: boots fprakerd on a fresh
# socket ($sock) and waits for it.
start_daemon() {
    local name="$1"
    shift
    sock="$work/$name.sock"
    "$bdir"/fprakerd --socket="$sock" "$@" \
        > "$work/$name.log" 2>&1 &
    daemon_pid=$!
    for _ in $(seq 1 100); do
        [ -S "$sock" ] && break
        kill -0 "$daemon_pid" 2>/dev/null || break
        sleep 0.1
    done
    if ! [ -S "$sock" ]; then
        echo "FAIL: daemon '$name' did not come up"
        cat "$work/$name.log"
        exit 1
    fi
}

# stop_daemon: clean shutdown over the wire; fails on a hang, an
# unclean exit status, or a leaked socket file.
stop_daemon() {
    "$bdir"/fpraker shutdown --socket="$sock" > /dev/null
    for _ in $(seq 1 100); do
        kill -0 "$daemon_pid" 2>/dev/null || break
        sleep 0.1
    done
    if kill -0 "$daemon_pid" 2>/dev/null; then
        echo "FAIL: daemon still running 10s after shutdown"
        exit 1
    fi
    local rc=0
    wait "$daemon_pid" || rc=$?
    if [ "$rc" -ne 0 ]; then
        echo "FAIL: daemon exited with status $rc"
        exit 1
    fi
    if [ -S "$sock" ]; then
        echo "FAIL: daemon leaked its socket file"
        exit 1
    fi
    daemon_pid=""
}

fingerprint() {
    python3 -c \
        'import json,sys; print(json.load(open(sys.argv[1]))["fingerprint"])' \
        "$1"
}

"$bdir"/fpraker run fig02 --json="$work/direct.json" > /dev/null
direct_fp="$(fingerprint "$work/direct.json")"

# ---------------------------------------------------------------------
echo "--- scenario 1: torn spill write is quarantined and re-simulated"
cache="$work/cache"
start_daemon torn --cache-dir="$cache" --fault=spill.torn_write=64:1
"$bdir"/fpraker submit fig02 --socket="$sock" --json="$work/torn1.json"
stop_daemon
# The spill of that document was torn mid-write (first 64 bytes, no
# checksum trailer). A restarted daemon must quarantine it, treat the
# key as a miss, and re-simulate — never serve the damaged bytes.
start_daemon healed --cache-dir="$cache"
"$bdir"/fpraker submit fig02 --socket="$sock" \
    --json="$work/torn2.json" | tee "$work/torn2.out"
grep -q "cached=false" "$work/torn2.out" || {
    echo "FAIL: corrupt spill entry was served instead of re-simulated"
    exit 1
}
"$bdir"/fpraker stats --json --socket="$sock" > "$work/torn.stats"
grep -q '"disk_corrupt": 1' "$work/torn.stats" || {
    echo "FAIL: stats do not count the quarantined spill file"
    cat "$work/torn.stats"
    exit 1
}
ls "$cache"/*.corrupt > /dev/null 2>&1 || {
    echo "FAIL: no quarantined *.corrupt file in the spill dir"
    exit 1
}
# Re-simulation recovered the exact document.
test "$(fingerprint "$work/torn2.json")" = "$direct_fp" || {
    echo "FAIL: re-simulated document diverged from the direct run"
    exit 1
}
python3 scripts/check_result_schema.py "$work/torn1.json" \
    "$work/torn2.json"
stop_daemon

# ---------------------------------------------------------------------
echo "--- scenario 2: overload sheds with retry_after; retries succeed"
start_daemon overload --workers=1 --queue-depth=1 \
    --fault=scheduler.worker_stall_ms=2000:1
# Pin the only worker (injected 2s stall), fill the one queue slot...
"$bdir"/fpraker submit fig02 --socket="$sock" --no-wait > /dev/null
sleep 0.2 # Let the worker pop the pin job before filling the queue.
"$bdir"/fpraker submit fig02 --sample-steps=9 --socket="$sock" \
    --no-wait > /dev/null
# ...so a no-retry submit must be rejected with the structured code.
if "$bdir"/fpraker submit fig02 --sample-steps=10 --socket="$sock" \
    --retries=0 > /dev/null 2> "$work/shed.err"; then
    echo "FAIL: overloaded submit with --retries=0 did not fail"
    exit 1
fi
grep -q "queue full" "$work/shed.err" || {
    echo "FAIL: rejection lacked the queue-full daemon error"
    cat "$work/shed.err"
    exit 1
}
# The same submit WITH retries backs off per the daemon's hint and
# lands once the stall ends and the queue drains.
"$bdir"/fpraker submit fig02 --sample-steps=10 --socket="$sock" \
    --retries=8 --json="$work/shed.json" 2> "$work/retry.err"
grep -q "succeeded on attempt" "$work/retry.err" || {
    echo "FAIL: retried submit did not report a multi-attempt success"
    cat "$work/retry.err"
    exit 1
}
"$bdir"/fpraker stats --json --socket="$sock" > "$work/overload.stats"
grep -Eq '"shed_overload": [1-9]' "$work/overload.stats" || {
    echo "FAIL: stats do not count the shed submits"
    cat "$work/overload.stats"
    exit 1
}
stop_daemon

# ---------------------------------------------------------------------
echo "--- scenario 3: a queued job past its deadline is shed as timeout"
start_daemon deadline --workers=1 \
    --fault=scheduler.worker_stall_ms=1500:1
"$bdir"/fpraker submit fig02 --socket="$sock" --no-wait > /dev/null
sleep 0.2 # Let the worker pop it so the next submit queues behind.
if "$bdir"/fpraker submit fig02 --sample-steps=9 --socket="$sock" \
    --deadline-ms=100 > /dev/null 2> "$work/deadline.err"; then
    echo "FAIL: deadlined submit behind a stalled worker did not fail"
    exit 1
fi
grep -q "deadline" "$work/deadline.err" || {
    echo "FAIL: shed job lacked the deadline error text"
    cat "$work/deadline.err"
    exit 1
}
"$bdir"/fpraker stats --json --socket="$sock" > "$work/deadline.stats"
grep -q '"shed_deadline": 1' "$work/deadline.stats" || {
    echo "FAIL: stats do not count the deadline-shed job"
    cat "$work/deadline.stats"
    exit 1
}
stop_daemon

# ---------------------------------------------------------------------
echo "--- scenario 4: a stalled client is timed out, daemon stays up"
start_daemon iotimeout --io-timeout=1
python3 - "$sock" <<'EOF'
import socket, sys, time
s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
s.connect(sys.argv[1])
time.sleep(2.5)  # Send nothing: SO_RCVTIMEO must fire server-side.
s.settimeout(5)
assert s.recv(1) == b"", "daemon did not close the stalled connection"
print("stalled connection was closed by the daemon")
EOF
# The daemon is still healthy for well-behaved clients.
"$bdir"/fpraker submit fig02 --socket="$sock" \
    --json="$work/after_stall.json" > /dev/null
test "$(fingerprint "$work/after_stall.json")" = "$direct_fp"
stop_daemon

# ---------------------------------------------------------------------
echo "--- scenario 5: dropped response -> client retries, bytes intact"
start_daemon drop --fault=daemon.drop_connection=1:1
"$bdir"/fpraker submit fig02 --socket="$sock" \
    --json="$work/drop.json" 2> "$work/drop.err"
grep -q "succeeded on attempt" "$work/drop.err" || {
    echo "FAIL: dropped-connection submit did not retry transparently"
    cat "$work/drop.err"
    exit 1
}
test "$(fingerprint "$work/drop.json")" = "$direct_fp" || {
    echo "FAIL: retried document diverged from the direct run"
    exit 1
}
stop_daemon

echo "serve fault smoke OK"
