#!/usr/bin/env python3
"""Validate a Chrome trace_event capture written by --trace-out.

    scripts/check_trace_events.py [--require=cat1,cat2] FILE...

Checks, per file:

 - the file parses as JSON and is either the {"traceEvents": [...]}
   object form or a bare event array;
 - every event is an object with "ph", "name", "pid", "tid", and a
   numeric "ts" >= 0;
 - complete ("X") events carry a numeric "dur" >= 0;
 - duration ("B"/"E") events balance per (pid, tid) with no "E"
   before its "B" (the fpraker collector only emits X/i events, so
   any imbalance means a foreign or corrupted capture);
 - the capture is non-empty, and with --require= at least one event
   carries each named category.

Exit status: 0 when every file passes, 1 otherwise.
"""

import json
import sys


def check(path, required):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"{path}: not readable JSON: {e}")
        return False

    if isinstance(doc, dict):
        events = doc.get("traceEvents")
        if not isinstance(events, list):
            print(f"{path}: object form lacks a traceEvents array")
            return False
    elif isinstance(doc, list):
        events = doc
    else:
        print(f"{path}: neither an object with traceEvents nor an "
              f"array")
        return False

    if not events:
        print(f"{path}: empty capture (tracing enabled but nothing "
              f"recorded?)")
        return False

    ok = True
    depth = {}  # (pid, tid) -> open B count
    cats = set()
    phases = {}
    for i, e in enumerate(events):
        where = f"{path}: event {i}"
        if not isinstance(e, dict):
            print(f"{where}: not an object")
            ok = False
            continue
        ph = e.get("ph")
        if not isinstance(ph, str) or len(ph) != 1:
            print(f"{where}: missing/malformed ph")
            ok = False
            continue
        phases[ph] = phases.get(ph, 0) + 1
        for key in ("name", "pid", "tid"):
            if key not in e:
                print(f"{where}: missing {key}")
                ok = False
        ts = e.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            print(f"{where}: ts must be a number >= 0, got {ts!r}")
            ok = False
        if ph == "X":
            dur = e.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                print(f"{where}: X event needs dur >= 0, got {dur!r}")
                ok = False
        lane = (e.get("pid"), e.get("tid"))
        if ph == "B":
            depth[lane] = depth.get(lane, 0) + 1
        elif ph == "E":
            depth[lane] = depth.get(lane, 0) - 1
            if depth[lane] < 0:
                print(f"{where}: E without a matching B on "
                      f"pid/tid {lane}")
                ok = False
        if isinstance(e.get("cat"), str):
            cats.add(e["cat"])

    for lane, d in sorted(depth.items()):
        if d > 0:
            print(f"{path}: {d} unclosed B event(s) on pid/tid {lane}")
            ok = False
    for cat in required:
        if cat not in cats:
            print(f"{path}: no event with required category "
                  f"'{cat}' (saw: {', '.join(sorted(cats)) or '-'})")
            ok = False

    if ok:
        summary = " ".join(f"{p}={n}" for p, n in sorted(phases.items()))
        print(f"{path}: {len(events)} events ok ({summary}; "
              f"categories: {', '.join(sorted(cats))})")
    return ok


def main(argv):
    required = []
    files = []
    for arg in argv[1:]:
        if arg.startswith("--require="):
            required += [c for c in arg[len("--require="):].split(",")
                         if c]
        elif arg.startswith("--"):
            print(__doc__.strip(), file=sys.stderr)
            return 2
        else:
            files.append(arg)
    if not files:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    return 0 if all([check(f, required) for f in files]) else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv))
