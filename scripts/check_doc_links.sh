#!/usr/bin/env bash
# Verify that every relative markdown link in README.md and docs/*.md
# resolves to a file or directory in the repository. External links
# (http/https/mailto) and pure anchors are skipped; a link's own
# "#section" suffix is stripped before the existence check.
#
#   scripts/check_doc_links.sh [repo-root]
set -u
root="${1:-.}"
rm -f "$root/.linkcheck_failed"

for doc in "$root"/README.md "$root"/docs/*.md; do
    [ -f "$doc" ] || continue
    dir=$(dirname "$doc")
    # Markdown inline links: [text](target)
    grep -o '\[[^]]*\]([^)]*)' "$doc" | sed 's/.*(\(.*\))/\1/' |
    while IFS= read -r target; do
        case "$target" in
          http://*|https://*|mailto:*|\#*) continue ;;
        esac
        path="${target%%#*}"
        [ -n "$path" ] || continue
        if [ ! -e "$dir/$path" ] && [ ! -e "$root/$path" ]; then
            echo "BROKEN LINK: $doc -> $target"
            echo 1 > "$root/.linkcheck_failed"
        fi
    done
done

if [ -f "$root/.linkcheck_failed" ]; then
    rm -f "$root/.linkcheck_failed"
    echo "doc link check FAILED"
    exit 1
fi
echo "doc link check passed"
