#!/usr/bin/env python3
"""Render the series of fpraker-result-v1 documents as charts.

The consumer for the ``series`` arrays the experiment API emits: point
it at the output of ``fpraker run --all --json-dir=results`` and it
draws one chart per document that carries series (fig11's speedup
lines, fig13/fig15's per-model shares, fig14/fig18/fig19's trends,
ext_inference's sweep, ...).

    scripts/plot_results.py --json-dir results [--out-dir plots]
    scripts/plot_results.py results/fig11.json [more.json ...]
    scripts/plot_results.py --json-dir results --list
    scripts/plot_results.py --metrics serve_metrics.json

``--metrics`` takes an obs-registry snapshot (the output of
``fpraker metrics``) instead of result documents and renders the
daemon's per-op request latency histograms (the
``serve.request_seconds.*`` bucket counts) as one chart,
plots/serve_latency.svg.

Output is dependency-free SVG (grouped line/marker charts with a
legend); when matplotlib happens to be installed, pass --matplotlib to
get PNGs instead. Documents without series are skipped with a notice.

Exit status: 0 when every named document parses (plotless documents
are fine), 1 on unreadable/invalid input.
"""

import argparse
import glob
import json
import os
import sys

PALETTE = [
    "#4269d0", "#efb118", "#ff725c", "#6cc5b0", "#3ca951",
    "#ff8ab7", "#a463f2", "#97bbf5", "#9c6b4e", "#9498a0",
]

WIDTH, HEIGHT = 960, 420
MARGIN = {"left": 70, "right": 220, "top": 48, "bottom": 96}


def esc(text):
    return (str(text).replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;"))


def nice_ticks(lo, hi, n=5):
    """A handful of round tick values covering [lo, hi]."""
    if hi <= lo:
        hi = lo + 1.0
    span = hi - lo
    step = 10 ** __import__("math").floor(__import__("math").log10(span / n))
    for mult in (1, 2, 2.5, 5, 10):
        if span / (step * mult) <= n:
            step *= mult
            break
    first = step * __import__("math").floor(lo / step)
    ticks = []
    t = first
    while t <= hi + step * 1e-9:
        if t >= lo - step * 1e-9:
            ticks.append(round(t, 10))
        t += step
    return ticks or [lo, hi]


def render_svg(doc, series):
    """One SVG line/marker chart over label-compatible series."""
    labels = series[0]["labels"]
    values = [v for s in series for v in s["values"]]
    lo, hi = min(values + [0.0]), max(values)
    ticks = nice_ticks(lo, hi)
    lo, hi = min(ticks[0], lo), max(ticks[-1], hi)

    px0, px1 = MARGIN["left"], WIDTH - MARGIN["right"]
    py0, py1 = HEIGHT - MARGIN["bottom"], MARGIN["top"]

    def x_of(i):
        if len(labels) == 1:
            return (px0 + px1) / 2
        return px0 + (px1 - px0) * i / (len(labels) - 1)

    def y_of(v):
        return py0 - (py0 - py1) * (v - lo) / (hi - lo)

    out = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{WIDTH}" '
        f'height="{HEIGHT}" font-family="sans-serif" font-size="12">',
        f'<rect width="{WIDTH}" height="{HEIGHT}" fill="white"/>',
        f'<text x="{MARGIN["left"]}" y="24" font-size="15" '
        f'font-weight="bold">{esc(doc.get("experiment", "?"))} — '
        f'{esc(doc.get("title", ""))}</text>',
    ]
    for t in ticks:
        y = y_of(t)
        out.append(f'<line x1="{px0}" y1="{y:.1f}" x2="{px1}" '
                   f'y2="{y:.1f}" stroke="#ddd"/>')
        out.append(f'<text x="{px0 - 8}" y="{y + 4:.1f}" '
                   f'text-anchor="end">{t:g}</text>')
    for i, label in enumerate(labels):
        x = x_of(i)
        out.append(
            f'<text x="0" y="0" text-anchor="end" transform='
            f'"translate({x:.1f},{py0 + 14}) rotate(-35)">'
            f'{esc(label)}</text>')
    out.append(f'<line x1="{px0}" y1="{py0}" x2="{px1}" y2="{py0}" '
               f'stroke="#333"/>')

    for si, s in enumerate(series):
        color = PALETTE[si % len(PALETTE)]
        pts = [(x_of(i), y_of(v)) for i, v in enumerate(s["values"])]
        if len(pts) > 1:
            path = " ".join(f"{x:.1f},{y:.1f}" for x, y in pts)
            out.append(f'<polyline points="{path}" fill="none" '
                       f'stroke="{color}" stroke-width="2"/>')
        for x, y in pts:
            out.append(f'<circle cx="{x:.1f}" cy="{y:.1f}" r="3" '
                       f'fill="{color}"/>')
        ly = MARGIN["top"] + 18 * si
        lx = WIDTH - MARGIN["right"] + 16
        out.append(f'<rect x="{lx}" y="{ly - 9}" width="12" '
                   f'height="12" fill="{color}"/>')
        out.append(f'<text x="{lx + 18}" y="{ly + 2}">'
                   f'{esc(s["name"])}</text>')
    out.append("</svg>")
    return "\n".join(out) + "\n"


def bound_label(seconds):
    """'1µs' / '4.1ms' / '1.1s' style label for a bucket bound."""
    for scale, unit in ((1e-6, "µs"), (1e-3, "ms"), (1.0, "s")):
        if seconds < scale * 1000 or unit == "s":
            return f"≤{seconds / scale:.3g}{unit}"
    return f"≤{seconds:g}s"


def plot_metrics(path, out_dir):
    """Chart serve.request_seconds.* buckets from a metrics snapshot.

    Returns 0 on success, 1 when the file is unreadable or carries no
    daemon latency histograms.
    """
    try:
        with open(path, encoding="utf-8") as f:
            snapshot = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"error: {path}: {e}", file=sys.stderr)
        return 1
    series = []
    for name, h in (snapshot.get("histograms") or {}).items():
        if not name.startswith("serve.request_seconds."):
            continue
        bounds, counts = h.get("bounds") or [], h.get("counts") or []
        if len(counts) != len(bounds) + 1:
            print(f"error: {path}: histogram {name} has "
                  f"{len(counts)} counts for {len(bounds)} bounds",
                  file=sys.stderr)
            return 1
        series.append({
            "name": name.split(".")[-1],
            "labels": [bound_label(b) for b in bounds] + ["+Inf"],
            "values": [float(c) for c in counts],
        })
    if not series:
        print(f"error: {path}: no serve.request_seconds.* histograms "
              f"(not a daemon metrics snapshot?)", file=sys.stderr)
        return 1
    doc = {"experiment": "serve_latency",
           "title": "daemon request latency by op (bucket counts)"}
    os.makedirs(out_dir, exist_ok=True)
    out = os.path.join(out_dir, "serve_latency.svg")
    with open(out, "w", encoding="utf-8") as f:
        f.write(render_svg(doc, series))
    print(f"serve_latency: wrote {out} "
          f"({', '.join(s['name'] for s in series)})")
    return 0


def render_matplotlib(doc, path):
    import matplotlib
    matplotlib.use("Agg")
    import matplotlib.pyplot as plt

    fig, ax = plt.subplots(figsize=(9.6, 4.2))
    for si, s in enumerate(doc["series"]):
        ax.plot(s["labels"], s["values"], marker="o",
                color=PALETTE[si % len(PALETTE)], label=s["name"])
    ax.set_title(f'{doc.get("experiment")} — {doc.get("title", "")}')
    ax.legend(loc="center left", bbox_to_anchor=(1.01, 0.5),
              frameon=False)
    ax.tick_params(axis="x", rotation=35)
    fig.tight_layout()
    fig.savefig(path)
    plt.close(fig)


def main(argv):
    ap = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("files", nargs="*", help="result documents")
    ap.add_argument("--json-dir", help="directory of <id>.json files")
    ap.add_argument("--metrics",
                    help="obs-registry snapshot (fpraker metrics "
                         "output); plots the daemon latency buckets")
    ap.add_argument("--out-dir", default="plots",
                    help="where charts are written (default: plots)")
    ap.add_argument("--list", action="store_true",
                    help="only list which documents carry series")
    ap.add_argument("--matplotlib", action="store_true",
                    help="emit PNG via matplotlib instead of SVG")
    args = ap.parse_args(argv[1:])

    if args.metrics:
        return plot_metrics(args.metrics, args.out_dir)

    paths = list(args.files)
    if args.json_dir:
        paths += sorted(glob.glob(os.path.join(args.json_dir,
                                               "*.json")))
    if not paths:
        ap.error("no input: give documents, --json-dir, or --metrics")

    plotted, errors = 0, 0
    for path in paths:
        try:
            with open(path, encoding="utf-8") as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print(f"error: {path}: {e}", file=sys.stderr)
            errors += 1
            continue
        series = doc.get("series") or []
        name = doc.get("experiment") or os.path.basename(path)
        if not series:
            print(f"{name}: no series, skipped")
            continue
        if args.list:
            print(f"{name}: {len(series)} series "
                  f"({', '.join(s['name'] for s in series)})")
            continue
        os.makedirs(args.out_dir, exist_ok=True)
        if args.matplotlib:
            out = os.path.join(args.out_dir, f"{name}.png")
            render_matplotlib(doc, out)
            print(f"{name}: wrote {out}")
            plotted += 1
            continue
        # Series with different label axes (fig19's per-model lines
        # vs its rows-axis geomean) cannot share one x-axis: chart
        # each label group separately.
        groups = []
        for s in series:
            for labels, members in groups:
                if labels == s["labels"]:
                    members.append(s)
                    break
            else:
                groups.append((s["labels"], [s]))
        for gi, (labels, members) in enumerate(groups):
            suffix = "" if gi == 0 else f"_{gi}"
            out = os.path.join(args.out_dir, f"{name}{suffix}.svg")
            with open(out, "w", encoding="utf-8") as f:
                f.write(render_svg(doc, members))
            print(f"{name}: wrote {out} "
                  f"({', '.join(s['name'] for s in members)})")
        plotted += 1
    if not args.list:
        print(f"{plotted} charts from {len(paths)} documents")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
