#!/usr/bin/env bash
# Compare the checksum lines of a perf_regression smoke report against
# the committed baseline (bench/SMOKE_BASELINE.json). The simulator's
# results are deterministic functions of the seeded workload, so any
# checksum drift means the kernel's arithmetic changed — which must be
# a deliberate, baseline-regenerating decision, never an accident.
#
#   scripts/check_smoke_checksums.sh <emitted.json> [baseline.json]
#
# Works on both the legacy flat BENCH_PR<N>.json layout and the
# fpraker-result-v1 documents `fpraker run perf_regression` emits: the
# checksum key/value pairs carry the same names in the same order.
set -eu
emitted="$1"
baseline="${2:-bench/SMOKE_BASELINE.json}"

extract() { grep -oE '"checksum[_a-z0-9]*": "[0-9a-f]{16}"' "$1"; }

if ! diff <(extract "$baseline") <(extract "$emitted"); then
    echo "smoke checksums DIFFER from $baseline"
    echo "(if the kernel's arithmetic intentionally changed, regenerate"
    echo " the baseline with the same FPRAKER_SAMPLE_STEPS/flags and"
    echo " commit it alongside the change)"
    exit 1
fi
echo "smoke checksums match $baseline"
