#!/usr/bin/env python3
"""Perf-smoke floor: fail when a fresh perf_regression run regresses
too far below the committed BENCH_PR<N>.json trajectory point.

    scripts/check_perf_floor.py BENCH_PR4.json fresh.json [tolerance]

Compares the kernel serial throughput, the sweep best throughput (the
numbers each perf PR must advance), the batched generation
throughput, and — when both documents carry a ``serving`` section
(BENCH_PR5+) — the hot-path (cache-served) request throughput.
``tolerance`` is the allowed fractional shortfall (default 0.20).

The committed file and the CI runner are different machines, so each
comparison is normalized by a reference path measured in the SAME run
that the optimizations never touch — the seed reference algorithm for
the kernel/sweep numbers and the serving hot path, the scalar
generator walk for generation.
A slower runner lowers the reference and the floor together; only the
optimized-vs-reference ratio regressing trips the gate.

Checksums are NOT compared here (scripts/check_smoke_checksums.sh
owns bit-identity); this gate is about wall-clock only.

Exit status: 0 when every throughput clears its floor, 1 otherwise.
"""

import json
import sys

# (group, key, reference group, reference key)
KEYS = [
    ("tile_kernel", "sets_per_sec_serial",
     "tile_kernel", "sets_per_sec_seed"),
    ("sweep", "sets_per_sec_best",
     "tile_kernel", "sets_per_sec_seed"),
    ("generation", "values_per_sec_batched",
     "generation", "values_per_sec_scalar"),
    # Serving hot path, normalized by the seed kernel reference. It
    # used to normalize by the cold (simulating) serving path, but
    # cold throughput IS simulation throughput — every kernel speedup
    # raises it, which inflates the host-speed factor and with it the
    # hot floor, punishing kernel PRs on a metric they didn't touch.
    # The seed reference algorithm is the one path no optimization
    # ever reaches (the contract the normalization scheme documents
    # above), so it isolates pure host speed here too.
    ("serving", "requests_per_sec_hot",
     "tile_kernel", "sets_per_sec_seed"),
    # Trace-backed workload ingestion (PR8+): replaying recorded
    # streams must stay ahead of synthesizing them; normalized by the
    # scalar generator walk, the reference the generation comparison
    # already uses.
    ("workload", "values_per_sec_trace",
     "generation", "values_per_sec_scalar"),
    # Memoized warm replay (PR9+): a warm phase rerun must stay far
    # ahead of a cold one. Normalized by the cold run from the SAME
    # document — both sides fill and hash identically, so the ratio
    # isolates what the memo skips (the tile simulation) from host
    # speed.
    ("memo", "steps_per_sec_warm",
     "memo", "steps_per_sec_cold"),
]

# Telemetry hot-path overhead (PR10+): absolute ns/op ceilings on the
# FRESH run, not host-normalized — an instrumented-but-idle seam must
# stay nanosecond-scale on any host next to a microsecond tile step.
# The bounds are loose (a relaxed fetch_add measures single-digit ns
# on 2020s hardware) to absorb noisy shared CI runners while still
# catching a lock or allocation sneaking onto the hot path. A probe
# value of 0 means the section skipped itself (span measurement under
# --trace-out) and passes through.
TELEMETRY_CEILINGS_NS = [
    ("counter_ns_per_op", 200.0),
    ("histogram_ns_per_op", 500.0),
    ("span_disabled_ns_per_op", 150.0),
]


def main(argv):
    if len(argv) not in (3, 4):
        print(__doc__.strip(), file=sys.stderr)
        return 2
    tolerance = float(argv[3]) if len(argv) == 4 else 0.20
    with open(argv[1], encoding="utf-8") as f:
        committed = json.load(f)["groups"]
    with open(argv[2], encoding="utf-8") as f:
        fresh = json.load(f)["groups"]

    status = 0
    for group, key, rgroup, rkey in KEYS:
        if key not in committed.get(group, {}):
            # A trajectory file predating the group (serving arrived
            # in PR5, workload ingestion in PR8) carries no baseline
            # for it; the gate only applies once the committed file
            # does. Keyed on the specific metric, not just the group:
            # older files had a metadata-only "workload" section.
            print(f"{group}.{key}: skipped (no committed baseline "
                  f"for it)")
            continue
        values = [committed.get(group, {}).get(key),
                  fresh.get(group, {}).get(key),
                  committed.get(rgroup, {}).get(rkey),
                  fresh.get(rgroup, {}).get(rkey)]
        if any(v is None or not v for v in values):
            print(f"MISSING: {group}.{key} or its reference "
                  f"{rgroup}.{rkey} ({values})")
            status = 1
            continue
        base, got, ref_base, ref_got = values
        # Machine-speed normalization: scale the committed figure by
        # how fast this host runs the untouched reference path.
        floor = base * (ref_got / ref_base) * (1.0 - tolerance)
        verdict = "ok" if got >= floor else "REGRESSION"
        print(f"{group}.{key}: fresh {got:.0f} vs committed "
              f"{base:.0f} x host-speed {ref_got / ref_base:.2f} "
              f"(floor {floor:.0f}) {verdict}")
        if got < floor:
            status = 1

    telemetry = fresh.get("telemetry", {})
    if not telemetry:
        print("telemetry.*_ns_per_op: skipped (fresh run predates "
              "the telemetry group)")
    for key, ceiling in TELEMETRY_CEILINGS_NS:
        got = telemetry.get(key)
        if got is None and telemetry:
            print(f"MISSING: telemetry.{key}")
            status = 1
            continue
        if not telemetry:
            continue
        if not got:
            print(f"telemetry.{key}: skipped (probe not measured "
                  f"this run)")
            continue
        verdict = "ok" if got <= ceiling else "REGRESSION"
        print(f"telemetry.{key}: {got:.1f} ns/op vs ceiling "
              f"{ceiling:.0f} {verdict}")
        if got > ceiling:
            status = 1
    return status


if __name__ == "__main__":
    sys.exit(main(sys.argv))
