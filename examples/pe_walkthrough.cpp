/**
 * @file
 * Cycle-by-cycle walkthrough of the paper's Fig. 5 example: two lanes
 * (A0 = 2^2 x 1.1101 with B0 = 2^3 x 1.0011, and A1 = 2^1 x 1.1011 with
 * B1 = 2^1 x 1.1010), raw-bit term streams, a 3-position shifter
 * window, and — in the second run — a 6-bit accumulator whose
 * out-of-bounds skipping saves the final cycle. Uses the PE's trace
 * callback (setTraceCallback), which disables the simulator's
 * retirement-skip fast path so every cycle is observable.
 *
 *   ./pe_walkthrough
 */

#include <cstdio>

#include "pe/fpraker_pe.h"

using namespace fpraker;

namespace {

const char *
laneActionStr(PeCycleTrace::LaneAction a)
{
    switch (a) {
      case PeCycleTrace::LaneAction::Fired:
        return "fire";
      case PeCycleTrace::LaneAction::ShiftStall:
        return "stall(shift)";
      case PeCycleTrace::LaneAction::Idle:
        return "idle";
      case PeCycleTrace::LaneAction::ObRetired:
        return "ob-retired";
    }
    return "?";
}

int
runOnce(int ob_threshold)
{
    PeConfig cfg;
    cfg.lanes = 2;
    cfg.maxDelta = 3;
    cfg.encoding = TermEncoding::RawBits; // the figure streams raw bits
    cfg.exponentFloor = 1;                // standalone PE
    if (ob_threshold > 0)
        cfg.obThreshold = ob_threshold;

    FPRakerPe pe(cfg);
    pe.setTraceCallback([&](const PeCycleTrace &t) {
        std::printf("  cycle %d: eacc=%d base=%d |", t.cycle, t.accExp,
                    t.base);
        for (size_t l = 0; l < t.action.size(); ++l) {
            std::printf(" lane%zu:%s", l, laneActionStr(t.action[l]));
            if (t.action[l] == PeCycleTrace::LaneAction::Fired ||
                t.action[l] == PeCycleTrace::LaneAction::ShiftStall)
                std::printf("(k=%d)", t.k[l]);
        }
        std::printf("\n");
    });

    MacPair pairs[2] = {
        {BFloat16::fromFields(false, 127 + 2, 0b1101000),  // 2^2*1.1101
         BFloat16::fromFields(false, 127 + 3, 0b0011000)}, // 2^3*1.0011
        {BFloat16::fromFields(false, 127 + 1, 0b1011000),  // 2^1*1.1011
         BFloat16::fromFields(false, 127 + 1, 0b1010000)}, // 2^1*1.1010
    };
    int cycles = pe.processSet(pairs, 2);
    std::printf("  -> %d cycles, result %.5f (exact: %.5f)\n", cycles,
                pe.accumulator().chunkRegister().readDouble(),
                7.25 * 9.5 + 3.375 * 3.25);
    return cycles;
}

} // namespace

int
main()
{
    std::printf("Fig. 5 walkthrough, full-precision accumulator "
                "(12 fraction bits):\n");
    runOnce(-1);

    std::printf("\nsame operands with a 6-bit accumulator window: the "
                "trailing terms fall\nout of bounds and the set "
                "finishes a cycle early:\n");
    runOnce(6);

    std::printf("\n(the paper's figure keeps eacc=5 through cycle 4; "
                "the text's per-step\nnormalization — which this model "
                "implements — reaches eacc=6 after cycle 2,\nshifting "
                "the printed base values but not the cycle count)\n");
    return 0;
}
