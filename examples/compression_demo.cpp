/**
 * @file
 * Exponent base-delta compression demo (paper Sec. IV-E / Fig. 9-10):
 * generate training-shaped tensors, compress, verify the exact round
 * trip, and print the footprint as a function of exponent spread and
 * sparsity — the off-chip traffic reduction the accelerator model
 * applies when AcceleratorConfig::useBdc is set.
 *
 *   ./compression_demo
 */

#include <cstdio>

#include "common/table.h"
#include "compress/base_delta.h"
#include "trace/tensor_gen.h"

using namespace fpraker;

int
main()
{
    BaseDeltaCodec codec;

    std::printf("groups of %d bfloat16 values; header = 8b base + 3b "
                "width + 1b flag;\nzero values use the reserved delta "
                "codeword (no denormals => exp 0 == zero)\n\n",
                codec.groupSize());

    Table t({"exponent sigma", "corr", "sparsity", "exp footprint",
             "total footprint", "round trip"});
    for (double sigma : {0.5, 1.5, 3.0, 6.0}) {
        for (double sparsity : {0.0, 0.5}) {
            ValueProfile p;
            p.expSigma = sigma;
            p.expCorr = 0.9;
            p.sparsity = sparsity;
            p.zeroClusterLen = 8.0;
            TensorGenerator gen(p, 99);
            auto values = gen.generate(8192);

            BdcResult r = codec.analyze(values);
            auto decoded = codec.decode(codec.encode(values),
                                        values.size());
            bool exact = true;
            for (size_t i = 0; i < values.size(); ++i)
                exact &= decoded[i].bits() == values[i].bits();

            t.addRow({Table::cell(sigma, 1), "0.9",
                      Table::pct(sparsity, 0),
                      Table::pct(r.exponentFootprint()),
                      Table::pct(r.totalFootprint()),
                      exact ? "exact" : "BROKEN"});
        }
    }
    t.print();

    std::printf("\nthe narrow, correlated exponent distributions of "
                "training tensors (paper Fig. 6)\nland in the top rows: "
                "~40-60%% of the exponent bits survive.\n");
    return 0;
}
