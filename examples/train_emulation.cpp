/**
 * @file
 * Train a small classifier three times — native FP32, bfloat16 with
 * chunk-based accumulation (the baseline PE's arithmetic), and the
 * FPRaker term-serial PE emulated in every MAC — and show the curves
 * converge together (the paper's Fig. 17 claim: FPRaker only skips
 * work that cannot affect the accumulator, so training accuracy is
 * preserved).
 *
 *   ./train_emulation [epochs]
 */

#include <cstdio>
#include <cstdlib>

#include "common/table.h"
#include "train/trainer.h"

using namespace fpraker;

int
main(int argc, char **argv)
{
    int epochs = argc > 1 ? std::atoi(argv[1]) : 6;

    DatasetConfig dcfg;
    dcfg.classes = 6;
    dcfg.imageSize = 10;
    dcfg.trainSamples = 768;
    dcfg.testSamples = 256;
    DatasetPair data = makeSynthCifar(dcfg);

    TrainConfig tcfg;
    tcfg.hidden = {40};
    tcfg.epochs = epochs;
    tcfg.batchSize = 32;

    std::printf("training a %zu->40->%d MLP on SynthCIFAR (%zu train / "
                "%zu test samples)\nunder three MAC arithmetics...\n\n",
                data.train.features(), data.classes,
                data.train.samples(), data.test.samples());

    MlpTrainer trainer(data, tcfg);
    TrainResult fp32 = trainer.run(MacMode::NativeFp32);
    TrainResult bf16c = trainer.run(MacMode::Bf16Chunked);
    TrainResult fpr = trainer.run(MacMode::FPRakerEmulated);

    Table t({"epoch", "Native_FP32", "Baseline_BF16", "FPRaker_BF16"});
    for (int e = 0; e < epochs; ++e)
        t.addRow({std::to_string(e + 1),
                  Table::pct(fp32.testAccuracy[static_cast<size_t>(e)]),
                  Table::pct(bf16c.testAccuracy[static_cast<size_t>(e)]),
                  Table::pct(fpr.testAccuracy[static_cast<size_t>(e)])});
    t.print();

    std::printf("\nFPRaker-emulated training lands within %.2f%% of the "
                "bf16 baseline:\nit only skips work that cannot affect "
                "the accumulator.\n",
                (fpr.finalAccuracy() - bf16c.finalAccuracy()) * 100.0);
    return 0;
}
