/**
 * @file
 * Quickstart: build an FPRaker PE (paper Sec. IV), feed it MAC sets,
 * and compare its result and cycle count against the bit-parallel
 * baseline PE (Sec. V-A) — the smallest end-to-end tour of the PE
 * API: PeConfig knobs, processSet/dot, PeStats, and the accumulator.
 *
 *   ./quickstart
 */

#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "numeric/reference.h"
#include "pe/baseline_pe.h"
#include "pe/fpraker_pe.h"

using namespace fpraker;

int
main()
{
    // An FPRaker PE multiplies 8 bfloat16 pairs per set, streaming the
    // A operands as signed powers of two. Configuration knobs: lane
    // count, shifter window, encoding, OB skipping, accumulator width.
    PeConfig cfg;
    cfg.lanes = 8;
    cfg.maxDelta = 3;
    cfg.skipOutOfBounds = true;

    FPRakerPe fpraker(cfg);
    BaselinePe baseline(cfg);

    // A 256-long dot product with some zeros (as post-ReLU activations
    // would have).
    Rng rng(2021);
    std::vector<BFloat16> a, b;
    for (int i = 0; i < 256; ++i) {
        bool zero = rng.bernoulli(0.4);
        a.push_back(zero ? BFloat16()
                         : bf16(static_cast<float>(rng.gaussian(0, 1))));
        b.push_back(bf16(static_cast<float>(rng.gaussian(0, 1))));
    }

    int fpr_cycles = fpraker.dot(a, b);
    int base_cycles = baseline.dot(a, b);
    double golden = dotDouble(a, b);

    std::printf("dot product of 256 bfloat16 pairs (40%% sparse A)\n");
    std::printf("  golden (FP64):        %+.6f\n", golden);
    std::printf("  baseline PE result:   %+.6f  in %d cycles\n",
                baseline.resultFloat(), base_cycles);
    std::printf("  FPRaker PE result:    %+.6f  in %d cycles\n",
                fpraker.resultFloat(), fpr_cycles);

    const PeStats &s = fpraker.stats();
    std::printf("\nFPRaker PE activity:\n");
    std::printf("  terms processed:      %llu\n",
                static_cast<unsigned long long>(s.termsProcessed));
    std::printf("  zero term slots:      %llu\n",
                static_cast<unsigned long long>(s.termsZeroSkipped));
    std::printf("  out-of-bounds terms:  %llu\n",
                static_cast<unsigned long long>(s.termsObSkipped));
    std::printf("  lane utilization:     %.1f%%\n",
                100.0 * static_cast<double>(s.laneUseful) /
                    static_cast<double>(s.laneCycles()));

    // A single FPRaker PE is slower than a bit-parallel PE — the win
    // comes from tiling 4.5x more of them into the same silicon area
    // (see bench/fig11_perf_energy).
    std::printf("\nper-PE cycle ratio (FPRaker/baseline): %.2f; "
                "iso-area PE ratio: 4.50x\n",
                static_cast<double>(fpr_cycles) / base_cycles);
    return 0;
}
