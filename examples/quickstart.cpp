/**
 * @file
 * Quickstart: the smallest end-to-end tour of the public experiment
 * API (src/api/) — build a Session, register an accelerator variant,
 * sweep two models, and render a structured Result both as a text
 * table and as a fpraker-result-v1 JSON document.
 *
 * This is the same surface the `fpraker` CLI drives: an experiment is
 * just a function from Session to Result (see docs/API.md for how to
 * register one). For a guided tour of the PE internals instead, see
 * examples/pe_walkthrough.cpp.
 *
 *   ./quickstart
 */

#include <cstdio>

#include "api/result.h"
#include "api/session.h"
#include "common/table.h"
#include "trace/model_zoo.h"

using namespace fpraker;

int
main()
{
    // A Session owns the execution substrate: the shared worker pool,
    // the sampling/thread knobs, and named accelerator variants. All
    // results are bit-identical at any thread count.
    api::Session session;
    session.threads(2);

    // Register the paper's full FPRaker configuration (Table II) as a
    // named variant. sampleSteps(48) resolves the sampling budget:
    // FPRAKER_SAMPLE_STEPS wins if set, else the 48 fallback.
    AcceleratorConfig cfg = AcceleratorConfig::paperDefault();
    cfg.sampleSteps = session.sampleSteps(48);
    const Accelerator &full = session.withVariant("full", cfg);

    // Sweep two Table I models at mid-training statistics. Jobs
    // flatten into (layer, op) units and shard across the pool.
    std::vector<ModelRunReport> reports = session.runModels(
        {SweepJob{&full, &findModel("ResNet18-Q"), 0.5},
         SweepJob{&full, &findModel("SNLI"), 0.5}});

    // Collect the measurements into a structured Result: tables for
    // humans, scalars/series/provenance for tools.
    api::Result res;
    res.experiment = "quickstart";
    res.display = "Quickstart";
    res.title = "two-model speedup sweep through the Session API";
    res.expectation = "ResNet18-Q ~2x, SNLI ~1.8x (Fig. 11)";
    res.configDigest = session.configDigest();
    res.threads = session.threadCount();
    res.sampleSteps = session.lastSampleSteps();
    res.variants = session.variantNames();

    api::ResultTable &t = res.table(
        "speedup", {"model", "speedup", "core-energy-eff"});
    for (const ModelRunReport &r : reports) {
        t.addRow({r.model, Table::cell(r.speedup()),
                  Table::cell(r.coreEnergyEfficiency())});
        res.scalar("speedup_" + r.model, r.speedup());
    }

    api::ReportWriter::print(res);

    // The same document as canonical JSON (what `fpraker run
    // <id> --json=FILE` writes; scripts/check_result_schema.py
    // validates the schema).
    std::printf("\nJSON document:\n%s",
                api::ReportWriter::renderJson(res).c_str());
    return 0;
}
