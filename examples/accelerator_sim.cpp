/**
 * @file
 * End-to-end accelerator simulation of one model (paper Sec. V-B /
 * Fig. 11's unit of work) through the public Session API: per-layer
 * speedup, stall profile, and energy of the iso-compute-area FPRaker
 * machine (36 tiles) vs the bit-parallel baseline (8 tiles).
 *
 *   ./accelerator_sim ["ResNet18-Q"] [progress]
 *
 * Model names are Table I's (`fpraker run table1`). Set
 * FPRAKER_THREADS to shard the run's (layer, op) units, phase-sample
 * bursts, and tile columns — the report is bit-identical at any
 * thread count. Sweeps over many models/configs/phases are exactly
 * what the registered experiments do (see docs/API.md and
 * src/api/experiments/fig11_perf_energy.cpp).
 */

#include <cstdio>
#include <cstdlib>

#include "api/session.h"
#include "common/table.h"
#include "trace/model_zoo.h"

using namespace fpraker;

int
main(int argc, char **argv)
{
    std::string model_name = argc > 1 ? argv[1] : "ResNet18-Q";
    double progress = argc > 2 ? std::atof(argv[2]) : 0.5;

    const ModelInfo &model = findModel(model_name);

    // One variant, one job: the Session API's smallest sweep. The
    // session resolves FPRAKER_SAMPLE_STEPS (fallback 96) and binds
    // the variant to its shared engine.
    api::Session session;
    AcceleratorConfig cfg = AcceleratorConfig::paperDefault();
    cfg.sampleSteps = session.sampleSteps(96);
    const Accelerator &accel = session.withVariant("full", cfg);

    std::printf("simulating %s (%zu layers, %.2f GMACs/op) at %.0f%% "
                "training progress\n",
                model.name.c_str(), model.layers.size(),
                static_cast<double>(model.macsPerOp()) / 1e9,
                progress * 100.0);

    std::vector<ModelRunReport> reports =
        session.runModels({SweepJob{&accel, &model, progress}});
    const ModelRunReport &report = reports.front();

    Table t({"layer", "op", "serial", "cyc/step", "speedup"});
    // Print the forward ops of up to 12 largest layers for brevity.
    size_t printed = 0;
    for (const auto &op : report.ops) {
        if (op.op != TrainingOp::Forward || printed >= 12)
            continue;
        t.addRow({op.layerName, opLabel(op.op),
                  tensorLabel(op.serialSide),
                  Table::cell(op.avgCyclesPerStep),
                  Table::cell(op.speedup())});
        ++printed;
    }
    t.print();

    std::printf("\ntotals:\n");
    std::printf("  speedup:                 %.2fx\n", report.speedup());
    std::printf("  per-phase: AxW %.2fx, GxW %.2fx, AxG %.2fx\n",
                report.speedupForOp(TrainingOp::Forward),
                report.speedupForOp(TrainingOp::InputGrad),
                report.speedupForOp(TrainingOp::WeightGrad));
    std::printf("  core energy efficiency:  %.2fx\n",
                report.coreEnergyEfficiency());
    std::printf("  total energy efficiency: %.2fx\n",
                report.totalEnergyEfficiency());
    double lc = report.activity.laneCycles();
    std::printf("  lane cycles: %.1f%% useful, %.1f%% no-term, %.1f%% "
                "shift-range, %.1f%% inter-PE, %.1f%% exponent\n",
                100 * report.activity.laneUseful / lc,
                100 * report.activity.laneNoTerm / lc,
                100 * report.activity.laneShiftRange / lc,
                100 * report.activity.laneInterPe / lc,
                100 * report.activity.laneExponent / lc);
    std::printf("\n(session: %d worker threads, %d sample steps, "
                "config digest %s)\n",
                session.threadCount(), session.lastSampleSteps(),
                session.configDigest().c_str());
    return 0;
}
