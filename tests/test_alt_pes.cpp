/**
 * @file
 * Tests for the Bit-Pragmatic-FP and Laconic-FP comparison PEs.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "energy/area_model.h"
#include "numeric/reference.h"
#include "pe/alt_pes.h"
#include "pe/baseline_pe.h"

namespace fpraker {
namespace {

std::vector<BFloat16>
randomValues(Rng &rng, size_t n, double sparsity)
{
    std::vector<BFloat16> v(n);
    for (auto &x : v)
        x = rng.bernoulli(sparsity)
                ? BFloat16()
                : bf16(static_cast<float>(rng.gaussian(0.0, 2.0)));
    return v;
}

TEST(BitPragmaticFp, ConfigDisablesFPRakersAreaLevers)
{
    PeConfig cfg = bitPragmaticFpConfig();
    EXPECT_GE(cfg.maxDelta, 100);      // full-range shifters
    EXPECT_FALSE(cfg.skipOutOfBounds); // no OB feedback
    EXPECT_EQ(cfg.exponentFloor, 1);   // private exponent block
}

TEST(BitPragmaticFp, NeverStallsOnShiftRange)
{
    Rng rng(5);
    FPRakerPe pe(bitPragmaticFpConfig());
    auto a = randomValues(rng, 256, 0.2);
    auto b = randomValues(rng, 256, 0.2);
    pe.dot(a, b);
    EXPECT_EQ(pe.stats().laneShiftRange, 0u);
    EXPECT_EQ(pe.stats().termsObSkipped, 0u);
    // Result still tracks the golden reference.
    double ref = dotDouble(a, b);
    double scale = 0.0;
    for (size_t i = 0; i < a.size(); ++i)
        scale += std::fabs(static_cast<double>(a[i].toFloat()) *
                           static_cast<double>(b[i].toFloat()));
    EXPECT_NEAR(pe.resultFloat(), ref,
                accumulationTolerance(pe.config().acc, 64) * (scale + 1));
}

TEST(BitPragmaticFp, FullShiftersBeatTheWindowWithoutObSkipping)
{
    // Holding OB skipping off on both sides, the full-range shifters
    // can only be as fast or faster per set than FPRaker's 3-position
    // window — the price is paid in area (the tile is >2x larger).
    // (With OB skipping enabled, full FPRaker usually wins anyway;
    // that is the paper's whole point.)
    Rng rng(6);
    for (int trial = 0; trial < 50; ++trial) {
        MacPair pairs[8];
        for (int l = 0; l < 8; ++l) {
            auto v = randomValues(rng, 2, 0.2);
            pairs[l] = {v[0], v[1]};
        }
        FPRakerPe bp(bitPragmaticFpConfig());
        PeConfig windowed = bitPragmaticFpConfig();
        windowed.maxDelta = 3;
        FPRakerPe fpr(windowed);
        EXPECT_LE(bp.processSet(pairs, 8), fpr.processSet(pairs, 8));
    }
    EXPECT_GT(AreaModel::bitPragmaticFpTile().totalUm2(),
              1.7 * AreaModel::fprTile().totalUm2());
}

TEST(BitPragmaticFp, IsoAreaTilesMatchPaper)
{
    // 2.5x smaller PE -> 20 tiles against the baseline's 8.
    EXPECT_EQ(AreaModel::bitPragmaticIsoTiles(8), 20);
}

TEST(LaconicFp, SingleTermPairExact)
{
    LaconicFpPe pe;
    MacPair pairs[8] = {};
    pairs[0] = {bf16(2.0f), bf16(4.0f)}; // 1 x 1 term pair
    EXPECT_EQ(pe.processSet(pairs, 8), 1);
    EXPECT_EQ(pe.resultFloat(), 8.0f);
    EXPECT_EQ(pe.stats().termPairs, 1u);
}

TEST(LaconicFp, CyclesAreTermProducts)
{
    LaconicFpPe pe;
    MacPair pairs[8] = {};
    // 1.875 (NAF: 2 terms) x 1.875 -> 4 term pairs.
    pairs[0] = {bf16(1.875f), bf16(1.875f)};
    EXPECT_EQ(pe.processSet(pairs, 8), 4);
    EXPECT_NEAR(pe.resultFloat(), 1.875f * 1.875f, 1e-3f);
}

TEST(LaconicFp, MatchesGoldenOnRandomDots)
{
    Rng rng(7);
    LaconicFpPe pe;
    auto a = randomValues(rng, 128, 0.3);
    auto b = randomValues(rng, 128, 0.3);
    pe.dot(a, b);
    double ref = dotDouble(a, b);
    double scale = 0.0;
    for (size_t i = 0; i < a.size(); ++i)
        scale += std::fabs(static_cast<double>(a[i].toFloat()) *
                           static_cast<double>(b[i].toFloat()));
    EXPECT_NEAR(pe.resultFloat(), ref, 0.02 * (scale + 1));
}

TEST(LaconicFp, SlowerThanFPRakerOnDenseValues)
{
    // terms(A) x terms(B) >= terms(A): Laconic pays quadratically.
    Rng rng(8);
    LaconicFpPe lac;
    FPRakerPe fpr(PeConfig{});
    auto a = randomValues(rng, 512, 0.0);
    auto b = randomValues(rng, 512, 0.0);
    int c_lac = lac.dot(a, b);
    int c_fpr = fpr.dot(a, b);
    EXPECT_GT(c_lac, c_fpr);
}

TEST(LaconicFp, ZeroOperandsCostOneCycle)
{
    LaconicFpPe pe;
    MacPair pairs[8] = {};
    EXPECT_EQ(pe.processSet(pairs, 8), 1);
    EXPECT_EQ(pe.resultFloat(), 0.0f);
}

} // namespace
} // namespace fpraker
