/**
 * @file
 * Tests for the trace subsystem: profiles, generators, and model zoo.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "trace/model_zoo.h"
#include "trace/tensor_gen.h"

namespace fpraker {
namespace {

TEST(TensorGenerator, HitsTargetSparsity)
{
    for (double target : {0.0, 0.2, 0.5, 0.8}) {
        ValueProfile p;
        p.sparsity = target;
        p.zeroClusterLen = 6.0;
        TensorGenerator gen(p, 77);
        TensorStats s = measureTensor(gen.generate(60000));
        EXPECT_NEAR(s.valueSparsity(), target, 0.03)
            << "target " << target;
    }
}

TEST(TensorGenerator, ZerosArriveInClusters)
{
    ValueProfile p;
    p.sparsity = 0.5;
    p.zeroClusterLen = 16.0;
    TensorGenerator gen(p, 5);
    auto vals = gen.generate(40000);
    // Count zero runs; mean length should approach the configured 16.
    int runs = 0;
    int64_t zeros = 0;
    bool in_run = false;
    for (const auto &v : vals) {
        if (v.isZero()) {
            ++zeros;
            if (!in_run) {
                ++runs;
                in_run = true;
            }
        } else {
            in_run = false;
        }
    }
    ASSERT_GT(runs, 0);
    double mean_run = static_cast<double>(zeros) / runs;
    EXPECT_NEAR(mean_run, 16.0, 3.0);
}

TEST(TensorGenerator, MantissaBitsControlTermSparsity)
{
    double prev = 0.0;
    for (int bits : {7, 4, 1}) {
        ValueProfile p;
        p.sparsity = 0.0;
        p.mantissaBits = bits;
        TensorGenerator gen(p, 13);
        TensorStats s = measureTensor(gen.generate(20000));
        EXPECT_GT(s.termSparsity(), prev)
            << "mantissa bits " << bits;
        prev = s.termSparsity();
    }
    // Power-of-two values: exactly one term each.
    ValueProfile p;
    p.mantissaBits = 0;
    TensorGenerator gen(p, 13);
    TensorStats s = measureTensor(gen.generate(5000));
    EXPECT_DOUBLE_EQ(s.termsPerValue(), 1.0);
}

TEST(TensorGenerator, ExponentsFollowProfile)
{
    ValueProfile p;
    p.expMu = -6.0;
    p.expSigma = 2.0;
    p.expCorr = 0.9;
    TensorGenerator gen(p, 21);
    auto vals = gen.generate(30000);
    double sum = 0.0, sq = 0.0;
    double corr_num = 0.0;
    int prev = 0;
    bool have_prev = false;
    int n = 0;
    for (const auto &v : vals) {
        if (v.isZero())
            continue;
        int e = v.unbiasedExponent();
        sum += e;
        sq += static_cast<double>(e) * e;
        if (have_prev)
            corr_num += (e + 6.0) * (prev + 6.0);
        prev = e;
        have_prev = true;
        ++n;
    }
    double mean = sum / n;
    double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, -6.0, 0.3);
    EXPECT_NEAR(std::sqrt(var), 2.0, 0.4);
    double corr = corr_num / n / var;
    EXPECT_GT(corr, 0.6); // strong positive lag-1 correlation survives
}

TEST(TensorGenerator, DeterministicPerSeed)
{
    ValueProfile p;
    p.sparsity = 0.3;
    TensorGenerator a(p, 99), b(p, 99), c(p, 100);
    auto va = a.generate(256);
    auto vb = b.generate(256);
    auto vc = c.generate(256);
    EXPECT_TRUE(std::equal(va.begin(), va.end(), vb.begin(),
                           [](BFloat16 x, BFloat16 y) {
                               return x.bits() == y.bits();
                           }));
    bool all_same = std::equal(va.begin(), va.end(), vc.begin(),
                               [](BFloat16 x, BFloat16 y) {
                                   return x.bits() == y.bits();
                               });
    EXPECT_FALSE(all_same);
}

TEST(TensorProfile, InterpolatesBetweenKnots)
{
    ValueProfile a;
    a.sparsity = 0.2;
    a.mantissaBits = 6;
    ValueProfile b = a;
    b.sparsity = 0.6;
    b.mantissaBits = 2;
    TensorProfile prof({{0.0, a}, {1.0, b}});
    EXPECT_DOUBLE_EQ(prof.at(0.0).sparsity, 0.2);
    EXPECT_DOUBLE_EQ(prof.at(1.0).sparsity, 0.6);
    EXPECT_NEAR(prof.at(0.5).sparsity, 0.4, 1e-12);
    EXPECT_EQ(prof.at(0.5).mantissaBits, 4);
    // Clamping outside [0, 1].
    EXPECT_DOUBLE_EQ(prof.at(-1.0).sparsity, 0.2);
    EXPECT_DOUBLE_EQ(prof.at(2.0).sparsity, 0.6);
}

TEST(ModelZoo, ContainsAllNineTableIModels)
{
    const auto &zoo = modelZoo();
    ASSERT_EQ(zoo.size(), 9u);
    const char *expected[] = {
        "SqueezeNet 1.1", "VGG16",      "ResNet50-S2",
        "ResNet18-Q",     "SNLI",       "Image2Text",
        "Detectron2",     "NCF",        "Bert",
    };
    for (size_t i = 0; i < 9; ++i)
        EXPECT_EQ(zoo[i].name, expected[i]);
}

TEST(ModelZoo, EveryModelHasWorkAndProfiles)
{
    for (const auto &m : modelZoo()) {
        EXPECT_FALSE(m.layers.empty()) << m.name;
        EXPECT_GT(m.macsPerOp(), 0) << m.name;
        for (const auto &l : m.layers) {
            EXPECT_GT(l.m, 0) << m.name << "/" << l.name;
            EXPECT_GT(l.n, 0) << m.name << "/" << l.name;
            EXPECT_GT(l.k, 0) << m.name << "/" << l.name;
        }
        // Profiles must be queryable at any progress.
        for (TensorKind k : {TensorKind::Activation, TensorKind::Weight,
                             TensorKind::Gradient}) {
            ValueProfile p = m.profile.of(k).at(0.5);
            EXPECT_GE(p.sparsity, 0.0);
            EXPECT_LE(p.sparsity, 1.0);
            EXPECT_GE(p.mantissaBits, 0);
            EXPECT_LE(p.mantissaBits, 7);
        }
    }
}

TEST(ModelZoo, ResNet50S2HasSparseWeights)
{
    const ModelInfo &m = findModel("ResNet50-S2");
    EXPECT_GT(m.profile.weight.at(0.5).sparsity, 0.5)
        << "dynamic sparse reparameterization keeps weights sparse";
}

TEST(ModelZoo, QuantizedModelHasShortMantissas)
{
    const ModelInfo &m = findModel("ResNet18-Q");
    EXPECT_LE(m.profile.activation.at(1.0).mantissaBits, 3);
    EXPECT_LE(m.profile.weight.at(1.0).mantissaBits, 3);
}

TEST(ModelZoo, VggMacsMatchKnownScale)
{
    // VGG16 convs are ~15.3 GMACs at 224x224 (batch 1); the FC layers
    // run at training batch 32 and add ~4 GMACs.
    const ModelInfo &m = findModel("VGG16");
    EXPECT_GT(m.macsPerOp(), 14e9);
    EXPECT_LT(m.macsPerOp(), 22e9);
}

TEST(Layer, OpLabelsAndOperands)
{
    EXPECT_STREQ(opLabel(TrainingOp::Forward), "AxW");
    EXPECT_STREQ(opLabel(TrainingOp::InputGrad), "GxW");
    EXPECT_STREQ(opLabel(TrainingOp::WeightGrad), "AxG");
    OpOperands f = operandsOf(TrainingOp::Forward);
    EXPECT_EQ(f.first, TensorKind::Activation);
    EXPECT_EQ(f.second, TensorKind::Weight);
    OpOperands ig = operandsOf(TrainingOp::InputGrad);
    EXPECT_EQ(ig.first, TensorKind::Gradient);
    OpOperands wg = operandsOf(TrainingOp::WeightGrad);
    EXPECT_EQ(wg.second, TensorKind::Gradient);
}

TEST(Layer, AuxiliaryNetworksExist)
{
    EXPECT_FALSE(resnet18Layers().empty());
    EXPECT_FALSE(alexnetLayers().empty());
    // AlexNet convs are ~1.07 GMACs; batch-32 FCs add ~1.9 GMACs.
    EXPECT_GT(totalMacs(alexnetLayers()), 2e9);
    EXPECT_LT(totalMacs(alexnetLayers()), 4e9);
}

} // namespace
} // namespace fpraker
