/**
 * @file
 * Tests for the FPRaker PE and PE-column models, including an exact
 * reproduction of the paper's Fig. 5 walkthrough.
 */

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "numeric/reference.h"
#include "pe/baseline_pe.h"
#include "pe/fpraker_pe.h"

namespace fpraker {
namespace {

/** The four operands of the paper's Fig. 5 example. */
struct Fig5Operands
{
    BFloat16 a0 = BFloat16::fromFields(false, 127 + 2, 0b1101000);
    BFloat16 b0 = BFloat16::fromFields(false, 127 + 3, 0b0011000);
    BFloat16 a1 = BFloat16::fromFields(false, 127 + 1, 0b1011000);
    BFloat16 b1 = BFloat16::fromFields(false, 127 + 1, 0b1010000);
};

PeConfig
fig5Config()
{
    PeConfig cfg;
    cfg.lanes = 2;
    cfg.maxDelta = 3;
    cfg.encoding = TermEncoding::RawBits; // Fig. 5 streams raw bits.
    cfg.exponentFloor = 1;                // standalone PE, no sharing
    return cfg;
}

TEST(Fig5Walkthrough, FiveCyclesAtFullPrecision)
{
    Fig5Operands v;
    FPRakerPe pe(fig5Config());

    std::vector<PeCycleTrace> trace;
    pe.setTraceCallback([&](const PeCycleTrace &t) { trace.push_back(t); });

    MacPair pairs[2] = {{v.a0, v.b0}, {v.a1, v.b1}};
    int cycles = pe.processSet(pairs, 2);
    EXPECT_EQ(cycles, 5);

    // A0*B0 + A1*B1 = 7.25*9.5 + 3.375*3.25 = 79.84375, exactly
    // representable in the 12-fraction-bit accumulator.
    EXPECT_DOUBLE_EQ(pe.accumulator().chunkRegister().readDouble(),
                     79.84375);

    // Cycle/fire/stall structure matches the figure exactly. The
    // figure prints eacc=5 through cycle 4, but its own partial sums
    // pass 2^6 after cycle 2 (38+19+6.5+3.25 = 66.75), and the paper
    // text specifies the accumulator is normalized and its exponent
    // updated every accumulation step — so the faithful eacc sequence
    // is 5,5,6,6,6 and the base sequence 0,1,3,5,8 (the figure's
    // 0,1,2,4,8 shifted by the exponent growth). Stall/fire behaviour
    // and the 5-cycle total are unchanged.
    ASSERT_EQ(trace.size(), 5u);
    const int expect_base[5] = {0, 1, 3, 5, 8};
    const int expect_eacc[5] = {5, 5, 6, 6, 6};
    for (int c = 0; c < 5; ++c) {
        EXPECT_EQ(trace[c].base, expect_base[c]) << "cycle " << c + 1;
        EXPECT_EQ(trace[c].accExp, expect_eacc[c]) << "cycle " << c + 1;
    }

    using LA = PeCycleTrace::LaneAction;
    // Cycles 1 & 2: both lanes fire (deltas within 3).
    EXPECT_EQ(trace[0].action[0], LA::Fired);
    EXPECT_EQ(trace[0].action[1], LA::Fired);
    EXPECT_EQ(trace[1].action[0], LA::Fired);
    EXPECT_EQ(trace[1].action[1], LA::Fired);
    // Cycle 3: lane 1's term is 4 positions past the base -> stall.
    EXPECT_EQ(trace[2].action[0], LA::Fired);
    EXPECT_EQ(trace[2].action[1], LA::ShiftStall);
    EXPECT_EQ(trace[2].k[1] - trace[2].base, 4);
    // Cycle 4: both fire again (delta 2).
    EXPECT_EQ(trace[3].action[0], LA::Fired);
    EXPECT_EQ(trace[3].action[1], LA::Fired);
    // Cycle 5: lane 0 exhausted, lane 1 fires its final term at k=8.
    EXPECT_EQ(trace[4].action[0], LA::Idle);
    EXPECT_EQ(trace[4].action[1], LA::Fired);
    EXPECT_EQ(trace[4].k[1], 8);

    // Stats partition: lane-cycles = lanes x set cycles.
    EXPECT_EQ(pe.stats().laneCycles(),
              static_cast<uint64_t>(2) * pe.stats().setCycles);
    EXPECT_EQ(pe.stats().termsProcessed, 8u); // all 4 + 4 raw terms
}

TEST(Fig5Walkthrough, FourCyclesWithSixBitAccumulator)
{
    // "Assume the total precision of the accumulator mantissa is 6b":
    // skipping lane 1's out-of-bounds tail saves the fifth cycle. With
    // per-step normalization the accumulator exponent reaches 6 after
    // cycle 2, so both of lane 1's trailing terms (k=7 and k=8) are
    // beyond the 6-bit window; the figure's lazier exponent tracking
    // skips only the k=8 one. Either way the set finishes in 4 cycles.
    Fig5Operands v;
    PeConfig cfg = fig5Config();
    cfg.obThreshold = 6;
    FPRakerPe pe(cfg);
    MacPair pairs[2] = {{v.a0, v.b0}, {v.a1, v.b1}};
    EXPECT_EQ(pe.processSet(pairs, 2), 4);
    EXPECT_EQ(pe.stats().termsObSkipped, 2u);
}

TEST(Fig5Walkthrough, NoObSkippingStillFiveCycles)
{
    Fig5Operands v;
    PeConfig cfg = fig5Config();
    cfg.obThreshold = 6;
    cfg.skipOutOfBounds = false;
    FPRakerPe pe(cfg);
    MacPair pairs[2] = {{v.a0, v.b0}, {v.a1, v.b1}};
    EXPECT_EQ(pe.processSet(pairs, 2), 5);
    EXPECT_EQ(pe.stats().termsObSkipped, 0u);
}

PeConfig
defaultConfig()
{
    PeConfig cfg;
    return cfg;
}

std::vector<BFloat16>
randomVector(Rng &rng, size_t n, double sparsity, double exp_sigma)
{
    std::vector<BFloat16> v(n);
    for (auto &x : v) {
        if (rng.bernoulli(sparsity)) {
            x = BFloat16();
        } else {
            double mag = std::exp2(rng.gaussian(0.0, exp_sigma));
            if (rng.bernoulli(0.5))
                mag = -mag;
            x = bf16(static_cast<float>(mag * rng.uniform(1.0, 2.0)));
        }
    }
    return v;
}

TEST(FPRakerPe, AllZeroSetCostsTheExponentFloor)
{
    FPRakerPe pe(defaultConfig());
    MacPair pairs[8] = {};
    EXPECT_EQ(pe.processSet(pairs, 8), 2); // shared exponent block floor
    EXPECT_EQ(pe.stats().laneExponent, 16u);
    EXPECT_EQ(pe.stats().termsZeroSkipped, 64u); // 8 empty slots x 8
    EXPECT_TRUE(pe.accumulator().chunkRegister().isZero());
}

TEST(FPRakerPe, ZeroBOperandsRetireThroughObPath)
{
    // A zero B operand carries an all-zero exponent field, so its
    // product exponent sits ~127 binades below any live lane: once the
    // set's emax is anchored by one real product, the zero-B lanes are
    // instantly out-of-bounds and their term streams are dropped.
    PeConfig cfg = defaultConfig();
    FPRakerPe pe(cfg);
    MacPair pairs[8] = {};
    pairs[0] = {bf16(1.5f), bf16(1.0f)}; // anchors emax at 0
    for (int i = 1; i < 8; ++i)
        pairs[i] = {bf16(1.875f), BFloat16()}; // 2 NAF terms each, b = 0
    EXPECT_EQ(pe.processSet(pairs, 8), cfg.exponentFloor);
    EXPECT_EQ(pe.stats().termsObSkipped, 14u); // 7 lanes x 2 terms
    EXPECT_EQ(pe.resultFloat(), 1.5f);
}

TEST(FPRakerPe, ZeroBWithoutObSkippingBurnsCycles)
{
    PeConfig cfg = defaultConfig();
    cfg.skipOutOfBounds = false;
    FPRakerPe pe(cfg);
    MacPair pairs[8] = {};
    for (int i = 0; i < 8; ++i)
        pairs[i] = {bf16(1.875f), BFloat16()};
    // 1.875 = +2^1 - 2^-3: two terms must stream through every lane.
    EXPECT_EQ(pe.processSet(pairs, 8), 2);
    EXPECT_EQ(pe.stats().termsProcessed, 16u);
    EXPECT_EQ(pe.resultFloat(), 0.0f);
}

TEST(FPRakerPe, PowerOfTwoOperandsFinishInOneTermCycle)
{
    PeConfig cfg = defaultConfig();
    cfg.exponentFloor = 1;
    FPRakerPe pe(cfg);
    MacPair pairs[8];
    for (int i = 0; i < 8; ++i)
        pairs[i] = {bf16(2.0f), bf16(1.5f)};
    EXPECT_EQ(pe.processSet(pairs, 8), 1);
    EXPECT_EQ(pe.resultFloat(), 8 * 3.0f);
}

TEST(FPRakerPe, ExactMatchOnNarrowExponentData)
{
    // 3-bit mantissas at a common exponent: one set's products span at
    // most 6 fractional bits against a sum below 2^5, which all fits in
    // the 12-fraction-bit window. Term-serial and bit-parallel
    // accumulation must then agree bit for bit, set by set.
    Rng rng(42);
    PeConfig cfg = defaultConfig();
    for (int set = 0; set < 200; ++set) {
        FPRakerPe fpr(cfg);
        BaselinePe base(cfg);
        MacPair pairs[8];
        for (int l = 0; l < 8; ++l) {
            int man_a = static_cast<int>(rng.uniformInt(8)) << 4;
            int man_b = static_cast<int>(rng.uniformInt(8)) << 4;
            pairs[l] = {
                BFloat16::fromFields(rng.bernoulli(0.5), 127, man_a),
                BFloat16::fromFields(rng.bernoulli(0.5), 127, man_b)};
        }
        fpr.processSet(pairs, 8);
        base.processSet(pairs, 8);
        ASSERT_EQ(fpr.accumulator().chunkRegister().readDouble(),
                  base.accumulator().chunkRegister().readDouble())
            << "diverged at set " << set;
    }
}

/** Randomized equivalence sweep over (sparsity, exponent spread). */
class PeEquivalence
    : public ::testing::TestWithParam<std::tuple<double, double, int>>
{
};

TEST_P(PeEquivalence, MatchesGoldenWithinTolerance)
{
    auto [sparsity, exp_sigma, seed] = GetParam();
    Rng rng(static_cast<uint64_t>(seed) * 100003 + 7);
    const size_t n = 512;
    auto a = randomVector(rng, n, sparsity, exp_sigma);
    auto b = randomVector(rng, n, sparsity, exp_sigma);

    PeConfig cfg = defaultConfig();
    FPRakerPe fpr(cfg);
    BaselinePe base(cfg);
    int fpr_cycles = fpr.dot(a, b);
    base.dot(a, b);

    double ref = dotDouble(a, b);
    double scale = 0.0;
    for (size_t i = 0; i < n; ++i)
        scale += std::fabs(static_cast<double>(a[i].toFloat()) *
                           static_cast<double>(b[i].toFloat()));
    double tol = accumulationTolerance(cfg.acc, 64) * (scale + 1.0);

    EXPECT_NEAR(fpr.resultFloat(), ref, tol);
    EXPECT_NEAR(base.resultFloat(), ref, tol);
    EXPECT_NEAR(fpr.resultFloat(), base.resultFloat(), tol);

    // Term-serial processing can never beat one cycle per set, and the
    // floor guarantees at least exponentFloor cycles per set.
    EXPECT_GE(fpr_cycles,
              static_cast<int>(n / 8) * cfg.exponentFloor);

    // Stats partition invariant.
    EXPECT_EQ(fpr.stats().laneCycles(),
              static_cast<uint64_t>(cfg.lanes) * fpr.stats().setCycles);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PeEquivalence,
    ::testing::Combine(::testing::Values(0.0, 0.35, 0.8),
                       ::testing::Values(0.5, 2.0, 6.0),
                       ::testing::Values(1, 2)));

TEST(FPRakerPe, ObSkippingNeverSlowsDown)
{
    Rng rng(1234);
    PeConfig on = defaultConfig();
    PeConfig off = defaultConfig();
    off.skipOutOfBounds = false;
    for (int trial = 0; trial < 100; ++trial) {
        MacPair pairs[8];
        for (int l = 0; l < 8; ++l) {
            auto v = randomVector(rng, 2, 0.2, 4.0);
            pairs[l] = {v[0], v[1]};
        }
        FPRakerPe pe_on(on);
        FPRakerPe pe_off(off);
        int c_on = pe_on.processSet(pairs, 8);
        int c_off = pe_off.processSet(pairs, 8);
        EXPECT_LE(c_on, c_off) << "trial " << trial;
    }
}

TEST(FPRakerPe, WiderShiftWindowNeverSlowsDown)
{
    Rng rng(99);
    PeConfig narrow = defaultConfig();
    PeConfig wide = defaultConfig();
    wide.maxDelta = 12;
    for (int trial = 0; trial < 100; ++trial) {
        MacPair pairs[8];
        for (int l = 0; l < 8; ++l) {
            auto v = randomVector(rng, 2, 0.1, 3.0);
            pairs[l] = {v[0], v[1]};
        }
        FPRakerPe pe_n(narrow);
        FPRakerPe pe_w(wide);
        EXPECT_LE(pe_w.processSet(pairs, 8), pe_n.processSet(pairs, 8));
    }
}

TEST(FPRakerPe, CanonicalEncodingBeatsRawBitsOnAggregate)
{
    Rng rng(7);
    PeConfig naf = defaultConfig();
    PeConfig raw = defaultConfig();
    raw.encoding = TermEncoding::RawBits;
    FPRakerPe pe_naf(naf);
    FPRakerPe pe_raw(raw);
    const size_t n = 2048;
    auto a = randomVector(rng, n, 0.0, 1.5);
    auto b = randomVector(rng, n, 0.0, 1.5);
    int c_naf = pe_naf.dot(a, b);
    int c_raw = pe_raw.dot(a, b);
    EXPECT_LT(c_naf, c_raw);
}

TEST(FPRakerColumn, TwoPesProduceCorrectIndependentResults)
{
    Rng rng(55);
    PeConfig cfg = defaultConfig();
    FPRakerColumn col(cfg, 2);
    const int sets = 8; // one chunk
    std::vector<BFloat16> a_all, b0_all, b1_all;
    for (int s = 0; s < sets; ++s) {
        auto a = randomVector(rng, 8, 0.2, 2.0);
        auto b0 = randomVector(rng, 8, 0.2, 2.0);
        auto b1 = randomVector(rng, 8, 0.2, 2.0);
        std::vector<BFloat16> b(16);
        std::copy(b0.begin(), b0.end(), b.begin());
        std::copy(b1.begin(), b1.end(), b.begin() + 8);
        col.runSet(a.data(), b.data(), 8);
        a_all.insert(a_all.end(), a.begin(), a.end());
        b0_all.insert(b0_all.end(), b0.begin(), b0.end());
        b1_all.insert(b1_all.end(), b1.begin(), b1.end());
    }
    double ref0 = dotDouble(a_all, b0_all);
    double ref1 = dotDouble(a_all, b1_all);
    double tol0 = accumulationTolerance(cfg.acc, 64) *
                  (std::fabs(ref0) + 64.0);
    double tol1 = accumulationTolerance(cfg.acc, 64) *
                  (std::fabs(ref1) + 64.0);
    EXPECT_NEAR(col.accumulator(0).total(), ref0, tol0);
    EXPECT_NEAR(col.accumulator(1).total(), ref1, tol1);
}

TEST(FPRakerColumn, LockstepIsNeverFasterThanStandalone)
{
    Rng rng(77);
    PeConfig cfg = defaultConfig();
    for (int trial = 0; trial < 50; ++trial) {
        auto a = randomVector(rng, 8, 0.2, 3.0);
        auto b0 = randomVector(rng, 8, 0.2, 3.0);
        auto b1 = randomVector(rng, 8, 0.2, 3.0);
        std::vector<BFloat16> b(16);
        std::copy(b0.begin(), b0.end(), b.begin());
        std::copy(b1.begin(), b1.end(), b.begin() + 8);

        FPRakerColumn col(cfg, 2);
        int col_cycles = col.runSet(a.data(), b.data(), 8);

        FPRakerColumn solo0(cfg, 1);
        FPRakerColumn solo1(cfg, 1);
        int c0 = solo0.runSet(a.data(), b0.data(), 8);
        int c1 = solo1.runSet(a.data(), b1.data(), 8);
        EXPECT_GE(col_cycles, std::max(c0, c1)) << "trial " << trial;
    }
}

TEST(FPRakerColumn, ObConsensusKeepsStreamAliveForHungryPe)
{
    // PE 0 holds a huge accumulated value, PE 1 a tiny one. A set of
    // small products is out-of-bounds for PE 0 only; the stream must
    // keep flowing for PE 1 and both results must stay correct.
    PeConfig cfg = defaultConfig();
    cfg.exponentFloor = 1;
    FPRakerColumn col(cfg, 2);

    // Prime PE 0 with a large value through a set whose B row for PE 1
    // is zero.
    std::vector<BFloat16> a0(8), b0(16);
    a0[0] = bf16(0x1.0p10f);
    b0[0] = bf16(0x1.0p10f); // PE 0 row
    col.runSet(a0.data(), b0.data(), 8);
    EXPECT_NEAR(col.accumulator(0).total(), 0x1.0p20f, 1.0f);
    EXPECT_EQ(col.accumulator(1).total(), 0.0f);

    // Now a set of small values: far below 2^20 (OB for PE 0), fine for
    // PE 1.
    std::vector<BFloat16> a1(8), b1(16);
    for (int l = 0; l < 8; ++l) {
        a1[l] = bf16(1.5f);
        b1[l] = bf16(1.0f);      // PE 0 row: products ~1.5 vs acc 2^20
        b1[8 + l] = bf16(2.0f);  // PE 1 row
    }
    uint64_t ob_before = col.stats(0).termsObSkipped;
    col.runSet(a1.data(), b1.data(), 8);
    EXPECT_GT(col.stats(0).termsObSkipped, ob_before);
    // PE 0 value unchanged (contributions below precision).
    EXPECT_NEAR(col.accumulator(0).total(), 0x1.0p20f, 1.0f);
    // PE 1 accumulated 8 * 1.5 * 2.0 = 24.
    EXPECT_NEAR(col.accumulator(1).total(), 24.0f, 0.1f);
}

TEST(FPRakerColumn, InterPeStallChargesEveryLane)
{
    PeConfig cfg = defaultConfig();
    FPRakerColumn col(cfg, 2);
    col.chargeInterPeStall(3);
    for (int r = 0; r < 2; ++r) {
        EXPECT_EQ(col.stats(r).laneInterPe, 3u * 8u);
        EXPECT_EQ(col.stats(r).setCycles, 3u);
    }
}

TEST(FPRakerPe, DotHandlesShortTails)
{
    FPRakerPe pe(defaultConfig());
    std::vector<BFloat16> a = {bf16(1.0f), bf16(2.0f), bf16(3.0f)};
    std::vector<BFloat16> b = {bf16(4.0f), bf16(5.0f), bf16(6.0f)};
    pe.dot(a, b);
    EXPECT_NEAR(pe.resultFloat(), 32.0f, 0.1f);
}

TEST(FPRakerPe, StatsAccumulateAcrossSets)
{
    Rng rng(3);
    FPRakerPe pe(defaultConfig());
    auto a = randomVector(rng, 64, 0.3, 1.0);
    auto b = randomVector(rng, 64, 0.3, 1.0);
    pe.dot(a, b);
    EXPECT_EQ(pe.stats().sets, 8u);
    EXPECT_EQ(pe.stats().macs, 64u);
    EXPECT_GT(pe.stats().termsProcessed, 0u);
    pe.clearStats();
    EXPECT_EQ(pe.stats().sets, 0u);
}

} // namespace
} // namespace fpraker
