/**
 * @file
 * Tests for the bit-parallel baseline PE.
 */

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "numeric/reference.h"
#include "pe/baseline_pe.h"

namespace fpraker {
namespace {

TEST(BaselinePe, OneCyclePerSetAlways)
{
    BaselinePe pe;
    MacPair zeros[8] = {};
    EXPECT_EQ(pe.processSet(zeros, 8), 1);
    MacPair dense[8];
    for (int i = 0; i < 8; ++i)
        dense[i] = {bf16(1.9921875f), bf16(1.9921875f)};
    EXPECT_EQ(pe.processSet(dense, 8), 1);
    EXPECT_EQ(pe.stats().cycles, 2u);
    EXPECT_EQ(pe.stats().macs, 16u);
    EXPECT_EQ(pe.stats().ineffectualMacs, 8u);
}

TEST(BaselinePe, SimpleDotProduct)
{
    BaselinePe pe;
    std::vector<BFloat16> a, b;
    for (int i = 1; i <= 16; ++i) {
        a.push_back(bf16(static_cast<float>(i)));
        b.push_back(bf16(0.5f));
    }
    int cycles = pe.dot(a, b);
    EXPECT_EQ(cycles, 2);
    EXPECT_NEAR(pe.resultFloat(), 68.0f, 0.25f);
}

TEST(BaselinePe, MixedSignsCancelExactly)
{
    BaselinePe pe;
    MacPair pairs[8] = {};
    pairs[0] = {bf16(3.0f), bf16(2.0f)};
    pairs[1] = {bf16(-3.0f), bf16(2.0f)};
    pairs[2] = {bf16(1.5f), bf16(4.0f)};
    pairs[3] = {bf16(1.5f), bf16(-4.0f)};
    pe.processSet(pairs, 8);
    EXPECT_EQ(pe.resultFloat(), 0.0f);
}

TEST(BaselinePe, TinyProductBelowWindowIsDropped)
{
    // One product sits ~60 binades below the set maximum: it cannot
    // affect the 12-fraction-bit accumulator and is dropped exactly as
    // the hardware drops bits beyond the sticky position.
    BaselinePe pe;
    MacPair pairs[8] = {};
    pairs[0] = {bf16(0x1.0p30f), bf16(0x1.0p30f)};
    pairs[1] = {bf16(0x1.0p-15f), bf16(0x1.0p-15f)};
    pe.processSet(pairs, 8);
    EXPECT_DOUBLE_EQ(pe.accumulator().chunkRegister().readDouble(),
                     0x1.0p60);
}

TEST(BaselinePe, MatchesFp64OnRandomData)
{
    Rng rng(17);
    PeConfig cfg;
    BaselinePe pe(cfg);
    std::vector<BFloat16> a, b;
    for (int i = 0; i < 256; ++i) {
        a.push_back(bf16(static_cast<float>(rng.gaussian(0.0, 2.0))));
        b.push_back(bf16(static_cast<float>(rng.gaussian(0.0, 2.0))));
    }
    pe.dot(a, b);
    double ref = dotDouble(a, b);
    double scale = 0.0;
    for (size_t i = 0; i < a.size(); ++i)
        scale += std::fabs(static_cast<double>(a[i].toFloat()) *
                           static_cast<double>(b[i].toFloat()));
    EXPECT_NEAR(pe.resultFloat(), ref,
                accumulationTolerance(cfg.acc, 64) * (scale + 1.0));
}

/** Chunk-size sweep: accuracy must not degrade with smaller chunks. */
class BaselineChunkSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(BaselineChunkSweep, LongDotStaysAccurate)
{
    Rng rng(23);
    PeConfig cfg;
    cfg.acc.chunkSize = GetParam();
    BaselinePe pe(cfg);
    std::vector<BFloat16> a, b;
    for (int i = 0; i < 4096; ++i) {
        a.push_back(bf16(static_cast<float>(rng.uniform(0.5, 1.5))));
        b.push_back(bf16(static_cast<float>(rng.uniform(0.5, 1.5))));
    }
    pe.dot(a, b);
    double ref = dotDouble(a, b);
    EXPECT_LT(relError(pe.resultFloat(), ref), 2e-3)
        << "chunk " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Chunks, BaselineChunkSweep,
                         ::testing::Values(8, 64, 256, 4096));

} // namespace
} // namespace fpraker
