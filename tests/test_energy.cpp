/**
 * @file
 * Tests for the area and energy models (Table III calibration).
 */

#include <gtest/gtest.h>

#include "energy/area_model.h"
#include "energy/energy_model.h"

namespace fpraker {
namespace {

TEST(AreaModel, ReproducesTableIII)
{
    TileAreaReport fpr = AreaModel::fprTile();
    TileAreaReport base = AreaModel::baselineTile();
    // The calibrated defaults land exactly on the published numbers.
    EXPECT_NEAR(fpr.peArrayUm2, 304118.0, 1.0);
    EXPECT_NEAR(fpr.encodersUm2, 12950.0, 1.0);
    EXPECT_NEAR(fpr.totalUm2(), 317068.0, 2.0);
    EXPECT_NEAR(base.totalUm2(), 1421579.0, 2.0);
    EXPECT_NEAR(AreaModel::areaRatio(), 0.22, 0.01);

    EXPECT_NEAR(fpr.peArrayMw, 104.0, 0.5);
    EXPECT_NEAR(fpr.encodersMw, 5.5, 0.1);
    EXPECT_NEAR(base.totalMw(), 475.0, 1.0);
}

TEST(AreaModel, IsoComputeTilesMatchTableII)
{
    EXPECT_EQ(AreaModel::isoComputeTiles(8), 36);
}

TEST(AreaModel, PeBreakdownSumsToArray)
{
    PeAreaBreakdown b = AreaModel::fprPeBreakdown();
    // 64 PEs make up the PE-array area.
    EXPECT_NEAR(b.totalUm2() * 64.0, 304118.0, 5.0);
    EXPECT_GT(b.shiftersUm2, 0.0);
    EXPECT_GT(b.accumulatorUm2, 0.0);
    EXPECT_GT(b.exponentBlockUm2, 0.0);
}

TEST(AreaModel, WiderShifterWindowCostsArea)
{
    PeConfig narrow;
    PeConfig wide;
    wide.maxDelta = 12;
    double a_narrow = AreaModel::fprPeBreakdown(narrow).totalUm2();
    double a_wide = AreaModel::fprPeBreakdown(wide).totalUm2();
    EXPECT_GT(a_wide, a_narrow);
}

TEST(EnergyModel, PerCyclePowerMatchesTableIII)
{
    EnergyModel em;
    // 109.5 mW / 600 MHz = 182.5 pJ/cycle; 475 mW -> 791.7 pJ/cycle.
    EXPECT_NEAR(em.fprTileCyclePj(), 182.5, 0.1);
    EXPECT_NEAR(em.baseTileCyclePj(), 791.67, 0.1);
}

TEST(EnergyModel, IsoAreaCoreEfficiencyNearPaper)
{
    // With the paper's 1.5x speedup, 36 FPRaker tiles at 182.5
    // pJ/cycle vs 8 baseline tiles at 791.7 pJ/cycle give ~1.45x core
    // energy efficiency — the published 1.4x.
    EnergyModel em;
    PeStats fpr_stats;
    fpr_stats.laneUseful = 80;
    fpr_stats.laneNoTerm = 20;
    fpr_stats.setCycles = 100;
    BaselinePeStats base_stats;
    base_stats.macs = 1000;
    base_stats.ineffectualMacs = 300;

    double base_cycles = 1000.0;
    double fpr_cycles = base_cycles / 1.5;
    double e_fpr =
        em.fprCoreEnergy(fpr_cycles, 36, fpr_stats).totalPj();
    double e_base = em.baseCoreEnergy(base_cycles, 8, base_stats);
    double eff = e_base / e_fpr;
    EXPECT_GT(eff, 1.1);
    EXPECT_LT(eff, 2.2);
}

TEST(EnergyModel, BreakdownSharesSumToTotal)
{
    EnergyModel em;
    PeStats stats;
    stats.laneUseful = 50;
    stats.laneNoTerm = 50;
    stats.setCycles = 100;
    CoreEnergyBreakdown b = em.fprCoreEnergy(100.0, 1, stats);
    EXPECT_NEAR(b.computePj + b.controlPj + b.accumulationPj,
                b.totalPj(), 1e-9);
    EXPECT_GT(b.computePj, b.controlPj); // compute dominates control
}

TEST(EnergyModel, LowerActivityLowersFprEnergy)
{
    EnergyModel em;
    PeStats busy;
    busy.laneUseful = 100;
    busy.setCycles = 100;
    PeStats idle;
    idle.laneNoTerm = 100;
    idle.setCycles = 100;
    EXPECT_GT(em.fprCoreEnergy(100.0, 1, busy).totalPj(),
              em.fprCoreEnergy(100.0, 1, idle).totalPj());
    // The static floor keeps idle energy above zero.
    EXPECT_GT(em.fprCoreEnergy(100.0, 1, idle).totalPj(), 0.0);
}

TEST(EnergyModel, BaselineGatingSavesDynamicEnergyOnly)
{
    EnergyModel em;
    BaselinePeStats dense;
    dense.macs = 1000;
    BaselinePeStats sparse;
    sparse.macs = 1000;
    sparse.ineffectualMacs = 900;
    double e_dense = em.baseCoreEnergy(100.0, 1, dense);
    double e_sparse = em.baseCoreEnergy(100.0, 1, sparse);
    EXPECT_LT(e_sparse, e_dense);
    // Cycles are unchanged, so at most the dynamic share disappears.
    EXPECT_GT(e_sparse, e_dense * em.config().staticFraction);
}

TEST(EnergyModel, MemoryEnergies)
{
    EnergyModel em;
    EXPECT_DOUBLE_EQ(em.sramEnergyPj(160.0), 10.0 * 620.0);
    EXPECT_DOUBLE_EQ(em.dramEnergyPj(100.0), 100.0 * 8.0 * 10.0);
}

} // namespace
} // namespace fpraker
