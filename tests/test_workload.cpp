/**
 * @file
 * Tests for the workload subsystem: im2col/GEMM lowering dimensions
 * against hand-computed values, trace-backed vs generator-backed slab
 * bit-identity, runLayerOp parity through the SlabSupply seam,
 * ContainerMatrix slab ingestion, and thread-count fingerprint
 * determinism of the workload experiments.
 */

#include <cstring>

#include <gtest/gtest.h>

#include "api/driver.h"
#include "api/registry.h"
#include "api/result.h"
#include "memory/data_supply.h"
#include "workload/supply.h"

namespace fpraker {
namespace {

using workload::BatchGeometry;
using workload::CatalogLayer;
using workload::CatalogModel;
using workload::lowerLayer;
using workload::LoweredModel;
using workload::PhaseTrace;
using workload::TraceSlabSupply;

const CatalogLayer &
layerNamed(const CatalogModel &m, const std::string &name)
{
    for (const CatalogLayer &l : m.layers)
        if (l.name == name)
            return l;
    ADD_FAILURE() << "no layer " << name << " in " << m.name;
    return m.layers.front();
}

TEST(Lowering, AlexNetConv2HandComputed)
{
    // conv2: 27x27 input, 96 -> 256 channels, 5x5, stride 1, pad 2
    // => 27x27 output grid. At batch 16 the im2col GEMM is
    // M = 16*27*27, N = 256, K = 96*5*5.
    const CatalogModel &m = workload::findWorkloadModel("AlexNet");
    const CatalogLayer &conv2 = layerNamed(m, "conv2");
    const BatchGeometry geom{16, 64};

    LayerShape fwd = lowerLayer(conv2, TrainingOp::Forward, geom);
    EXPECT_EQ(fwd.m, 16 * 27 * 27);
    EXPECT_EQ(fwd.n, 256);
    EXPECT_EQ(fwd.k, 96 * 5 * 5);
    EXPECT_EQ(fwd.kernelArea, 25);
    EXPECT_EQ(fwd.type, LayerType::Conv);

    // input-grad transposes (M, N, K) -> (M, K, N); its [M, K]
    // operand is the unduplicated output gradient.
    LayerShape ig = lowerLayer(conv2, TrainingOp::InputGrad, geom);
    EXPECT_EQ(ig.m, fwd.m);
    EXPECT_EQ(ig.n, fwd.k);
    EXPECT_EQ(ig.k, fwd.n);
    EXPECT_EQ(ig.kernelArea, 1);

    // weight-grad transposes (M, N, K) -> (K, N, M); it reads the
    // im2col'd activations again.
    LayerShape wg = lowerLayer(conv2, TrainingOp::WeightGrad, geom);
    EXPECT_EQ(wg.m, fwd.k);
    EXPECT_EQ(wg.n, fwd.n);
    EXPECT_EQ(wg.k, fwd.m);
    EXPECT_EQ(wg.kernelArea, 25);
}

TEST(Lowering, Vgg16Conv32HandComputed)
{
    // conv3_2: 56x56, 256 -> 256, 3x3 same-padded => 56x56 output.
    const CatalogModel &m = workload::findWorkloadModel("VGG-16");
    const CatalogLayer &conv = layerNamed(m, "conv3_2");
    LayerShape fwd =
        lowerLayer(conv, TrainingOp::Forward, BatchGeometry{8, 64});
    EXPECT_EQ(fwd.m, 8 * 56 * 56);
    EXPECT_EQ(fwd.n, 256);
    EXPECT_EQ(fwd.k, 256 * 3 * 3);
    EXPECT_EQ(fwd.kernelArea, 9);
}

TEST(Lowering, ResNet50StemAndStridesHandComputed)
{
    // conv1: 224x224, 3 -> 64, 7x7 stride 2 pad 3
    // => (224 + 6 - 7) / 2 + 1 = 112.
    const CatalogModel &m = workload::findWorkloadModel("ResNet-50");
    const CatalogLayer &stem = layerNamed(m, "conv1");
    LayerShape fwd =
        lowerLayer(stem, TrainingOp::Forward, BatchGeometry{4, 64});
    EXPECT_EQ(fwd.m, 4 * 112 * 112);
    EXPECT_EQ(fwd.n, 64);
    EXPECT_EQ(fwd.k, 3 * 7 * 7);

    // A bottleneck 1x1 has kernelArea 1: im2col duplicates nothing.
    const CatalogLayer &pw = layerNamed(m, "res2_0/conv1");
    LayerShape pw_fwd =
        lowerLayer(pw, TrainingOp::Forward, BatchGeometry{4, 64});
    EXPECT_EQ(pw_fwd.m, 4 * 56 * 56);
    EXPECT_EQ(pw_fwd.n, 64);
    EXPECT_EQ(pw_fwd.k, 64);
    EXPECT_EQ(pw_fwd.kernelArea, 1);
}

TEST(Lowering, FcAndAttentionHandComputed)
{
    const CatalogModel &alex = workload::findWorkloadModel("AlexNet");
    LayerShape fc6 = lowerLayer(layerNamed(alex, "fc6"),
                                TrainingOp::Forward,
                                BatchGeometry{16, 64});
    EXPECT_EQ(fc6.m, 16);
    EXPECT_EQ(fc6.n, 4096);
    EXPECT_EQ(fc6.k, 9216);

    // Attention scores at batch 2, seq 64, 8 heads of 64 dims:
    // one Q*K^T GEMM per (batch, head) folds into M = 2*64*8.
    const CatalogModel &tr =
        workload::findWorkloadModel("Transformer-S");
    LayerShape scores = lowerLayer(layerNamed(tr, "scores"),
                                   TrainingOp::Forward,
                                   BatchGeometry{2, 64});
    EXPECT_EQ(scores.m, 2 * 64 * 8);
    EXPECT_EQ(scores.n, 64);
    EXPECT_EQ(scores.k, 512 / 8);

    LayerShape qkv = lowerLayer(layerNamed(tr, "qkv"),
                                TrainingOp::Forward,
                                BatchGeometry{2, 64});
    EXPECT_EQ(qkv.m, 2 * 64);
    EXPECT_EQ(qkv.n, 3 * 512);
    EXPECT_EQ(qkv.k, 512);
}

TEST(Supply, TraceReplayMatchesGeneratorBitExactly)
{
    // Every burst window a TraceSlabSupply replays must equal what
    // the generator-backed supply synthesizes, including the partial
    // final burst.
    AcceleratorConfig cfg = AcceleratorConfig::paperDefault();
    cfg.sampleSteps = 40; // not a multiple of stepsPerOutput
    const CatalogModel &cm = workload::findWorkloadModel("AlexNet");
    LoweredModel lm(cm, BatchGeometry{2, 64});

    for (size_t unit : {size_t(0), size_t(4), lm.units().size() - 1}) {
        const PhasePlan plan = workload::unitPlan(lm, unit, cfg, 0.5);
        PhaseTrace trace = PhaseTrace::capture(plan);
        TraceSlabSupply replay(trace);
        GeneratorSlabSupply gen(plan.serialProfile,
                                plan.parallelProfile, plan.baseSeed);

        ASSERT_GE(plan.bursts, 2u);
        for (size_t bi = 0; bi < plan.bursts; ++bi) {
            const size_t steps = plan.burstSteps(bi);
            std::vector<BFloat16> a(steps * plan.aLen);
            std::vector<BFloat16> b(steps * plan.aLen);
            replay.fillSerial(bi, a.data(), a.size());
            gen.fillSerial(bi, b.data(), b.size());
            EXPECT_EQ(0, std::memcmp(a.data(), b.data(),
                                     a.size() * sizeof(BFloat16)))
                << "unit " << unit << " burst " << bi;

            std::vector<BFloat16> c(steps * plan.bLen);
            std::vector<BFloat16> d(steps * plan.bLen);
            replay.fillParallel(bi, c.data(), c.size());
            gen.fillParallel(bi, d.data(), d.size());
            EXPECT_EQ(0, std::memcmp(c.data(), d.data(),
                                     c.size() * sizeof(BFloat16)))
                << "unit " << unit << " burst " << bi;
        }
    }
}

TEST(Supply, RunLayerOpTraceParity)
{
    // A trace-backed runLayerOp must reproduce the generator-backed
    // report exactly — cycles, stats, serial side.
    AcceleratorConfig cfg = AcceleratorConfig::paperDefault();
    cfg.sampleSteps = 24;
    cfg.convWeightBatch = 1;
    Accelerator accel(cfg);
    const CatalogModel &cm =
        workload::findWorkloadModel("Transformer-S");
    LoweredModel lm(cm, BatchGeometry{2, 32});
    workload::WorkloadSupply supply(lm, cfg, 0.5);

    for (size_t i = 0; i < lm.units().size(); ++i) {
        const auto &u = lm.units()[i];
        LayerOpReport plain =
            accel.runLayerOp(lm.carrierOf(i), u.shape, u.op, 0.5);
        LayerOpReport traced = accel.runLayerOp(
            lm.carrierOf(i), u.shape, u.op, 0.5, &supply.supplyOf(i));
        EXPECT_EQ(plain.fprCycles, traced.fprCycles) << u.shape.name;
        EXPECT_EQ(plain.baseCycles, traced.baseCycles) << u.shape.name;
        EXPECT_EQ(plain.avgCyclesPerStep, traced.avgCyclesPerStep);
        EXPECT_EQ(plain.sampleStats.termsProcessed,
                  traced.sampleStats.termsProcessed);
        EXPECT_EQ(plain.serialSide, traced.serialSide);
        EXPECT_EQ(plain.trafficBytes, traced.trafficBytes);
    }
}

TEST(Supply, ContainerMatrixIngestsSlabs)
{
    // fillFromSlab loads row-major slab values into container order.
    ContainerMatrix mat(16, 24);
    std::vector<BFloat16> slab;
    for (int i = 0; i < 16 * 24; ++i)
        slab.push_back(BFloat16::fromFloat(static_cast<float>(i % 97) -
                                           48.0f));
    mat.fillFromSlab(slab.data(), slab.size());
    for (int r = 0; r < 16; ++r)
        for (int c = 0; c < 24; ++c)
            EXPECT_EQ(mat.raw(r, c).bits(),
                      slab[static_cast<size_t>(r) * 24 + c].bits());
}

/** Fingerprint of @p experiment at @p threads with tiny knobs. */
uint64_t
runFingerprint(const char *experiment, int threads)
{
    const api::ExperimentInfo *info =
        api::ExperimentRegistry::instance().find(experiment);
    EXPECT_NE(info, nullptr) << experiment;
    api::CliOptions opts;
    opts.threads = threads;
    opts.sampleSteps = 6;
    opts.extras = {{"batch", "2"},
                   {"seq", "16"},
                   {"batches", "2,4"}};
    return api::produceResult(*info, opts, nullptr).fingerprint();
}

TEST(WorkloadExperiments, FingerprintsAreThreadInvariant)
{
    for (const char *id : {"ext_workload_catalog", "ext_conv_im2col",
                           "ext_batch_sweep"}) {
        const uint64_t serial = runFingerprint(id, 1);
        EXPECT_EQ(serial, runFingerprint(id, 2)) << id;
        EXPECT_EQ(serial, runFingerprint(id, 8)) << id;
    }
}

} // namespace
} // namespace fpraker
