/**
 * @file
 * Differential fuzzing of the FPRaker PE against the bit-parallel
 * baseline across the configuration space: random operand streams
 * under random (window, threshold, encoding, accumulator) settings
 * must stay within the analytically-bounded divergence of the two
 * datapaths, and all timing/accounting invariants must hold.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "numeric/reference.h"
#include "pe/baseline_pe.h"
#include "pe/fpraker_pe.h"

namespace fpraker {
namespace {

struct FuzzCase
{
    int maxDelta;
    int obThreshold; //!< -1 = accumulator width
    TermEncoding encoding;
    int fracBits;
    int chunkSize;
    double sparsity;
    double expSigma;
};

class DifferentialFuzz : public ::testing::TestWithParam<int>
{
};

FuzzCase
randomCase(Rng &rng)
{
    FuzzCase c;
    const int deltas[] = {0, 1, 2, 3, 5, 8, 1 << 16};
    c.maxDelta = deltas[rng.uniformInt(7)];
    c.obThreshold = rng.bernoulli(0.5)
                        ? -1
                        : static_cast<int>(rng.uniformInt(4, 12));
    c.encoding = rng.bernoulli(0.5) ? TermEncoding::Canonical
                                    : TermEncoding::RawBits;
    c.fracBits = static_cast<int>(rng.uniformInt(8, 16));
    const int chunks[] = {8, 16, 64, 256};
    c.chunkSize = chunks[rng.uniformInt(4)];
    c.sparsity = rng.uniform(0.0, 0.9);
    c.expSigma = rng.uniform(0.2, 5.0);
    return c;
}

std::vector<BFloat16>
randomStream(Rng &rng, size_t n, const FuzzCase &c)
{
    std::vector<BFloat16> v(n);
    for (auto &x : v) {
        if (rng.bernoulli(c.sparsity)) {
            x = BFloat16();
            continue;
        }
        double mag = std::exp2(rng.gaussian(0.0, c.expSigma)) *
                     rng.uniform(1.0, 2.0);
        x = bf16(static_cast<float>(rng.bernoulli(0.5) ? -mag : mag));
    }
    return v;
}

TEST_P(DifferentialFuzz, FPRakerTracksBaselineUnderAllConfigs)
{
    Rng rng(static_cast<uint64_t>(GetParam()) * 7907 + 17);
    for (int trial = 0; trial < 8; ++trial) {
        FuzzCase c = randomCase(rng);
        PeConfig cfg;
        cfg.maxDelta = c.maxDelta;
        cfg.obThreshold = c.obThreshold;
        cfg.encoding = c.encoding;
        cfg.acc.fracBits = c.fracBits;
        cfg.acc.chunkSize = c.chunkSize;

        const size_t n = 128;
        auto a = randomStream(rng, n, c);
        auto b = randomStream(rng, n, c);

        FPRakerPe fpr(cfg);
        BaselinePe base(cfg);
        int fpr_cycles = fpr.dot(a, b);
        int base_cycles = base.dot(a, b);

        // Timing invariants.
        ASSERT_GE(fpr_cycles,
                  base_cycles * (cfg.exponentFloor - 1))
            << "floor violated";
        ASSERT_EQ(fpr.stats().laneCycles(),
                  8ull * fpr.stats().setCycles);
        ASSERT_EQ(fpr.stats().macs, n);

        // Numeric divergence bound: both machines round at fracBits
        // each step; OB skipping only drops sub-threshold terms. Use
        // the magnitude scale of the stream.
        double scale = 1.0;
        for (size_t i = 0; i < n; ++i)
            scale += std::fabs(static_cast<double>(a[i].toFloat()) *
                               static_cast<double>(b[i].toFloat()));
        int effective_bits =
            c.obThreshold < 0 ? c.fracBits
                              : std::min(c.fracBits, c.obThreshold);
        double tol =
            std::ldexp(1.0, -effective_bits) * (16.0 + n / 4.0) * scale;
        ASSERT_NEAR(fpr.resultFloat(), base.resultFloat(), tol)
            << "trial " << trial << " delta=" << c.maxDelta
            << " thr=" << c.obThreshold << " frac=" << c.fracBits
            << " chunk=" << c.chunkSize;

        // And both track FP64 within the same class of bound.
        double ref = dotDouble(a, b);
        ASSERT_NEAR(base.resultFloat(), ref,
                    std::ldexp(1.0, -c.fracBits) * (16.0 + n / 4.0) *
                        scale + 1e-3);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialFuzz,
                         ::testing::Range(0, 12));

TEST(DifferentialFuzz, ColumnsOfAnySizeStayConsistent)
{
    Rng rng(555);
    for (int rows : {1, 2, 3, 5, 8, 13}) {
        PeConfig cfg;
        FPRakerColumn col(cfg, rows);
        for (int set = 0; set < 12; ++set) {
            std::vector<BFloat16> a(8), b(static_cast<size_t>(rows) * 8);
            for (auto &x : a)
                x = rng.bernoulli(0.3)
                        ? BFloat16()
                        : bf16(static_cast<float>(rng.gaussian(0, 2)));
            for (auto &x : b)
                x = bf16(static_cast<float>(rng.gaussian(0, 2)));
            int cycles = col.runSet(a.data(), b.data(), 8);
            ASSERT_GE(cycles, cfg.exponentFloor);
            ASSERT_LE(cycles, 64) << "runaway set at rows=" << rows;
        }
        PeStats agg = col.aggregateStats();
        ASSERT_EQ(agg.laneCycles(), agg.setCycles * 8ull);
    }
}

} // namespace
} // namespace fpraker
