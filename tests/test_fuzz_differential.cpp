/**
 * @file
 * Differential fuzzing of the FPRaker PE against the bit-parallel
 * baseline across the configuration space: random operand streams
 * under random (window, threshold, encoding, accumulator) settings
 * must stay within the analytically-bounded divergence of the two
 * datapaths, and all timing/accounting invariants must hold.
 */

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "numeric/reference.h"
#include "pe/baseline_pe.h"
#include "pe/fpraker_pe.h"
#include "sim/reference_column.h"
#include "sim/sim_engine.h"
#include "tile/tile.h"

namespace fpraker {
namespace {

struct FuzzCase
{
    int maxDelta;
    int obThreshold; //!< -1 = accumulator width
    TermEncoding encoding;
    int fracBits;
    int chunkSize;
    double sparsity;
    double expSigma;
};

class DifferentialFuzz : public ::testing::TestWithParam<int>
{
};

FuzzCase
randomCase(Rng &rng)
{
    FuzzCase c;
    const int deltas[] = {0, 1, 2, 3, 5, 8, 1 << 16};
    c.maxDelta = deltas[rng.uniformInt(7)];
    c.obThreshold = rng.bernoulli(0.5)
                        ? -1
                        : static_cast<int>(rng.uniformInt(4, 12));
    c.encoding = rng.bernoulli(0.5) ? TermEncoding::Canonical
                                    : TermEncoding::RawBits;
    c.fracBits = static_cast<int>(rng.uniformInt(8, 16));
    const int chunks[] = {8, 16, 64, 256};
    c.chunkSize = chunks[rng.uniformInt(4)];
    c.sparsity = rng.uniform(0.0, 0.9);
    c.expSigma = rng.uniform(0.2, 5.0);
    return c;
}

std::vector<BFloat16>
randomStream(Rng &rng, size_t n, const FuzzCase &c)
{
    std::vector<BFloat16> v(n);
    for (auto &x : v) {
        if (rng.bernoulli(c.sparsity)) {
            x = BFloat16();
            continue;
        }
        double mag = std::exp2(rng.gaussian(0.0, c.expSigma)) *
                     rng.uniform(1.0, 2.0);
        x = bf16(static_cast<float>(rng.bernoulli(0.5) ? -mag : mag));
    }
    return v;
}

TEST_P(DifferentialFuzz, FPRakerTracksBaselineUnderAllConfigs)
{
    Rng rng(static_cast<uint64_t>(GetParam()) * 7907 + 17);
    for (int trial = 0; trial < 8; ++trial) {
        FuzzCase c = randomCase(rng);
        PeConfig cfg;
        cfg.maxDelta = c.maxDelta;
        cfg.obThreshold = c.obThreshold;
        cfg.encoding = c.encoding;
        cfg.acc.fracBits = c.fracBits;
        cfg.acc.chunkSize = c.chunkSize;

        const size_t n = 128;
        auto a = randomStream(rng, n, c);
        auto b = randomStream(rng, n, c);

        FPRakerPe fpr(cfg);
        BaselinePe base(cfg);
        int fpr_cycles = fpr.dot(a, b);
        int base_cycles = base.dot(a, b);

        // Timing invariants.
        ASSERT_GE(fpr_cycles,
                  base_cycles * (cfg.exponentFloor - 1))
            << "floor violated";
        ASSERT_EQ(fpr.stats().laneCycles(),
                  8ull * fpr.stats().setCycles);
        ASSERT_EQ(fpr.stats().macs, n);

        // Numeric divergence bound: both machines round at fracBits
        // each step; OB skipping only drops sub-threshold terms. Use
        // the magnitude scale of the stream.
        double scale = 1.0;
        for (size_t i = 0; i < n; ++i)
            scale += std::fabs(static_cast<double>(a[i].toFloat()) *
                               static_cast<double>(b[i].toFloat()));
        int effective_bits =
            c.obThreshold < 0 ? c.fracBits
                              : std::min(c.fracBits, c.obThreshold);
        double tol =
            std::ldexp(1.0, -effective_bits) * (16.0 + n / 4.0) * scale;
        ASSERT_NEAR(fpr.resultFloat(), base.resultFloat(), tol)
            << "trial " << trial << " delta=" << c.maxDelta
            << " thr=" << c.obThreshold << " frac=" << c.fracBits
            << " chunk=" << c.chunkSize;

        // And both track FP64 within the same class of bound.
        double ref = dotDouble(a, b);
        ASSERT_NEAR(base.resultFloat(), ref,
                    std::ldexp(1.0, -c.fracBits) * (16.0 + n / 4.0) *
                        scale + 1e-3);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialFuzz,
                         ::testing::Range(0, 12));

TEST(DifferentialFuzz, ColumnsOfAnySizeStayConsistent)
{
    Rng rng(555);
    for (int rows : {1, 2, 3, 5, 8, 13}) {
        PeConfig cfg;
        FPRakerColumn col(cfg, rows);
        for (int set = 0; set < 12; ++set) {
            std::vector<BFloat16> a(8), b(static_cast<size_t>(rows) * 8);
            for (auto &x : a)
                x = rng.bernoulli(0.3)
                        ? BFloat16()
                        : bf16(static_cast<float>(rng.gaussian(0, 2)));
            for (auto &x : b)
                x = bf16(static_cast<float>(rng.gaussian(0, 2)));
            int cycles = col.runSet(a.data(), b.data(), 8);
            ASSERT_GE(cycles, cfg.exponentFloor);
            ASSERT_LE(cycles, 64) << "runaway set at rows=" << rows;
        }
        PeStats agg = col.aggregateStats();
        ASSERT_EQ(agg.laneCycles(), agg.setCycles * 8ull);
    }
}

void
expectStatsEqual(const PeStats &a, const PeStats &b, const char *what)
{
    EXPECT_EQ(a.laneUseful, b.laneUseful) << what;
    EXPECT_EQ(a.laneNoTerm, b.laneNoTerm) << what;
    EXPECT_EQ(a.laneShiftRange, b.laneShiftRange) << what;
    EXPECT_EQ(a.laneExponent, b.laneExponent) << what;
    EXPECT_EQ(a.laneInterPe, b.laneInterPe) << what;
    EXPECT_EQ(a.setCycles, b.setCycles) << what;
    EXPECT_EQ(a.sets, b.sets) << what;
    EXPECT_EQ(a.macs, b.macs) << what;
    EXPECT_EQ(a.termsProcessed, b.termsProcessed) << what;
    EXPECT_EQ(a.termsZeroSkipped, b.termsZeroSkipped) << what;
    EXPECT_EQ(a.termsObSkipped, b.termsObSkipped) << what;
}

/**
 * Single-pending-lane columns: sets where exactly one A lane is
 * nonzero (the lone lane carries a wild exponent, so it keeps draining
 * terms long after every other lane went idle on cycle one). This is
 * the degenerate busy-loop shape the fused tile sweep and the masked
 * retire path both special-case, so it must stay bit-identical to the
 * seed reference in cycles, accumulator bits, and every stat counter.
 */
TEST(DifferentialFuzz, SinglePendingLaneColumnsMatchReference)
{
    Rng rng(90210);
    for (int rows : {1, 3, 8}) {
        PeConfig cfg;
        cfg.obThreshold = 6; // retire aggressively around the loner
        FPRakerColumn opt(cfg, rows);
        ReferenceColumn ref(cfg, rows);
        for (int set = 0; set < 24; ++set) {
            std::vector<BFloat16> a(8);
            const size_t live = rng.uniformInt(8);
            double mag = std::exp2(rng.gaussian(0.0, 8.0));
            a[live] = bf16(static_cast<float>(
                rng.bernoulli(0.5) ? -mag : mag));
            auto b = randomStream(
                rng, static_cast<size_t>(rows) * 8,
                FuzzCase{0, -1, TermEncoding::Canonical, 12, 64, 0.2,
                         4.0});
            int c_opt = opt.runSet(a.data(), b.data(), 8);
            int c_ref = ref.runSet(a.data(), b.data(), 8);
            ASSERT_EQ(c_opt, c_ref)
                << "rows=" << rows << " set=" << set;
        }
        for (int r = 0; r < rows; ++r) {
            ASSERT_EQ(opt.accumulator(r).total(),
                      ref.accumulator(r).total())
                << "rows=" << rows << " pe=" << r;
            ASSERT_EQ(opt.accumulator(r).chunkRegister().readDouble(),
                      ref.accumulator(r).chunkRegister().readDouble())
                << "rows=" << rows << " pe=" << r;
        }
        expectStatsEqual(opt.aggregateStats(), ref.aggregateStats(),
                         "single-pending-lane column stats");
    }
}

/**
 * Settle-skew tiles: column c's A vector carries c+1 live lanes with
 * an exponent spread that grows with c, so in any step each column's
 * settle fixpoint converges on a different iteration. The fused
 * serial sweep retires columns from its busy mask one by one (and the
 * sharded walk never sees the mask at all) — at 1, 2, and 8 threads
 * the cycles, outputs, and statistics must be bit-identical to the
 * seed reference tile.
 */
TEST(DifferentialFuzz, SettleSkewTilesMatchReferenceAtAnyThreadCount)
{
    Rng gen(424243);
    TileConfig cfg;
    cfg.rows = 4;
    cfg.cols = 6;
    cfg.pe.obThreshold = 10;
    const int lanes = cfg.pe.lanes;
    const size_t a_len = static_cast<size_t>(cfg.cols) * lanes;
    const size_t b_len = static_cast<size_t>(cfg.rows) * lanes;
    const size_t steps = 20;

    std::vector<BFloat16> a(steps * a_len);
    for (size_t s = 0; s < steps; ++s)
        for (int c = 0; c < cfg.cols; ++c) {
            BFloat16 *col = a.data() + s * a_len +
                            static_cast<size_t>(c) * lanes;
            for (int l = 0; l <= c; ++l) {
                double mag =
                    std::exp2(gen.gaussian(0.0, 1.0 + 2.0 * c));
                col[l] = bf16(static_cast<float>(
                    gen.bernoulli(0.5) ? -mag : mag));
            }
        }
    std::vector<BFloat16> b(steps * b_len);
    for (auto &x : b)
        x = bf16(static_cast<float>(gen.gaussian(0.0, 2.0)));

    ReferenceTile ref(cfg.pe, cfg.rows, cfg.cols, cfg.bufferDepth);
    ReferenceTileResult res = ref.run(a.data(), b.data(), steps);

    for (int threads : {1, 2, 8}) {
        SimEngine engine(threads);
        Tile tile(cfg);
        std::vector<TileStepView> views(steps);
        for (size_t s = 0; s < steps; ++s)
            views[s] = TileStepView{a.data() + s * a_len,
                                    b.data() + s * b_len};
        TileRunResult opt = tile.run(views.data(), steps, &engine);

        ASSERT_EQ(opt.cycles, res.cycles) << "threads=" << threads;
        for (int r = 0; r < cfg.rows; ++r)
            for (int c = 0; c < cfg.cols; ++c)
                ASSERT_EQ(tile.output(r, c), ref.output(r, c))
                    << "threads=" << threads << " PE (" << r << ","
                    << c << ")";
        expectStatsEqual(tile.aggregateStats(), ref.aggregateStats(),
                         "settle-skew tile stats");
    }
}

/**
 * The batched multi-set dot must be bit-identical to driving the same
 * sets one runSet at a time — including a ragged final set, which runs
 * masked (padded lanes are architecturally absent, so they must not
 * appear in cycles or statistics). Full-set prefixes are additionally
 * pinned to the seed ReferenceColumn.
 */
TEST(DifferentialFuzz, BatchedDotMatchesPerSetReference)
{
    Rng rng(777001);
    const FuzzCase stream_shape{0,  -1,  TermEncoding::Canonical,
                                12, 64, 0.3, 3.0};
    for (int rows : {1, 2, 5}) {
        // 37 full sets + a 5-lane ragged tail: crosses the 32-set
        // decode-chunk boundary of dot() twice.
        const size_t len = 8 * 37 + 5;
        const int stride = static_cast<int>(len);
        auto a = randomStream(rng, len, stream_shape);
        auto b = randomStream(rng, static_cast<size_t>(rows) * len,
                              stream_shape);

        PeConfig cfg;
        cfg.obThreshold = 9;
        FPRakerColumn batched(cfg, rows);
        int batched_cycles =
            batched.dot(a.data(), b.data(), stride, len);

        FPRakerColumn per_set(cfg, rows);
        ReferenceColumn ref(cfg, rows);
        int per_set_cycles = 0;
        int full_set_cycles = 0;
        int ref_cycles = 0;
        for (size_t i = 0; i < len; i += 8) {
            const int act =
                static_cast<int>(std::min<size_t>(8, len - i));
            int c = per_set.runSet(a.data() + i, b.data() + i, stride,
                                   act);
            per_set_cycles += c;
            // The lone ragged set is last, so the reference sees the
            // same pre-set accumulator state for every full set.
            if (act == 8) {
                full_set_cycles += c;
                ref_cycles +=
                    ref.runSet(a.data() + i, b.data() + i, stride);
            }
        }
        ASSERT_EQ(batched_cycles, per_set_cycles) << "rows=" << rows;
        for (int r = 0; r < rows; ++r) {
            ASSERT_EQ(batched.accumulator(r).total(),
                      per_set.accumulator(r).total())
                << "rows=" << rows << " pe=" << r;
            ASSERT_EQ(
                batched.accumulator(r).chunkRegister().readDouble(),
                per_set.accumulator(r).chunkRegister().readDouble())
                << "rows=" << rows << " pe=" << r;
        }
        expectStatsEqual(batched.aggregateStats(),
                         per_set.aggregateStats(),
                         "batched dot stats");
        // The seed reference saw every full set; its cycle total must
        // be exactly what the optimized walk charged for those sets.
        ASSERT_EQ(full_set_cycles, ref_cycles) << "rows=" << rows;
    }
}

} // namespace
} // namespace fpraker
