/**
 * @file
 * Unit and property tests for canonical (NAF) and raw-bit term encoding.
 */

#include <gtest/gtest.h>

#include "common/bitutil.h"
#include "numeric/term_encoder.h"

namespace fpraker {
namespace {

TEST(TermEncoder, ZeroSignificandYieldsNoTerms)
{
    TermEncoder enc;
    EXPECT_TRUE(enc.encodeSignificand(0).empty());
    EXPECT_EQ(enc.countTerms(0), 0);
    EXPECT_TRUE(enc.encode(BFloat16()).empty());
}

TEST(TermEncoder, PaperExample)
{
    // The paper's example says A = 1.1110000 encodes as (+2^+1, -2^-4),
    // but 1.1110000b = 1.875 = 2^1 - 2^-3; the -4 is an off-by-one typo
    // in the text (2^1 - 2^-4 would be 1.1111000b). We assert the
    // mathematically consistent NAF.
    TermEncoder enc(TermEncoding::Canonical);
    TermStream s = enc.encodeSignificand(0b11110000);
    ASSERT_EQ(s.size(), 2);
    EXPECT_EQ(s[0].shift, -1); // +2^{+1}
    EXPECT_FALSE(s[0].neg);
    EXPECT_EQ(s[1].shift, 3); // -2^{-3}
    EXPECT_TRUE(s[1].neg);
    EXPECT_EQ(s.reconstructScaled(), 0b11110000);
}

TEST(TermEncoder, SingleTermForPowerOfTwo)
{
    TermEncoder enc;
    TermStream s = enc.encodeSignificand(0b10000000); // 1.0
    ASSERT_EQ(s.size(), 1);
    EXPECT_EQ(s[0].shift, 0);
    EXPECT_FALSE(s[0].neg);
}

TEST(TermEncoder, Fig5OperandA0UnderRawEncoding)
{
    // Fig. 5 walks 1.1101 through raw bit positions t = 0, 1, 2, 4.
    TermEncoder enc(TermEncoding::RawBits);
    TermStream s = enc.encodeSignificand(0b11101000);
    ASSERT_EQ(s.size(), 4);
    EXPECT_EQ(s[0].shift, 0);
    EXPECT_EQ(s[1].shift, 1);
    EXPECT_EQ(s[2].shift, 2);
    EXPECT_EQ(s[3].shift, 4);
    for (int i = 0; i < s.size(); ++i)
        EXPECT_FALSE(s[i].neg);
}

TEST(TermEncoder, CanonicalReconstructsEverySignificand)
{
    TermEncoder enc(TermEncoding::Canonical);
    for (int sig = 0x80; sig <= 0xff; ++sig) {
        TermStream s = enc.encodeSignificand(sig);
        EXPECT_EQ(s.reconstructScaled(), sig) << "sig " << sig;
        EXPECT_EQ(s.size(), enc.countTerms(sig));
    }
}

TEST(TermEncoder, RawReconstructsEverySignificand)
{
    TermEncoder enc(TermEncoding::RawBits);
    for (int sig = 0x80; sig <= 0xff; ++sig) {
        TermStream s = enc.encodeSignificand(sig);
        EXPECT_EQ(s.reconstructScaled(), sig) << "sig " << sig;
        EXPECT_EQ(s.size(), popcount(static_cast<uint64_t>(sig)));
    }
}

TEST(TermEncoder, CanonicalNonAdjacency)
{
    // NAF guarantees no two adjacent non-zero digits: successive term
    // shifts differ by at least 2.
    TermEncoder enc(TermEncoding::Canonical);
    for (int sig = 0x80; sig <= 0xff; ++sig) {
        TermStream s = enc.encodeSignificand(sig);
        for (int i = 1; i < s.size(); ++i)
            EXPECT_GE(s[i].shift - s[i - 1].shift, 2)
                << "sig " << sig << " term " << i;
    }
}

TEST(TermEncoder, MsbFirstOrdering)
{
    for (TermEncoding e :
         {TermEncoding::Canonical, TermEncoding::RawBits}) {
        TermEncoder enc(e);
        for (int sig = 0x80; sig <= 0xff; ++sig) {
            TermStream s = enc.encodeSignificand(sig);
            for (int i = 1; i < s.size(); ++i)
                EXPECT_GT(s[i].shift, s[i - 1].shift) << "sig " << sig;
        }
    }
}

TEST(TermEncoder, CanonicalNeverLongerThanRaw)
{
    TermEncoder naf(TermEncoding::Canonical);
    TermEncoder raw(TermEncoding::RawBits);
    for (int sig = 0x80; sig <= 0xff; ++sig)
        EXPECT_LE(naf.countTerms(sig), raw.countTerms(sig))
            << "sig " << sig;
}

TEST(TermEncoder, CanonicalBoundedByFiveTerms)
{
    // The NAF of an 8-bit significand has at most ceil(9/2) = 5 digits.
    TermEncoder enc(TermEncoding::Canonical);
    for (int sig = 0x80; sig <= 0xff; ++sig)
        EXPECT_LE(enc.countTerms(sig), 5) << "sig " << sig;
}

TEST(TermEncoder, ShiftRangeWithinContract)
{
    // Shifts live in [-1, 7]: position +1 (carry digit) through 2^-7.
    TermEncoder enc(TermEncoding::Canonical);
    for (int sig = 0x80; sig <= 0xff; ++sig) {
        TermStream s = enc.encodeSignificand(sig);
        for (int i = 0; i < s.size(); ++i) {
            EXPECT_GE(s[i].shift, -1);
            EXPECT_LE(s[i].shift, 7);
        }
    }
}

TEST(TermEncoder, EncodeBFloat16UsesHiddenBit)
{
    TermEncoder enc;
    // 1.5 = 1.1000000b -> NAF: +2^1 - 2^-1.
    TermStream s = enc.encode(bf16(1.5f));
    ASSERT_EQ(s.size(), 2);
    EXPECT_EQ(s[0].shift, -1);
    EXPECT_FALSE(s[0].neg);
    EXPECT_EQ(s[1].shift, 1);
    EXPECT_TRUE(s[1].neg);
}

/** Term-sparsity sweep: average NAF length of random significands. */
class TermDensity : public ::testing::TestWithParam<TermEncoding>
{
};

TEST_P(TermDensity, AverageBelowHalfOfSlots)
{
    TermEncoder enc(GetParam());
    double total = 0;
    for (int sig = 0x80; sig <= 0xff; ++sig)
        total += enc.countTerms(sig);
    double avg = total / 128.0;
    // Uniform normalized significands: raw averages 4.5 set bits; the
    // NAF averages ~3.45 terms (about 57% term sparsity of the 8 slots,
    // matching the paper's uniform-mantissa regime).
    if (GetParam() == TermEncoding::Canonical) {
        EXPECT_LT(avg, 3.7);
        EXPECT_GT(avg, 3.0);
    } else {
        EXPECT_NEAR(avg, 4.5, 0.1);
    }
}

INSTANTIATE_TEST_SUITE_P(Encodings, TermDensity,
                         ::testing::Values(TermEncoding::Canonical,
                                           TermEncoding::RawBits));

} // namespace
} // namespace fpraker
