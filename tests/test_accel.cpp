/**
 * @file
 * Tests for the phase runner and the whole-accelerator model.
 */

#include <gtest/gtest.h>

#include "accel/accelerator.h"
#include "trace/model_zoo.h"

namespace fpraker {
namespace {

AcceleratorConfig
smallConfig()
{
    AcceleratorConfig cfg = AcceleratorConfig::paperDefault();
    cfg.sampleSteps = 48; // keep tests fast
    return cfg;
}

TEST(PhaseRunner, ChoosesSparserOperandAsSerial)
{
    // For Bert's weight-gradient op (A x G) the gradient profile has
    // far fewer expected terms than the activations.
    const ModelInfo &bert = findModel("Bert");
    EXPECT_EQ(chooseSerialSide(bert, TrainingOp::WeightGrad, 0.5),
              TensorKind::Gradient);
    // Forward on ResNet50-S2: weights are 80% sparse, so the weight
    // side serializes.
    const ModelInfo &r50 = findModel("ResNet50-S2");
    EXPECT_EQ(chooseSerialSide(r50, TrainingOp::Forward, 0.5),
              TensorKind::Weight);
}

TEST(PhaseRunner, ProducesPlausibleCycleCounts)
{
    const ModelInfo &model = findModel("VGG16");
    PhaseRunConfig cfg;
    cfg.sampleSteps = 48;
    PhaseRunResult r = runPhaseSample(model, model.layers[4],
                                      TrainingOp::Forward, 0.5, cfg);
    // The exponent floor guarantees at least 2 cycles per set, and
    // term-serial processing rarely exceeds ~10 for these profiles.
    EXPECT_GE(r.avgCyclesPerStep, 2.0);
    EXPECT_LE(r.avgCyclesPerStep, 12.0);
    EXPECT_EQ(r.steps, 48u);
    EXPECT_GT(r.peStats.laneUseful, 0u);
}

TEST(PhaseRunner, QuantizedModelNeedsFewerCycles)
{
    PhaseRunConfig cfg;
    cfg.sampleSteps = 64;
    const ModelInfo &q = findModel("ResNet18-Q");
    const ModelInfo &dense = findModel("NCF");
    PhaseRunResult rq = runPhaseSample(q, q.layers[3],
                                       TrainingOp::Forward, 1.0, cfg);
    PhaseRunResult rd = runPhaseSample(dense, dense.layers[0],
                                       TrainingOp::Forward, 1.0, cfg);
    EXPECT_LT(rq.avgCyclesPerStep, rd.avgCyclesPerStep);
}

TEST(Accelerator, LayerReportIsInternallyConsistent)
{
    Accelerator accel(smallConfig());
    const ModelInfo &model = findModel("SqueezeNet 1.1");
    LayerOpReport r = accel.runLayerOp(model, model.layers[0],
                                       TrainingOp::Forward, 0.5);
    EXPECT_GT(r.tileSteps, 0u);
    EXPECT_GT(r.fprComputeCycles, 0.0);
    EXPECT_GT(r.baseComputeCycles, 0.0);
    EXPECT_GE(r.fprCycles, r.fprComputeCycles - 1e-9);
    EXPECT_GE(r.fprCycles, r.fprMemCycles - 1e-9);
    EXPECT_GT(r.trafficBytes, 0.0);
    EXPECT_LE(r.trafficBytesCompressed, r.trafficBytes);
    EXPECT_GT(r.fprEnergy.totalPj(), 0.0);
    EXPECT_GT(r.baseEnergy.totalPj(), 0.0);
}

TEST(Accelerator, SpeedupInPlausibleRange)
{
    // The iso-area configuration gives FPRaker 4.5x the PEs; with
    // term-serial slowdown the paper lands at 1.2-2.1x. Accept a
    // generous band to stay robust to profile tweaks.
    Accelerator accel(smallConfig());
    const ModelInfo &model = findModel("ResNet18-Q");
    // Use a few representative layers to keep runtime bounded.
    double fpr = 0, base = 0;
    for (size_t i : {size_t{1}, size_t{5}, size_t{9}}) {
        LayerOpReport r = accel.runLayerOp(model, model.layers[i],
                                           TrainingOp::Forward, 1.0);
        fpr += r.fprCycles;
        base += r.baseCycles;
    }
    double speedup = base / fpr;
    EXPECT_GT(speedup, 1.0);
    EXPECT_LT(speedup, 4.5);
}

TEST(Accelerator, ObSkippingImprovesPerformance)
{
    AcceleratorConfig on_cfg = smallConfig();
    AcceleratorConfig off_cfg = smallConfig();
    off_cfg.tile.pe.skipOutOfBounds = false;
    Accelerator on(on_cfg), off(off_cfg);
    const ModelInfo &model = findModel("Bert"); // tiny gradients: OB-rich
    LayerOpReport r_on = on.runLayerOp(model, model.layers[0],
                                       TrainingOp::WeightGrad, 0.5);
    LayerOpReport r_off = off.runLayerOp(model, model.layers[0],
                                         TrainingOp::WeightGrad, 0.5);
    EXPECT_LT(r_on.fprComputeCycles, r_off.fprComputeCycles);
    EXPECT_GT(r_on.activity.termsObSkipped, 0.0);
    EXPECT_EQ(r_off.activity.termsObSkipped, 0.0);
}

TEST(Accelerator, BdcReducesMemoryCyclesOnly)
{
    AcceleratorConfig bdc_cfg = smallConfig();
    AcceleratorConfig raw_cfg = smallConfig();
    raw_cfg.useBdc = false;
    Accelerator with(bdc_cfg), without(raw_cfg);
    const ModelInfo &model = findModel("VGG16");
    // fc6 is memory-heavy (25088x4096 weights, tiny M).
    const LayerShape &fc6 = model.layers[13];
    ASSERT_EQ(fc6.name, "fc6");
    LayerOpReport r_bdc = with.runLayerOp(model, fc6,
                                          TrainingOp::Forward, 0.5);
    LayerOpReport r_raw = without.runLayerOp(model, fc6,
                                             TrainingOp::Forward, 0.5);
    EXPECT_LT(r_bdc.trafficBytesCompressed, r_raw.trafficBytesCompressed);
    EXPECT_LE(r_bdc.fprMemCycles, r_raw.fprMemCycles);
    EXPECT_NEAR(r_bdc.fprComputeCycles, r_raw.fprComputeCycles, 1e-6);
}

TEST(Accelerator, ModelReportAggregatesOps)
{
    AcceleratorConfig cfg = smallConfig();
    cfg.sampleSteps = 24;
    Accelerator accel(cfg);
    // NCF is the smallest model; run it end to end.
    ModelRunReport report = accel.runModel(findModel("NCF"), 0.5);
    ASSERT_EQ(report.ops.size(), findModel("NCF").layers.size() * 3);
    double fpr = 0, base = 0;
    for (const auto &op : report.ops) {
        fpr += op.fprCycles;
        base += op.baseCycles;
    }
    EXPECT_NEAR(report.fprCycles, fpr, 1e-6);
    EXPECT_NEAR(report.baseCycles, base, 1e-6);
    EXPECT_GT(report.speedup(), 0.5);
    EXPECT_GT(report.coreEnergyEfficiency(), 0.5);
    // Per-op speedups are defined for all three phases.
    for (TrainingOp op : {TrainingOp::Forward, TrainingOp::InputGrad,
                          TrainingOp::WeightGrad})
        EXPECT_GT(report.speedupForOp(op), 0.0);
}

TEST(Accelerator, ScaledActivityTracksSampleRatios)
{
    Accelerator accel(smallConfig());
    const ModelInfo &model = findModel("SNLI");
    LayerOpReport r = accel.runLayerOp(model, model.layers[0],
                                       TrainingOp::Forward, 0.5);
    // Scaling preserves the useful-fraction ratio.
    double sample_useful =
        static_cast<double>(r.sampleStats.laneUseful) /
        static_cast<double>(r.sampleStats.laneCycles());
    double scaled_useful = r.activity.laneUseful / r.activity.laneCycles();
    EXPECT_NEAR(sample_useful, scaled_useful, 1e-9);
}

} // namespace
} // namespace fpraker
