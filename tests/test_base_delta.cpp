/**
 * @file
 * Tests for exponent base-delta compression.
 */

#include <gtest/gtest.h>

#include "common/rng.h"
#include "compress/base_delta.h"
#include "trace/tensor_gen.h"

namespace fpraker {
namespace {

std::vector<BFloat16>
profileValues(const ValueProfile &p, size_t n, uint64_t seed)
{
    TensorGenerator gen(p, seed);
    return gen.generate(n);
}

TEST(BaseDelta, DeltaBitsSingleExponent)
{
    BaseDeltaCodec codec;
    uint8_t exps[4] = {127, 127, 127, 127};
    EXPECT_EQ(codec.deltaBitsForGroup(exps, 4), 1);
}

TEST(BaseDelta, DeltaBitsSmallSpread)
{
    BaseDeltaCodec codec;
    uint8_t exps[4] = {120, 121, 119, 122};
    // Deltas -1..+2 need 3 signed bits (range [-4, 3]).
    EXPECT_EQ(codec.deltaBitsForGroup(exps, 4), 3);
}

TEST(BaseDelta, DeltaBitsNegativeOnly)
{
    BaseDeltaCodec codec;
    uint8_t exps[3] = {100, 99, 98};
    // Deltas 0, -1, -2: the most negative code is reserved for zero
    // values, so -2 needs 3 bits ([-3, 3] usable).
    EXPECT_EQ(codec.deltaBitsForGroup(exps, 3), 3);
}

TEST(BaseDelta, ZeroValuesDoNotWidenDeltas)
{
    BaseDeltaCodec codec;
    // Zero values (exponent field 0) use the reserved codeword and the
    // base comes from the first non-zero value, so sparse groups keep
    // narrow deltas.
    uint8_t sparse[4] = {0, 128, 0, 129};
    EXPECT_EQ(codec.deltaBitsForGroup(sparse, 4), 2);
    // Wraparound: 255 relative to a base of 254 is +1.
    uint8_t wrap[2] = {254, 255};
    EXPECT_EQ(codec.deltaBitsForGroup(wrap, 2), 2);
}

TEST(BaseDelta, RoundTripRandomValues)
{
    Rng rng(31);
    std::vector<BFloat16> values;
    for (int i = 0; i < 1000; ++i) {
        if (rng.bernoulli(0.3))
            values.push_back(BFloat16());
        else
            values.push_back(bf16(static_cast<float>(
                rng.gaussian(0.0, 100.0))));
    }
    BaseDeltaCodec codec;
    auto stream = codec.encode(values);
    auto decoded = codec.decode(stream, values.size());
    ASSERT_EQ(decoded.size(), values.size());
    for (size_t i = 0; i < values.size(); ++i)
        EXPECT_EQ(decoded[i].bits(), values[i].bits()) << "index " << i;
}

TEST(BaseDelta, RoundTripPartialGroup)
{
    std::vector<BFloat16> values = {bf16(1.0f), bf16(-2.5f), bf16(0.0f)};
    BaseDeltaCodec codec;
    auto decoded = codec.decode(codec.encode(values), values.size());
    for (size_t i = 0; i < values.size(); ++i)
        EXPECT_EQ(decoded[i].bits(), values[i].bits());
}

TEST(BaseDelta, FootprintMatchesEncodedSize)
{
    Rng rng(37);
    std::vector<BFloat16> values;
    for (int i = 0; i < 320; ++i)
        values.push_back(
            bf16(static_cast<float>(rng.gaussian(0.0, 2.0))));
    BaseDeltaCodec codec;
    BdcResult r = codec.analyze(values);
    auto stream = codec.encode(values);
    // The encoded stream is bit-packed; analyze() reports exact bits.
    EXPECT_LE(r.totalBitsCompressed, stream.size() * 8);
    EXPECT_GE(r.totalBitsCompressed + 8, stream.size() * 8 - 7);
}

TEST(BaseDelta, CorrelatedExponentsCompressBetter)
{
    ValueProfile correlated;
    correlated.sparsity = 0.0;
    correlated.expSigma = 2.0;
    correlated.expCorr = 0.97;
    ValueProfile scattered = correlated;
    scattered.expCorr = 0.0;
    scattered.expSigma = 20.0;

    BaseDeltaCodec codec;
    double corr_fp =
        codec.analyze(profileValues(correlated, 8192, 5)).exponentFootprint();
    double scat_fp =
        codec.analyze(profileValues(scattered, 8192, 5)).exponentFootprint();
    EXPECT_LT(corr_fp, scat_fp);
    EXPECT_LT(corr_fp, 0.8); // narrow distributions compress well
}

TEST(BaseDelta, AllZeroGroupsCompressMaximally)
{
    std::vector<BFloat16> zeros(320, BFloat16());
    BaseDeltaCodec codec;
    BdcResult r = codec.analyze(zeros);
    // 8 base + 3 meta + 1 flag + 31 deltas of 1 bit per group: 43/256.
    EXPECT_NEAR(r.exponentFootprint(), 43.0 / 256.0, 1e-9);
}

TEST(BaseDelta, MixedSparseGroupsStillCompress)
{
    // 50% zeros mixed with a narrow distribution: the reserved
    // codeword keeps the footprint near the dense-case width.
    Rng rng(43);
    std::vector<BFloat16> values;
    for (int i = 0; i < 3200; ++i) {
        values.push_back(rng.bernoulli(0.5)
                             ? BFloat16()
                             : bf16(static_cast<float>(
                                   rng.uniform(0.5, 2.0))));
    }
    BaseDeltaCodec codec;
    BdcResult r = codec.analyze(values);
    EXPECT_LT(r.exponentFootprint(), 0.55);
    // And it still round-trips exactly.
    auto decoded = codec.decode(codec.encode(values), values.size());
    for (size_t i = 0; i < values.size(); ++i)
        ASSERT_EQ(decoded[i].bits(), values[i].bits()) << i;
}

TEST(BaseDelta, FootprintNeverBeatsTheoreticalFloor)
{
    Rng rng(41);
    std::vector<BFloat16> values;
    for (int i = 0; i < 4096; ++i)
        values.push_back(bf16(static_cast<float>(rng.uniform(1.0, 2.0))));
    BaseDeltaCodec codec;
    BdcResult r = codec.analyze(values);
    EXPECT_GE(r.exponentFootprint(), 43.0 / 256.0 - 1e-9);
    EXPECT_LE(r.exponentFootprint(), 1.1);
    // Sign + mantissa always travel uncompressed.
    EXPECT_GE(r.totalFootprint(), 0.5);
}

/** Footprint sweep over exponent spread (wider -> worse). */
class BdcSigmaSweep : public ::testing::TestWithParam<double>
{
};

TEST_P(BdcSigmaSweep, FootprintGrowsWithSpread)
{
    ValueProfile p;
    p.sparsity = 0.0;
    p.expCorr = 0.0;
    p.expSigma = GetParam();
    BaseDeltaCodec codec;
    BdcResult r = codec.analyze(profileValues(p, 8192, 9));
    // Record monotonicity against a slightly wider sigma.
    ValueProfile wider = p;
    wider.expSigma = GetParam() * 2.0 + 1.0;
    BdcResult r2 = codec.analyze(profileValues(wider, 8192, 9));
    EXPECT_LE(r.exponentFootprint(), r2.exponentFootprint() + 0.02);
}

INSTANTIATE_TEST_SUITE_P(Sigmas, BdcSigmaSweep,
                         ::testing::Values(0.5, 1.0, 2.0, 4.0));

} // namespace
} // namespace fpraker
