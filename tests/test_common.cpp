/**
 * @file
 * Tests for the common utilities (stats, tables, RNG, bit helpers).
 */

#include <gtest/gtest.h>

#include "common/bitutil.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"

namespace fpraker {
namespace {

TEST(BitUtil, Masks)
{
    EXPECT_EQ(maskBits(0), 0u);
    EXPECT_EQ(maskBits(1), 1u);
    EXPECT_EQ(maskBits(8), 0xffu);
    EXPECT_EQ(maskBits(64), ~uint64_t{0});
}

TEST(BitUtil, MsbPos)
{
    EXPECT_EQ(msbPos(0), -1);
    EXPECT_EQ(msbPos(1), 0);
    EXPECT_EQ(msbPos(0x80), 7);
    EXPECT_EQ(msbPos(uint64_t{1} << 63), 63);
}

TEST(BitUtil, BitsOf)
{
    EXPECT_EQ(bitsOf(0xabcd, 4, 8), 0xbcu);
    EXPECT_EQ(bitsOf(0xff, 0, 4), 0xfu);
}

TEST(BitUtil, DivCeilAndRoundUp)
{
    EXPECT_EQ(divCeil(10, 3), 4);
    EXPECT_EQ(divCeil(9, 3), 3);
    EXPECT_EQ(roundUp(10, 8), 16);
    EXPECT_EQ(roundUp(16, 8), 16);
}

TEST(BitUtil, BitWidth)
{
    EXPECT_EQ(bitWidth(0), 0);
    EXPECT_EQ(bitWidth(1), 1);
    EXPECT_EQ(bitWidth(255), 8);
    EXPECT_EQ(bitWidth(256), 9);
}

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(9);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, GaussianMoments)
{
    Rng rng(11);
    double sum = 0.0, sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        double g = rng.gaussian();
        sum += g;
        sq += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.05);
    EXPECT_NEAR(sq / n, 1.0, 0.05);
}

TEST(Rng, BernoulliRate)
{
    Rng rng(13);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        hits += rng.bernoulli(0.3);
    EXPECT_NEAR(hits / 10000.0, 0.3, 0.02);
}

TEST(StatSet, AddGetMerge)
{
    StatSet s;
    s.add("x", 2.0);
    s.add("x", 3.0);
    s.add("y", 1.0);
    EXPECT_DOUBLE_EQ(s.get("x"), 5.0);
    EXPECT_DOUBLE_EQ(s.get("missing"), 0.0);
    EXPECT_DOUBLE_EQ(s.total(), 6.0);
    EXPECT_DOUBLE_EQ(s.sum({"x", "y", "z"}), 6.0);

    StatSet t;
    t.add("x", 1.0);
    t.add("z", 4.0);
    s.merge(t);
    EXPECT_DOUBLE_EQ(s.get("x"), 6.0);
    EXPECT_DOUBLE_EQ(s.get("z"), 4.0);

    s.scale(0.5);
    EXPECT_DOUBLE_EQ(s.get("x"), 3.0);
    s.clear();
    EXPECT_DOUBLE_EQ(s.total(), 0.0);
}

TEST(Summary, TracksMoments)
{
    Summary s;
    EXPECT_EQ(s.count(), 0u);
    s.observe(1.0);
    s.observe(3.0);
    s.observe(2.0);
    EXPECT_EQ(s.count(), 3u);
    EXPECT_DOUBLE_EQ(s.mean(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(Stats, Geomean)
{
    EXPECT_NEAR(geomean({1.0, 4.0}), 2.0, 1e-12);
    EXPECT_NEAR(geomean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

TEST(Table, RendersAlignedColumns)
{
    Table t({"model", "speedup"});
    t.addRow({"VGG16", Table::cell(1.53)});
    t.addRow({"Bert", Table::cell(1.2, 1)});
    std::string out = t.render();
    EXPECT_NE(out.find("model"), std::string::npos);
    EXPECT_NE(out.find("VGG16"), std::string::npos);
    EXPECT_NE(out.find("1.53"), std::string::npos);
    EXPECT_NE(out.find("1.2"), std::string::npos);
    EXPECT_NE(out.find("----"), std::string::npos);
}

TEST(Table, CellFormatting)
{
    EXPECT_EQ(Table::cell(1.234, 2), "1.23");
    EXPECT_EQ(Table::cell(1.0, 0), "1");
    EXPECT_EQ(Table::pct(0.421), "42.1%");
}

} // namespace
} // namespace fpraker
