/**
 * @file
 * Tests for the serving layer (src/serve/): JobSpec round-trip and
 * cache-key stability, ResultCache hit byte-identity / LRU bytes
 * bound / disk spill, JobScheduler dedup of concurrent identical
 * submits, served-vs-direct fingerprint parity across engine thread
 * and worker counts, and a full daemon round-trip over a Unix
 * socket.
 */

#include <cstdio>
#include <filesystem>
#include <thread>
#include <vector>

#include <unistd.h>

#include <gtest/gtest.h>

#include "api/driver.h"
#include "api/registry.h"
#include "api/result.h"
#include "common/fnv.h"
#include "serve/client.h"
#include "serve/daemon.h"
#include "serve/job_spec.h"
#include "serve/result_cache.h"
#include "serve/scheduler.h"

namespace fpraker {
namespace {

using api::JsonValue;
using serve::CacheStats;
using serve::Daemon;
using serve::DaemonConfig;
using serve::JobOutcome;
using serve::JobScheduler;
using serve::JobSpec;
using serve::JobState;
using serve::ResultCache;
using serve::SchedulerConfig;
using serve::ServeClient;

JobSpec
smallSpec(const std::string &experiment, int sampleSteps)
{
    JobSpec spec;
    spec.experiment = experiment;
    spec.sampleSteps = sampleSteps;
    return spec;
}

/** Render the document `fpraker run <id>` would produce serially. */
std::string
directDocument(const JobSpec &spec)
{
    const api::ExperimentInfo *info =
        api::ExperimentRegistry::instance().find(spec.experiment);
    EXPECT_NE(info, nullptr) << spec.experiment;
    api::CliOptions opts;
    opts.threads = spec.threads;
    opts.sampleSteps = spec.sampleSteps;
    opts.extras = spec.options;
    return api::ReportWriter::renderJson(
        api::produceResult(*info, opts, nullptr));
}

/** Flip a hot document's provenance.cached back to false — the
 *  inverse of the serve layer's patch; hot bytes must then equal the
 *  cold rendering exactly. */
std::string
withColdFlag(const std::string &hot)
{
    static const char kHot[] = "\"cached\": true";
    std::string out = hot;
    size_t at = out.find(kHot);
    EXPECT_NE(at, std::string::npos);
    if (at != std::string::npos)
        out.replace(at, sizeof(kHot) - 1, "\"cached\": false");
    return out;
}

/** Parse a document and null out provenance.cached for comparison. */
JsonValue
normalized(const std::string &document)
{
    std::string error;
    JsonValue doc = JsonValue::parse(document, &error);
    EXPECT_TRUE(error.empty()) << error;
    for (auto &entry : doc.entries())
        if (entry.first == "provenance")
            entry.second.set("cached", false);
    return doc;
}

/** A deterministic fake document for pure cache tests. */
std::string
fakeDocument(const std::string &payload)
{
    JsonValue doc = JsonValue::object();
    doc.set("schema", "fpraker-result-v1");
    doc.set("payload", payload);
    JsonValue prov = JsonValue::object();
    prov.set("cached", false);
    doc.set("provenance", std::move(prov));
    return doc.dump() + "\n";
}

TEST(JobSpec, CanonicalKeyIgnoresOptionOrderButNotValues)
{
    JobSpec a = smallSpec("fig02", 8);
    a.options = {{"steps", "4"}, {"reps", "2"}};
    JobSpec b = smallSpec("fig02", 8);
    b.options = {{"reps", "2"}, {"steps", "4"}};
    EXPECT_EQ(a.cacheKey(), b.cacheKey());

    JobSpec c = a;
    c.options[0].second = "5";
    EXPECT_NE(a.cacheKey(), c.cacheKey());
    JobSpec d = a;
    d.sampleSteps = 9;
    EXPECT_NE(a.cacheKey(), d.cacheKey());
    JobSpec e = a;
    e.experiment = "fig01";
    EXPECT_NE(a.cacheKey(), e.cacheKey());
    // Priority is scheduling metadata, never part of the key.
    JobSpec f = a;
    f.priority = 7;
    EXPECT_EQ(a.cacheKey(), f.cacheKey());
}

TEST(JobSpec, JsonRoundTripAndStrictParse)
{
    JobSpec spec = smallSpec("fig11", 24);
    spec.threads = 4;
    spec.priority = 2;
    spec.options = {{"steps", "10"}, {"out", "x.json"}};

    JobSpec back;
    std::string error;
    ASSERT_TRUE(JobSpec::fromJson(spec.toJson(), &back, &error))
        << error;
    EXPECT_EQ(back.canonical(), spec.canonical());
    EXPECT_EQ(back.priority, spec.priority);
    EXPECT_EQ(back.cacheKey(), spec.cacheKey());

    JsonValue bad = JsonValue::object();
    EXPECT_FALSE(JobSpec::fromJson(bad, &back, &error));
    bad.set("experiment", "fig11");
    bad.set("bogus", 1);
    EXPECT_FALSE(JobSpec::fromJson(bad, &back, &error));
    JsonValue bad2 = JsonValue::object();
    bad2.set("experiment", "fig11");
    bad2.set("threads", 0);
    EXPECT_FALSE(JobSpec::fromJson(bad2, &back, &error));
}

TEST(ResultCache, HitIsByteIdenticalAndMarkedCached)
{
    ResultCache cache(1 << 20);
    const std::string doc = fakeDocument("abc");
    cache.insert(1, doc);

    std::string raw;
    ASSERT_TRUE(cache.lookupRaw(1, &raw));
    EXPECT_EQ(raw, doc); // byte-identical to the cold rendering

    std::string hot;
    ASSERT_TRUE(cache.lookup(1, &hot));
    EXPECT_NE(hot, doc); // differs exactly in provenance.cached
    EXPECT_NE(hot.find("\"cached\": true"), std::string::npos);
    EXPECT_EQ(withColdFlag(hot), doc); // ... and in nothing else
    EXPECT_EQ(normalized(hot), normalized(doc));

    std::string miss;
    EXPECT_FALSE(cache.lookup(2, &miss));
    CacheStats s = cache.stats();
    EXPECT_EQ(s.hits, 2u);
    EXPECT_EQ(s.misses, 1u);
    EXPECT_EQ(s.insertions, 1u);
}

TEST(ResultCache, MemoizedFingerprintMatchesDocumentText)
{
    ResultCache cache(1 << 20);
    // A realistic header slice: fingerprint before any content, the
    // shape serve::extractFingerprint is documented against.
    std::string doc = fakeDocument("fp-test");
    const size_t at = doc.find("\"payload\"");
    ASSERT_NE(at, std::string::npos);
    doc.insert(at, "\"fingerprint\": \"00c0ffee00c0ffee\", ");
    ASSERT_EQ(serve::extractFingerprint(doc), "00c0ffee00c0ffee");
    cache.insert(7, doc);

    // The memoized value rides along with every hit, and the
    // document text itself is unperturbed by the memo.
    std::string hot, fp;
    ASSERT_TRUE(cache.lookup(7, &hot, &fp));
    EXPECT_EQ(fp, "00c0ffee00c0ffee");
    EXPECT_EQ(fp, serve::extractFingerprint(hot));
    EXPECT_EQ(withColdFlag(hot), doc);

    // A document with no fingerprint key memoizes "".
    cache.insert(8, fakeDocument("no-fp"));
    ASSERT_TRUE(cache.lookup(8, &hot, &fp));
    EXPECT_EQ(fp, "");

    std::string miss;
    EXPECT_FALSE(cache.lookup(9, &miss, &fp));
}

TEST(ResultCache, MemoizedFingerprintSurvivesSpillRescue)
{
    const std::string dir =
        (std::filesystem::temp_directory_path() /
         ("fpraker_spill_fp_" + std::to_string(::getpid())))
            .string();
    std::filesystem::remove_all(dir);

    std::string doc = fakeDocument("fp-spill");
    const size_t at = doc.find("\"payload\"");
    ASSERT_NE(at, std::string::npos);
    doc.insert(at, "\"fingerprint\": \"feedfacefeedface\", ");
    {
        ResultCache cache(doc.size() + 1, dir);
        cache.insert(1, doc);
        cache.insert(2, doc); // evicts 1 from memory
        EXPECT_FALSE(cache.contains(1));

        // The rescue path re-extracts at re-admission.
        std::string hot, fp;
        ASSERT_TRUE(cache.lookup(1, &hot, &fp));
        EXPECT_EQ(fp, "feedfacefeedface");
        EXPECT_EQ(cache.stats().diskHits, 1u);
    }
    std::filesystem::remove_all(dir);
}

TEST(ResultCache, EvictionRespectsBytesBound)
{
    const std::string doc = fakeDocument("0123456789");
    // Room for two resident documents, not three.
    ResultCache cache(doc.size() * 2 + doc.size() / 2);
    cache.insert(1, doc);
    cache.insert(2, doc);
    EXPECT_TRUE(cache.contains(1));
    EXPECT_TRUE(cache.contains(2));

    // Touch 1 so 2 is the LRU victim when 3 arrives.
    std::string text;
    ASSERT_TRUE(cache.lookupRaw(1, &text));
    cache.insert(3, doc);

    EXPECT_TRUE(cache.contains(1));
    EXPECT_FALSE(cache.contains(2));
    EXPECT_TRUE(cache.contains(3));
    CacheStats s = cache.stats();
    EXPECT_EQ(s.evictions, 1u);
    EXPECT_EQ(s.entries, 2u);
    EXPECT_LE(s.bytes, s.capacityBytes);
}

TEST(ResultCache, DiskSpillSurvivesEviction)
{
    const std::string dir =
        (std::filesystem::temp_directory_path() /
         ("fpraker_spill_" + std::to_string(::getpid())))
            .string();
    std::filesystem::remove_all(dir);

    const std::string doc = fakeDocument("spilled");
    {
        ResultCache cache(doc.size() + 1, dir);
        cache.insert(1, doc);
        cache.insert(2, doc); // evicts 1 from memory
        EXPECT_FALSE(cache.contains(1));

        std::string raw;
        ASSERT_TRUE(cache.lookupRaw(1, &raw)); // rescued from disk
        EXPECT_EQ(raw, doc);
        EXPECT_EQ(cache.stats().diskHits, 1u);
    }
    {
        // A fresh cache (daemon restart) warms from the same spill.
        ResultCache cache(1 << 20, dir);
        std::string raw;
        ASSERT_TRUE(cache.lookupRaw(2, &raw));
        EXPECT_EQ(raw, doc);
    }
    std::filesystem::remove_all(dir);
}

TEST(JobScheduler, CacheHitMatchesColdRunAndSkipsEngine)
{
    SchedulerConfig cfg;
    cfg.engineThreads = 1;
    cfg.workers = 2;
    JobScheduler sched(cfg);
    JobSpec spec = smallSpec("fig02", 8);

    JobOutcome cold = sched.run(spec);
    ASSERT_EQ(cold.state, JobState::Done);
    EXPECT_FALSE(cold.cached);
    // The scheduler's cold document is byte-identical to what
    // `fpraker run fig02` renders serially.
    EXPECT_EQ(cold.document, directDocument(spec));

    JobOutcome hot = sched.run(spec);
    ASSERT_EQ(hot.state, JobState::Done);
    EXPECT_TRUE(hot.cached);
    EXPECT_EQ(hot.fingerprint, cold.fingerprint);
    EXPECT_NE(hot.document, cold.document);
    // The ONLY byte difference is the provenance.cached flag.
    EXPECT_EQ(withColdFlag(hot.document), cold.document);
    EXPECT_NE(hot.document.find("\"cached\": true"),
              std::string::npos);

    serve::SchedulerStats s = sched.stats();
    EXPECT_EQ(s.executed, 1u); // the hot request did no engine work
    EXPECT_EQ(s.cacheServed, 1u);
}

TEST(JobScheduler, ConcurrentIdenticalSubmitsSimulateOnce)
{
    SchedulerConfig cfg;
    cfg.engineThreads = 1;
    cfg.workers = 4;
    JobScheduler sched(cfg);
    JobSpec spec = smallSpec("fig02", 10);

    constexpr int kClients = 8;
    std::vector<JobOutcome> outcomes(kClients);
    std::vector<std::thread> clients;
    for (int i = 0; i < kClients; ++i)
        clients.emplace_back(
            [&, i] { outcomes[i] = sched.run(spec); });
    for (std::thread &t : clients)
        t.join();

    for (const JobOutcome &out : outcomes) {
        ASSERT_EQ(out.state, JobState::Done);
        EXPECT_EQ(out.fingerprint, outcomes[0].fingerprint);
    }
    // Every client got a document, but the simulation ran exactly
    // once: the rest coalesced onto the in-flight job or hit the
    // cache.
    EXPECT_EQ(sched.stats().executed, 1u);
}

TEST(JobScheduler, FingerprintsMatchDirectRunAcrossWidths)
{
    const JobSpec specs[] = {smallSpec("fig01", 12),
                             smallSpec("fig02", 12)};
    std::string want[2];
    for (int i = 0; i < 2; ++i) {
        std::string doc = directDocument(specs[i]);
        want[i] = normalized(doc).find("fingerprint")->str();
    }

    for (int width : {1, 2, 8}) {
        SchedulerConfig cfg;
        cfg.engineThreads = width;
        cfg.workers = width;
        JobScheduler sched(cfg);
        for (int i = 0; i < 2; ++i) {
            JobOutcome out = sched.run(specs[i]);
            ASSERT_EQ(out.state, JobState::Done) << out.error;
            EXPECT_EQ(out.fingerprint, want[i])
                << specs[i].experiment << " @ " << width;
        }
    }
}

TEST(JobScheduler, UnknownExperimentFailsWithoutCrashing)
{
    JobScheduler sched;
    JobOutcome out = sched.run(smallSpec("nope", 8));
    EXPECT_EQ(out.state, JobState::Failed);
    EXPECT_NE(out.error.find("unknown experiment"),
              std::string::npos);
    EXPECT_EQ(sched.stats().failed, 1u);
}

TEST(Daemon, SocketRoundTripServesAndCaches)
{
    DaemonConfig cfg;
    cfg.socketPath =
        (std::filesystem::temp_directory_path() /
         ("fpraker_test_" + std::to_string(::getpid()) + ".sock"))
            .string();
    // engineThreads=1 keeps the daemon's documents byte-identical to
    // a serial `fpraker run` (provenance.threads included); parity at
    // wider engines is fingerprint-level (checked above).
    cfg.scheduler.engineThreads = 1;
    cfg.scheduler.workers = 2;
    Daemon daemon(cfg);
    std::string error;
    ASSERT_TRUE(daemon.start(&error)) << error;
    bool clean = false;
    std::thread server([&] { clean = daemon.serve(); });

    ServeClient client;
    ASSERT_TRUE(client.connectTo(cfg.socketPath, &error)) << error;

    JsonValue ping = JsonValue::object();
    ping.set("op", "ping");
    JsonValue resp;
    ASSERT_TRUE(client.request(ping, &resp, &error)) << error;
    EXPECT_TRUE(resp.find("ok")->boolean());

    JobSpec spec = smallSpec("fig02", 8);
    ASSERT_TRUE(client.submit(spec, &resp, &error)) << error;
    ASSERT_TRUE(resp.find("ok")->boolean());
    EXPECT_FALSE(resp.find("cached")->boolean());
    const std::string fingerprint = resp.find("fingerprint")->str();
    const std::string coldDoc = resp.find("document")->str();
    EXPECT_EQ(coldDoc, directDocument(spec));

    // Second submit of the same spec: served from cache.
    ASSERT_TRUE(client.submit(spec, &resp, &error)) << error;
    ASSERT_TRUE(resp.find("ok")->boolean());
    EXPECT_TRUE(resp.find("cached")->boolean());
    EXPECT_EQ(resp.find("fingerprint")->str(), fingerprint);
    EXPECT_EQ(normalized(resp.find("document")->str()),
              normalized(coldDoc));

    // Async path: submit without waiting, then fetch via result.
    ASSERT_TRUE(client.submit(smallSpec("fig02", 9), &resp, &error,
                              /*wait=*/false))
        << error;
    ASSERT_TRUE(resp.find("ok")->boolean());
    const int64_t asyncJob = resp.find("job")->intValue();
    JsonValue fetch = JsonValue::object();
    fetch.set("op", "result");
    fetch.set("job", asyncJob);
    ASSERT_TRUE(client.request(fetch, &resp, &error)) << error;
    ASSERT_TRUE(resp.find("ok")->boolean());
    EXPECT_EQ(resp.find("status")->str(), "done");
    EXPECT_FALSE(resp.find("document")->str().empty());

    // Malformed and unknown requests answer ok=false and keep the
    // connection usable.
    JsonValue badOp = JsonValue::object();
    badOp.set("op", "frobnicate");
    ASSERT_TRUE(client.request(badOp, &resp, &error)) << error;
    EXPECT_FALSE(resp.find("ok")->boolean());

    JsonValue stats = JsonValue::object();
    stats.set("op", "stats");
    ASSERT_TRUE(client.request(stats, &resp, &error)) << error;
    ASSERT_TRUE(resp.find("ok")->boolean());
    // Two simulations (fig02@8 cold, fig02@9 async) for three
    // submits; the repeat was cache-served.
    EXPECT_EQ(resp.find("jobs")->find("executed")->intValue(), 2);
    EXPECT_EQ(resp.find("jobs")->find("cache_served")->intValue(), 1);
    EXPECT_GE(resp.find("cache")->find("hits")->intValue(), 1);

    // Metrics op: the full obs-registry snapshot as JSON...
    JsonValue metrics = JsonValue::object();
    metrics.set("op", "metrics");
    ASSERT_TRUE(client.request(metrics, &resp, &error)) << error;
    ASSERT_TRUE(resp.find("ok")->boolean());
    const JsonValue *snap = resp.find("metrics");
    ASSERT_TRUE(snap && snap->isObject());
    ASSERT_TRUE(snap->find("counters"));
    ASSERT_TRUE(snap->find("gauges"));
    ASSERT_TRUE(snap->find("histograms"));
    // The scheduler seam counted this connection's submits.
    const JsonValue *submitted =
        snap->find("counters")->find("sched.submitted");
    ASSERT_TRUE(submitted);
    EXPECT_GE(submitted->intValue(), 3);
    // ...and Prometheus text on request.
    metrics.set("format", "prom");
    ASSERT_TRUE(client.request(metrics, &resp, &error)) << error;
    ASSERT_TRUE(resp.find("ok")->boolean());
    const JsonValue *prom = resp.find("text");
    ASSERT_TRUE(prom);
    EXPECT_NE(prom->str().find("# TYPE fpraker_sched_submitted "
                               "counter"),
              std::string::npos);
    // An unknown format is a protocol error, not a silent default.
    metrics.set("format", "xml");
    ASSERT_TRUE(client.request(metrics, &resp, &error)) << error;
    EXPECT_FALSE(resp.find("ok")->boolean());

    JsonValue shutdown = JsonValue::object();
    shutdown.set("op", "shutdown");
    ASSERT_TRUE(client.request(shutdown, &resp, &error)) << error;
    EXPECT_TRUE(resp.find("ok")->boolean());
    server.join();
    EXPECT_TRUE(clean);
    EXPECT_FALSE(std::filesystem::exists(cfg.socketPath));
}

TEST(JobScheduler, ServedWorkloadMatchesDirectRunAndKeysOnKnobs)
{
    // A workload experiment served through the scheduler must produce
    // the exact document a direct run produces, and the cache key
    // must fold the workload geometry knobs: same knobs hit, changed
    // knobs simulate again.
    JobSpec spec = smallSpec("ext_workload_catalog", 6);
    spec.options = {{"batch", "2"}, {"seq", "16"}};

    SchedulerConfig cfg;
    cfg.engineThreads = 1; // document byte-parity needs a serial engine
    cfg.workers = 1;
    JobScheduler sched(cfg);

    JobOutcome cold = sched.run(spec);
    ASSERT_EQ(cold.state, JobState::Done) << cold.error;
    EXPECT_EQ(cold.document, directDocument(spec));

    JobOutcome hot = sched.run(spec);
    ASSERT_EQ(hot.state, JobState::Done) << hot.error;
    EXPECT_EQ(hot.fingerprint, cold.fingerprint);
    EXPECT_EQ(sched.stats().executed, 1u);
    EXPECT_EQ(sched.stats().cacheServed, 1u);

    // Same experiment, different batch geometry: a different job.
    JobSpec wider = spec;
    wider.options = {{"batch", "4"}, {"seq", "16"}};
    EXPECT_NE(wider.cacheKey(), spec.cacheKey());
    JobOutcome other = sched.run(wider);
    ASSERT_EQ(other.state, JobState::Done) << other.error;
    EXPECT_EQ(sched.stats().executed, 2u);
    EXPECT_NE(other.fingerprint, cold.fingerprint);
}

} // namespace
} // namespace fpraker
