/**
 * @file
 * Tests for the training-emulation framework (Fig. 17/21 substrate).
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "trace/model_zoo.h"
#include "train/acc_width_profiler.h"
#include "train/dataset.h"
#include "train/trainer.h"

namespace fpraker {
namespace {

TEST(Matrix, BasicOps)
{
    Matrix m(2, 3);
    m.at(0, 0) = 1.0f;
    m.at(1, 2) = 5.0f;
    Matrix t = m.transposed();
    EXPECT_EQ(t.rows(), 3u);
    EXPECT_EQ(t.at(2, 1), 5.0f);
    Matrix n(2, 3, 1.0f);
    m.addScaled(n, 2.0f);
    EXPECT_EQ(m.at(0, 0), 3.0f);
    m.zero();
    EXPECT_EQ(m.at(1, 2), 0.0f);
}

TEST(MacEngine, ModesAgreeOnBenignData)
{
    Rng rng(3);
    std::vector<float> a(64), b(64);
    for (size_t i = 0; i < 64; ++i) {
        a[i] = static_cast<float>(rng.gaussian(0.0, 1.0));
        b[i] = static_cast<float>(rng.gaussian(0.0, 1.0));
    }
    MacEngine fp32(MacMode::NativeFp32);
    MacEngine bf16c(MacMode::Bf16Chunked);
    MacEngine fpr(MacMode::FPRakerEmulated);
    float r32 = fp32.dot(a.data(), b.data(), 64);
    float rbf = bf16c.dot(a.data(), b.data(), 64);
    float rfp = fpr.dot(a.data(), b.data(), 64);
    // bfloat16 inputs round at 2^-8 relative; over 64 products the
    // divergence stays small relative to the magnitude scale.
    EXPECT_NEAR(rbf, r32, 0.15f * (std::fabs(r32) + 8.0f));
    EXPECT_NEAR(rfp, rbf, 0.02f * (std::fabs(rbf) + 8.0f));
}

TEST(MacEngine, StridedDotMatchesDense)
{
    std::vector<float> a = {1.0f, 2.0f, 3.0f};
    std::vector<float> b = {1.0f, -1.0f, 2.0f, -2.0f, 3.0f, -3.0f};
    MacEngine eng(MacMode::NativeFp32);
    // Stride 2 picks 1, 2, 3.
    EXPECT_EQ(eng.dotStrided(a.data(), b.data(), 3, 2), 14.0f);
}

TEST(Dataset, GeneratesSeparableClasses)
{
    DatasetConfig cfg;
    cfg.trainSamples = 256;
    cfg.testSamples = 64;
    DatasetPair d = makeSynthCifar(cfg);
    EXPECT_EQ(d.train.samples(), 256u);
    EXPECT_EQ(d.test.samples(), 64u);
    EXPECT_EQ(d.train.features(), 144u);
    // Labels cover multiple classes.
    std::set<int> seen(d.train.labels.begin(), d.train.labels.end());
    EXPECT_GT(seen.size(), 5u);
    for (int l : d.train.labels) {
        EXPECT_GE(l, 0);
        EXPECT_LT(l, cfg.classes);
    }
}

TEST(Dataset, DeterministicGivenSeed)
{
    DatasetConfig cfg;
    cfg.trainSamples = 32;
    cfg.testSamples = 8;
    DatasetPair a = makeSynthCifar(cfg);
    DatasetPair b = makeSynthCifar(cfg);
    EXPECT_EQ(a.train.labels, b.train.labels);
    for (size_t i = 0; i < a.train.x.size(); ++i)
        EXPECT_EQ(a.train.x.data()[i], b.train.x.data()[i]);
}

/** Small, fast training setup shared by the convergence tests. */
DatasetPair &
smallData()
{
    static DatasetPair data = [] {
        DatasetConfig cfg;
        cfg.classes = 6;
        cfg.imageSize = 8;
        cfg.trainSamples = 480;
        cfg.testSamples = 120;
        cfg.noise = 0.30;
        return makeSynthCifar(cfg);
    }();
    return data;
}

TrainConfig
smallTrainConfig()
{
    TrainConfig cfg;
    cfg.hidden = {24};
    cfg.epochs = 5;
    cfg.batchSize = 32;
    cfg.learningRate = 0.10f;
    return cfg;
}

TEST(Trainer, Fp32Converges)
{
    MlpTrainer trainer(smallData(), smallTrainConfig());
    TrainResult r = trainer.run(MacMode::NativeFp32);
    ASSERT_EQ(r.testAccuracy.size(), 5u);
    EXPECT_GT(r.finalAccuracy(), 0.70);
    // Loss decreases over training.
    EXPECT_LT(r.trainLoss.back(), r.trainLoss.front());
}

TEST(Trainer, AllThreeArithmeticModesConvergeTogether)
{
    // The Fig. 17 claim: bf16-baseline and FPRaker-emulated training
    // land within noise of each other (the paper reports within 0.1%
    // of FP32 on CIFAR; our tiny task gets a looser but tight band).
    MlpTrainer trainer(smallData(), smallTrainConfig());
    TrainResult fp32 = trainer.run(MacMode::NativeFp32);
    TrainResult bf16c = trainer.run(MacMode::Bf16Chunked);
    TrainResult fpr = trainer.run(MacMode::FPRakerEmulated);
    EXPECT_GT(bf16c.finalAccuracy(), 0.70);
    EXPECT_GT(fpr.finalAccuracy(), 0.70);
    EXPECT_NEAR(fpr.finalAccuracy(), bf16c.finalAccuracy(), 0.06);
    EXPECT_NEAR(fpr.finalAccuracy(), fp32.finalAccuracy(), 0.08);
}

TEST(AccWidthProfiler, WidthGrowsWithLength)
{
    AccWidthConfig cfg;
    EXPECT_LE(requiredFracBits(16, cfg), requiredFracBits(256, cfg));
    EXPECT_LE(requiredFracBits(256, cfg), requiredFracBits(65536, cfg));
    // Clamped to the architectural range.
    EXPECT_GE(requiredFracBits(1, cfg), cfg.minFracBits);
    EXPECT_LE(requiredFracBits(int64_t{1} << 40, cfg), cfg.maxFracBits);
}

TEST(AccWidthProfiler, ProfilesEveryLayerAndOp)
{
    auto widths = profileAccumulatorWidths(resnet18Layers());
    ASSERT_EQ(widths.size(), resnet18Layers().size());
    for (const auto &w : widths) {
        EXPECT_GE(w.forwardBits, 4);
        EXPECT_LE(w.forwardBits, 12);
        EXPECT_GE(w.inputGradBits, 4);
        EXPECT_GE(w.weightGradBits, 4);
    }
    // Most profiled widths sit below the fixed 12-bit register: that
    // headroom is what Fig. 21 converts into speedup.
    int below = 0;
    for (const auto &w : widths)
        below += w.forwardBits < 12;
    EXPECT_GT(below, static_cast<int>(widths.size()) / 2);
}

TEST(AccWidthProfiler, AccumulationLengthsFollowOps)
{
    LayerShape l;
    l.name = "x";
    l.m = 100;
    l.n = 200;
    l.k = 300;
    EXPECT_EQ(accumulationLength(l, TrainingOp::Forward), 300);
    EXPECT_EQ(accumulationLength(l, TrainingOp::InputGrad), 200);
    EXPECT_EQ(accumulationLength(l, TrainingOp::WeightGrad), 100);
}

} // namespace
} // namespace fpraker
