/**
 * @file
 * Tests for the memory subsystem: containers, transposer, global
 * buffer, and the DRAM model.
 */

#include <set>

#include <gtest/gtest.h>

#include "memory/container.h"
#include "memory/dram.h"
#include "memory/global_buffer.h"
#include "memory/transposer.h"

namespace fpraker {
namespace {

TEST(ContainerStore, RoundTripValues)
{
    ContainerStore store(64, 3, 40);
    store.set(0, 0, 0, bf16(1.5f));
    store.set(63, 2, 39, bf16(-2.0f));
    store.set(32, 1, 32, bf16(4.0f));
    EXPECT_EQ(store.at(0, 0, 0).toFloat(), 1.5f);
    EXPECT_EQ(store.at(63, 2, 39).toFloat(), -2.0f);
    EXPECT_EQ(store.at(32, 1, 32).toFloat(), 4.0f);
    EXPECT_EQ(store.at(5, 1, 7).toFloat(), 0.0f); // untouched = zero
}

TEST(ContainerStore, GeometryAndPadding)
{
    // 64 channels x 3 rows x 40 cols: 2 channel tiles x 2 column tiles
    // x 3 rows = 12 containers.
    ContainerStore store(64, 3, 40);
    EXPECT_EQ(store.numContainers(), 12u);
    EXPECT_EQ(store.paddedBytes(), 12u * 2048u);
    EXPECT_EQ(store.logicalBytes(), 64u * 3u * 40u * 2u);
    EXPECT_GT(store.paddingOverhead(), 0.0);

    // Exactly container-shaped tensors have no padding.
    ContainerStore exact(32, 2, 32);
    EXPECT_EQ(exact.paddingOverhead(), 0.0);
}

TEST(ContainerStore, ContainerBoundaries)
{
    ContainerStore store(64, 2, 64);
    // Same container: channels 0-31, columns 0-31, row 0.
    EXPECT_EQ(store.containerOf(0, 0, 0), store.containerOf(31, 0, 31));
    // Crossing channel tile, column tile, or row changes container.
    EXPECT_NE(store.containerOf(31, 0, 0), store.containerOf(32, 0, 0));
    EXPECT_NE(store.containerOf(0, 0, 31), store.containerOf(0, 0, 32));
    EXPECT_NE(store.containerOf(0, 0, 0), store.containerOf(0, 1, 0));
}

TEST(ContainerStore, ChannelOrderIsFastest)
{
    // Containers are ordered channel, column, row: consecutive channel
    // tiles are adjacent containers.
    ContainerStore store(96, 2, 64);
    EXPECT_EQ(store.containerOf(32, 0, 0), store.containerOf(0, 0, 0) + 1);
    EXPECT_EQ(store.containerOf(64, 0, 0), store.containerOf(0, 0, 0) + 2);
}

TEST(ContainerStore, OffsetsUniqueWithinContainer)
{
    ContainerStore store(32, 1, 32);
    std::set<int> seen;
    for (int c = 0; c < 32; ++c)
        for (int k = 0; k < 32; ++k)
            seen.insert(store.offsetInContainer(c, 0, k));
    EXPECT_EQ(seen.size(), 1024u);
}

TEST(ContainerStore, Burst8ReadsConsecutiveChannels)
{
    ContainerStore store(16, 1, 4);
    for (int c = 0; c < 16; ++c)
        store.set(c, 0, 2, bf16(static_cast<float>(c + 1)));
    BFloat16 out[8];
    store.readBurst8(4, 0, 2, out);
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(out[i].toFloat(), static_cast<float>(4 + i + 1));
    // Tail beyond the channel count pads with zeros.
    store.readBurst8(12, 0, 2, out);
    EXPECT_EQ(out[3].toFloat(), 16.0f);
    EXPECT_TRUE(out[4].isZero());
}

TEST(Transposer, BlockTranspose)
{
    BFloat16 in[64], out[64];
    for (int r = 0; r < 8; ++r)
        for (int c = 0; c < 8; ++c)
            in[r * 8 + c] = bf16(static_cast<float>(r * 10 + c));
    Transposer::transposeBlock(in, 8, out, 8);
    for (int r = 0; r < 8; ++r)
        for (int c = 0; c < 8; ++c)
            EXPECT_EQ(out[c * 8 + r].bits(), in[r * 8 + c].bits());
}

TEST(Transposer, LoadRowsReadColumns)
{
    Transposer t;
    BFloat16 rows[8][8];
    // Small integers are exactly representable in bfloat16.
    for (int r = 0; r < 8; ++r)
        for (int c = 0; c < 8; ++c)
            rows[r][c] = bf16(static_cast<float>(r + c * 8));
    for (int r = 0; r < 8; ++r)
        t.loadRow(r, rows[r]);
    BFloat16 col[8];
    t.readColumn(3, col);
    for (int r = 0; r < 8; ++r)
        EXPECT_EQ(col[r].toFloat(), static_cast<float>(r + 24));
    EXPECT_EQ(t.rowLoads(), 8u);
    EXPECT_EQ(t.columnReads(), 1u);
}

TEST(GlobalBuffer, BankInterleaving)
{
    GlobalBuffer gb;
    // 9 banks at 16-byte interleave: addresses 0,16,...,128 hit banks
    // 0..8; address 144 wraps to bank 0.
    EXPECT_EQ(gb.bankOf(0), 0);
    EXPECT_EQ(gb.bankOf(16), 1);
    EXPECT_EQ(gb.bankOf(16 * 9), 0);
}

TEST(GlobalBuffer, OddBankCountSpreadsPowerOfTwoStrides)
{
    GlobalBuffer gb;
    // Stride-2 accesses (1024 bytes apart) across 9 banks never pile
    // onto a single bank the way a power-of-two bank count would.
    std::set<int> banks;
    for (int i = 0; i < 9; ++i)
        banks.insert(gb.bankOf(static_cast<uint64_t>(i) * 1024));
    EXPECT_EQ(banks.size(), 9u);
}

TEST(GlobalBuffer, ConflictAccounting)
{
    GlobalBuffer gb;
    // Two addresses on the same bank, one elsewhere: 2 cycles, one
    // conflict.
    int cycles = gb.accessGroup({0, 16 * 9, 16});
    EXPECT_EQ(cycles, 2);
    EXPECT_EQ(gb.stats().bankConflicts, 1u);
    EXPECT_EQ(gb.stats().reads, 3u);
}

TEST(GlobalBuffer, CapacityMatchesTableII)
{
    GlobalBuffer gb;
    EXPECT_EQ(gb.capacityBytes(), 9ull * 4ull * 1024 * 1024);
}

TEST(DramModel, PeakBandwidthMatchesLpddr4Config)
{
    DramModel dram;
    // 4 channels x 3200 MT/s x 2 B = 25.6 GB/s; at 600 MHz that is
    // ~42.67 bytes per core cycle.
    EXPECT_NEAR(dram.peakBytesPerCycle(), 25.6e9 / 600e6, 1e-9);
}

TEST(DramModel, StreamFasterThanRandom)
{
    DramModel dram;
    uint64_t bytes = 1 << 20;
    EXPECT_LT(dram.cyclesForStream(bytes), dram.cyclesForRandom(bytes));
}

TEST(DramModel, EnergyScalesWithBytes)
{
    DramModel dram;
    EXPECT_DOUBLE_EQ(dram.energyPj(100), 100 * 8.0 * 10.0);
    dram.recordRead(64);
    dram.recordWrite(32);
    EXPECT_EQ(dram.stats().readBytes, 64u);
    EXPECT_EQ(dram.stats().writeBytes, 32u);
}

} // namespace
} // namespace fpraker
