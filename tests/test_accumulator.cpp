/**
 * @file
 * Unit and property tests for the extended-precision accumulator.
 */

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "numeric/accumulator.h"
#include "numeric/reference.h"

namespace fpraker {
namespace {

TEST(ExtendedAccumulator, StartsAtZero)
{
    ExtendedAccumulator acc;
    EXPECT_TRUE(acc.isZero());
    EXPECT_EQ(acc.exponent(), ExtendedAccumulator::kMinExp);
    EXPECT_EQ(acc.readDouble(), 0.0);
    EXPECT_TRUE(acc.readBFloat16().isZero());
}

TEST(ExtendedAccumulator, SingleProductIsExact)
{
    ExtendedAccumulator acc;
    acc.addProduct(bf16(1.5f), bf16(2.5f));
    EXPECT_DOUBLE_EQ(acc.readDouble(), 3.75);
    EXPECT_EQ(acc.exponent(), 1); // 3.75 = 2^1 * 1.875
    EXPECT_FALSE(acc.isNegative());
}

TEST(ExtendedAccumulator, SignedProducts)
{
    ExtendedAccumulator acc;
    acc.addProduct(bf16(-1.5f), bf16(2.0f));
    EXPECT_DOUBLE_EQ(acc.readDouble(), -3.0);
    acc.addProduct(bf16(-1.0f), bf16(-1.0f));
    EXPECT_DOUBLE_EQ(acc.readDouble(), -2.0);
    acc.addProduct(bf16(2.0f), bf16(1.0f));
    EXPECT_DOUBLE_EQ(acc.readDouble(), 0.0);
    EXPECT_TRUE(acc.isZero());
}

TEST(ExtendedAccumulator, ZeroOperandsAreIgnored)
{
    ExtendedAccumulator acc;
    acc.addProduct(bf16(0.0f), bf16(5.0f));
    acc.addProduct(bf16(5.0f), bf16(0.0f));
    EXPECT_TRUE(acc.isZero());
}

TEST(ExtendedAccumulator, ExactCancellation)
{
    ExtendedAccumulator acc;
    acc.addProduct(bf16(1.25f), bf16(4.0f));
    acc.addProduct(bf16(-1.25f), bf16(4.0f));
    EXPECT_TRUE(acc.isZero());
    EXPECT_EQ(acc.readDouble(), 0.0);
}

TEST(ExtendedAccumulator, NearCancellationKeepsSmallResidue)
{
    ExtendedAccumulator acc;
    acc.addProduct(bf16(1.0f + 0x1.0p-7f), bf16(1.0f)); // 1 + 2^-7
    acc.addProduct(bf16(-1.0f), bf16(1.0f));
    EXPECT_DOUBLE_EQ(acc.readDouble(), 0x1.0p-7);
    EXPECT_EQ(acc.exponent(), -7);
}

TEST(ExtendedAccumulator, TinyAddendFoldsAway)
{
    // 2^-80 against 2^40: far below the 12 fractional bits.
    ExtendedAccumulator acc;
    acc.addProduct(bf16(0x1.0p20f), bf16(0x1.0p20f));
    double before = acc.readDouble();
    acc.addProduct(bf16(0x1.0p-40f), bf16(0x1.0p-40f));
    EXPECT_DOUBLE_EQ(acc.readDouble(), before);
}

TEST(ExtendedAccumulator, SmallAccumulatorSwampedByHugeAddend)
{
    ExtendedAccumulator acc;
    acc.addProduct(bf16(0x1.0p-40f), bf16(0x1.0p-40f));
    acc.addProduct(bf16(0x1.0p20f), bf16(0x1.0p20f));
    EXPECT_DOUBLE_EQ(acc.readDouble(), 0x1.0p40);
}

TEST(ExtendedAccumulator, RoundsToFracBitsEachStep)
{
    // fracBits = 12: adding 2^-13 to 1.0 is a tie at the round bit with
    // even significand -> stays 1.0. Adding 2^-12 is representable.
    AccumulatorConfig cfg;
    cfg.fracBits = 12;
    ExtendedAccumulator acc(cfg);
    acc.addProduct(bf16(1.0f), bf16(1.0f));
    acc.addProduct(bf16(0x1.0p-13f), bf16(1.0f));
    EXPECT_DOUBLE_EQ(acc.readDouble(), 1.0);
    acc.addProduct(bf16(0x1.0p-12f), bf16(1.0f));
    EXPECT_DOUBLE_EQ(acc.readDouble(), 1.0 + 0x1.0p-12);
}

TEST(ExtendedAccumulator, RneTieBreaksToEven)
{
    AccumulatorConfig cfg;
    cfg.fracBits = 12;
    ExtendedAccumulator acc(cfg);
    // Significand ...0001 + half ulp: tie -> round down to even (...000).
    acc.addProduct(bf16(1.0f + 0x1.0p-7f), bf16(1.0f)); // 1 + 2^-7
    acc.addProduct(bf16(0x1.0p-12f), bf16(1.0f));       // lsb = 1 now
    acc.addProduct(bf16(0x1.0p-13f), bf16(1.0f));       // tie
    // 1 + 2^-7 + 2^-12 + 2^-13 -> tie rounds to even: 1 + 2^-7 + 2^-11.
    EXPECT_DOUBLE_EQ(acc.readDouble(), 1.0 + 0x1.0p-7 + 0x1.0p-11);
}

TEST(ExtendedAccumulator, AlignToQuantizes)
{
    AccumulatorConfig cfg;
    cfg.fracBits = 12;
    ExtendedAccumulator acc(cfg);
    acc.addProduct(bf16(1.0f), bf16(1.0f)); // 1.0, exponent 0
    acc.addProduct(bf16(0x1.0p-10f), bf16(1.0f));
    EXPECT_DOUBLE_EQ(acc.readDouble(), 1.0 + 0x1.0p-10);
    // Raising the window to exponent 5 keeps bits down to
    // 2^(5-12) = 2^-7, so the 2^-10 bit is truncated away and the value
    // renormalizes back to exactly 1.0.
    acc.alignTo(5);
    EXPECT_EQ(acc.exponent(), 0);
    EXPECT_DOUBLE_EQ(acc.readDouble(), 1.0);
    // Raising the window far above drops the whole value: with the lsb
    // at 2^(15-12) = 8, the remaining 1.0 rounds to zero under RNE.
    acc.alignTo(15);
    EXPECT_TRUE(acc.isZero());
    EXPECT_EQ(acc.exponent(), 15);
}

TEST(ExtendedAccumulator, AlignToIsNoOpBelowCurrentExponent)
{
    ExtendedAccumulator acc;
    acc.addProduct(bf16(4.0f), bf16(2.0f)); // 8 = 2^3
    acc.alignTo(1);
    EXPECT_EQ(acc.exponent(), 3);
    EXPECT_DOUBLE_EQ(acc.readDouble(), 8.0);
}

TEST(ExtendedAccumulator, AlignToOnZeroSetsExponentRegister)
{
    ExtendedAccumulator acc;
    acc.alignTo(17);
    EXPECT_TRUE(acc.isZero());
    EXPECT_EQ(acc.exponent(), 17);
}

TEST(ExtendedAccumulator, ReadBFloat16Rounds)
{
    ExtendedAccumulator acc;
    // 1 + 2^-9 is representable in the accumulator but not bfloat16;
    // RNE on readout drops it (round bit 0 at the 2^-8 position? no:
    // round bit is 2^-8, value bit is at 2^-9 -> sticky only).
    acc.addProduct(bf16(1.0f), bf16(1.0f));
    acc.addProduct(bf16(0x1.0p-9f), bf16(1.0f));
    EXPECT_EQ(acc.readBFloat16().toFloat(), 1.0f);
    // 1 + 2^-8 + 2^-9: above the halfway point -> rounds up to 1 + 2^-7.
    acc.addProduct(bf16(0x1.0p-8f), bf16(1.0f));
    EXPECT_EQ(acc.readBFloat16().toFloat(), 1.0f + 0x1.0p-7f);
}

TEST(ExtendedAccumulator, ReadBFloat16OverflowsToInf)
{
    ExtendedAccumulator acc;
    for (int i = 0; i < 3; ++i)
        acc.addProduct(bf16(0x1.0p63f), bf16(0x1.0p64f));
    EXPECT_TRUE(std::isinf(acc.readBFloat16().toFloat()) ||
                acc.readBFloat16().isInf());
}

TEST(ExtendedAccumulator, ReadBFloat16UnderflowFlushes)
{
    ExtendedAccumulator acc;
    acc.addProduct(bf16(0x1.0p-70f), bf16(0x1.0p-70f)); // 2^-140
    EXPECT_NE(acc.readDouble(), 0.0);
    EXPECT_TRUE(acc.readBFloat16().isZero());
}

TEST(ExtendedAccumulator, WorstCaseCarryFromEightProducts)
{
    // Eight maximal same-sign products must accumulate correctly (the
    // hardware's 3 extra integer bits; the model normalizes each step).
    ExtendedAccumulator acc;
    BFloat16 m = BFloat16::fromFields(false, 127 + 0, 0x7f); // ~1.992
    double ref = 0.0;
    for (int i = 0; i < 8; ++i) {
        acc.addProduct(m, m);
        ref += static_cast<double>(m.toFloat()) *
               static_cast<double>(m.toFloat());
    }
    EXPECT_LT(relError(acc.readDouble(), ref),
              accumulationTolerance(acc.config(), 8));
}

/** Random accumulation vs FP64, parameterized over dot length. */
class AccumulatorRandomSweep
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(AccumulatorRandomSweep, TracksFp64WithinTolerance)
{
    auto [length, seed] = GetParam();
    Rng rng(static_cast<uint64_t>(seed) * 7919 + 13);
    AccumulatorConfig cfg;
    cfg.chunkSize = 64;
    ChunkedAccumulator acc(cfg);
    double ref = 0.0;
    for (int i = 0; i < length; ++i) {
        BFloat16 a = bf16(static_cast<float>(rng.gaussian(0.0, 1.0)));
        BFloat16 b = bf16(static_cast<float>(rng.gaussian(0.0, 1.0)));
        acc.addProduct(a, b);
        ref += static_cast<double>(a.toFloat()) *
               static_cast<double>(b.toFloat());
    }
    // Chunked accumulation bounds error per chunk; compare against a
    // magnitude floor of the running sum of |products| to avoid
    // relative-error blowup on cancellation-heavy draws.
    double tol = accumulationTolerance(cfg, 64) +
                 1e-3 * std::sqrt(static_cast<double>(length));
    EXPECT_NEAR(acc.total(), ref,
                tol * std::max(1.0, std::fabs(ref)) + 0.25)
        << "length " << length << " seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AccumulatorRandomSweep,
    ::testing::Combine(::testing::Values(1, 8, 64, 256, 1024),
                       ::testing::Values(1, 2, 3)));

TEST(ChunkedAccumulator, FlushesEveryChunk)
{
    AccumulatorConfig cfg;
    cfg.chunkSize = 8;
    ChunkedAccumulator acc(cfg);
    for (int i = 0; i < 8; ++i)
        acc.addProduct(bf16(1.0f), bf16(1.0f));
    // After exactly one chunk the register is empty and the FP32 total
    // carries the sum.
    EXPECT_TRUE(acc.chunkRegister().isZero());
    EXPECT_EQ(acc.total(), 8.0f);
}

TEST(ChunkedAccumulator, BeatsNaiveBf16OnLongSums)
{
    // Accumulating many small values into a large one: naive bf16
    // round-after-every-MAC loses them all, chunked accumulation keeps
    // most of the mass.
    AccumulatorConfig cfg;
    ChunkedAccumulator chunked(cfg);
    BFloat16 big = bf16(256.0f);
    BFloat16 small = bf16(0.0625f);
    chunked.addProduct(big, bf16(1.0f));
    BFloat16 naive = big;
    const int n = 512;
    for (int i = 0; i < n; ++i) {
        chunked.addProduct(small, bf16(1.0f));
        naive = BFloat16::fromFloat(naive.toFloat() + small.toFloat());
    }
    double ref = 256.0 + n * 0.0625;
    EXPECT_EQ(naive.toFloat(), 256.0f); // swamped entirely
    EXPECT_LT(relError(chunked.total(), ref), 0.01);
}

TEST(ChunkedAccumulator, ResetClearsEverything)
{
    ChunkedAccumulator acc;
    acc.addProduct(bf16(3.0f), bf16(3.0f));
    acc.flushChunk();
    acc.addProduct(bf16(1.0f), bf16(1.0f));
    acc.reset();
    EXPECT_EQ(acc.total(), 0.0f);
    EXPECT_TRUE(acc.chunkRegister().isZero());
}

TEST(Reference, DotHelpersAgreeOnSimpleData)
{
    std::vector<BFloat16> a = {bf16(1.0f), bf16(2.0f), bf16(-3.0f)};
    std::vector<BFloat16> b = {bf16(4.0f), bf16(0.5f), bf16(1.0f)};
    EXPECT_DOUBLE_EQ(dotDouble(a, b), 2.0);
    EXPECT_EQ(dotFloat(a, b), 2.0f);
    AccumulatorConfig cfg;
    EXPECT_NEAR(dotChunked(a, b, cfg), 2.0f, 1e-3f);
}

} // namespace
} // namespace fpraker
