/**
 * @file
 * Cross-module integration tests: container-stored GEMMs through the
 * data-supply pipeline into FPRaker and baseline tiles, transposed
 * access for the backward-pass orders, and the simulator's
 * golden-value checking discipline.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "memory/data_supply.h"
#include "numeric/reference.h"
#include "tile/tile.h"

namespace fpraker {
namespace {

void
fillRandom(ContainerMatrix &m, Rng &rng, double sparsity = 0.2)
{
    for (int r = 0; r < m.rows(); ++r)
        for (int c = 0; c < m.cols(); ++c)
            m.set(r, c,
                  rng.bernoulli(sparsity)
                      ? BFloat16()
                      : bf16(static_cast<float>(rng.gaussian(0.0, 1.0))));
}

/** Run Z = A x B on a tile, block by block, checking against FP64. */
template <typename TileT>
void
runGemmAndCheck(GemmSupply &supply, TileT &tile, double tol_scale)
{
    const TileConfig &cfg = tile.config();
    for (int m0 = 0; m0 < supply.m(); m0 += cfg.cols) {
        for (int n0 = 0; n0 < supply.n(); n0 += cfg.rows) {
            tile.resetAccumulators();
            auto steps = supply.stepsForBlock(m0, n0, cfg);
            tile.run(steps);
            for (int r = 0; r < cfg.rows && n0 + r < supply.n(); ++r) {
                for (int c = 0; c < cfg.cols && m0 + c < supply.m();
                     ++c) {
                    double ref = supply.reference(m0 + c, n0 + r);
                    ASSERT_NEAR(tile.output(r, c), ref,
                                tol_scale * (std::fabs(ref) + 4.0))
                        << "Z[" << m0 + c << "][" << n0 + r << "]";
                }
            }
        }
    }
}

TEST(GemmIntegration, FPRakerTileComputesContainerGemm)
{
    Rng rng(11);
    ContainerMatrix a(24, 40), b(40, 16); // Z = [24 x 16], K = 40
    fillRandom(a, rng);
    fillRandom(b, rng);
    GemmSupply supply(a, b);
    TileConfig cfg;
    Tile tile(cfg);
    runGemmAndCheck(supply, tile,
                    accumulationTolerance(cfg.pe.acc, 64) * 8);
    EXPECT_GT(supply.stats().gbAccesses, 0u);
}

TEST(GemmIntegration, BaselineTileComputesContainerGemm)
{
    Rng rng(12);
    ContainerMatrix a(16, 24), b(24, 16);
    fillRandom(a, rng);
    fillRandom(b, rng);
    GemmSupply supply(a, b);
    TileConfig cfg;
    BaselineTile tile(cfg);
    runGemmAndCheck(supply, tile,
                    accumulationTolerance(cfg.pe.acc, 64) * 8);
}

TEST(GemmIntegration, TransposedSupplyMatchesExplicitTranspose)
{
    // The backward pass consumes W and G transposed: A stored [K, M]
    // and served with transpose_a must equal the forward layout.
    Rng rng(13);
    ContainerMatrix a_t(40, 24); // stored transposed: [K=40, M=24]
    ContainerMatrix b(40, 16);
    fillRandom(a_t, rng);
    fillRandom(b, rng);

    GemmSupply supply(a_t, b, /*transpose_a=*/true);
    EXPECT_EQ(supply.m(), 24);
    EXPECT_EQ(supply.k(), 40);
    TileConfig cfg;
    Tile tile(cfg);
    runGemmAndCheck(supply, tile,
                    accumulationTolerance(cfg.pe.acc, 64) * 8);
    EXPECT_GT(supply.stats().transposerLoads, 0u);
}

TEST(GemmIntegration, FPRakerAndBaselineAgreeOnSameSupply)
{
    Rng rng(14);
    ContainerMatrix a(8, 32), b(32, 8);
    fillRandom(a, rng, 0.0);
    fillRandom(b, rng, 0.0);
    GemmSupply s1(a, b), s2(a, b);
    TileConfig cfg;
    Tile fpr(cfg);
    BaselineTile base(cfg);
    auto steps1 = s1.stepsForBlock(0, 0, cfg);
    auto steps2 = s2.stepsForBlock(0, 0, cfg);
    fpr.run(steps1);
    base.run(steps2);
    double tol = accumulationTolerance(cfg.pe.acc, 64) * 8;
    for (int r = 0; r < 8; ++r)
        for (int c = 0; c < 8; ++c)
            EXPECT_NEAR(fpr.output(r, c), base.output(r, c),
                        tol * (std::fabs(base.output(r, c)) + 4.0));
}

TEST(GemmIntegration, SparseSerialOperandCutsTileCycles)
{
    // The same GEMM with a sparse A side should run in fewer cycles on
    // the FPRaker tile — the end-to-end version of term skipping.
    Rng rng(15);
    ContainerMatrix a_dense(8, 64), a_sparse(8, 64), b(64, 8);
    fillRandom(a_dense, rng, 0.0);
    fillRandom(a_sparse, rng, 0.7);
    fillRandom(b, rng, 0.0);

    TileConfig cfg;
    GemmSupply s_dense(a_dense, b), s_sparse(a_sparse, b);
    Tile t1(cfg), t2(cfg);
    uint64_t dense_cycles =
        t1.run(s_dense.stepsForBlock(0, 0, cfg)).cycles;
    uint64_t sparse_cycles =
        t2.run(s_sparse.stepsForBlock(0, 0, cfg)).cycles;
    EXPECT_LT(sparse_cycles, dense_cycles);
}

TEST(ContainerMatrix, RoundTripAndShape)
{
    ContainerMatrix m(5, 70);
    m.set(4, 69, bf16(2.5f));
    m.set(0, 0, bf16(-1.0f));
    EXPECT_EQ(m.at(4, 69), 2.5f);
    EXPECT_EQ(m.at(0, 0), -1.0f);
    EXPECT_EQ(m.at(2, 30), 0.0f);
    EXPECT_EQ(m.rows(), 5);
    EXPECT_EQ(m.cols(), 70);
}

} // namespace
} // namespace fpraker
