/**
 * @file
 * Tests for the FPRaker and baseline tile models.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "numeric/reference.h"
#include "tile/tile.h"

namespace fpraker {
namespace {

std::vector<BFloat16>
randomValues(Rng &rng, size_t n, double sparsity, double exp_sigma)
{
    std::vector<BFloat16> v(n);
    for (auto &x : v) {
        if (rng.bernoulli(sparsity)) {
            x = BFloat16();
            continue;
        }
        double mag = std::exp2(rng.gaussian(0.0, exp_sigma)) *
                     rng.uniform(1.0, 2.0);
        x = bf16(static_cast<float>(rng.bernoulli(0.5) ? -mag : mag));
    }
    return v;
}

std::vector<TileStep>
randomSteps(Rng &rng, const TileConfig &cfg, int n, double sparsity = 0.2,
            double exp_sigma = 1.5)
{
    std::vector<TileStep> steps(static_cast<size_t>(n));
    for (auto &s : steps) {
        s.a = randomValues(
            rng, static_cast<size_t>(cfg.cols) * cfg.pe.lanes, sparsity,
            exp_sigma);
        s.b = randomValues(
            rng, static_cast<size_t>(cfg.rows) * cfg.pe.lanes, sparsity,
            exp_sigma);
    }
    return steps;
}

/** Golden output for PE (r, c): sum over steps of dot8(A_c, B_r). */
double
goldenOutput(const std::vector<TileStep> &steps, const TileConfig &cfg,
             int r, int c)
{
    double sum = 0.0;
    for (const auto &s : steps)
        for (int l = 0; l < cfg.pe.lanes; ++l)
            sum += static_cast<double>(
                       s.a[static_cast<size_t>(c) * cfg.pe.lanes + l]
                           .toFloat()) *
                   static_cast<double>(
                       s.b[static_cast<size_t>(r) * cfg.pe.lanes + l]
                           .toFloat());
    return sum;
}

TEST(Tile, OutputsMatchGolden)
{
    Rng rng(101);
    TileConfig cfg;
    cfg.rows = 4;
    cfg.cols = 4;
    Tile tile(cfg);
    auto steps = randomSteps(rng, cfg, 6);
    TileRunResult res = tile.run(steps);
    EXPECT_EQ(res.steps, 6u);
    EXPECT_GE(res.cycles, 6u);

    double tol_base = accumulationTolerance(cfg.pe.acc, 64);
    for (int r = 0; r < cfg.rows; ++r) {
        for (int c = 0; c < cfg.cols; ++c) {
            double ref = goldenOutput(steps, cfg, r, c);
            EXPECT_NEAR(tile.output(r, c), ref,
                        tol_base * (std::fabs(ref) + 64.0))
                << "PE (" << r << "," << c << ")";
        }
    }
}

TEST(Tile, AgreesWithBaselineTileFunctionally)
{
    Rng rng(102);
    TileConfig cfg;
    cfg.rows = 2;
    cfg.cols = 3;
    Tile fpr(cfg);
    BaselineTile base(cfg);
    auto steps = randomSteps(rng, cfg, 8);
    fpr.run(steps);
    base.run(steps);
    double tol = accumulationTolerance(cfg.pe.acc, 64);
    for (int r = 0; r < cfg.rows; ++r)
        for (int c = 0; c < cfg.cols; ++c)
            EXPECT_NEAR(fpr.output(r, c), base.output(r, c),
                        tol * (std::fabs(base.output(r, c)) + 64.0));
}

TEST(BaselineTile, OneCyclePerStep)
{
    Rng rng(103);
    TileConfig cfg;
    BaselineTile tile(cfg);
    auto steps = randomSteps(rng, cfg, 17);
    TileRunResult res = tile.run(steps);
    EXPECT_EQ(res.cycles, 17u);
    EXPECT_EQ(res.macs, 17u * 512u);
}

TEST(Tile, DeeperBuffersNeverHurt)
{
    Rng rng(104);
    TileConfig shallow;
    shallow.bufferDepth = 1;
    TileConfig deep = shallow;
    deep.bufferDepth = 4;

    // Same streams for both runs.
    auto steps = randomSteps(rng, shallow, 32, 0.3, 3.0);
    Tile t1(shallow), t4(deep);
    uint64_t c1 = t1.run(steps).cycles;
    uint64_t c4 = t4.run(steps).cycles;
    EXPECT_LE(c4, c1);
}

TEST(Tile, MoreRowsCostMoreCyclesPerStep)
{
    // Fig. 19: increasing rows per tile increases synchronization
    // among PEs sharing the A stream, lowering performance.
    Rng rng(105);
    double cps[2];
    int idx = 0;
    for (int rows : {2, 16}) {
        TileConfig cfg;
        cfg.rows = rows;
        Tile tile(cfg);
        Rng local(105); // identical A/B streams
        auto steps = randomSteps(local, cfg, 48, 0.2, 2.5);
        cps[idx++] = static_cast<double>(tile.run(steps).cycles) / 48.0;
    }
    EXPECT_GE(cps[1], cps[0]);
}

TEST(Tile, StallTaxonomyPartitionsLaneCycles)
{
    Rng rng(106);
    TileConfig cfg;
    Tile tile(cfg);
    auto steps = randomSteps(rng, cfg, 24, 0.25, 2.0);
    tile.run(steps);
    PeStats agg = tile.aggregateStats();
    EXPECT_EQ(agg.laneCycles(),
              agg.setCycles * static_cast<uint64_t>(cfg.pe.lanes));
    EXPECT_GT(agg.laneUseful, 0u);
}

TEST(Tile, InterPeStallsAppearWhenColumnsAreImbalanced)
{
    // Column 0 gets dense many-term serial values, the others see
    // zeros: the fast columns must wait on the broadcast governed by
    // the slow one.
    TileConfig cfg;
    cfg.rows = 2;
    cfg.cols = 4;
    Tile tile(cfg);
    Rng rng(107);
    std::vector<TileStep> steps(12);
    for (auto &s : steps) {
        s.a.assign(static_cast<size_t>(cfg.cols) * 8, BFloat16());
        s.b = randomValues(rng, static_cast<size_t>(cfg.rows) * 8, 0.0,
                           1.0);
        for (int l = 0; l < 8; ++l) {
            // 0x7f mantissa: maximal raw/NAF term count.
            s.a[static_cast<size_t>(l)] =
                BFloat16::fromFields(false, 127, 0x55);
        }
    }
    tile.run(steps);
    PeStats agg = tile.aggregateStats();
    EXPECT_GT(agg.laneInterPe, 0u);
}

TEST(Tile, ResetAccumulatorsClearsOutputs)
{
    Rng rng(108);
    TileConfig cfg;
    cfg.rows = 2;
    cfg.cols = 2;
    Tile tile(cfg);
    auto steps = randomSteps(rng, cfg, 4, 0.0, 1.0);
    tile.run(steps);
    EXPECT_NE(tile.output(0, 0), 0.0f);
    tile.resetAccumulators();
    EXPECT_EQ(tile.output(0, 0), 0.0f);
}

/** Sweep rows-per-tile: cycle counts must be monotone-ish in rows. */
class TileRowsSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(TileRowsSweep, RunsAndPartitionsStats)
{
    TileConfig cfg;
    cfg.rows = GetParam();
    Tile tile(cfg);
    Rng rng(200 + GetParam());
    auto steps = randomSteps(rng, cfg, 16, 0.2, 2.0);
    TileRunResult res = tile.run(steps);
    EXPECT_GE(res.cycles, res.steps);
    PeStats agg = tile.aggregateStats();
    EXPECT_EQ(agg.laneCycles(),
              agg.setCycles * static_cast<uint64_t>(cfg.pe.lanes));
}

INSTANTIATE_TEST_SUITE_P(Rows, TileRowsSweep,
                         ::testing::Values(2, 4, 8, 16));

} // namespace
} // namespace fpraker
