/**
 * @file
 * Robustness tests for the serving layer (PR 6): deterministic fault
 * injection, crash-safe spill framing (torn/truncated/bit-flipped
 * files quarantined, never served), per-request deadlines (queued
 * jobs shed with a structured timeout, in-flight overruns reported in
 * provenance while the cached copy stays clean), admission control
 * (reject-newest with retry_after hints) including an open-loop burst
 * at 4x the queue depth, bounded completed-job retention, the
 * env-folded cache key, LineReader failure taxonomy, and the client
 * RetryPolicy's deterministic backoff schedule.
 */

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include <gtest/gtest.h>

#include "api/registry.h"
#include "common/fnv.h"
#include "serve/fault_injection.h"
#include "serve/job_spec.h"
#include "serve/protocol.h"
#include "serve/result_cache.h"
#include "serve/retry.h"
#include "serve/scheduler.h"
#include "serve/throughput.h"

namespace fpraker {
namespace {

using api::JsonValue;
using serve::FaultInjector;
using serve::JobOutcome;
using serve::JobScheduler;
using serve::JobSpec;
using serve::JobState;
using serve::LineReader;
using serve::ResultCache;
using serve::RetryPolicy;
using serve::SchedulerConfig;

/** Every test starts and ends with no armed fault points: an armed
 *  leftover would silently poison later cases (the injector is
 *  process-global by design, mirroring a daemon's lifetime). */
class ServeFaults : public ::testing::Test
{
  protected:
    void SetUp() override { FaultInjector::instance().reset(); }
    void TearDown() override { FaultInjector::instance().reset(); }
};

JobSpec
smallSpec(const std::string &experiment, int sampleSteps)
{
    JobSpec spec;
    spec.experiment = experiment;
    spec.sampleSteps = sampleSteps;
    return spec;
}

std::string
tempDir(const char *tag)
{
    return (std::filesystem::temp_directory_path() /
            (std::string("fpraker_") + tag + "_" +
             std::to_string(::getpid())))
        .string();
}

/** A deterministic fake document for pure cache tests. */
std::string
fakeDocument(const std::string &payload)
{
    JsonValue doc = JsonValue::object();
    doc.set("schema", "fpraker-result-v1");
    doc.set("payload", payload);
    JsonValue prov = JsonValue::object();
    prov.set("cached", false);
    doc.set("provenance", std::move(prov));
    return doc.dump() + "\n";
}

// --------------------------------------------------- fault injector

TEST_F(ServeFaults, InjectorParsesArmsCountsAndResets)
{
    FaultInjector &fi = FaultInjector::instance();
    std::string error;
    ASSERT_TRUE(
        fi.configure("daemon.read_delay_ms=5:2,spill.torn_write=40",
                     &error))
        << error;

    int64_t param = 0;
    EXPECT_TRUE(fi.fires("daemon.read_delay_ms", &param));
    EXPECT_EQ(param, 5);
    EXPECT_TRUE(fi.fires("daemon.read_delay_ms", &param));
    EXPECT_FALSE(fi.fires("daemon.read_delay_ms", &param)); // spent
    EXPECT_EQ(fi.fired("daemon.read_delay_ms"), 2u);

    EXPECT_TRUE(fi.fires("spill.torn_write", &param)); // count=1
    EXPECT_EQ(param, 40);
    EXPECT_FALSE(fi.fires("spill.torn_write"));

    // Unarmed points never fire.
    EXPECT_FALSE(fi.fires("scheduler.worker_stall_ms"));

    fi.arm("daemon.drop_connection", 1, 3);
    EXPECT_TRUE(fi.fires("daemon.drop_connection"));
    fi.reset();
    EXPECT_FALSE(fi.fires("daemon.drop_connection"));
    EXPECT_EQ(fi.fired("daemon.drop_connection"), 0u);
}

TEST_F(ServeFaults, InjectorRejectsMalformedSpecsWithoutArming)
{
    FaultInjector &fi = FaultInjector::instance();
    std::string error;
    for (const char *bad : {"bogus", "point=", "=1",
                            "a.b=notanumber", "a.b=1:0", "a.b=1:x"}) {
        error.clear();
        EXPECT_FALSE(fi.configure(bad, &error)) << bad;
        EXPECT_FALSE(error.empty()) << bad;
    }
    // Nothing got armed along the way.
    EXPECT_FALSE(fi.fires("a.b"));
    EXPECT_FALSE(fi.fires("point"));
}

// ------------------------------------------------ spill crash safety

TEST_F(ServeFaults, SpillTrailerRoundTripsAndRejectsDamage)
{
    const std::string doc = fakeDocument("trailer");
    const std::string trailer = serve::spillTrailer(doc);
    // Fixed-length framing: the verifier can find the trailer from
    // the end of the file alone.
    EXPECT_EQ(trailer, serve::spillTrailer(doc));
    EXPECT_EQ(trailer.back(), '\n');

    std::string raw = doc + trailer;
    std::string back;
    ASSERT_TRUE(serve::verifySpill(raw, &back));
    EXPECT_EQ(back, doc);

    // Truncation anywhere — torn writes — must fail verification.
    for (size_t cut : {size_t(0), size_t(1), doc.size() / 2,
                       doc.size(), raw.size() - 1})
        EXPECT_FALSE(serve::verifySpill(raw.substr(0, cut), &back))
            << "cut=" << cut;

    // A single flipped payload bit must fail the checksum.
    std::string flipped = raw;
    flipped[doc.size() / 2] ^= 0x01;
    EXPECT_FALSE(serve::verifySpill(flipped, &back));

    // A flipped trailer bit must fail too.
    std::string badTrailer = raw;
    badTrailer[raw.size() - 2] ^= 0x01;
    EXPECT_FALSE(serve::verifySpill(badTrailer, &back));

    // Trailing garbage after the trailer is not a valid entry.
    EXPECT_FALSE(serve::verifySpill(raw + "x", &back));
}

TEST_F(ServeFaults, TornSpillWriteIsQuarantinedAndRewritten)
{
    const std::string dir = tempDir("torn_spill");
    std::filesystem::remove_all(dir);
    const std::string doc = fakeDocument("torn");
    const uint64_t key = 7;
    const std::string path = dir + "/" + Fnv64::hex(key) + ".json";

    {
        // The torn_write fault emulates a crash mid-write on the
        // final path: only the first 40 bytes land, no trailer.
        FaultInjector::instance().arm("spill.torn_write", 40);
        ResultCache cache(1 << 20, dir);
        cache.insert(key, doc);
        EXPECT_EQ(FaultInjector::instance().fired("spill.torn_write"),
                  1u);
    }
    ASSERT_TRUE(std::filesystem::exists(path));
    EXPECT_LE(std::filesystem::file_size(path), 40u);

    {
        // A fresh cache (daemon restart) must treat the torn file as
        // a miss and quarantine it — never serve it.
        ResultCache cache(1 << 20, dir);
        std::string raw;
        EXPECT_FALSE(cache.lookupRaw(key, &raw));
        EXPECT_EQ(cache.stats().diskCorrupt, 1u);
        EXPECT_EQ(cache.stats().misses, 1u);
        EXPECT_FALSE(std::filesystem::exists(path));
        EXPECT_TRUE(std::filesystem::exists(path + ".corrupt"));

        // Re-inserting heals the entry (fault is spent)...
        cache.insert(key, doc);
    }
    {
        // ...and the healed spill serves across another restart.
        ResultCache cache(1 << 20, dir);
        std::string raw;
        ASSERT_TRUE(cache.lookupRaw(key, &raw));
        EXPECT_EQ(raw, doc);
        EXPECT_EQ(cache.stats().diskCorrupt, 0u);
    }
    std::filesystem::remove_all(dir);
}

TEST_F(ServeFaults, BitFlippedSpillFileIsNeverServed)
{
    const std::string dir = tempDir("flip_spill");
    std::filesystem::remove_all(dir);
    const std::string doc = fakeDocument("flip");
    const uint64_t key = 11;
    const std::string path = dir + "/" + Fnv64::hex(key) + ".json";

    {
        ResultCache cache(1 << 20, dir);
        cache.insert(key, doc);
    }
    // Corrupt one payload byte on disk (a bad sector, not a crash).
    {
        FILE *f = std::fopen(path.c_str(), "rb+");
        ASSERT_NE(f, nullptr);
        ASSERT_EQ(std::fseek(f, 3, SEEK_SET), 0);
        int c = std::fgetc(f);
        ASSERT_NE(c, EOF);
        ASSERT_EQ(std::fseek(f, 3, SEEK_SET), 0);
        std::fputc(c ^ 0x01, f);
        std::fclose(f);
    }
    {
        ResultCache cache(1 << 20, dir);
        std::string raw;
        EXPECT_FALSE(cache.lookupRaw(key, &raw));
        EXPECT_EQ(cache.stats().diskCorrupt, 1u);
        EXPECT_TRUE(std::filesystem::exists(path + ".corrupt"));
    }
    std::filesystem::remove_all(dir);
}

// ----------------------------------------------------------- deadlines

TEST_F(ServeFaults, QueuedJobPastDeadlineIsShedWithTimeout)
{
    SchedulerConfig cfg;
    cfg.engineThreads = 1;
    cfg.workers = 1;
    JobScheduler sched(cfg);

    // Pin the only worker for 400ms so the second submit stays
    // queued well past its 50ms deadline.
    FaultInjector::instance().arm("scheduler.worker_stall_ms", 400);
    const uint64_t pinId = sched.submit(smallSpec("fig02", 8));
    // Let the worker pop the pin job before the deadlined one lands.
    serve::faultSleepMs(50);

    JobSpec late = smallSpec("fig02", 9);
    late.deadlineMs = 50;
    JobOutcome out = sched.run(late);
    EXPECT_EQ(out.state, JobState::Failed);
    EXPECT_EQ(out.errorCode, serve::kErrTimeout);
    EXPECT_NE(out.error.find("deadline"), std::string::npos);

    JobOutcome pin = sched.wait(pinId);
    EXPECT_EQ(pin.state, JobState::Done) << pin.error;

    serve::SchedulerStats s = sched.stats();
    EXPECT_EQ(s.shedDeadline, 1u);
    EXPECT_EQ(s.executed, 1u); // The shed job never simulated.
    EXPECT_EQ(s.failed, 1u);
}

TEST_F(ServeFaults, InFlightOverrunReportsProvenanceButCachesClean)
{
    SchedulerConfig cfg;
    cfg.engineThreads = 1;
    cfg.workers = 1;
    JobScheduler sched(cfg);

    // The job starts immediately (empty queue) but the injected
    // 500ms stall pushes completion far past the 100ms deadline:
    // started-in-time work is never cancelled, only reported.
    FaultInjector::instance().arm("scheduler.worker_stall_ms", 500);
    JobSpec spec = smallSpec("fig02", 8);
    spec.deadlineMs = 100;
    JobOutcome out = sched.run(spec);
    ASSERT_EQ(out.state, JobState::Done) << out.error;
    EXPECT_GE(out.deadlineOverrunMs, 1);
    EXPECT_NE(out.document.find("\"deadline_overrun_ms\""),
              std::string::npos);
    EXPECT_EQ(sched.stats().overrun, 1u);

    // The cached copy stays clean — byte-stability of served
    // documents is not polluted by one slow request...
    std::string raw;
    ASSERT_TRUE(sched.cache().lookupRaw(spec.cacheKey(), &raw));
    EXPECT_EQ(raw.find("\"deadline_overrun_ms\""), std::string::npos);

    // ...so a hot replay of the same spec has no overrun trace.
    JobOutcome hot = sched.run(spec);
    ASSERT_EQ(hot.state, JobState::Done);
    EXPECT_TRUE(hot.cached);
    EXPECT_EQ(hot.deadlineOverrunMs, 0);
    EXPECT_EQ(hot.document.find("\"deadline_overrun_ms\""),
              std::string::npos);
}

// ---------------------------------------------------- admission control

TEST_F(ServeFaults, OverfullQueueRejectsNewestWithRetryHint)
{
    SchedulerConfig cfg;
    cfg.engineThreads = 1;
    cfg.workers = 1;
    cfg.queueDepth = 1;
    JobScheduler sched(cfg);

    FaultInjector::instance().arm("scheduler.worker_stall_ms", 400);
    const uint64_t running = sched.submit(smallSpec("fig02", 8));
    serve::faultSleepMs(50); // Worker pops it; the queue is empty.
    const uint64_t queued = sched.submit(smallSpec("fig02", 9));
    const uint64_t shed = sched.submit(smallSpec("fig02", 10));

    // The rejected id is immediately Failed — wait() never blocks.
    JobOutcome out = sched.wait(shed);
    EXPECT_EQ(out.state, JobState::Failed);
    EXPECT_EQ(out.errorCode, serve::kErrOverloaded);
    EXPECT_GT(out.retryAfterMs, 0);
    EXPECT_NE(out.error.find("queue full"), std::string::npos);

    // Reject-newest: the accepted jobs still complete normally.
    EXPECT_EQ(sched.wait(running).state, JobState::Done);
    EXPECT_EQ(sched.wait(queued).state, JobState::Done);

    serve::SchedulerStats s = sched.stats();
    EXPECT_EQ(s.shedOverload, 1u);
    EXPECT_EQ(s.executed, 2u);

    // A coalescing resubmit of an in-flight spec needs no queue
    // slot, so admission never sheds it even at depth 0 headroom.
    FaultInjector::instance().reset();
    JobOutcome retry = sched.run(smallSpec("fig02", 10));
    EXPECT_EQ(retry.state, JobState::Done) << retry.error;
}

TEST_F(ServeFaults, OpenLoopBurstAtFourTimesDepthShedsAndDrains)
{
    // The satellite overload contract, end to end: burst 4x the
    // queue depth open-loop; admission sheds the overflow with
    // hints, memory stays bounded (accounted submits only), and
    // every shed spec completes under the client retry policy.
    serve::ShedOptions opts;
    opts.burst = 16;
    opts.queueDepth = 4;
    opts.workers = 1;
    opts.engineThreads = 1;
    opts.sampleStepsBase = 6;
    serve::ShedReport r = serve::measureShedBehavior(opts);

    EXPECT_GT(r.shed, 0u);
    EXPECT_GT(r.accepted, 0u);
    EXPECT_EQ(r.accepted + r.shed, static_cast<uint64_t>(opts.burst));
    EXPECT_TRUE(r.hintsOk);  // Every rejection carried retry_after.
    EXPECT_TRUE(r.drained);  // Queue and workers idle at the end.
    EXPECT_TRUE(r.completed); // Every spec eventually ran.
    EXPECT_GT(r.retryAttempts, 0u);
    EXPECT_NE(r.digest, 0u);
    // Admission answers without simulating, so accept latency stays
    // bounded even with the queue full (generous CI margin).
    EXPECT_LT(r.submitP99Ms, 100.0);
}

// -------------------------------------------------- bounded retention

TEST_F(ServeFaults, CompletedOutcomesAreRetiredBeyondRetainBound)
{
    SchedulerConfig cfg;
    cfg.engineThreads = 1;
    cfg.workers = 1;
    cfg.retainJobs = 2;
    JobScheduler sched(cfg);

    uint64_t ids[4];
    for (int i = 0; i < 4; ++i) {
        JobSpec spec = smallSpec("fig02", 8 + i);
        ids[i] = sched.submit(spec);
        EXPECT_EQ(sched.wait(ids[i]).state, JobState::Done);
    }

    // Oldest completions fell off the retention window...
    serve::JobState state;
    EXPECT_FALSE(sched.status(ids[0], &state));
    EXPECT_FALSE(sched.status(ids[1], &state));
    JobOutcome gone = sched.wait(ids[0]);
    EXPECT_EQ(gone.state, JobState::Failed);
    EXPECT_EQ(gone.errorCode, serve::kErrUnknownJob);

    // ...while the newest retainJobs are still answerable.
    EXPECT_TRUE(sched.status(ids[2], &state));
    EXPECT_EQ(state, JobState::Done);
    EXPECT_TRUE(sched.status(ids[3], &state));
    EXPECT_EQ(sched.wait(ids[3]).state, JobState::Done);

    EXPECT_GE(sched.stats().pruned, 2u);
}

// ------------------------------------------------- env-folded cache key

TEST_F(ServeFaults, CacheKeyFoldsResolvedSampleStepsEnv)
{
    const char *saved = std::getenv("FPRAKER_SAMPLE_STEPS");
    const std::string savedValue = saved ? saved : "";

    JobSpec implicit = smallSpec("fig02", 0); // Defers to the env.
    ::setenv("FPRAKER_SAMPLE_STEPS", "33", 1);
    EXPECT_EQ(implicit.resolvedSampleSteps(), 33);
    const uint64_t key33 = implicit.cacheKey();
    ::setenv("FPRAKER_SAMPLE_STEPS", "34", 1);
    const uint64_t key34 = implicit.cacheKey();
    // Two daemons whose environments differ can never alias each
    // other's cache entries or disk spills.
    EXPECT_NE(key33, key34);

    // The env resolves to the same key as the explicit field — they
    // simulate identically, so they may share a document.
    ::unsetenv("FPRAKER_SAMPLE_STEPS");
    EXPECT_EQ(smallSpec("fig02", 33).cacheKey(), key33);
    EXPECT_EQ(smallSpec("fig02", 34).cacheKey(), key34);

    // An explicit budget wins over the env (Session precedence).
    ::setenv("FPRAKER_SAMPLE_STEPS", "99", 1);
    EXPECT_EQ(smallSpec("fig02", 33).cacheKey(), key33);

    if (saved)
        ::setenv("FPRAKER_SAMPLE_STEPS", savedValue.c_str(), 1);
    else
        ::unsetenv("FPRAKER_SAMPLE_STEPS");
}

TEST_F(ServeFaults, DeadlineRoundTripsButNeverKeysTheCache)
{
    JobSpec spec = smallSpec("fig11", 24);
    spec.deadlineMs = 1500;
    JobSpec back;
    std::string error;
    ASSERT_TRUE(JobSpec::fromJson(spec.toJson(), &back, &error))
        << error;
    EXPECT_EQ(back.deadlineMs, 1500);

    // Deadlines are scheduling metadata like priority: the same work
    // under a different deadline must share its cached document.
    JobSpec noDeadline = smallSpec("fig11", 24);
    EXPECT_EQ(spec.cacheKey(), noDeadline.cacheKey());

    JsonValue bad = spec.toJson();
    bad.set("deadline_ms", 0);
    EXPECT_FALSE(JobSpec::fromJson(bad, &back, &error));
}

// ------------------------------------------------ line reader taxonomy

TEST_F(ServeFaults, LineReaderClassifiesEofTimeoutAndOversize)
{
    std::string line, error;

    { // Clean EOF at a line boundary: error stays empty.
        int fds[2];
        ASSERT_EQ(::pipe(fds), 0);
        ASSERT_EQ(::write(fds[1], "hello\n", 6), 6);
        ::close(fds[1]);
        LineReader reader(fds[0]);
        ASSERT_TRUE(reader.readLine(&line, &error));
        EXPECT_EQ(line, "hello");
        error.clear();
        EXPECT_FALSE(reader.readLine(&line, &error));
        EXPECT_EQ(reader.lastFail(), LineReader::Fail::Eof);
        EXPECT_TRUE(error.empty());
        ::close(fds[0]);
    }

    { // Peer vanishing mid-line is a distinct, sticky failure.
        int fds[2];
        ASSERT_EQ(::pipe(fds), 0);
        ASSERT_EQ(::write(fds[1], "partial", 7), 7);
        ::close(fds[1]);
        LineReader reader(fds[0]);
        error.clear();
        EXPECT_FALSE(reader.readLine(&line, &error));
        EXPECT_EQ(reader.lastFail(), LineReader::Fail::MidLineEof);
        EXPECT_FALSE(error.empty());
        // A failed reader stays failed: a partial line can never be
        // resynchronized into a frame.
        EXPECT_FALSE(reader.readLine(&line, &error));
        EXPECT_EQ(reader.lastFail(), LineReader::Fail::MidLineEof);
        ::close(fds[0]);
    }

    { // Over-long lines are refused even when properly terminated.
        int fds[2];
        ASSERT_EQ(::pipe(fds), 0);
        const std::string big(32, 'x');
        ASSERT_EQ(::write(fds[1], (big + "\n").c_str(), big.size() + 1),
                  static_cast<ssize_t>(big.size() + 1));
        ::close(fds[1]);
        LineReader reader(fds[0], /*maxLineBytes=*/16);
        error.clear();
        EXPECT_FALSE(reader.readLine(&line, &error));
        EXPECT_EQ(reader.lastFail(), LineReader::Fail::Oversize);
        EXPECT_FALSE(error.empty());
        ::close(fds[0]);
    }
}

// ------------------------------------------------------- retry policy

TEST_F(ServeFaults, RetryPolicyIsDeterministicCappedAndFloored)
{
    RetryPolicy a, b;
    // Same seed => the exact same schedule, replayable in tests.
    for (int attempt = 1; attempt <= 6; ++attempt)
        EXPECT_EQ(a.delayMs(attempt, 0), b.delayMs(attempt, 0))
            << attempt;

    // Different seeds de-synchronize the jitter streams.
    RetryPolicy c;
    c.seed = 2;
    bool anyDiffer = false;
    for (int attempt = 1; attempt <= 6; ++attempt)
        anyDiffer |= a.delayMs(attempt, 0) != c.delayMs(attempt, 0);
    EXPECT_TRUE(anyDiffer);

    // Exponential growth from the base, jitter upward-only.
    EXPECT_GE(a.delayMs(1, 0), a.baseDelayMs);
    EXPECT_GE(a.delayMs(2, 0), a.delayMs(1, 0));

    // The curve caps (jitter may exceed the cap by at most its
    // fraction)...
    const int capped = a.delayMs(20, 0);
    EXPECT_LE(capped,
              static_cast<int>(a.maxDelayMs * (1 + a.jitterFrac)) + 1);

    // ...but the server's retry_after hint floors everything, even
    // past the cap: the daemon knows its queue best.
    EXPECT_GE(a.delayMs(1, 500), 500);
    EXPECT_GE(a.delayMs(1, 3 * a.maxDelayMs), 3 * a.maxDelayMs);
}

TEST_F(ServeFaults, OnlyOverloadedResponsesAreRetryable)
{
    int hint = -1;
    JsonValue overloaded = JsonValue::object();
    overloaded.set("ok", false);
    overloaded.set("error_code", "overloaded");
    overloaded.set("retry_after_ms", 75);
    EXPECT_TRUE(serve::responseRetryable(overloaded, &hint));
    EXPECT_EQ(hint, 75);

    // Deterministic failures would fail identically on resubmit.
    for (const char *code :
         {"bad_request", "unknown_experiment", "unknown_job",
          "timeout", "internal"}) {
        JsonValue resp = JsonValue::object();
        resp.set("ok", false);
        resp.set("error_code", code);
        EXPECT_FALSE(serve::responseRetryable(resp, &hint)) << code;
    }

    JsonValue ok = JsonValue::object();
    ok.set("ok", true);
    EXPECT_FALSE(serve::responseRetryable(ok, &hint));
}

} // namespace
} // namespace fpraker
