/**
 * @file
 * Tests for the parallel simulation subsystem: the precomputed term
 * LUT, the SimEngine determinism guarantee, the optimized column's
 * bit-parity with the seed reference algorithm, and masked-tail sets.
 */

#include <atomic>
#include <cmath>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "accel/accelerator.h"
#include "common/fnv.h"
#include "common/rng.h"
#include "numeric/term_lut.h"
#include "pe/fpraker_pe.h"
#include "sim/reference_column.h"
#include "sim/sim_engine.h"
#include "trace/model_zoo.h"

namespace fpraker {
namespace {

// ---------------------------------------------------------------- LUT

TEST(TermLut, MatchesDirectEncodingForAllSignificands)
{
    for (TermEncoding e :
         {TermEncoding::Canonical, TermEncoding::RawBits}) {
        const TermLut &lut = TermLut::of(e);
        TermEncoder enc(e);
        for (int sig : {0}) {
            EXPECT_EQ(lut.stream(sig).size(), 0) << "sig " << sig;
            EXPECT_EQ(lut.countTerms(sig), 0);
        }
        for (int sig = 0x80; sig <= 0xff; ++sig) {
            TermStream direct = enc.encodeSignificand(sig);
            const TermStream &cached = lut.stream(sig);
            ASSERT_EQ(cached.size(), direct.size()) << "sig " << sig;
            for (int i = 0; i < direct.size(); ++i) {
                EXPECT_EQ(cached[i].shift, direct[i].shift)
                    << "sig " << sig << " term " << i;
                EXPECT_EQ(cached[i].neg, direct[i].neg)
                    << "sig " << sig << " term " << i;
            }
            EXPECT_EQ(lut.countTerms(sig), enc.countTerms(sig))
                << "sig " << sig;
        }
    }
}

TEST(TermLut, SharedInstancePerEncoding)
{
    EXPECT_EQ(&TermLut::of(TermEncoding::Canonical),
              &TermLut::of(TermEncoding::Canonical));
    EXPECT_NE(&TermLut::of(TermEncoding::Canonical),
              &TermLut::of(TermEncoding::RawBits));
}

// ------------------------------------------- column vs seed reference

std::vector<BFloat16>
randomValues(Rng &rng, size_t n, double sparsity, double exp_sigma)
{
    std::vector<BFloat16> v(n);
    for (auto &x : v) {
        if (rng.bernoulli(sparsity)) {
            x = BFloat16();
            continue;
        }
        double mag = std::exp2(rng.gaussian(0.0, exp_sigma)) *
                     rng.uniform(1.0, 2.0);
        x = bf16(static_cast<float>(rng.bernoulli(0.5) ? -mag : mag));
    }
    return v;
}

void
expectStatsEqual(const PeStats &a, const PeStats &b, const char *what)
{
    EXPECT_EQ(a.laneUseful, b.laneUseful) << what;
    EXPECT_EQ(a.laneNoTerm, b.laneNoTerm) << what;
    EXPECT_EQ(a.laneShiftRange, b.laneShiftRange) << what;
    EXPECT_EQ(a.laneExponent, b.laneExponent) << what;
    EXPECT_EQ(a.laneInterPe, b.laneInterPe) << what;
    EXPECT_EQ(a.setCycles, b.setCycles) << what;
    EXPECT_EQ(a.sets, b.sets) << what;
    EXPECT_EQ(a.macs, b.macs) << what;
    EXPECT_EQ(a.termsProcessed, b.termsProcessed) << what;
    EXPECT_EQ(a.termsZeroSkipped, b.termsZeroSkipped) << what;
    EXPECT_EQ(a.termsObSkipped, b.termsObSkipped) << what;
}

/** Fuzz the optimized column against the seed-parity reference. */
class ColumnParity : public ::testing::TestWithParam<int>
{
};

TEST_P(ColumnParity, BitIdenticalToReference)
{
    Rng rng(static_cast<uint64_t>(GetParam()) * 7717 + 3);
    for (int trial = 0; trial < 6; ++trial) {
        PeConfig cfg;
        cfg.maxDelta = static_cast<int>(rng.uniformInt(0, 6));
        cfg.obThreshold = rng.bernoulli(0.5)
                              ? -1
                              : static_cast<int>(rng.uniformInt(0, 14));
        cfg.skipOutOfBounds = rng.bernoulli(0.8);
        cfg.encoding = rng.bernoulli(0.5) ? TermEncoding::Canonical
                                          : TermEncoding::RawBits;
        cfg.acc.fracBits = static_cast<int>(rng.uniformInt(6, 16));
        const int pes = static_cast<int>(rng.uniformInt(1, 4));
        double sparsity = rng.uniform(0.0, 0.6);
        double sigma = rng.uniform(0.5, 5.0);

        FPRakerColumn opt(cfg, pes);
        ReferenceColumn ref(cfg, pes);
        for (int set = 0; set < 24; ++set) {
            auto a = randomValues(rng, 8, sparsity, sigma);
            auto b = randomValues(
                rng, static_cast<size_t>(pes) * 8, sparsity, sigma);
            int c_opt = opt.runSet(a.data(), b.data(), 8);
            int c_ref = ref.runSet(a.data(), b.data(), 8);
            ASSERT_EQ(c_opt, c_ref)
                << "cycles diverged, trial " << trial << " set " << set;
        }
        for (int r = 0; r < pes; ++r) {
            ASSERT_EQ(opt.accumulator(r).total(),
                      ref.accumulator(r).total())
                << "trial " << trial << " pe " << r;
            ASSERT_EQ(
                opt.accumulator(r).chunkRegister().readDouble(),
                ref.accumulator(r).chunkRegister().readDouble())
                << "trial " << trial << " pe " << r;
        }
        expectStatsEqual(opt.aggregateStats(), ref.aggregateStats(),
                         "column stats");
    }
}

INSTANTIATE_TEST_SUITE_P(Fuzz, ColumnParity, ::testing::Range(0, 8));

/**
 * Wide-row parity: the Fig. 19/20 geometries put up to 16 PEs on one
 * serial-operand stream, which is where the per-PE "all lanes retired"
 * summary bit actually skips work (settle and stepCycle bypass retired
 * PEs, and their no-term stalls are charged in one deferred multiply).
 * Every cycle count, accumulator bit, and stat counter must still
 * match the seed reference exactly.
 */
class WideRowParity : public ::testing::TestWithParam<int>
{
};

TEST_P(WideRowParity, RetirementSkipIsBitIdenticalToReference)
{
    const int pes = GetParam();
    Rng rng(static_cast<uint64_t>(pes) * 40503 + 11);
    for (int trial = 0; trial < 4; ++trial) {
        PeConfig cfg;
        // Narrow accumulators + wide exponent spreads retire lanes
        // aggressively, so the skip path dominates the run.
        cfg.obThreshold = static_cast<int>(rng.uniformInt(4, 10));
        cfg.acc.fracBits = static_cast<int>(rng.uniformInt(6, 12));
        double sparsity = rng.uniform(0.1, 0.5);
        double sigma = rng.uniform(2.0, 5.0);

        FPRakerColumn opt(cfg, pes);
        ReferenceColumn ref(cfg, pes);
        for (int set = 0; set < 16; ++set) {
            auto a = randomValues(rng, 8, sparsity, sigma);
            auto b = randomValues(
                rng, static_cast<size_t>(pes) * 8, sparsity, sigma);
            int c_opt = opt.runSet(a.data(), b.data(), 8);
            int c_ref = ref.runSet(a.data(), b.data(), 8);
            ASSERT_EQ(c_opt, c_ref)
                << "cycles diverged, trial " << trial << " set " << set;
        }
        for (int r = 0; r < pes; ++r)
            ASSERT_EQ(opt.accumulator(r).total(),
                      ref.accumulator(r).total())
                << "trial " << trial << " pe " << r;
        expectStatsEqual(opt.aggregateStats(), ref.aggregateStats(),
                         "wide-row column stats");
    }
}

INSTANTIATE_TEST_SUITE_P(Fig19Geometries, WideRowParity,
                         ::testing::Values(2, 4, 16, 32));

TEST(WideRowParity, WideTileMatchesReferenceTile)
{
    // A 16-row tile (the widest Fig. 19/20 point) over a multi-burst
    // step sequence, against the seed tile walk.
    Rng rng(6063);
    TileConfig cfg;
    cfg.rows = 16;
    cfg.cols = 2;
    cfg.pe.obThreshold = 8;
    const int lanes = cfg.pe.lanes;
    const size_t a_len = static_cast<size_t>(cfg.cols) * lanes;
    const size_t b_len = static_cast<size_t>(cfg.rows) * lanes;
    const size_t steps = 24;

    auto a = randomValues(rng, steps * a_len, 0.25, 3.0);
    auto b = randomValues(rng, steps * b_len, 0.25, 3.0);

    Tile tile(cfg);
    std::vector<TileStepView> views(steps);
    for (size_t s = 0; s < steps; ++s)
        views[s] = TileStepView{a.data() + s * a_len,
                                b.data() + s * b_len};
    TileRunResult opt = tile.run(views.data(), steps);

    ReferenceTile ref(cfg.pe, cfg.rows, cfg.cols, cfg.bufferDepth);
    ReferenceTileResult res = ref.run(a.data(), b.data(), steps);

    EXPECT_EQ(opt.cycles, res.cycles);
    for (int r = 0; r < cfg.rows; ++r)
        for (int c = 0; c < cfg.cols; ++c)
            EXPECT_EQ(tile.output(r, c), ref.output(r, c))
                << "PE (" << r << "," << c << ")";
    expectStatsEqual(tile.aggregateStats(), ref.aggregateStats(),
                     "wide tile stats");
}

TEST(TileParity, MatchesReferenceTileOverBursts)
{
    Rng rng(2024);
    TileConfig cfg;
    cfg.rows = 4;
    cfg.cols = 4;
    const int lanes = cfg.pe.lanes;
    const size_t a_len = static_cast<size_t>(cfg.cols) * lanes;
    const size_t b_len = static_cast<size_t>(cfg.rows) * lanes;
    const size_t steps = 40;

    auto a = randomValues(rng, steps * a_len, 0.3, 2.0);
    auto b = randomValues(rng, steps * b_len, 0.3, 2.0);

    Tile tile(cfg);
    std::vector<TileStepView> views(steps);
    for (size_t s = 0; s < steps; ++s)
        views[s] = TileStepView{a.data() + s * a_len,
                                b.data() + s * b_len};
    TileRunResult opt = tile.run(views.data(), steps);

    ReferenceTile ref(cfg.pe, cfg.rows, cfg.cols, cfg.bufferDepth);
    ReferenceTileResult res = ref.run(a.data(), b.data(), steps);

    EXPECT_EQ(opt.cycles, res.cycles);
    for (int r = 0; r < cfg.rows; ++r)
        for (int c = 0; c < cfg.cols; ++c)
            EXPECT_EQ(tile.output(r, c), ref.output(r, c))
                << "PE (" << r << "," << c << ")";
    expectStatsEqual(tile.aggregateStats(), ref.aggregateStats(),
                     "tile stats");
}

// ------------------------------------------------------- masked tails

TEST(MaskedTail, PaddedLanesContributeNoStats)
{
    // 19 = 2 full sets + a 3-lane tail. The tail's five padded lanes
    // must not show up in macs, zero-term slots, or lane-cycle counts.
    Rng rng(77);
    auto a = randomValues(rng, 19, 0.0, 1.0);
    auto b = randomValues(rng, 19, 0.0, 1.0);

    FPRakerPe pe((PeConfig()));
    pe.dot(a, b);
    EXPECT_EQ(pe.stats().macs, 19u);
    EXPECT_EQ(pe.stats().sets, 3u);
    // Lane-cycles partition against the per-set active lane counts:
    // the tail set contributes 3 lanes per cycle, not 8.
    uint64_t tail_cycles = 0;
    {
        FPRakerPe full((PeConfig()));
        std::vector<BFloat16> a2(a.begin(), a.begin() + 16);
        std::vector<BFloat16> b2(b.begin(), b.begin() + 16);
        uint64_t full_cycles =
            static_cast<uint64_t>(full.dot(a2, b2));
        tail_cycles = pe.stats().setCycles - full_cycles;
        EXPECT_EQ(pe.stats().laneCycles(),
                  full_cycles * 8 + tail_cycles * 3);
    }
}

TEST(MaskedTail, ResultMatchesZeroPadding)
{
    // Masking drops the padded lanes' bookkeeping but must not change
    // the arithmetic: zero-padded lanes never fire a term.
    Rng rng(78);
    for (int trial = 0; trial < 10; ++trial) {
        size_t n = 8 + rng.uniformInt(15); // 8..22, ragged tails
        auto a = randomValues(rng, n, 0.2, 2.0);
        auto b = randomValues(rng, n, 0.2, 2.0);

        FPRakerPe masked((PeConfig()));
        masked.dot(a, b);

        auto a_pad = a;
        auto b_pad = b;
        while (a_pad.size() % 8) {
            a_pad.push_back(BFloat16());
            b_pad.push_back(BFloat16());
        }
        FPRakerPe padded((PeConfig()));
        // Drive the padded run through full sets.
        for (size_t i = 0; i < a_pad.size(); i += 8) {
            MacPair pairs[8];
            for (int l = 0; l < 8; ++l)
                pairs[l] = MacPair{a_pad[i + l], b_pad[i + l]};
            padded.processSet(pairs, 8);
        }
        // The chunk cadence differs (padded lanes tick the chunk
        // counter), so compare the mathematically exact register state
        // rather than bitwise totals.
        EXPECT_NEAR(masked.resultFloat(), padded.resultFloat(),
                    1e-3f * (std::fabs(padded.resultFloat()) + 1.0f))
            << "trial " << trial;
    }
}

// --------------------------------------------------------- SimEngine

TEST(SimEngine, ParallelForCoversEveryIndexOnce)
{
    for (int threads : {1, 2, 8}) {
        SimEngine engine(threads);
        const size_t n = 103;
        std::vector<std::atomic<int>> hits(n);
        engine.parallelFor(n, [&](size_t i) { hits[i] += 1; });
        for (size_t i = 0; i < n; ++i)
            EXPECT_EQ(hits[i].load(), 1) << "index " << i;
    }
}

TEST(SimEngine, NestedParallelForDoesNotDeadlock)
{
    SimEngine engine(4);
    std::atomic<int> total{0};
    engine.parallelFor(6, [&](size_t) {
        engine.parallelFor(6, [&](size_t) { total += 1; });
    });
    EXPECT_EQ(total.load(), 36);
}

TEST(SimEngine, ZeroRequestsDefaultThreads)
{
    SimEngine engine(0);
    EXPECT_GE(engine.threads(), 1);
}

uint64_t
reportFingerprint(const ModelRunReport &r)
{
    Fnv64 h;
    h.addRaw(r.fprCycles);
    h.addRaw(r.baseCycles);
    h.addRaw(r.fprEnergy.totalPj());
    h.addRaw(r.baseEnergy.totalPj());
    h.addRaw(static_cast<double>(r.activity.laneUseful));
    h.addRaw(static_cast<double>(r.activity.termsProcessed));
    for (const LayerOpReport &op : r.ops) {
        h.addRaw(op.fprCycles);
        h.addRaw(op.baseCycles);
        h.addRaw(op.avgCyclesPerStep);
        h.addRaw(static_cast<double>(op.sampleStats.setCycles));
        h.addRaw(static_cast<double>(op.sampleStats.termsObSkipped));
    }
    return h.value();
}

TEST(SimEngine, ModelRunIsBitIdenticalAcrossThreadCounts)
{
    const ModelInfo &model = findModel("SNLI");
    uint64_t fingerprints[3];
    double totals[3];
    int idx = 0;
    for (int threads : {1, 2, 8}) {
        AcceleratorConfig cfg = AcceleratorConfig::paperDefault();
        cfg.sampleSteps = 24;
        cfg.threads = threads;
        Accelerator accel(cfg);
        ModelRunReport r = accel.runModel(model, 0.5);
        fingerprints[idx] = reportFingerprint(r);
        totals[idx] = r.fprCycles;
        ++idx;
    }
    EXPECT_EQ(fingerprints[0], fingerprints[1]);
    EXPECT_EQ(fingerprints[0], fingerprints[2]);
    EXPECT_EQ(totals[0], totals[1]);
    EXPECT_EQ(totals[0], totals[2]);
}

TEST(SimEngine, TileRunIsBitIdenticalAcrossThreadCounts)
{
    Rng rng(4096);
    TileConfig cfg;
    const int lanes = cfg.pe.lanes;
    const size_t a_len = static_cast<size_t>(cfg.cols) * lanes;
    const size_t b_len = static_cast<size_t>(cfg.rows) * lanes;
    const size_t steps = 24;
    auto a = randomValues(rng, steps * a_len, 0.25, 2.0);
    auto b = randomValues(rng, steps * b_len, 0.25, 2.0);
    std::vector<TileStepView> views(steps);
    for (size_t s = 0; s < steps; ++s)
        views[s] = TileStepView{a.data() + s * a_len,
                                b.data() + s * b_len};

    uint64_t cycles[3];
    float out00[3];
    uint64_t useful[3];
    int idx = 0;
    for (int threads : {1, 2, 8}) {
        SimEngine engine(threads);
        Tile tile(cfg);
        TileRunResult res = tile.run(views.data(), steps, &engine);
        cycles[idx] = res.cycles;
        out00[idx] = tile.output(0, 0);
        useful[idx] = tile.aggregateStats().laneUseful;
        ++idx;
    }
    EXPECT_EQ(cycles[0], cycles[1]);
    EXPECT_EQ(cycles[0], cycles[2]);
    EXPECT_EQ(out00[0], out00[1]);
    EXPECT_EQ(out00[0], out00[2]);
    EXPECT_EQ(useful[0], useful[1]);
    EXPECT_EQ(useful[0], useful[2]);
}

} // namespace
} // namespace fpraker
