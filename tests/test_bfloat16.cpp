/**
 * @file
 * Unit and property tests for the BFloat16 type.
 */

#include <cmath>
#include <cstdint>

#include <gtest/gtest.h>

#include "numeric/bfloat16.h"

namespace fpraker {
namespace {

TEST(BFloat16, ZeroDefault)
{
    BFloat16 z;
    EXPECT_TRUE(z.isZero());
    EXPECT_FALSE(z.isNegative());
    EXPECT_EQ(z.bits(), 0u);
    EXPECT_EQ(z.significand(), 0);
    EXPECT_EQ(z.toFloat(), 0.0f);
}

TEST(BFloat16, ExactSmallValues)
{
    // Values with <= 7 mantissa bits convert exactly.
    const float exact[] = {1.0f,   -1.0f,  0.5f,    2.0f,  1.5f,
                           3.25f,  -0.75f, 100.0f,  0.125f, 1.984375f};
    for (float f : exact) {
        BFloat16 v = bf16(f);
        EXPECT_EQ(v.toFloat(), f) << "value " << f;
    }
}

TEST(BFloat16, FieldDecomposition)
{
    BFloat16 v = bf16(6.5f); // 6.5 = 2^2 * 1.625 = 2^2 * 1.1010000b
    EXPECT_FALSE(v.isNegative());
    EXPECT_EQ(v.unbiasedExponent(), 2);
    EXPECT_EQ(v.mantissa(), 0b1010000);
    EXPECT_EQ(v.significand(), 0b11010000);

    BFloat16 n = bf16(-6.5f);
    EXPECT_TRUE(n.isNegative());
    EXPECT_EQ(n.unbiasedExponent(), 2);
    EXPECT_EQ(n.significand(), 0b11010000);
}

TEST(BFloat16, FromFieldsMatchesValue)
{
    // 2^3 * 1.0011b = 8 * 1.1875 = 9.5
    BFloat16 v = BFloat16::fromFields(false, 127 + 3, 0b0011000);
    EXPECT_EQ(v.toFloat(), 9.5f);
    BFloat16 m = BFloat16::fromFields(true, 127 + 3, 0b0011000);
    EXPECT_EQ(m.toFloat(), -9.5f);
}

TEST(BFloat16, RoundToNearestEven)
{
    // 1 + 2^-8 lies exactly halfway between 1.0 and 1 + 2^-7; RNE keeps
    // the even significand (1.0).
    EXPECT_EQ(bf16(1.0f + 0x1.0p-8f).toFloat(), 1.0f);
    // 1 + 3*2^-8 is halfway between 1+2^-7 and 1+2^-6; RNE picks the
    // even one (1+2^-6).
    EXPECT_EQ(bf16(1.0f + 3 * 0x1.0p-8f).toFloat(), 1.0f + 0x1.0p-6f);
    // Just above halfway rounds up.
    EXPECT_EQ(bf16(1.0f + 0x1.1p-8f).toFloat(), 1.0f + 0x1.0p-7f);
    // Just below halfway rounds down.
    EXPECT_EQ(bf16(1.0f + 0x1.fp-9f).toFloat(), 1.0f);
}

TEST(BFloat16, RoundingCarriesIntoExponent)
{
    // Largest significand rounds up across a power-of-two boundary.
    EXPECT_EQ(bf16(1.9999f).toFloat(), 2.0f);
}

TEST(BFloat16, DenormalsFlushToZero)
{
    // Smallest normal bfloat16 is 2^-126; anything below flushes.
    BFloat16 tiny = bf16(0x1.0p-130f);
    EXPECT_TRUE(tiny.isZero());
    BFloat16 neg_tiny = bf16(-0x1.0p-130f);
    EXPECT_TRUE(neg_tiny.isZero());
    EXPECT_TRUE(neg_tiny.isNegative());
    // The smallest normal survives.
    EXPECT_FALSE(bf16(0x1.0p-126f).isZero());
}

TEST(BFloat16, InfAndNaN)
{
    BFloat16 inf = bf16(HUGE_VALF);
    EXPECT_TRUE(inf.isInf());
    EXPECT_FALSE(inf.isFinite());
    BFloat16 ninf = bf16(-HUGE_VALF);
    EXPECT_TRUE(ninf.isInf());
    EXPECT_TRUE(ninf.isNegative());
    BFloat16 nan = bf16(std::nanf(""));
    EXPECT_TRUE(nan.isNaN());
    EXPECT_FALSE(nan.isFinite());
    // Overflow on conversion produces infinity.
    EXPECT_TRUE(bf16(3.4e38f).isInf()); // rounds above bf16 max (~3.39e38)
}

TEST(BFloat16, Negation)
{
    BFloat16 v = bf16(3.5f);
    EXPECT_EQ((-v).toFloat(), -3.5f);
    EXPECT_EQ((-(-v)).toFloat(), 3.5f);
}

TEST(BFloat16, AllBitPatternsRoundTripThroughFloat)
{
    // Every finite normal bfloat16 pattern must survive
    // bf16 -> float -> bf16 unchanged (the conversion is exact).
    for (uint32_t bits = 0; bits <= 0xffff; ++bits) {
        BFloat16 v = BFloat16::fromBits(static_cast<uint16_t>(bits));
        if (!v.isFinite() || v.biasedExponent() == 0)
            continue; // NaN payloads and denormal patterns excluded.
        BFloat16 rt = BFloat16::fromFloat(v.toFloat());
        EXPECT_EQ(rt.bits(), v.bits()) << "pattern " << bits;
    }
}

TEST(BFloat16, SignificandReconstructsValue)
{
    for (uint32_t bits = 0x0080; bits <= 0x7f7f; bits += 37) {
        BFloat16 v = BFloat16::fromBits(static_cast<uint16_t>(bits));
        if (v.biasedExponent() == 0 || !v.isFinite())
            continue;
        double expect = std::ldexp(static_cast<double>(v.significand()),
                                   v.unbiasedExponent() - 7);
        EXPECT_DOUBLE_EQ(expect, static_cast<double>(v.toFloat()));
    }
}

/** Conversion must always pick one of the two neighbouring bf16 values. */
class BFloat16RoundingSweep : public ::testing::TestWithParam<int>
{
};

TEST_P(BFloat16RoundingSweep, NearestNeighbour)
{
    // Scan floats between two adjacent bf16 values around several bases.
    float base = std::ldexp(1.0f, GetParam());
    BFloat16 lo = bf16(base);
    float lof = lo.toFloat();
    float hif = std::ldexp(1.0f + 0x1.0p-7f, GetParam());
    for (int i = 0; i <= 16; ++i) {
        float f = lof + (hif - lof) * static_cast<float>(i) / 16.0f;
        float got = bf16(f).toFloat();
        EXPECT_TRUE(got == lof || got == hif)
            << "f=" << f << " got " << got;
        // And it must be the closer one (ties allowed either way here;
        // exact tie handling is covered by RoundToNearestEven).
        float err_got = std::fabs(got - f);
        float err_alt = std::fabs((got == lof ? hif : lof) - f);
        EXPECT_LE(err_got, err_alt + 1e-12f);
    }
}

INSTANTIATE_TEST_SUITE_P(Exponents, BFloat16RoundingSweep,
                         ::testing::Values(-20, -3, 0, 1, 7, 30));

} // namespace
} // namespace fpraker
