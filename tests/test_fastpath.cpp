/**
 * @file
 * PR 4 fast-data-path coverage: the SIMD slab kernels against their
 * scalar reference bodies, the batched TensorGenerator fill against
 * the value-at-a-time walk, pooled tile scratch against fresh
 * construction (at several thread counts), and BaselineTile row
 * sharding against the serial walk. Everything here is a
 * bit-identity contract — no tolerances.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "accel/phase_runner.h"
#include "common/rng.h"
#include "numeric/slab_ops.h"
#include "numeric/term_lut.h"
#include "sim/sim_engine.h"
#include "sim/tile_pool.h"
#include "tile/tile.h"
#include "trace/model_zoo.h"
#include "trace/tensor_gen.h"

namespace fpraker {
namespace {

BFloat16
randomFinite(Rng &rng, double zero_p)
{
    if (rng.bernoulli(zero_p))
        return BFloat16();
    for (;;) {
        BFloat16 v =
            BFloat16::fromBits(static_cast<uint16_t>(rng.next()));
        if (v.isFinite() && !v.isZero())
            return v;
    }
}

TEST(SlabOps, CountTermsMatchesScalar)
{
    Rng rng(0xc0de);
    for (TermEncoding enc :
         {TermEncoding::Canonical, TermEncoding::RawBits}) {
        const TermLut &lut = TermLut::of(enc);
        for (double zero_p : {0.0, 0.3, 0.95, 1.0}) {
            // Sizes straddle every SIMD width and tail shape.
            for (size_t n : {size_t(0), size_t(1), size_t(7),
                             size_t(16), size_t(31), size_t(32),
                             size_t(33), size_t(1000)}) {
                std::vector<BFloat16> v(n);
                for (auto &x : v)
                    x = randomFinite(rng, zero_p);
                uint64_t z_ref = 0, t_ref = 0, z = 0, t = 0;
                slab::countTermsScalar(v.data(), n, lut.countsTable(),
                                       &z_ref, &t_ref);
                slab::countTerms(v.data(), n, lut.countsTable(),
                                 lut.nibbleLut(), &z, &t);
                ASSERT_EQ(z_ref, z) << "n=" << n;
                ASSERT_EQ(t_ref, t) << "n=" << n;
            }
        }
    }
}

TEST(SlabOps, PackBf16MatchesScalar)
{
    Rng rng(0xbeef);
    for (size_t n : {size_t(1), size_t(8), size_t(15), size_t(16),
                     size_t(17), size_t(333)}) {
        std::vector<int16_t> exp(n);
        std::vector<uint8_t> man(n), neg(n);
        for (size_t i = 0; i < n; ++i) {
            bool zero = rng.bernoulli(0.3);
            exp[i] = zero ? 0
                          : static_cast<int16_t>(
                                rng.uniformInt(int64_t(1), int64_t(254)));
            man[i] = zero ? 0 : static_cast<uint8_t>(rng.next() & 0x7f);
            neg[i] = zero ? 0 : static_cast<uint8_t>(rng.next() & 1);
        }
        std::vector<BFloat16> ref(n), got(n);
        slab::packBf16Scalar(exp.data(), man.data(), neg.data(), n,
                             ref.data());
        slab::packBf16(exp.data(), man.data(), neg.data(), n,
                       got.data());
        ASSERT_EQ(0, std::memcmp(ref.data(), got.data(),
                                 n * sizeof(BFloat16)));
    }
}

TEST(TensorGen, BatchedFillMatchesScalarWalk)
{
    // Every zoo profile x progress x tensor kind, several seeds: the
    // batched slab path must reproduce the reference walk bit for bit.
    for (const ModelInfo &m : modelZoo()) {
        for (double progress : {0.05, 0.5, 0.95}) {
            for (TensorKind kind :
                 {TensorKind::Activation, TensorKind::Weight,
                  TensorKind::Gradient}) {
                ValueProfile p = m.profile.of(kind).at(progress);
                for (uint64_t seed : {1ull, 0xfeedull}) {
                    TensorGenerator ref(p, seed);
                    TensorGenerator batched(p, seed);
                    std::vector<BFloat16> a(777), b(777);
                    ref.fillScalar(a.data(), a.size());
                    batched.fill(b.data(), b.size());
                    ASSERT_EQ(0,
                              std::memcmp(a.data(), b.data(),
                                          a.size() * sizeof(BFloat16)))
                        << m.name << " progress=" << progress;
                }
            }
        }
    }
}

TEST(TensorGen, BatchedFillCarriesStateAcrossCalls)
{
    // Interleaved partial fills must continue the same stream.
    ValueProfile p =
        modelZoo().front().profile.of(TensorKind::Activation).at(0.5);
    TensorGenerator ref(p, 99);
    TensorGenerator split(p, 99);
    std::vector<BFloat16> a(600), b(600);
    ref.fillScalar(a.data(), a.size());
    split.fill(b.data(), 1);
    split.fill(b.data() + 1, 7);
    split.fill(b.data() + 8, 250);
    split.fill(b.data() + 258, 342);
    ASSERT_EQ(0,
              std::memcmp(a.data(), b.data(),
                          a.size() * sizeof(BFloat16)));
}

TEST(SlabOps, MeasureTensorUsesLutCounts)
{
    // measureTensor (now slab-backed) vs a hand loop over the LUT.
    Rng rng(0x77);
    std::vector<BFloat16> v(513);
    for (auto &x : v)
        x = randomFinite(rng, 0.4);
    TensorStats s = measureTensor(v);
    const TermLut &lut = TermLut::of(TermEncoding::Canonical);
    uint64_t zeros = 0, terms = 0;
    for (BFloat16 x : v) {
        if (x.isZero())
            ++zeros;
        else
            terms += static_cast<uint64_t>(
                lut.countTerms(x.significand()));
    }
    EXPECT_EQ(v.size(), s.values);
    EXPECT_EQ(zeros, s.zeros);
    EXPECT_EQ(terms, s.terms);
}

void
expectStatsEq(const PeStats &a, const PeStats &b, const char *what)
{
    EXPECT_EQ(a.laneUseful, b.laneUseful) << what;
    EXPECT_EQ(a.laneNoTerm, b.laneNoTerm) << what;
    EXPECT_EQ(a.laneShiftRange, b.laneShiftRange) << what;
    EXPECT_EQ(a.laneInterPe, b.laneInterPe) << what;
    EXPECT_EQ(a.laneExponent, b.laneExponent) << what;
    EXPECT_EQ(a.setCycles, b.setCycles) << what;
    EXPECT_EQ(a.sets, b.sets) << what;
    EXPECT_EQ(a.macs, b.macs) << what;
    EXPECT_EQ(a.termsProcessed, b.termsProcessed) << what;
    EXPECT_EQ(a.termsZeroSkipped, b.termsZeroSkipped) << what;
    EXPECT_EQ(a.termsObSkipped, b.termsObSkipped) << what;
}

TEST(TilePool, PooledPhaseRunsBitIdenticalAcrossThreadCounts)
{
    const ModelInfo &model = findModel("ResNet18-Q");
    const LayerShape &layer = model.layers.front();

    PhaseRunConfig base;
    base.tile = TileConfig{};
    base.sampleSteps = 96;
    base.stepsPerOutput = 16;
    base.seed = 42;
    // This test exercises the tile pool; with memoization on, the
    // reference run below would warm the phase memo and the pooled
    // reruns would be served from it without ever leasing a tile.
    base.memoize = false;

    // Reference: no pool, serial.
    PhaseRunResult ref = runPhaseSample(model, layer,
                                        TrainingOp::Forward, 0.5, base);

    for (int threads : {1, 2, 8}) {
        SimEngine engine(threads);
        TilePool pool(base.tile);
        PhaseRunConfig cfg = base;
        cfg.engine = &engine;
        cfg.pool = &pool;
        // Two passes through the same pool so the second run reuses
        // leased scratch rather than building fresh.
        for (int pass = 0; pass < 2; ++pass) {
            PhaseRunResult got = runPhaseSample(
                model, layer, TrainingOp::Forward, 0.5, cfg);
            EXPECT_DOUBLE_EQ(ref.avgCyclesPerStep,
                             got.avgCyclesPerStep)
                << threads << " threads, pass " << pass;
            EXPECT_EQ(ref.steps, got.steps);
            expectStatsEq(ref.peStats, got.peStats, "pe stats");
            EXPECT_EQ(ref.serialStats.zeros, got.serialStats.zeros);
            EXPECT_EQ(ref.serialStats.terms, got.serialStats.terms);
            EXPECT_EQ(ref.parallelStats.zeros,
                      got.parallelStats.zeros);
            EXPECT_EQ(ref.parallelStats.terms,
                      got.parallelStats.terms);
        }
        EXPECT_GT(pool.built(), 0u);
        EXPECT_EQ(pool.built(), pool.idle()); // all leases returned
        // Reuse must have happened: two passes of many bursts built
        // no more scratches than the engine could run concurrently.
        EXPECT_LE(pool.built(),
                  static_cast<size_t>(engine.threads()) * 2);
    }
}

TEST(TilePool, ReusedTileMatchesFresh)
{
    TileConfig cfg;
    TilePool pool(cfg);
    const int lanes = cfg.pe.lanes;

    ValueProfile p =
        findModel("ResNet18-Q").profile.of(TensorKind::Weight).at(0.5);
    auto make_steps = [&](uint64_t seed) {
        TensorGenerator gen(p, seed);
        std::vector<TileStep> steps(12);
        for (auto &s : steps) {
            s.a = gen.generate(static_cast<size_t>(cfg.cols) * lanes);
            s.b = gen.generate(static_cast<size_t>(cfg.rows) * lanes);
        }
        return steps;
    };

    // Dirty the pooled tile with one workload, return it, then run a
    // second workload on the reused tile and on a fresh tile.
    std::vector<TileStep> first = make_steps(7);
    std::vector<TileStep> second = make_steps(8);
    {
        TilePool::Lease lease = pool.acquire();
        lease->tile.run(first);
    }
    ASSERT_EQ(1u, pool.built());

    Tile fresh(cfg);
    TileRunResult want = fresh.run(second);
    TilePool::Lease lease = pool.acquire();
    ASSERT_EQ(1u, pool.built()); // reused, not rebuilt
    TileRunResult got = lease->tile.run(second);

    EXPECT_EQ(want.cycles, got.cycles);
    EXPECT_EQ(want.steps, got.steps);
    expectStatsEq(fresh.aggregateStats(), lease->tile.aggregateStats(),
                  "tile stats");
    for (int r = 0; r < cfg.rows; ++r)
        for (int c = 0; c < cfg.cols; ++c)
            EXPECT_EQ(fresh.output(r, c), lease->tile.output(r, c));
}

TEST(BaselineTile, RowShardingMatchesSerial)
{
    TileConfig cfg;
    cfg.rows = 8;
    cfg.cols = 8;
    const int lanes = cfg.pe.lanes;
    ValueProfile p =
        findModel("VGG16").profile.of(TensorKind::Activation).at(0.5);
    TensorGenerator gen(p, 314);
    std::vector<TileStep> steps(20);
    for (auto &s : steps) {
        s.a = gen.generate(static_cast<size_t>(cfg.cols) * lanes);
        s.b = gen.generate(static_cast<size_t>(cfg.rows) * lanes);
    }

    BaselineTile serial(cfg);
    TileRunResult want = serial.run(steps);

    for (int threads : {2, 8}) {
        SimEngine engine(threads);
        BaselineTile sharded(cfg);
        TileRunResult got = sharded.run(steps, &engine);
        EXPECT_EQ(want.cycles, got.cycles);
        EXPECT_EQ(want.steps, got.steps);
        EXPECT_EQ(want.macs, got.macs);
        BaselinePeStats ws = serial.aggregateStats();
        BaselinePeStats gs = sharded.aggregateStats();
        EXPECT_EQ(ws.cycles, gs.cycles);
        EXPECT_EQ(ws.sets, gs.sets);
        EXPECT_EQ(ws.macs, gs.macs);
        EXPECT_EQ(ws.ineffectualMacs, gs.ineffectualMacs);
        for (int r = 0; r < cfg.rows; ++r)
            for (int c = 0; c < cfg.cols; ++c)
                EXPECT_EQ(serial.output(r, c), sharded.output(r, c));
    }
}

} // namespace
} // namespace fpraker
