/**
 * @file
 * Tests for the PR 9 memoization grains: the whole-bf16 ValueLut
 * differential against TermEncoder over the full 16-bit domain,
 * SimMemo's exact-by-construction cache behaviors (key verification,
 * budget admission, LRU eviction), and phase-runner bit-identity with
 * the memo off, cold, warm, and evicting — at 1, 2, and 8 threads.
 */

#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "accel/phase_runner.h"
#include "numeric/term_encoder.h"
#include "numeric/value_lut.h"
#include "sim/sim_engine.h"
#include "sim/sim_memo.h"
#include "trace/model_zoo.h"
#include "trace/tensor_gen.h"

namespace fpraker {
namespace {

TEST(ValueLut, FullDomainMatchesTermEncoder)
{
    for (TermEncoding enc :
         {TermEncoding::Canonical, TermEncoding::RawBits}) {
        const ValueLut &lut = ValueLut::of(enc);
        const TermEncoder encoder(enc);
        ASSERT_EQ(lut.encoding(), enc);
        for (uint32_t bits = 0; bits < 65536; ++bits) {
            const BFloat16 v =
                BFloat16::fromBits(static_cast<uint16_t>(bits));
            const ValueLut::Entry &e =
                lut.entry(static_cast<uint16_t>(bits));

            ASSERT_EQ((e.flags & ValueLut::kNegative) != 0,
                      v.isNegative())
                << "bits " << bits;
            ASSERT_EQ((e.flags & ValueLut::kZero) != 0, v.isZero())
                << "bits " << bits;
            ASSERT_EQ((e.flags & ValueLut::kFinite) != 0, v.isFinite())
                << "bits " << bits;
            ASSERT_EQ(e.unbiasedExp, v.unbiasedExponent())
                << "bits " << bits;
            ASSERT_EQ(e.biasedExp, v.biasedExponent())
                << "bits " << bits;
            ASSERT_EQ(e.sig, v.significand()) << "bits " << bits;

            const TermStream want = encoder.encode(v);
            ASSERT_EQ(e.nterms, want.size()) << "bits " << bits;
            ASSERT_NE(e.stream, nullptr) << "bits " << bits;
            ASSERT_EQ(e.stream->size(), want.size()) << "bits " << bits;
            for (int i = 0; i < want.size(); ++i)
                ASSERT_TRUE((*e.stream)[i] == want[i])
                    << "bits " << bits << " term " << i;
            if (want.size() > 0)
                ASSERT_EQ(e.shift0, want[0].shift) << "bits " << bits;
        }
    }
}

TEST(ValueLut, BDecodeSharesEncodingIndependentFields)
{
    // The B-side decode fields must not depend on the term encoding.
    const ValueLut &canon = ValueLut::of(TermEncoding::Canonical);
    const ValueLut &raw = ValueLut::of(TermEncoding::RawBits);
    ASSERT_EQ(&ValueLut::bDecode(), &canon);
    for (uint32_t bits = 0; bits < 65536; bits += 17) {
        const ValueLut::Entry &a =
            canon.entry(static_cast<uint16_t>(bits));
        const ValueLut::Entry &b =
            raw.entry(static_cast<uint16_t>(bits));
        ASSERT_EQ(a.flags, b.flags) << "bits " << bits;
        ASSERT_EQ(a.biasedExp, b.biasedExp) << "bits " << bits;
        ASSERT_EQ(a.sig, b.sig) << "bits " << bits;
    }
}

TEST(SimMemo, RoundTripVerifiesFullKey)
{
    SimMemo memo(1 << 20);
    const char key[] = "burst-key-bytes";
    const uint64_t value = 0xdeadbeefcafef00dull;
    uint64_t got = 0;

    EXPECT_FALSE(memo.lookup(7, key, sizeof(key), &got, sizeof(got)));
    memo.insert(7, key, sizeof(key), &value, sizeof(value));
    ASSERT_TRUE(memo.lookup(7, key, sizeof(key), &got, sizeof(got)));
    EXPECT_EQ(got, value);

    // A 64-bit hash collision with different key bytes must be a
    // miss, never a wrong value.
    const char other[] = "other-key-bytes";
    static_assert(sizeof(other) == sizeof(key), "same length");
    got = 0;
    EXPECT_FALSE(
        memo.lookup(7, other, sizeof(other), &got, sizeof(got)));
    EXPECT_EQ(got, 0u);
    // A matching key with a different value size is a miss too.
    uint32_t small = 0;
    EXPECT_FALSE(
        memo.lookup(7, key, sizeof(key), &small, sizeof(small)));

    SimMemo::Stats st = memo.stats();
    EXPECT_EQ(st.hits, 1u);
    EXPECT_EQ(st.misses, 3u);
    EXPECT_EQ(st.insertions, 1u);
    EXPECT_EQ(st.entries, 1u);
    EXPECT_GT(st.bytes, 0u);
}

TEST(SimMemo, OversizedEntryNeverCached)
{
    SimMemo memo(256); // Far below one entry's cost.
    std::vector<unsigned char> key(512, 0xab);
    uint64_t value = 1, got = 0;
    memo.insert(1, key.data(), key.size(), &value, sizeof(value));
    EXPECT_FALSE(
        memo.lookup(1, key.data(), key.size(), &got, sizeof(got)));
    SimMemo::Stats st = memo.stats();
    EXPECT_EQ(st.insertions, 0u);
    EXPECT_EQ(st.bytes, 0u);
}

TEST(SimMemo, LruEvictsOldestAndRespectsBudget)
{
    // Small budget -> a single stripe; entries cost ~96 bytes each, so
    // the table holds a handful and must evict in LRU order.
    SimMemo memo(512);
    uint64_t got = 0;
    auto put = [&](uint64_t i) {
        memo.insert(i, &i, sizeof(i), &i, sizeof(i));
    };
    auto has = [&](uint64_t i) {
        return memo.lookup(i, &i, sizeof(i), &got, sizeof(got));
    };
    for (uint64_t i = 1; i <= 32; ++i)
        put(i);
    SimMemo::Stats st = memo.stats();
    EXPECT_GT(st.evictions, 0u);
    EXPECT_LE(memo.bytesHeld(), memo.budget());
    EXPECT_TRUE(has(32));  // Most recent insert survives...
    EXPECT_FALSE(has(1));  // ...the oldest was evicted.

    // A hit refreshes recency: touch the LRU-oldest survivor, insert
    // until eviction strikes again, and the touched entry survives.
    uint64_t oldest = 0;
    for (uint64_t i = 1; i <= 32; ++i)
        if (has(i)) {
            oldest = i;
            break;
        }
    ASSERT_NE(oldest, 0u);
    const uint64_t evictions_before = memo.stats().evictions;
    for (uint64_t i = 100; memo.stats().evictions <
                           evictions_before + 2; ++i) {
        put(i);
        EXPECT_TRUE(has(oldest));
        has(oldest); // Keep it most-recent.
    }
}

// ---------------------------------------------------------------- phase

void
expectPhaseEqual(const PhaseRunResult &a, const PhaseRunResult &b,
                 const char *what)
{
    EXPECT_EQ(a.avgCyclesPerStep, b.avgCyclesPerStep) << what;
    EXPECT_EQ(a.steps, b.steps) << what;
    EXPECT_EQ(a.serialSide, b.serialSide) << what;
    EXPECT_EQ(a.peStats.laneUseful, b.peStats.laneUseful) << what;
    EXPECT_EQ(a.peStats.laneNoTerm, b.peStats.laneNoTerm) << what;
    EXPECT_EQ(a.peStats.laneShiftRange, b.peStats.laneShiftRange)
        << what;
    EXPECT_EQ(a.peStats.laneExponent, b.peStats.laneExponent) << what;
    EXPECT_EQ(a.peStats.laneInterPe, b.peStats.laneInterPe) << what;
    EXPECT_EQ(a.peStats.setCycles, b.peStats.setCycles) << what;
    EXPECT_EQ(a.peStats.sets, b.peStats.sets) << what;
    EXPECT_EQ(a.peStats.macs, b.peStats.macs) << what;
    EXPECT_EQ(a.peStats.termsProcessed, b.peStats.termsProcessed)
        << what;
    EXPECT_EQ(a.peStats.termsZeroSkipped, b.peStats.termsZeroSkipped)
        << what;
    EXPECT_EQ(a.peStats.termsObSkipped, b.peStats.termsObSkipped)
        << what;
    EXPECT_EQ(a.serialStats.values, b.serialStats.values) << what;
    EXPECT_EQ(a.serialStats.zeros, b.serialStats.zeros) << what;
    EXPECT_EQ(a.serialStats.terms, b.serialStats.terms) << what;
    EXPECT_EQ(a.parallelStats.values, b.parallelStats.values) << what;
    EXPECT_EQ(a.parallelStats.zeros, b.parallelStats.zeros) << what;
    EXPECT_EQ(a.parallelStats.terms, b.parallelStats.terms) << what;
}

PhaseRunConfig
basePhaseConfig()
{
    PhaseRunConfig cfg;
    cfg.tile = TileConfig{};
    cfg.sampleSteps = 96;
    cfg.stepsPerOutput = 16;
    cfg.seed = 42;
    return cfg;
}

TEST(PhaseMemo, ColdAndWarmMatchMemoOffAcrossThreadCounts)
{
    const ModelInfo &model = findModel("ResNet18-Q");
    const LayerShape &layer = model.layers.front();

    // Reference: the unmemoized serial path.
    PhaseRunConfig off = basePhaseConfig();
    off.memoize = false;
    const PhaseRunResult ref = runPhaseSample(
        model, layer, TrainingOp::Forward, 0.5, off);
    EXPECT_EQ(ref.memoHits, 0u);
    EXPECT_EQ(ref.memoMisses, 0u);

    for (int threads : {1, 2, 8}) {
        SimEngine engine(threads);
        SimMemo memo(8u << 20);
        PhaseRunConfig cfg = basePhaseConfig();
        cfg.engine = &engine;
        cfg.memo = &memo;

        PhaseRunResult cold = runPhaseSample(
            model, layer, TrainingOp::Forward, 0.5, cfg);
        expectPhaseEqual(cold, ref,
                         ("cold t=" + std::to_string(threads)).c_str());
        EXPECT_EQ(cold.memoHits, 0u) << threads;
        EXPECT_GT(cold.memoMisses, 0u) << threads;

        // Generator-backed phases memoize whole: the warm rerun hits
        // at the phase grain and skips even operand generation.
        PhaseRunResult warm = runPhaseSample(
            model, layer, TrainingOp::Forward, 0.5, cfg);
        expectPhaseEqual(warm, ref,
                         ("warm t=" + std::to_string(threads)).c_str());
        EXPECT_EQ(warm.memoHits, 1u) << threads;
        EXPECT_EQ(warm.memoMisses, 0u) << threads;
    }
}

TEST(PhaseMemo, BurstGrainHitsEveryBurstOnTraceBackedWarmRun)
{
    const ModelInfo &model = findModel("ResNet18-Q");
    const LayerShape &layer = model.layers.front();

    PhaseRunConfig off = basePhaseConfig();
    off.memoize = false;
    const PhaseRunResult ref = runPhaseSample(
        model, layer, TrainingOp::Forward, 0.5, off);

    // An external supply disables the phase grain (its content lives
    // in the supplied bytes), so only bursts memoize. Feed the same
    // generator streams through the supply seam to keep ref parity.
    const PhasePlan plan = planPhaseSample(
        model, layer, TrainingOp::Forward, 0.5, basePhaseConfig());
    GeneratorSlabSupply supply(plan.serialProfile, plan.parallelProfile,
                               plan.baseSeed);

    for (int threads : {1, 2, 8}) {
        SimEngine engine(threads);
        SimMemo memo(8u << 20);
        PhaseRunConfig cfg = basePhaseConfig();
        cfg.engine = &engine;
        cfg.memo = &memo;
        cfg.supply = &supply;

        PhaseRunResult cold = runPhaseSample(
            model, layer, TrainingOp::Forward, 0.5, cfg);
        expectPhaseEqual(cold, ref,
                         ("cold t=" + std::to_string(threads)).c_str());
        EXPECT_EQ(cold.memoHits, 0u) << threads;
        EXPECT_EQ(cold.memoMisses, plan.bursts) << threads;

        PhaseRunResult warm = runPhaseSample(
            model, layer, TrainingOp::Forward, 0.5, cfg);
        expectPhaseEqual(warm, ref,
                         ("warm t=" + std::to_string(threads)).c_str());
        EXPECT_EQ(warm.memoHits, plan.bursts) << threads;
        EXPECT_EQ(warm.memoMisses, 0u) << threads;
    }
}

TEST(PhaseMemo, EvictionUnderTinyBudgetStaysBitIdentical)
{
    const ModelInfo &model = findModel("ResNet18-Q");
    const LayerShape &layer = model.layers.front();

    PhaseRunConfig off = basePhaseConfig();
    off.memoize = false;
    const PhaseRunResult ref = runPhaseSample(
        model, layer, TrainingOp::Forward, 0.5, off);

    const PhasePlan plan = planPhaseSample(
        model, layer, TrainingOp::Forward, 0.5, basePhaseConfig());
    GeneratorSlabSupply supply(plan.serialProfile, plan.parallelProfile,
                               plan.baseSeed);

    // A budget holding roughly one burst entry: every insert evicts
    // the previous burst, only the last one can ever hit, and the
    // results must still be bit-identical to the unmemoized run.
    SimMemo memo(8u << 10);
    PhaseRunConfig cfg = basePhaseConfig();
    cfg.memo = &memo;
    cfg.supply = &supply;
    for (int pass = 0; pass < 3; ++pass) {
        PhaseRunResult got = runPhaseSample(
            model, layer, TrainingOp::Forward, 0.5, cfg);
        expectPhaseEqual(got, ref,
                         ("pass " + std::to_string(pass)).c_str());
    }
    SimMemo::Stats st = memo.stats();
    EXPECT_GT(st.evictions, 0u);
    EXPECT_LE(memo.bytesHeld(), memo.budget());
}

TEST(PhaseMemo, MemoizeFalseBypassesEvenAnInstalledMemo)
{
    const ModelInfo &model = findModel("ResNet18-Q");
    const LayerShape &layer = model.layers.front();

    SimMemo memo(8u << 20);
    PhaseRunConfig cfg = basePhaseConfig();
    cfg.memo = &memo;
    cfg.memoize = false;
    PhaseRunResult r = runPhaseSample(model, layer,
                                      TrainingOp::Forward, 0.5, cfg);
    EXPECT_EQ(r.memoHits, 0u);
    EXPECT_EQ(r.memoMisses, 0u);
    SimMemo::Stats st = memo.stats();
    EXPECT_EQ(st.hits + st.misses + st.insertions, 0u);
}

} // namespace
} // namespace fpraker
