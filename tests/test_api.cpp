/**
 * @file
 * Tests for the public experiment API: Session parity with direct
 * Accelerator runs, Result JSON round-trip, registry integrity, CLI
 * flag strictness, and registry-vs-legacy harness output parity
 * (fig13 rebuilt by hand through SweepRunner must checksum-match the
 * registered experiment).
 */

#include <cstring>
#include <set>

#include <gtest/gtest.h>

#include "api/driver.h"
#include "api/json.h"
#include "api/registry.h"
#include "api/result.h"
#include "api/session.h"
#include "common/fnv.h"
#include "common/table.h"
#include "numeric/term_encoder.h"
#include "trace/model_zoo.h"

namespace fpraker {
namespace {

using api::CliOptions;
using api::ExperimentRegistry;
using api::JsonValue;
using api::MetricGroup;
using api::ReportWriter;
using api::Result;
using api::ResultTable;
using api::Session;

AcceleratorConfig
smallConfig()
{
    AcceleratorConfig cfg = AcceleratorConfig::paperDefault();
    cfg.sampleSteps = 24;
    return cfg;
}

uint64_t
fingerprint(const ModelRunReport &r)
{
    Fnv64 h;
    h.addRaw(r.fprCycles);
    h.addRaw(r.baseCycles);
    h.addRaw(r.fprEnergy.totalPj());
    h.addRaw(r.baseEnergy.totalPj());
    for (const LayerOpReport &op : r.ops) {
        h.addRaw(op.fprCycles);
        h.addRaw(op.avgCyclesPerStep);
        h.addRaw(static_cast<double>(op.sampleStats.setCycles));
        h.addRaw(static_cast<double>(op.sampleStats.termsObSkipped));
    }
    return h.value();
}

uint64_t
stringChecksum(const std::string &s)
{
    Fnv64 h;
    h.addBytes(s.data(), s.size());
    return h.value();
}

TEST(Session, ParityWithDirectRunModel)
{
    // A Session-run sweep job must reproduce, bit for bit, what the
    // accelerator's own runModel produces for the same config.
    const ModelInfo &m0 = findModel("SNLI");
    const ModelInfo &m1 = findModel("NCF");

    Accelerator direct(smallConfig());
    uint64_t want0 = fingerprint(direct.runModel(m0, 0.5));
    uint64_t want1 = fingerprint(direct.runModel(m1, 0.25));

    Session session;
    session.threads(4);
    const Accelerator &accel =
        session.withVariant("full", smallConfig());
    std::vector<ModelRunReport> reports = session.runModels(
        {SweepJob{&accel, &m0, 0.5}, SweepJob{&accel, &m1, 0.25}});
    ASSERT_EQ(reports.size(), 2u);
    EXPECT_EQ(fingerprint(reports[0]), want0);
    EXPECT_EQ(fingerprint(reports[1]), want1);
}

TEST(Session, KnobsAndVariants)
{
    Session session;
    session.threads(2);
    EXPECT_TRUE(session.threadsExplicit());
    EXPECT_EQ(session.requestedThreads(), 2);
    EXPECT_EQ(session.threadCount(), 2);

    session.overrideSampleSteps(17);
    EXPECT_EQ(session.sampleSteps(96), 17);
    EXPECT_EQ(session.lastSampleSteps(), 17);

    session.setOption("reps", "5");
    EXPECT_EQ(session.intOption("reps", 3), 5);
    EXPECT_EQ(session.intOption("steps", 7), 7);
    EXPECT_EQ(session.strOption("out", "default.json"), "default.json");

    session.withVariant("a", smallConfig());
    EXPECT_TRUE(session.hasVariant("a"));
    EXPECT_FALSE(session.hasVariant("b"));
    ASSERT_EQ(session.variantNames().size(), 1u);
    EXPECT_EQ(session.variantNames()[0], "a");
    EXPECT_EQ(session.configDigest().size(), 16u);

    // Same variants => same digest; different config => different.
    Session other;
    other.withVariant("a", smallConfig());
    EXPECT_EQ(other.configDigest(), session.configDigest());
    Session third;
    AcceleratorConfig changed = smallConfig();
    changed.useBdc = false;
    third.withVariant("a", changed);
    EXPECT_NE(third.configDigest(), session.configDigest());
}

TEST(ResultJson, RoundTrip)
{
    Result r;
    r.experiment = "unit";
    r.display = "Unit";
    r.title = "round trip";
    r.expectation = "emit -> parse -> compare";
    r.configDigest = "0123456789abcdef";
    r.threads = 3;
    r.sampleSteps = 24;
    r.variants = {"full", "zero"};
    r.scalar("geomean", 1.519);
    r.scalar("count", 42);
    r.scalar("label", "a \"quoted\"\nstring");
    r.scalar("flag", true);
    r.group("timing")
        .metric("seconds", 0.125, 6)
        .metric("checksum", "230d1bab2fa340ba");
    ResultTable &t = r.table("speedup", {"model", "value"});
    t.caption = "per-model speedup";
    t.addRow({"SNLI", "1.80"});
    t.addRow({"VGG16", "1.51"});
    r.addSeries("speedup", {"SNLI", "VGG16"}, {1.80, 1.51});
    r.note("all models above 1.0");

    std::string text = ReportWriter::renderJson(r);
    std::string error;
    JsonValue parsed = JsonValue::parse(text, &error);
    EXPECT_TRUE(error.empty()) << error;
    EXPECT_EQ(parsed, r.toJson());

    // Dump of the parsed tree re-parses to the same tree.
    JsonValue reparsed = JsonValue::parse(parsed.dump(), &error);
    EXPECT_TRUE(error.empty()) << error;
    EXPECT_EQ(reparsed, parsed);

    // Spot-check structure and key order.
    ASSERT_TRUE(parsed.isObject());
    const JsonValue *schema = parsed.find("schema");
    ASSERT_NE(schema, nullptr);
    EXPECT_EQ(schema->str(), "fpraker-result-v1");
    const JsonValue *prov = parsed.find("provenance");
    ASSERT_NE(prov, nullptr);
    EXPECT_EQ(prov->find("threads")->intValue(), 3);
    const JsonValue *tables = parsed.find("tables");
    ASSERT_NE(tables, nullptr);
    ASSERT_EQ(tables->items().size(), 1u);
    EXPECT_EQ(tables->items()[0].find("rows")->items().size(), 2u);
    const JsonValue *scalars = parsed.find("scalars");
    EXPECT_EQ(scalars->find("label")->str(), "a \"quoted\"\nstring");
    EXPECT_EQ(scalars->find("count")->intValue(), 42);
}

TEST(ResultJson, ParserRejectsMalformedInput)
{
    std::string error;
    JsonValue::parse("{\"a\": 1,}", &error);
    // Trailing comma: the parser expects another key.
    EXPECT_FALSE(error.empty());
    JsonValue::parse("[1, 2", &error);
    EXPECT_FALSE(error.empty());
    JsonValue::parse("{\"a\" 1}", &error);
    EXPECT_FALSE(error.empty());
    JsonValue::parse("tru", &error);
    EXPECT_FALSE(error.empty());
    JsonValue::parse("{} extra", &error);
    EXPECT_FALSE(error.empty());
    // Malformed numbers fail instead of silently truncating.
    JsonValue::parse("[1-2]", &error);
    EXPECT_FALSE(error.empty());
    JsonValue::parse("-", &error);
    EXPECT_FALSE(error.empty());
    JsonValue::parse("+1", &error);
    EXPECT_FALSE(error.empty());
    JsonValue::parse("1.", &error);
    EXPECT_FALSE(error.empty());
    JsonValue::parse("1e", &error);
    EXPECT_FALSE(error.empty());
    JsonValue::parse("-2.5e-3", &error);
    EXPECT_TRUE(error.empty()) << error;
    JsonValue v = JsonValue::parse(
        " { \"x\" : [ 1 , 2.5 , \"s\" , null , false ] } ", &error);
    EXPECT_TRUE(error.empty()) << error;
    ASSERT_TRUE(v.isObject());
    EXPECT_EQ(v.find("x")->items().size(), 5u);
}

TEST(Registry, EnumeratesEveryExperimentExactlyOnce)
{
    const ExperimentRegistry &reg = ExperimentRegistry::instance();
    std::vector<const api::ExperimentInfo *> all = reg.all();
    EXPECT_GE(all.size(), 24u);
    EXPECT_EQ(all.size(), reg.size());

    std::set<std::string> ids;
    for (const api::ExperimentInfo *e : all) {
        EXPECT_TRUE(ids.insert(e->id).second)
            << "duplicate id " << e->id;
        EXPECT_FALSE(e->title.empty()) << e->id;
        EXPECT_TRUE(static_cast<bool>(e->fn)) << e->id;
        EXPECT_EQ(reg.find(e->id), e);
    }
    // Sorted by id.
    for (size_t i = 1; i < all.size(); ++i)
        EXPECT_LT(all[i - 1]->id, all[i]->id);

    // The paper's headline experiments are present.
    for (const char *id :
         {"fig11", "fig13", "table1", "table3", "intro",
          "ext_inference", "perf_regression", "ablation_encoding"})
        EXPECT_NE(reg.find(id), nullptr) << id;
    EXPECT_EQ(reg.find("nope"), nullptr);
}

TEST(Registry, Fig13MatchesLegacyHarnessChecksum)
{
    // Rebuild the legacy fig13 table by hand on the pre-redesign
    // path (direct SweepRunner + printf-style cells) and require the
    // registered experiment to produce exactly the same cells.
    const int sample_steps = 24;
    AcceleratorConfig cfg = AcceleratorConfig::paperDefault();
    cfg.sampleSteps = sample_steps;
    SweepRunner runner(2);
    const Accelerator &accel = runner.addAccelerator(cfg);
    std::vector<SweepJob> jobs;
    for (const auto &model : modelZoo())
        jobs.push_back(SweepJob{&accel, &model, 0.5});
    std::vector<ModelRunReport> reports = runner.runModels(jobs);

    std::string legacy;
    for (const ModelRunReport &r : reports) {
        double zero = r.activity.termsZeroSkipped;
        double ob = r.activity.termsObSkipped;
        double skipped = zero + ob;
        double slots = r.activity.macs * kTermSlots;
        legacy += r.model + "|" + Table::pct(zero / skipped) + "|" +
                  Table::pct(ob / skipped) + "|" +
                  Table::cell(ob / slots * 100.0, 2) + "|" +
                  Table::pct(skipped / slots) + "\n";
    }

    const api::ExperimentInfo *info =
        ExperimentRegistry::instance().find("fig13");
    ASSERT_NE(info, nullptr);
    Session session;
    session.threads(2);
    session.overrideSampleSteps(sample_steps);
    Result result = info->fn(session);
    ASSERT_EQ(result.tables().size(), 1u);
    std::string registered;
    for (const auto &row : result.tables()[0].rows) {
        ASSERT_EQ(row.size(), 5u);
        registered += row[0] + "|" + row[1] + "|" + row[2] + "|" +
                      row[3] + "|" + row[4] + "\n";
    }
    EXPECT_EQ(stringChecksum(registered), stringChecksum(legacy));
    EXPECT_EQ(registered, legacy);
}

TEST(Driver, StrictFlagParsing)
{
    auto parse = [](std::vector<const char *> args,
                    bool allow_positionals, CliOptions *opts) {
        args.insert(args.begin(), "prog");
        std::string error;
        return api::parseCliArgs(static_cast<int>(args.size()),
                                 const_cast<char **>(args.data()), 1,
                                 allow_positionals, opts, &error);
    };

    CliOptions ok;
    EXPECT_TRUE(parse({"--threads=4", "--sample-steps=32",
                       "--json=out.json", "--steps=10", "--reps=2",
                       "--out=x.json"},
                      false, &ok));
    EXPECT_EQ(ok.threads, 4);
    EXPECT_EQ(ok.sampleSteps, 32);
    EXPECT_EQ(ok.json, "out.json");
    ASSERT_EQ(ok.extras.size(), 3u);
    EXPECT_EQ(ok.extras[0].first, "steps");
    EXPECT_EQ(ok.extras[0].second, "10");

    CliOptions bad;
    EXPECT_FALSE(parse({"--threads=0"}, false, &bad));
    EXPECT_FALSE(parse({"--threads=-2"}, false, &bad));
    EXPECT_FALSE(parse({"--threads=abc"}, false, &bad));
    EXPECT_FALSE(parse({"--threads="}, false, &bad));
    EXPECT_FALSE(parse({"--sample-steps=0"}, false, &bad));
    EXPECT_FALSE(parse({"--bogus"}, false, &bad));
    EXPECT_FALSE(parse({"--bogus"}, true, &bad));
    EXPECT_FALSE(parse({"stray"}, false, &bad));
    EXPECT_FALSE(parse({"--all"}, false, &bad)); // shims reject --all

    CliOptions run_opts;
    EXPECT_TRUE(parse({"run-id", "--all"}, true, &run_opts));
    EXPECT_TRUE(run_opts.all);
    ASSERT_EQ(run_opts.ids.size(), 1u);
    EXPECT_EQ(run_opts.ids[0], "run-id");
}

TEST(SweepRunner, ShardedWarmupMatchesSerialWarmup)
{
    // The sharded BDC warm-up must leave sweeps bit-identical to the
    // pre-sharding behavior: same reports whether the cache was
    // warmed by a serial loop (runModel path) or the parallel prelude.
    const ModelInfo &model = findModel("VGG16");
    Accelerator direct(smallConfig());
    uint64_t want = fingerprint(direct.runModel(model, 0.75));

    SweepRunner runner(8);
    const Accelerator &accel = runner.addAccelerator(smallConfig());
    std::vector<ModelRunReport> reports = runner.runModels(
        {SweepJob{&accel, &model, 0.75},
         SweepJob{&accel, &model, 0.75}});
    ASSERT_EQ(reports.size(), 2u);
    EXPECT_EQ(fingerprint(reports[0]), want);
    EXPECT_EQ(fingerprint(reports[1]), want);
}

TEST(RunAll, ParallelExperimentsFingerprintMatchSerial)
{
    // The `run --all` scheduler runs each experiment in its own
    // Session borrowing one shared engine. A document's fingerprint
    // must not depend on that: serial dedicated-session runs and
    // engine-sharing concurrent runs agree experiment by experiment.
    const std::vector<std::string> ids = {"fig01", "fig02", "fig13"};
    const ExperimentRegistry &reg = ExperimentRegistry::instance();

    std::vector<uint64_t> serial_fp;
    for (const std::string &id : ids) {
        const api::ExperimentInfo *info = reg.find(id);
        ASSERT_NE(info, nullptr) << id;
        Session session;
        session.overrideSampleSteps(16);
        Result r = info->fn(session);
        r.experiment = info->id;
        serial_fp.push_back(r.fingerprint());
    }

    SimEngine engine(2);
    std::vector<uint64_t> parallel_fp(ids.size());
    engine.parallelFor(ids.size(), [&](size_t i) {
        const api::ExperimentInfo *info = reg.find(ids[i]);
        Session session;
        session.shareEngine(&engine);
        session.overrideSampleSteps(16);
        Result r = info->fn(session);
        r.experiment = info->id;
        parallel_fp[i] = r.fingerprint();
    });

    for (size_t i = 0; i < ids.size(); ++i)
        EXPECT_EQ(serial_fp[i], parallel_fp[i]) << ids[i];
}

TEST(Session, SharedEngineProvidesPoolButKeepsThreadsKnob)
{
    SimEngine engine(2);
    Session session;
    session.shareEngine(&engine);
    session.threads(5);
    // The shared engine wins for the pool; the explicit knob stays
    // visible for experiments that drive their own engines.
    EXPECT_EQ(2, session.threadCount());
    EXPECT_TRUE(session.threadsExplicit());
    EXPECT_EQ(5, session.requestedThreads());
}

} // namespace
} // namespace fpraker
