/**
 * @file
 * Tests for the sweep scheduler: SweepRunner's job fan-out must agree
 * with serial per-model runs, reports must be bit-identical at any
 * thread count (the per-worker RNG substream contract), and the
 * substream derivation itself must be stable and collision-free over
 * the index ranges the simulator uses.
 */

#include <cstring>
#include <set>

#include <gtest/gtest.h>

#include "accel/phase_runner.h"
#include "common/fnv.h"
#include "sim/sweep_runner.h"
#include "trace/model_zoo.h"
#include "trace/rng_stream.h"

namespace fpraker {
namespace {

AcceleratorConfig
smallConfig()
{
    AcceleratorConfig cfg = AcceleratorConfig::paperDefault();
    cfg.sampleSteps = 24;
    return cfg;
}

uint64_t
reportFingerprint(const ModelRunReport &r)
{
    Fnv64 h;
    h.addRaw(r.fprCycles);
    h.addRaw(r.baseCycles);
    h.addRaw(r.fprEnergy.totalPj());
    h.addRaw(r.baseEnergy.totalPj());
    for (const LayerOpReport &op : r.ops) {
        h.addRaw(op.fprCycles);
        h.addRaw(op.avgCyclesPerStep);
        h.addRaw(static_cast<double>(op.sampleStats.setCycles));
        h.addRaw(static_cast<double>(op.sampleStats.termsObSkipped));
    }
    return h.value();
}

TEST(RngStream, SubstreamSeedsAreStableAndDistinct)
{
    EXPECT_EQ(substreamSeed(42, 7), substreamSeed(42, 7));
    std::set<uint64_t> seen;
    for (uint64_t base : {0ull, 1ull, 0xf9a4e5ull})
        for (uint64_t i = 0; i < 512; ++i)
            seen.insert(substreamSeed(base, i));
    EXPECT_EQ(seen.size(), 3u * 512u);
}

TEST(SweepRunner, AgreesWithSerialModelRuns)
{
    // The sweep fan-out must reproduce, bit for bit, what each model's
    // own runModel produces: same units, same seeds, same reduction
    // order.
    const ModelInfo &m0 = findModel("SNLI");
    const ModelInfo &m1 = findModel("NCF");

    Accelerator serial(smallConfig());
    uint64_t want0 = reportFingerprint(serial.runModel(m0, 0.5));
    uint64_t want1 = reportFingerprint(serial.runModel(m1, 0.25));

    SweepRunner runner(4);
    const Accelerator &accel = runner.addAccelerator(smallConfig());
    std::vector<ModelRunReport> reports = runner.runModels(
        {SweepJob{&accel, &m0, 0.5}, SweepJob{&accel, &m1, 0.25}});
    ASSERT_EQ(reports.size(), 2u);
    EXPECT_EQ(reportFingerprint(reports[0]), want0);
    EXPECT_EQ(reportFingerprint(reports[1]), want1);
}

TEST(SweepRunner, SweepIsBitIdenticalAcrossThreadCounts)
{
    // The per-worker RNG substream contract: a sweep's combined
    // fingerprint is a function of its jobs, never of the worker count
    // that executed them.
    const ModelInfo &m0 = findModel("SNLI");
    const ModelInfo &m1 = findModel("ResNet18-Q");

    uint64_t fingerprints[3];
    int idx = 0;
    for (int threads : {1, 2, 8}) {
        SweepRunner runner(threads);
        const Accelerator &accel = runner.addAccelerator(smallConfig());
        std::vector<ModelRunReport> reports = runner.runModels(
            {SweepJob{&accel, &m0, 0.5}, SweepJob{&accel, &m1, 0.5},
             SweepJob{&accel, &m0, 1.0}});
        Fnv64 h;
        for (const ModelRunReport &r : reports)
            h.addRaw(reportFingerprint(r));
        fingerprints[idx++] = h.value();
    }
    EXPECT_EQ(fingerprints[0], fingerprints[1]);
    EXPECT_EQ(fingerprints[0], fingerprints[2]);
}

TEST(SweepRunner, LayerJobsMatchDirectRunLayerOp)
{
    const ModelInfo &model = findModel("SqueezeNet 1.1");
    Accelerator serial(smallConfig());
    serial.warmBdcCache(model, 0.5);
    LayerOpReport want = serial.runLayerOp(
        model, model.layers.front(), TrainingOp::InputGrad, 0.5);

    SweepRunner runner(2);
    const Accelerator &accel = runner.addAccelerator(smallConfig());
    std::vector<LayerOpReport> got = runner.runLayerOps(
        {SweepLayerJob{&accel, &model, &model.layers.front(),
                       TrainingOp::InputGrad, 0.5}});
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0].fprCycles, want.fprCycles);
    EXPECT_EQ(got[0].baseCycles, want.baseCycles);
    EXPECT_EQ(got[0].avgCyclesPerStep, want.avgCyclesPerStep);
    EXPECT_EQ(got[0].sampleStats.setCycles, want.sampleStats.setCycles);
}

TEST(PhaseRunner, BurstShardingIsBitIdenticalAcrossThreadCounts)
{
    // Bursts seed their generators from substreamSeed(base, burst), so
    // sharding a phase sample's bursts cannot change what any burst
    // simulates.
    const ModelInfo &model = findModel("VGG16");
    double cycles[3];
    uint64_t useful[3];
    int idx = 0;
    for (int threads : {1, 2, 8}) {
        SimEngine engine(threads);
        PhaseRunConfig prc;
        prc.tile = AcceleratorConfig::paperDefault().tile;
        prc.sampleSteps = 96; // several bursts
        prc.engine = &engine;
        PhaseRunResult r = runPhaseSample(
            model, model.layers.front(), TrainingOp::Forward, 0.5, prc);
        cycles[idx] = r.avgCyclesPerStep;
        useful[idx] = r.peStats.laneUseful;
        ++idx;
    }
    EXPECT_EQ(cycles[0], cycles[1]);
    EXPECT_EQ(cycles[0], cycles[2]);
    EXPECT_EQ(useful[0], useful[1]);
    EXPECT_EQ(useful[0], useful[2]);
}

TEST(SweepRunner, ParallelForCoversOrderedSlots)
{
    SweepRunner runner(4);
    std::vector<int> slots(57, 0);
    runner.parallelFor(slots.size(),
                       [&](size_t i) { slots[i] = static_cast<int>(i); });
    for (size_t i = 0; i < slots.size(); ++i)
        EXPECT_EQ(slots[i], static_cast<int>(i));
}

} // namespace
} // namespace fpraker
