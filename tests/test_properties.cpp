/**
 * @file
 * Cross-cutting property tests and contract (death) tests.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "accel/phase_runner.h"
#include "common/rng.h"
#include "numeric/reference.h"
#include "pe/baseline_pe.h"
#include "pe/fpraker_pe.h"
#include "tile/tile.h"
#include "trace/model_zoo.h"

namespace fpraker {
namespace {

std::vector<BFloat16>
randomValues(Rng &rng, size_t n, double sparsity = 0.2)
{
    std::vector<BFloat16> v(n);
    for (auto &x : v)
        x = rng.bernoulli(sparsity)
                ? BFloat16()
                : bf16(static_cast<float>(rng.gaussian(0.0, 2.0)));
    return v;
}

/**
 * Narrower accumulators can only shorten term streams: the OB
 * threshold tightens monotonically with the fraction width.
 */
class AccWidthMonotonicity : public ::testing::TestWithParam<int>
{
};

TEST_P(AccWidthMonotonicity, NarrowerAccumulatorNeverAddsCycles)
{
    int frac = GetParam();
    Rng rng(900 + frac);
    for (int trial = 0; trial < 30; ++trial) {
        MacPair pairs[8];
        for (int l = 0; l < 8; ++l) {
            auto v = randomValues(rng, 2, 0.2);
            pairs[l] = {v[0], v[1]};
        }
        PeConfig wide;
        PeConfig narrow;
        narrow.obThreshold = frac;
        FPRakerPe pe_w(wide), pe_n(narrow);
        EXPECT_LE(pe_n.processSet(pairs, 8), pe_w.processSet(pairs, 8))
            << "frac " << frac << " trial " << trial;
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, AccWidthMonotonicity,
                         ::testing::Values(4, 6, 8, 10));

TEST(Properties, SparserSerialSideProcessesFewerTerms)
{
    // Adding zeros to the serial operand strictly removes terms. (It
    // does NOT always remove cycles: dropping a lane can move the
    // set's emax and regroup the remaining lanes' shift windows, so
    // the cycle count may wobble by a cycle — only the work is
    // monotone.)
    Rng rng(41);
    for (int trial = 0; trial < 30; ++trial) {
        auto a = randomValues(rng, 8, 0.0);
        auto b = randomValues(rng, 8, 0.0);
        MacPair dense[8], sparse[8];
        for (int l = 0; l < 8; ++l) {
            dense[l] = {a[static_cast<size_t>(l)],
                        b[static_cast<size_t>(l)]};
            sparse[l] = dense[l];
        }
        // Zero half the serial operands.
        for (int l = 0; l < 8; l += 2)
            sparse[l].a = BFloat16();
        FPRakerPe pe_d((PeConfig()));
        FPRakerPe pe_s((PeConfig()));
        int c_dense = pe_d.processSet(dense, 8);
        int c_sparse = pe_s.processSet(sparse, 8);
        EXPECT_LE(pe_s.stats().termsProcessed,
                  pe_d.stats().termsProcessed);
        EXPECT_LE(c_sparse, c_dense + 1);
    }
}

TEST(Properties, ChunkFlushTimingDoesNotChangeTotals)
{
    // Flushing a chunk early must give the same running total as
    // letting tickMacs do it.
    Rng rng(43);
    auto a = randomValues(rng, 64, 0.1);
    auto b = randomValues(rng, 64, 0.1);
    AccumulatorConfig cfg;
    cfg.chunkSize = 32;
    ChunkedAccumulator lazy(cfg), eager(cfg);
    for (size_t i = 0; i < 64; ++i) {
        lazy.addProduct(a[i], b[i]);
        eager.addProduct(a[i], b[i]);
        if (i == 40)
            eager.flushChunk();
    }
    // Values differ only by rounding order of the explicit flush.
    EXPECT_NEAR(lazy.total(), eager.total(),
                1e-3f * (std::fabs(lazy.total()) + 1.0f));
}

TEST(Properties, PeProcessesLongStreamsWithoutStateLeak)
{
    // Stats and accumulator state stay coherent across thousands of
    // sets (regression guard for cursor/flag leaks between sets).
    Rng rng(44);
    FPRakerPe pe((PeConfig()));
    uint64_t last_sets = 0;
    for (int round = 0; round < 20; ++round) {
        auto a = randomValues(rng, 80, 0.3);
        auto b = randomValues(rng, 80, 0.3);
        pe.dot(a, b);
        EXPECT_EQ(pe.stats().sets, last_sets + 10);
        last_sets = pe.stats().sets;
        EXPECT_EQ(pe.stats().laneCycles(),
                  8 * pe.stats().setCycles);
        pe.reset();
    }
}

TEST(Properties, PhaseRunnerIsDeterministic)
{
    const ModelInfo &model = findModel("SNLI");
    PhaseRunConfig cfg;
    cfg.sampleSteps = 24;
    PhaseRunResult r1 = runPhaseSample(model, model.layers[0],
                                       TrainingOp::Forward, 0.5, cfg);
    PhaseRunResult r2 = runPhaseSample(model, model.layers[0],
                                       TrainingOp::Forward, 0.5, cfg);
    EXPECT_EQ(r1.avgCyclesPerStep, r2.avgCyclesPerStep);
    EXPECT_EQ(r1.peStats.laneUseful, r2.peStats.laneUseful);
    EXPECT_EQ(r1.peStats.termsObSkipped, r2.peStats.termsObSkipped);
}

TEST(Properties, DegenerateTileGeometriesWork)
{
    Rng rng(45);
    for (auto [rows, cols] : {std::pair<int, int>{1, 1}, {1, 8}, {8, 1}}) {
        TileConfig cfg;
        cfg.rows = rows;
        cfg.cols = cols;
        Tile tile(cfg);
        std::vector<TileStep> steps(4);
        for (auto &s : steps) {
            s.a = randomValues(rng, static_cast<size_t>(cols) * 8, 0.2);
            s.b = randomValues(rng, static_cast<size_t>(rows) * 8, 0.2);
        }
        TileRunResult res = tile.run(steps);
        EXPECT_GE(res.cycles, 4u);
        PeStats agg = tile.aggregateStats();
        EXPECT_EQ(agg.laneCycles(), agg.setCycles * 8u);
    }
}

TEST(Properties, BaselineCyclesIndependentOfValues)
{
    // The defining property of the bit-parallel baseline: its timing
    // never depends on the data.
    Rng rng(46);
    BaselinePe pe;
    auto zeros = std::vector<BFloat16>(64);
    auto dense = randomValues(rng, 64, 0.0);
    EXPECT_EQ(pe.dot(zeros, zeros), 8);
    EXPECT_EQ(pe.dot(dense, dense), 8);
}

#if GTEST_HAS_DEATH_TEST

TEST(Contracts, AccumulatorRejectsNonFinite)
{
    ExtendedAccumulator acc;
    BFloat16 inf = BFloat16::fromBits(0x7f80);
    EXPECT_DEATH(acc.addProduct(inf, bf16(1.0f)), "non-finite");
}

TEST(Contracts, PeRejectsWrongArity)
{
    FPRakerPe pe((PeConfig()));
    MacPair pairs[4] = {};
    EXPECT_DEATH(pe.processSet(pairs, 4), "arity");
}

TEST(Contracts, TileRejectsMalformedSteps)
{
    TileConfig cfg;
    Tile tile(cfg);
    std::vector<TileStep> steps(1);
    steps[0].a.resize(3); // wrong arity
    steps[0].b.resize(static_cast<size_t>(cfg.rows) * 8);
    EXPECT_DEATH(tile.run(steps), "expected");
}

TEST(Contracts, EncoderRejectsDenormalSignificand)
{
    TermEncoder enc;
    EXPECT_DEATH(enc.encodeSignificand(0x40), "normalized");
}

#endif // GTEST_HAS_DEATH_TEST

} // namespace
} // namespace fpraker
