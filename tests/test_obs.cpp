/**
 * @file
 * Tests for the observability layer (src/obs/): histogram bucket
 * semantics, per-thread shard aggregation under concurrent writers,
 * registry create-or-find and rendering, and Chrome trace_event file
 * well-formedness.
 *
 * The trace tests run after the disabled-collector test: the
 * process-wide TraceCollector can only be switched on, so the
 * off-state assertions must come first (gtest runs tests in
 * declaration order within a binary).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "api/json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/result_cache.h"
#include "sim/sim_memo.h"

namespace fpraker {
namespace {

TEST(Buckets, ExponentialLadder)
{
    obs::Buckets b = obs::Buckets::exponential(1.0, 2.0, 4);
    ASSERT_EQ(b.bounds.size(), 4u);
    EXPECT_DOUBLE_EQ(b.bounds[0], 1.0);
    EXPECT_DOUBLE_EQ(b.bounds[1], 2.0);
    EXPECT_DOUBLE_EQ(b.bounds[2], 4.0);
    EXPECT_DOUBLE_EQ(b.bounds[3], 8.0);
}

TEST(Buckets, LatencyLadderIsAscending)
{
    obs::Buckets b = obs::Buckets::latency();
    ASSERT_GE(b.bounds.size(), 2u);
    EXPECT_DOUBLE_EQ(b.bounds[0], 1e-6);
    for (size_t i = 1; i < b.bounds.size(); ++i)
        EXPECT_LT(b.bounds[i - 1], b.bounds[i]);
}

TEST(Histogram, BucketBoundariesAreUpperInclusive)
{
    obs::Buckets b;
    b.bounds = {1.0, 10.0, 100.0};
    obs::Histogram h(b);
    h.observe(0.5);    // <= 1       -> bucket 0
    h.observe(1.0);    // == bound   -> bucket 0 (Prometheus `le`)
    h.observe(1.001);  // > 1, <= 10 -> bucket 1
    h.observe(10.0);   //            -> bucket 1
    h.observe(100.0);  //            -> bucket 2
    h.observe(101.0);  // above all  -> +Inf

    obs::Histogram::Snapshot s = h.snapshot();
    ASSERT_EQ(s.bounds.size(), 3u);
    ASSERT_EQ(s.counts.size(), 4u); // bounds + implicit +Inf
    EXPECT_EQ(s.counts[0], 2u);
    EXPECT_EQ(s.counts[1], 2u);
    EXPECT_EQ(s.counts[2], 1u);
    EXPECT_EQ(s.counts[3], 1u);
    EXPECT_EQ(s.count, 6u);
    EXPECT_DOUBLE_EQ(s.sum, 0.5 + 1.0 + 1.001 + 10.0 + 100.0 + 101.0);
}

TEST(Histogram, ZeroAndNegativeLandInFirstBucket)
{
    obs::Buckets b;
    b.bounds = {1.0, 10.0};
    obs::Histogram h(b);
    h.observe(0.0);
    h.observe(-5.0);
    obs::Histogram::Snapshot s = h.snapshot();
    EXPECT_EQ(s.counts[0], 2u);
    EXPECT_EQ(s.count, 2u);
}

TEST(Counter, AggregatesAcrossConcurrentWriters)
{
    obs::Counter c;
    const int threads = 8;
    const uint64_t per_thread = 100000;
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t)
        workers.emplace_back([&] {
            for (uint64_t i = 0; i < per_thread; ++i)
                c.add();
        });
    for (std::thread &w : workers)
        w.join();
    EXPECT_EQ(c.value(), per_thread * threads);
}

TEST(Histogram, AggregatesAcrossConcurrentWriters)
{
    obs::Buckets b;
    b.bounds = {0.5, 1.5, 2.5};
    obs::Histogram h(b);
    const int threads = 8;
    const uint64_t per_thread = 49998; // divisible by 3
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t)
        workers.emplace_back([&] {
            for (uint64_t i = 0; i < per_thread; ++i)
                h.observe(static_cast<double>(i % 3)); // 0, 1, 2
        });
    for (std::thread &w : workers)
        w.join();
    obs::Histogram::Snapshot s = h.snapshot();
    EXPECT_EQ(s.count, per_thread * threads);
    // i%3 spreads evenly across the three finite buckets.
    EXPECT_EQ(s.counts[0], s.count / 3);
    EXPECT_EQ(s.counts[1], s.count / 3);
    EXPECT_EQ(s.counts[2], s.count / 3);
    EXPECT_EQ(s.counts[3], 0u);
    // 0+1+2 per triple: small integers accumulate exactly even
    // through the bit-packed CAS loop.
    EXPECT_DOUBLE_EQ(s.sum,
                     static_cast<double>(per_thread * threads));
}

TEST(Gauge, SetAndAdd)
{
    obs::Gauge g;
    g.set(42);
    EXPECT_EQ(g.value(), 42);
    g.add(-50);
    EXPECT_EQ(g.value(), -8);
}

TEST(Registry, SameNameAliasesOneInstrument)
{
    obs::Counter &a =
        obs::Registry::instance().counter("test.alias", "first");
    obs::Counter &b =
        obs::Registry::instance().counter("test.alias", "second");
    EXPECT_EQ(&a, &b);
}

TEST(Registry, SnapshotAndPromRendering)
{
    obs::Registry &reg = obs::Registry::instance();
    obs::Counter &c = reg.counter("test.render.hits", "test counter");
    obs::Gauge &g = reg.gauge("test.render.depth", "test gauge");
    obs::Buckets b;
    b.bounds = {0.001, 1.0};
    obs::Histogram &h =
        reg.histogram("test.render.seconds", "test histogram", b);
    c.add(3);
    g.set(-7);
    h.observe(0.0005);
    h.observe(0.5);
    h.observe(2.0);

    api::JsonValue snap = reg.snapshotJson();
    ASSERT_TRUE(snap.isObject());
    const api::JsonValue *counters = snap.find("counters");
    const api::JsonValue *gauges = snap.find("gauges");
    const api::JsonValue *hists = snap.find("histograms");
    ASSERT_TRUE(counters && gauges && hists);
    const api::JsonValue *cv = counters->find("test.render.hits");
    ASSERT_TRUE(cv);
    EXPECT_EQ(cv->intValue(), 3);
    const api::JsonValue *gv = gauges->find("test.render.depth");
    ASSERT_TRUE(gv);
    EXPECT_EQ(gv->intValue(), -7);
    const api::JsonValue *hv = hists->find("test.render.seconds");
    ASSERT_TRUE(hv);
    const api::JsonValue *counts = hv->find("counts");
    ASSERT_TRUE(counts && counts->isArray());
    ASSERT_EQ(counts->items().size(), 3u); // 2 bounds + +Inf
    EXPECT_EQ(counts->items()[0].intValue(), 1);
    EXPECT_EQ(counts->items()[1].intValue(), 1);
    EXPECT_EQ(counts->items()[2].intValue(), 1);
    EXPECT_EQ(hv->find("count")->intValue(), 3);

    // The snapshot must round-trip as JSON. Whole-tree equality is
    // deliberately not asserted: histogram sums serialize at fixed
    // decimal precision, so a reparsed sum may sit one ulp from the
    // accumulated double. Integer-valued fields must survive exactly.
    std::string parse_error;
    api::JsonValue reparsed =
        api::JsonValue::parse(snap.dump(), &parse_error);
    EXPECT_TRUE(parse_error.empty()) << parse_error;
    const api::JsonValue *rc = reparsed.find("counters");
    const api::JsonValue *rg = reparsed.find("gauges");
    const api::JsonValue *rh = reparsed.find("histograms");
    ASSERT_TRUE(rc && rg && rh);
    EXPECT_EQ(rc->find("test.render.hits")->intValue(), 3);
    EXPECT_EQ(rg->find("test.render.depth")->intValue(), -7);
    const api::JsonValue *rhist = rh->find("test.render.seconds");
    ASSERT_TRUE(rhist);
    EXPECT_TRUE(*rhist->find("counts") == *hv->find("counts"));
    EXPECT_EQ(rhist->find("count")->intValue(), 3);

    std::string prom = reg.renderProm();
    EXPECT_NE(prom.find("# TYPE fpraker_test_render_hits counter"),
              std::string::npos);
    EXPECT_NE(prom.find("fpraker_test_render_hits 3"),
              std::string::npos);
    EXPECT_NE(prom.find("fpraker_test_render_depth -7"),
              std::string::npos);
    // Cumulative buckets with the +Inf terminator.
    EXPECT_NE(prom.find("fpraker_test_render_seconds_bucket"
                        "{le=\"+Inf\"} 3"),
              std::string::npos);
    EXPECT_NE(prom.find("fpraker_test_render_seconds_count 3"),
              std::string::npos);
}

TEST(Registry, SnapshotHasWiredInstruments)
{
    // Instruments register at static init of the instrumented
    // translation units; fpraker_core is a static library, so touch
    // the memo and cache types here to make the linker keep their
    // objects (any real binary references them anyway).
    SimMemo memo(1u << 20);
    serve::ResultCache cache(1u << 20);
    api::JsonValue snap = obs::Registry::instance().snapshotJson();
    const api::JsonValue *counters = snap.find("counters");
    ASSERT_TRUE(counters);
    EXPECT_TRUE(counters->find("memo.hits"));
    EXPECT_TRUE(counters->find("cache.hits"));
}

// ---------------------------------------------------------- tracing

TEST(Trace, DisabledSpanRecordsNothing)
{
    obs::TraceCollector &tc = obs::TraceCollector::instance();
    ASSERT_FALSE(tc.enabled());
    size_t before = tc.eventCount();
    {
        obs::TraceSpan span("test", "disabled");
    }
    tc.instant("test", "disabled-instant");
    EXPECT_EQ(tc.eventCount(), before);
}

TEST(Trace, WriteProducesWellFormedTraceEvents)
{
    obs::TraceCollector &tc = obs::TraceCollector::instance();
    tc.enable();
    ASSERT_TRUE(tc.enabled());

    const int threads = 4;
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t)
        workers.emplace_back([&, t] {
            for (int i = 0; i < 8; ++i) {
                obs::TraceSpan span(
                    "test", "span:" + std::to_string(t) + ":" +
                                std::to_string(i));
            }
            tc.instant("test", "marker:" + std::to_string(t));
        });
    for (std::thread &w : workers)
        w.join();
    EXPECT_GE(tc.eventCount(),
              static_cast<size_t>(threads * 9));

    const std::string path = "test_obs_trace.json";
    ASSERT_TRUE(tc.writeTo(path));
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream buf;
    buf << in.rdbuf();
    std::remove(path.c_str());

    std::string parse_error;
    api::JsonValue doc =
        api::JsonValue::parse(buf.str(), &parse_error);
    ASSERT_TRUE(parse_error.empty()) << parse_error;
    ASSERT_TRUE(doc.isObject());
    const api::JsonValue *events = doc.find("traceEvents");
    ASSERT_TRUE(events && events->isArray());
    EXPECT_GE(events->items().size(),
              static_cast<size_t>(threads * 9));

    std::set<int64_t> tids;
    size_t complete = 0, instant = 0;
    for (const api::JsonValue &e : events->items()) {
        ASSERT_TRUE(e.isObject());
        const api::JsonValue *ph = e.find("ph");
        ASSERT_TRUE(ph);
        // Only X (complete) and i (instant) events: balanced by
        // construction, nothing to orphan.
        ASSERT_TRUE(ph->str() == "X" || ph->str() == "i");
        ASSERT_TRUE(e.find("cat"));
        ASSERT_TRUE(e.find("name"));
        ASSERT_TRUE(e.find("pid"));
        ASSERT_TRUE(e.find("tid"));
        const api::JsonValue *ts = e.find("ts");
        ASSERT_TRUE(ts);
        EXPECT_GE(ts->number(), 0.0);
        tids.insert(e.find("tid")->intValue());
        if (ph->str() == "X") {
            ++complete;
            const api::JsonValue *dur = e.find("dur");
            ASSERT_TRUE(dur);
            EXPECT_GE(dur->number(), 0.0);
        } else {
            ++instant;
        }
    }
    EXPECT_GE(complete, static_cast<size_t>(threads * 8));
    EXPECT_GE(instant, static_cast<size_t>(threads));
    // Each worker thread got its own tid in the merged stream.
    EXPECT_GE(tids.size(), static_cast<size_t>(threads));
}

} // namespace
} // namespace fpraker
