/**
 * @file
 * PR 7 forced-tier differential harness: every compiled slab_ops
 * dispatch tier (scalar/SSE2/AVX2/AVX-512) fuzzed against the fixed
 * scalar reference bodies, the FPRAKER_SIMD knob contract, and the
 * nibble-LUT / counts-table parity that the pshufb tiers rely on.
 * Tiers the host cannot execute skip, never fail. Everything here is
 * a bit-identity contract — no tolerances.
 */

#include <gtest/gtest.h>

#include <bit>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "numeric/slab_ops.h"
#include "numeric/term_encoder.h"
#include "numeric/term_lut.h"

namespace fpraker {
namespace {

BFloat16
randomFinite(Rng &rng, double zero_p)
{
    if (rng.bernoulli(zero_p))
        return BFloat16();
    for (;;) {
        BFloat16 v =
            BFloat16::fromBits(static_cast<uint16_t>(rng.next()));
        if (v.isFinite() && !v.isZero())
            return v;
    }
}

/** Extreme-exponent finite operand: subnormal-exponent (biased 0,
 *  nonzero mantissa), minimum-normal, or maximum-finite exponent. */
BFloat16
extremeFinite(Rng &rng)
{
    const uint16_t sign = rng.bernoulli(0.5) ? 0x8000u : 0u;
    const uint16_t man =
        static_cast<uint16_t>((rng.next() & 0x7fu) | 1u);
    switch (rng.uniformInt(int64_t(0), int64_t(2))) {
    case 0:
        return BFloat16::fromBits(static_cast<uint16_t>(sign | man));
    case 1:
        return BFloat16::fromBits(
            static_cast<uint16_t>(sign | (1u << 7) | man));
    default:
        return BFloat16::fromBits(
            static_cast<uint16_t>(sign | (254u << 7) | man));
    }
}

/** Scalar evaluation of the nibble table, exactly as the pshufb tiers
 *  compute it: optional x^3x fold in 16-bit width, then per-nibble
 *  popcount lookups. */
uint64_t
nibbleCount(const slab::NibbleCountLut &nib, int sig8)
{
    uint32_t t = static_cast<uint32_t>(sig8);
    if (nib.nafFold)
        t ^= t + (t << 1);
    uint64_t total = 0;
    for (; t; t >>= 4)
        total += nib.pop4[t & 0xf];
    return total;
}

class SimdTierTest : public ::testing::TestWithParam<slab::SimdTier>
{
  protected:
    void
    SetUp() override
    {
        if (!slab::tierCompiled(GetParam()))
            GTEST_SKIP() << "tier " << slab::tierName(GetParam())
                         << " not compiled into this build";
        if (!slab::tierSupported(GetParam()))
            GTEST_SKIP() << "tier " << slab::tierName(GetParam())
                         << " not supported by this host";
    }
};

TEST_P(SimdTierTest, CountTermsMatchesScalarReference)
{
    const slab::SimdTier tier = GetParam();
    Rng rng(0x51D0 + static_cast<int>(tier));
    for (TermEncoding enc :
         {TermEncoding::Canonical, TermEncoding::RawBits}) {
        const TermLut &lut = TermLut::of(enc);
        for (double zero_p : {0.0, 0.3, 0.95, 1.0}) {
            // Sizes straddle the 16/32/64-value strides of every tier
            // plus every ragged-tail shape below them.
            for (size_t n :
                 {size_t(0), size_t(1), size_t(7), size_t(15),
                  size_t(16), size_t(31), size_t(32), size_t(33),
                  size_t(63), size_t(64), size_t(65), size_t(127),
                  size_t(128), size_t(1000)}) {
                std::vector<BFloat16> v(n);
                for (size_t i = 0; i < n; ++i)
                    v[i] = rng.bernoulli(0.25)
                               ? extremeFinite(rng)
                               : randomFinite(rng, zero_p);
                uint64_t z_ref = 7, t_ref = 9, z = 7, t = 9;
                slab::countTermsScalar(v.data(), n, lut.countsTable(),
                                       &z_ref, &t_ref);
                slab::countTermsAt(tier, v.data(), n,
                                   lut.countsTable(), lut.nibbleLut(),
                                   &z, &t);
                ASSERT_EQ(z_ref, z)
                    << "tier=" << slab::tierName(tier) << " n=" << n;
                ASSERT_EQ(t_ref, t)
                    << "tier=" << slab::tierName(tier) << " n=" << n;
            }
        }
    }
}

TEST_P(SimdTierTest, CountTermsAllZeroSlab)
{
    const slab::SimdTier tier = GetParam();
    const TermLut &lut = TermLut::of(TermEncoding::Canonical);
    for (size_t n : {size_t(1), size_t(16), size_t(64), size_t(97)}) {
        std::vector<BFloat16> v(n); // value-initialized: all zero
        uint64_t z = 0, t = 0;
        slab::countTermsAt(tier, v.data(), n, lut.countsTable(),
                           lut.nibbleLut(), &z, &t);
        EXPECT_EQ(n, z) << slab::tierName(tier);
        EXPECT_EQ(0u, t) << slab::tierName(tier);
    }
}

TEST_P(SimdTierTest, PackBf16MatchesScalarReference)
{
    const slab::SimdTier tier = GetParam();
    Rng rng(0xFACE + static_cast<int>(tier));
    for (size_t n : {size_t(1), size_t(8), size_t(15), size_t(16),
                     size_t(17), size_t(31), size_t(32), size_t(33),
                     size_t(64), size_t(65), size_t(333)}) {
        std::vector<int16_t> exp(n);
        std::vector<uint8_t> man(n), neg(n);
        for (size_t i = 0; i < n; ++i) {
            if (rng.bernoulli(0.2)) {
                exp[i] = man[i] = neg[i] = 0; // zero value
                continue;
            }
            // Full field ranges, including the extreme exponents 1 and
            // 254 and out-of-range planes the kernels must mask.
            switch (rng.uniformInt(int64_t(0), int64_t(3))) {
            case 0:
                exp[i] = 1;
                break;
            case 1:
                exp[i] = 254;
                break;
            case 2:
                exp[i] = static_cast<int16_t>(
                    rng.uniformInt(int64_t(1), int64_t(254)));
                break;
            default:
                exp[i] = static_cast<int16_t>(rng.next());
                break;
            }
            man[i] = static_cast<uint8_t>(rng.next());
            neg[i] = static_cast<uint8_t>(rng.next() & 1);
        }
        std::vector<BFloat16> ref(n), got(n);
        slab::packBf16Scalar(exp.data(), man.data(), neg.data(), n,
                             ref.data());
        slab::packBf16At(tier, exp.data(), man.data(), neg.data(), n,
                         got.data());
        ASSERT_EQ(0, std::memcmp(ref.data(), got.data(),
                                 n * sizeof(BFloat16)))
            << "tier=" << slab::tierName(tier) << " n=" << n;
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllTiers, SimdTierTest,
    ::testing::Values(slab::SimdTier::Scalar, slab::SimdTier::Sse2,
                      slab::SimdTier::Avx2, slab::SimdTier::Avx512),
    [](const ::testing::TestParamInfo<slab::SimdTier> &info) {
        return std::string(slab::tierName(info.param));
    });

TEST(SimdKnob, TierNamesRoundTrip)
{
    for (int i = 0; i < slab::kNumSimdTiers; ++i) {
        const auto tier = static_cast<slab::SimdTier>(i);
        slab::SimdTier parsed;
        ASSERT_TRUE(slab::parseSimdTier(slab::tierName(tier), &parsed));
        EXPECT_EQ(tier, parsed);
    }
}

TEST(SimdKnob, RejectsUnknownSpellings)
{
    slab::SimdTier parsed;
    EXPECT_FALSE(slab::parseSimdTier("", &parsed));
    EXPECT_FALSE(slab::parseSimdTier("AVX2", &parsed));
    EXPECT_FALSE(slab::parseSimdTier("avx-512", &parsed));
    EXPECT_FALSE(slab::parseSimdTier("sse4", &parsed));
    EXPECT_FALSE(slab::parseSimdTier("best", &parsed));
    EXPECT_FALSE(slab::parseSimdTier(nullptr, &parsed));
}

TEST(SimdKnob, ActiveTierHonorsEnvironment)
{
    const slab::SimdTier active = slab::activeTier();
    ASSERT_TRUE(slab::tierCompiled(active));
    ASSERT_TRUE(slab::tierSupported(active));
    EXPECT_STREQ(slab::tierName(active), slab::simdLevel());
    const char *env = std::getenv("FPRAKER_SIMD");
    if (env != nullptr && *env != '\0') {
        // Forced: the knob pins the tier verbatim (an invalid value
        // would have been fatal before any test ran).
        EXPECT_STREQ(env, slab::simdLevel());
    } else {
        // Unforced: the widest supported tier wins.
        slab::SimdTier best = slab::SimdTier::Scalar;
        for (int i = 0; i < slab::kNumSimdTiers; ++i) {
            const auto tier = static_cast<slab::SimdTier>(i);
            if (slab::tierSupported(tier))
                best = tier;
        }
        EXPECT_EQ(best, active);
    }
}

TEST(NibbleLut, ParityWithCountsTableOnReachableDomain)
{
    // The pshufb tiers evaluate the 16-entry nibble table where the
    // memory tiers walk the 256-entry counts table; both must agree on
    // every reachable significand ({0} u [128, 255]).
    for (TermEncoding enc :
         {TermEncoding::Canonical, TermEncoding::RawBits}) {
        const TermLut &lut = TermLut::of(enc);
        const slab::NibbleCountLut &nib = lut.nibbleLut();
        EXPECT_EQ(enc == TermEncoding::Canonical, nib.nafFold);
        EXPECT_EQ(0u, nibbleCount(nib, 0));
        for (int sig = 0x80; sig <= 0xff; ++sig)
            ASSERT_EQ(lut.countsTable()[sig], nibbleCount(nib, sig))
                << "enc=" << static_cast<int>(enc) << " sig=" << sig;
    }
}

TEST(NibbleLut, FoldIdentityMatchesEncoderOnLegalDomain)
{
    // The fold rests on termCount(x) == popcount(x ^ 3x) for the NAF
    // recoding (3x taken at full width). Pin it against the encoder
    // itself over its whole legal domain — zero plus every normalized
    // significand — so a future encoder change cannot silently break
    // the SIMD count.
    const TermEncoder naf(TermEncoding::Canonical);
    const TermEncoder raw(TermEncoding::RawBits);
    for (uint32_t x = 0; x < 256; x = (x == 0 ? 0x80 : x + 1)) {
        EXPECT_EQ(naf.encodeSignificand(static_cast<int>(x)).size(),
                  std::popcount(x ^ (3u * x)))
            << "x=" << x;
        EXPECT_EQ(raw.encodeSignificand(static_cast<int>(x)).size(),
                  std::popcount(x))
            << "x=" << x;
    }
}

} // namespace
} // namespace fpraker
