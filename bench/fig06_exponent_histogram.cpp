/** Legacy shim for `fpraker run fig06` — the experiment body lives in
 *  src/api/experiments/fig06_exponent_histogram.cpp. */
#include "api/driver.h"

int
main(int argc, char **argv)
{
    return fpraker::api::experimentMain({"fig06"}, argc, argv);
}
