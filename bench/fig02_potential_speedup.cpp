/** Legacy shim for `fpraker run fig02` — the experiment body lives in
 *  src/api/experiments/fig02_potential_speedup.cpp. */
#include "api/driver.h"

int
main(int argc, char **argv)
{
    return fpraker::api::experimentMain({"fig02"}, argc, argv);
}
