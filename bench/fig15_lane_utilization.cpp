/** Legacy shim for `fpraker run fig15` — the experiment body lives in
 *  src/api/experiments/fig15_lane_utilization.cpp. */
#include "api/driver.h"

int
main(int argc, char **argv)
{
    return fpraker::api::experimentMain({"fig15"}, argc, argv);
}
