/**
 * @file
 * Fig. 15 — breakdown of FPRaker lane-cycles: useful work vs the four
 * stall categories (no-term imbalance, limited shift range, inter-PE
 * synchronization, shared exponent block).
 */

#include "bench_common.h"

namespace fpraker {
namespace {

int
run()
{
    bench::banner("Fig. 15", "lane-cycle breakdown (lane efficiency)",
                  "cross-lane term imbalance ('no term') is the largest "
                  "stall (~33% average, worst for NCF ~55%); shift-range "
                  "and inter-PE stalls small; exponent stalls noticeable "
                  "only for effectively-4b ResNet18-Q and SNLI");

    AcceleratorConfig cfg = AcceleratorConfig::paperDefault();
    cfg.sampleSteps = bench::sampleSteps();
    Accelerator accel(cfg);

    Table t({"model", "useful", "no term", "shift range", "inter-PE",
             "exponent"});
    for (const auto &model : modelZoo()) {
        ModelRunReport r = accel.runModel(model, bench::kDefaultProgress);
        double lc = r.activity.laneCycles();
        t.addRow({model.name, Table::pct(r.activity.laneUseful / lc),
                  Table::pct(r.activity.laneNoTerm / lc),
                  Table::pct(r.activity.laneShiftRange / lc),
                  Table::pct(r.activity.laneInterPe / lc),
                  Table::pct(r.activity.laneExponent / lc)});
    }
    t.print();
    return 0;
}

} // namespace
} // namespace fpraker

int
main()
{
    return fpraker::run();
}
