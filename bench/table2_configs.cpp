/** Legacy shim for `fpraker run table2` — the experiment body lives in
 *  src/api/experiments/table2_configs.cpp. */
#include "api/driver.h"

int
main(int argc, char **argv)
{
    return fpraker::api::experimentMain({"table2"}, argc, argv);
}
