/**
 * @file
 * Fig. 20 — lane-cycle breakdown as the number of rows per tile grows:
 * inter-PE synchronization and no-term (waiting-for-sibling) stalls
 * increase with more PEs sharing one serial-operand stream.
 */

#include "bench_common.h"

namespace fpraker {
namespace {

int
run()
{
    bench::banner("Fig. 20", "cycle breakdown vs rows per tile",
                  "useful share shrinks with rows; no-term and inter-PE "
                  "stalls grow");

    const int rows_options[] = {2, 4, 8, 16};
    const int pe_budget = 36 * 64;

    Table t({"model", "rows", "useful", "no term", "shift range",
             "inter-PE", "exponent"});
    for (const auto &model : modelZoo()) {
        for (int rows : rows_options) {
            AcceleratorConfig cfg = AcceleratorConfig::paperDefault();
            cfg.sampleSteps = bench::sampleSteps(64);
            cfg.tile.rows = rows;
            cfg.fprTiles = pe_budget / (rows * cfg.tile.cols);
            Accelerator accel(cfg);
            ModelRunReport r =
                accel.runModel(model, bench::kDefaultProgress);
            double lc = r.activity.laneCycles();
            t.addRow({model.name, std::to_string(rows),
                      Table::pct(r.activity.laneUseful / lc),
                      Table::pct(r.activity.laneNoTerm / lc),
                      Table::pct(r.activity.laneShiftRange / lc),
                      Table::pct(r.activity.laneInterPe / lc),
                      Table::pct(r.activity.laneExponent / lc)});
        }
    }
    t.print();
    return 0;
}

} // namespace
} // namespace fpraker

int
main()
{
    return fpraker::run();
}
