/**
 * @file
 * Fig. 20 — lane-cycle breakdown as the number of rows per tile grows:
 * inter-PE synchronization and no-term (waiting-for-sibling) stalls
 * increase with more PEs sharing one serial-operand stream.
 */

#include "bench_common.h"

namespace fpraker {
namespace {

int
run(int argc, char **argv)
{
    bench::banner("Fig. 20", "cycle breakdown vs rows per tile",
                  "useful share shrinks with rows; no-term and inter-PE "
                  "stalls grow");

    const int rows_options[] = {2, 4, 8, 16};
    const int pe_budget = 36 * 64;

    SweepRunner runner(bench::threads(argc, argv));
    std::vector<const Accelerator *> variants;
    for (int rows : rows_options) {
        AcceleratorConfig cfg = AcceleratorConfig::paperDefault();
        cfg.sampleSteps = bench::sampleSteps(64);
        cfg.tile.rows = rows;
        cfg.fprTiles = pe_budget / (rows * cfg.tile.cols);
        variants.push_back(&runner.addAccelerator(cfg));
    }
    std::vector<ModelRunReport> reports =
        runner.runModels(bench::zooJobs(variants));
    const size_t n_models = modelZoo().size();

    Table t({"model", "rows", "useful", "no term", "shift range",
             "inter-PE", "exponent"});
    for (size_t m = 0; m < n_models; ++m) {
        for (size_t i = 0; i < 4; ++i) {
            const ModelRunReport &r = reports[i * n_models + m];
            double lc = r.activity.laneCycles();
            t.addRow({r.model, std::to_string(rows_options[i]),
                      Table::pct(r.activity.laneUseful / lc),
                      Table::pct(r.activity.laneNoTerm / lc),
                      Table::pct(r.activity.laneShiftRange / lc),
                      Table::pct(r.activity.laneInterPe / lc),
                      Table::pct(r.activity.laneExponent / lc)});
        }
    }
    t.print();
    return 0;
}

} // namespace
} // namespace fpraker

int
main(int argc, char **argv)
{
    return fpraker::run(argc, argv);
}
