/** Legacy shim for `fpraker run fig20` — the experiment body lives in
 *  src/api/experiments/fig20_rows_cycles.cpp. */
#include "api/driver.h"

int
main(int argc, char **argv)
{
    return fpraker::api::experimentMain({"fig20"}, argc, argv);
}
