/** Legacy shim running the four ablation experiments in sequence
 *  (`fpraker run ablation_encoding ablation_window ablation_buffer
 *  ablation_exponent`) — bodies live in
 *  src/api/experiments/ablations.cpp. */
#include "api/driver.h"

int
main(int argc, char **argv)
{
    return fpraker::api::experimentMain(
        {"ablation_encoding", "ablation_window", "ablation_buffer",
         "ablation_exponent"},
        argc, argv);
}
