/**
 * @file
 * Ablations of FPRaker's design choices (DESIGN.md section 5), beyond
 * what the paper's figures cover directly:
 *
 *   (a) canonical vs raw-bit term encoding,
 *   (b) the per-cycle shifter window (maxDelta),
 *   (c) B-buffer run-ahead depth,
 *   (d) exponent-block sharing (the 2-cycle set floor).
 *
 * Each sweep reports geomean iso-area speedup across the model zoo so
 * the cost/benefit of each area optimization is visible.
 */

#include <functional>

#include "bench_common.h"

namespace fpraker {
namespace {

double
geomeanSpeedup(SweepRunner &runner, const AcceleratorConfig &cfg)
{
    const Accelerator &accel = runner.addAccelerator(cfg);
    std::vector<double> speedups;
    for (const ModelRunReport &r :
         runner.runModels(bench::zooJobs({&accel})))
        speedups.push_back(r.speedup());
    return geomean(speedups);
}

int
run(int argc, char **argv)
{
    bench::banner("Ablations",
                  "design-choice sweeps (encoding, shifter window, "
                  "buffers, exponent sharing)",
                  "canonical encoding and OB skipping carry the design; "
                  "the 3-position window and shared exponent blocks "
                  "cost little performance for large area savings");

    AcceleratorConfig base_cfg = AcceleratorConfig::paperDefault();
    base_cfg.sampleSteps = bench::sampleSteps(48);
    SweepRunner runner(bench::threads(argc, argv));

    {
        Table t({"term encoding", "geomean speedup"});
        for (TermEncoding enc :
             {TermEncoding::Canonical, TermEncoding::RawBits}) {
            AcceleratorConfig cfg = base_cfg;
            cfg.tile.pe.encoding = enc;
            t.addRow({enc == TermEncoding::Canonical ? "canonical (NAF)"
                                                     : "raw bits",
                      Table::cell(geomeanSpeedup(runner, cfg))});
        }
        t.print();
    }

    {
        std::printf("\n");
        Table t({"shifter window (maxDelta)", "geomean speedup"});
        for (int delta : {0, 1, 3, 7, 1 << 20}) {
            AcceleratorConfig cfg = base_cfg;
            cfg.tile.pe.maxDelta = delta;
            t.addRow({delta > 100 ? "unlimited" : std::to_string(delta),
                      Table::cell(geomeanSpeedup(runner, cfg))});
        }
        t.print();
        std::printf("(the paper picks 3 as its area/performance "
                    "trade-off; in this model the window costs more "
                    "than the paper's few shift-range stalls suggest "
                    "because a stalled lane also holds back the other "
                    "PEs sharing its term stream)\n");
    }

    {
        std::printf("\n");
        Table t({"B-buffer depth", "geomean speedup"});
        for (int depth : {1, 2, 4}) {
            AcceleratorConfig cfg = base_cfg;
            cfg.tile.bufferDepth = depth;
            t.addRow({std::to_string(depth),
                      Table::cell(geomeanSpeedup(runner, cfg))});
        }
        t.print();
        std::printf("(depth 1 already hides inter-PE stalls, matching "
                    "the paper's observation)\n");
    }

    {
        std::printf("\n");
        Table t({"exponent block", "geomean speedup"});
        for (int floor_cycles : {1, 2, 4}) {
            AcceleratorConfig cfg = base_cfg;
            cfg.tile.pe.exponentFloor = floor_cycles;
            const char *label = floor_cycles == 1
                                    ? "private (floor 1)"
                                    : floor_cycles == 2
                                          ? "shared by 2 (floor 2)"
                                          : "shared by 4 (floor 4)";
            t.addRow({label, Table::cell(geomeanSpeedup(runner, cfg))});
        }
        t.print();
        std::printf("(sharing between PE pairs costs little because "
                    "most sets need >= 2 cycles anyway)\n");
    }
    return 0;
}

} // namespace
} // namespace fpraker

int
main(int argc, char **argv)
{
    return fpraker::run(argc, argv);
}
