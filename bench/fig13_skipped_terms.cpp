/** Legacy shim for `fpraker run fig13` — the experiment body lives in
 *  src/api/experiments/fig13_skipped_terms.cpp. */
#include "api/driver.h"

int
main(int argc, char **argv)
{
    return fpraker::api::experimentMain({"fig13"}, argc, argv);
}
