/**
 * @file
 * Fig. 13 — breakdown of the terms FPRaker skips: zero terms (empty
 * slots after canonical encoding, including zero values) vs non-zero
 * terms retired as out-of-bounds.
 */

#include "bench_common.h"

namespace fpraker {
namespace {

int
run(int argc, char **argv)
{
    bench::banner("Fig. 13", "breakdown of skipped terms",
                  "zero terms dominate everywhere; OB skipping adds "
                  "~5-10% more for ResNet50-S2/Detectron2 and least for "
                  "already-sparse VGG16/SNLI");

    AcceleratorConfig cfg = AcceleratorConfig::paperDefault();
    cfg.sampleSteps = bench::sampleSteps();
    SweepRunner runner(bench::threads(argc, argv));
    const Accelerator &accel = runner.addAccelerator(cfg);
    std::vector<ModelRunReport> reports =
        runner.runModels(bench::zooJobs({&accel}));

    Table t({"model", "zero terms", "out-of-bounds terms",
             "OB gain [pp of slots]", "skipped of all slots"});
    for (const ModelRunReport &r : reports) {
        double zero = r.activity.termsZeroSkipped;
        double ob = r.activity.termsObSkipped;
        double skipped = zero + ob;
        double slots = r.activity.macs * kTermSlots;
        t.addRow({r.model, Table::pct(zero / skipped),
                  Table::pct(ob / skipped),
                  Table::cell(ob / slots * 100.0, 2),
                  Table::pct(skipped / slots)});
    }
    t.print();
    return 0;
}

} // namespace
} // namespace fpraker

int
main(int argc, char **argv)
{
    return fpraker::run(argc, argv);
}
