/**
 * @file
 * Fig. 12 — energy breakdown of FPRaker vs the baseline: off-chip
 * DRAM, on-chip SRAM, and core (FPRaker's core split into compute /
 * control / accumulation), normalized to the baseline total.
 */

#include "bench_common.h"

namespace fpraker {
namespace {

int
run()
{
    bench::banner("Fig. 12",
                  "energy breakdown, normalized to baseline total",
                  "FPRaker core well below baseline core; on-chip "
                  "portion comparable; off-chip shrinks with BDC; "
                  "accumulation the largest FPRaker core component");

    AcceleratorConfig cfg = AcceleratorConfig::paperDefault();
    cfg.sampleSteps = bench::sampleSteps();
    Accelerator accel(cfg);

    Table t({"model", "fpr core(comp/ctl/accum)", "fpr sram", "fpr dram",
             "fpr total", "base core", "base sram", "base dram"});
    for (const auto &model : modelZoo()) {
        ModelRunReport r = accel.runModel(model, bench::kDefaultProgress);
        double norm = r.baseEnergy.totalPj();
        auto pct = [&](double pj) { return Table::pct(pj / norm); };
        std::string core_split =
            pct(r.fprEnergy.core.computePj) + "/" +
            pct(r.fprEnergy.core.controlPj) + "/" +
            pct(r.fprEnergy.core.accumulationPj);
        t.addRow({model.name, core_split, pct(r.fprEnergy.sramPj),
                  pct(r.fprEnergy.dramPj), pct(r.fprEnergy.totalPj()),
                  pct(r.baseEnergy.core.totalPj()),
                  pct(r.baseEnergy.sramPj), pct(r.baseEnergy.dramPj)});
    }
    t.print();
    return 0;
}

} // namespace
} // namespace fpraker

int
main()
{
    return fpraker::run();
}
