/** Legacy shim for `fpraker run fig12` — the experiment body lives in
 *  src/api/experiments/fig12_energy_breakdown.cpp. */
#include "api/driver.h"

int
main(int argc, char **argv)
{
    return fpraker::api::experimentMain({"fig12"}, argc, argv);
}
