/** Legacy shim for `fpraker run fig16` — the experiment body lives in
 *  src/api/experiments/fig16_obs_sync.cpp. */
#include "api/driver.h"

int
main(int argc, char **argv)
{
    return fpraker::api::experimentMain({"fig16"}, argc, argv);
}
