/**
 * @file
 * Fig. 19 — FPRaker speedup vs the number of PE rows per tile
 * (2/4/8/16) at a fixed total PE budget: more rows share one serial
 * operand stream, increasing intra-column synchronization.
 */

#include "bench_common.h"

namespace fpraker {
namespace {

int
run()
{
    bench::banner("Fig. 19", "speedup vs rows per tile",
                  "increasing rows per tile costs ~6% on average from "
                  "2 to 16 rows (more PEs synchronized on one A "
                  "stream)");

    const int rows_options[] = {2, 4, 8, 16};
    const int pe_budget = 36 * 64; // total PEs at iso-compute area

    std::vector<std::string> headers = {"model"};
    for (int rows : rows_options)
        headers.push_back(std::to_string(rows) + " rows");
    Table t(headers);

    std::vector<std::vector<double>> per_rows(4);
    for (const auto &model : modelZoo()) {
        std::vector<std::string> row = {model.name};
        for (size_t i = 0; i < 4; ++i) {
            AcceleratorConfig cfg = AcceleratorConfig::paperDefault();
            cfg.sampleSteps = bench::sampleSteps(64);
            cfg.tile.rows = rows_options[i];
            cfg.fprTiles = pe_budget / (rows_options[i] * cfg.tile.cols);
            Accelerator accel(cfg);
            ModelRunReport r =
                accel.runModel(model, bench::kDefaultProgress);
            per_rows[i].push_back(r.speedup());
            row.push_back(Table::cell(r.speedup()));
        }
        t.addRow(row);
    }
    std::vector<std::string> geo = {"Geomean"};
    for (size_t i = 0; i < 4; ++i)
        geo.push_back(Table::cell(geomean(per_rows[i])));
    t.addRow(geo);
    t.print();
    return 0;
}

} // namespace
} // namespace fpraker

int
main()
{
    return fpraker::run();
}
