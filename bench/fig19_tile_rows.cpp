/** Legacy shim for `fpraker run fig19` — the experiment body lives in
 *  src/api/experiments/fig19_tile_rows.cpp. */
#include "api/driver.h"

int
main(int argc, char **argv)
{
    return fpraker::api::experimentMain({"fig19"}, argc, argv);
}
