/** Legacy shim for `fpraker run table3` — the experiment body lives in
 *  src/api/experiments/table3_area_power.cpp. */
#include "api/driver.h"

int
main(int argc, char **argv)
{
    return fpraker::api::experimentMain({"table3"}, argc, argv);
}
