/** Legacy shim for `fpraker run fig17` — the experiment body lives in
 *  src/api/experiments/fig17_accuracy.cpp. */
#include "api/driver.h"

int
main(int argc, char **argv)
{
    return fpraker::api::experimentMain({"fig17"}, argc, argv);
}
