/**
 * @file
 * google-benchmark microkernels for the core building blocks: term
 * encoding, accumulation, PE set processing, tile steps, and base-delta
 * compression. These measure simulator throughput (host-side), which
 * bounds how much workload the figure harnesses can sample.
 */

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "compress/base_delta.h"
#include "numeric/term_encoder.h"
#include "pe/baseline_pe.h"
#include "pe/fpraker_pe.h"
#include "tile/tile.h"
#include "trace/tensor_gen.h"

namespace fpraker {
namespace {

void
BM_TermEncodeCanonical(benchmark::State &state)
{
    TermEncoder enc(TermEncoding::Canonical);
    int sig = 0x80;
    for (auto _ : state) {
        benchmark::DoNotOptimize(enc.encodeSignificand(sig));
        sig = 0x80 | ((sig + 17) & 0x7f);
    }
}
BENCHMARK(BM_TermEncodeCanonical);

void
BM_TermEncodeRaw(benchmark::State &state)
{
    TermEncoder enc(TermEncoding::RawBits);
    int sig = 0x80;
    for (auto _ : state) {
        benchmark::DoNotOptimize(enc.encodeSignificand(sig));
        sig = 0x80 | ((sig + 17) & 0x7f);
    }
}
BENCHMARK(BM_TermEncodeRaw);

void
BM_AccumulatorAddProduct(benchmark::State &state)
{
    ExtendedAccumulator acc;
    Rng rng(1);
    BFloat16 a = bf16(1.37f), b = bf16(-0.61f);
    for (auto _ : state) {
        acc.addProduct(a, b);
        benchmark::DoNotOptimize(acc);
    }
}
BENCHMARK(BM_AccumulatorAddProduct);

MacPair *
randomPairs(int n, double sparsity)
{
    static std::vector<MacPair> pairs;
    pairs.resize(static_cast<size_t>(n));
    Rng rng(7);
    for (auto &p : pairs) {
        auto val = [&]() {
            if (rng.bernoulli(sparsity))
                return BFloat16();
            return bf16(static_cast<float>(rng.gaussian(0.0, 4.0)));
        };
        p = MacPair{val(), val()};
    }
    return pairs.data();
}

void
BM_FprPeProcessSet(benchmark::State &state)
{
    PeConfig cfg;
    FPRakerPe pe(cfg);
    MacPair *pairs = randomPairs(8 * 64, state.range(0) / 100.0);
    int i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(pe.processSet(pairs + 8 * i, 8));
        i = (i + 1) % 64;
    }
    state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_FprPeProcessSet)->Arg(0)->Arg(35)->Arg(80);

void
BM_BaselinePeProcessSet(benchmark::State &state)
{
    PeConfig cfg;
    BaselinePe pe(cfg);
    MacPair *pairs = randomPairs(8 * 64, 0.35);
    int i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(pe.processSet(pairs + 8 * i, 8));
        i = (i + 1) % 64;
    }
    state.SetItemsProcessed(state.iterations() * 8);
}
BENCHMARK(BM_BaselinePeProcessSet);

void
BM_TileStep(benchmark::State &state)
{
    TileConfig cfg;
    Tile tile(cfg);
    Rng rng(11);
    ValueProfile p;
    p.sparsity = 0.35;
    p.mantissaBits = 4;
    p.bitDensity = 0.25;
    TensorGenerator gen(p, 3);
    std::vector<TileStep> steps(16);
    for (auto &s : steps) {
        s.a = gen.generate(static_cast<size_t>(cfg.cols) * 8);
        s.b = gen.generate(static_cast<size_t>(cfg.rows) * 8);
    }
    for (auto _ : state) {
        benchmark::DoNotOptimize(tile.run(steps));
        tile.resetAccumulators();
    }
    state.SetItemsProcessed(state.iterations() * 16 * 512);
}
BENCHMARK(BM_TileStep);

void
BM_BdcEncodeDecode(benchmark::State &state)
{
    ValueProfile p;
    p.expSigma = 2.0;
    p.expCorr = 0.9;
    TensorGenerator gen(p, 5);
    auto values = gen.generate(4096);
    BaseDeltaCodec codec;
    for (auto _ : state) {
        auto stream = codec.encode(values);
        benchmark::DoNotOptimize(codec.decode(stream, values.size()));
    }
    state.SetItemsProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_BdcEncodeDecode);

} // namespace
} // namespace fpraker

BENCHMARK_MAIN();
