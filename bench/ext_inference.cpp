/** Legacy shim for `fpraker run ext_inference` — the experiment body lives in
 *  src/api/experiments/ext_inference.cpp. */
#include "api/driver.h"

int
main(int argc, char **argv)
{
    return fpraker::api::experimentMain({"ext_inference"}, argc, argv);
}
