/**
 * @file
 * Extension (paper section VII) — inference with FPRaker: "while we
 * evaluated FPRaker for training, it can naturally also be used for
 * inference", particularly for models that still need floating point
 * (language and recommendation models). This harness runs the
 * forward pass only, with frozen (end-of-training) value statistics.
 */

#include "bench_common.h"

namespace fpraker {
namespace {

int
run()
{
    bench::banner("Extension: inference",
                  "forward-pass-only speedup at end-of-training "
                  "statistics",
                  "floating-point-dependent models (SNLI, NCF, Bert) "
                  "still benefit; the fixed-point-friendly CNNs would "
                  "use integer accelerators in deployment");

    AcceleratorConfig cfg = AcceleratorConfig::paperDefault();
    cfg.sampleSteps = bench::sampleSteps(64);
    Accelerator accel(cfg);

    Table t({"model", "inference speedup", "serialized tensor"});
    std::vector<double> speedups;
    for (const auto &model : modelZoo()) {
        double fpr = 0, base = 0;
        TensorKind serial = TensorKind::Activation;
        for (const auto &layer : model.layers) {
            LayerOpReport r = accel.runLayerOp(model, layer,
                                               TrainingOp::Forward, 1.0);
            fpr += r.fprCycles;
            base += r.baseCycles;
            serial = r.serialSide;
        }
        double speedup = base / fpr;
        speedups.push_back(speedup);
        t.addRow({model.name, Table::cell(speedup),
                  tensorLabel(serial)});
    }
    t.addRow({"Geomean", Table::cell(geomean(speedups)), "-"});
    t.print();
    return 0;
}

} // namespace
} // namespace fpraker

int
main()
{
    return fpraker::run();
}
