/** Legacy shim for `fpraker run ext_progressive` — the experiment body lives in
 *  src/api/experiments/ext_progressive_precision.cpp. */
#include "api/driver.h"

int
main(int argc, char **argv)
{
    return fpraker::api::experimentMain({"ext_progressive"}, argc, argv);
}
