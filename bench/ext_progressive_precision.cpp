/**
 * @file
 * Extension (paper section VII) — progressive-precision training:
 * "training can start with lower precision and increase the precision
 * per epoch near convergence. FPRaker can adapt dynamically to
 * different precisions". This harness runs a precision schedule over
 * the training-progress axis: the accumulator's effective width (the
 * OB threshold) starts narrow and widens toward convergence, and
 * FPRaker converts each stage's slack directly into speedup — the
 * fixed-width baseline gains nothing.
 */

#include "bench_common.h"

namespace fpraker {
namespace {

/** The schedule: accumulator fraction bits per training progress. */
int
scheduledFracBits(double progress)
{
    if (progress < 0.25)
        return 6;
    if (progress < 0.5)
        return 8;
    if (progress < 0.8)
        return 10;
    return 12;
}

int
run()
{
    bench::banner("Extension: progressive precision",
                  "accumulator width scheduled over training progress",
                  "speedup is highest in the low-precision early stages "
                  "and converges to the fixed-width result near the "
                  "end — rewarding precision-scheduled training "
                  "algorithms without hardware changes");

    const double points[] = {0.1, 0.35, 0.65, 0.95};
    std::vector<std::string> headers = {"model"};
    for (double p : points)
        headers.push_back(Table::pct(p, 0) + " (w=" +
                          std::to_string(scheduledFracBits(p)) + ")");
    headers.push_back("fixed w=12 @95%");
    Table t(headers);

    for (const auto &model : modelZoo()) {
        std::vector<std::string> row = {model.name};
        for (double p : points) {
            AcceleratorConfig cfg = AcceleratorConfig::paperDefault();
            cfg.sampleSteps = bench::sampleSteps(48);
            cfg.tile.pe.obThreshold = scheduledFracBits(p);
            Accelerator accel(cfg);
            row.push_back(Table::cell(accel.runModel(model, p).speedup()));
        }
        AcceleratorConfig fixed = AcceleratorConfig::paperDefault();
        fixed.sampleSteps = bench::sampleSteps(48);
        Accelerator accel(fixed);
        row.push_back(Table::cell(accel.runModel(model, 0.95).speedup()));
        t.addRow(row);
    }
    t.print();
    return 0;
}

} // namespace
} // namespace fpraker

int
main()
{
    return fpraker::run();
}
