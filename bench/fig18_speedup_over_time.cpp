/**
 * @file
 * Fig. 18 — FPRaker speedup over the baseline across the training
 * process (the paper samples one batch per epoch; we sweep the
 * training-progress axis of the value profiles).
 */

#include "bench_common.h"

namespace fpraker {
namespace {

int
run(int argc, char **argv)
{
    bench::banner("Fig. 18", "speedup over training time",
                  "stable for most models; VGG16 declines ~15% after "
                  "the first ~30% of training; ResNet18-Q gains ~12.5% "
                  "once PACT clipping settles (~30%)");

    AcceleratorConfig cfg = AcceleratorConfig::paperDefault();
    cfg.sampleSteps = bench::sampleSteps(64);
    cfg.threads = bench::threads(argc, argv);
    Accelerator accel(cfg);

    const double points[] = {0.0, 0.15, 0.3, 0.5, 0.75, 1.0};
    std::vector<std::string> headers = {"model"};
    for (double p : points)
        headers.push_back(Table::pct(p, 0));
    Table t(headers);
    for (const auto &model : modelZoo()) {
        std::vector<std::string> row = {model.name};
        for (double p : points) {
            ModelRunReport r = accel.runModel(model, p);
            row.push_back(Table::cell(r.speedup()));
        }
        t.addRow(row);
    }
    t.print();
    return 0;
}

} // namespace
} // namespace fpraker

int
main(int argc, char **argv)
{
    return fpraker::run(argc, argv);
}
