/** Legacy shim for `fpraker run fig18` — the experiment body lives in
 *  src/api/experiments/fig18_speedup_over_time.cpp. */
#include "api/driver.h"

int
main(int argc, char **argv)
{
    return fpraker::api::experimentMain({"fig18"}, argc, argv);
}
