/**
 * @file
 * Fig. 18 — FPRaker speedup over the baseline across the training
 * process (the paper samples one batch per epoch; we sweep the
 * training-progress axis of the value profiles).
 */

#include "bench_common.h"

namespace fpraker {
namespace {

int
run(int argc, char **argv)
{
    bench::banner("Fig. 18", "speedup over training time",
                  "stable for most models; VGG16 declines ~15% after "
                  "the first ~30% of training; ResNet18-Q gains ~12.5% "
                  "once PACT clipping settles (~30%)");

    AcceleratorConfig cfg = AcceleratorConfig::paperDefault();
    cfg.sampleSteps = bench::sampleSteps(64);
    SweepRunner runner(bench::threads(argc, argv));
    const Accelerator &accel = runner.addAccelerator(cfg);

    // One job per (model, progress point): the whole time sweep is a
    // single flattened fan-out.
    const double points[] = {0.0, 0.15, 0.3, 0.5, 0.75, 1.0};
    const size_t n_points = sizeof(points) / sizeof(points[0]);
    std::vector<SweepJob> jobs;
    for (const auto &model : modelZoo())
        for (double p : points)
            jobs.push_back(SweepJob{&accel, &model, p});
    std::vector<ModelRunReport> reports = runner.runModels(jobs);

    std::vector<std::string> headers = {"model"};
    for (double p : points)
        headers.push_back(Table::pct(p, 0));
    Table t(headers);
    for (size_t m = 0; m < modelZoo().size(); ++m) {
        std::vector<std::string> row = {reports[m * n_points].model};
        for (size_t i = 0; i < n_points; ++i)
            row.push_back(Table::cell(reports[m * n_points + i].speedup()));
        t.addRow(row);
    }
    t.print();
    return 0;
}

} // namespace
} // namespace fpraker

int
main(int argc, char **argv)
{
    return fpraker::run(argc, argv);
}
