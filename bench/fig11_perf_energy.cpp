/**
 * @file
 * Fig. 11 — iso-compute-area performance and energy efficiency of
 * FPRaker vs the baseline, with the contribution breakdown: zero-term
 * skipping, + exponent base-delta compression (BDC), + out-of-bounds
 * (OB) term skipping.
 */

#include "bench_common.h"

namespace fpraker {
namespace {

int
run(int argc, char **argv)
{
    using bench::banner;
    banner("Fig. 11",
           "iso-compute-area performance and energy efficiency vs "
           "baseline",
           "geomean ~1.5x total speedup (zero terms +9%, BDC +5.8%, OB "
           "+35.2%); ResNet18-Q best conv model ~2.04x; SNLI ~1.8x; "
           "core energy efficiency ~1.4x tracking speedup");

    bench::AcceleratorVariants variants =
        bench::makeVariants(bench::sampleSteps(),
                            bench::threads(argc, argv));
    Accelerator zero(variants.zeroOnly);
    Accelerator zero_bdc(variants.zeroBdc);
    Accelerator full(variants.full);

    Table t({"model", "perf(zero)", "perf(zero+BDC)",
             "perf(total:+OB)", "core-energy-eff"});
    std::vector<double> s_zero, s_bdc, s_full, e_core;
    for (const auto &model : modelZoo()) {
        ModelRunReport r0 = zero.runModel(model, bench::kDefaultProgress);
        ModelRunReport r1 =
            zero_bdc.runModel(model, bench::kDefaultProgress);
        ModelRunReport r2 = full.runModel(model, bench::kDefaultProgress);
        s_zero.push_back(r0.speedup());
        s_bdc.push_back(r1.speedup());
        s_full.push_back(r2.speedup());
        e_core.push_back(r2.coreEnergyEfficiency());
        t.addRow({model.name, Table::cell(r0.speedup()),
                  Table::cell(r1.speedup()), Table::cell(r2.speedup()),
                  Table::cell(r2.coreEnergyEfficiency())});
    }
    t.addRow({"Geomean", Table::cell(geomean(s_zero)),
              Table::cell(geomean(s_bdc)), Table::cell(geomean(s_full)),
              Table::cell(geomean(e_core))});
    t.print();
    return 0;
}

} // namespace
} // namespace fpraker

int
main(int argc, char **argv)
{
    return fpraker::run(argc, argv);
}
