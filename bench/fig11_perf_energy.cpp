/** Legacy shim for `fpraker run fig11` — the experiment body lives in
 *  src/api/experiments/fig11_perf_energy.cpp. */
#include "api/driver.h"

int
main(int argc, char **argv)
{
    return fpraker::api::experimentMain({"fig11"}, argc, argv);
}
