/**
 * @file
 * Fig. 11 — iso-compute-area performance and energy efficiency of
 * FPRaker vs the baseline, with the contribution breakdown: zero-term
 * skipping, + exponent base-delta compression (BDC), + out-of-bounds
 * (OB) term skipping.
 */

#include "bench_common.h"

namespace fpraker {
namespace {

int
run(int argc, char **argv)
{
    using bench::banner;
    banner("Fig. 11",
           "iso-compute-area performance and energy efficiency vs "
           "baseline",
           "geomean ~1.5x total speedup (zero terms +9%, BDC +5.8%, OB "
           "+35.2%); ResNet18-Q best conv model ~2.04x; SNLI ~1.8x; "
           "core energy efficiency ~1.4x tracking speedup");

    bench::AcceleratorVariants variants =
        bench::makeVariants(bench::sampleSteps());

    // All 3 variants x 9 models submit through one SweepRunner: the
    // (job, layer, op) units of the whole figure shard across a single
    // engine instead of 27 serial model runs.
    SweepRunner runner(bench::threads(argc, argv));
    const Accelerator &zero = runner.addAccelerator(variants.zeroOnly);
    const Accelerator &zero_bdc = runner.addAccelerator(variants.zeroBdc);
    const Accelerator &full = runner.addAccelerator(variants.full);
    std::vector<ModelRunReport> reports =
        runner.runModels(bench::zooJobs({&zero, &zero_bdc, &full}));

    Table t({"model", "perf(zero)", "perf(zero+BDC)",
             "perf(total:+OB)", "core-energy-eff"});
    std::vector<double> s_zero, s_bdc, s_full, e_core;
    const size_t n_models = modelZoo().size();
    for (size_t m = 0; m < n_models; ++m) {
        const ModelRunReport &r0 = reports[m];
        const ModelRunReport &r1 = reports[n_models + m];
        const ModelRunReport &r2 = reports[2 * n_models + m];
        s_zero.push_back(r0.speedup());
        s_bdc.push_back(r1.speedup());
        s_full.push_back(r2.speedup());
        e_core.push_back(r2.coreEnergyEfficiency());
        t.addRow({r0.model, Table::cell(r0.speedup()),
                  Table::cell(r1.speedup()), Table::cell(r2.speedup()),
                  Table::cell(r2.coreEnergyEfficiency())});
    }
    t.addRow({"Geomean", Table::cell(geomean(s_zero)),
              Table::cell(geomean(s_bdc)), Table::cell(geomean(s_full)),
              Table::cell(geomean(e_core))});
    t.print();
    return 0;
}

} // namespace
} // namespace fpraker

int
main(int argc, char **argv)
{
    return fpraker::run(argc, argv);
}
