/**
 * @file
 * Fig. 14 — FPRaker speedup over the baseline for each of the three
 * training phases (AxG weight gradients, GxW input gradients, AxW
 * forward).
 */

#include "bench_common.h"

namespace fpraker {
namespace {

int
run(int argc, char **argv)
{
    bench::banner("Fig. 14", "speedup per training phase",
                  "FPRaker beats the baseline in all three phases for "
                  "every model; phase ordering varies with the term "
                  "sparsity of the serial-side tensor");

    AcceleratorConfig cfg = AcceleratorConfig::paperDefault();
    cfg.sampleSteps = bench::sampleSteps();
    SweepRunner runner(bench::threads(argc, argv));
    const Accelerator &accel = runner.addAccelerator(cfg);
    std::vector<ModelRunReport> reports =
        runner.runModels(bench::zooJobs({&accel}));

    Table t({"model", "AxG", "GxW", "AxW", "total"});
    std::vector<double> g_axg, g_gxw, g_axw, g_tot;
    for (const ModelRunReport &r : reports) {
        double axg = r.speedupForOp(TrainingOp::WeightGrad);
        double gxw = r.speedupForOp(TrainingOp::InputGrad);
        double axw = r.speedupForOp(TrainingOp::Forward);
        g_axg.push_back(axg);
        g_gxw.push_back(gxw);
        g_axw.push_back(axw);
        g_tot.push_back(r.speedup());
        t.addRow({r.model, Table::cell(axg), Table::cell(gxw),
                  Table::cell(axw), Table::cell(r.speedup())});
    }
    t.addRow({"Geomean", Table::cell(geomean(g_axg)),
              Table::cell(geomean(g_gxw)), Table::cell(geomean(g_axw)),
              Table::cell(geomean(g_tot))});
    t.print();
    return 0;
}

} // namespace
} // namespace fpraker

int
main(int argc, char **argv)
{
    return fpraker::run(argc, argv);
}
