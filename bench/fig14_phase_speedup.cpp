/** Legacy shim for `fpraker run fig14` — the experiment body lives in
 *  src/api/experiments/fig14_phase_speedup.cpp. */
#include "api/driver.h"

int
main(int argc, char **argv)
{
    return fpraker::api::experimentMain({"fig14"}, argc, argv);
}
