/** Legacy shim for `fpraker run fig21` — the experiment body lives in
 *  src/api/experiments/fig21_accumulator_width.cpp. */
#include "api/driver.h"

int
main(int argc, char **argv)
{
    return fpraker::api::experimentMain({"fig21"}, argc, argv);
}
