/**
 * @file
 * Perf-regression harness: times fixed, seeded workloads on the
 * cycle-level simulator and emits BENCH_PR2.json, extending the
 * BENCH_PR<N>.json trajectory each perf PR must beat
 * (docs/PERFORMANCE.md explains how to read and append it).
 *
 * Timed sections:
 *
 *  - tile_kernel — the PR 1 comparison, unchanged: the seed algorithm
 *    (ReferenceColumn / ReferenceTile), the optimized engine at one
 *    thread, and at --threads=N, over identical pre-generated operand
 *    slabs. PR 2's kernel gains (transposed settle masks, per-PE
 *    retirement skip) land here.
 *  - sweep — the PR 2 tentpole: several whole tile-kernel jobs (the
 *    kernel workload replicated under per-job RNG substreams, keeping
 *    sets/sec comparable) submitted through one SweepRunner and timed
 *    at 1, 2, and 8 threads. The sweep-level sets/sec must beat the
 *    previous PR's kernel sets/sec, and the FNV-1a checksum over every
 *    job's outputs must be identical at every thread count.
 *  - model_sweep — a three-model sweep of full accelerator runs (the
 *    Fig. 11 unit of work) through the same runner, serial vs parallel.
 *
 * The harness refuses to report a speedup over diverging runs.
 *
 *   ./perf_regression [--threads=N] [--steps=N] [--reps=N] [--out=FILE]
 *
 * FPRAKER_SAMPLE_STEPS scales the tile workload (CI smoke runs use a
 * small budget — .github/workflows/ci.yml pins one and compares the
 * emitted checksums against bench/SMOKE_BASELINE.json), and
 * FPRAKER_THREADS feeds the default thread count.
 */

#include <chrono>
#include <cinttypes>
#include <cstring>
#include <functional>

#include "bench_common.h"
#include "common/logging.h"
#include "sim/reference_column.h"
#include "trace/rng_stream.h"
#include "trace/tensor_gen.h"

namespace fpraker {
namespace {

/** FNV-1a over raw bytes; order-sensitive, so layouts must match. */
class Checksum
{
  public:
    void
    addBytes(const void *data, size_t n)
    {
        const unsigned char *p = static_cast<const unsigned char *>(data);
        for (size_t i = 0; i < n; ++i) {
            hash_ ^= p[i];
            hash_ *= 0x100000001b3ull;
        }
    }

    void add(uint64_t v) { addBytes(&v, sizeof(v)); }
    void add(double v) { addBytes(&v, sizeof(v)); }

    void
    add(float v)
    {
        uint32_t bits;
        std::memcpy(&bits, &v, sizeof(bits));
        addBytes(&bits, sizeof(bits));
    }

    void
    add(const PeStats &s)
    {
        add(s.laneUseful);
        add(s.laneNoTerm);
        add(s.laneShiftRange);
        add(s.laneExponent);
        add(s.laneInterPe);
        add(s.setCycles);
        add(s.sets);
        add(s.macs);
        add(s.termsProcessed);
        add(s.termsZeroSkipped);
        add(s.termsObSkipped);
    }

    uint64_t value() const { return hash_; }

  private:
    uint64_t hash_ = 0xcbf29ce484222325ull;
};

double
now()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(
               clock::now().time_since_epoch())
        .count();
}

struct TileTiming
{
    double seconds = 0;
    uint64_t cycles = 0;
    uint64_t checksum = 0;
};

/** The fixed tile workload: geometry, burst length, operand slabs. */
struct Workload
{
    TileConfig tile;
    int steps = 0;
    int burst = 32; //!< Steps per output block (accumulator reset).
    std::vector<BFloat16> a; //!< [step][col * lanes + l]
    std::vector<BFloat16> b; //!< [step][row * lanes + l]
};

Workload
makeWorkload(const ModelInfo &model, int steps, uint64_t seed)
{
    Workload w;
    w.tile = AcceleratorConfig::paperDefault().tile;
    w.steps = steps;
    const int lanes = w.tile.pe.lanes;
    const size_t a_len = static_cast<size_t>(w.tile.cols) * lanes;
    const size_t b_len = static_cast<size_t>(w.tile.rows) * lanes;

    ValueProfile serial =
        model.profile.of(TensorKind::Activation).at(0.5);
    ValueProfile parallel = model.profile.of(TensorKind::Weight).at(0.5);
    TensorGenerator a_gen(serial, seed);
    TensorGenerator b_gen(parallel, seed ^ 0x5eed);
    w.a.resize(static_cast<size_t>(steps) * a_len);
    w.b.resize(static_cast<size_t>(steps) * b_len);
    a_gen.fill(w.a.data(), w.a.size());
    b_gen.fill(w.b.data(), w.b.size());
    return w;
}

/** Time the seed-parity algorithm over the workload. */
TileTiming
runSeedSerial(const Workload &w)
{
    const int lanes = w.tile.pe.lanes;
    const size_t a_len = static_cast<size_t>(w.tile.cols) * lanes;
    const size_t b_len = static_cast<size_t>(w.tile.rows) * lanes;

    ReferenceTile tile(w.tile.pe, w.tile.rows, w.tile.cols,
                       w.tile.bufferDepth);
    TileTiming t;
    Checksum sum;
    double t0 = now();
    for (int s = 0; s < w.steps; s += w.burst) {
        size_t burst = static_cast<size_t>(
            std::min(w.burst, w.steps - s));
        ReferenceTileResult res =
            tile.run(w.a.data() + static_cast<size_t>(s) * a_len,
                     w.b.data() + static_cast<size_t>(s) * b_len, burst);
        t.cycles += res.cycles;
        for (int r = 0; r < w.tile.rows; ++r)
            for (int c = 0; c < w.tile.cols; ++c)
                sum.add(tile.output(r, c));
        tile.resetAccumulators();
    }
    t.seconds = now() - t0;
    sum.add(t.cycles);
    sum.add(tile.aggregateStats());
    t.checksum = sum.value();
    return t;
}

/** Time the optimized engine over the workload at a thread count. */
TileTiming
runOptimized(const Workload &w, int threads)
{
    const int lanes = w.tile.pe.lanes;
    const size_t a_len = static_cast<size_t>(w.tile.cols) * lanes;
    const size_t b_len = static_cast<size_t>(w.tile.rows) * lanes;

    SimEngine engine(threads);
    Tile tile(w.tile);
    std::vector<TileStepView> views(static_cast<size_t>(w.burst));
    TileTiming t;
    Checksum sum;
    double t0 = now();
    for (int s = 0; s < w.steps; s += w.burst) {
        size_t burst = static_cast<size_t>(
            std::min(w.burst, w.steps - s));
        for (size_t i = 0; i < burst; ++i) {
            size_t step = static_cast<size_t>(s) + i;
            views[i] = TileStepView{w.a.data() + step * a_len,
                                    w.b.data() + step * b_len};
        }
        TileRunResult res = tile.run(views.data(), burst, &engine);
        t.cycles += res.cycles;
        for (int r = 0; r < w.tile.rows; ++r)
            for (int c = 0; c < w.tile.cols; ++c)
                sum.add(tile.output(r, c));
        tile.resetAccumulators();
    }
    t.seconds = now() - t0;
    sum.add(t.cycles);
    sum.add(tile.aggregateStats());
    t.checksum = sum.value();
    return t;
}

uint64_t
reportChecksum(const ModelRunReport &r)
{
    Checksum sum;
    sum.add(r.fprCycles);
    sum.add(r.baseCycles);
    sum.add(r.fprEnergy.totalPj());
    sum.add(r.baseEnergy.totalPj());
    for (const LayerOpReport &op : r.ops) {
        sum.add(op.fprCycles);
        sum.add(op.baseCycles);
        sum.add(op.avgCyclesPerStep);
        sum.add(op.trafficBytesCompressed);
        sum.add(op.sampleStats);
    }
    return sum.value();
}

int
run(int argc, char **argv)
{
    using bench::banner;

    int threads = 8;
    int steps = bench::sampleSteps(4096);
    int reps = 3;
    const char *out_path = "BENCH_PR2.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--threads=", 10) == 0)
            threads = std::atoi(argv[i] + 10);
        else if (std::strncmp(argv[i], "--steps=", 8) == 0)
            steps = std::atoi(argv[i] + 8);
        else if (std::strncmp(argv[i], "--reps=", 7) == 0)
            reps = std::atoi(argv[i] + 7);
        else if (std::strncmp(argv[i], "--out=", 6) == 0)
            out_path = argv[i] + 6;
    }
    fatal_if(threads < 1 || steps < 1 || reps < 1,
             "bad --threads/--steps/--reps");

    banner("PR2",
           "perf regression: sweep-level sharding + retirement skip",
           "kernel beats the BENCH_PR1 sets/sec; sweep-level sets/sec "
           "bit-identical at 1/2/8 threads");

    const char *model_name = "ResNet18-Q";
    const ModelInfo &model = findModel(model_name);
    const uint64_t seed = 0xf9a4e5;
    Workload w = makeWorkload(model, steps, seed);
    const uint64_t sets =
        static_cast<uint64_t>(w.steps) * w.tile.cols;

    // Best-of-N: each configuration re-runs the identical workload
    // from a fresh tile; the minimum wall time is the least-perturbed
    // sample and every rep must checksum identically.
    auto best = [&](const std::function<TileTiming()> &f) {
        TileTiming best_t = f();
        for (int i = 1; i < reps; ++i) {
            TileTiming t = f();
            fatal_if(t.checksum != best_t.checksum,
                     "non-deterministic rep");
            if (t.seconds < best_t.seconds)
                best_t = t;
        }
        return best_t;
    };
    TileTiming seed_t = best([&] { return runSeedSerial(w); });
    TileTiming serial_t = best([&] { return runOptimized(w, 1); });
    TileTiming par_t = best([&] { return runOptimized(w, threads); });

    bool tile_identical = seed_t.checksum == serial_t.checksum &&
                          seed_t.checksum == par_t.checksum;
    double speedup_serial = seed_t.seconds / serial_t.seconds;
    double speedup_parallel = seed_t.seconds / par_t.seconds;

    std::printf("tile kernel: %d steps (%" PRIu64 " column-sets), "
                "%dx%d tile\n",
                w.steps, sets, w.tile.rows, w.tile.cols);
    std::printf("  seed serial:      %8.3f s  %10.0f sets/s\n",
                seed_t.seconds, sets / seed_t.seconds);
    std::printf("  optimized serial: %8.3f s  %10.0f sets/s  (%.2fx)\n",
                serial_t.seconds, sets / serial_t.seconds,
                speedup_serial);
    std::printf("  %d threads:       %8.3f s  %10.0f sets/s  (%.2fx)\n",
                threads, par_t.seconds, sets / par_t.seconds,
                speedup_parallel);
    std::printf("  bit-identical:    %s\n",
                tile_identical ? "yes" : "NO — REGRESSION");

    // Sweep section: several whole tile-kernel jobs submitted through
    // a single SweepRunner. Jobs replicate the kernel workload (same
    // model profile, so sets/sec stays comparable across the
    // BENCH_PR<N> trajectory) with per-job RNG substreams, and
    // pre-generate their slabs untimed; the timed region is the
    // sharded simulation itself. Every thread count must reproduce the
    // same combined checksum.
    const size_t sweep_jobs = 6;
    const int sweep_steps = std::max(1, steps / 2);
    std::vector<Workload> sweep_w;
    for (size_t j = 0; j < sweep_jobs; ++j)
        sweep_w.push_back(
            makeWorkload(model, sweep_steps, substreamSeed(seed, j)));
    const uint64_t sweep_sets = static_cast<uint64_t>(sweep_jobs) *
                                static_cast<uint64_t>(sweep_steps) *
                                w.tile.cols;

    const int sweep_threads[3] = {1, 2, 8};
    double sweep_s[3] = {};
    uint64_t sweep_sum[3] = {};
    for (int ti = 0; ti < 3; ++ti) {
        auto run_once = [&]() {
            SweepRunner runner(sweep_threads[ti]);
            std::vector<uint64_t> job_sums(sweep_jobs);
            TileTiming t;
            double t0 = now();
            runner.parallelFor(sweep_jobs, [&](size_t j) {
                TileTiming jt = runOptimized(sweep_w[j], 1);
                job_sums[j] = jt.checksum;
            });
            t.seconds = now() - t0;
            Checksum sum;
            for (uint64_t s_j : job_sums)
                sum.add(s_j);
            t.checksum = sum.value();
            return t;
        };
        TileTiming t = best(run_once);
        sweep_s[ti] = t.seconds;
        sweep_sum[ti] = t.checksum;
    }
    bool sweep_identical = sweep_sum[0] == sweep_sum[1] &&
                           sweep_sum[0] == sweep_sum[2];
    double sweep_best_s = std::min({sweep_s[0], sweep_s[1], sweep_s[2]});

    std::printf("sweep: %zu tile-kernel jobs (%d steps each, "
                "%" PRIu64 " column-sets total) via SweepRunner\n",
                sweep_jobs, sweep_steps, sweep_sets);
    for (int ti = 0; ti < 3; ++ti)
        std::printf("  %d thread(s):     %8.3f s  %10.0f sets/s\n",
                    sweep_threads[ti], sweep_s[ti],
                    sweep_sets / sweep_s[ti]);
    std::printf("  bit-identical:    %s\n",
                sweep_identical ? "yes" : "NO — REGRESSION");

    // Model sweep: full accelerator runs (the Fig. 11 unit of work)
    // for three models through one runner, serial vs parallel.
    const char *sweep_models[3] = {"ResNet18-Q", "SNLI",
                                   "SqueezeNet 1.1"};
    AcceleratorConfig mcfg = AcceleratorConfig::paperDefault();
    mcfg.sampleSteps = bench::sampleSteps(96);
    auto model_sweep = [&](int t) {
        SweepRunner runner(t);
        const Accelerator &accel = runner.addAccelerator(mcfg);
        std::vector<SweepJob> jobs;
        for (const char *name : sweep_models)
            jobs.push_back(SweepJob{&accel, &findModel(name), 0.5});
        double t0 = now();
        std::vector<ModelRunReport> reports = runner.runModels(jobs);
        double secs = now() - t0;
        Checksum sum;
        for (const ModelRunReport &r : reports)
            sum.add(reportChecksum(r));
        return std::pair<double, uint64_t>(secs, sum.value());
    };
    auto [model_serial_s, model_sum_1] = model_sweep(1);
    auto [model_parallel_s, model_sum_n] = model_sweep(threads);
    bool model_identical = model_sum_1 == model_sum_n;

    std::printf("model sweep (3 models, %d sample steps/op):\n",
                mcfg.sampleSteps);
    std::printf("  serial:     %8.3f s\n", model_serial_s);
    std::printf("  %d threads: %8.3f s  (%.2fx)\n", threads,
                model_parallel_s, model_serial_s / model_parallel_s);
    std::printf("  bit-identical: %s\n",
                model_identical ? "yes" : "NO — REGRESSION");

    FILE *f = std::fopen(out_path, "w");
    fatal_if(!f, "cannot write %s", out_path);
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"workload\": {\"model\": \"%s\", \"steps\": %d, "
                    "\"column_sets\": %" PRIu64 ", \"tile\": \"%dx%d\", "
                    "\"seed\": %" PRIu64 "},\n",
                 model_name, w.steps, sets, w.tile.rows, w.tile.cols,
                 seed);
    std::fprintf(f, "  \"tile_kernel\": {\n");
    std::fprintf(f, "    \"threads\": %d,\n", threads);
    std::fprintf(f, "    \"seed_serial_s\": %.6f,\n", seed_t.seconds);
    std::fprintf(f, "    \"optimized_serial_s\": %.6f,\n",
                 serial_t.seconds);
    std::fprintf(f, "    \"parallel_s\": %.6f,\n", par_t.seconds);
    std::fprintf(f, "    \"sets_per_sec_seed\": %.1f,\n",
                 sets / seed_t.seconds);
    std::fprintf(f, "    \"sets_per_sec_serial\": %.1f,\n",
                 sets / serial_t.seconds);
    std::fprintf(f, "    \"sets_per_sec_parallel\": %.1f,\n",
                 sets / par_t.seconds);
    std::fprintf(f, "    \"speedup_serial_vs_seed\": %.3f,\n",
                 speedup_serial);
    std::fprintf(f, "    \"speedup_vs_serial\": %.3f,\n",
                 speedup_parallel);
    std::fprintf(f, "    \"checksum_seed\": \"%016" PRIx64 "\",\n",
                 seed_t.checksum);
    std::fprintf(f, "    \"checksum_serial\": \"%016" PRIx64 "\",\n",
                 serial_t.checksum);
    std::fprintf(f, "    \"checksum_parallel\": \"%016" PRIx64 "\",\n",
                 par_t.checksum);
    std::fprintf(f, "    \"bit_identical\": %s\n",
                 tile_identical ? "true" : "false");
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"sweep\": {\n");
    std::fprintf(f, "    \"jobs\": %zu,\n", sweep_jobs);
    std::fprintf(f, "    \"steps_per_job\": %d,\n", sweep_steps);
    std::fprintf(f, "    \"column_sets\": %" PRIu64 ",\n", sweep_sets);
    for (int ti = 0; ti < 3; ++ti) {
        std::fprintf(f, "    \"seconds_t%d\": %.6f,\n",
                     sweep_threads[ti], sweep_s[ti]);
        std::fprintf(f, "    \"sets_per_sec_t%d\": %.1f,\n",
                     sweep_threads[ti], sweep_sets / sweep_s[ti]);
        std::fprintf(f, "    \"checksum_t%d\": \"%016" PRIx64 "\",\n",
                     sweep_threads[ti], sweep_sum[ti]);
    }
    std::fprintf(f, "    \"sets_per_sec_best\": %.1f,\n",
                 sweep_sets / sweep_best_s);
    std::fprintf(f, "    \"bit_identical\": %s\n",
                 sweep_identical ? "true" : "false");
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"model_sweep\": {\n");
    std::fprintf(f, "    \"models\": [\"%s\", \"%s\", \"%s\"],\n",
                 sweep_models[0], sweep_models[1], sweep_models[2]);
    std::fprintf(f, "    \"sample_steps\": %d,\n", mcfg.sampleSteps);
    std::fprintf(f, "    \"serial_s\": %.6f,\n", model_serial_s);
    std::fprintf(f, "    \"parallel_s\": %.6f,\n", model_parallel_s);
    std::fprintf(f, "    \"speedup\": %.3f,\n",
                 model_serial_s / model_parallel_s);
    std::fprintf(f, "    \"checksum_serial\": \"%016" PRIx64 "\",\n",
                 model_sum_1);
    std::fprintf(f, "    \"checksum_parallel\": \"%016" PRIx64 "\",\n",
                 model_sum_n);
    std::fprintf(f, "    \"bit_identical\": %s\n",
                 model_identical ? "true" : "false");
    std::fprintf(f, "  }\n");
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s\n", out_path);

    return (tile_identical && sweep_identical && model_identical) ? 0
                                                                  : 1;
}

} // namespace
} // namespace fpraker

int
main(int argc, char **argv)
{
    return fpraker::run(argc, argv);
}
