/** Legacy shim for `fpraker run perf_regression` — the experiment body lives in
 *  src/api/experiments/perf_regression.cpp. */
#include "api/driver.h"

int
main(int argc, char **argv)
{
    return fpraker::api::experimentMain({"perf_regression"}, argc, argv);
}
