/** Legacy shim for `fpraker run intro` — the experiment body lives in
 *  src/api/experiments/intro_comparison.cpp. */
#include "api/driver.h"

int
main(int argc, char **argv)
{
    return fpraker::api::experimentMain({"intro"}, argc, argv);
}
