/**
 * @file
 * Fig. 10 — normalized exponent footprint after base-delta compression,
 * per model and tensor, for channel-wise and spatial groupings.
 */

#include <functional>

#include "bench_common.h"
#include "compress/base_delta.h"
#include "trace/tensor_gen.h"

namespace fpraker {
namespace {

/**
 * Channel-wise grouping follows the generated stream order (strongest
 * correlation); spatial grouping is emulated by striding the stream (a
 * group gathers every 8th value), which weakens — but per the paper
 * does not destroy — the correlation.
 */
double
footprint(const ModelInfo &model, TensorKind kind, double progress,
          bool spatial)
{
    TensorGenerator gen(model.profile.of(kind).at(progress),
                        std::hash<std::string>{}(model.name) +
                            static_cast<uint64_t>(kind) * 13);
    std::vector<BFloat16> values = gen.generate(16384);
    if (spatial) {
        std::vector<BFloat16> strided;
        strided.reserve(values.size());
        const size_t stride = 8;
        for (size_t phase = 0; phase < stride; ++phase)
            for (size_t i = phase; i < values.size(); i += stride)
                strided.push_back(values[i]);
        values.swap(strided);
    }
    BaseDeltaCodec codec;
    return codec.analyze(values).exponentFootprint();
}

int
run()
{
    bench::banner("Fig. 10",
                  "normalized exponent footprint after base-delta "
                  "compression",
                  "30-70% of the raw exponent bits, effective for both "
                  "channel-wise (bars) and spatial (markers) groupings");

    Table t({"model", "A chan", "W chan", "G chan", "A spat", "W spat",
             "G spat"});
    for (const auto &model : modelZoo()) {
        auto cell = [&](TensorKind k, bool spatial) {
            return Table::pct(
                footprint(model, k, bench::kDefaultProgress, spatial));
        };
        t.addRow({model.name, cell(TensorKind::Activation, false),
                  cell(TensorKind::Weight, false),
                  cell(TensorKind::Gradient, false),
                  cell(TensorKind::Activation, true),
                  cell(TensorKind::Weight, true),
                  cell(TensorKind::Gradient, true)});
    }
    t.print();
    return 0;
}

} // namespace
} // namespace fpraker

int
main()
{
    return fpraker::run();
}
