/** Legacy shim for `fpraker run fig10` — the experiment body lives in
 *  src/api/experiments/fig10_compression.cpp. */
#include "api/driver.h"

int
main(int argc, char **argv)
{
    return fpraker::api::experimentMain({"fig10"}, argc, argv);
}
