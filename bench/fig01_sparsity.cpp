/** Legacy shim for `fpraker run fig01` — the experiment body lives in
 *  src/api/experiments/fig01_sparsity.cpp. */
#include "api/driver.h"

int
main(int argc, char **argv)
{
    return fpraker::api::experimentMain({"fig01"}, argc, argv);
}
