/**
 * @file
 * Shared helpers for the figure/table reproduction harnesses.
 *
 * Every bench binary regenerates one table or figure from the paper:
 * it prints a header identifying the experiment, the paper's expected
 * shape, and then the measured rows/series.
 */

#ifndef FPRAKER_BENCH_BENCH_COMMON_H
#define FPRAKER_BENCH_BENCH_COMMON_H

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "accel/accelerator.h"
#include "common/stats.h"
#include "common/table.h"
#include "sim/sim_engine.h"
#include "sim/sweep_runner.h"
#include "trace/model_zoo.h"

namespace fpraker {
namespace bench {

/** Print the experiment banner. */
inline void
banner(const std::string &id, const std::string &title,
       const std::string &expectation)
{
    std::printf("==============================================================\n");
    std::printf("%s: %s\n", id.c_str(), title.c_str());
    std::printf("paper expectation: %s\n", expectation.c_str());
    std::printf("==============================================================\n");
}

/** Default mid-training progress used by single-point experiments. */
constexpr double kDefaultProgress = 0.5;

/** Accelerator variants used for the Fig. 11 contribution breakdown. */
struct AcceleratorVariants
{
    AcceleratorConfig zeroOnly;  //!< Zero-term skipping only.
    AcceleratorConfig zeroBdc;   //!< + base-delta compression.
    AcceleratorConfig full;      //!< + out-of-bounds skipping.
};

inline AcceleratorVariants
makeVariants(int sample_steps, int threads = 0)
{
    AcceleratorVariants v;
    v.full = AcceleratorConfig::paperDefault();
    v.full.sampleSteps = sample_steps;
    v.full.threads = threads;

    v.zeroBdc = v.full;
    v.zeroBdc.tile.pe.skipOutOfBounds = false;

    v.zeroOnly = v.zeroBdc;
    v.zeroOnly.useBdc = false;
    return v;
}

/** Sampling budget: override with FPRAKER_SAMPLE_STEPS env var. */
inline int
sampleSteps(int fallback = 96)
{
    if (const char *env = std::getenv("FPRAKER_SAMPLE_STEPS")) {
        int v = std::atoi(env);
        if (v > 0)
            return v;
    }
    return fallback;
}

/**
 * Simulation worker threads for the harnesses: an explicit
 * --threads=N argument wins, then the FPRAKER_THREADS environment
 * variable, then the serial default. Results are bit-identical for
 * any value (see docs/PERFORMANCE.md), so the knob is purely about
 * wall-clock time.
 */
inline int
threads(int argc = 0, char **argv = nullptr)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--threads=", 10) == 0) {
            int v = std::atoi(argv[i] + 10);
            if (v > 0)
                return v;
        }
    }
    return SimEngine::defaultThreads();
}

/**
 * The standard sweep shape: one job per (accelerator variant, model)
 * over the whole zoo, in zoo order per variant. Harnesses that sweep
 * another axis (progress points, per-layer configs) build their job
 * lists by hand.
 */
inline std::vector<SweepJob>
zooJobs(const std::vector<const Accelerator *> &variants,
        double progress = kDefaultProgress)
{
    std::vector<SweepJob> jobs;
    for (const Accelerator *accel : variants)
        for (const auto &model : modelZoo())
            jobs.push_back(SweepJob{accel, &model, progress});
    return jobs;
}

} // namespace bench
} // namespace fpraker

#endif // FPRAKER_BENCH_BENCH_COMMON_H
