/** Legacy shim for `fpraker run table1` — the experiment body lives in
 *  src/api/experiments/table1_models.cpp. */
#include "api/driver.h"

int
main(int argc, char **argv)
{
    return fpraker::api::experimentMain({"table1"}, argc, argv);
}
