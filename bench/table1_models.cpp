/**
 * @file
 * Table I — the models studied, with their substituted workload scale.
 */

#include "bench_common.h"

int
main(int argc, char **argv)
{
    using namespace fpraker;
    bench::banner("Table I", "models studied",
                  "nine models spanning classification, NLP, detection, "
                  "recommendation, and translation");

    // Row contents are cheap (a MAC sum per model), but the walk goes
    // through the sweep runner like every other harness so the zoo
    // iteration pattern is uniform across bench/.
    SweepRunner runner(bench::threads(argc, argv));
    std::vector<std::vector<std::string>> rows(modelZoo().size());
    runner.parallelFor(rows.size(), [&](size_t i) {
        const ModelInfo &m = modelZoo()[i];
        rows[i] = {m.name, m.application, m.dataset,
                   std::to_string(m.layers.size()),
                   Table::cell(static_cast<double>(m.macsPerOp()) / 1e9,
                               2)};
    });

    Table t({"model", "application", "dataset", "layers", "GMACs/op"});
    for (const auto &row : rows)
        t.addRow(row);
    t.print();
    return 0;
}
