/**
 * @file
 * Table I — the models studied, with their substituted workload scale.
 */

#include "bench_common.h"

int
main()
{
    using namespace fpraker;
    bench::banner("Table I", "models studied",
                  "nine models spanning classification, NLP, detection, "
                  "recommendation, and translation");

    Table t({"model", "application", "dataset", "layers", "GMACs/op"});
    for (const auto &m : modelZoo()) {
        t.addRow({m.name, m.application, m.dataset,
                  std::to_string(m.layers.size()),
                  Table::cell(static_cast<double>(m.macsPerOp()) / 1e9,
                              2)});
    }
    t.print();
    return 0;
}
