/**
 * @file
 * Training layers routing all MACs through a pluggable MacEngine.
 *
 * A deliberately small layer set — dense, ReLU, softmax cross-entropy —
 * sufficient for the Fig. 17 convergence-parity study: what matters is
 * that the forward pass (Eq. 1), the input-gradient pass (Eq. 2) and
 * the weight-gradient pass (Eq. 3) all run through the emulated MAC
 * arithmetic, exactly like the paper's PlaidML mad() override.
 */

#ifndef FPRAKER_TRAIN_LAYERS_H
#define FPRAKER_TRAIN_LAYERS_H

#include "train/mac_modes.h"
#include "train/tensor.h"

namespace fpraker {

/** Fully connected layer with bias. */
class DenseLayer
{
  public:
    DenseLayer(size_t in, size_t out, uint64_t seed);

    /** Forward: y[b] = x[b] W + bias (Eq. 1 through the engine). */
    Matrix forward(const MacEngine &eng, const Matrix &x) const;

    /**
     * Backward: given dL/dy, computes dL/dx (Eq. 2) and accumulates
     * weight/bias gradients (Eq. 3), all through the engine.
     */
    Matrix backward(const MacEngine &eng, const Matrix &x,
                    const Matrix &dy);

    /** SGD step, then clears gradients. */
    void step(float lr);

    const Matrix &weights() const { return w_; }
    Matrix &weights() { return w_; }

  private:
    size_t in_, out_;
    Matrix w_;  //!< [in x out]
    Matrix b_;  //!< [1 x out]
    Matrix dw_; //!< Gradient accumulators.
    Matrix db_;
};

/** ReLU activation. */
class ReluLayer
{
  public:
    Matrix forward(const Matrix &x) const;
    Matrix backward(const Matrix &x, const Matrix &dy) const;
};

/** Softmax + cross-entropy head. */
class SoftmaxCrossEntropy
{
  public:
    /**
     * Compute mean loss and dL/dlogits for integer labels.
     * @param logits  [batch x classes]
     * @param labels  batch labels
     * @param dlogits output gradient (same shape as logits)
     */
    static float lossAndGrad(const Matrix &logits,
                             const std::vector<int> &labels,
                             Matrix &dlogits);

    /** Argmax accuracy. */
    static double accuracy(const Matrix &logits,
                           const std::vector<int> &labels);
};

} // namespace fpraker

#endif // FPRAKER_TRAIN_LAYERS_H
