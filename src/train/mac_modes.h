/**
 * @file
 * Pluggable MAC arithmetic for the Fig. 17 accuracy study.
 *
 * The paper emulates the FPRaker PE inside PlaidML by overriding the
 * mad() function during end-to-end training. Here the training layers
 * route every dot product through a MacEngine configured with one of:
 *
 *  - NativeFp32:      FP32 fused multiply-add (the reference curve),
 *  - Bf16Chunked:     bfloat16 operands into the extended-precision
 *                     chunk-based accumulator (the baseline PE's math),
 *  - FPRakerEmulated: bfloat16 operands through the term-serial FPRaker
 *                     PE functional model, including out-of-bounds term
 *                     skipping.
 *
 * Fig. 17's claim is that all three converge together: FPRaker skips
 * only work that cannot affect the accumulator.
 */

#ifndef FPRAKER_TRAIN_MAC_MODES_H
#define FPRAKER_TRAIN_MAC_MODES_H

#include <cstddef>
#include <memory>
#include <string>

#include "pe/fpraker_pe.h"

namespace fpraker {

/** Arithmetic used by the training layers. */
enum class MacMode
{
    NativeFp32,
    Bf16Chunked,
    FPRakerEmulated,
};

const char *macModeLabel(MacMode mode);

/** Dot-product engine implementing the three arithmetic modes. */
class MacEngine
{
  public:
    explicit MacEngine(MacMode mode, PeConfig pe_cfg = PeConfig{});

    /** Dot product of two length-n float vectors under the mode. */
    float dot(const float *a, const float *b, size_t n) const;

    /** Strided dot (b advances by b_stride): y = sum a[i]*b[i*stride]. */
    float dotStrided(const float *a, const float *b, size_t n,
                     size_t b_stride) const;

    MacMode mode() const { return mode_; }

  private:
    MacMode mode_;
    PeConfig peCfg_;
    /** Reused PE instance (reset per dot) to avoid re-allocation. */
    std::unique_ptr<FPRakerPe> pe_;
};

} // namespace fpraker

#endif // FPRAKER_TRAIN_MAC_MODES_H
