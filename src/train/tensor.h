/**
 * @file
 * Minimal row-major float matrix for the training-emulation framework.
 *
 * The Fig. 17 study emulates FPRaker's arithmetic inside an end-to-end
 * training loop (the paper overrides PlaidML's mad()); this matrix type
 * is the lightweight substrate those layers operate on. Values are held
 * in FP32 — the MAC engine decides what precision arithmetic sees.
 */

#ifndef FPRAKER_TRAIN_TENSOR_H
#define FPRAKER_TRAIN_TENSOR_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace fpraker {

/** Row-major 2D float matrix. */
class Matrix
{
  public:
    Matrix() : rows_(0), cols_(0) {}
    Matrix(size_t rows, size_t cols, float fill = 0.0f);

    size_t rows() const { return rows_; }
    size_t cols() const { return cols_; }
    size_t size() const { return data_.size(); }

    float &at(size_t r, size_t c) { return data_[r * cols_ + c]; }
    float at(size_t r, size_t c) const { return data_[r * cols_ + c]; }

    float *row(size_t r) { return data_.data() + r * cols_; }
    const float *row(size_t r) const { return data_.data() + r * cols_; }

    float *data() { return data_.data(); }
    const float *data() const { return data_.data(); }

    /** Fill with Kaiming-style Gaussian noise. */
    void randomize(double stddev, uint64_t seed);

    /** Element-wise a += b * scale. */
    void addScaled(const Matrix &other, float scale);

    void zero();

    /** Transposed copy. */
    Matrix transposed() const;

  private:
    size_t rows_, cols_;
    std::vector<float> data_;
};

} // namespace fpraker

#endif // FPRAKER_TRAIN_TENSOR_H
