/**
 * @file
 * SGD trainer for the Fig. 17 arithmetic-parity study.
 *
 * Trains a small MLP (dense/ReLU stack) on a dataset with every MAC —
 * forward, input-gradient, and weight-gradient — routed through the
 * configured MacEngine, and records per-epoch test accuracy so the
 * three arithmetic modes' curves can be compared.
 */

#ifndef FPRAKER_TRAIN_TRAINER_H
#define FPRAKER_TRAIN_TRAINER_H

#include <vector>

#include "train/dataset.h"
#include "train/layers.h"

namespace fpraker {

/** Trainer hyperparameters. */
struct TrainConfig
{
    std::vector<size_t> hidden = {64, 32};
    int epochs = 12;
    int batchSize = 32;
    float learningRate = 0.08f;
    uint64_t seed = 7;
};

/** Per-epoch accuracy trajectory of one run. */
struct TrainResult
{
    MacMode mode = MacMode::NativeFp32;
    std::vector<double> testAccuracy; //!< One entry per epoch.
    std::vector<float> trainLoss;

    double
    finalAccuracy() const
    {
        return testAccuracy.empty() ? 0.0 : testAccuracy.back();
    }
};

/** A small MLP trained with a pluggable MAC engine. */
class MlpTrainer
{
  public:
    MlpTrainer(const DatasetPair &data, const TrainConfig &cfg);

    /** Train from scratch under @p mode; deterministic given cfg.seed. */
    TrainResult run(MacMode mode, PeConfig pe_cfg = PeConfig{});

  private:
    const DatasetPair &data_;
    TrainConfig cfg_;
};

} // namespace fpraker

#endif // FPRAKER_TRAIN_TRAINER_H
