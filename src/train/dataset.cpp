#include "train/dataset.h"

#include <cmath>

#include "common/logging.h"
#include "common/rng.h"

namespace fpraker {

namespace {

/** Class prototype: a mixture of oriented sinusoidal patches. */
struct Prototype
{
    double fx[3], fy[3], phase[3], amp[3];

    double
    value(int x, int y) const
    {
        double v = 0.0;
        for (int i = 0; i < 3; ++i)
            v += amp[i] *
                 std::sin(fx[i] * x + fy[i] * y + phase[i]);
        return v;
    }
};

Prototype
makePrototype(Rng &rng)
{
    Prototype p;
    for (int i = 0; i < 3; ++i) {
        p.fx[i] = rng.uniform(0.3, 1.6);
        p.fy[i] = rng.uniform(0.3, 1.6);
        p.phase[i] = rng.uniform(0.0, 6.283);
        p.amp[i] = rng.uniform(0.4, 1.0);
    }
    return p;
}

Dataset
renderSplit(const std::vector<Prototype> &protos,
            const DatasetConfig &cfg, int samples, Rng &rng)
{
    const int pixels = cfg.imageSize * cfg.imageSize;
    Dataset d;
    d.x = Matrix(static_cast<size_t>(samples),
                 static_cast<size_t>(pixels));
    d.labels.resize(static_cast<size_t>(samples));
    for (int s = 0; s < samples; ++s) {
        int label = static_cast<int>(rng.uniformInt(
            static_cast<uint64_t>(cfg.classes)));
        d.labels[static_cast<size_t>(s)] = label;
        double gain = rng.uniform(0.7, 1.3);
        for (int y = 0; y < cfg.imageSize; ++y) {
            for (int x = 0; x < cfg.imageSize; ++x) {
                double v =
                    gain * protos[static_cast<size_t>(label)].value(x, y) +
                    rng.gaussian(0.0, cfg.noise);
                d.x.at(static_cast<size_t>(s),
                       static_cast<size_t>(y * cfg.imageSize + x)) =
                    static_cast<float>(v);
            }
        }
    }
    return d;
}

} // namespace

DatasetPair
makeSynthCifar(const DatasetConfig &cfg)
{
    panic_if(cfg.classes < 2, "need at least two classes");
    Rng rng(cfg.seed);
    std::vector<Prototype> protos;
    protos.reserve(static_cast<size_t>(cfg.classes));
    for (int c = 0; c < cfg.classes; ++c)
        protos.push_back(makePrototype(rng));

    DatasetPair pair;
    pair.classes = cfg.classes;
    pair.train = renderSplit(protos, cfg, cfg.trainSamples, rng);
    pair.test = renderSplit(protos, cfg, cfg.testSamples, rng);
    return pair;
}

} // namespace fpraker
