#include "train/mac_modes.h"

#include <cmath>
#include <vector>

#include "common/logging.h"

namespace fpraker {

const char *
macModeLabel(MacMode mode)
{
    switch (mode) {
      case MacMode::NativeFp32:
        return "Native_FP32";
      case MacMode::Bf16Chunked:
        return "Baseline_BF16";
      case MacMode::FPRakerEmulated:
        return "FPRaker_BF16";
    }
    panic("bad mac mode");
}

MacEngine::MacEngine(MacMode mode, PeConfig pe_cfg)
    : mode_(mode), peCfg_(pe_cfg)
{
    if (mode_ == MacMode::FPRakerEmulated)
        pe_ = std::make_unique<FPRakerPe>(peCfg_);
}

float
MacEngine::dot(const float *a, const float *b, size_t n) const
{
    return dotStrided(a, b, n, 1);
}

float
MacEngine::dotStrided(const float *a, const float *b, size_t n,
                      size_t b_stride) const
{
    switch (mode_) {
      case MacMode::NativeFp32: {
        float sum = 0.0f;
        for (size_t i = 0; i < n; ++i)
            sum = std::fma(a[i], b[i * b_stride], sum);
        return sum;
      }
      case MacMode::Bf16Chunked: {
        ChunkedAccumulator acc(peCfg_.acc);
        for (size_t i = 0; i < n; ++i)
            acc.addProduct(BFloat16::fromFloat(a[i]),
                           BFloat16::fromFloat(b[i * b_stride]));
        return acc.total();
      }
      case MacMode::FPRakerEmulated: {
        FPRakerPe &pe = *pe_;
        pe.reset();
        const int lanes = peCfg_.lanes;
        MacPair pairs[ExponentBlockResult::kMaxLanes] = {};
        int fill = 0;
        for (size_t i = 0; i < n; ++i) {
            pairs[fill++] =
                MacPair{BFloat16::fromFloat(a[i]),
                        BFloat16::fromFloat(b[i * b_stride])};
            if (fill == lanes) {
                pe.processSet(pairs, lanes);
                fill = 0;
            }
        }
        if (fill > 0) {
            for (int l = fill; l < lanes; ++l)
                pairs[l] = MacPair{};
            pe.processSet(pairs, lanes);
        }
        return pe.resultFloat();
      }
    }
    panic("bad mac mode");
}

} // namespace fpraker
