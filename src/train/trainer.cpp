#include "train/trainer.h"

#include <memory>

#include "common/logging.h"
#include "common/rng.h"

namespace fpraker {

MlpTrainer::MlpTrainer(const DatasetPair &data, const TrainConfig &cfg)
    : data_(data), cfg_(cfg)
{
    panic_if(cfg_.epochs < 1 || cfg_.batchSize < 1, "bad train config");
}

TrainResult
MlpTrainer::run(MacMode mode, PeConfig pe_cfg)
{
    MacEngine eng(mode, pe_cfg);
    TrainResult result;
    result.mode = mode;

    // Build the layer stack with the same seeds for every mode so the
    // only difference between runs is the MAC arithmetic.
    std::vector<DenseLayer> dense;
    std::vector<size_t> dims;
    dims.push_back(data_.train.features());
    for (size_t h : cfg_.hidden)
        dims.push_back(h);
    dims.push_back(static_cast<size_t>(data_.classes));
    for (size_t i = 0; i + 1 < dims.size(); ++i)
        dense.emplace_back(dims[i], dims[i + 1],
                           cfg_.seed * 131 + i * 17);
    ReluLayer relu;

    const size_t n_train = data_.train.samples();
    Rng shuffle_rng(cfg_.seed ^ 0xbadcafe);
    std::vector<size_t> order(n_train);
    for (size_t i = 0; i < n_train; ++i)
        order[i] = i;

    for (int epoch = 0; epoch < cfg_.epochs; ++epoch) {
        // Fisher-Yates shuffle, deterministic across modes.
        for (size_t i = n_train - 1; i > 0; --i) {
            size_t j = shuffle_rng.uniformInt(i + 1);
            std::swap(order[i], order[j]);
        }

        double epoch_loss = 0.0;
        int batches = 0;
        for (size_t start = 0; start + cfg_.batchSize <= n_train;
             start += static_cast<size_t>(cfg_.batchSize)) {
            size_t bs = static_cast<size_t>(cfg_.batchSize);
            Matrix x(bs, data_.train.features());
            std::vector<int> labels(bs);
            for (size_t i = 0; i < bs; ++i) {
                size_t src = order[start + i];
                for (size_t c = 0; c < x.cols(); ++c)
                    x.at(i, c) = data_.train.x.at(src, c);
                labels[i] = data_.train.labels[src];
            }

            // Forward, keeping pre-activation inputs for backward.
            std::vector<Matrix> inputs;
            std::vector<Matrix> preacts;
            Matrix cur = x;
            for (size_t li = 0; li < dense.size(); ++li) {
                inputs.push_back(cur);
                Matrix z = dense[li].forward(eng, cur);
                preacts.push_back(z);
                cur = (li + 1 < dense.size()) ? relu.forward(z) : z;
            }

            Matrix dlogits;
            epoch_loss += SoftmaxCrossEntropy::lossAndGrad(cur, labels,
                                                           dlogits);
            ++batches;

            // Backward through the stack.
            Matrix grad = dlogits;
            for (size_t li = dense.size(); li-- > 0;) {
                if (li + 1 < dense.size())
                    grad = relu.backward(preacts[li], grad);
                grad = dense[li].backward(eng, inputs[li], grad);
            }
            for (auto &layer : dense)
                layer.step(cfg_.learningRate);
        }

        // Test accuracy with the same arithmetic.
        Matrix cur = data_.test.x;
        for (size_t li = 0; li < dense.size(); ++li) {
            Matrix z = dense[li].forward(eng, cur);
            cur = (li + 1 < dense.size()) ? relu.forward(z) : z;
        }
        result.testAccuracy.push_back(
            SoftmaxCrossEntropy::accuracy(cur, data_.test.labels));
        result.trainLoss.push_back(
            static_cast<float>(epoch_loss / std::max(1, batches)));
    }
    return result;
}

} // namespace fpraker
