#include "train/tensor.h"

#include "common/logging.h"
#include "common/rng.h"

namespace fpraker {

Matrix::Matrix(size_t rows, size_t cols, float fill)
    : rows_(rows), cols_(cols),
      data_(rows * cols, fill)
{
}

void
Matrix::randomize(double stddev, uint64_t seed)
{
    Rng rng(seed);
    for (auto &v : data_)
        v = static_cast<float>(rng.gaussian(0.0, stddev));
}

void
Matrix::addScaled(const Matrix &other, float scale)
{
    panic_if(other.size() != size(), "shape mismatch in addScaled");
    for (size_t i = 0; i < data_.size(); ++i)
        data_[i] += other.data_[i] * scale;
}

void
Matrix::zero()
{
    std::fill(data_.begin(), data_.end(), 0.0f);
}

Matrix
Matrix::transposed() const
{
    Matrix t(cols_, rows_);
    for (size_t r = 0; r < rows_; ++r)
        for (size_t c = 0; c < cols_; ++c)
            t.at(c, r) = at(r, c);
    return t;
}

} // namespace fpraker
