/**
 * @file
 * Per-layer accumulator-width profiling (paper section V-G, Fig. 21).
 *
 * Sakr et al. ("Accumulation bit-width scaling for ultra-low precision
 * training") derive the accumulator mantissa width needed to keep
 * swamping error from hurting convergence: the variance lost to
 * swamping falls off once the accumulator carries the product mantissa
 * width plus extra bits that grow with the logarithm of the
 * accumulation length n. FPRaker consumes such per-layer widths
 * directly as its out-of-bounds threshold: a narrower accumulator
 * means earlier OB cutoffs and more skipped terms — performance scales
 * with the profile while the fixed-width baseline cannot benefit.
 */

#ifndef FPRAKER_TRAIN_ACC_WIDTH_PROFILER_H
#define FPRAKER_TRAIN_ACC_WIDTH_PROFILER_H

#include <vector>

#include "trace/layer.h"

namespace fpraker {

/** Profiler parameters. */
struct AccWidthConfig
{
    /**
     * Variance-budget margin in bits added on top of the log2(n)
     * growth term (covers the chunk-based accumulation headroom).
     */
    int marginBits = 2;

    /** Architectural ceiling: the PE register's fraction width. */
    int maxFracBits = 12;

    /** Floor to keep rounding well-behaved. */
    int minFracBits = 4;
};

/** Per-layer accumulator widths for the three training ops. */
struct LayerAccWidth
{
    std::string layer;
    int forwardBits;    //!< A x W (accumulation length K)
    int inputGradBits;  //!< G x W (accumulation length N)
    int weightGradBits; //!< A x G (accumulation length M)
};

/**
 * Accumulator fraction width for a dot product of length @p n:
 * ceil(log2 n) / 2 + margin, clamped to the configured range.
 */
int requiredFracBits(int64_t n, const AccWidthConfig &cfg = {});

/** Profile every layer of a network. */
std::vector<LayerAccWidth> profileAccumulatorWidths(
    const std::vector<LayerShape> &layers,
    const AccWidthConfig &cfg = {});

/** Accumulation length of @p op on @p layer (the reduced dimension). */
int64_t accumulationLength(const LayerShape &layer, TrainingOp op);

} // namespace fpraker

#endif // FPRAKER_TRAIN_ACC_WIDTH_PROFILER_H
