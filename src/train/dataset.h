/**
 * @file
 * Procedural classification dataset ("SynthCIFAR").
 *
 * The paper's Fig. 17 trains ResNet18 on CIFAR-10/100; offline we
 * substitute a procedurally generated image-classification task with
 * the same role: class-conditional prototype textures (mixtures of
 * Gabor-like patches) plus per-sample noise and random gain, rendered
 * to small images. The arithmetic-parity claim being reproduced does
 * not depend on the dataset — only on every MAC flowing through the
 * emulated PE (see DESIGN.md).
 */

#ifndef FPRAKER_TRAIN_DATASET_H
#define FPRAKER_TRAIN_DATASET_H

#include <cstdint>
#include <vector>

#include "train/tensor.h"

namespace fpraker {

/** Generation parameters. */
struct DatasetConfig
{
    int classes = 10;
    int imageSize = 12;   //!< Images are imageSize x imageSize.
    int trainSamples = 2048;
    int testSamples = 512;
    double noise = 0.35;  //!< Per-pixel Gaussian noise stddev.
    uint64_t seed = 2024;
};

/** An in-memory dataset split. */
struct Dataset
{
    Matrix x;                //!< [samples x pixels]
    std::vector<int> labels; //!< [samples]

    size_t samples() const { return x.rows(); }
    size_t features() const { return x.cols(); }
};

/** Train/test pair. */
struct DatasetPair
{
    Dataset train;
    Dataset test;
    int classes = 0;
};

/** Generate a SynthCIFAR instance. */
DatasetPair makeSynthCifar(const DatasetConfig &cfg = DatasetConfig{});

} // namespace fpraker

#endif // FPRAKER_TRAIN_DATASET_H
