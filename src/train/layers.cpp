#include "train/layers.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace fpraker {

DenseLayer::DenseLayer(size_t in, size_t out, uint64_t seed)
    : in_(in), out_(out), w_(in, out), b_(1, out), dw_(in, out),
      db_(1, out)
{
    // Kaiming initialization for ReLU networks.
    w_.randomize(std::sqrt(2.0 / static_cast<double>(in)), seed);
}

Matrix
DenseLayer::forward(const MacEngine &eng, const Matrix &x) const
{
    panic_if(x.cols() != in_, "dense forward shape mismatch");
    Matrix y(x.rows(), out_);
    for (size_t r = 0; r < x.rows(); ++r)
        for (size_t c = 0; c < out_; ++c)
            y.at(r, c) = eng.dotStrided(x.row(r), w_.data() + c, in_,
                                        out_) +
                         b_.at(0, c);
    return y;
}

Matrix
DenseLayer::backward(const MacEngine &eng, const Matrix &x,
                     const Matrix &dy)
{
    panic_if(dy.cols() != out_ || dy.rows() != x.rows(),
             "dense backward shape mismatch");

    // dL/dx = dy . W^T  (Eq. 2: G x W)
    Matrix dx(x.rows(), in_);
    for (size_t r = 0; r < x.rows(); ++r)
        for (size_t c = 0; c < in_; ++c)
            dx.at(r, c) =
                eng.dot(dy.row(r), w_.row(c), out_);

    // dL/dW = x^T . dy  (Eq. 3: A x G) — accumulate over the batch.
    Matrix xt = x.transposed();   // [in x batch]
    Matrix dyt = dy.transposed(); // [out x batch]
    for (size_t i = 0; i < in_; ++i)
        for (size_t o = 0; o < out_; ++o)
            dw_.at(i, o) +=
                eng.dot(xt.row(i), dyt.row(o), x.rows());

    for (size_t o = 0; o < out_; ++o) {
        float s = 0.0f;
        for (size_t r = 0; r < dy.rows(); ++r)
            s += dy.at(r, o);
        db_.at(0, o) += s;
    }
    return dx;
}

void
DenseLayer::step(float lr)
{
    w_.addScaled(dw_, -lr);
    b_.addScaled(db_, -lr);
    dw_.zero();
    db_.zero();
}

Matrix
ReluLayer::forward(const Matrix &x) const
{
    Matrix y(x.rows(), x.cols());
    for (size_t i = 0; i < x.size(); ++i)
        y.data()[i] = std::max(0.0f, x.data()[i]);
    return y;
}

Matrix
ReluLayer::backward(const Matrix &x, const Matrix &dy) const
{
    Matrix dx(x.rows(), x.cols());
    for (size_t i = 0; i < x.size(); ++i)
        dx.data()[i] = x.data()[i] > 0.0f ? dy.data()[i] : 0.0f;
    return dx;
}

float
SoftmaxCrossEntropy::lossAndGrad(const Matrix &logits,
                                 const std::vector<int> &labels,
                                 Matrix &dlogits)
{
    panic_if(labels.size() != logits.rows(), "label count mismatch");
    dlogits = Matrix(logits.rows(), logits.cols());
    double loss = 0.0;
    for (size_t r = 0; r < logits.rows(); ++r) {
        float mx = logits.at(r, 0);
        for (size_t c = 1; c < logits.cols(); ++c)
            mx = std::max(mx, logits.at(r, c));
        double denom = 0.0;
        for (size_t c = 0; c < logits.cols(); ++c)
            denom += std::exp(static_cast<double>(logits.at(r, c) - mx));
        int label = labels[r];
        for (size_t c = 0; c < logits.cols(); ++c) {
            double p =
                std::exp(static_cast<double>(logits.at(r, c) - mx)) /
                denom;
            dlogits.at(r, c) = static_cast<float>(
                (p - (static_cast<int>(c) == label ? 1.0 : 0.0)) /
                static_cast<double>(logits.rows()));
            if (static_cast<int>(c) == label)
                loss -= std::log(std::max(p, 1e-12));
        }
    }
    return static_cast<float>(loss / static_cast<double>(logits.rows()));
}

double
SoftmaxCrossEntropy::accuracy(const Matrix &logits,
                              const std::vector<int> &labels)
{
    size_t correct = 0;
    for (size_t r = 0; r < logits.rows(); ++r) {
        size_t best = 0;
        for (size_t c = 1; c < logits.cols(); ++c)
            if (logits.at(r, c) > logits.at(r, best))
                best = c;
        correct += static_cast<int>(best) == labels[r];
    }
    return static_cast<double>(correct) /
           static_cast<double>(logits.rows());
}

} // namespace fpraker
