#include "train/acc_width_profiler.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace fpraker {

int64_t
accumulationLength(const LayerShape &layer, TrainingOp op)
{
    switch (op) {
      case TrainingOp::Forward:
        return layer.k;
      case TrainingOp::InputGrad:
        return layer.n;
      case TrainingOp::WeightGrad:
        return layer.m;
    }
    panic("bad op");
}

int
requiredFracBits(int64_t n, const AccWidthConfig &cfg)
{
    panic_if(n < 1, "bad accumulation length %lld",
             static_cast<long long>(n));
    // Variance-balance bound: random-walk growth of the partial sum is
    // sqrt(n), so representing it against the product lsb costs
    // ~log2(n)/2 extra bits; the margin covers rounding and the
    // chunked-accumulation spill.
    double grow = 0.5 * std::log2(static_cast<double>(n));
    int bits = static_cast<int>(std::ceil(grow)) + cfg.marginBits;
    return std::clamp(bits, cfg.minFracBits, cfg.maxFracBits);
}

std::vector<LayerAccWidth>
profileAccumulatorWidths(const std::vector<LayerShape> &layers,
                         const AccWidthConfig &cfg)
{
    std::vector<LayerAccWidth> out;
    out.reserve(layers.size());
    for (const auto &l : layers) {
        LayerAccWidth w;
        w.layer = l.name;
        w.forwardBits = requiredFracBits(
            accumulationLength(l, TrainingOp::Forward), cfg);
        w.inputGradBits = requiredFracBits(
            accumulationLength(l, TrainingOp::InputGrad), cfg);
        w.weightGradBits = requiredFracBits(
            accumulationLength(l, TrainingOp::WeightGrad), cfg);
        out.push_back(std::move(w));
    }
    return out;
}

} // namespace fpraker
