#include "energy/area_model.h"

#include <cmath>

#include "common/logging.h"

namespace fpraker {

namespace {

// Per-element costs in um^2 at 65 nm, chosen so the default (paper)
// configuration reproduces Table III exactly. The relative weights
// follow standard-cell intuition: a WxW multiplier costs ~W^2 full
// adders, a W-bit adder ~W, a W-bit x P-position shifter ~W*log2(P)
// muxes, registers ~6T per bit.
constexpr double kFullAdderUm2 = 9.2;
constexpr double kMuxBitUm2 = 4.6;
constexpr double kRegBitUm2 = 7.4;
constexpr double kCompareBitUm2 = 5.0;

// Power density: mW per um^2 of active logic at 600 MHz, 65 nm, with
// typical activity — calibrated so the tile power lands on Table III.
constexpr double kFprMwPerUm2 = 104.0 / 304118.0;
constexpr double kBaseMwPerUm2 = 475.0 / 1421579.0;
constexpr double kEncoderMwPerUm2 = 5.5 / 12950.0;

/** Area of one FPRaker PE in um^2 (before grid-level calibration). */
double
fprPeRawUm2(const PeConfig &cfg, PeAreaBreakdown *out)
{
    const int lanes = cfg.lanes;
    const int frac = cfg.acc.fracBits;
    const int acc_bits = frac + cfg.acc.intBits;

    PeAreaBreakdown b;
    // Exponent block (shared between 2 PEs; half is attributed here):
    // lane exponent adders (8b), a MAX comparator tree, delta
    // subtractors, and the latched delta registers.
    double exp_block = lanes * (8 * kFullAdderUm2)        // Ae+Be
                       + (lanes - 1) * (9 * kCompareBitUm2) // MAX tree
                       + lanes * (9 * kFullAdderUm2)      // emax - ABe
                       + lanes * (9 * kRegBitUm2);        // latched deltas
    b.exponentBlockUm2 = exp_block / 2.0;

    // Limited per-lane shifters: 9-bit inputs shifted up to maxDelta
    // positions, plus the shared base shifter across the accumulator
    // width.
    int delta_stages = std::max(
        1, static_cast<int>(std::ceil(std::log2(cfg.maxDelta + 1))));
    b.shiftersUm2 =
        lanes * (9.0 * delta_stages * kMuxBitUm2) +
        (acc_bits + 2) * 4.0 * kMuxBitUm2; // base shifter, log2(12)~4

    // Adder tree over lanes of (8 + maxDelta + 1)-bit operands.
    double tree = 0.0;
    int width = 9 + cfg.maxDelta;
    for (int level = lanes / 2; level >= 1; level /= 2) {
        tree += level * width * kFullAdderUm2;
        ++width;
    }
    b.adderTreeUm2 = tree;

    // Accumulator: adder + register + normalize shifter + rounding.
    b.accumulatorUm2 = (acc_bits + 2) * kFullAdderUm2 +
                       (acc_bits + 2) * kRegBitUm2 +
                       (acc_bits + 2) * 4.0 * kMuxBitUm2 +
                       8 * kFullAdderUm2;

    // Per-lane control: OB comparators, valid/delta control, sign xors.
    b.controlUm2 = lanes * (4 * kCompareBitUm2 + 3 * kRegBitUm2 +
                            2 * kFullAdderUm2);

    if (out)
        *out = b;
    return b.totalUm2();
}

/** Area of one baseline bit-parallel PE in um^2. */
double
basePeRawUm2(const PeConfig &cfg)
{
    const int lanes = cfg.lanes;
    const int frac = cfg.acc.fracBits;
    const int acc_bits = frac + cfg.acc.intBits;

    // 8x8 multipliers dominate; products are 16b, aligned by full
    // shifters before a 16b-wide tree and the same accumulator.
    double mult = lanes * (8.0 * 8.0 * kFullAdderUm2);
    double exp_block = lanes * (8 * kFullAdderUm2) +
                       (lanes - 1) * (9 * kCompareBitUm2) +
                       lanes * (9 * kFullAdderUm2);
    double align = lanes * (16.0 * 5.0 * kMuxBitUm2); // full shifters
    double tree = 0.0;
    int width = 17;
    for (int level = lanes / 2; level >= 1; level /= 2) {
        tree += level * width * kFullAdderUm2;
        ++width;
    }
    double acc = (acc_bits + 2) * kFullAdderUm2 +
                 (acc_bits + 2) * kRegBitUm2 +
                 (acc_bits + 2) * 4.0 * kMuxBitUm2 + 8 * kFullAdderUm2;
    return mult + exp_block + align + tree + acc;
}

/** Shared term encoders for one tile column (8 lanes). */
double
encodersRawUm2(const PeConfig &cfg)
{
    // Canonical (NAF) encoder per lane: 8b scan logic + term registers
    // + OB feedback gating.
    return cfg.lanes *
           (8 * kFullAdderUm2 + 12 * kRegBitUm2 + 4 * kMuxBitUm2);
}

// Calibration: scale raw estimates so the default configuration matches
// Table III exactly (post-layout numbers absorb wiring/overheads the
// component model cannot see).
double
fprCalibration()
{
    static const double scale = [] {
        PeConfig def;
        double raw = fprPeRawUm2(def, nullptr) * 64.0;
        return 304118.0 / raw;
    }();
    return scale;
}

double
baseCalibration()
{
    static const double scale = [] {
        PeConfig def;
        return 1421579.0 / (basePeRawUm2(def) * 64.0);
    }();
    return scale;
}

double
encoderCalibration()
{
    static const double scale = [] {
        PeConfig def;
        return 12950.0 / (encodersRawUm2(def) * 8.0);
    }();
    return scale;
}

} // namespace

TileAreaReport
AreaModel::fprTile(const TileConfig &cfg)
{
    TileAreaReport r;
    double pe = fprPeRawUm2(cfg.pe, nullptr) * fprCalibration();
    double enc = encodersRawUm2(cfg.pe) * encoderCalibration();
    r.peArrayUm2 = pe * cfg.rows * cfg.cols;
    r.encodersUm2 = enc * cfg.cols; // shared along each column
    r.peArrayMw = r.peArrayUm2 * kFprMwPerUm2;
    r.encodersMw = r.encodersUm2 * kEncoderMwPerUm2;
    return r;
}

TileAreaReport
AreaModel::baselineTile(const TileConfig &cfg)
{
    TileAreaReport r;
    r.peArrayUm2 =
        basePeRawUm2(cfg.pe) * baseCalibration() * cfg.rows * cfg.cols;
    r.encodersUm2 = 0.0;
    r.peArrayMw = r.peArrayUm2 * kBaseMwPerUm2;
    r.encodersMw = 0.0;
    return r;
}

double
AreaModel::areaRatio(const TileConfig &cfg)
{
    return fprTile(cfg).totalUm2() / baselineTile(cfg).totalUm2();
}

int
AreaModel::isoComputeTiles(int baseline_tiles, const TileConfig &cfg)
{
    double ratio = areaRatio(cfg);
    panic_if(ratio <= 0.0, "bad area ratio");
    // 8 x 1421579 / 317068 = 35.87 -> the paper deploys 36 tiles.
    return static_cast<int>(std::lround(baseline_tiles / ratio));
}

PeAreaBreakdown
AreaModel::fprPeBreakdown(const PeConfig &cfg)
{
    PeAreaBreakdown b;
    fprPeRawUm2(cfg, &b);
    double s = fprCalibration();
    b.exponentBlockUm2 *= s;
    b.shiftersUm2 *= s;
    b.adderTreeUm2 *= s;
    b.accumulatorUm2 *= s;
    b.controlUm2 *= s;
    return b;
}

TileAreaReport
AreaModel::bitPragmaticFpTile(const TileConfig &cfg)
{
    // The paper reports the Bfloat16 Bit-Pragmatic PE at 2.5x smaller
    // than the bit-parallel PE (all-inclusive, with its private term
    // encoders); power scales with area at FPRaker's logic power
    // density (both are shift-and-add datapaths).
    TileAreaReport base = baselineTile(cfg);
    TileAreaReport r;
    r.peArrayUm2 = base.peArrayUm2 / 2.5;
    r.encodersUm2 = 0.0;
    r.peArrayMw = r.peArrayUm2 * kFprMwPerUm2;
    r.encodersMw = 0.0;
    return r;
}

int
AreaModel::bitPragmaticIsoTiles(int baseline_tiles)
{
    double ratio = bitPragmaticFpTile().totalUm2() /
                   baselineTile().totalUm2();
    return static_cast<int>(std::lround(baseline_tiles / ratio));
}

} // namespace fpraker
