#include "energy/energy_model.h"

#include <algorithm>

#include "common/logging.h"

namespace fpraker {

EnergyModel::EnergyModel(EnergyModelConfig cfg)
    : cfg_(cfg)
{
    panic_if(cfg_.coreClockHz <= 0, "bad core clock");
}

double
EnergyModel::fprTileCyclePj() const
{
    // mW / Hz = mJ per cycle; x1e9 = pJ.
    return cfg_.fprTileMw / cfg_.coreClockHz * 1e9;
}

double
EnergyModel::baseTileCyclePj() const
{
    return cfg_.baseTileMw / cfg_.coreClockHz * 1e9;
}

CoreEnergyBreakdown
EnergyModel::fprCoreEnergy(double tile_cycles, int tiles,
                           const PeStats &stats) const
{
    // The Table III tile power already reflects measured activity;
    // lane utilization only modulates a residual share of the dynamic
    // power (idle lanes are clock-gated).
    double lane_cycles = static_cast<double>(stats.laneCycles());
    double useful = lane_cycles > 0
                        ? static_cast<double>(stats.laneUseful) /
                              lane_cycles
                        : 0.0;
    double per_cycle = fprTileCyclePj();
    double total_cycles = tile_cycles * static_cast<double>(tiles);
    double activity =
        1.0 - cfg_.fprActivityWeight * (1.0 - useful);
    double energy = total_cycles * per_cycle * activity;

    CoreEnergyBreakdown b;
    b.computePj = energy * cfg_.fprComputeShare;
    b.controlPj = energy * cfg_.fprControlShare;
    b.accumulationPj = energy * cfg_.fprAccumShare;
    return b;
}

double
EnergyModel::baseCoreEnergy(double tile_cycles, int tiles,
                            const BaselinePeStats &stats) const
{
    double macs = static_cast<double>(stats.macs);
    double ineffectual =
        macs > 0 ? static_cast<double>(stats.ineffectualMacs) / macs : 0.0;
    // Ineffectual MACs power-gate the multiplier and its tree branch,
    // saving a residual fraction of the dynamic energy — but never a
    // cycle (section III-A).
    double activity = 1.0 - ineffectual * cfg_.baseGatingSaving;
    double per_cycle = baseTileCyclePj();
    return tile_cycles * static_cast<double>(tiles) * per_cycle *
           activity;
}

double
EnergyModel::sramEnergyPj(double bytes) const
{
    return bytes / 16.0 * cfg_.sramAccessPj;
}

double
EnergyModel::dramEnergyPj(double bytes) const
{
    return bytes * 8.0 * cfg_.dramBitPj;
}

} // namespace fpraker
