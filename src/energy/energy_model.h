/**
 * @file
 * Event-based energy model (paper Figs. 11/12, Table III).
 *
 * Core energy derives from the Table III tile powers at 600 MHz
 * (FPRaker tile 182.5 pJ/cycle, baseline tile 791.7 pJ/cycle) with an
 * activity model: a static floor plus a dynamic share scaled by lane
 * utilization (FPRaker) or non-ineffectual MAC fraction (baseline —
 * which can power-gate idle datapath slices but never save cycles).
 * FPRaker core energy splits into compute (PE stages 1-2), control
 * (control units + shared term encoders) and accumulation (stage 3)
 * for the Fig. 12 breakdown. On-chip SRAM and off-chip DRAM energies
 * are per-access/per-bit models (CACTI / Micron territory).
 */

#ifndef FPRAKER_ENERGY_ENERGY_MODEL_H
#define FPRAKER_ENERGY_ENERGY_MODEL_H

#include <cstdint>

#include "memory/dram.h"
#include "pe/baseline_pe.h"
#include "pe/pe_common.h"

namespace fpraker {

/** Energy model parameters (pJ units). */
struct EnergyModelConfig
{
    double coreClockHz = 600e6;

    // Table III tile powers.
    double fprTileMw = 109.5;
    double baseTileMw = 475.0;

    /**
     * The Table III powers come from data-driven activity factors, so
     * they already embed typical workload activity; only a small
     * residual sensitivity to lane utilization (FPRaker) and MAC
     * power-gating (baseline) remains on top.
     */
    double staticFraction = 0.30;

    /** Residual weight of lane utilization on FPRaker dynamic power. */
    double fprActivityWeight = 0.15;

    // FPRaker dynamic-power split (calibrated to Fig. 12's shape).
    double fprComputeShare = 0.45;
    double fprControlShare = 0.15;
    double fprAccumShare = 0.40;

    /** Dynamic power saved per power-gated baseline MAC lane. */
    double baseGatingSaving = 0.15;

    /** SRAM energy per 16-byte global-buffer access (4 MB bank, 65nm). */
    double sramAccessPj = 620.0;

    /** DRAM energy per bit. */
    double dramBitPj = 10.0;
};

/** Core-energy breakdown for Fig. 12. */
struct CoreEnergyBreakdown
{
    double computePj = 0.0;
    double controlPj = 0.0;
    double accumulationPj = 0.0;

    double
    totalPj() const
    {
        return computePj + controlPj + accumulationPj;
    }
};

/** Energy accounting for one run (one layer-op or a whole model). */
struct EnergyReport
{
    CoreEnergyBreakdown core;
    double sramPj = 0.0;
    double dramPj = 0.0;

    double totalPj() const { return core.totalPj() + sramPj + dramPj; }

    void
    merge(const EnergyReport &o)
    {
        core.computePj += o.core.computePj;
        core.controlPj += o.core.controlPj;
        core.accumulationPj += o.core.accumulationPj;
        sramPj += o.sramPj;
        dramPj += o.dramPj;
    }
};

/** The accelerator energy model. */
class EnergyModel
{
  public:
    explicit EnergyModel(EnergyModelConfig cfg = {});

    /** Energy per tile-cycle (pJ) at full activity. */
    double fprTileCyclePj() const;
    double baseTileCyclePj() const;

    /**
     * FPRaker core energy: @p tile_cycles wall-clock cycles across
     * @p tiles tiles, with lane activity from @p stats.
     */
    CoreEnergyBreakdown fprCoreEnergy(double tile_cycles, int tiles,
                                      const PeStats &stats) const;

    /** Baseline core energy with power-gating of ineffectual MACs. */
    double baseCoreEnergy(double tile_cycles, int tiles,
                          const BaselinePeStats &stats) const;

    /** Global-buffer energy for @p bytes moved (16B accesses). */
    double sramEnergyPj(double bytes) const;

    /** DRAM energy for @p bytes moved. */
    double dramEnergyPj(double bytes) const;

    const EnergyModelConfig &config() const { return cfg_; }

  private:
    EnergyModelConfig cfg_;
};

} // namespace fpraker

#endif // FPRAKER_ENERGY_ENERGY_MODEL_H
