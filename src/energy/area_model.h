/**
 * @file
 * Component-level area/power model (paper Table III).
 *
 * The paper implements both tiles in Verilog and reports post-layout
 * area and power at 65 nm TSMC / 600 MHz (Synopsys DC + Cadence
 * Innovus). Offline we reproduce Table III with an analytical
 * component model: per-bit area/power costs for the datapath elements
 * (multipliers, shifters, adder trees, registers, comparators,
 * encoders) calibrated so the tile-level aggregates land on the
 * published numbers — FPRaker 317,068 um^2 / 109.5 mW per tile vs the
 * baseline's 1,421,579 um^2 / 475 mW (0.22x area, 0.23x power). The
 * iso-compute tile counts (36 vs 8) follow from the area ratio.
 */

#ifndef FPRAKER_ENERGY_AREA_MODEL_H
#define FPRAKER_ENERGY_AREA_MODEL_H

#include "pe/pe_common.h"
#include "tile/tile.h"

namespace fpraker {

/** Area/power rollup for one tile. */
struct TileAreaReport
{
    double peArrayUm2 = 0.0;
    double encodersUm2 = 0.0;
    double totalUm2() const { return peArrayUm2 + encodersUm2; }

    double peArrayMw = 0.0;
    double encodersMw = 0.0;
    double totalMw() const { return peArrayMw + encodersMw; }
};

/** Per-component breakdown of one FPRaker PE (for ablation studies). */
struct PeAreaBreakdown
{
    double exponentBlockUm2 = 0.0; //!< Adders, MAX tree, delta logic.
    double shiftersUm2 = 0.0;      //!< Per-lane limited + base shifter.
    double adderTreeUm2 = 0.0;
    double accumulatorUm2 = 0.0;
    double controlUm2 = 0.0;

    double
    totalUm2() const
    {
        return exponentBlockUm2 + shiftersUm2 + adderTreeUm2 +
               accumulatorUm2 + controlUm2;
    }
};

/**
 * Analytical area/power model calibrated to Table III.
 */
class AreaModel
{
  public:
    /** Table III row: FPRaker tile (8x8 PEs + shared encoders). */
    static TileAreaReport fprTile(const TileConfig &cfg = TileConfig{});

    /** Table III row: baseline tile (8x8 bit-parallel PEs). */
    static TileAreaReport baselineTile(
        const TileConfig &cfg = TileConfig{});

    /** FPRaker : baseline tile area ratio (paper: 0.22). */
    static double areaRatio(const TileConfig &cfg = TileConfig{});

    /** Iso-compute-area FPRaker tile count for @p baseline_tiles. */
    static int isoComputeTiles(int baseline_tiles,
                               const TileConfig &cfg = TileConfig{});

    /** Component breakdown of one FPRaker PE. */
    static PeAreaBreakdown fprPeBreakdown(const PeConfig &cfg = PeConfig{});

    /**
     * The Bfloat16 Bit-Pragmatic tile of the paper's introduction: the
     * PE is only 2.5x smaller than the bit-parallel PE (full-range
     * shifters, private exponent block), so iso-compute area affords
     * just 20 tiles against the baseline's 8.
     */
    static TileAreaReport bitPragmaticFpTile(
        const TileConfig &cfg = TileConfig{});

    /** Iso-compute-area Bit-Pragmatic tile count. */
    static int bitPragmaticIsoTiles(int baseline_tiles);
};

} // namespace fpraker

#endif // FPRAKER_ENERGY_AREA_MODEL_H
