/**
 * @file
 * Described-model catalog for real-workload ingestion.
 *
 * The zoo in trace/model_zoo.h stores models directly as lowered GEMM
 * inventories at the paper's fixed batch sizes. The workload catalog
 * instead keeps the *architectural* description — conv spatial/channel
 * geometry, FC widths, attention/MLP blocks — parameterized by batch
 * size and sequence length, so the lowering pass (workload/lowering.h)
 * can instantiate the same model at any batch geometry. Per-layer value
 * statistics come from rule-driven profiles over (family, layer kind,
 * depth), the offline substitute for captured training tensors.
 */

#ifndef FPRAKER_WORKLOAD_CATALOG_H
#define FPRAKER_WORKLOAD_CATALOG_H

#include <string>
#include <vector>

#include "trace/training_profile.h"

namespace fpraker {
namespace workload {

/** Batch/sequence geometry a catalog model is instantiated at. */
struct BatchGeometry
{
    int batch = 32;
    int seq = 128; //!< Tokens per sample (transformer layers only).

    /** Short label for names and report rows ("b32" / "b32s128"). */
    std::string label(bool with_seq = false) const;
};

/** Kinds of described layers. */
enum class LayerKind
{
    Conv,           //!< 2D convolution (im2col GEMM view).
    FullyConnected, //!< Per-sample dense layer.
    Attention,      //!< One attention-stage GEMM of a block.
    Mlp,            //!< Per-token dense layer (transformer FFN).
};

/** The four attention-stage GEMMs of a transformer block. */
enum class AttnStage
{
    Qkv,     //!< Fused Q/K/V projection: [T, D] x [D, 3D].
    Scores,  //!< Q x K^T per head: [B*H*S, dHead] -> [.., S].
    Context, //!< P x V per head: [B*H*S, S] -> [.., dHead].
    Out,     //!< Output projection: [T, D] x [D, D].
};

/** Convolution geometry (pre-im2col). */
struct ConvSpec
{
    int inH = 0, inW = 0; //!< Input spatial size.
    int cin = 0, cout = 0;
    int kh = 0, kw = 0;
    int stride = 1, pad = 0;

    int
    outH() const
    {
        return (inH + 2 * pad - kh) / stride + 1;
    }
    int
    outW() const
    {
        return (inW + 2 * pad - kw) / stride + 1;
    }
};

/** Dense-layer widths (FullyConnected and Mlp). */
struct FcSpec
{
    int in = 0, out = 0;
};

/** Attention-stage parameters. */
struct AttnSpec
{
    AttnStage stage = AttnStage::Qkv;
    int heads = 0;
    int dModel = 0;

    int
    dHead() const
    {
        return heads > 0 ? dModel / heads : dModel;
    }
};

/** One described layer of a catalog model. */
struct CatalogLayer
{
    std::string name;
    LayerKind kind = LayerKind::Conv;
    ConvSpec conv;
    FcSpec fc;
    AttnSpec attn;
    double depth = 0.0; //!< Fractional position in the model, [0, 1].
};

/** One described model. */
struct CatalogModel
{
    std::string name;   //!< "AlexNet", "VGG-16", "ResNet-50", ...
    std::string family; //!< "cnn" or "transformer".
    std::vector<CatalogLayer> layers;
};

/** The catalog (constructed once): AlexNet, VGG-16, ResNet-50, and a
 *  small transformer block. */
const std::vector<CatalogModel> &workloadCatalog();

/** Look up a catalog model by name (fatal if unknown). */
const CatalogModel &findWorkloadModel(const std::string &name);

/**
 * Rule-driven per-layer value statistics: the family fixes the tensor
 * shapes of the distributions (post-ReLU clustered zeros for CNNs,
 * dense GELU activations and tiny concentrated gradients for
 * transformers) and the layer's depth shifts sparsity and exponent
 * spread the way captured traces do (later conv layers are sparser;
 * early layers see denser inputs). Profiles carry training-progress
 * knots so early-training bit sparsity decays like Fig. 18.
 */
ModelProfile layerProfile(const CatalogModel &model,
                          const CatalogLayer &layer);

} // namespace workload
} // namespace fpraker

#endif // FPRAKER_WORKLOAD_CATALOG_H
