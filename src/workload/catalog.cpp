#include "workload/catalog.h"

#include <algorithm>

#include "common/logging.h"

namespace fpraker {
namespace workload {

std::string
BatchGeometry::label(bool with_seq) const
{
    std::string s = "b" + std::to_string(batch);
    if (with_seq)
        s += "s" + std::to_string(seq);
    return s;
}

namespace {

CatalogLayer
convLayer(const std::string &name, int in_hw, int cin, int cout,
          int kernel, int stride, int pad)
{
    CatalogLayer l;
    l.name = name;
    l.kind = LayerKind::Conv;
    l.conv = ConvSpec{in_hw, in_hw, cin, cout, kernel, kernel, stride,
                      pad};
    return l;
}

CatalogLayer
fcLayer(const std::string &name, int in, int out)
{
    CatalogLayer l;
    l.name = name;
    l.kind = LayerKind::FullyConnected;
    l.fc = FcSpec{in, out};
    return l;
}

CatalogLayer
mlpLayer(const std::string &name, int in, int out)
{
    CatalogLayer l;
    l.name = name;
    l.kind = LayerKind::Mlp;
    l.fc = FcSpec{in, out};
    return l;
}

CatalogLayer
attnLayer(const std::string &name, AttnStage stage, int heads,
          int d_model)
{
    CatalogLayer l;
    l.name = name;
    l.kind = LayerKind::Attention;
    l.attn = AttnSpec{stage, heads, d_model};
    return l;
}

/** Stamp depth = fractional layer position over the finished list. */
void
stampDepths(CatalogModel &m)
{
    const size_t n = m.layers.size();
    for (size_t i = 0; i < n; ++i)
        m.layers[i].depth =
            n > 1 ? static_cast<double>(i) / static_cast<double>(n - 1)
                  : 0.0;
}

CatalogModel
alexnet()
{
    // Canonical AlexNet (227x227 input, ungrouped convolutions): the
    // pooled grids are 55 -> 27 -> 13, matching the zoo's im2col rows.
    CatalogModel m;
    m.name = "AlexNet";
    m.family = "cnn";
    m.layers.push_back(convLayer("conv1", 227, 3, 96, 11, 4, 0));
    m.layers.push_back(convLayer("conv2", 27, 96, 256, 5, 1, 2));
    m.layers.push_back(convLayer("conv3", 13, 256, 384, 3, 1, 1));
    m.layers.push_back(convLayer("conv4", 13, 384, 384, 3, 1, 1));
    m.layers.push_back(convLayer("conv5", 13, 384, 256, 3, 1, 1));
    m.layers.push_back(fcLayer("fc6", 9216, 4096));
    m.layers.push_back(fcLayer("fc7", 4096, 4096));
    m.layers.push_back(fcLayer("fc8", 4096, 1000));
    stampDepths(m);
    return m;
}

CatalogModel
vgg16()
{
    CatalogModel m;
    m.name = "VGG-16";
    m.family = "cnn";
    const struct
    {
        const char *name;
        int hw, cin, cout;
    } convs[] = {
        {"conv1_1", 224, 3, 64},    {"conv1_2", 224, 64, 64},
        {"conv2_1", 112, 64, 128},  {"conv2_2", 112, 128, 128},
        {"conv3_1", 56, 128, 256},  {"conv3_2", 56, 256, 256},
        {"conv3_3", 56, 256, 256},  {"conv4_1", 28, 256, 512},
        {"conv4_2", 28, 512, 512},  {"conv4_3", 28, 512, 512},
        {"conv5_1", 14, 512, 512},  {"conv5_2", 14, 512, 512},
        {"conv5_3", 14, 512, 512},
    };
    for (const auto &c : convs)
        m.layers.push_back(
            convLayer(c.name, c.hw, c.cin, c.cout, 3, 1, 1));
    m.layers.push_back(fcLayer("fc6", 25088, 4096));
    m.layers.push_back(fcLayer("fc7", 4096, 4096));
    m.layers.push_back(fcLayer("fc8", 4096, 1000));
    stampDepths(m);
    return m;
}

CatalogModel
resnet50()
{
    CatalogModel m;
    m.name = "ResNet-50";
    m.family = "cnn";
    m.layers.push_back(convLayer("conv1", 224, 3, 64, 7, 2, 3));
    const struct
    {
        const char *stage;
        int blocks, hw, cin, mid, cout;
    } stages[] = {
        {"res2", 3, 56, 64, 64, 256},
        {"res3", 4, 28, 256, 128, 512},
        {"res4", 6, 14, 512, 256, 1024},
        {"res5", 3, 7, 1024, 512, 2048},
    };
    for (const auto &s : stages) {
        for (int b = 0; b < s.blocks; ++b) {
            int cin = b == 0 ? s.cin : s.cout;
            std::string base =
                std::string(s.stage) + "_" + std::to_string(b);
            m.layers.push_back(
                convLayer(base + "/conv1", s.hw, cin, s.mid, 1, 1, 0));
            m.layers.push_back(convLayer(base + "/conv2", s.hw, s.mid,
                                         s.mid, 3, 1, 1));
            m.layers.push_back(convLayer(base + "/conv3", s.hw, s.mid,
                                         s.cout, 1, 1, 0));
        }
    }
    m.layers.push_back(fcLayer("fc", 2048, 1000));
    stampDepths(m);
    return m;
}

CatalogModel
transformerS()
{
    // One encoder block of a small transformer (D = 512, 8 heads,
    // 4x FFN) — the unit the batch/sequence sweeps scale.
    CatalogModel m;
    m.name = "Transformer-S";
    m.family = "transformer";
    const int heads = 8, d = 512;
    m.layers.push_back(attnLayer("qkv", AttnStage::Qkv, heads, d));
    m.layers.push_back(attnLayer("scores", AttnStage::Scores, heads, d));
    m.layers.push_back(
        attnLayer("context", AttnStage::Context, heads, d));
    m.layers.push_back(attnLayer("attn_out", AttnStage::Out, heads, d));
    m.layers.push_back(mlpLayer("ffn1", d, 4 * d));
    m.layers.push_back(mlpLayer("ffn2", 4 * d, d));
    stampDepths(m);
    return m;
}

/** Shorthand profile constructor (mirrors model_zoo.cpp's vp()). */
ValueProfile
vp(double sparsity, double cluster, double mu, double sigma, double corr,
   int mantissa_bits, double bit_density)
{
    ValueProfile p;
    p.sparsity = sparsity;
    p.zeroClusterLen = cluster;
    p.expMu = mu;
    p.expSigma = sigma;
    p.expCorr = corr;
    p.mantissaBits = mantissa_bits;
    p.bitDensity = bit_density;
    return p;
}

/** Early-training knot: more zeros and fewer active mantissa bits,
 *  decaying to @p late over the first 30% of training (Fig. 18). */
TensorProfile
decaying(const ValueProfile &late, double extra_sparsity,
         double bit_scale)
{
    ValueProfile early = late;
    early.sparsity = std::min(0.95, late.sparsity + extra_sparsity);
    early.bitDensity = late.bitDensity * bit_scale;
    return TensorProfile({{0.0, early}, {0.3, late}, {1.0, late}});
}

} // namespace

const std::vector<CatalogModel> &
workloadCatalog()
{
    static const std::vector<CatalogModel> catalog = [] {
        std::vector<CatalogModel> c;
        c.push_back(alexnet());
        c.push_back(vgg16());
        c.push_back(resnet50());
        c.push_back(transformerS());
        return c;
    }();
    return catalog;
}

const CatalogModel &
findWorkloadModel(const std::string &name)
{
    for (const auto &m : workloadCatalog())
        if (m.name == name)
            return m;
    fatal("unknown workload model '%s'", name.c_str());
}

ModelProfile
layerProfile(const CatalogModel &model, const CatalogLayer &layer)
{
    ModelProfile p;
    const double depth = std::clamp(layer.depth, 0.0, 1.0);
    if (model.family == "cnn") {
        // Post-ReLU activations grow sparser with depth (feature maps
        // specialize); the first layer sees dense natural images.
        double act_sparsity =
            depth == 0.0 && layer.kind == LayerKind::Conv
                ? 0.08
                : 0.30 + 0.28 * depth;
        p.activation = decaying(
            vp(act_sparsity, 10.0, -2.0 - 0.8 * depth, 2.2, 0.90, 3,
               0.17),
            0.10, 0.95);
        p.weight = TensorProfile::constant(
            vp(0.02, 1.5, -3.8, 1.8, 0.80, 4, 0.28));
        // Backpropagated gradients shrink toward the input: deeper
        // (later) layers keep larger, denser gradients.
        p.gradient = decaying(
            vp(0.55 - 0.15 * depth, 10.0, -10.5 + 1.5 * depth, 3.0,
               0.85, 2, 0.16),
            0.08, 0.90);
    } else {
        // Transformer blocks: dense GELU activations with strong bit
        // sparsity, dense weights, tiny concentrated gradients (the
        // Bert calibration of the zoo). Attention score/context
        // streams are softmax-shaped: even narrower exponents.
        bool softmaxy = layer.kind == LayerKind::Attention &&
                        (layer.attn.stage == AttnStage::Scores ||
                         layer.attn.stage == AttnStage::Context);
        p.activation = TensorProfile::constant(
            softmaxy ? vp(0.04, 2.0, -4.5, 1.4, 0.88, 3, 0.14)
                     : vp(0.03, 2.0, -2.5, 2.0, 0.85, 3, 0.16));
        p.weight = TensorProfile::constant(
            vp(0.00, 1.5, -3.5, 1.6, 0.80, 4, 0.24));
        p.gradient = decaying(
            vp(0.06, 3.0, -11.5, 3.0, 0.85, 1, 0.10), 0.04, 0.90);
    }
    return p;
}

} // namespace workload
} // namespace fpraker
