#include "workload/supply.h"

#include <cstring>

#include "common/logging.h"

namespace fpraker {
namespace workload {

namespace {

/** Values of operand @p len-per-step across the whole sample. */
size_t
streamValues(const PhasePlan &plan, size_t len)
{
    return static_cast<size_t>(plan.sampleSteps) * len;
}

/** Start of burst @p bi's window in the concatenated stream. */
size_t
windowStart(const PhasePlan &plan, size_t bi, size_t len)
{
    return bi * static_cast<size_t>(plan.stepsPerOutput) * len;
}

} // namespace

PhaseTrace
PhaseTrace::capture(const PhasePlan &plan)
{
    PhaseTrace t;
    t.plan_ = plan;
    t.serial_.resize(streamValues(plan, plan.aLen));
    t.parallel_.resize(streamValues(plan, plan.bLen));
    GeneratorSlabSupply gen(plan.serialProfile, plan.parallelProfile,
                            plan.baseSeed);
    for (size_t bi = 0; bi < plan.bursts; ++bi) {
        const size_t steps = plan.burstSteps(bi);
        gen.fillSerial(bi,
                       t.serial_.data() +
                           windowStart(plan, bi, plan.aLen),
                       steps * plan.aLen);
        gen.fillParallel(bi,
                         t.parallel_.data() +
                             windowStart(plan, bi, plan.bLen),
                         steps * plan.bLen);
    }
    return t;
}

PhaseTrace
PhaseTrace::adopt(const PhasePlan &plan, std::vector<BFloat16> serial,
                  std::vector<BFloat16> parallel)
{
    panic_if(serial.size() != streamValues(plan, plan.aLen) ||
                 parallel.size() != streamValues(plan, plan.bLen),
             "adopted streams do not match the plan geometry "
             "(%zu/%zu values for %zu/%zu)",
             serial.size(), parallel.size(),
             streamValues(plan, plan.aLen),
             streamValues(plan, plan.bLen));
    PhaseTrace t;
    t.plan_ = plan;
    t.serial_ = std::move(serial);
    t.parallel_ = std::move(parallel);
    return t;
}

const BFloat16 *
PhaseTrace::serialWindow(size_t bi) const
{
    panic_if(bi >= plan_.bursts, "burst %zu out of range", bi);
    return serial_.data() + windowStart(plan_, bi, plan_.aLen);
}

const BFloat16 *
PhaseTrace::parallelWindow(size_t bi) const
{
    panic_if(bi >= plan_.bursts, "burst %zu out of range", bi);
    return parallel_.data() + windowStart(plan_, bi, plan_.bLen);
}

void
TraceSlabSupply::fillSerial(size_t bi, BFloat16 *out, size_t n) const
{
    const PhasePlan &plan = trace_->plan();
    panic_if(n != plan.burstSteps(bi) * plan.aLen,
             "serial window of burst %zu holds %zu values, not %zu", bi,
             plan.burstSteps(bi) * plan.aLen, n);
    std::memcpy(out, trace_->serialWindow(bi), n * sizeof(BFloat16));
}

void
TraceSlabSupply::fillParallel(size_t bi, BFloat16 *out, size_t n) const
{
    const PhasePlan &plan = trace_->plan();
    panic_if(n != plan.burstSteps(bi) * plan.bLen,
             "parallel window of burst %zu holds %zu values, not %zu",
             bi, plan.burstSteps(bi) * plan.bLen, n);
    std::memcpy(out, trace_->parallelWindow(bi), n * sizeof(BFloat16));
}

PhasePlan
unitPlan(const LoweredModel &model, size_t unit,
         const AcceleratorConfig &cfg, double progress)
{
    const WorkloadUnit &u = model.units().at(unit);
    // Mirror Accelerator::runLayerOp's PhaseRunConfig exactly (tile,
    // sampling budget, seed, serial-side policy; stepsPerOutput stays
    // at its default) so the captured streams are the ones the
    // generator path would synthesize.
    PhaseRunConfig prc;
    prc.tile = cfg.tile;
    prc.sampleSteps = cfg.sampleSteps;
    prc.seed = cfg.seed;
    prc.autoSerialSide = cfg.autoSerialSide;
    return planPhaseSample(model.carrierOf(unit), u.shape, u.op,
                           progress, prc);
}

WorkloadSupply::WorkloadSupply(const LoweredModel &model,
                               const AcceleratorConfig &cfg,
                               double progress)
    : model_(&model), progress_(progress)
{
    traces_.reserve(model.units().size());
    supplies_.reserve(model.units().size());
    for (size_t i = 0; i < model.units().size(); ++i) {
        traces_.push_back(std::make_unique<PhaseTrace>(
            PhaseTrace::capture(unitPlan(model, i, cfg, progress))));
        supplies_.push_back(
            std::make_unique<TraceSlabSupply>(*traces_.back()));
    }
}

const SlabSupply &
WorkloadSupply::supplyOf(size_t unit) const
{
    return *supplies_.at(unit);
}

const PhaseTrace &
WorkloadSupply::traceOf(size_t unit) const
{
    return *traces_.at(unit);
}

size_t
WorkloadSupply::totalValues() const
{
    size_t n = 0;
    for (const auto &t : traces_) {
        n += t->serialValues().size();
        n += t->parallelValues().size();
    }
    return n;
}

std::vector<SweepLayerJob>
WorkloadSupply::jobs(const Accelerator &accel) const
{
    std::vector<SweepLayerJob> out = model_->jobs(accel, progress_);
    for (size_t i = 0; i < out.size(); ++i)
        out[i].supply = supplies_[i].get();
    return out;
}

} // namespace workload
} // namespace fpraker
