/**
 * @file
 * im2col/GEMM lowering: catalog layers -> the (layer, op) GEMM units
 * the accelerator consumes.
 *
 * Every training computation of every described layer reduces to one
 * GEMM whose dimensions follow a single transposition rule. With the
 * forward view Z[M,N] = A[M,K] x B[K,N]:
 *
 *   forward      (M, N, K)
 *   input-grad   (M, K, N)   dE/dA = dE/dZ x B^T   (Eq. 2)
 *   weight-grad  (K, N, M)   dE/dB = A^T  x dE/dZ  (Eq. 3)
 *
 * For convolutions the forward triple is the im2col view with the
 * minibatch folded into M: M = batch * outH * outW, N = Cout,
 * K = Cin * kh * kw (SWCaffe's batched im2col + sgemm formulation).
 * kernelArea tracks which ops read the im2col-duplicated activation
 * array as their [M, K] operand (forward and weight-grad), so the
 * memory model can undo the duplication. FC layers fold the batch into
 * M; per-token layers (MLP / attention projections) fold batch * seq;
 * attention score/context GEMMs fold batch * heads * seq.
 */

#ifndef FPRAKER_WORKLOAD_LOWERING_H
#define FPRAKER_WORKLOAD_LOWERING_H

#include <deque>
#include <vector>

#include "sim/sweep_runner.h"
#include "trace/model_zoo.h"
#include "workload/catalog.h"

namespace fpraker {
namespace workload {

/** One lowered (layer, op) GEMM unit of a model. */
struct WorkloadUnit
{
    const CatalogLayer *layer = nullptr; //!< Borrowed from the catalog.
    TrainingOp op = TrainingOp::Forward;
    LayerShape shape; //!< Lowered GEMM view.
};

/** GEMM view of one catalog layer under @p op at @p geom. */
LayerShape lowerLayer(const CatalogLayer &layer, TrainingOp op,
                      const BatchGeometry &geom);

/**
 * A catalog model instantiated at one batch geometry: every (layer,
 * op) unit lowered to its GEMM view, plus one profile-carrier
 * ModelInfo per layer so the accelerator samples each layer under its
 * own statistics (Accelerator::runLayerOp reads model.profile for
 * values and model.layers for the activation-stash footprint — the
 * carrier holds this model's lowered forward shapes, so stash
 * occupancy scales with the batch). Units and carriers have stable
 * addresses for the object's lifetime; jobs() hands out pointers into
 * them, so keep the LoweredModel alive while jobs run.
 */
class LoweredModel
{
  public:
    LoweredModel(const CatalogModel &model, const BatchGeometry &geom);

    LoweredModel(const LoweredModel &) = delete;
    LoweredModel &operator=(const LoweredModel &) = delete;

    /** "AlexNet@b32" (sequence included for transformer families). */
    const std::string &name() const { return name_; }
    const CatalogModel &model() const { return *model_; }
    const BatchGeometry &geometry() const { return geom_; }
    const std::vector<WorkloadUnit> &units() const { return units_; }

    /** The profile carrier of @p unit (indexed like units()). */
    const ModelInfo &carrierOf(size_t unit) const;

    /** MACs of one full training iteration (all units). */
    int64_t totalMacs() const;

    /**
     * One SweepLayerJob per unit on @p accel at @p progress, in unit
     * order. The jobs borrow this object's storage.
     */
    std::vector<SweepLayerJob> jobs(const Accelerator &accel,
                                    double progress) const;

  private:
    const CatalogModel *model_;
    BatchGeometry geom_;
    std::string name_;
    std::vector<WorkloadUnit> units_;
    std::deque<ModelInfo> carriers_;       //!< One per catalog layer.
    std::vector<const ModelInfo *> unitCarrier_; //!< Per unit.
};

} // namespace workload
} // namespace fpraker

#endif // FPRAKER_WORKLOAD_LOWERING_H
