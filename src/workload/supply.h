/**
 * @file
 * Trace-backed data supply: recorded operand streams replayed through
 * the SlabSupply seam.
 *
 * A PhaseTrace materializes the exact per-burst operand windows of one
 * sampled (layer, op) phase — the same geometry planPhaseSample()
 * derives, captured through the batched SIMD fill path — and
 * TraceSlabSupply replays them. Replay is a pure function of the burst
 * index (a window copy), so trace-backed runs keep the bit-exact
 * determinism contract at any thread count, and capture-from-generator
 * guarantees trace-backed and generator-backed slabs are bit-identical
 * by construction (tests/test_workload.cpp asserts both properties).
 *
 * WorkloadSupply bundles one trace per unit of a LoweredModel so a
 * whole model sweep can run trace-backed (ingestion-shaped: the
 * simulator consumes recorded streams, not a live generator).
 */

#ifndef FPRAKER_WORKLOAD_SUPPLY_H
#define FPRAKER_WORKLOAD_SUPPLY_H

#include <memory>
#include <vector>

#include "accel/phase_runner.h"
#include "workload/lowering.h"

namespace fpraker {
namespace workload {

/** Recorded serial/parallel operand streams of one sampled phase. */
class PhaseTrace
{
  public:
    /**
     * Record the streams the generator-backed supply synthesizes for
     * @p plan: one serial and one parallel window per burst, filled
     * through the batched SIMD path.
     */
    static PhaseTrace capture(const PhasePlan &plan);

    /**
     * Adopt externally produced streams laid out like capture()'s
     * (per-burst windows concatenated in burst order). Sizes must
     * match @p plan exactly.
     */
    static PhaseTrace adopt(const PhasePlan &plan,
                            std::vector<BFloat16> serial,
                            std::vector<BFloat16> parallel);

    const PhasePlan &plan() const { return plan_; }
    const std::vector<BFloat16> &serialValues() const { return serial_; }
    const std::vector<BFloat16> &parallelValues() const
    {
        return parallel_;
    }

    /** Burst @p bi's serial window (n = burstSteps(bi) * aLen). */
    const BFloat16 *serialWindow(size_t bi) const;
    const BFloat16 *parallelWindow(size_t bi) const;

  private:
    PhaseTrace() = default;

    PhasePlan plan_;
    std::vector<BFloat16> serial_;
    std::vector<BFloat16> parallel_;
};

/** Replays a PhaseTrace through the SlabSupply seam. */
class TraceSlabSupply final : public SlabSupply
{
  public:
    /** Borrows @p trace, which must outlive the supply. */
    explicit TraceSlabSupply(const PhaseTrace &trace) : trace_(&trace)
    {
    }

    void fillSerial(size_t bi, BFloat16 *out, size_t n) const override;
    void fillParallel(size_t bi, BFloat16 *out,
                      size_t n) const override;

  private:
    const PhaseTrace *trace_;
};

/**
 * Trace-backed supplies for every unit of a lowered model under one
 * accelerator config: each unit's phase plan is derived exactly as
 * Accelerator::runLayerOp derives it, its streams are captured, and
 * jobs() hands back the model's sweep jobs with the supplies attached.
 */
class WorkloadSupply
{
  public:
    WorkloadSupply(const LoweredModel &model, const AcceleratorConfig &cfg,
                   double progress);

    WorkloadSupply(const WorkloadSupply &) = delete;
    WorkloadSupply &operator=(const WorkloadSupply &) = delete;

    const SlabSupply &supplyOf(size_t unit) const;
    const PhaseTrace &traceOf(size_t unit) const;

    /** Recorded values across all units (for reporting). */
    size_t totalValues() const;

    /** The model's jobs with this supply's traces attached. */
    std::vector<SweepLayerJob> jobs(const Accelerator &accel) const;

  private:
    const LoweredModel *model_;
    double progress_;
    std::vector<std::unique_ptr<PhaseTrace>> traces_;
    std::vector<std::unique_ptr<TraceSlabSupply>> supplies_;
};

/** The phase plan runLayerOp uses for @p unit of @p model. */
PhasePlan unitPlan(const LoweredModel &model, size_t unit,
                   const AcceleratorConfig &cfg, double progress);

} // namespace workload
} // namespace fpraker

#endif // FPRAKER_WORKLOAD_SUPPLY_H
