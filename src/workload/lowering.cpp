#include "workload/lowering.h"

#include "common/logging.h"

namespace fpraker {
namespace workload {

namespace {

/** Forward GEMM triple (M, N, K) + conv metadata of one layer. */
struct ForwardView
{
    int64_t m = 0, n = 0, k = 0;
    LayerType type = LayerType::FullyConnected;
    int kernelArea = 1;
};

ForwardView
forwardView(const CatalogLayer &layer, const BatchGeometry &geom)
{
    ForwardView v;
    switch (layer.kind) {
      case LayerKind::Conv: {
        const ConvSpec &c = layer.conv;
        panic_if(c.outH() < 1 || c.outW() < 1,
                 "conv '%s' has an empty output grid",
                 layer.name.c_str());
        v.m = static_cast<int64_t>(geom.batch) * c.outH() * c.outW();
        v.n = c.cout;
        v.k = static_cast<int64_t>(c.cin) * c.kh * c.kw;
        v.type = LayerType::Conv;
        v.kernelArea = c.kh * c.kw;
        return v;
      }
      case LayerKind::FullyConnected:
        v.m = geom.batch;
        v.n = layer.fc.out;
        v.k = layer.fc.in;
        v.type = LayerType::FullyConnected;
        return v;
      case LayerKind::Mlp:
        v.m = static_cast<int64_t>(geom.batch) * geom.seq;
        v.n = layer.fc.out;
        v.k = layer.fc.in;
        v.type = LayerType::FullyConnected;
        return v;
      case LayerKind::Attention: {
        const AttnSpec &a = layer.attn;
        const int64_t tokens =
            static_cast<int64_t>(geom.batch) * geom.seq;
        const int64_t head_rows = tokens * a.heads;
        v.type = LayerType::Attention;
        switch (a.stage) {
          case AttnStage::Qkv:
            v.m = tokens;
            v.n = 3 * a.dModel;
            v.k = a.dModel;
            return v;
          case AttnStage::Scores:
            v.m = head_rows;
            v.n = geom.seq;
            v.k = a.dHead();
            return v;
          case AttnStage::Context:
            v.m = head_rows;
            v.n = a.dHead();
            v.k = geom.seq;
            return v;
          case AttnStage::Out:
            v.m = tokens;
            v.n = a.dModel;
            v.k = a.dModel;
            return v;
        }
        panic("bad attention stage");
      }
    }
    panic("bad layer kind");
}

} // namespace

LayerShape
lowerLayer(const CatalogLayer &layer, TrainingOp op,
           const BatchGeometry &geom)
{
    const ForwardView v = forwardView(layer, geom);
    LayerShape s;
    s.name = layer.name;
    s.type = v.type;
    switch (op) {
      case TrainingOp::Forward:
        s.m = v.m;
        s.n = v.n;
        s.k = v.k;
        // The [M, K] operand is the im2col'd activation array.
        s.kernelArea = v.kernelArea;
        break;
      case TrainingOp::InputGrad:
        // dE/dA[M, K] = dE/dZ[M, N] x B^T[N, K]: the [M, K=N] operand
        // is the unduplicated output gradient.
        s.m = v.m;
        s.n = v.k;
        s.k = v.n;
        s.kernelArea = 1;
        break;
      case TrainingOp::WeightGrad:
        // dE/dB[K, N] = A^T[K, M] x dE/dZ[M, N]: the [M=K, K=M]
        // operand is the im2col'd activation array again.
        s.m = v.k;
        s.n = v.n;
        s.k = v.m;
        s.kernelArea = v.kernelArea;
        break;
    }
    return s;
}

LoweredModel::LoweredModel(const CatalogModel &model,
                           const BatchGeometry &geom)
    : model_(&model), geom_(geom)
{
    panic_if(geom.batch < 1 || geom.seq < 1,
             "batch geometry must be positive (batch %d, seq %d)",
             geom.batch, geom.seq);
    name_ = model.name + "@" +
            geom.label(model.family == "transformer");

    // Lowered forward shapes first: every carrier shares them so the
    // activation-stash footprint reflects the whole model at this
    // batch geometry.
    std::vector<LayerShape> forward_shapes;
    forward_shapes.reserve(model.layers.size());
    for (const CatalogLayer &layer : model.layers)
        forward_shapes.push_back(
            lowerLayer(layer, TrainingOp::Forward, geom));

    units_.reserve(model.layers.size() * 3);
    for (size_t i = 0; i < model.layers.size(); ++i) {
        const CatalogLayer &layer = model.layers[i];
        ModelInfo carrier;
        // Unique carrier names keep per-layer BDC footprints from
        // colliding in the accelerator's cache, and distinct
        // geometries sampling distinct value substreams.
        carrier.name = name_ + "/" + layer.name;
        carrier.application = model.family;
        carrier.dataset = "synthetic";
        carrier.layers = forward_shapes;
        carrier.profile = layerProfile(model, layer);
        carriers_.push_back(std::move(carrier));

        for (TrainingOp op :
             {TrainingOp::Forward, TrainingOp::InputGrad,
              TrainingOp::WeightGrad}) {
            WorkloadUnit u;
            u.layer = &layer;
            u.op = op;
            u.shape = lowerLayer(layer, op, geom);
            // Qualify the lowered shape's name with the geometry so
            // the phase runner's per-(layer, op) seeding separates
            // geometries, not just layers.
            u.shape.name = name_ + "/" + layer.name;
            units_.push_back(std::move(u));
            unitCarrier_.push_back(&carriers_.back());
        }
    }
}

const ModelInfo &
LoweredModel::carrierOf(size_t unit) const
{
    panic_if(unit >= unitCarrier_.size(), "unit %zu out of range",
             unit);
    return *unitCarrier_[unit];
}

int64_t
LoweredModel::totalMacs() const
{
    int64_t macs = 0;
    for (const WorkloadUnit &u : units_)
        macs += u.shape.macs();
    return macs;
}

std::vector<SweepLayerJob>
LoweredModel::jobs(const Accelerator &accel, double progress) const
{
    std::vector<SweepLayerJob> out;
    out.reserve(units_.size());
    for (size_t i = 0; i < units_.size(); ++i)
        out.push_back(SweepLayerJob{&accel, unitCarrier_[i],
                                    &units_[i].shape, units_[i].op,
                                    progress, nullptr});
    return out;
}

} // namespace workload
} // namespace fpraker
