#include "serve/protocol.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

namespace fpraker {
namespace serve {

std::string
defaultSocketPath()
{
    if (const char *env = std::getenv("FPRAKER_SOCKET"))
        if (*env)
            return env;
    return "/tmp/fpraker.sock";
}

bool
writeLine(int fd, const std::string &line, std::string *error)
{
    std::string framed = line;
    framed += '\n';
    size_t off = 0;
    while (off < framed.size()) {
        // MSG_NOSIGNAL: a peer that disconnected mid-job must surface
        // as EPIPE here, not as a process-killing SIGPIPE.
        ssize_t n = ::send(fd, framed.data() + off,
                           framed.size() - off, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (error)
                *error = (errno == EAGAIN || errno == EWOULDBLOCK)
                             ? std::string("write timed out (peer "
                                           "not draining)")
                             : std::string("write: ") +
                                   std::strerror(errno);
            return false;
        }
        off += static_cast<size_t>(n);
    }
    return true;
}

bool
writeMessage(int fd, const api::JsonValue &message, std::string *error)
{
    return writeLine(fd, message.dumpCompact(), error);
}

bool
LineReader::readLine(std::string *line, std::string *error)
{
    if (error)
        error->clear();
    // A reader that failed is failed for good: a partial line (or an
    // oversize one) can never be resynchronized into a valid frame,
    // and "retry after error" is exactly the spin a disconnecting
    // client used to cause.
    if (fail_ != Fail::None && fail_ != Fail::Eof) {
        if (error)
            *error = "reader already failed";
        return false;
    }
    for (;;) {
        size_t nl = buffer_.find('\n');
        // The bound applies to the LINE, terminated or not: a peer
        // may legally batch many small lines into one buffer, but a
        // single over-long line must be refused, never delivered.
        size_t lineBytes = nl == std::string::npos ? buffer_.size()
                                                   : nl;
        if (lineBytes > maxLineBytes_) {
            fail_ = Fail::Oversize;
            if (error)
                *error = "line exceeds " +
                         std::to_string(maxLineBytes_) + " bytes";
            return false;
        }
        if (nl != std::string::npos) {
            line->assign(buffer_, 0, nl);
            buffer_.erase(0, nl + 1);
            fail_ = Fail::None;
            return true;
        }
        char chunk[1 << 14];
        ssize_t n = ::read(fd_, chunk, sizeof(chunk));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (errno == EAGAIN || errno == EWOULDBLOCK) {
                // SO_RCVTIMEO expired: the peer stalled (mid-line or
                // idle). Either way the connection is done — looping
                // back into read() would pin the thread forever.
                fail_ = Fail::Timeout;
                if (error)
                    *error = buffer_.empty()
                                 ? "read timed out (idle connection)"
                                 : "read timed out mid-line";
                return false;
            }
            fail_ = Fail::Io;
            if (error)
                *error = std::string("read: ") + std::strerror(errno);
            return false;
        }
        if (n == 0) {
            // EOF mid-line is a framing error; clean EOF is not.
            if (!buffer_.empty()) {
                fail_ = Fail::MidLineEof;
                if (error)
                    *error = "connection closed mid-line";
            } else {
                fail_ = Fail::Eof;
            }
            return false;
        }
        buffer_.append(chunk, static_cast<size_t>(n));
    }
}

api::JsonValue
okResponse()
{
    api::JsonValue resp = api::JsonValue::object();
    resp.set("ok", true);
    return resp;
}

api::JsonValue
errorResponse(const char *code, const std::string &message)
{
    api::JsonValue resp = api::JsonValue::object();
    resp.set("ok", false);
    resp.set("error_code", code);
    resp.set("error", message);
    return resp;
}

bool
setIoTimeout(int fd, double seconds, std::string *error)
{
    if (seconds <= 0)
        return true;
    struct timeval tv;
    tv.tv_sec = static_cast<time_t>(seconds);
    tv.tv_usec = static_cast<suseconds_t>(
        (seconds - static_cast<double>(tv.tv_sec)) * 1e6);
    if (::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) <
            0 ||
        ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) <
            0) {
        if (error)
            *error = std::string("setsockopt(SO_*TIMEO): ") +
                     std::strerror(errno);
        return false;
    }
    return true;
}

} // namespace serve
} // namespace fpraker
