#include "serve/protocol.h"

#include <cerrno>
#include <cstdlib>
#include <cstring>

#include <sys/socket.h>
#include <unistd.h>

namespace fpraker {
namespace serve {

std::string
defaultSocketPath()
{
    if (const char *env = std::getenv("FPRAKER_SOCKET"))
        if (*env)
            return env;
    return "/tmp/fpraker.sock";
}

bool
writeLine(int fd, const std::string &line, std::string *error)
{
    std::string framed = line;
    framed += '\n';
    size_t off = 0;
    while (off < framed.size()) {
        // MSG_NOSIGNAL: a peer that disconnected mid-job must surface
        // as EPIPE here, not as a process-killing SIGPIPE.
        ssize_t n = ::send(fd, framed.data() + off,
                           framed.size() - off, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (error)
                *error = std::string("write: ") + std::strerror(errno);
            return false;
        }
        off += static_cast<size_t>(n);
    }
    return true;
}

bool
writeMessage(int fd, const api::JsonValue &message, std::string *error)
{
    return writeLine(fd, message.dumpCompact(), error);
}

bool
LineReader::readLine(std::string *line, std::string *error)
{
    if (error)
        error->clear();
    for (;;) {
        size_t nl = buffer_.find('\n');
        if (nl != std::string::npos) {
            line->assign(buffer_, 0, nl);
            buffer_.erase(0, nl + 1);
            return true;
        }
        if (buffer_.size() > maxLineBytes_) {
            if (error)
                *error = "line exceeds " +
                         std::to_string(maxLineBytes_) + " bytes";
            return false;
        }
        char chunk[1 << 14];
        ssize_t n = ::read(fd_, chunk, sizeof(chunk));
        if (n < 0) {
            if (errno == EINTR)
                continue;
            if (error)
                *error = std::string("read: ") + std::strerror(errno);
            return false;
        }
        if (n == 0) {
            // EOF mid-line is a framing error; clean EOF is not.
            if (!buffer_.empty() && error)
                *error = "connection closed mid-line";
            return false;
        }
        buffer_.append(chunk, static_cast<size_t>(n));
    }
}

api::JsonValue
okResponse()
{
    api::JsonValue resp = api::JsonValue::object();
    resp.set("ok", true);
    return resp;
}

api::JsonValue
errorResponse(const std::string &message)
{
    api::JsonValue resp = api::JsonValue::object();
    resp.set("ok", false);
    resp.set("error", message);
    return resp;
}

} // namespace serve
} // namespace fpraker
