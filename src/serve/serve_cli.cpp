#include "serve/serve_cli.h"

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "api/driver.h"
#include "obs/trace.h"
#include "serve/client.h"
#include "serve/daemon.h"
#include "serve/fault_injection.h"
#include "serve/protocol.h"
#include "serve/retry.h"

namespace fpraker {
namespace serve {

namespace {

/** Strict positive-integer parse (digits only, >= 1). */
bool
parsePositive(const char *text, uint64_t *out, uint64_t max)
{
    if (!*text)
        return false;
    uint64_t v = 0;
    for (const char *p = text; *p; ++p) {
        if (*p < '0' || *p > '9')
            return false;
        v = v * 10 + static_cast<uint64_t>(*p - '0');
        if (v > max)
            return false;
    }
    if (v < 1)
        return false;
    *out = v;
    return true;
}

bool
parsePositiveInt(const char *text, int *out)
{
    uint64_t v;
    if (!parsePositive(text, &v, 1000000000))
        return false;
    *out = static_cast<int>(v);
    return true;
}

/** Signed strict parse for --priority (range [-1e9, 1e9]). */
bool
parseSignedInt(const char *text, int *out)
{
    bool negative = *text == '-';
    uint64_t v;
    if (!parsePositive(negative ? text + 1 : text, &v, 1000000000)) {
        // parsePositive rejects 0; accept the explicit "0" here.
        if (std::strcmp(text, "0") != 0)
            return false;
        v = 0;
    }
    *out = negative ? -static_cast<int>(v) : static_cast<int>(v);
    return true;
}

int
usage(const char *prog, const char *what)
{
    std::fprintf(
        stderr,
        "usage: %s %s\n"
        "(see `fpraker help` and docs/SERVING.md)\n",
        prog, what);
    return 2;
}

int
flagError(const char *prog, const std::string &message)
{
    std::fprintf(stderr, "%s: %s\n", prog, message.c_str());
    return 2;
}

bool
connectOrFail(ServeClient *client, const std::string &socket,
              const char *prog)
{
    std::string error;
    if (!client->connectTo(socket, &error)) {
        std::fprintf(stderr, "%s: %s\n", prog, error.c_str());
        return false;
    }
    return true;
}

/** True when @p resp carries ok=true; otherwise print the daemon's
 *  error and return false. */
bool
responseOk(const char *prog, const api::JsonValue &resp)
{
    const api::JsonValue *ok = resp.find("ok");
    if (ok && ok->boolean())
        return true;
    const api::JsonValue *msg = resp.find("error");
    std::fprintf(stderr, "%s: daemon error: %s\n", prog,
                 msg ? msg->str().c_str() : "unknown");
    return false;
}

/**
 * Deliver a completed-job response: document to --json (or stdout),
 * one summary line. Shared by `submit` (wait) and `result`. Returns
 * the process exit status.
 */
int
printCompleted(const char *prog, const std::string &label,
               const api::JsonValue &resp, const std::string &jsonPath)
{
    auto field = [&](const char *key) { return resp.find(key); };
    const api::JsonValue *doc = field("document");
    std::string summary =
        "served " + label +
        ": status=" + (field("status") ? field("status")->str() : "?") +
        " cached=" +
        ((field("cached") && field("cached")->boolean()) ? "true"
                                                         : "false") +
        " fingerprint=" +
        (field("fingerprint") ? field("fingerprint")->str() : "?");
    if (!jsonPath.empty()) {
        FILE *f = std::fopen(jsonPath.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "%s: cannot write %s\n", prog,
                         jsonPath.c_str());
            return 1;
        }
        if (doc)
            std::fwrite(doc->str().data(), 1, doc->str().size(), f);
        std::fclose(f);
        std::printf("%s\nwrote %s\n", summary.c_str(),
                    jsonPath.c_str());
    } else {
        // Document to stdout (pipeable), summary to stderr.
        if (doc)
            std::fputs(doc->str().c_str(), stdout);
        std::fprintf(stderr, "%s\n", summary.c_str());
    }
    const api::JsonValue *xok = field("experiment_ok");
    return (xok && !xok->boolean()) ? 1 : 0;
}

} // namespace

int
serveMain(int argc, char **argv, int first)
{
    const char *prog = argc > 0 ? argv[0] : "fprakerd";
    DaemonConfig cfg;
    std::string traceOut;
    for (int i = first; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strncmp(arg, "--socket=", 9) == 0) {
            cfg.socketPath = arg + 9;
        } else if (std::strncmp(arg, "--threads=", 10) == 0) {
            if (!parsePositiveInt(arg + 10,
                                  &cfg.scheduler.engineThreads))
                return flagError(prog, "--threads requires an "
                                       "integer >= 1");
        } else if (std::strncmp(arg, "--workers=", 10) == 0) {
            if (!parsePositiveInt(arg + 10, &cfg.scheduler.workers))
                return flagError(prog, "--workers requires an "
                                       "integer >= 1");
        } else if (std::strncmp(arg, "--cache-bytes=", 14) == 0) {
            if (!parsePositive(arg + 14, &cfg.scheduler.cacheBytes,
                               1ull << 40))
                return flagError(prog, "--cache-bytes requires an "
                                       "integer in [1, 2^40]");
        } else if (std::strncmp(arg, "--cache-dir=", 12) == 0) {
            cfg.scheduler.cacheDir = arg + 12;
        } else if (std::strncmp(arg, "--queue-depth=", 14) == 0) {
            if (!parsePositive(arg + 14, &cfg.scheduler.queueDepth,
                               1000000))
                return flagError(prog, "--queue-depth requires an "
                                       "integer in [1, 1e6]");
        } else if (std::strncmp(arg, "--io-timeout=", 13) == 0) {
            int seconds;
            if (!parsePositiveInt(arg + 13, &seconds))
                return flagError(prog, "--io-timeout requires an "
                                       "integer >= 1 (seconds)");
            cfg.ioTimeoutSeconds = seconds;
        } else if (std::strncmp(arg, "--fault=", 8) == 0) {
            std::string error;
            if (!FaultInjector::instance().configure(arg + 8,
                                                     &error))
                return flagError(prog, "--fault: " + error);
        } else if (std::strncmp(arg, "--trace-out=", 12) == 0) {
            traceOut = arg + 12;
            if (traceOut.empty())
                return flagError(prog, "--trace-out requires a "
                                       "file path");
        } else {
            return usage(prog,
                         "serve [--socket=PATH] [--threads=N] "
                         "[--workers=N] [--cache-bytes=N] "
                         "[--cache-dir=DIR] [--queue-depth=N] "
                         "[--io-timeout=SECONDS] [--fault=SPEC] "
                         "[--trace-out=FILE]");
        }
    }
    if (!traceOut.empty())
        obs::TraceCollector::instance().enable();
    // Test harnesses arm fault schedules through the environment
    // when they cannot reach the flag (panics on a malformed value).
    FaultInjector::instance().configureFromEnv();

    Daemon daemon(cfg);
    std::string error;
    if (!daemon.start(&error)) {
        std::fprintf(stderr, "%s: %s\n", prog, error.c_str());
        return 1;
    }
    SchedulerStats s = daemon.scheduler().stats();
    std::printf("fprakerd: serving on %s (engine threads=%d, "
                "workers=%d, cache=%llu bytes%s%s)\n",
                daemon.socketPath().c_str(), s.engineThreads,
                s.workers,
                static_cast<unsigned long long>(
                    s.cache.capacityBytes),
                cfg.scheduler.cacheDir.empty() ? "" : ", spill=",
                cfg.scheduler.cacheDir.c_str());
    std::fflush(stdout);
    bool clean = daemon.serve();
    // Flush the trace even on an unclean exit — a capture that ends
    // at the failure is exactly the one worth looking at.
    if (!traceOut.empty()) {
        if (obs::TraceCollector::instance().writeTo(traceOut))
            std::printf("fprakerd: wrote %s\n", traceOut.c_str());
        else
            std::fprintf(stderr, "%s: cannot write %s\n", prog,
                         traceOut.c_str());
    }
    if (!clean) {
        std::fprintf(stderr,
                     "%s: accept loop died on a transport error\n",
                     prog);
        return 1;
    }
    std::printf("fprakerd: stopped\n");
    return 0;
}

int
submitMain(int argc, char **argv, int first)
{
    const char *prog = argc > 0 ? argv[0] : "fpraker";
    const char *what =
        "submit <id> [--socket=PATH] [--threads=N] "
        "[--sample-steps=N] [--steps=N] [--reps=N] [--out=FILE] "
        "[--priority=N] [--deadline-ms=N] [--retries=N] "
        "[--json=FILE] [--no-wait]";

    // Serve-specific flags are peeled off here; the shared run knobs
    // (--threads/--sample-steps/--steps/--reps/--out/--json and the
    // experiment id) go through the one strict CLI parser so submit
    // and `fpraker run` can never drift apart.
    std::string socket;
    bool wait = true;
    int priority = 0;
    int deadlineMs = 0;
    // Overloaded submits retry by default — the daemon's
    // retry_after_ms hint plus capped backoff (serve/retry.h).
    int retries = 3;
    std::vector<char *> rest;
    rest.push_back(argc > 0 ? argv[0] : const_cast<char *>("fpraker"));
    for (int i = first; i < argc; ++i) {
        char *arg = argv[i];
        if (std::strncmp(arg, "--socket=", 9) == 0) {
            socket = arg + 9;
        } else if (std::strncmp(arg, "--priority=", 11) == 0) {
            if (!parseSignedInt(arg + 11, &priority))
                return flagError(prog, "--priority requires an "
                                       "integer in [-1e9, 1e9]");
        } else if (std::strncmp(arg, "--deadline-ms=", 14) == 0) {
            if (!parsePositiveInt(arg + 14, &deadlineMs))
                return flagError(prog, "--deadline-ms requires an "
                                       "integer >= 1");
        } else if (std::strncmp(arg, "--retries=", 10) == 0) {
            if (!parseSignedInt(arg + 10, &retries) || retries < 0)
                return flagError(prog, "--retries requires an "
                                       "integer >= 0");
        } else if (std::strcmp(arg, "--no-wait") == 0) {
            wait = false;
        } else {
            rest.push_back(arg);
        }
    }
    api::CliOptions opts;
    std::string parseError;
    if (!api::parseCliArgs(static_cast<int>(rest.size()), rest.data(),
                           1, /*allow_positionals=*/true, &opts,
                           &parseError))
        return flagError(prog, parseError);
    if (opts.all || !opts.jsonDir.empty() || opts.ids.size() != 1)
        return usage(prog, what);

    JobSpec spec;
    spec.experiment = opts.ids[0];
    spec.threads = opts.threads;
    spec.sampleSteps = opts.sampleSteps;
    spec.options = opts.extras;
    spec.priority = priority;
    spec.deadlineMs = deadlineMs;
    const std::string jsonPath = opts.json;

    RetryPolicy policy;
    policy.maxAttempts = retries + 1;
    SubmitResult sub = submitWithRetry(socket, spec, policy, wait);
    if (!sub.ok) {
        if (sub.attempts > 1)
            std::fprintf(stderr,
                         "%s: gave up after %d attempts "
                         "(%d ms of backoff)\n",
                         prog, sub.attempts, sub.backoffTotalMs);
        if (sub.response.isObject())
            return responseOk(prog, sub.response) ? 0 : 1;
        std::fprintf(stderr, "%s: %s\n", prog, sub.error.c_str());
        return 1;
    }
    if (sub.attempts > 1)
        std::fprintf(stderr,
                     "%s: succeeded on attempt %d "
                     "(%d ms of backoff)\n",
                     prog, sub.attempts, sub.backoffTotalMs);
    const api::JsonValue &resp = sub.response;

    if (!wait) {
        const api::JsonValue *job = resp.find("job");
        const api::JsonValue *status = resp.find("status");
        std::printf("submitted %s: job=%lld status=%s\n"
                    "(fetch with `%s result %lld`)\n",
                    spec.experiment.c_str(),
                    static_cast<long long>(job ? job->intValue() : 0),
                    status ? status->str().c_str() : "?", prog,
                    static_cast<long long>(job ? job->intValue() : 0));
        return 0;
    }
    return printCompleted(prog, spec.experiment, resp, jsonPath);
}

namespace {

/** Shared argv parse for `status <job>` / `result <job>`. */
bool
parseJobArgs(int argc, char **argv, int first, bool allow_json,
             std::string *socket, std::string *jsonPath,
             uint64_t *job, const char *prog)
{
    bool have_job = false;
    for (int i = first; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strncmp(arg, "--socket=", 9) == 0) {
            *socket = arg + 9;
        } else if (allow_json && std::strncmp(arg, "--json=", 7) == 0) {
            *jsonPath = arg + 7;
        } else if (arg[0] != '-' && !have_job) {
            if (!parsePositive(arg, job, ~0ull >> 1)) {
                flagError(prog, std::string("job id must be a "
                                            "positive integer, got "
                                            "'") +
                                    arg + "'");
                return false;
            }
            have_job = true;
        } else {
            return false;
        }
    }
    return have_job;
}

} // namespace

int
statusMain(int argc, char **argv, int first)
{
    const char *prog = argc > 0 ? argv[0] : "fpraker";
    std::string socket, unused;
    uint64_t job = 0;
    if (!parseJobArgs(argc, argv, first, /*allow_json=*/false,
                      &socket, &unused, &job, prog))
        return usage(prog, "status <job> [--socket=PATH]");

    ServeClient client;
    if (!connectOrFail(&client, socket, prog))
        return 1;
    api::JsonValue req = api::JsonValue::object();
    req.set("op", "status");
    req.set("job", static_cast<int64_t>(job));
    api::JsonValue resp;
    std::string error;
    if (!client.request(req, &resp, &error)) {
        std::fprintf(stderr, "%s: %s\n", prog, error.c_str());
        return 1;
    }
    if (!responseOk(prog, resp))
        return 1;
    const api::JsonValue *status = resp.find("status");
    std::printf("job=%llu status=%s\n",
                static_cast<unsigned long long>(job),
                status ? status->str().c_str() : "?");
    return 0;
}

int
resultMain(int argc, char **argv, int first)
{
    const char *prog = argc > 0 ? argv[0] : "fpraker";
    std::string socket, jsonPath;
    uint64_t job = 0;
    if (!parseJobArgs(argc, argv, first, /*allow_json=*/true,
                      &socket, &jsonPath, &job, prog))
        return usage(prog,
                     "result <job> [--socket=PATH] [--json=FILE]");

    ServeClient client;
    if (!connectOrFail(&client, socket, prog))
        return 1;
    api::JsonValue req = api::JsonValue::object();
    req.set("op", "result");
    req.set("job", static_cast<int64_t>(job));
    api::JsonValue resp;
    std::string error;
    if (!client.request(req, &resp, &error)) {
        std::fprintf(stderr, "%s: %s\n", prog, error.c_str());
        return 1;
    }
    if (!responseOk(prog, resp))
        return 1;
    return printCompleted(prog, "job " + std::to_string(job), resp,
                          jsonPath);
}

namespace {

/** "k=v k=v ..." over an object of integer counters. */
std::string
counterLine(const api::JsonValue &obj)
{
    std::string line;
    for (const auto &[key, value] : obj.entries()) {
        if (!line.empty())
            line += " ";
        line += key + "=" +
                std::to_string(static_cast<long long>(
                    value.intValue()));
    }
    return line;
}

} // namespace

int
statsMain(int argc, char **argv, int first)
{
    const char *prog = argc > 0 ? argv[0] : "fpraker";
    std::string socket;
    bool json = false;
    for (int i = first; i < argc; ++i) {
        if (std::strncmp(argv[i], "--socket=", 9) == 0)
            socket = argv[i] + 9;
        else if (std::strcmp(argv[i], "--json") == 0)
            json = true;
        else
            return usage(prog, "stats [--socket=PATH] [--json]");
    }
    ServeClient client;
    if (!connectOrFail(&client, socket, prog))
        return 1;
    api::JsonValue req = api::JsonValue::object();
    req.set("op", "stats");
    api::JsonValue resp;
    std::string error;
    if (!client.request(req, &resp, &error)) {
        std::fprintf(stderr, "%s: %s\n", prog, error.c_str());
        return 1;
    }
    if (!responseOk(prog, resp))
        return 1;
    // Shape check before rendering: a reply that parses as JSON but
    // lost a section is a daemon bug, not something to print around.
    for (const char *key : {"protocol", "uptime_s", "engine_threads",
                            "workers", "jobs", "cache"}) {
        if (!resp.find(key)) {
            std::fprintf(stderr,
                         "%s: malformed stats reply (missing "
                         "\"%s\")\n",
                         prog, key);
            return 1;
        }
    }
    if (json) {
        // The raw daemon reply, exactly as received.
        std::printf("%s\n", resp.dump().c_str());
        return 0;
    }
    std::printf("daemon: protocol=%s uptime_s=%.3f "
                "engine_threads=%lld workers=%lld\n",
                resp.find("protocol")->str().c_str(),
                resp.find("uptime_s")->number(),
                static_cast<long long>(
                    resp.find("engine_threads")->intValue()),
                static_cast<long long>(
                    resp.find("workers")->intValue()));
    std::printf("jobs:   %s\n",
                counterLine(*resp.find("jobs")).c_str());
    std::printf("cache:  %s\n",
                counterLine(*resp.find("cache")).c_str());
    return 0;
}

int
metricsMain(int argc, char **argv, int first)
{
    const char *prog = argc > 0 ? argv[0] : "fpraker";
    std::string socket;
    bool prom = false;
    for (int i = first; i < argc; ++i) {
        if (std::strncmp(argv[i], "--socket=", 9) == 0)
            socket = argv[i] + 9;
        else if (std::strcmp(argv[i], "--prom") == 0)
            prom = true;
        else
            return usage(prog, "metrics [--socket=PATH] [--prom]");
    }
    ServeClient client;
    if (!connectOrFail(&client, socket, prog))
        return 1;
    api::JsonValue req = api::JsonValue::object();
    req.set("op", "metrics");
    if (prom)
        req.set("format", "prom");
    api::JsonValue resp;
    std::string error;
    if (!client.request(req, &resp, &error)) {
        std::fprintf(stderr, "%s: %s\n", prog, error.c_str());
        return 1;
    }
    if (!responseOk(prog, resp))
        return 1;
    const char *want = prom ? "text" : "metrics";
    const api::JsonValue *payload = resp.find(want);
    if (!payload) {
        std::fprintf(stderr,
                     "%s: malformed metrics reply (missing "
                     "\"%s\")\n",
                     prog, want);
        return 1;
    }
    if (prom)
        std::fputs(payload->str().c_str(), stdout);
    else
        std::printf("%s\n", payload->dump().c_str());
    return 0;
}

int
shutdownMain(int argc, char **argv, int first)
{
    const char *prog = argc > 0 ? argv[0] : "fpraker";
    std::string socket;
    for (int i = first; i < argc; ++i) {
        if (std::strncmp(argv[i], "--socket=", 9) == 0)
            socket = argv[i] + 9;
        else
            return usage(prog, "shutdown [--socket=PATH]");
    }
    ServeClient client;
    if (!connectOrFail(&client, socket, prog))
        return 1;
    api::JsonValue req = api::JsonValue::object();
    req.set("op", "shutdown");
    api::JsonValue resp;
    std::string error;
    if (!client.request(req, &resp, &error)) {
        std::fprintf(stderr, "%s: %s\n", prog, error.c_str());
        return 1;
    }
    const api::JsonValue *ok = resp.find("ok");
    if (!ok || !ok->boolean()) {
        const api::JsonValue *msg = resp.find("error");
        std::fprintf(stderr, "%s: daemon error: %s\n", prog,
                     msg ? msg->str().c_str() : "unknown");
        return 1;
    }
    std::printf("daemon stopping\n");
    return 0;
}

} // namespace serve
} // namespace fpraker
