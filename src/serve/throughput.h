/**
 * @file
 * The serving-layer load generator: replay a mixed workload of cold
 * (simulate) and hot (cache-hit) requests against an in-process
 * JobScheduler and measure request throughput and latency.
 *
 * This is the measurement core shared by the `serve_throughput`
 * registered experiment and the `serving` section of the
 * BENCH_PR<N>.json perf trajectory (perf_regression). It runs
 * entirely in-process — scheduler-level numbers, no socket framing —
 * so the hot-path figure isolates what the cache buys over
 * re-simulation.
 *
 * Phases: first every distinct JobSpec is submitted once (all cold,
 * open the cache), then `hotRequests` submissions cycle over the same
 * specs (all hot). Per-request latencies of the hot phase give
 * p50/p99; every hot document must come back cached with the cold
 * run's fingerprint (the determinism gate).
 */

#ifndef FPRAKER_SERVE_THROUGHPUT_H
#define FPRAKER_SERVE_THROUGHPUT_H

#include <cstdint>
#include <string>

namespace fpraker {
namespace api {
class Result;
}

namespace serve {

/** Workload shape of one measurement. */
struct ThroughputOptions
{
    std::string experiment = "fig02"; //!< Submitted registry id.
    int distinctSpecs = 6;   //!< Cold jobs (sample budgets differ).
    int hotRequests = 240;   //!< Hot submissions cycling the specs.
    int sampleStepsBase = 12; //!< Spec i gets base + i sample steps.
    int engineThreads = 1;   //!< Scheduler SimEngine threads.
    int workers = 2;         //!< Scheduler workers.
    uint64_t cacheBytes = 64ull << 20;
};

/** Measured outcome of one replay. */
struct ThroughputReport
{
    double coldSeconds = 0;
    double hotSeconds = 0;
    double coldRps = 0; //!< Cold (simulating) requests per second.
    double hotRps = 0;  //!< Hot (cache-served) requests per second.
    double hotP50Ms = 0;
    double hotP99Ms = 0;
    double hitRate = 0; //!< Cache hits / lookups over the whole run.
    uint64_t requests = 0;
    uint64_t executions = 0; //!< Jobs actually simulated.
    bool allHotCached = true;  //!< Every hot request hit the cache.
    bool deterministic = true; //!< Hot fingerprints == cold ones.
    uint64_t digest = 0; //!< FNV over the cold fingerprints, in spec
                         //!< order — run-invariant.
};

/** Run the workload; panics if opts.experiment is unregistered. */
ThroughputReport measureServeThroughput(const ThroughputOptions &opts);

/**
 * Record @p r as the canonical `serving` metric group of @p res
 * (the BENCH_PR<N>.json section scripts/check_perf_floor.py reads).
 */
void addServingGroup(api::Result &res, const ThroughputOptions &opts,
                     const ThroughputReport &r);

/**
 * Overload workload: an open-loop burst of distinct cold specs at a
 * multiple of the scheduler's queue depth, against few workers.
 * Admission control must shed the overflow with structured
 * "overloaded" rejections (each carrying a retry_after hint) while
 * accepted work drains normally; the shed specs are then resubmitted
 * under the client RetryPolicy until accepted, so EVERY spec
 * eventually completes and the digest over final fingerprints (spec
 * order) is run-invariant. No fault injection involved — overload
 * comes from genuinely slow cold jobs — so this is safe to run
 * concurrently with other experiments (`fpraker run --all`).
 */
struct ShedOptions
{
    std::string experiment = "fig02";
    int burst = 32;           //!< Open-loop submissions.
    uint64_t queueDepth = 8;  //!< Scheduler admission bound.
    int sampleStepsBase = 12; //!< Spec i gets base + i (all distinct).
    int engineThreads = 1;
    int workers = 1;
    uint64_t cacheBytes = 64ull << 20;
};

/** Measured outcome of one overload replay. */
struct ShedReport
{
    uint64_t accepted = 0;  //!< Burst submits that entered the queue.
    uint64_t shed = 0;      //!< Burst submits rejected "overloaded".
    uint64_t retryAttempts = 0; //!< Resubmissions until acceptance.
    double submitP50Ms = 0; //!< Burst submit() call latency.
    double submitP99Ms = 0; //!< (Bounded: admission never simulates.)
    double drainSeconds = 0; //!< Burst start -> all outcomes final.
    bool hintsOk = true;    //!< Every rejection carried retry_after.
    bool drained = true;    //!< Queue and workers idle at the end.
    bool completed = true;  //!< Every spec eventually ran.
    uint64_t digest = 0;    //!< FNV over final fingerprints.
};

/** Run the overload workload; panics on an unregistered experiment. */
ShedReport measureShedBehavior(const ShedOptions &opts);

/** Record @p r as the `shed` metric group of @p res. */
void addShedGroup(api::Result &res, const ShedOptions &opts,
                  const ShedReport &r);

} // namespace serve
} // namespace fpraker

#endif // FPRAKER_SERVE_THROUGHPUT_H
