/**
 * @file
 * Deterministic fault injection for the serving layer.
 *
 * A FaultInjector is a process-global registry of named fault points
 * the serve code consults at the places failures actually happen —
 * the daemon's request loop, the scheduler's workers, the cache's
 * spill writes. A point that is armed fires a bounded number of
 * times (counter-based, never random), so an injected failure
 * sequence is exactly reproducible: the same configuration string
 * yields the same faults in the same order.
 *
 * Configuration is a comma-separated list of `point=param[:count]`
 * entries (`count` defaults to 1):
 *
 *   FPRAKER_FAULTS="spill.torn_write=40:1,scheduler.worker_stall_ms=200:8"
 *   fprakerd --fault=daemon.drop_connection=1:2
 *
 * Registered points (param meaning in parentheses):
 *
 *   daemon.read_delay_ms      sleep before reading a request (ms)
 *   daemon.drop_connection    close the connection instead of
 *                             writing the response (param ignored)
 *   scheduler.worker_stall_ms sleep inside job execution (ms)
 *   spill.torn_write          write only the first <param> bytes of
 *                             a spill document, directly to the
 *                             final path, with no checksum trailer —
 *                             emulating a crash mid-write on a
 *                             pre-atomic-rename layout
 *
 * Everything is thread-safe; tests arm points programmatically and
 * reset() between cases. When no point is armed, fires() is a single
 * relaxed atomic load — the production hot path pays nothing.
 */

#ifndef FPRAKER_SERVE_FAULT_INJECTION_H
#define FPRAKER_SERVE_FAULT_INJECTION_H

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>

namespace fpraker {
namespace serve {

class FaultInjector
{
  public:
    static FaultInjector &instance();

    /**
     * Arm @p point to fire @p count times with @p param. Replaces any
     * existing arming of the same point.
     */
    void arm(const std::string &point, int64_t param,
             uint64_t count = 1);

    /**
     * Parse a `point=param[:count],...` list (the --fault flag and
     * FPRAKER_FAULTS format). On failure fills @p error and returns
     * false without changing state.
     */
    bool configure(const std::string &spec, std::string *error);

    /** Arm from the FPRAKER_FAULTS environment variable (no-op when
     *  unset). Panics on a malformed value — a daemon silently
     *  ignoring its fault schedule would make a red test green. */
    void configureFromEnv();

    /** Disarm every point and zero the fired counters. */
    void reset();

    /**
     * True when @p point is armed with shots remaining; consumes one
     * shot and (when @p param is non-null) reports the armed
     * parameter.
     */
    bool fires(const char *point, int64_t *param = nullptr);

    /** Times @p point has fired since the last reset(). */
    uint64_t fired(const std::string &point) const;

  private:
    FaultInjector() = default;

    struct Arming
    {
        int64_t param = 0;
        uint64_t remaining = 0;
        uint64_t fired = 0;
    };

    //! Fast-path guard: number of points with shots remaining.
    std::atomic<uint64_t> armedPoints_{0};
    mutable std::mutex mutex_;
    std::unordered_map<std::string, Arming> points_;
};

/** Sleep helper for delay-style faults (milliseconds). */
void faultSleepMs(int64_t ms);

} // namespace serve
} // namespace fpraker

#endif // FPRAKER_SERVE_FAULT_INJECTION_H
