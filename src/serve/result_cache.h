/**
 * @file
 * ResultCache: content-addressed storage of rendered
 * fpraker-result-v1 documents.
 *
 * Keys come from JobSpec::cacheKey() (epoch ‖ schema ‖ experiment ‖
 * knobs — see job_spec.h); values are the exact document text a cold
 * run delivered (provenance.cached = false). Because every cacheable
 * experiment is deterministic, a stored document is byte-identical to
 * what re-simulating the spec would produce, so serving it is
 * lossless. On a hit the cache hands back a variant with
 * provenance.cached patched to true — materialized once per entry and
 * memoized, like the document's fingerprint (extracted once at
 * admission), so the hot path is a hash lookup plus string copies:
 * no per-hit document scan, no per-hit allocation beyond the copies
 * the caller keeps.
 *
 * Eviction is LRU over a total-bytes bound (both text variants
 * count). With a spill directory configured, every insert also writes
 * `<hex16 key>.json`; an in-memory miss probes the directory and
 * re-admits the file, so evicted entries survive (and a restarted
 * daemon warms from disk). The epoch inside the key keeps a stale
 * spill from ever serving documents across incompatible binaries.
 *
 * All operations are thread-safe behind one mutex — the scheduler's
 * workers and the daemon's connection threads share one instance.
 */

#ifndef FPRAKER_SERVE_RESULT_CACHE_H
#define FPRAKER_SERVE_RESULT_CACHE_H

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>

namespace fpraker {
namespace serve {

/** Point-in-time counters of one ResultCache. */
struct CacheStats
{
    uint64_t hits = 0;       //!< Lookups served (memory or spill).
    uint64_t misses = 0;     //!< Lookups that found nothing anywhere.
    uint64_t insertions = 0; //!< Documents admitted.
    uint64_t evictions = 0;  //!< Entries dropped for the bytes bound.
    uint64_t diskHits = 0;   //!< Of hits: rescued from the spill dir.
    uint64_t diskWrites = 0; //!< Spill files written.
    //! Spill files whose checksum trailer failed verification —
    //! quarantined (renamed *.corrupt) and treated as misses.
    uint64_t diskCorrupt = 0;
    uint64_t bytes = 0;      //!< Resident document bytes.
    uint64_t entries = 0;    //!< Resident documents.
    uint64_t capacityBytes = 0;
};

/** Bytes-bounded LRU cache of rendered result documents. */
class ResultCache
{
  public:
    /**
     * @param capacityBytes LRU bound on resident document bytes.
     * @param spillDir optional directory for disk spill ("" = none);
     *        created on first write.
     */
    explicit ResultCache(uint64_t capacityBytes,
                         std::string spillDir = "");

    ResultCache(const ResultCache &) = delete;
    ResultCache &operator=(const ResultCache &) = delete;

    /**
     * Look @p key up (memory first, then the spill dir). On a hit
     * fills @p document with the cached-marked text
     * (provenance.cached = true) and returns true.
     */
    bool lookup(uint64_t key, std::string *document);

    /**
     * Like lookup(), additionally filling @p fingerprint with the
     * document's top-level "fingerprint" value — memoized at
     * admission, so a hit never re-scans the document text. The
     * serving hot path (JobScheduler::run on a cache hit) lives on
     * this overload.
     */
    bool lookup(uint64_t key, std::string *document,
                std::string *fingerprint);

    /**
     * The stored cold text (provenance.cached = false), exactly as
     * the producing run rendered it. Counts as a hit like lookup().
     */
    bool lookupRaw(uint64_t key, std::string *document);

    /** Admit the cold-run rendering of @p key's document. */
    void insert(uint64_t key, const std::string &document);

    /** True without touching LRU order or counters (tests). */
    bool contains(uint64_t key) const;

    CacheStats stats() const;

  private:
    struct Entry
    {
        std::string text;    //!< Cold rendering (cached: false).
        std::string hotText; //!< Lazily patched rendering ("" until
                             //!< the first hit materializes it).
        //! Top-level "fingerprint" value, extracted once at
        //! admission. Fixed-width metadata (16 hex chars), not
        //! document payload — excluded from the bytes_ accounting.
        std::string fingerprint;
        std::list<uint64_t>::iterator lru;
    };

    bool lookupLocked(uint64_t key, bool marked, std::string *document,
                      std::string *fingerprint);
    void insertLocked(uint64_t key, const std::string &document);
    void touch(Entry &e, uint64_t key);
    void evictToFit();
    std::string spillPath(uint64_t key) const;
    bool loadSpill(uint64_t key, std::string *document);
    void writeSpill(uint64_t key, const std::string &document);
    void quarantineSpill(const std::string &path);

    const uint64_t capacityBytes_;
    const std::string spillDir_;

    mutable std::mutex mutex_;
    std::unordered_map<uint64_t, Entry> entries_;
    std::list<uint64_t> lruOrder_; //!< Front = most recent.
    uint64_t bytes_ = 0;
    CacheStats counters_;
};

/**
 * Patch provenance.cached to true in a rendered document — a TEXTUAL
 * replace of the first `"cached": false`, deliberately not a
 * parse/re-dump (reserialization would drop fixed-precision print
 * hints and change bytes beyond the flag). The result differs from
 * the input in exactly that flag.
 */
std::string markDocumentCached(const std::string &document);

/**
 * Pull the top-level "fingerprint" value out of a rendered document
 * ("" if absent). The renderer emits it before any content arrays,
 * so the first occurrence of the key is the right one. The cache
 * calls this once per admission and memoizes the result; callers
 * holding a document from somewhere else may use it directly.
 */
std::string extractFingerprint(const std::string &document);

/**
 * Crash-safe spill framing: every spill file is the document bytes
 * followed by a fixed-length trailer line carrying an FNV-1a
 * checksum and the document length:
 *
 *     <document bytes>#fpraker-spill fnv=<hex16> len=<hex16>\n
 *
 * Writes go to a temp file and rename into place, so a crash mid-
 * write leaves at worst a *.tmp orphan, never a half-written entry
 * under the real name. On load the trailer is verified; a torn,
 * truncated, or bit-flipped file (e.g. written by a pre-PR6 binary
 * or a crashed disk) is quarantined as <name>.corrupt and treated
 * as a miss, so a corrupted cache entry can never be served.
 */
std::string spillTrailer(const std::string &document);

/**
 * Verify @p raw (document + trailer). On success strips the trailer
 * into @p document and returns true; on any mismatch returns false.
 */
bool verifySpill(const std::string &raw, std::string *document);

} // namespace serve
} // namespace fpraker

#endif // FPRAKER_SERVE_RESULT_CACHE_H
