/**
 * @file
 * JobScheduler: the persistent execution core of the serving layer.
 *
 * One scheduler owns ONE long-lived SimEngine (the warmed worker pool
 * every job shares — the same Session::shareEngine path `fpraker run
 * --all` uses), a ResultCache, and a small team of scheduler workers
 * that drain a priority queue of JobSpecs. Per job the worker builds
 * a fresh Session borrowing the engine, runs the registered
 * experiment through api::produceResult, renders the canonical
 * fpraker-result-v1 document, and admits it to the cache — so
 * served fingerprints are bit-identical to `fpraker run <id>` at any
 * engine thread count or worker count (the existing serial==parallel
 * parity contract, extended to served results).
 *
 * Request coalescing: a submit whose cache key matches a queued or
 * running job joins that job instead of enqueueing a duplicate
 * (concurrent identical submits simulate exactly once); a submit
 * whose key is already cached completes immediately with
 * provenance.cached = true and performs no engine work.
 *
 * Scheduling order is (priority desc, arrival seq asc); results are
 * buffered per job and handed to waiters, so delivery is deterministic
 * per job regardless of completion interleaving.
 */

#ifndef FPRAKER_SERVE_SCHEDULER_H
#define FPRAKER_SERVE_SCHEDULER_H

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "serve/job_spec.h"
#include "serve/result_cache.h"
#include "sim/sim_engine.h"

namespace fpraker {
namespace serve {

/** Knobs of one scheduler instance. */
struct SchedulerConfig
{
    int engineThreads = 0; //!< SimEngine threads (0 = defaultThreads).
    int workers = 1;       //!< Concurrent jobs.
    uint64_t cacheBytes = 64ull << 20; //!< ResultCache LRU bound.
    std::string cacheDir;              //!< Disk spill ("" = none).
};

/** Lifecycle of one submitted job. */
enum class JobState { Queued, Running, Done, Failed };

const char *jobStateName(JobState s);

/** The buffered result of one job, handed to every waiter. */
struct JobOutcome
{
    JobState state = JobState::Queued;
    bool cached = false; //!< Served from the ResultCache.
    bool ok = true;      //!< The experiment's own gate.
    std::string document;    //!< Rendered fpraker-result-v1 text.
    std::string fingerprint; //!< 16-hex content fingerprint.
    std::string error;       //!< Failure reason (Failed only).
    double queueSeconds = 0; //!< Submit -> execution start.
    double runSeconds = 0;   //!< Execution start -> done.
};

/** Aggregate counters of one scheduler. */
struct SchedulerStats
{
    uint64_t submitted = 0;  //!< submit() calls.
    uint64_t executed = 0;   //!< Jobs actually simulated.
    uint64_t coalesced = 0;  //!< Submits joined to an in-flight job.
    uint64_t cacheServed = 0;//!< Submits completed straight from cache.
    uint64_t failed = 0;     //!< Jobs that could not run.
    uint64_t queued = 0;     //!< Currently waiting.
    uint64_t running = 0;    //!< Currently executing.
    CacheStats cache;
    int engineThreads = 0;
    int workers = 0;
};

class JobScheduler
{
  public:
    explicit JobScheduler(const SchedulerConfig &cfg = {});
    /** Stops workers; queued jobs fail with "scheduler stopped". */
    ~JobScheduler();

    JobScheduler(const JobScheduler &) = delete;
    JobScheduler &operator=(const JobScheduler &) = delete;

    /**
     * Enqueue @p spec (or join the identical in-flight job, or
     * complete immediately from cache) and return the job id to
     * wait() on.
     */
    uint64_t submit(const JobSpec &spec);

    /** Block until job @p id completes; returns its outcome. */
    JobOutcome wait(uint64_t id);

    /** submit + wait. */
    JobOutcome run(const JobSpec &spec) { return wait(submit(spec)); }

    /** Non-blocking state probe; false when @p id is unknown. */
    bool status(uint64_t id, JobState *state) const;

    SchedulerStats stats() const;
    SimEngine &engine() { return *engine_; }
    ResultCache &cache() { return *cache_; }

  private:
    struct Job
    {
        JobSpec spec;
        uint64_t key = 0;
        uint64_t seq = 0;
        int queuedPriority = 0; //!< Current queue key (coalesced
                                //!< submits may upgrade it).
        double submitTime = 0;
        JobOutcome outcome;
    };

    void workerLoop();
    void execute(uint64_t id);
    void finish(Job &job, JobOutcome outcome);

    const SchedulerConfig cfg_;
    std::unique_ptr<SimEngine> engine_;
    std::unique_ptr<ResultCache> cache_;

    mutable std::mutex mutex_;
    std::condition_variable queueCv_; //!< Workers: work or stop.
    std::condition_variable doneCv_;  //!< Waiters: job completion.
    bool stop_ = false;
    uint64_t nextId_ = 1;
    uint64_t nextSeq_ = 0;
    std::unordered_map<uint64_t, Job> jobs_;
    //! (priority desc, seq asc) -> job id; map keeps pop O(log n).
    std::map<std::pair<int, uint64_t>, uint64_t> queue_;
    std::unordered_map<uint64_t, uint64_t> inflight_; //!< key -> id.
    SchedulerStats counters_;

    std::vector<std::thread> workers_;
};

} // namespace serve
} // namespace fpraker

#endif // FPRAKER_SERVE_SCHEDULER_H
