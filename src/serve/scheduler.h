/**
 * @file
 * JobScheduler: the persistent execution core of the serving layer.
 *
 * One scheduler owns ONE long-lived SimEngine (the warmed worker pool
 * every job shares — the same Session::shareEngine path `fpraker run
 * --all` uses), a ResultCache, and a small team of scheduler workers
 * that drain a priority queue of JobSpecs. Per job the worker builds
 * a fresh Session borrowing the engine, runs the registered
 * experiment through api::produceResult, renders the canonical
 * fpraker-result-v1 document, and admits it to the cache — so
 * served fingerprints are bit-identical to `fpraker run <id>` at any
 * engine thread count or worker count (the existing serial==parallel
 * parity contract, extended to served results).
 *
 * Request coalescing: a submit whose cache key matches a queued or
 * running job joins that job instead of enqueueing a duplicate
 * (concurrent identical submits simulate exactly once); a submit
 * whose key is already cached completes immediately with
 * provenance.cached = true and performs no engine work.
 *
 * Robustness (PR 6):
 *
 *  - ADMISSION CONTROL: the queue is bounded (queueDepth). A submit
 *    that would exceed it — and can neither be cache-served nor
 *    coalesced, both of which cost no queue slot — is rejected
 *    immediately with errorCode "overloaded" and a retryAfterMs hint
 *    derived from an EWMA of recent job run times. Reject-newest:
 *    accepted work is never cancelled for new arrivals.
 *
 *  - DEADLINES: a spec's deadlineMs (relative to submit) becomes an
 *    absolute expiry. A job still queued past it is shed with
 *    errorCode "timeout" — by the worker that pops it, or by the
 *    reaper thread when every worker is busy, so expiry never waits
 *    on a free worker. A job that started in time but finishes late
 *    is NOT cancelled (results are deterministic and already paid
 *    for); its submitter's document reports
 *    provenance.deadline_overrun_ms, while the cached copy stays
 *    clean. Coalesced submits adopt the existing job's deadline.
 *
 *  - BOUNDED RETENTION: completed outcomes are kept for late
 *    status/result polls but retired once older than retainSeconds
 *    or beyond retainJobs entries (oldest-completion first; entries
 *    with an active wait() are never retired). A retired id answers
 *    like an unknown one — the scheduler's memory no longer grows
 *    with lifetime request count.
 *
 * Scheduling order is (priority desc, arrival seq asc); results are
 * buffered per job and handed to waiters, so delivery is deterministic
 * per job regardless of completion interleaving.
 */

#ifndef FPRAKER_SERVE_SCHEDULER_H
#define FPRAKER_SERVE_SCHEDULER_H

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <queue>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "serve/job_spec.h"
#include "serve/result_cache.h"
#include "sim/sim_engine.h"

namespace fpraker {
namespace serve {

/** Knobs of one scheduler instance. */
struct SchedulerConfig
{
    int engineThreads = 0; //!< SimEngine threads (0 = defaultThreads).
    int workers = 1;       //!< Concurrent jobs.
    uint64_t cacheBytes = 64ull << 20; //!< ResultCache LRU bound.
    std::string cacheDir;              //!< Disk spill ("" = none).
    //! Admission bound: max jobs waiting to run. Submits beyond it
    //! are shed with "overloaded" + a retry_after hint.
    uint64_t queueDepth = 256;
    //! Completed-outcome retention: drop entries beyond this count…
    uint64_t retainJobs = 4096;
    //! …or older than this many seconds since completion.
    double retainSeconds = 900;
};

/** Lifecycle of one submitted job. */
enum class JobState { Queued, Running, Done, Failed };

const char *jobStateName(JobState s);

/** The buffered result of one job, handed to every waiter. */
struct JobOutcome
{
    JobState state = JobState::Queued;
    bool cached = false; //!< Served from the ResultCache.
    bool ok = true;      //!< The experiment's own gate.
    std::string document;    //!< Rendered fpraker-result-v1 text.
    std::string fingerprint; //!< 16-hex content fingerprint.
    std::string error;       //!< Failure reason (Failed only).
    //! Structured code (protocol.h kErr*) when state == Failed.
    std::string errorCode;
    //! "overloaded" rejections: suggested client backoff before
    //! resubmitting (EWMA-based queue-drain estimate).
    int retryAfterMs = 0;
    //! Done jobs that finished past their deadline: by how much.
    int deadlineOverrunMs = 0;
    double queueSeconds = 0; //!< Submit -> execution start.
    double runSeconds = 0;   //!< Execution start -> done.
};

/** Aggregate counters of one scheduler. */
struct SchedulerStats
{
    uint64_t submitted = 0;  //!< submit() calls.
    uint64_t executed = 0;   //!< Jobs actually simulated.
    uint64_t coalesced = 0;  //!< Submits joined to an in-flight job.
    uint64_t cacheServed = 0;//!< Submits completed straight from cache.
    uint64_t failed = 0;     //!< Jobs that could not run.
    uint64_t shedOverload = 0; //!< Submits rejected by admission.
    uint64_t shedDeadline = 0; //!< Queued jobs shed at deadline.
    uint64_t overrun = 0;    //!< Ran jobs that finished past deadline.
    uint64_t pruned = 0;     //!< Completed outcomes retired.
    uint64_t queued = 0;     //!< Currently waiting.
    uint64_t running = 0;    //!< Currently executing.
    CacheStats cache;
    int engineThreads = 0;
    int workers = 0;
};

class JobScheduler
{
  public:
    explicit JobScheduler(const SchedulerConfig &cfg = {});
    /** Stops workers; queued jobs fail with "scheduler stopped". */
    ~JobScheduler();

    JobScheduler(const JobScheduler &) = delete;
    JobScheduler &operator=(const JobScheduler &) = delete;

    /**
     * Enqueue @p spec (or join the identical in-flight job, or
     * complete immediately from cache) and return the job id to
     * wait() on. Under overload the returned id is already Failed
     * with errorCode "overloaded" — wait() returns it immediately.
     */
    uint64_t submit(const JobSpec &spec);

    /** Block until job @p id completes; returns its outcome. */
    JobOutcome wait(uint64_t id);

    /**
     * submit + wait, with a direct path for cache hits: the job id a
     * cache-served submit would mint is created, completed, and
     * retired inside this one call — no caller can ever observe it —
     * so a hit is answered straight from the cache probe, with no
     * job entry and no retention churn. Misses take the full
     * submit/wait path (coalescing, admission, deadlines included).
     */
    JobOutcome run(const JobSpec &spec);

    /** Non-blocking state probe; false when @p id is unknown. */
    bool status(uint64_t id, JobState *state) const;

    SchedulerStats stats() const;
    SimEngine &engine() { return *engine_; }
    ResultCache &cache() { return *cache_; }

  private:
    struct Job
    {
        JobSpec spec;
        uint64_t key = 0;
        uint64_t seq = 0;
        int queuedPriority = 0; //!< Current queue key (coalesced
                                //!< submits may upgrade it).
        // All times in nanoseconds on the one common/clock.h
        // monotonic clock — deadline math, EWMA hints, and obs trace
        // spans must never mix clock sources.
        int64_t submitTimeNs = 0;
        int64_t deadlineTimeNs = 0; //!< Absolute expiry (0 = none).
        int64_t doneTimeNs = 0; //!< Completion time (retention age).
        uint32_t waiters = 0;   //!< Active wait() calls (pins entry).
        JobOutcome outcome;
    };

    void workerLoop();
    void reaperLoop();
    void execute(uint64_t id);
    /** Fail a still-queued job in place and move it into the
     *  retention window (lock held; queue_ entry already removed by
     *  the caller). */
    void shedQueuedLocked(uint64_t id, const char *code,
                          const std::string &error, int64_t nowNs);
    /** Retire completed outcomes past the retention bounds. */
    void pruneRetentionLocked(int64_t nowNs);
    /** Move a completed job into the retention window. */
    void markDoneLocked(uint64_t id, Job &job, int64_t nowNs);
    int retryAfterHintLocked() const;

    const SchedulerConfig cfg_;
    std::unique_ptr<SimEngine> engine_;
    std::unique_ptr<ResultCache> cache_;

    mutable std::mutex mutex_;
    std::condition_variable queueCv_; //!< Workers: work or stop.
    std::condition_variable doneCv_;  //!< Waiters: job completion.
    std::condition_variable reaperCv_; //!< Reaper: stop or tick.
    bool stop_ = false;
    uint64_t nextId_ = 1;
    uint64_t nextSeq_ = 0;
    std::unordered_map<uint64_t, Job> jobs_;
    //! (priority desc, seq asc) -> job id; map keeps pop O(log n).
    std::map<std::pair<int, uint64_t>, uint64_t> queue_;
    std::unordered_map<uint64_t, uint64_t> inflight_; //!< key -> id.
    //! (id, doneTimeNs), completion order — the retention window.
    //! The time rides along so the not-pruning fast path (every cache
    //! hit) decides from the deque front alone, no hash lookups.
    std::deque<std::pair<uint64_t, int64_t>> doneOrder_;
    //! EWMA of simulated-job run seconds (retry_after hints).
    double ewmaRunSeconds_ = 0;
    SchedulerStats counters_;

    std::vector<std::thread> workers_;
    std::thread reaper_;
};

} // namespace serve
} // namespace fpraker

#endif // FPRAKER_SERVE_SCHEDULER_H
