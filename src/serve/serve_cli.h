/**
 * @file
 * The serving subcommands of the `fpraker` CLI (and the `fprakerd`
 * shim binary):
 *
 *   fpraker serve    [--socket=PATH] [--threads=N] [--workers=N]
 *                    [--cache-bytes=N] [--cache-dir=DIR]
 *                    [--trace-out=FILE]
 *   fpraker submit <id> [--socket=PATH] [--threads=N]
 *                    [--sample-steps=N] [--steps=N] [--reps=N]
 *                    [--out=FILE] [--priority=N] [--json=FILE]
 *                    [--no-wait]
 *   fpraker status <job> [--socket=PATH]
 *   fpraker result <job> [--socket=PATH] [--json=FILE]
 *   fpraker stats    [--socket=PATH] [--json]
 *   fpraker metrics  [--socket=PATH] [--prom]
 *   fpraker shutdown [--socket=PATH]
 *
 * Flag parsing is strict like the rest of the CLI (unknown flags and
 * out-of-range values exit 2). `fprakerd` is `fpraker serve` under
 * another argv[0]. Exit status: 0 success, 1 daemon/experiment/
 * transport failure, 2 usage error.
 */

#ifndef FPRAKER_SERVE_SERVE_CLI_H
#define FPRAKER_SERVE_SERVE_CLI_H

namespace fpraker {
namespace serve {

/** `fpraker serve` / `fprakerd` — run the daemon in the foreground. */
int serveMain(int argc, char **argv, int first);

/** `fpraker submit <id>` — submit a JobSpec, await the document. */
int submitMain(int argc, char **argv, int first);

/** `fpraker status <job>` — poll a job submitted with --no-wait. */
int statusMain(int argc, char **argv, int first);

/** `fpraker result <job>` — block for and fetch a job's document. */
int resultMain(int argc, char **argv, int first);

/** `fpraker stats` — print the daemon's scheduler/cache counters
 *  (human-readable by default; --json emits the raw daemon reply
 *  after checking its shape). */
int statsMain(int argc, char **argv, int first);

/** `fpraker metrics` — dump the daemon's obs metrics registry
 *  (JSON snapshot by default; --prom for Prometheus text). */
int metricsMain(int argc, char **argv, int first);

/** `fpraker shutdown` — ask the daemon to stop. */
int shutdownMain(int argc, char **argv, int first);

} // namespace serve
} // namespace fpraker

#endif // FPRAKER_SERVE_SERVE_CLI_H
