#include "serve/job_spec.h"

#include <algorithm>
#include <cstdlib>

#include "common/fnv.h"

namespace fpraker {
namespace serve {

namespace {

std::vector<std::pair<std::string, std::string>>
sortedOptions(const JobSpec &spec)
{
    auto sorted = spec.options;
    std::stable_sort(sorted.begin(), sorted.end(),
                     [](const auto &a, const auto &b) {
                         return a.first < b.first;
                     });
    return sorted;
}

/** Length-prefixed string mix: immune to separator characters
 *  appearing inside values ({"a","b|c"} never collides with
 *  {"a|b","c"}). */
void
addField(Fnv64 &h, const std::string &s)
{
    h.add(static_cast<uint64_t>(s.size()));
    h.add(s);
}

} // namespace

int
JobSpec::resolvedSampleSteps() const
{
    if (sampleSteps > 0)
        return sampleSteps;
    // Mirror Session::sampleSteps' env fallback: what the job will
    // actually simulate with. Folding the RESOLVED value into the
    // key makes disk spills airtight across daemons whose
    // environments differ (PR 5 follow-up).
    if (const char *env = std::getenv("FPRAKER_SAMPLE_STEPS")) {
        int e = std::atoi(env);
        if (e > 0)
            return e;
    }
    return 0;
}

std::string
JobSpec::canonical() const
{
    std::string out = "experiment=" + experiment;
    out += "|threads=" + std::to_string(threads);
    out += "|sample_steps=" + std::to_string(resolvedSampleSteps());
    for (const auto &[key, value] : sortedOptions(*this))
        out += "|opt:" + key + "=" + value;
    return out;
}

uint64_t
JobSpec::cacheKey() const
{
    // Structural hash, field by field with length prefixes — NOT a
    // hash of canonical(), whose joined form would be ambiguous for
    // option values containing the join characters.
    Fnv64 h;
    addField(h, kServeCacheEpoch);
    addField(h, "fpraker-result-v1");
    addField(h, experiment);
    h.add(static_cast<uint64_t>(threads));
    h.add(static_cast<uint64_t>(resolvedSampleSteps()));
    const auto sorted = sortedOptions(*this);
    h.add(static_cast<uint64_t>(sorted.size()));
    for (const auto &[key, value] : sorted) {
        addField(h, key);
        addField(h, value);
    }
    return h.value();
}

api::JsonValue
JobSpec::toJson() const
{
    api::JsonValue spec = api::JsonValue::object();
    spec.set("experiment", experiment);
    if (threads > 0)
        spec.set("threads", threads);
    if (sampleSteps > 0)
        spec.set("sample_steps", sampleSteps);
    if (!options.empty()) {
        api::JsonValue opts = api::JsonValue::object();
        for (const auto &[key, value] : options)
            opts.set(key, value);
        spec.set("options", std::move(opts));
    }
    if (priority != 0)
        spec.set("priority", priority);
    if (deadlineMs > 0)
        spec.set("deadline_ms", deadlineMs);
    return spec;
}

namespace {

bool
readPositiveInt(const api::JsonValue &v, const char *key, int *out,
                std::string *error)
{
    if (v.kind() != api::JsonValue::Kind::Int || v.intValue() < 1 ||
        v.intValue() > 1000000000) {
        *error = std::string("spec.") + key +
                 " must be an integer in [1, 1e9]";
        return false;
    }
    *out = static_cast<int>(v.intValue());
    return true;
}

} // namespace

bool
JobSpec::fromJson(const api::JsonValue &v, JobSpec *out,
                  std::string *error)
{
    if (!v.isObject()) {
        *error = "spec must be an object";
        return false;
    }
    JobSpec spec;
    for (const auto &[key, value] : v.entries()) {
        if (key == "experiment") {
            if (value.kind() != api::JsonValue::Kind::String ||
                value.str().empty()) {
                *error = "spec.experiment must be a non-empty string";
                return false;
            }
            spec.experiment = value.str();
        } else if (key == "threads") {
            if (!readPositiveInt(value, "threads", &spec.threads,
                                 error))
                return false;
        } else if (key == "sample_steps") {
            if (!readPositiveInt(value, "sample_steps",
                                 &spec.sampleSteps, error))
                return false;
        } else if (key == "priority") {
            // Bounded so queue ordering can safely negate it.
            if (value.kind() != api::JsonValue::Kind::Int ||
                value.intValue() < -1000000000 ||
                value.intValue() > 1000000000) {
                *error = "spec.priority must be an integer in "
                         "[-1e9, 1e9]";
                return false;
            }
            spec.priority = static_cast<int>(value.intValue());
        } else if (key == "deadline_ms") {
            if (!readPositiveInt(value, "deadline_ms",
                                 &spec.deadlineMs, error))
                return false;
        } else if (key == "options") {
            if (!value.isObject()) {
                *error = "spec.options must be an object of strings";
                return false;
            }
            for (const auto &[okey, ovalue] : value.entries()) {
                if (ovalue.kind() != api::JsonValue::Kind::String) {
                    *error = "spec.options." + okey +
                             " must be a string";
                    return false;
                }
                spec.options.emplace_back(okey, ovalue.str());
            }
        } else {
            *error = "unknown spec key '" + key + "'";
            return false;
        }
    }
    if (spec.experiment.empty()) {
        *error = "spec.experiment is required";
        return false;
    }
    *out = std::move(spec);
    return true;
}

} // namespace serve
} // namespace fpraker
