#include "serve/daemon.h"

#include <cerrno>
#include <cstring>
#include <ctime>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "common/clock.h"
#include "common/logging.h"
#include "obs/metrics.h"
#include "serve/fault_injection.h"
#include "serve/protocol.h"

namespace fpraker {
namespace serve {

namespace {

FPRAKER_METRIC_COUNTER(g_connections, "serve.connections",
                       "client connections accepted");
FPRAKER_METRIC_COUNTER(g_protocolErrors, "serve.protocol_errors",
                       "requests rejected before dispatch (bad JSON, "
                       "oversize, or framing failures)");

/** Per-op request counter + latency histogram, resolved once per op
 *  string per process (the op set is tiny and closed). */
struct OpInstruments
{
    obs::Counter &requests;
    obs::Histogram &latency;

    static OpInstruments &
    of(const std::string &op)
    {
        static std::mutex mutex;
        static std::vector<std::pair<std::string, OpInstruments *>>
            known;
        std::lock_guard<std::mutex> lock(mutex);
        for (auto &[name, inst] : known)
            if (name == op)
                return *inst;
        obs::Registry &reg = obs::Registry::instance();
        auto *inst = new OpInstruments{
            reg.counter("serve.requests." + op,
                        "requests dispatched for op '" + op + "'"),
            reg.histogram("serve.request_seconds." + op,
                          "request latency for op '" + op + "'",
                          obs::Buckets::latency())};
        known.emplace_back(op, inst);
        return *inst;
    }
};

} // namespace

Daemon::Daemon(const DaemonConfig &cfg)
    : cfg_(cfg),
      socketPath_(cfg.socketPath.empty() ? defaultSocketPath()
                                         : cfg.socketPath),
      scheduler_(std::make_unique<JobScheduler>(cfg.scheduler))
{
}

Daemon::~Daemon()
{
    if (listenFd_ >= 0) {
        ::close(listenFd_);
        ::unlink(socketPath_.c_str());
    }
}

bool
Daemon::start(std::string *error)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socketPath_.size() >= sizeof(addr.sun_path)) {
        *error = "socket path too long (max " +
                 std::to_string(sizeof(addr.sun_path) - 1) +
                 " bytes): " + socketPath_;
        return false;
    }
    std::strncpy(addr.sun_path, socketPath_.c_str(),
                 sizeof(addr.sun_path) - 1);

    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        *error = std::string("socket: ") + std::strerror(errno);
        return false;
    }

    int rc = ::bind(fd, reinterpret_cast<sockaddr *>(&addr),
                    sizeof(addr));
    if (rc < 0 && errno == EADDRINUSE) {
        // A live daemon answers a connect; a stale file does not —
        // only the latter may be reclaimed.
        int probe = ::socket(AF_UNIX, SOCK_STREAM, 0);
        bool alive = probe >= 0 &&
                     ::connect(probe,
                               reinterpret_cast<sockaddr *>(&addr),
                               sizeof(addr)) == 0;
        if (probe >= 0)
            ::close(probe);
        if (alive) {
            *error = "another daemon is already serving " +
                     socketPath_;
            ::close(fd);
            return false;
        }
        ::unlink(socketPath_.c_str());
        rc = ::bind(fd, reinterpret_cast<sockaddr *>(&addr),
                    sizeof(addr));
    }
    if (rc < 0) {
        *error = std::string("bind: ") + std::strerror(errno);
        ::close(fd);
        return false;
    }

    if (::listen(fd, 64) < 0) {
        *error = std::string("listen: ") + std::strerror(errno);
        ::close(fd);
        ::unlink(socketPath_.c_str());
        return false;
    }
    listenFd_ = fd;
    startTime_ = monotonicSeconds();
    return true;
}

void
Daemon::requestStop()
{
    stop_.store(true);
    // Poke the accept loop: shutting the listen fd down makes the
    // blocking accept() return with an error.
    if (listenFd_ >= 0)
        ::shutdown(listenFd_, SHUT_RDWR);
    // Drain open connections even when clients keep their sockets
    // open: SHUT_RD unblocks readers with EOF while letting the
    // response to an in-flight request (this shutdown's included)
    // still be written.
    std::lock_guard<std::mutex> lock(connMutex_);
    for (int fd : activeFds_)
        ::shutdown(fd, SHUT_RD);
}

bool
Daemon::serve()
{
    bool clean = true;
    while (!stop_.load()) {
        int conn = ::accept(listenFd_, nullptr, nullptr);
        {
            // Reap connection threads that already exited (join is
            // instant) so a long-lived daemon holds O(live) handles.
            std::lock_guard<std::mutex> lock(connMutex_);
            for (std::thread &t : finished_)
                t.join();
            finished_.clear();
        }
        if (conn < 0) {
            // A client that vanished between connect and accept, or
            // transient fd exhaustion, must not take the daemon down.
            if (errno == EINTR || errno == ECONNABORTED)
                continue;
            if (errno == EMFILE || errno == ENFILE) {
                struct timespec back = {0, 50 * 1000 * 1000};
                ::nanosleep(&back, nullptr);
                continue;
            }
            // Listen fd shut down (requestStop) or truly broken.
            clean = stop_.load();
            break;
        }
        std::lock_guard<std::mutex> lock(connMutex_);
        if (stop_.load()) {
            // Raced with requestStop after its drain pass: refuse.
            ::close(conn);
            continue;
        }
        activeFds_.push_back(conn);
        connections_.emplace_back(
            [this, conn] { handleConnection(conn); });
    }
    std::vector<std::thread> pending;
    {
        std::lock_guard<std::mutex> lock(connMutex_);
        pending.swap(connections_);
        for (std::thread &t : finished_)
            pending.push_back(std::move(t));
        finished_.clear();
    }
    for (std::thread &t : pending)
        t.join();
    ::close(listenFd_);
    ::unlink(socketPath_.c_str());
    listenFd_ = -1;
    return clean;
}

api::JsonValue
Daemon::completedResponse(uint64_t id, const JobOutcome &outcome)
{
    if (outcome.state == JobState::Failed) {
        api::JsonValue resp = errorResponse(
            outcome.errorCode.empty() ? kErrInternal
                                      : outcome.errorCode.c_str(),
            outcome.error);
        // Keep the job identity on structured failures so a client
        // can correlate the rejection with its submit.
        resp.set("job", static_cast<int64_t>(id));
        resp.set("status", jobStateName(outcome.state));
        if (outcome.retryAfterMs > 0)
            resp.set("retry_after_ms", outcome.retryAfterMs);
        return resp;
    }
    api::JsonValue resp = okResponse();
    resp.set("job", static_cast<int64_t>(id));
    resp.set("status", jobStateName(outcome.state));
    resp.set("cached", outcome.cached);
    resp.set("experiment_ok", outcome.ok);
    resp.set("fingerprint", outcome.fingerprint);
    resp.set("queue_s", api::JsonValue(outcome.queueSeconds, 6));
    resp.set("run_s", api::JsonValue(outcome.runSeconds, 6));
    if (outcome.deadlineOverrunMs > 0)
        resp.set("deadline_overrun_ms", outcome.deadlineOverrunMs);
    resp.set("document", outcome.document);
    return resp;
}

api::JsonValue
Daemon::handleRequest(const api::JsonValue &request)
{
    if (!request.isObject())
        return errorResponse(kErrBadRequest,
                             "request must be a JSON object");
    const api::JsonValue *op = request.find("op");
    if (!op || op->kind() != api::JsonValue::Kind::String)
        return errorResponse(kErrBadRequest,
                             "request needs a string 'op'");

    if (op->str() == "ping") {
        api::JsonValue resp = okResponse();
        resp.set("protocol", kProtocolVersion);
        return resp;
    }

    if (op->str() == "submit") {
        const api::JsonValue *specv = request.find("spec");
        if (!specv)
            return errorResponse(kErrBadRequest,
                                 "submit needs a 'spec' object");
        JobSpec spec;
        std::string error;
        if (!JobSpec::fromJson(*specv, &spec, &error))
            return errorResponse(kErrBadRequest, error);
        bool wait = true;
        if (const api::JsonValue *w = request.find("wait")) {
            if (w->kind() != api::JsonValue::Kind::Bool)
                return errorResponse(kErrBadRequest,
                                     "'wait' must be a boolean");
            wait = w->boolean();
        }
        uint64_t id = scheduler_->submit(spec);
        if (!wait) {
            JobState state;
            scheduler_->status(id, &state);
            api::JsonValue resp = okResponse();
            resp.set("job", static_cast<int64_t>(id));
            resp.set("status", jobStateName(state));
            return resp;
        }
        return completedResponse(id, scheduler_->wait(id));
    }

    if (op->str() == "status" || op->str() == "result") {
        const api::JsonValue *jobv = request.find("job");
        if (!jobv || jobv->kind() != api::JsonValue::Kind::Int)
            return errorResponse(kErrBadRequest,
                                 op->str() +
                                     " needs an integer 'job'");
        uint64_t id = static_cast<uint64_t>(jobv->intValue());
        JobState state;
        if (!scheduler_->status(id, &state))
            return errorResponse(kErrUnknownJob,
                                 "unknown job " + std::to_string(id));
        if (op->str() == "status") {
            api::JsonValue resp = okResponse();
            resp.set("job", static_cast<int64_t>(id));
            resp.set("status", jobStateName(state));
            return resp;
        }
        return completedResponse(id, scheduler_->wait(id));
    }

    if (op->str() == "stats") {
        SchedulerStats s = scheduler_->stats();
        api::JsonValue resp = okResponse();
        resp.set("protocol", kProtocolVersion);
        resp.set("uptime_s",
                 api::JsonValue(monotonicSeconds() - startTime_, 3));
        resp.set("engine_threads", s.engineThreads);
        resp.set("workers", s.workers);
        api::JsonValue jobs = api::JsonValue::object();
        jobs.set("submitted", s.submitted);
        jobs.set("executed", s.executed);
        jobs.set("coalesced", s.coalesced);
        jobs.set("cache_served", s.cacheServed);
        jobs.set("failed", s.failed);
        jobs.set("shed_overload", s.shedOverload);
        jobs.set("shed_deadline", s.shedDeadline);
        jobs.set("deadline_overruns", s.overrun);
        jobs.set("pruned", s.pruned);
        jobs.set("queued", s.queued);
        jobs.set("running", s.running);
        jobs.set("queue_depth", cfg_.scheduler.queueDepth);
        resp.set("jobs", std::move(jobs));
        api::JsonValue cache = api::JsonValue::object();
        cache.set("hits", s.cache.hits);
        cache.set("misses", s.cache.misses);
        cache.set("insertions", s.cache.insertions);
        cache.set("evictions", s.cache.evictions);
        cache.set("disk_hits", s.cache.diskHits);
        cache.set("disk_writes", s.cache.diskWrites);
        cache.set("disk_corrupt", s.cache.diskCorrupt);
        cache.set("bytes", s.cache.bytes);
        cache.set("entries", s.cache.entries);
        cache.set("capacity_bytes", s.cache.capacityBytes);
        resp.set("cache", std::move(cache));
        return resp;
    }

    if (op->str() == "metrics") {
        // The whole obs registry, live. "format": "prom" swaps the
        // structured snapshot for a Prometheus text exposition.
        bool prom = false;
        if (const api::JsonValue *f = request.find("format")) {
            if (f->kind() != api::JsonValue::Kind::String ||
                (f->str() != "json" && f->str() != "prom"))
                return errorResponse(
                    kErrBadRequest,
                    "'format' must be \"json\" or \"prom\"");
            prom = f->str() == "prom";
        }
        api::JsonValue resp = okResponse();
        resp.set("protocol", kProtocolVersion);
        resp.set("uptime_s",
                 api::JsonValue(monotonicSeconds() - startTime_, 3));
        if (prom)
            resp.set("text", obs::Registry::instance().renderProm());
        else
            resp.set("metrics",
                     obs::Registry::instance().snapshotJson());
        return resp;
    }

    if (op->str() == "shutdown") {
        requestStop();
        api::JsonValue resp = okResponse();
        resp.set("stopping", true);
        return resp;
    }

    return errorResponse(kErrUnknownOp,
                         "unknown op '" + op->str() + "'");
}

void
Daemon::handleConnection(int fd)
{
    // Socket IO timeouts: a peer that connects and stalls (or stops
    // draining responses) fails its read/write within the bound
    // instead of pinning this thread for the daemon's lifetime.
    std::string error;
    if (!setIoTimeout(fd, cfg_.ioTimeoutSeconds, &error))
        warn("fprakerd: %s", error.c_str());
    // Requests are tiny (one spec object); the default 4 MiB bounds a
    // hostile newline-free stream without cramping any legitimate
    // client.
    LineReader reader(fd, cfg_.maxRequestBytes);
    g_connections.add();
    std::string line;
    for (;;) {
        int64_t delayMs = 0;
        if (FaultInjector::instance().fires("daemon.read_delay_ms",
                                            &delayMs))
            faultSleepMs(delayMs);
        if (!reader.readLine(&line, &error)) {
            // An oversize line deserves an answer (the peer is live
            // and draining); a timeout, torn line, or transport error
            // does not — the stream is already unusable. Either way
            // the connection closes: once framing has failed there is
            // no line boundary left to resynchronize on.
            if (reader.lastFail() == LineReader::Fail::Oversize) {
                g_protocolErrors.add();
                (void)writeMessage(
                    fd, errorResponse(kErrBadRequest, error),
                    &error);
            }
            break;
        }
        api::JsonValue request = api::JsonValue::parse(line, &error);
        api::JsonValue response;
        if (!error.empty()) {
            g_protocolErrors.add();
            response = errorResponse(kErrBadRequest,
                                     "bad request: " + error);
        } else {
            // Per-op request count + latency. Op names come off the
            // wire, so anything outside the protocol's closed set is
            // bucketed as "other" — a hostile stream of novel op
            // strings must not grow the registry without bound.
            static const char *const kKnownOps[] = {
                "ping",   "submit",  "status",   "result",
                "stats",  "metrics", "shutdown",
            };
            std::string opName = "other";
            if (const api::JsonValue *op = request.find("op");
                op && op->kind() == api::JsonValue::Kind::String) {
                for (const char *known : kKnownOps)
                    if (op->str() == known) {
                        opName = known;
                        break;
                    }
            }
            OpInstruments &oi = OpInstruments::of(opName);
            const int64_t t0 = now_ns();
            response = handleRequest(request);
            oi.requests.add();
            oi.latency.observe(
                static_cast<double>(now_ns() - t0) * 1e-9);
        }
        if (FaultInjector::instance().fires("daemon.drop_connection"))
            break; // Vanish without a response, like a crashed peer.
        if (!writeMessage(fd, response, &error))
            break;
    }
    // Close under the connection lock so requestStop never touches a
    // recycled descriptor.
    std::lock_guard<std::mutex> lock(connMutex_);
    for (size_t i = 0; i < activeFds_.size(); ++i) {
        if (activeFds_[i] == fd) {
            activeFds_.erase(activeFds_.begin() +
                             static_cast<long>(i));
            break;
        }
    }
    ::close(fd);
    // Hand this thread's handle to the reap list; the accept loop
    // (or shutdown) joins it. A thread cannot join itself, so the
    // move is the whole trick.
    for (size_t i = 0; i < connections_.size(); ++i) {
        if (connections_[i].get_id() == std::this_thread::get_id()) {
            finished_.push_back(std::move(connections_[i]));
            connections_.erase(connections_.begin() +
                               static_cast<long>(i));
            break;
        }
    }
}

} // namespace serve
} // namespace fpraker
