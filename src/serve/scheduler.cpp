#include "serve/scheduler.h"

#include "api/driver.h"
#include "api/registry.h"
#include "api/result.h"
#include "common/clock.h"
#include "common/fnv.h"
#include "common/logging.h"

namespace fpraker {
namespace serve {

namespace {

/**
 * Pull the top-level "fingerprint" value out of a rendered document.
 * The renderer emits it before any content arrays, so the first
 * occurrence of the key is the right one.
 */
std::string
extractFingerprint(const std::string &document)
{
    static const char kKey[] = "\"fingerprint\": \"";
    size_t at = document.find(kKey);
    if (at == std::string::npos)
        return "";
    at += sizeof(kKey) - 1;
    size_t end = document.find('"', at);
    if (end == std::string::npos)
        return "";
    return document.substr(at, end - at);
}

} // namespace

const char *
jobStateName(JobState s)
{
    switch (s) {
      case JobState::Queued:
        return "queued";
      case JobState::Running:
        return "running";
      case JobState::Done:
        return "done";
      case JobState::Failed:
        return "failed";
    }
    return "?";
}

JobScheduler::JobScheduler(const SchedulerConfig &cfg)
    : cfg_(cfg),
      engine_(std::make_unique<SimEngine>(cfg.engineThreads)),
      cache_(std::make_unique<ResultCache>(cfg.cacheBytes,
                                           cfg.cacheDir))
{
    int workers = cfg.workers > 0 ? cfg.workers : 1;
    counters_.engineThreads = engine_->threads();
    counters_.workers = workers;
    workers_.reserve(static_cast<size_t>(workers));
    for (int i = 0; i < workers; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

JobScheduler::~JobScheduler()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
        // Queued jobs will never run; release their waiters.
        for (const auto &[key, id] : queue_) {
            (void)key;
            Job &job = jobs_[id];
            job.outcome.state = JobState::Failed;
            job.outcome.error = "scheduler stopped";
            inflight_.erase(job.key);
            ++counters_.failed;
        }
        queue_.clear();
    }
    queueCv_.notify_all();
    doneCv_.notify_all();
    for (std::thread &t : workers_)
        t.join();
}

uint64_t
JobScheduler::submit(const JobSpec &spec)
{
    const uint64_t key = spec.cacheKey();
    // Hot path: probe the cache OUTSIDE the scheduler lock — the
    // lookup may copy a large document or touch the spill disk, and
    // serializing that against every other submit/wait/worker-pop
    // would throttle exactly the path the cache exists to speed up.
    // (The cache has its own lock.)
    std::string document;
    bool hit = cache_->lookup(key, &document);

    std::lock_guard<std::mutex> lock(mutex_);
    ++counters_.submitted;

    if (hit) {
        uint64_t id = nextId_++;
        Job job;
        job.spec = spec;
        job.key = key;
        job.submitTime = monotonicSeconds();
        job.outcome.state = JobState::Done;
        job.outcome.cached = true;
        job.outcome.fingerprint = extractFingerprint(document);
        job.outcome.document = std::move(document);
        jobs_.emplace(id, std::move(job));
        ++counters_.cacheServed;
        return id;
    }

    // Coalesce with an identical queued/running job: the simulation
    // runs once and every submitter waits on the same id. A
    // higher-priority submit promotes a still-queued job so the
    // (priority desc, seq asc) contract holds for every submitter.
    if (auto it = inflight_.find(key); it != inflight_.end()) {
        ++counters_.coalesced;
        Job &job = jobs_[it->second];
        if (job.outcome.state == JobState::Queued &&
            spec.priority > job.queuedPriority) {
            queue_.erase({-job.queuedPriority, job.seq});
            job.queuedPriority = spec.priority;
            queue_.emplace(std::make_pair(-job.queuedPriority,
                                          job.seq),
                           it->second);
        }
        return it->second;
    }

    uint64_t id = nextId_++;
    Job job;
    job.spec = spec;
    job.key = key;
    job.seq = nextSeq_++;
    job.queuedPriority = spec.priority;
    job.submitTime = monotonicSeconds();
    jobs_.emplace(id, std::move(job));
    inflight_.emplace(key, id);
    // Negated priority: map order is ascending, high priority first.
    queue_.emplace(std::make_pair(-spec.priority, jobs_[id].seq), id);
    queueCv_.notify_one();
    return id;
}

JobOutcome
JobScheduler::wait(uint64_t id)
{
    std::unique_lock<std::mutex> lock(mutex_);
    auto it = jobs_.find(id);
    if (it == jobs_.end()) {
        JobOutcome out;
        out.state = JobState::Failed;
        out.error = "unknown job " + std::to_string(id);
        return out;
    }
    doneCv_.wait(lock, [&] {
        const JobOutcome &o = jobs_[id].outcome;
        return o.state == JobState::Done || o.state == JobState::Failed;
    });
    return jobs_[id].outcome;
}

bool
JobScheduler::status(uint64_t id, JobState *state) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = jobs_.find(id);
    if (it == jobs_.end())
        return false;
    *state = it->second.outcome.state;
    return true;
}

void
JobScheduler::workerLoop()
{
    for (;;) {
        uint64_t id = 0;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            queueCv_.wait(lock,
                          [&] { return stop_ || !queue_.empty(); });
            if (stop_)
                return;
            auto it = queue_.begin();
            id = it->second;
            queue_.erase(it);
            Job &job = jobs_[id];
            job.outcome.state = JobState::Running;
            job.outcome.queueSeconds = monotonicSeconds() - job.submitTime;
            ++counters_.running;
        }
        execute(id);
    }
}

void
JobScheduler::execute(uint64_t id)
{
    // Copy what the run needs: jobs_ may rehash under concurrent
    // submits, so references don't survive the unlocked region.
    JobSpec spec;
    uint64_t key = 0;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        spec = jobs_[id].spec;
        key = jobs_[id].key;
    }

    JobOutcome out;
    const double t0 = monotonicSeconds();
    // Close the submit-side race: a lock-free cache probe that missed
    // may have been overtaken by an identical job completing before
    // this one was enqueued. Re-check before paying for a simulation
    // (contains() first so the common cold path doesn't double-count
    // a miss in the stats).
    std::string cachedDoc;
    if (cache_->contains(key) && cache_->lookup(key, &cachedDoc)) {
        out.state = JobState::Done;
        out.cached = true;
        out.fingerprint = extractFingerprint(cachedDoc);
        out.document = std::move(cachedDoc);
        out.runSeconds = monotonicSeconds() - t0;
        std::lock_guard<std::mutex> lock(mutex_);
        Job &job = jobs_[id];
        out.queueSeconds = job.outcome.queueSeconds;
        job.outcome = std::move(out);
        inflight_.erase(key);
        --counters_.running;
        ++counters_.cacheServed;
        doneCv_.notify_all();
        return;
    }
    const api::ExperimentInfo *info =
        api::ExperimentRegistry::instance().find(spec.experiment);
    if (!info) {
        out.state = JobState::Failed;
        out.error = "unknown experiment '" + spec.experiment + "'";
    } else {
        api::CliOptions opts;
        opts.threads = spec.threads;
        opts.sampleSteps = spec.sampleSteps;
        opts.extras = spec.options;
        api::Result result =
            api::produceResult(*info, opts, engine_.get());
        out.state = JobState::Done;
        out.ok = result.ok;
        out.document = api::ReportWriter::renderJson(result);
        out.fingerprint = Fnv64::hex(result.fingerprint());
        // Two kinds of document are served to their submitter but
        // never cached: failed-gate results (a failure deserves a
        // fresh look, not replay) and timing experiments (their
        // fingerprint override marks content that is not
        // run-invariant — replaying stale wall-clock numbers as a
        // fresh document would mislead).
        if (result.ok && !result.hasFingerprintOverride())
            cache_->insert(key, out.document);
    }
    out.runSeconds = monotonicSeconds() - t0;

    {
        std::lock_guard<std::mutex> lock(mutex_);
        Job &job = jobs_[id];
        out.queueSeconds = job.outcome.queueSeconds;
        job.outcome = std::move(out);
        inflight_.erase(key);
        --counters_.running;
        if (job.outcome.state == JobState::Failed)
            ++counters_.failed;
        else
            ++counters_.executed;
    }
    doneCv_.notify_all();
}

SchedulerStats
JobScheduler::stats() const
{
    SchedulerStats s;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        s = counters_;
        s.queued = queue_.size();
    }
    s.cache = cache_->stats();
    return s;
}

} // namespace serve
} // namespace fpraker
