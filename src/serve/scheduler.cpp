#include "serve/scheduler.h"

#include <algorithm>
#include <chrono>

#include "api/driver.h"
#include "api/registry.h"
#include "api/result.h"
#include "common/clock.h"
#include "common/fnv.h"
#include "common/logging.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/fault_injection.h"
#include "serve/protocol.h"

namespace fpraker {
namespace serve {

namespace {

FPRAKER_METRIC_COUNTER(g_submitted, "sched.submitted",
                       "scheduler submit() calls");
FPRAKER_METRIC_COUNTER(g_executed, "sched.executed",
                       "jobs actually simulated");
FPRAKER_METRIC_COUNTER(g_coalesced, "sched.coalesced",
                       "submits joined to an in-flight job");
FPRAKER_METRIC_COUNTER(g_cacheServed, "sched.cache_served",
                       "submits completed straight from cache");
FPRAKER_METRIC_COUNTER(g_failed, "sched.failed",
                       "jobs that could not run");
FPRAKER_METRIC_COUNTER(g_shedOverload, "sched.shed_overload",
                       "submits rejected by admission control");
FPRAKER_METRIC_COUNTER(g_shedDeadline, "sched.shed_deadline",
                       "queued jobs shed at deadline");
FPRAKER_METRIC_COUNTER(g_overruns, "sched.deadline_overruns",
                       "ran jobs that finished past deadline");
FPRAKER_METRIC_COUNTER(g_pruned, "sched.pruned",
                       "completed outcomes retired by retention");
FPRAKER_METRIC_GAUGE(g_queueDepth, "sched.queue_depth",
                     "jobs waiting to run");
FPRAKER_METRIC_GAUGE(g_running, "sched.running",
                     "jobs currently executing");
FPRAKER_METRIC_HISTOGRAM(g_queueSeconds, "sched.queue_seconds",
                         "seconds a job waited before running",
                         obs::Buckets::latency());
FPRAKER_METRIC_HISTOGRAM(g_runSeconds, "sched.run_seconds",
                         "seconds a job spent executing",
                         obs::Buckets::latency());

} // namespace

const char *
jobStateName(JobState s)
{
    switch (s) {
      case JobState::Queued:
        return "queued";
      case JobState::Running:
        return "running";
      case JobState::Done:
        return "done";
      case JobState::Failed:
        return "failed";
    }
    return "?";
}

JobScheduler::JobScheduler(const SchedulerConfig &cfg)
    : cfg_(cfg),
      engine_(std::make_unique<SimEngine>(cfg.engineThreads)),
      cache_(std::make_unique<ResultCache>(cfg.cacheBytes,
                                           cfg.cacheDir))
{
    int workers = cfg.workers > 0 ? cfg.workers : 1;
    counters_.engineThreads = engine_->threads();
    counters_.workers = workers;
    workers_.reserve(static_cast<size_t>(workers));
    for (int i = 0; i < workers; ++i)
        workers_.emplace_back([this] { workerLoop(); });
    // The reaper makes deadlines and retention independent of worker
    // availability: a queued job's deadline fires on time even when
    // every worker is stalled inside a long simulation.
    reaper_ = std::thread([this] { reaperLoop(); });
}

JobScheduler::~JobScheduler()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
        // Queued jobs will never run; release their waiters.
        const int64_t now = now_ns();
        std::vector<uint64_t> queuedIds;
        for (const auto &[key, id] : queue_) {
            (void)key;
            queuedIds.push_back(id);
        }
        queue_.clear();
        g_queueDepth.set(0);
        for (uint64_t id : queuedIds)
            shedQueuedLocked(id, kErrShuttingDown,
                             "scheduler stopped", now);
    }
    queueCv_.notify_all();
    doneCv_.notify_all();
    reaperCv_.notify_all();
    for (std::thread &t : workers_)
        t.join();
    reaper_.join();
}

void
JobScheduler::shedQueuedLocked(uint64_t id, const char *code,
                               const std::string &error, int64_t nowNs)
{
    auto it = jobs_.find(id);
    if (it == jobs_.end())
        return;
    Job &job = it->second;
    job.outcome.state = JobState::Failed;
    job.outcome.errorCode = code;
    job.outcome.error = error;
    inflight_.erase(job.key);
    ++counters_.failed;
    g_failed.add();
    obs::TraceCollector &tc = obs::TraceCollector::instance();
    if (tc.enabled())
        tc.instant("sched", "job.shed:" + job.spec.experiment);
    markDoneLocked(id, job, nowNs);
    doneCv_.notify_all();
}

void
JobScheduler::markDoneLocked(uint64_t id, Job &job, int64_t nowNs)
{
    job.doneTimeNs = nowNs;
    doneOrder_.emplace_back(id, nowNs);
    pruneRetentionLocked(nowNs);
}

void
JobScheduler::pruneRetentionLocked(int64_t nowNs)
{
    const int64_t retainNs =
        static_cast<int64_t>(cfg_.retainSeconds * 1e9);
    while (!doneOrder_.empty()) {
        const bool overCount = doneOrder_.size() > cfg_.retainJobs;
        const bool overAge =
            cfg_.retainSeconds > 0 &&
            doneOrder_.front().second + retainNs < nowNs;
        // Hot path (nothing to retire): decided from the deque front
        // alone — no hash lookups on a cache-served submit.
        if (!overCount && !overAge)
            break;
        auto it = jobs_.find(doneOrder_.front().first);
        if (it != jobs_.end()) {
            // An active wait() pins its entry; the deque is
            // completion-ordered, so retry next tick, don't reorder.
            if (it->second.waiters > 0)
                break;
            jobs_.erase(it);
            ++counters_.pruned;
            g_pruned.add();
        }
        doneOrder_.pop_front();
    }
}

int
JobScheduler::retryAfterHintLocked() const
{
    // Estimate queue-drain time from the run-rate the scheduler has
    // actually observed; before any job completes, assume a modest
    // per-job cost. Clamped so the hint is never silly.
    const double perJob =
        ewmaRunSeconds_ > 0 ? ewmaRunSeconds_ : 0.05;
    const int workers = counters_.workers > 0 ? counters_.workers : 1;
    const double waitSeconds =
        perJob * static_cast<double>(queue_.size() + 1) / workers;
    const int ms = static_cast<int>(waitSeconds * 1000.0 + 0.5);
    return std::clamp(ms, 25, 10000);
}

uint64_t
JobScheduler::submit(const JobSpec &spec)
{
    const uint64_t key = spec.cacheKey();
    // Hot path: probe the cache OUTSIDE the scheduler lock — the
    // lookup may copy a large document or touch the spill disk, and
    // serializing that against every other submit/wait/worker-pop
    // would throttle exactly the path the cache exists to speed up.
    // (The cache has its own lock.)
    std::string document;
    std::string fingerprint;
    bool hit = cache_->lookup(key, &document, &fingerprint);

    std::lock_guard<std::mutex> lock(mutex_);
    ++counters_.submitted;
    g_submitted.add();
    const int64_t now = now_ns();

    if (hit) {
        uint64_t id = nextId_++;
        Job job;
        job.spec = spec;
        job.key = key;
        job.submitTimeNs = now;
        job.outcome.state = JobState::Done;
        job.outcome.cached = true;
        job.outcome.fingerprint = std::move(fingerprint);
        job.outcome.document = std::move(document);
        auto [jt, inserted] = jobs_.emplace(id, std::move(job));
        ++counters_.cacheServed;
        g_cacheServed.add();
        obs::TraceCollector &tc = obs::TraceCollector::instance();
        if (tc.enabled())
            tc.instant("sched",
                       "job.cache_served:" + spec.experiment);
        markDoneLocked(id, jt->second, now);
        return id;
    }

    // Coalesce with an identical queued/running job: the simulation
    // runs once and every submitter waits on the same id. A
    // higher-priority submit promotes a still-queued job so the
    // (priority desc, seq asc) contract holds for every submitter.
    // (The joined job keeps its own deadline — a coalesced submit
    // rides along, it does not renegotiate.) Costs no queue slot, so
    // it is exempt from admission control, like a cache hit.
    if (auto it = inflight_.find(key); it != inflight_.end()) {
        ++counters_.coalesced;
        g_coalesced.add();
        Job &job = jobs_[it->second];
        if (job.outcome.state == JobState::Queued &&
            spec.priority > job.queuedPriority) {
            queue_.erase({-job.queuedPriority, job.seq});
            job.queuedPriority = spec.priority;
            queue_.emplace(std::make_pair(-job.queuedPriority,
                                          job.seq),
                           it->second);
        }
        return it->second;
    }

    // Admission control: bounded queue, reject-newest. The rejected
    // submit still gets an id whose outcome is already Failed, so
    // every downstream path (wait, status, the wire protocol) treats
    // shedding like any other completion — just a structured one.
    if (queue_.size() >= cfg_.queueDepth) {
        uint64_t id = nextId_++;
        Job job;
        job.spec = spec;
        job.key = key;
        job.submitTimeNs = now;
        job.outcome.state = JobState::Failed;
        job.outcome.errorCode = kErrOverloaded;
        job.outcome.retryAfterMs = retryAfterHintLocked();
        job.outcome.error =
            "queue full (" + std::to_string(queue_.size()) +
            " jobs queued, depth " +
            std::to_string(cfg_.queueDepth) + "); retry in " +
            std::to_string(job.outcome.retryAfterMs) + " ms";
        auto [jt, inserted] = jobs_.emplace(id, std::move(job));
        ++counters_.shedOverload;
        ++counters_.failed;
        g_shedOverload.add();
        g_failed.add();
        obs::TraceCollector &tc = obs::TraceCollector::instance();
        if (tc.enabled())
            tc.instant("sched",
                       "job.shed_overload:" + spec.experiment);
        markDoneLocked(id, jt->second, now);
        return id;
    }

    uint64_t id = nextId_++;
    Job job;
    job.spec = spec;
    job.key = key;
    job.seq = nextSeq_++;
    job.queuedPriority = spec.priority;
    job.submitTimeNs = now;
    if (spec.deadlineMs > 0)
        job.deadlineTimeNs =
            now + static_cast<int64_t>(spec.deadlineMs) * 1000000;
    jobs_.emplace(id, std::move(job));
    inflight_.emplace(key, id);
    // Negated priority: map order is ascending, high priority first.
    queue_.emplace(std::make_pair(-spec.priority, jobs_[id].seq), id);
    g_queueDepth.set(static_cast<int64_t>(queue_.size()));
    queueCv_.notify_one();
    return id;
}

JobOutcome
JobScheduler::run(const JobSpec &spec)
{
    const uint64_t key = spec.cacheKey();
    std::string document;
    std::string fingerprint;
    if (cache_->lookup(key, &document, &fingerprint)) {
        JobOutcome out;
        out.state = JobState::Done;
        out.cached = true;
        out.fingerprint = std::move(fingerprint);
        out.document = std::move(document);
        std::lock_guard<std::mutex> lock(mutex_);
        ++counters_.submitted;
        ++counters_.cacheServed;
        g_submitted.add();
        g_cacheServed.add();
        return out;
    }
    // Miss (or the entry was evicted between probe and submit —
    // submit re-probes under its own sequencing): full path.
    return wait(submit(spec));
}

JobOutcome
JobScheduler::wait(uint64_t id)
{
    std::unique_lock<std::mutex> lock(mutex_);
    auto it = jobs_.find(id);
    if (it == jobs_.end()) {
        // Never submitted — or completed and already retired by the
        // retention bound. Either way there is nothing to wait for.
        JobOutcome out;
        out.state = JobState::Failed;
        out.errorCode = kErrUnknownJob;
        out.error = "unknown job " + std::to_string(id);
        return out;
    }
    // Fast path — the submit already completed (every cache hit and
    // every shed submit): hand the outcome over without touching the
    // CV or the waiter pin. The lock is held throughout, so pruning
    // cannot interleave.
    {
        const JobState s = it->second.outcome.state;
        if (s == JobState::Done || s == JobState::Failed)
            return it->second.outcome;
    }
    // Pin the entry: retention pruning skips jobs with waiters, so
    // the outcome cannot be retired between completion and pickup.
    ++it->second.waiters;
    doneCv_.wait(lock, [&] {
        auto jt = jobs_.find(id);
        if (jt == jobs_.end())
            return true; // Defensive; pinned entries are not pruned.
        const JobState s = jt->second.outcome.state;
        return s == JobState::Done || s == JobState::Failed;
    });
    auto jt = jobs_.find(id);
    if (jt == jobs_.end()) {
        JobOutcome out;
        out.state = JobState::Failed;
        out.errorCode = kErrUnknownJob;
        out.error = "job " + std::to_string(id) + " retired";
        return out;
    }
    JobOutcome out = jt->second.outcome;
    --jt->second.waiters;
    return out;
}

bool
JobScheduler::status(uint64_t id, JobState *state) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = jobs_.find(id);
    if (it == jobs_.end())
        return false;
    *state = it->second.outcome.state;
    return true;
}

void
JobScheduler::workerLoop()
{
    for (;;) {
        uint64_t id = 0;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            queueCv_.wait(lock,
                          [&] { return stop_ || !queue_.empty(); });
            if (stop_)
                return;
            auto it = queue_.begin();
            id = it->second;
            queue_.erase(it);
            g_queueDepth.set(static_cast<int64_t>(queue_.size()));
            Job &job = jobs_[id];
            const int64_t now = now_ns();
            // Shed-at-pop: a job whose deadline lapsed while queued
            // must not burn engine time its submitter has given up on.
            if (job.deadlineTimeNs > 0 && now > job.deadlineTimeNs) {
                ++counters_.shedDeadline;
                g_shedDeadline.add();
                const int waitedMs = static_cast<int>(
                    (now - job.submitTimeNs) / 1000000);
                shedQueuedLocked(
                    id, kErrTimeout,
                    "deadline of " +
                        std::to_string(job.spec.deadlineMs) +
                        " ms expired after " +
                        std::to_string(waitedMs) + " ms in queue",
                    now);
                continue;
            }
            job.outcome.state = JobState::Running;
            job.outcome.queueSeconds =
                static_cast<double>(now - job.submitTimeNs) * 1e-9;
            ++counters_.running;
            g_running.add(1);
        }
        execute(id);
    }
}

void
JobScheduler::reaperLoop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        reaperCv_.wait_for(lock, std::chrono::milliseconds(50),
                           [&] { return stop_; });
        if (stop_)
            return;
        const int64_t now = now_ns();
        // Deadline sweep over the queue — O(queued), bounded by
        // queueDepth. Collect first: shedding mutates jobs_.
        std::vector<std::pair<std::pair<int, uint64_t>, uint64_t>>
            expired;
        for (const auto &[qkey, id] : queue_) {
            auto it = jobs_.find(id);
            if (it != jobs_.end() && it->second.deadlineTimeNs > 0 &&
                now > it->second.deadlineTimeNs)
                expired.emplace_back(qkey, id);
        }
        for (const auto &[qkey, id] : expired) {
            queue_.erase(qkey);
            ++counters_.shedDeadline;
            g_shedDeadline.add();
            auto it = jobs_.find(id);
            const int waitedMs =
                it == jobs_.end()
                    ? 0
                    : static_cast<int>(
                          (now - it->second.submitTimeNs) / 1000000);
            const int deadlineMs =
                it == jobs_.end() ? 0 : it->second.spec.deadlineMs;
            shedQueuedLocked(
                id, kErrTimeout,
                "deadline of " + std::to_string(deadlineMs) +
                    " ms expired after " + std::to_string(waitedMs) +
                    " ms in queue",
                now);
        }
        if (!expired.empty())
            g_queueDepth.set(static_cast<int64_t>(queue_.size()));
        pruneRetentionLocked(now);
    }
}

void
JobScheduler::execute(uint64_t id)
{
    // Copy what the run needs: jobs_ may rehash under concurrent
    // submits, so references don't survive the unlocked region.
    JobSpec spec;
    uint64_t key = 0;
    int64_t deadlineTimeNs = 0;
    int64_t submitTimeNs = 0;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        Job &job = jobs_[id];
        spec = job.spec;
        key = job.key;
        deadlineTimeNs = job.deadlineTimeNs;
        submitTimeNs = job.submitTimeNs;
    }

    int64_t stallMs = 0;
    if (FaultInjector::instance().fires("scheduler.worker_stall_ms",
                                        &stallMs))
        faultSleepMs(stallMs);

    JobOutcome out;
    const int64_t t0 = now_ns();
    // Close the submit-side race: a lock-free cache probe that missed
    // may have been overtaken by an identical job completing before
    // this one was enqueued. Re-check before paying for a simulation
    // (contains() first so the common cold path doesn't double-count
    // a miss in the stats).
    std::string cachedDoc;
    std::string cachedFp;
    if (cache_->contains(key) &&
        cache_->lookup(key, &cachedDoc, &cachedFp)) {
        out.state = JobState::Done;
        out.cached = true;
        out.fingerprint = std::move(cachedFp);
        out.document = std::move(cachedDoc);
        out.runSeconds =
            static_cast<double>(now_ns() - t0) * 1e-9;
        obs::TraceCollector &tc = obs::TraceCollector::instance();
        if (tc.enabled())
            tc.instant("sched",
                       "job.cache_served:" + spec.experiment);
        std::lock_guard<std::mutex> lock(mutex_);
        Job &job = jobs_[id];
        out.queueSeconds = job.outcome.queueSeconds;
        job.outcome = std::move(out);
        inflight_.erase(key);
        --counters_.running;
        g_running.add(-1);
        ++counters_.cacheServed;
        g_cacheServed.add();
        markDoneLocked(id, job, now_ns());
        doneCv_.notify_all();
        return;
    }
    const api::ExperimentInfo *info =
        api::ExperimentRegistry::instance().find(spec.experiment);
    if (!info) {
        out.state = JobState::Failed;
        out.errorCode = kErrUnknownExperiment;
        out.error = "unknown experiment '" + spec.experiment + "'";
    } else {
        api::CliOptions opts;
        opts.threads = spec.threads;
        opts.sampleSteps = spec.sampleSteps;
        opts.extras = spec.options;
        api::Result result =
            api::produceResult(*info, opts, engine_.get());
        out.state = JobState::Done;
        out.ok = result.ok;
        out.document = api::ReportWriter::renderJson(result);
        out.fingerprint = Fnv64::hex(result.fingerprint());
        // Two kinds of document are served to their submitter but
        // never cached: failed-gate results (a failure deserves a
        // fresh look, not replay) and timing experiments (their
        // fingerprint override marks content that is not
        // run-invariant — replaying stale wall-clock numbers as a
        // fresh document would mislead).
        if (result.ok && !result.hasFingerprintOverride())
            cache_->insert(key, out.document);
        // Deadline overrun: the job started in time, so the result is
        // real and already cached clean — but THIS submitter's copy
        // must say it arrived late. Re-render with the provenance
        // field set; the fingerprint is content-only and unchanged.
        const int64_t tEnd = now_ns();
        if (deadlineTimeNs > 0 && tEnd > deadlineTimeNs) {
            out.deadlineOverrunMs = std::max(
                1, static_cast<int>((tEnd - deadlineTimeNs) /
                                    1000000));
            result.deadlineOverrunMs = out.deadlineOverrunMs;
            out.document = api::ReportWriter::renderJson(result);
        }
    }
    const int64_t tDone = now_ns();
    out.runSeconds = static_cast<double>(tDone - t0) * 1e-9;

    // Lifecycle spans, rendered at completion from the job's own
    // timestamps (all on the one monotonic clock): the queued wait
    // and the run window stack naturally in a trace viewer.
    obs::TraceCollector &tc = obs::TraceCollector::instance();
    if (tc.enabled()) {
        tc.complete("sched", "job.queued:" + spec.experiment,
                    submitTimeNs, t0 - submitTimeNs);
        tc.complete("sched", "job.run:" + spec.experiment, t0,
                    tDone - t0);
    }
    g_runSeconds.observe(out.runSeconds);

    {
        std::lock_guard<std::mutex> lock(mutex_);
        Job &job = jobs_[id];
        out.queueSeconds = job.outcome.queueSeconds;
        job.outcome = std::move(out);
        inflight_.erase(key);
        --counters_.running;
        g_running.add(-1);
        g_queueSeconds.observe(job.outcome.queueSeconds);
        if (job.outcome.state == JobState::Failed) {
            ++counters_.failed;
            g_failed.add();
        } else {
            ++counters_.executed;
            g_executed.add();
            if (job.outcome.deadlineOverrunMs > 0) {
                ++counters_.overrun;
                g_overruns.add();
            }
            // Feed the retry_after estimator with real run costs.
            ewmaRunSeconds_ =
                ewmaRunSeconds_ == 0
                    ? job.outcome.runSeconds
                    : 0.8 * ewmaRunSeconds_ +
                          0.2 * job.outcome.runSeconds;
        }
        markDoneLocked(id, job, now_ns());
    }
    doneCv_.notify_all();
}

SchedulerStats
JobScheduler::stats() const
{
    SchedulerStats s;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        s = counters_;
        s.queued = queue_.size();
    }
    s.cache = cache_->stats();
    return s;
}

} // namespace serve
} // namespace fpraker
