/**
 * @file
 * RetryPolicy: the client-side half of the serving layer's overload
 * contract.
 *
 * The daemon sheds excess submits with {"ok": false, "error_code":
 * "overloaded", "retry_after_ms": N}. A well-behaved client backs off
 * and resubmits; this header is that behavior, shared by `fpraker
 * submit` and the throughput harness so every client in the tree
 * reacts to pressure the same way:
 *
 *  - capped exponential backoff (baseDelayMs * multiplier^attempt,
 *    capped at maxDelayMs) with multiplicative jitter;
 *  - the server's retry_after_ms hint is a FLOOR on the delay — the
 *    daemon knows its queue better than any client-side curve;
 *  - jitter is deterministic (seeded xoshiro, one stream per policy
 *    seed), so tests and benchmarks replay identical schedules. Two
 *    clients de-synchronize by using different seeds, not by
 *    entropy.
 *
 * Retryable failures: "overloaded" responses and transport errors
 * (daemon restarting, connection dropped mid-request). Structured
 * request errors (bad_request, unknown_experiment, timeout, ...) are
 * NOT retried — the same request would fail the same way.
 */

#ifndef FPRAKER_SERVE_RETRY_H
#define FPRAKER_SERVE_RETRY_H

#include <cstdint>
#include <string>

#include "api/json.h"
#include "serve/job_spec.h"

namespace fpraker {
namespace serve {

/** Backoff schedule knobs. */
struct RetryPolicy
{
    int maxAttempts = 5;  //!< Total tries (1 = no retries).
    int baseDelayMs = 50; //!< First-retry backoff.
    int maxDelayMs = 2000; //!< Backoff curve cap (hints may exceed).
    double multiplier = 2.0;
    //! Multiplicative jitter: the delay is scaled by a deterministic
    //! uniform draw from [1, 1 + jitterFrac]. Upward-only, so the
    //! server's retry_after_ms floor is always honored.
    double jitterFrac = 0.25;
    uint64_t seed = 1; //!< Jitter stream; vary per client.

    /**
     * Backoff before retry number @p attempt (1-based: the delay
     * after the attempt'th failure). @p retryAfterMs is the server's
     * hint (0 = none) and floors the result.
     */
    int delayMs(int attempt, int retryAfterMs) const;
};

/** What one submitWithRetry() call did, success or not. */
struct SubmitResult
{
    bool ok = false;           //!< Got a {"ok": true} response.
    api::JsonValue response;   //!< Last parsed response (may be err).
    std::string error;         //!< Transport/final failure text.
    std::string errorCode;     //!< Last structured code ("" = none).
    int attempts = 0;          //!< Round-trips performed.
    int backoffTotalMs = 0;    //!< Time spent sleeping between them.
};

/**
 * True when @p response is a structured failure worth resubmitting
 * ("overloaded"); fills @p retryAfterMs with the server's hint when
 * present.
 */
bool responseRetryable(const api::JsonValue &response,
                       int *retryAfterMs);

/**
 * Submit @p spec to the daemon at @p socketPath (one fresh
 * connection per attempt — a failed transport leaves no reusable
 * stream), retrying per @p policy on overload and transport errors.
 */
SubmitResult submitWithRetry(const std::string &socketPath,
                             const JobSpec &spec,
                             const RetryPolicy &policy,
                             bool wait = true);

} // namespace serve
} // namespace fpraker

#endif // FPRAKER_SERVE_RETRY_H
