#include "serve/result_cache.h"

#include <cstdio>
#include <filesystem>
#include <utility>

#include "common/fnv.h"
#include "common/logging.h"

namespace fpraker {
namespace serve {

std::string
markDocumentCached(const std::string &document)
{
    // Textual patch, not parse-and-redump: reserializing would
    // reformat fixed-precision numbers (the print-precision hints
    // don't survive parsing) and break the contract that a hot
    // delivery differs from the cold bytes ONLY in this flag. The
    // renderer emits provenance before any experiment content, and
    // quotes inside string values are escaped, so the first raw
    // occurrence of the key is provenance's.
    static const char kCold[] = "\"cached\": false";
    size_t at = document.find(kCold);
    // Cached documents were rendered by this binary; a missing flag
    // is a bug, not an input error.
    panic_if(at == std::string::npos,
             "cached document lacks provenance.cached");
    std::string hot = document;
    hot.replace(at, sizeof(kCold) - 1, "\"cached\": true");
    return hot;
}

ResultCache::ResultCache(uint64_t capacityBytes, std::string spillDir)
    : capacityBytes_(capacityBytes), spillDir_(std::move(spillDir))
{
    counters_.capacityBytes = capacityBytes_;
}

std::string
ResultCache::spillPath(uint64_t key) const
{
    return spillDir_ + "/" + Fnv64::hex(key) + ".json";
}

bool
ResultCache::loadSpill(uint64_t key, std::string *document)
{
    if (spillDir_.empty())
        return false;
    FILE *f = std::fopen(spillPath(key).c_str(), "rb");
    if (!f)
        return false;
    std::string text;
    char buf[1 << 14];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        text.append(buf, n);
    std::fclose(f);
    if (text.empty())
        return false;
    *document = std::move(text);
    return true;
}

void
ResultCache::touch(Entry &e, uint64_t key)
{
    lruOrder_.erase(e.lru);
    lruOrder_.push_front(key);
    e.lru = lruOrder_.begin();
}

bool
ResultCache::lookupLocked(uint64_t key, bool marked,
                          std::string *document)
{
    auto it = entries_.find(key);
    if (it == entries_.end()) {
        // Rescue from the spill directory: the document text re-enters
        // the LRU so repeat traffic stays in memory.
        std::string text;
        if (!loadSpill(key, &text)) {
            ++counters_.misses;
            return false;
        }
        // A rescue is a successful lookup: count it as a hit (the
        // diskHits counter is the where-from breakdown), so hit-rate
        // ratios over hits/(hits+misses) see disk-served traffic.
        ++counters_.hits;
        ++counters_.diskHits;
        insertLocked(key, text);
        it = entries_.find(key);
        if (it == entries_.end()) {
            // Too large even for an empty cache: serve it once.
            *document = marked ? markDocumentCached(text) : text;
            return true;
        }
    } else {
        ++counters_.hits;
        touch(it->second, key);
    }
    Entry &e = it->second;
    if (!marked) {
        *document = e.text;
        return true;
    }
    if (e.hotText.empty()) {
        e.hotText = markDocumentCached(e.text);
        bytes_ += e.hotText.size();
    }
    // Copy out before re-balancing: materializing the hot variant can
    // push past the bound, and eviction may drop this very entry when
    // it alone exceeds the capacity.
    *document = e.hotText;
    evictToFit();
    return true;
}

bool
ResultCache::lookup(uint64_t key, std::string *document)
{
    std::lock_guard<std::mutex> lock(mutex_);
    return lookupLocked(key, /*marked=*/true, document);
}

bool
ResultCache::lookupRaw(uint64_t key, std::string *document)
{
    std::lock_guard<std::mutex> lock(mutex_);
    return lookupLocked(key, /*marked=*/false, document);
}

void
ResultCache::evictToFit()
{
    while (bytes_ > capacityBytes_ && !lruOrder_.empty()) {
        uint64_t victim = lruOrder_.back();
        auto it = entries_.find(victim);
        bytes_ -= it->second.text.size() + it->second.hotText.size();
        entries_.erase(it);
        lruOrder_.pop_back();
        ++counters_.evictions;
    }
}

void
ResultCache::insertLocked(uint64_t key, const std::string &document)
{
    auto it = entries_.find(key);
    if (it != entries_.end()) {
        // Deterministic documents never change under one epoch; a
        // re-insert only refreshes recency.
        touch(it->second, key);
        return;
    }

    std::error_code ec;
    if (!spillDir_.empty() &&
        !std::filesystem::exists(spillPath(key), ec)) {
        std::filesystem::create_directories(spillDir_, ec);
        const std::string path = spillPath(key);
        const std::string tmp = path + ".tmp";
        FILE *f = std::fopen(tmp.c_str(), "wb");
        if (f) {
            std::fwrite(document.data(), 1, document.size(), f);
            std::fclose(f);
            std::filesystem::rename(tmp, path, ec);
            if (!ec)
                ++counters_.diskWrites;
        }
    }

    Entry e;
    e.text = document;
    lruOrder_.push_front(key);
    e.lru = lruOrder_.begin();
    bytes_ += e.text.size();
    entries_.emplace(key, std::move(e));
    ++counters_.insertions;
    evictToFit();
}

void
ResultCache::insert(uint64_t key, const std::string &document)
{
    std::lock_guard<std::mutex> lock(mutex_);
    insertLocked(key, document);
}

bool
ResultCache::contains(uint64_t key) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.count(key) != 0;
}

CacheStats
ResultCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    CacheStats s = counters_;
    s.bytes = bytes_;
    s.entries = entries_.size();
    return s;
}

} // namespace serve
} // namespace fpraker
