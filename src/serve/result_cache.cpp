#include "serve/result_cache.h"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <filesystem>
#include <utility>

#include <unistd.h>

#include "common/fnv.h"
#include "common/logging.h"
#include "obs/metrics.h"
#include "serve/fault_injection.h"

namespace fpraker {
namespace serve {

namespace {
FPRAKER_METRIC_COUNTER(g_hits, "cache.hits",
                       "result cache lookups served (memory or disk)");
FPRAKER_METRIC_COUNTER(g_misses, "cache.misses",
                       "result cache lookups that found nothing");
FPRAKER_METRIC_COUNTER(g_insertions, "cache.insertions",
                       "result cache cold admissions");
FPRAKER_METRIC_COUNTER(g_evictions, "cache.evictions",
                       "result cache LRU evictions");
FPRAKER_METRIC_COUNTER(g_diskHits, "cache.disk_hits",
                       "result cache lookups rescued from spill files");
FPRAKER_METRIC_COUNTER(g_diskWrites, "cache.disk_writes",
                       "spill files durably written");
FPRAKER_METRIC_COUNTER(g_diskCorrupt, "cache.disk_corrupt",
                       "spill files quarantined as corrupt");
FPRAKER_METRIC_GAUGE(g_bytes, "cache.bytes",
                     "result cache resident bytes");
FPRAKER_METRIC_GAUGE(g_entries, "cache.entries",
                     "result cache resident documents");
} // namespace

std::string
markDocumentCached(const std::string &document)
{
    // Textual patch, not parse-and-redump: reserializing would
    // reformat fixed-precision numbers (the print-precision hints
    // don't survive parsing) and break the contract that a hot
    // delivery differs from the cold bytes ONLY in this flag. The
    // renderer emits provenance before any experiment content, and
    // quotes inside string values are escaped, so the first raw
    // occurrence of the key is provenance's.
    static const char kCold[] = "\"cached\": false";
    size_t at = document.find(kCold);
    // Cached documents were rendered by this binary; a missing flag
    // is a bug, not an input error.
    panic_if(at == std::string::npos,
             "cached document lacks provenance.cached");
    std::string hot = document;
    hot.replace(at, sizeof(kCold) - 1, "\"cached\": true");
    return hot;
}

std::string
extractFingerprint(const std::string &document)
{
    static const char kKey[] = "\"fingerprint\": \"";
    size_t at = document.find(kKey);
    if (at == std::string::npos)
        return "";
    at += sizeof(kKey) - 1;
    size_t end = document.find('"', at);
    if (end == std::string::npos)
        return "";
    return document.substr(at, end - at);
}

namespace {

//! Fixed-width trailer: "#fpraker-spill fnv=<16> len=<16>\n".
constexpr char kTrailerTag[] = "#fpraker-spill ";
constexpr size_t kTrailerBytes =
    sizeof(kTrailerTag) - 1 + 4 + 16 + 5 + 16 + 1;

} // namespace

std::string
spillTrailer(const std::string &document)
{
    Fnv64 h;
    h.add(document);
    std::string trailer = kTrailerTag;
    trailer += "fnv=" + Fnv64::hex(h.value());
    trailer += " len=" +
               Fnv64::hex(static_cast<uint64_t>(document.size()));
    trailer += '\n';
    panic_if(trailer.size() != kTrailerBytes,
             "spill trailer width drifted");
    return trailer;
}

bool
verifySpill(const std::string &raw, std::string *document)
{
    if (raw.size() < kTrailerBytes || raw.back() != '\n')
        return false;
    const size_t docBytes = raw.size() - kTrailerBytes;
    const std::string doc = raw.substr(0, docBytes);
    // Rebuilding the expected trailer from the payload and comparing
    // whole-string checks the tag, both hex fields, and the layout in
    // one shot; a trailer is pure function of the document.
    if (raw.compare(docBytes, kTrailerBytes, spillTrailer(doc)) != 0)
        return false;
    *document = std::move(doc);
    return true;
}

ResultCache::ResultCache(uint64_t capacityBytes, std::string spillDir)
    : capacityBytes_(capacityBytes), spillDir_(std::move(spillDir))
{
    counters_.capacityBytes = capacityBytes_;
}

std::string
ResultCache::spillPath(uint64_t key) const
{
    return spillDir_ + "/" + Fnv64::hex(key) + ".json";
}

void
ResultCache::quarantineSpill(const std::string &path)
{
    // Keep the evidence (renamed, not unlinked) so an operator can
    // inspect what the disk handed back; the .corrupt suffix moves it
    // off the lookup path, so the key becomes a plain miss and the
    // next cold run re-spills a good copy over the old name.
    ++counters_.diskCorrupt;
    g_diskCorrupt.add();
    std::error_code ec;
    std::filesystem::rename(path, path + ".corrupt", ec);
    if (ec)
        std::filesystem::remove(path, ec);
    warn("result-cache: quarantined corrupt spill file %s",
         path.c_str());
}

bool
ResultCache::loadSpill(uint64_t key, std::string *document)
{
    if (spillDir_.empty())
        return false;
    const std::string path = spillPath(key);
    FILE *f = std::fopen(path.c_str(), "rb");
    if (!f)
        return false;
    std::string raw;
    char buf[1 << 14];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        raw.append(buf, n);
    const bool readOk = std::ferror(f) == 0;
    std::fclose(f);
    if (!readOk)
        return false;
    if (!verifySpill(raw, document)) {
        // Torn, truncated, or bit-flipped — a crash artifact or disk
        // fault. Never serve it.
        quarantineSpill(path);
        return false;
    }
    return true;
}

void
ResultCache::writeSpill(uint64_t key, const std::string &document)
{
    std::error_code ec;
    std::filesystem::create_directories(spillDir_, ec);
    const std::string path = spillPath(key);
    const std::string payload = document + spillTrailer(document);

    int64_t tornBytes = 0;
    if (FaultInjector::instance().fires("spill.torn_write",
                                        &tornBytes)) {
        // Emulate the pre-rename crash artifact this format defends
        // against: a partial payload sitting at the FINAL path (the
        // tmp+rename below can never produce one itself). param =
        // bytes that made it to disk.
        const size_t cut = std::min(
            payload.size(),
            static_cast<size_t>(tornBytes < 0 ? 0 : tornBytes));
        FILE *f = std::fopen(path.c_str(), "wb");
        if (f) {
            std::fwrite(payload.data(), 1, cut, f);
            std::fclose(f);
        }
        return;
    }

    // Unique temp name: the mutex serializes writers within this
    // process, but two daemons sharing one --cache-dir must not
    // interleave into the same tmp file.
    static std::atomic<uint64_t> tmpSeq{0};
    const std::string tmp = path + ".tmp." +
                            std::to_string(::getpid()) + "." +
                            std::to_string(tmpSeq.fetch_add(1));
    FILE *f = std::fopen(tmp.c_str(), "wb");
    if (!f)
        return;
    const size_t wrote =
        std::fwrite(payload.data(), 1, payload.size(), f);
    const bool flushed = std::fflush(f) == 0;
    std::fclose(f);
    if (wrote != payload.size() || !flushed) {
        std::filesystem::remove(tmp, ec);
        return;
    }
    std::filesystem::rename(tmp, path, ec);
    if (ec)
        std::filesystem::remove(tmp, ec);
    else {
        ++counters_.diskWrites;
        g_diskWrites.add();
    }
}

void
ResultCache::touch(Entry &e, uint64_t key)
{
    (void)key;
    // Splice, not erase+push_front: relinking the existing node costs
    // no allocation on the per-hit path, and the iterator stays valid.
    lruOrder_.splice(lruOrder_.begin(), lruOrder_, e.lru);
}

bool
ResultCache::lookupLocked(uint64_t key, bool marked,
                          std::string *document,
                          std::string *fingerprint)
{
    auto it = entries_.find(key);
    if (it == entries_.end()) {
        // Rescue from the spill directory: the document text re-enters
        // the LRU so repeat traffic stays in memory.
        std::string text;
        if (!loadSpill(key, &text)) {
            ++counters_.misses;
            g_misses.add();
            return false;
        }
        // A rescue is a successful lookup: count it as a hit (the
        // diskHits counter is the where-from breakdown), so hit-rate
        // ratios over hits/(hits+misses) see disk-served traffic.
        ++counters_.hits;
        ++counters_.diskHits;
        g_hits.add();
        g_diskHits.add();
        insertLocked(key, text);
        it = entries_.find(key);
        if (it == entries_.end()) {
            // Too large even for an empty cache: serve it once.
            if (fingerprint)
                *fingerprint = extractFingerprint(text);
            *document = marked ? markDocumentCached(text) : text;
            return true;
        }
    } else {
        ++counters_.hits;
        g_hits.add();
        touch(it->second, key);
    }
    Entry &e = it->second;
    if (fingerprint)
        *fingerprint = e.fingerprint;
    if (!marked) {
        *document = e.text;
        return true;
    }
    if (e.hotText.empty()) {
        e.hotText = markDocumentCached(e.text);
        bytes_ += e.hotText.size();
    }
    // Copy out before re-balancing: materializing the hot variant can
    // push past the bound, and eviction may drop this very entry when
    // it alone exceeds the capacity.
    *document = e.hotText;
    evictToFit();
    return true;
}

bool
ResultCache::lookup(uint64_t key, std::string *document)
{
    std::lock_guard<std::mutex> lock(mutex_);
    return lookupLocked(key, /*marked=*/true, document, nullptr);
}

bool
ResultCache::lookup(uint64_t key, std::string *document,
                    std::string *fingerprint)
{
    std::lock_guard<std::mutex> lock(mutex_);
    return lookupLocked(key, /*marked=*/true, document, fingerprint);
}

bool
ResultCache::lookupRaw(uint64_t key, std::string *document)
{
    std::lock_guard<std::mutex> lock(mutex_);
    return lookupLocked(key, /*marked=*/false, document, nullptr);
}

void
ResultCache::evictToFit()
{
    while (bytes_ > capacityBytes_ && !lruOrder_.empty()) {
        uint64_t victim = lruOrder_.back();
        auto it = entries_.find(victim);
        bytes_ -= it->second.text.size() + it->second.hotText.size();
        entries_.erase(it);
        lruOrder_.pop_back();
        ++counters_.evictions;
        g_evictions.add();
    }
    g_bytes.set(static_cast<int64_t>(bytes_));
    g_entries.set(static_cast<int64_t>(entries_.size()));
}

void
ResultCache::insertLocked(uint64_t key, const std::string &document)
{
    auto it = entries_.find(key);
    if (it != entries_.end()) {
        // Deterministic documents never change under one epoch; a
        // re-insert only refreshes recency.
        touch(it->second, key);
        return;
    }

    std::error_code ec;
    if (!spillDir_.empty() &&
        !std::filesystem::exists(spillPath(key), ec))
        writeSpill(key, document);

    Entry e;
    e.text = document;
    // Extracted once here (cold admission) so hits never scan the
    // document; 16 hex chars of metadata, left out of bytes_.
    e.fingerprint = extractFingerprint(document);
    lruOrder_.push_front(key);
    e.lru = lruOrder_.begin();
    bytes_ += e.text.size();
    entries_.emplace(key, std::move(e));
    ++counters_.insertions;
    g_insertions.add();
    evictToFit();
}

void
ResultCache::insert(uint64_t key, const std::string &document)
{
    std::lock_guard<std::mutex> lock(mutex_);
    insertLocked(key, document);
}

bool
ResultCache::contains(uint64_t key) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.count(key) != 0;
}

CacheStats
ResultCache::stats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    CacheStats s = counters_;
    s.bytes = bytes_;
    s.entries = entries_.size();
    return s;
}

} // namespace serve
} // namespace fpraker
