/**
 * @file
 * JobSpec: the serializable unit of work of the serving layer.
 *
 * One JobSpec names a registered experiment plus the Session knobs
 * the CLI would have passed to `fpraker run <id>` — worker-thread
 * request, sample-step budget, and the free-form extras options
 * (--steps/--reps/--out). It round-trips through JSON (the `spec`
 * object of the wire protocol, docs/SERVING.md) and defines the
 * content address of its result:
 *
 *     cacheKey = FNV-1a(epoch ‖ result schema ‖ experiment ‖ knobs)
 *
 * (each field length-prefixed, options sorted by key) where `epoch`
 * (kServeCacheEpoch) is bumped whenever simulator arithmetic changes
 * in a way that invalidates old documents, and the knob list covers
 * every input that can change the Result content.
 * The Session's own configDigest is a pure function of these inputs,
 * so two JobSpecs with equal keys produce documents with equal
 * config_digest provenance and equal fingerprints — the property the
 * ResultCache relies on. Priority is scheduling metadata, never part
 * of the key.
 */

#ifndef FPRAKER_SERVE_JOB_SPEC_H
#define FPRAKER_SERVE_JOB_SPEC_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "api/json.h"

namespace fpraker {
namespace serve {

/**
 * Cache epoch: bump when kernel arithmetic, the document layout, or
 * the spill-file format changes such that previously cached/spilled
 * documents must not be served anymore (the disk spill under
 * --cache-dir outlives daemon restarts and binary upgrades).
 * "fpraker-serve-2": spill files gained a checksum trailer and the
 * cache key folds the resolved FPRAKER_SAMPLE_STEPS env in (PR 6).
 */
constexpr const char *kServeCacheEpoch = "fpraker-serve-2";

/** One experiment job: registry id + Session knobs. */
struct JobSpec
{
    std::string experiment; //!< Registry id, e.g. "fig11".
    int threads = 0;        //!< 0 = daemon default (shared engine).
    int sampleSteps = 0;    //!< 0 = env/experiment fallback.
    //! Free-form experiment options (--steps/--reps/--out), CLI order.
    std::vector<std::pair<std::string, std::string>> options;
    int priority = 0; //!< Higher runs first; NOT part of the key.
    /**
     * Completion deadline in milliseconds from submit time (0 =
     * none). A job still queued when its deadline expires is shed
     * with a structured `timeout` error; a job that finishes past it
     * reports the overrun in provenance. Scheduling metadata like
     * priority — NOT part of the key.
     */
    int deadlineMs = 0;

    /**
     * The sample-step budget this spec actually simulates with: the
     * explicit field when set, else the daemon's resolved
     * FPRAKER_SAMPLE_STEPS env (0 when neither is set and the
     * experiment's own fallback applies). The cache key hashes THIS
     * value, so two daemons whose environments differ can never
     * alias each other's disk spills.
     */
    int resolvedSampleSteps() const;

    /**
     * Human-readable one-line description of every
     * content-determining field (options sorted by key). For logs
     * and tests; the cache key hashes the same fields structurally
     * (length-prefixed), so values containing the join characters
     * cannot alias.
     */
    std::string canonical() const;

    /** Content address of this spec's result document. */
    uint64_t cacheKey() const;

    /** The wire `spec` object. */
    api::JsonValue toJson() const;

    /**
     * Parse a wire `spec` object. On failure fills @p error and
     * returns false; unknown keys are rejected (strict, like the
     * CLI).
     */
    static bool fromJson(const api::JsonValue &v, JobSpec *out,
                         std::string *error);
};

} // namespace serve
} // namespace fpraker

#endif // FPRAKER_SERVE_JOB_SPEC_H
