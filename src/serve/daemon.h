/**
 * @file
 * The fprakerd daemon: a Unix-domain socket front-end over one
 * JobScheduler.
 *
 * Lifecycle: construct with a config, start() binds and listens on
 * the socket path (replacing a stale socket file), serve() blocks in
 * the accept loop handing each connection to its own thread, and a
 * client "shutdown" request (or requestStop() from another thread)
 * drains the loop: in-flight connections are joined, the socket file
 * is unlinked, serve() returns.
 *
 * One connection may issue any number of requests; responses are
 * written in request order on that connection. Protocol errors
 * (unparseable line, unknown op) answer {"ok": false, ...} and keep
 * the connection open; only EOF or a transport error closes it.
 */

#ifndef FPRAKER_SERVE_DAEMON_H
#define FPRAKER_SERVE_DAEMON_H

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/scheduler.h"

namespace fpraker {
namespace serve {

/** Daemon knobs: socket path + the scheduler underneath. */
struct DaemonConfig
{
    std::string socketPath; //!< "" = defaultSocketPath().
    SchedulerConfig scheduler;
    /**
     * SO_RCVTIMEO/SO_SNDTIMEO on every accepted connection (0 = no
     * timeout). A client that connects and stalls — or stops
     * draining its responses — fails its read/write within this
     * bound and releases the connection thread, so stalled peers can
     * never pin the daemon.
     */
    double ioTimeoutSeconds = 30;
    //! Per-request line bound; a hostile newline-free stream is
    //! refused at this size instead of growing daemon memory.
    size_t maxRequestBytes = 4u << 20;
};

class Daemon
{
  public:
    explicit Daemon(const DaemonConfig &cfg);
    ~Daemon();

    Daemon(const Daemon &) = delete;
    Daemon &operator=(const Daemon &) = delete;

    /** Bind + listen. False (with @p error) when the path is taken
     *  by a live daemon or cannot be bound. */
    bool start(std::string *error);

    /**
     * Accept/serve until shutdown; requires a successful start().
     * Returns true on a clean (requested) stop, false when the
     * accept loop died on an unrecoverable transport error.
     */
    bool serve();

    /** Thread-safe shutdown trigger (what the "shutdown" op calls). */
    void requestStop();

    const std::string &socketPath() const { return socketPath_; }
    JobScheduler &scheduler() { return *scheduler_; }

  private:
    void handleConnection(int fd);
    api::JsonValue handleRequest(const api::JsonValue &request);
    api::JsonValue completedResponse(uint64_t id,
                                     const JobOutcome &outcome);

    const DaemonConfig cfg_;
    std::string socketPath_;
    std::unique_ptr<JobScheduler> scheduler_;
    int listenFd_ = -1;
    std::atomic<bool> stop_{false};
    double startTime_ = 0;

    std::mutex connMutex_;
    std::vector<std::thread> connections_;
    //! Exited connection threads awaiting join; the accept loop reaps
    //! them so a long-lived daemon never accumulates zombie handles.
    std::vector<std::thread> finished_;
    //! Open connection fds; requestStop shuts their read side down so
    //! blocked readers drain even when clients keep sockets open.
    std::vector<int> activeFds_;
};

} // namespace serve
} // namespace fpraker

#endif // FPRAKER_SERVE_DAEMON_H
