/**
 * @file
 * ServeClient: the blocking client side of the fprakerd protocol.
 *
 * Wraps one Unix-socket connection: connectTo() dials the daemon,
 * request() writes one compact-JSON line and reads one response line.
 * The `fpraker submit/stats/shutdown` subcommands and the serve tests
 * are the consumers; nothing here depends on the scheduler.
 */

#ifndef FPRAKER_SERVE_CLIENT_H
#define FPRAKER_SERVE_CLIENT_H

#include <memory>
#include <string>

#include "serve/job_spec.h"
#include "serve/protocol.h"

namespace fpraker {
namespace serve {

class ServeClient
{
  public:
    ServeClient() = default;
    ~ServeClient();

    ServeClient(const ServeClient &) = delete;
    ServeClient &operator=(const ServeClient &) = delete;

    /** Dial the daemon at @p socketPath ("" = defaultSocketPath()). */
    bool connectTo(const std::string &socketPath, std::string *error);

    bool connected() const { return fd_ >= 0; }

    /**
     * Bound this connection's blocking reads/writes (seconds; <= 0 =
     * none). A daemon that wedges mid-response then fails the
     * request instead of hanging the client forever.
     */
    bool setTimeout(double seconds, std::string *error);

    /**
     * One protocol round-trip. False on transport failure; a
     * {"ok": false} response still returns true (@p response carries
     * the server's error).
     */
    bool request(const api::JsonValue &message,
                 api::JsonValue *response, std::string *error);

    /** Convenience: {"op": "submit", "spec": ..., "wait": true}. */
    bool submit(const JobSpec &spec, api::JsonValue *response,
                std::string *error, bool wait = true);

    void close();

  private:
    int fd_ = -1;
    std::unique_ptr<LineReader> reader_;
};

} // namespace serve
} // namespace fpraker

#endif // FPRAKER_SERVE_CLIENT_H
