#include "serve/fault_injection.h"

#include <chrono>
#include <cstdlib>
#include <thread>
#include <vector>

#include "common/logging.h"

namespace fpraker {
namespace serve {

FaultInjector &
FaultInjector::instance()
{
    static FaultInjector injector;
    return injector;
}

void
FaultInjector::arm(const std::string &point, int64_t param,
                   uint64_t count)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Arming &a = points_[point];
    if (a.remaining == 0 && count > 0)
        armedPoints_.fetch_add(1, std::memory_order_relaxed);
    else if (a.remaining > 0 && count == 0)
        armedPoints_.fetch_sub(1, std::memory_order_relaxed);
    a.param = param;
    a.remaining = count;
}

bool
FaultInjector::configure(const std::string &spec, std::string *error)
{
    // Parse into a staging list first so a malformed entry arms
    // nothing.
    struct Parsed
    {
        std::string point;
        int64_t param;
        uint64_t count;
    };
    std::vector<Parsed> staged;
    size_t at = 0;
    while (at < spec.size()) {
        size_t end = spec.find(',', at);
        if (end == std::string::npos)
            end = spec.size();
        const std::string entry = spec.substr(at, end - at);
        at = end + 1;
        if (entry.empty())
            continue;
        size_t eq = entry.find('=');
        if (eq == std::string::npos || eq == 0) {
            if (error)
                *error = "fault entry '" + entry +
                         "' is not point=param[:count]";
            return false;
        }
        Parsed p;
        p.point = entry.substr(0, eq);
        p.count = 1;
        std::string value = entry.substr(eq + 1);
        size_t colon = value.find(':');
        std::string countText;
        if (colon != std::string::npos) {
            countText = value.substr(colon + 1);
            value = value.substr(0, colon);
        }
        char *rest = nullptr;
        p.param = std::strtoll(value.c_str(), &rest, 10);
        if (value.empty() || (rest && *rest)) {
            if (error)
                *error = "fault '" + p.point +
                         "': param '" + value + "' is not an integer";
            return false;
        }
        if (!countText.empty()) {
            p.count = std::strtoull(countText.c_str(), &rest, 10);
            if ((rest && *rest) || p.count == 0) {
                if (error)
                    *error = "fault '" + p.point + "': count '" +
                             countText + "' is not a positive integer";
                return false;
            }
        }
        staged.push_back(std::move(p));
    }
    for (const Parsed &p : staged)
        arm(p.point, p.param, p.count);
    return true;
}

void
FaultInjector::configureFromEnv()
{
    const char *env = std::getenv("FPRAKER_FAULTS");
    if (!env || !*env)
        return;
    std::string error;
    panic_if(!configure(env, &error), "FPRAKER_FAULTS: %s",
             error.c_str());
}

void
FaultInjector::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    points_.clear();
    armedPoints_.store(0, std::memory_order_relaxed);
}

bool
FaultInjector::fires(const char *point, int64_t *param)
{
    // Production hot path: nothing armed, one atomic load.
    if (armedPoints_.load(std::memory_order_relaxed) == 0)
        return false;
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = points_.find(point);
    if (it == points_.end() || it->second.remaining == 0)
        return false;
    --it->second.remaining;
    ++it->second.fired;
    if (it->second.remaining == 0)
        armedPoints_.fetch_sub(1, std::memory_order_relaxed);
    if (param)
        *param = it->second.param;
    return true;
}

uint64_t
FaultInjector::fired(const std::string &point) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = points_.find(point);
    return it == points_.end() ? 0 : it->second.fired;
}

void
faultSleepMs(int64_t ms)
{
    if (ms > 0)
        std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

} // namespace serve
} // namespace fpraker
