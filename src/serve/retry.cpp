#include "serve/retry.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/rng.h"
#include "serve/client.h"
#include "serve/protocol.h"

namespace fpraker {
namespace serve {

int
RetryPolicy::delayMs(int attempt, int retryAfterMs) const
{
    double backoff = baseDelayMs;
    for (int i = 1; i < attempt; ++i)
        backoff *= multiplier;
    backoff = std::min(backoff, static_cast<double>(maxDelayMs));
    // The server's hint floors the curve: it is a queue-drain
    // estimate, and resubmitting sooner would just be shed again.
    backoff = std::max(backoff, static_cast<double>(retryAfterMs));
    // Deterministic upward jitter: one draw per (seed, attempt), so
    // a replayed schedule is bit-identical while distinct clients
    // (distinct seeds) still spread out.
    Rng rng(seed * 0x9e3779b97f4a7c15ULL +
            static_cast<uint64_t>(attempt));
    backoff *= rng.uniform(1.0, 1.0 + jitterFrac);
    return std::max(1, static_cast<int>(backoff + 0.5));
}

bool
responseRetryable(const api::JsonValue &response, int *retryAfterMs)
{
    if (retryAfterMs)
        *retryAfterMs = 0;
    if (!response.isObject())
        return false;
    const api::JsonValue *ok = response.find("ok");
    if (!ok || ok->kind() != api::JsonValue::Kind::Bool ||
        ok->boolean())
        return false;
    const api::JsonValue *code = response.find("error_code");
    if (!code || code->kind() != api::JsonValue::Kind::String ||
        code->str() != kErrOverloaded)
        return false;
    const api::JsonValue *hint = response.find("retry_after_ms");
    if (retryAfterMs && hint &&
        hint->kind() == api::JsonValue::Kind::Int)
        *retryAfterMs = static_cast<int>(
            std::clamp<int64_t>(hint->intValue(), 0, 60000));
    return true;
}

SubmitResult
submitWithRetry(const std::string &socketPath, const JobSpec &spec,
                const RetryPolicy &policy, bool wait)
{
    SubmitResult result;
    const int attempts = std::max(1, policy.maxAttempts);
    for (int attempt = 1; attempt <= attempts; ++attempt) {
        ++result.attempts;
        ServeClient client;
        std::string error;
        api::JsonValue response;
        bool transportOk =
            client.connectTo(socketPath, &error) &&
            client.submit(spec, &response, &error, wait);

        int retryAfterMs = 0;
        bool retryable;
        if (!transportOk) {
            // Daemon gone or connection dropped mid-request —
            // exactly what a restarting daemon looks like. Retry.
            result.error = error;
            result.errorCode.clear();
            retryable = true;
        } else {
            result.response = response;
            const api::JsonValue *ok = response.find("ok");
            if (ok && ok->kind() == api::JsonValue::Kind::Bool &&
                ok->boolean()) {
                result.ok = true;
                result.error.clear();
                result.errorCode.clear();
                return result;
            }
            const api::JsonValue *code =
                response.find("error_code");
            const api::JsonValue *msg = response.find("error");
            result.errorCode =
                code && code->kind() ==
                            api::JsonValue::Kind::String
                    ? code->str()
                    : "";
            result.error =
                msg && msg->kind() == api::JsonValue::Kind::String
                    ? msg->str()
                    : "request failed";
            retryable = responseRetryable(response, &retryAfterMs);
        }

        if (!retryable || attempt == attempts)
            return result;
        const int delay = policy.delayMs(attempt, retryAfterMs);
        result.backoffTotalMs += delay;
        std::this_thread::sleep_for(
            std::chrono::milliseconds(delay));
    }
    return result;
}

} // namespace serve
} // namespace fpraker
