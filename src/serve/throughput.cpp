#include "serve/throughput.h"

#include <algorithm>
#include <vector>

#include "api/registry.h"
#include "api/result.h"
#include "common/clock.h"
#include "common/fnv.h"
#include "common/logging.h"
#include "serve/fault_injection.h"
#include "serve/protocol.h"
#include "serve/retry.h"
#include "serve/scheduler.h"

namespace fpraker {
namespace serve {

namespace {

double
percentile(std::vector<double> sorted, double p)
{
    if (sorted.empty())
        return 0;
    size_t idx = static_cast<size_t>(
        p * static_cast<double>(sorted.size() - 1) + 0.5);
    return sorted[std::min(idx, sorted.size() - 1)];
}

} // namespace

ThroughputReport
measureServeThroughput(const ThroughputOptions &opts)
{
    panic_if(!api::ExperimentRegistry::instance().find(
                 opts.experiment),
             "serve throughput: experiment '%s' is not registered",
             opts.experiment.c_str());

    SchedulerConfig cfg;
    cfg.engineThreads = opts.engineThreads;
    cfg.workers = opts.workers;
    cfg.cacheBytes = opts.cacheBytes;
    JobScheduler sched(cfg);

    std::vector<JobSpec> specs;
    for (int i = 0; i < opts.distinctSpecs; ++i) {
        JobSpec spec;
        spec.experiment = opts.experiment;
        // Distinct sample budgets make distinct cache keys (and
        // distinct documents) without needing several experiments.
        spec.sampleSteps = opts.sampleStepsBase + i;
        specs.push_back(spec);
    }

    ThroughputReport r;
    std::vector<std::string> coldFp(specs.size());

    // Cold phase: every spec simulates once.
    double t0 = monotonicSeconds();
    for (size_t i = 0; i < specs.size(); ++i) {
        JobOutcome out = sched.run(specs[i]);
        panic_if(out.state != JobState::Done, "cold job failed: %s",
                 out.error.c_str());
        coldFp[i] = out.fingerprint;
        if (out.cached)
            r.allHotCached = false; // a cold request must not hit
    }
    r.coldSeconds = monotonicSeconds() - t0;

    // Hot phase: cycle the same specs; every request must be served
    // from cache with the cold fingerprint.
    std::vector<double> latencies;
    latencies.reserve(static_cast<size_t>(opts.hotRequests));
    t0 = monotonicSeconds();
    for (int i = 0; i < opts.hotRequests; ++i) {
        const size_t s = static_cast<size_t>(i) % specs.size();
        double q0 = monotonicSeconds();
        JobOutcome out = sched.run(specs[s]);
        latencies.push_back((monotonicSeconds() - q0) * 1e3);
        if (!out.cached)
            r.allHotCached = false;
        if (out.fingerprint != coldFp[s])
            r.deterministic = false;
    }
    r.hotSeconds = monotonicSeconds() - t0;

    std::sort(latencies.begin(), latencies.end());
    r.hotP50Ms = percentile(latencies, 0.50);
    r.hotP99Ms = percentile(latencies, 0.99);
    r.coldRps = specs.empty() || r.coldSeconds <= 0
                    ? 0
                    : static_cast<double>(specs.size()) /
                          r.coldSeconds;
    r.hotRps = latencies.empty() || r.hotSeconds <= 0
                   ? 0
                   : static_cast<double>(latencies.size()) /
                         r.hotSeconds;

    SchedulerStats stats = sched.stats();
    r.requests = stats.submitted;
    r.executions = stats.executed;
    uint64_t lookups = stats.cache.hits + stats.cache.misses;
    r.hitRate = lookups == 0 ? 0
                             : static_cast<double>(stats.cache.hits) /
                                   static_cast<double>(lookups);

    Fnv64 digest;
    for (const std::string &fp : coldFp)
        digest.add(fp);
    r.digest = digest.value();
    return r;
}

ShedReport
measureShedBehavior(const ShedOptions &opts)
{
    panic_if(!api::ExperimentRegistry::instance().find(
                 opts.experiment),
             "serve shed: experiment '%s' is not registered",
             opts.experiment.c_str());

    SchedulerConfig cfg;
    cfg.engineThreads = opts.engineThreads;
    cfg.workers = opts.workers;
    cfg.cacheBytes = opts.cacheBytes;
    cfg.queueDepth = opts.queueDepth;
    JobScheduler sched(cfg);

    std::vector<JobSpec> specs;
    for (int i = 0; i < opts.burst; ++i) {
        JobSpec spec;
        spec.experiment = opts.experiment;
        // Distinct budgets: no coalescing, no cache hits — every
        // accepted submit consumes a real queue slot.
        spec.sampleSteps = opts.sampleStepsBase + i;
        specs.push_back(spec);
    }

    ShedReport r;
    std::vector<std::string> finalFp(specs.size());
    std::vector<uint64_t> ids(specs.size());
    std::vector<double> submitLatencies;
    submitLatencies.reserve(specs.size());

    // Open-loop burst: submit everything without waiting. Admission
    // answers immediately either way, so submit latency stays
    // bounded no matter how deep the backlog is.
    const double t0 = monotonicSeconds();
    for (size_t i = 0; i < specs.size(); ++i) {
        const double s0 = monotonicSeconds();
        ids[i] = sched.submit(specs[i]);
        submitLatencies.push_back((monotonicSeconds() - s0) * 1e3);
    }

    // Collect outcomes; shed submits are already Failed and return
    // immediately, accepted ones block until the workers drain them.
    RetryPolicy policy;
    policy.maxAttempts = 1; // Delays computed, sleeps done by hand.
    std::vector<size_t> pending;
    for (size_t i = 0; i < specs.size(); ++i) {
        JobOutcome out = sched.wait(ids[i]);
        if (out.state == JobState::Done) {
            ++r.accepted;
            finalFp[i] = out.fingerprint;
            continue;
        }
        if (out.errorCode == kErrOverloaded) {
            ++r.shed;
            if (out.retryAfterMs <= 0)
                r.hintsOk = false;
            pending.push_back(i);
        } else {
            r.completed = false; // Unexpected failure kind.
        }
    }

    // Retry phase: resubmit the shed specs under the client policy
    // (honoring each rejection's retry_after hint) until accepted —
    // the overload contract's other half. Sequential, so the queue
    // has drained room and every spec completes.
    for (size_t i : pending) {
        bool done = false;
        for (int attempt = 1; attempt <= 50 && !done; ++attempt) {
            JobOutcome out = sched.run(specs[i]);
            ++r.retryAttempts;
            if (out.state == JobState::Done) {
                finalFp[i] = out.fingerprint;
                done = true;
            } else if (out.errorCode == kErrOverloaded) {
                faultSleepMs(
                    policy.delayMs(attempt, out.retryAfterMs));
            } else {
                break; // Unexpected failure kind.
            }
        }
        if (!done)
            r.completed = false;
    }
    r.drainSeconds = monotonicSeconds() - t0;

    std::sort(submitLatencies.begin(), submitLatencies.end());
    r.submitP50Ms = percentile(submitLatencies, 0.50);
    r.submitP99Ms = percentile(submitLatencies, 0.99);

    SchedulerStats stats = sched.stats();
    r.drained = stats.queued == 0 && stats.running == 0;
    if (r.accepted + r.shed != static_cast<uint64_t>(opts.burst))
        r.completed = false;

    Fnv64 digest;
    for (const std::string &fp : finalFp)
        digest.add(fp);
    r.digest = digest.value();
    return r;
}

void
addShedGroup(api::Result &res, const ShedOptions &opts,
             const ShedReport &r)
{
    res.group("shed")
        .metric("experiment", opts.experiment)
        .metric("burst", opts.burst)
        .metric("queue_depth", opts.queueDepth)
        .metric("workers", opts.workers)
        .metric("accepted", r.accepted)
        .metric("shed", r.shed)
        .metric("retry_attempts", r.retryAttempts)
        .metric("submit_p50_ms", r.submitP50Ms, 4)
        .metric("submit_p99_ms", r.submitP99Ms, 4)
        .metric("drain_s", r.drainSeconds, 6)
        .metric("hints_ok", r.hintsOk)
        .metric("drained", r.drained)
        .metric("completed", r.completed)
        .metric("digest", Fnv64::hex(r.digest));
}

void
addServingGroup(api::Result &res, const ThroughputOptions &opts,
                const ThroughputReport &r)
{
    res.group("serving")
        .metric("experiment", opts.experiment)
        .metric("distinct_specs", opts.distinctSpecs)
        .metric("hot_requests", opts.hotRequests)
        .metric("engine_threads", opts.engineThreads)
        .metric("workers", opts.workers)
        .metric("cold_s", r.coldSeconds, 6)
        .metric("hot_s", r.hotSeconds, 6)
        .metric("requests_per_sec_cold", r.coldRps, 1)
        .metric("requests_per_sec_hot", r.hotRps, 1)
        .metric("hot_over_cold", r.coldRps > 0 ? r.hotRps / r.coldRps
                                               : 0.0,
                1)
        .metric("p50_ms_hot", r.hotP50Ms, 4)
        .metric("p99_ms_hot", r.hotP99Ms, 4)
        .metric("cache_hit_rate", r.hitRate, 4)
        .metric("executions", r.executions)
        .metric("requests", r.requests)
        .metric("digest", Fnv64::hex(r.digest))
        .metric("bit_identical", r.deterministic && r.allHotCached);
}

} // namespace serve
} // namespace fpraker
