#include "serve/client.h"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

namespace fpraker {
namespace serve {

ServeClient::~ServeClient()
{
    close();
}

void
ServeClient::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
        reader_.reset();
    }
}

bool
ServeClient::connectTo(const std::string &socketPath,
                       std::string *error)
{
    close();
    const std::string path =
        socketPath.empty() ? defaultSocketPath() : socketPath;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        *error = "socket path too long: " + path;
        return false;
    }
    std::strncpy(addr.sun_path, path.c_str(),
                 sizeof(addr.sun_path) - 1);

    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        *error = std::string("socket: ") + std::strerror(errno);
        return false;
    }
    if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                  sizeof(addr)) < 0) {
        *error = "cannot connect to " + path + ": " +
                 std::strerror(errno) +
                 " (is fprakerd running? try `fpraker serve`)";
        ::close(fd);
        return false;
    }
    fd_ = fd;
    reader_ = std::make_unique<LineReader>(fd_);
    return true;
}

bool
ServeClient::setTimeout(double seconds, std::string *error)
{
    if (fd_ < 0) {
        *error = "not connected";
        return false;
    }
    return setIoTimeout(fd_, seconds, error);
}

bool
ServeClient::request(const api::JsonValue &message,
                     api::JsonValue *response, std::string *error)
{
    if (fd_ < 0) {
        *error = "not connected";
        return false;
    }
    if (!writeMessage(fd_, message, error))
        return false;
    std::string line;
    if (!reader_->readLine(&line, error)) {
        if (error->empty())
            *error = "daemon closed the connection";
        return false;
    }
    *response = api::JsonValue::parse(line, error);
    if (!error->empty()) {
        *error = "unparseable response: " + *error;
        return false;
    }
    return true;
}

bool
ServeClient::submit(const JobSpec &spec, api::JsonValue *response,
                    std::string *error, bool wait)
{
    api::JsonValue req = api::JsonValue::object();
    req.set("op", "submit");
    req.set("spec", spec.toJson());
    req.set("wait", wait);
    return request(req, response, error);
}

} // namespace serve
} // namespace fpraker
