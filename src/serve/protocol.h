/**
 * @file
 * The fprakerd wire protocol: newline-delimited JSON over a
 * Unix-domain stream socket.
 *
 * Every request and every response is ONE line of compact JSON
 * (JsonValue::dumpCompact — no raw newlines; strings escape them)
 * terminated by '\n'. Requests carry an "op" field:
 *
 *   {"op": "submit", "spec": {...JobSpec...}, "wait": true}
 *   {"op": "status", "job": 7}
 *   {"op": "result", "job": 7}
 *   {"op": "stats"}
 *   {"op": "ping"}
 *   {"op": "shutdown"}
 *
 * Responses always carry "ok". Completed submit/result responses
 * embed the full fpraker-result-v1 document as an escaped string in
 * "document", plus "fingerprint", "cached", and "status". Errors are
 * {"ok": false, "error": "..."} — the connection stays usable.
 * docs/SERVING.md is the full reference.
 *
 * This header holds the framing (blocking line IO over an fd) and the
 * envelope helpers shared by daemon and client; it knows nothing
 * about sockets beyond the file descriptor.
 */

#ifndef FPRAKER_SERVE_PROTOCOL_H
#define FPRAKER_SERVE_PROTOCOL_H

#include <string>

#include "api/json.h"

namespace fpraker {
namespace serve {

/** Protocol identifier, echoed by ping/stats responses. */
constexpr const char *kProtocolVersion = "fpraker-serve-v1";

/** Default socket path when --socket / FPRAKER_SOCKET is unset. */
std::string defaultSocketPath();

/**
 * Write @p line plus the terminating '\n' to @p fd, retrying short
 * writes. Returns false (with @p error filled) on IO failure.
 */
bool writeLine(int fd, const std::string &line, std::string *error);

/** Send one JSON message (compact dump) as a protocol line. */
bool writeMessage(int fd, const api::JsonValue &message,
                  std::string *error);

/** Default LineReader bound: far above any legitimate message. */
constexpr size_t kMaxLineBytes = 64ull << 20;

/** Buffered blocking line reader over a stream fd. */
class LineReader
{
  public:
    /**
     * @param maxLineBytes reject (error, false) any line longer than
     * this — an unbounded buffer would let a peer that never sends
     * '\n' grow daemon memory without limit. The daemon reads
     * requests with a small bound; responses embedding documents use
     * the default.
     */
    explicit LineReader(int fd, size_t maxLineBytes = kMaxLineBytes)
        : fd_(fd), maxLineBytes_(maxLineBytes)
    {
    }

    /**
     * Read the next '\n'-terminated line (terminator stripped).
     * Returns false on EOF or error; EOF with no pending bytes
     * leaves @p error empty.
     */
    bool readLine(std::string *line, std::string *error);

  private:
    int fd_;
    size_t maxLineBytes_;
    std::string buffer_;
};

/** {"ok": true} seed for response builders. */
api::JsonValue okResponse();

/** {"ok": false, "error": message}. */
api::JsonValue errorResponse(const std::string &message);

} // namespace serve
} // namespace fpraker

#endif // FPRAKER_SERVE_PROTOCOL_H
