/**
 * @file
 * The fprakerd wire protocol: newline-delimited JSON over a
 * Unix-domain stream socket.
 *
 * Every request and every response is ONE line of compact JSON
 * (JsonValue::dumpCompact — no raw newlines; strings escape them)
 * terminated by '\n'. Requests carry an "op" field:
 *
 *   {"op": "submit", "spec": {...JobSpec...}, "wait": true}
 *   {"op": "status", "job": 7}
 *   {"op": "result", "job": 7}
 *   {"op": "stats"}
 *   {"op": "ping"}
 *   {"op": "shutdown"}
 *
 * Responses always carry "ok". Completed submit/result responses
 * embed the full fpraker-result-v1 document as an escaped string in
 * "document", plus "fingerprint", "cached", and "status". Errors are
 * {"ok": false, "error": "..."} — the connection stays usable.
 * docs/SERVING.md is the full reference.
 *
 * This header holds the framing (blocking line IO over an fd) and the
 * envelope helpers shared by daemon and client; it knows nothing
 * about sockets beyond the file descriptor.
 */

#ifndef FPRAKER_SERVE_PROTOCOL_H
#define FPRAKER_SERVE_PROTOCOL_H

#include <string>

#include "api/json.h"

namespace fpraker {
namespace serve {

/** Protocol identifier, echoed by ping/stats responses. */
constexpr const char *kProtocolVersion = "fpraker-serve-v1";

/**
 * Structured error codes carried in the "error_code" field of
 * {"ok": false} responses (docs/SERVING.md has the full table).
 * Clients branch on the code, never on the human-readable "error"
 * text.
 */
constexpr const char *kErrBadRequest = "bad_request";
constexpr const char *kErrUnknownOp = "unknown_op";
constexpr const char *kErrUnknownExperiment = "unknown_experiment";
constexpr const char *kErrUnknownJob = "unknown_job";
//! Deadline expired while the job was still queued; the job was shed.
constexpr const char *kErrTimeout = "timeout";
//! Admission control shed the request (queue full); the response
//! carries a "retry_after_ms" hint.
constexpr const char *kErrOverloaded = "overloaded";
constexpr const char *kErrShuttingDown = "shutting_down";
constexpr const char *kErrInternal = "internal";

/** Default socket path when --socket / FPRAKER_SOCKET is unset. */
std::string defaultSocketPath();

/**
 * Write @p line plus the terminating '\n' to @p fd, retrying short
 * writes. Returns false (with @p error filled) on IO failure.
 */
bool writeLine(int fd, const std::string &line, std::string *error);

/** Send one JSON message (compact dump) as a protocol line. */
bool writeMessage(int fd, const api::JsonValue &message,
                  std::string *error);

/** Default LineReader bound: far above any legitimate message. */
constexpr size_t kMaxLineBytes = 64ull << 20;

/** Buffered blocking line reader over a stream fd. */
class LineReader
{
  public:
    /** Why the last readLine() returned false. */
    enum class Fail {
        None,       //!< Last read succeeded.
        Eof,        //!< Clean EOF at a line boundary.
        MidLineEof, //!< Peer vanished with a partial line pending.
        Oversize,   //!< Line exceeds the bound (even if terminated).
        Timeout,    //!< SO_RCVTIMEO expired (stalled peer).
        Io,         //!< Transport error.
    };

    /**
     * @param maxLineBytes reject (error, false) any line longer than
     * this — an unbounded buffer would let a peer that never sends
     * '\n' grow daemon memory without limit, and an over-long line
     * that IS terminated must still be refused, not delivered as a
     * frame. The daemon reads requests with a small bound; responses
     * embedding documents use the default.
     */
    explicit LineReader(int fd, size_t maxLineBytes = kMaxLineBytes)
        : fd_(fd), maxLineBytes_(maxLineBytes)
    {
    }

    /**
     * Read the next '\n'-terminated line (terminator stripped).
     * Returns false on EOF or error; EOF with no pending bytes
     * leaves @p error empty. lastFail() tells the cases apart. A
     * failed reader stays failed — callers must not retry it (a
     * partial line can never be resynchronized into a frame).
     */
    bool readLine(std::string *line, std::string *error);

    Fail lastFail() const { return fail_; }

  private:
    int fd_;
    size_t maxLineBytes_;
    std::string buffer_;
    Fail fail_ = Fail::None;
};

/** {"ok": true} seed for response builders. */
api::JsonValue okResponse();

/** {"ok": false, "error_code": code, "error": message}. */
api::JsonValue errorResponse(const char *code,
                             const std::string &message);

/**
 * Set SO_RCVTIMEO/SO_SNDTIMEO on @p fd ( <= 0 = no timeout). The
 * daemon applies this to every accepted connection so a stalled
 * client surfaces as a Timeout read failure / EAGAIN write failure
 * instead of pinning the connection thread forever.
 */
bool setIoTimeout(int fd, double seconds, std::string *error);

} // namespace serve
} // namespace fpraker

#endif // FPRAKER_SERVE_PROTOCOL_H
