/**
 * @file
 * Small bit-manipulation helpers used throughout the numeric and PE models.
 */

#ifndef FPRAKER_COMMON_BITUTIL_H
#define FPRAKER_COMMON_BITUTIL_H

#include <bit>
#include <cstdint>
#include <type_traits>

namespace fpraker {

/** Mask of the low @p n bits of a 64-bit word (n in [0, 64]). */
constexpr uint64_t
maskBits(int n)
{
    return n >= 64 ? ~uint64_t{0} : ((uint64_t{1} << n) - 1);
}

/** Extract bits [lo, lo+len) of @p v. */
constexpr uint64_t
bitsOf(uint64_t v, int lo, int len)
{
    return (v >> lo) & maskBits(len);
}

/** Position of the most-significant set bit, or -1 for zero. */
constexpr int
msbPos(uint64_t v)
{
    return v == 0 ? -1 : 63 - std::countl_zero(v);
}

/** Number of set bits. */
constexpr int
popcount(uint64_t v)
{
    return std::popcount(v);
}

/** Ceiling division for non-negative integers. */
template <typename T>
constexpr T
divCeil(T a, T b)
{
    static_assert(std::is_integral_v<T>);
    return (a + b - 1) / b;
}

/** Round @p a up to the next multiple of @p b. */
template <typename T>
constexpr T
roundUp(T a, T b)
{
    return divCeil(a, b) * b;
}

/** Number of bits needed to represent @p v (0 -> 0 bits). */
constexpr int
bitWidth(uint64_t v)
{
    return v == 0 ? 0 : msbPos(v) + 1;
}

} // namespace fpraker

#endif // FPRAKER_COMMON_BITUTIL_H
