/**
 * @file
 * Lightweight named statistics used by the timing models.
 *
 * The PE/tile/accelerator models accumulate event counts into StatSet
 * objects; benches read them out to print the paper's breakdowns. A StatSet
 * is an ordered map from name to a double-precision counter plus helpers
 * for merging and normalizing (the figure harnesses mostly report shares
 * of a total).
 */

#ifndef FPRAKER_COMMON_STATS_H
#define FPRAKER_COMMON_STATS_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace fpraker {

/** An ordered collection of named scalar counters. */
class StatSet
{
  public:
    /** Add @p delta to counter @p name (creating it at zero if missing). */
    void add(const std::string &name, double delta);

    /** Read counter @p name, or 0 if it does not exist. */
    double get(const std::string &name) const;

    /** Sum of the given counters (missing counters count as zero). */
    double sum(const std::vector<std::string> &names) const;

    /** Sum of every counter in the set. */
    double total() const;

    /** Merge all counters of @p other into this set. */
    void merge(const StatSet &other);

    /** Multiply every counter by @p factor. */
    void scale(double factor);

    /** Remove all counters. */
    void clear();

    /** Ordered (name, value) view for printing. */
    const std::map<std::string, double> &entries() const { return counters_; }

  private:
    std::map<std::string, double> counters_;
};

/**
 * Streaming mean/min/max accumulator for scalar observations.
 */
class Summary
{
  public:
    /** Record one observation. */
    void observe(double x);

    uint64_t count() const { return n_; }
    double mean() const { return n_ ? sum_ / static_cast<double>(n_) : 0.0; }
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }
    double sum() const { return sum_; }

  private:
    uint64_t n_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** Geometric mean of a list of strictly positive values. */
double geomean(const std::vector<double> &values);

} // namespace fpraker

#endif // FPRAKER_COMMON_STATS_H
