#include "common/table.h"

#include <cstdio>

#include "common/logging.h"

namespace fpraker {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    panic_if(headers_.empty(), "table needs at least one column");
}

void
Table::addRow(std::vector<std::string> row)
{
    panic_if(row.size() != headers_.size(),
             "row arity %zu does not match header arity %zu", row.size(),
             headers_.size());
    rows_.push_back(std::move(row));
}

std::string
Table::render() const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto emit_row = [&](const std::vector<std::string> &row) {
        std::string line;
        for (size_t c = 0; c < row.size(); ++c) {
            line += row[c];
            line.append(widths[c] - row[c].size(), ' ');
            if (c + 1 < row.size())
                line += "  ";
        }
        // Trim trailing spaces.
        while (!line.empty() && line.back() == ' ')
            line.pop_back();
        return line + "\n";
    };

    std::string out = emit_row(headers_);
    size_t rule_len = 0;
    for (size_t c = 0; c < widths.size(); ++c)
        rule_len += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    out += std::string(rule_len, '-') + "\n";
    for (const auto &row : rows_)
        out += emit_row(row);
    return out;
}

void
Table::print() const
{
    std::fputs(render().c_str(), stdout);
    std::fflush(stdout);
}

std::string
Table::cell(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
Table::pct(double fraction, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
    return buf;
}

} // namespace fpraker
