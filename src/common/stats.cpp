#include "common/stats.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace fpraker {

void
StatSet::add(const std::string &name, double delta)
{
    counters_[name] += delta;
}

double
StatSet::get(const std::string &name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0.0 : it->second;
}

double
StatSet::sum(const std::vector<std::string> &names) const
{
    double s = 0.0;
    for (const auto &name : names)
        s += get(name);
    return s;
}

double
StatSet::total() const
{
    double s = 0.0;
    for (const auto &kv : counters_)
        s += kv.second;
    return s;
}

void
StatSet::merge(const StatSet &other)
{
    for (const auto &kv : other.counters_)
        counters_[kv.first] += kv.second;
}

void
StatSet::scale(double factor)
{
    for (auto &kv : counters_)
        kv.second *= factor;
}

void
StatSet::clear()
{
    counters_.clear();
}

void
Summary::observe(double x)
{
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    sum_ += x;
    ++n_;
}

double
geomean(const std::vector<double> &values)
{
    panic_if(values.empty(), "geomean of empty list");
    double log_sum = 0.0;
    for (double v : values) {
        panic_if(v <= 0.0, "geomean requires positive values, got %f", v);
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

} // namespace fpraker
