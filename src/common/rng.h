/**
 * @file
 * Deterministic random-number generation for reproducible experiments.
 *
 * All workload generation in the simulator derives from this generator so
 * that every bench/test run is bit-reproducible given a seed. The core is
 * xoshiro256** (public-domain construction by Blackman & Vigna) seeded via
 * splitmix64.
 */

#ifndef FPRAKER_COMMON_RNG_H
#define FPRAKER_COMMON_RNG_H

#include <cmath>
#include <cstdint>

namespace fpraker {

/** Deterministic, seedable RNG with convenience distributions. */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

    /** Re-initialize the state from a 64-bit seed. */
    void
    reseed(uint64_t seed)
    {
        // splitmix64 to expand the seed into four state words.
        uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ULL;
            uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
        haveGauss_ = false;
    }

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        auto rotl = [](uint64_t v, int k) {
            return (v << k) | (v >> (64 - k));
        };
        uint64_t result = rotl(state_[1] * 5, 7) * 9;
        uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Uniform integer in [0, n) (n > 0). */
    uint64_t
    uniformInt(uint64_t n)
    {
        return next() % n;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t
    uniformInt(int64_t lo, int64_t hi)
    {
        return lo + static_cast<int64_t>(uniformInt(
            static_cast<uint64_t>(hi - lo + 1)));
    }

    /** Bernoulli draw with probability @p p of true. */
    bool
    bernoulli(double p)
    {
        return uniform() < p;
    }

    /** Standard normal via Marsaglia polar method (cached pair). */
    double
    gaussian()
    {
        if (haveGauss_) {
            haveGauss_ = false;
            return cachedGauss_;
        }
        double u, v, s;
        do {
            u = uniform(-1.0, 1.0);
            v = uniform(-1.0, 1.0);
            s = u * u + v * v;
        } while (s >= 1.0 || s == 0.0);
        double mul = std::sqrt(-2.0 * std::log(s) / s);
        cachedGauss_ = v * mul;
        haveGauss_ = true;
        return u * mul;
    }

    /** Normal with mean @p mu and standard deviation @p sigma. */
    double
    gaussian(double mu, double sigma)
    {
        return mu + sigma * gaussian();
    }

  private:
    uint64_t state_[4] = {};
    bool haveGauss_ = false;
    double cachedGauss_ = 0.0;
};

} // namespace fpraker

#endif // FPRAKER_COMMON_RNG_H
