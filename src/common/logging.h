/**
 * @file
 * Error-reporting and status-message helpers.
 *
 * Follows the gem5 convention: panic() for internal invariant violations
 * (simulator bugs — aborts so a debugger can attach), fatal() for user
 * errors (bad configuration — clean exit(1)), warn()/inform() for
 * non-fatal status messages.
 */

#ifndef FPRAKER_COMMON_LOGGING_H
#define FPRAKER_COMMON_LOGGING_H

#include <cstdio>
#include <cstdlib>
#include <string>

namespace fpraker {

/** Print a formatted message with a severity prefix to stderr. */
void logMessage(const char *severity, const char *file, int line,
                const std::string &msg);

/** Format helper: printf-style into a std::string. */
std::string strfmt(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

} // namespace fpraker

/**
 * Abort on an internal invariant violation (a bug in the simulator itself).
 */
#define panic(...)                                                          \
    do {                                                                    \
        ::fpraker::logMessage("panic", __FILE__, __LINE__,                  \
                              ::fpraker::strfmt(__VA_ARGS__));              \
        std::abort();                                                       \
    } while (0)

/**
 * Exit on a user-caused error (bad configuration, invalid arguments).
 */
#define fatal(...)                                                          \
    do {                                                                    \
        ::fpraker::logMessage("fatal", __FILE__, __LINE__,                  \
                              ::fpraker::strfmt(__VA_ARGS__));              \
        std::exit(1);                                                       \
    } while (0)

/** Non-fatal warning about questionable but survivable conditions. */
#define warn(...)                                                           \
    ::fpraker::logMessage("warn", __FILE__, __LINE__,                       \
                          ::fpraker::strfmt(__VA_ARGS__))

/** Informational status message. */
#define inform(...)                                                         \
    ::fpraker::logMessage("info", __FILE__, __LINE__,                       \
                          ::fpraker::strfmt(__VA_ARGS__))

/** Condition-checked panic, enabled in all build types. */
#define panic_if(cond, ...)                                                 \
    do {                                                                    \
        if (cond) {                                                         \
            panic(__VA_ARGS__);                                             \
        }                                                                   \
    } while (0)

/** Condition-checked fatal, enabled in all build types. */
#define fatal_if(cond, ...)                                                 \
    do {                                                                    \
        if (cond) {                                                         \
            fatal(__VA_ARGS__);                                             \
        }                                                                   \
    } while (0)

#endif // FPRAKER_COMMON_LOGGING_H
