/**
 * @file
 * The one monotonic wall-clock helper for timing measurements
 * (benchmark sections, scheduler queue/run latencies, daemon
 * uptime). Steady-clock seconds since an arbitrary epoch — only
 * differences are meaningful.
 */

#ifndef FPRAKER_COMMON_CLOCK_H
#define FPRAKER_COMMON_CLOCK_H

#include <chrono>

namespace fpraker {

/** Seconds on the monotonic clock (arbitrary epoch). */
inline double
monotonicSeconds()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration<double>(
               clock::now().time_since_epoch())
        .count();
}

} // namespace fpraker

#endif // FPRAKER_COMMON_CLOCK_H
