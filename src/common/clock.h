/**
 * @file
 * The one monotonic clock for every timing consumer: benchmark
 * sections, scheduler deadlines and EWMA hints, daemon uptime, and
 * the obs layer's trace spans. A single steady-clock source keeps
 * every reading comparable — mixed clock sources skew latency
 * attributions and retry hints. Only differences are meaningful
 * (arbitrary epoch).
 */

#ifndef FPRAKER_COMMON_CLOCK_H
#define FPRAKER_COMMON_CLOCK_H

#include <chrono>
#include <cstdint>

namespace fpraker {

/** Nanoseconds on the monotonic clock (arbitrary epoch). */
inline int64_t
now_ns()
{
    using clock = std::chrono::steady_clock;
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               clock::now().time_since_epoch())
        .count();
}

/** Seconds on the same monotonic clock — now_ns() scaled, so second
 *  and nanosecond readings in one process never drift apart. */
inline double
monotonicSeconds()
{
    return static_cast<double>(now_ns()) * 1e-9;
}

} // namespace fpraker

#endif // FPRAKER_COMMON_CLOCK_H
