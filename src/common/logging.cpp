#include "common/logging.h"

#include <cstdarg>
#include <vector>

namespace fpraker {

void
logMessage(const char *severity, const char *file, int line,
           const std::string &msg)
{
    std::fprintf(stderr, "%s: %s (%s:%d)\n", severity, msg.c_str(), file,
                 line);
    std::fflush(stderr);
}

std::string
strfmt(const char *fmt, ...)
{
    va_list args;
    va_start(args, fmt);
    va_list args_copy;
    va_copy(args_copy, args);
    int len = std::vsnprintf(nullptr, 0, fmt, args);
    va_end(args);
    if (len < 0) {
        va_end(args_copy);
        return "<format error>";
    }
    std::vector<char> buf(static_cast<size_t>(len) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, args_copy);
    va_end(args_copy);
    return std::string(buf.data(), static_cast<size_t>(len));
}

} // namespace fpraker
