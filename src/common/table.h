/**
 * @file
 * Plain-text table printer used by the bench harnesses to emit the
 * paper-style rows/series for each reproduced table and figure.
 */

#ifndef FPRAKER_COMMON_TABLE_H
#define FPRAKER_COMMON_TABLE_H

#include <string>
#include <vector>

namespace fpraker {

/**
 * A simple column-aligned text table. Columns are sized to the widest cell;
 * numeric formatting is the caller's responsibility (use cell(double)).
 */
class Table
{
  public:
    /** Construct with column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Append a row; must have the same arity as the header. */
    void addRow(std::vector<std::string> row);

    /** Render the table to a string (with a separator under the header). */
    std::string render() const;

    /** Render and write to stdout. */
    void print() const;

    /** Format a double with @p precision digits after the decimal point. */
    static std::string cell(double v, int precision = 2);

    /** Format a percentage (0..1 input) like "42.1%". */
    static std::string pct(double fraction, int precision = 1);

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace fpraker

#endif // FPRAKER_COMMON_TABLE_H
