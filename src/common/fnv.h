/**
 * @file
 * The one FNV-1a implementation for every digest in the tree.
 *
 * Before PR 5 the repo carried three hand-rolled copies of this hash
 * (Session::configDigest, perf_regression's Checksum, and the Fnv
 * inside Result::fingerprint) plus per-test re-implementations. They
 * differed only in *framing* — whether a field separator is mixed in
 * between values — so this header provides one core with both
 * framings and the call sites pick:
 *
 *  - add(...)    — field-framed: the value's bytes followed by a 0xff
 *    separator, so {"ab","c"} and {"a","bc"} hash differently. Used
 *    by Result::fingerprint and Session::configDigest.
 *  - addRaw(...) / addBytes(...) — the bare byte stream, no
 *    separators. Used by the perf-regression checksums (and therefore
 *    pinned by bench/SMOKE_BASELINE.json — the byte streams here must
 *    not change).
 *
 * The serve layer's ResultCache keys (docs/SERVING.md) reuse the
 * framed form over the canonical JobSpec description.
 */

#ifndef FPRAKER_COMMON_FNV_H
#define FPRAKER_COMMON_FNV_H

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>

namespace fpraker {

constexpr uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ull;
constexpr uint64_t kFnvPrime = 0x100000001b3ull;

/** Streaming 64-bit FNV-1a. */
class Fnv64
{
  public:
    /** Mix one byte (the FNV-1a core step). */
    void
    mix(unsigned char c)
    {
        hash_ ^= c;
        hash_ *= kFnvPrime;
    }

    /** Mix @p n raw bytes, no separator. */
    void
    addBytes(const void *data, size_t n)
    {
        const unsigned char *p =
            static_cast<const unsigned char *>(data);
        for (size_t i = 0; i < n; ++i)
            mix(p[i]);
    }

    /** Mix the field separator ({"ab","c"} != {"a","bc"}). */
    void sep() { mix(0xff); }

    // ------------------------------------------- field-framed adds
    void
    add(const std::string &s)
    {
        addBytes(s.data(), s.size());
        sep();
    }

    void
    add(uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            mix(static_cast<unsigned char>(v >> (i * 8)));
        sep();
    }

    void
    add(double v)
    {
        uint64_t bits;
        std::memcpy(&bits, &v, sizeof(bits));
        add(bits);
    }

    // ------------------------------------ raw (separator-free) adds
    void addRaw(uint64_t v) { addBytes(&v, sizeof(v)); }
    void addRaw(double v) { addBytes(&v, sizeof(v)); }

    void
    addRaw(float v)
    {
        uint32_t bits;
        std::memcpy(&bits, &v, sizeof(bits));
        addBytes(&bits, sizeof(bits));
    }

    uint64_t value() const { return hash_; }

    /** The canonical 16-hex-digit rendering used across the repo. */
    static std::string
    hex(uint64_t v)
    {
        char buf[20];
        std::snprintf(buf, sizeof(buf), "%016llx",
                      static_cast<unsigned long long>(v));
        return buf;
    }

    std::string hex() const { return hex(hash_); }

  private:
    uint64_t hash_ = kFnvOffsetBasis;
};

} // namespace fpraker

#endif // FPRAKER_COMMON_FNV_H
