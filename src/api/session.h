/**
 * @file
 * Session: the public entry point for running simulations.
 *
 * A Session owns the execution substrate of one experiment run — the
 * shared SimEngine/SweepRunner, the thread and sample-step knobs that
 * the legacy bench_common.h helpers used to read ad hoc, and a set of
 * *named* accelerator variants ("full", "zero+bdc", ...). Experiments
 * receive a configured Session from the driver, register the variants
 * they need, and submit jobs; the Session tracks enough provenance
 * (variant configs, digests, resolved knobs) for the Result document.
 *
 * The fluent knob setters must run before the first variant is added
 * or job is run (the runner materializes lazily on first use).
 */

#ifndef FPRAKER_API_SESSION_H
#define FPRAKER_API_SESSION_H

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "sim/sweep_runner.h"

namespace fpraker {
namespace api {

/** Default mid-training progress used by single-point experiments. */
constexpr double kDefaultProgress = 0.5;

/** Accelerator variants of the Fig. 11 contribution breakdown. */
struct AcceleratorVariants
{
    AcceleratorConfig zeroOnly; //!< Zero-term skipping only.
    AcceleratorConfig zeroBdc;  //!< + base-delta compression.
    AcceleratorConfig full;     //!< + out-of-bounds skipping.
};

/** Build the three standard variant configs at @p sample_steps. */
AcceleratorVariants makeVariants(int sample_steps);

/**
 * The standard sweep shape: one job per (accelerator variant, model)
 * over the whole zoo, in zoo order per variant.
 */
std::vector<SweepJob>
zooJobs(const std::vector<const Accelerator *> &variants,
        double progress = kDefaultProgress);

class Session
{
  public:
    Session() = default;
    Session(const Session &) = delete;
    Session &operator=(const Session &) = delete;

    // ------------------------------------------------------ knobs
    /**
     * Worker threads (>= 1). Unset defers to FPRAKER_THREADS, then
     * serial. Must be called before the runner materializes.
     */
    Session &threads(int n);
    /**
     * Borrow @p engine as the session's worker pool instead of owning
     * one (how `fpraker run --all` drives many experiments through a
     * single pool). The shared engine always provides the pool;
     * threads() may still be set alongside it so the CLI --threads=N
     * knob stays visible to experiments that read threadsExplicit()
     * (perf_regression drives its own engines from it). Must be set
     * before the runner materializes; @p engine must outlive the
     * session.
     */
    Session &shareEngine(SimEngine *engine);
    /**
     * Explicit sample-step budget; overrides both the
     * FPRAKER_SAMPLE_STEPS environment variable and the experiment's
     * fallback in sampleSteps().
     */
    Session &overrideSampleSteps(int n);
    /** Default training-progress point for zooJobs(). */
    Session &progress(double p);

    /** Resolved worker count (materializes the runner). */
    int threadCount();
    /** True when threads() was explicitly set (CLI --threads=N). */
    bool threadsExplicit() const { return requestedThreads_ > 0; }
    /** Requested (possibly 0 = default) thread knob. */
    int requestedThreads() const { return requestedThreads_; }

    /**
     * Sampling budget: explicit sampleSteps(n) wins, then the
     * FPRAKER_SAMPLE_STEPS environment variable, then @p fallback.
     * The last resolution is recorded for provenance.
     */
    int sampleSteps(int fallback = 96);
    /** The most recently resolved sample budget (0 = never asked). */
    int lastSampleSteps() const { return lastSampleSteps_; }

    double progress() const { return progress_; }

    // ---------------------------------------------------- options
    /** Free-form experiment options (CLI --steps/--reps/--out...). */
    void setOption(const std::string &key, std::string value);
    /** Option value, or nullptr when unset. */
    const std::string *option(const std::string &key) const;
    /** Integer option with fallback; fatal on a non-positive value. */
    int intOption(const std::string &key, int fallback) const;
    /** String option with fallback. */
    std::string strOption(const std::string &key,
                          const std::string &fallback) const;

    // --------------------------------------------------- variants
    /**
     * Build an accelerator variant named @p name, bound to the shared
     * engine and kept alive for the session's lifetime. Names must be
     * unique; the returned reference is stable.
     */
    const Accelerator &withVariant(const std::string &name,
                                   const AcceleratorConfig &cfg,
                                   const EnergyModelConfig &ecfg = {});
    /** Look up a registered variant (panics when absent). */
    const Accelerator &variant(const std::string &name) const;
    bool hasVariant(const std::string &name) const;
    /** Variant names in registration order. */
    const std::vector<std::string> &variantNames() const
    {
        return variantNames_;
    }

    // -------------------------------------------------- execution
    /** The shared sweep runner (materializes on first use). */
    SweepRunner &runner();
    std::vector<ModelRunReport>
    runModels(const std::vector<SweepJob> &jobs);
    std::vector<LayerOpReport>
    runLayerOps(const std::vector<SweepLayerJob> &jobs);
    void parallelFor(size_t n, const std::function<void(size_t)> &fn);

    /** zooJobs over named variants, at the session default progress. */
    std::vector<SweepJob>
    zooJobsFor(const std::vector<std::string> &names);

    // ------------------------------------------------- provenance
    /**
     * FNV-1a hex digest over the canonical description of every
     * registered variant (geometry, tile counts, sampling, knobs) —
     * two sessions with the same variants share a digest.
     */
    std::string configDigest() const;

  private:
    int requestedThreads_ = 0;
    SimEngine *sharedEngine_ = nullptr;
    int requestedSampleSteps_ = 0;
    int lastSampleSteps_ = 0;
    double progress_ = kDefaultProgress;
    std::map<std::string, std::string> options_;

    std::unique_ptr<SweepRunner> runner_;
    std::vector<std::string> variantNames_;
    std::map<std::string, const Accelerator *> variants_;
    std::vector<std::string> variantDescs_;
};

} // namespace api
} // namespace fpraker

#endif // FPRAKER_API_SESSION_H
