#include "api/driver.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "common/logging.h"
#include "numeric/slab_ops.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/serve_cli.h"

namespace fpraker {
namespace api {

namespace {

void
printUsage(FILE *to, const char *prog)
{
    std::fprintf(
        to,
        "usage: %s <command> [options]\n"
        "\n"
        "commands:\n"
        "  list                 list the registered experiments\n"
        "  run <id>...          run one or more experiments\n"
        "  run --all            run every registered experiment\n"
        "  serve                run the fprakerd daemon (see\n"
        "                       docs/SERVING.md; also the fprakerd\n"
        "                       binary): --socket= --threads=\n"
        "                       --workers= --cache-bytes= --cache-dir=\n"
        "                       --queue-depth= --io-timeout= --fault=\n"
        "  submit <id>          submit an experiment to the daemon\n"
        "                       and await its document (--socket=\n"
        "                       --json= --priority= --deadline-ms=\n"
        "                       --retries= --no-wait + run knobs);\n"
        "                       overload rejections back off and\n"
        "                       retry per the daemon's hint\n"
        "  status <job>         poll a job submitted with --no-wait\n"
        "  result <job>         fetch (blocking) a job's document\n"
        "                       (--socket= --json=)\n"
        "  stats                print the daemon's scheduler/cache\n"
        "                       counters (--socket= --json)\n"
        "  metrics              print the daemon's full obs metrics\n"
        "                       registry (--socket=; --prom for a\n"
        "                       Prometheus text exposition)\n"
        "  shutdown             stop the daemon (--socket=)\n"
        "  help                 show this text\n"
        "\n"
        "options:\n"
        "  --threads=N          simulation worker threads (N >= 1;\n"
        "                       default FPRAKER_THREADS, else serial)\n"
        "  --sample-steps=N     tile steps sampled per (layer, op)\n"
        "                       (default FPRAKER_SAMPLE_STEPS, else the\n"
        "                       experiment's own budget)\n"
        "  --json=FILE          write the result document as JSON\n"
        "                       (requires exactly one experiment)\n"
        "  --json-dir=DIR       write one <id>.json per experiment\n"
        "  --trace-out=FILE     write a Chrome trace_event JSON of the\n"
        "                       run's spans (chrome://tracing/Perfetto;\n"
        "                       see docs/OBSERVABILITY.md)\n"
        "  --telemetry          fold the obs metrics snapshot into each\n"
        "                       result document (opt-in 'telemetry'\n"
        "                       section; never fingerprinted)\n"
        "  --steps=N --reps=N --out=FILE\n"
        "                       perf_regression workload knobs\n"
        "  --batch=N --seq=N --batches=LIST\n"
        "                       workload-experiment geometry knobs\n"
        "                       (ext_workload_catalog, ext_conv_im2col,\n"
        "                       ext_batch_sweep)\n"
        "\n"
        "Results are bit-identical at any thread count; the knobs only\n"
        "change wall-clock time and sampling noise.\n",
        prog);
}

void
printShimUsage(FILE *to, const char *prog)
{
    std::fprintf(to,
                 "usage: %s [--threads=N] [--sample-steps=N] "
                 "[--json=FILE]\n"
                 "(this binary is a thin shim over `fpraker run`; see "
                 "`fpraker help`)\n",
                 prog);
}

/** Strict positive-integer parse: all digits, value >= 1. */
bool
parsePositiveInt(const char *text, int *out)
{
    if (!*text)
        return false;
    long v = 0;
    for (const char *p = text; *p; ++p) {
        if (*p < '0' || *p > '9')
            return false;
        v = v * 10 + (*p - '0');
        if (v > 1000000000)
            return false;
    }
    if (v < 1)
        return false;
    *out = static_cast<int>(v);
    return true;
}

} // namespace

bool
parseCliArgs(int argc, char **argv, int first, bool allow_positionals,
             CliOptions *opts, std::string *error)
{
    for (int i = first; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strncmp(arg, "--threads=", 10) == 0) {
            if (!parsePositiveInt(arg + 10, &opts->threads)) {
                *error = std::string("--threads requires an integer "
                                     ">= 1 (got '") +
                         (arg + 10) + "')";
                return false;
            }
        } else if (std::strncmp(arg, "--sample-steps=", 15) == 0) {
            if (!parsePositiveInt(arg + 15, &opts->sampleSteps)) {
                *error = std::string("--sample-steps requires an "
                                     "integer >= 1 (got '") +
                         (arg + 15) + "')";
                return false;
            }
        } else if (std::strncmp(arg, "--json=", 7) == 0) {
            opts->json = arg + 7;
        } else if (std::strncmp(arg, "--json-dir=", 11) == 0) {
            opts->jsonDir = arg + 11;
        } else if (std::strncmp(arg, "--trace-out=", 12) == 0) {
            if (!arg[12]) {
                *error = "--trace-out requires a file path";
                return false;
            }
            opts->traceOut = arg + 12;
        } else if (std::strcmp(arg, "--telemetry") == 0) {
            opts->telemetry = true;
        } else if (std::strncmp(arg, "--steps=", 8) == 0 ||
                   std::strncmp(arg, "--reps=", 7) == 0 ||
                   std::strncmp(arg, "--batch=", 8) == 0 ||
                   std::strncmp(arg, "--seq=", 6) == 0) {
            const char *eq = std::strchr(arg, '=');
            int value = 0;
            if (!parsePositiveInt(eq + 1, &value)) {
                *error = std::string(arg, static_cast<size_t>(
                                              eq - arg)) +
                         " requires an integer >= 1 (got '" +
                         (eq + 1) + "')";
                return false;
            }
            opts->extras.emplace_back(
                std::string(arg + 2, static_cast<size_t>(eq - arg - 2)),
                eq + 1);
        } else if (std::strncmp(arg, "--out=", 6) == 0) {
            opts->extras.emplace_back("out", arg + 6);
        } else if (std::strncmp(arg, "--batches=", 10) == 0) {
            // Comma-separated batch list for ext_batch_sweep; each
            // entry is validated by the experiment itself.
            opts->extras.emplace_back("batches", arg + 10);
        } else if (std::strcmp(arg, "--all") == 0) {
            if (!allow_positionals) {
                *error = "--all is only valid with `fpraker run`";
                return false;
            }
            opts->all = true;
        } else if (arg[0] == '-') {
            *error = std::string("unknown flag '") + arg + "'";
            return false;
        } else if (allow_positionals) {
            opts->ids.push_back(arg);
        } else {
            *error = std::string("unexpected argument '") + arg + "'";
            return false;
        }
    }
    return true;
}

Result
produceResult(const ExperimentInfo &info, const CliOptions &opts,
              SimEngine *shared)
{
    Session session;
    if (shared)
        session.shareEngine(shared);
    // Record --threads even when an engine is shared: the pool is the
    // shared one regardless, but experiments that drive their own
    // engines (perf_regression) must still see the explicit knob.
    if (opts.threads > 0)
        session.threads(opts.threads);
    if (opts.sampleSteps > 0)
        session.overrideSampleSteps(opts.sampleSteps);
    for (const auto &[key, value] : opts.extras)
        session.setOption(key, value);

    Result result = [&] {
        obs::TraceSpan span("experiment", info.id);
        return info.fn(session);
    }();
    result.experiment = info.id;
    result.display = info.display;
    result.title = info.title;
    result.expectation = info.expectation;
    result.configDigest = session.configDigest();
    // Experiments that drive their own engines (perf_regression)
    // record the knobs they actually used; only fill the blanks.
    if (result.threads == 0)
        result.threads = session.threadCount();
    if (result.sampleSteps == 0)
        result.sampleSteps = session.lastSampleSteps();
    if (result.simdLevel.empty())
        result.simdLevel = slab::simdLevel();
    result.variants = session.variantNames();
    if (opts.telemetry) {
        // Snapshot AFTER the run so the document reflects the work it
        // describes. Rendered only under the opt-in flag and excluded
        // from the fingerprint, like the memo provenance trio.
        result.telemetry = obs::Registry::instance().snapshotJson();
        result.hasTelemetry = true;
    }
    return result;
}

ExperimentOutcome
runExperimentBuffered(const ExperimentInfo &info, const CliOptions &opts,
                      SimEngine *shared)
{
    Result result = produceResult(info, opts, shared);

    ExperimentOutcome out;
    out.text = ReportWriter::renderText(result);
    if (!opts.jsonDir.empty()) {
        // Before any write: --out may point into the directory.
        std::error_code ec;
        std::filesystem::create_directories(opts.jsonDir, ec);
    }
    // Under `run --all` the experiments share one CPU pool, so a
    // timing experiment's wall-clock numbers are contaminated by its
    // neighbors — don't let it silently overwrite its committed
    // trajectory file (BENCH_PR<N>.json) unless the user explicitly
    // pointed --out somewhere. Dedicated `run <id>` runs still write.
    bool explicit_out = false;
    for (const auto &[key, value] : opts.extras)
        if (key == "out")
            explicit_out = true;
    if (!result.defaultJsonPath.empty() &&
        (!opts.all || explicit_out)) {
        ReportWriter::writeJson(result, result.defaultJsonPath);
        out.text += "wrote " + result.defaultJsonPath + "\n";
    }
    if (!opts.json.empty())
        ReportWriter::writeJson(result, opts.json);
    if (!opts.jsonDir.empty())
        ReportWriter::writeJson(result,
                                opts.jsonDir + "/" + info.id + ".json");
    out.status = result.ok ? 0 : 1;
    return out;
}

int
runExperiment(const ExperimentInfo &info, const CliOptions &opts)
{
    ExperimentOutcome out = runExperimentBuffered(info, opts, nullptr);
    std::fputs(out.text.c_str(), stdout);
    return out.status;
}

int
experimentMain(std::initializer_list<const char *> ids, int argc,
               char **argv)
{
    CliOptions opts;
    std::string error;
    if (!parseCliArgs(argc, argv, 1, false, &opts, &error)) {
        std::fprintf(stderr, "%s: %s\n", argv[0], error.c_str());
        printShimUsage(stderr, argv[0]);
        return 2;
    }
    if (!opts.json.empty() && ids.size() != 1) {
        std::fprintf(stderr,
                     "%s: --json requires exactly one experiment and "
                     "this shim runs %zu (use --json-dir)\n",
                     argv[0], ids.size());
        return 2;
    }

    int status = 0;
    bool first = true;
    for (const char *id : ids) {
        const ExperimentInfo *info =
            ExperimentRegistry::instance().find(id);
        panic_if(!info, "shim references unknown experiment '%s'", id);
        if (!first)
            std::printf("\n");
        first = false;
        status |= runExperiment(*info, opts);
    }
    return status;
}

int
cliMain(int argc, char **argv)
{
    const char *prog = argc > 0 ? argv[0] : "fpraker";
    if (argc < 2) {
        printUsage(stderr, prog);
        return 2;
    }
    const std::string command = argv[1];
    const ExperimentRegistry &registry = ExperimentRegistry::instance();

    if (command == "help" || command == "--help" || command == "-h") {
        printUsage(stdout, prog);
        return 0;
    }

    if (command == "list") {
        CliOptions opts;
        std::string error;
        if (!parseCliArgs(argc, argv, 2, false, &opts, &error)) {
            std::fprintf(stderr, "%s: %s\n", prog, error.c_str());
            return 2;
        }
        std::vector<const ExperimentInfo *> all = registry.all();
        size_t width = 0;
        for (const ExperimentInfo *e : all)
            width = std::max(width, e->id.size());
        for (const ExperimentInfo *e : all)
            std::printf("%-*s  %s — %s\n", static_cast<int>(width),
                        e->id.c_str(), e->display.c_str(),
                        e->title.c_str());
        std::printf("%zu experiments registered\n", all.size());
        return 0;
    }

    if (command == "run") {
        CliOptions opts;
        std::string error;
        if (!parseCliArgs(argc, argv, 2, true, &opts, &error)) {
            std::fprintf(stderr, "%s: %s\n", prog, error.c_str());
            printUsage(stderr, prog);
            return 2;
        }
        if (opts.all && !opts.ids.empty()) {
            std::fprintf(stderr,
                         "%s: give either --all or experiment ids, "
                         "not both\n",
                         prog);
            return 2;
        }
        if (!opts.all && opts.ids.empty()) {
            std::fprintf(stderr,
                         "%s: `run` needs experiment ids or --all "
                         "(try `%s list`)\n",
                         prog, prog);
            printUsage(stderr, prog);
            return 2;
        }

        std::vector<const ExperimentInfo *> todo;
        if (opts.all) {
            todo = registry.all();
        } else {
            for (const std::string &id : opts.ids) {
                const ExperimentInfo *info = registry.find(id);
                if (!info) {
                    std::fprintf(stderr,
                                 "%s: unknown experiment '%s' "
                                 "(try `%s list`)\n",
                                 prog, id.c_str(), prog);
                    return 2;
                }
                todo.push_back(info);
            }
        }
        if (!opts.json.empty() && todo.size() != 1) {
            std::fprintf(stderr,
                         "%s: --json requires exactly one experiment "
                         "(use --json-dir for several)\n",
                         prog);
            return 2;
        }

        // Enable span collection before any experiment runs; the
        // merged file is written once, after the last one finishes.
        if (!opts.traceOut.empty())
            obs::TraceCollector::instance().enable();
        auto write_trace = [&]() {
            if (opts.traceOut.empty())
                return;
            if (!obs::TraceCollector::instance().writeTo(
                    opts.traceOut))
                std::fprintf(stderr, "%s: cannot write trace to %s\n",
                             prog, opts.traceOut.c_str());
            else
                std::printf("wrote %s\n", opts.traceOut.c_str());
        };

        if (opts.all) {
            // Independent experiments shard across ONE shared engine
            // (each session borrows it; inner fan-outs re-enter it).
            // Reports buffer per experiment and print in registry
            // order, so stdout matches a serial sweep (up to
            // wall-clock readings) and each document's fingerprint
            // matches a serial run exactly.
            SimEngine engine(opts.threads);
            if (!opts.jsonDir.empty()) {
                std::error_code ec;
                std::filesystem::create_directories(opts.jsonDir, ec);
            }
            std::vector<ExperimentOutcome> outcomes(todo.size());
            engine.parallelFor(todo.size(), [&](size_t i) {
                outcomes[i] =
                    runExperimentBuffered(*todo[i], opts, &engine);
            });
            int status = 0;
            for (size_t i = 0; i < outcomes.size(); ++i) {
                if (i)
                    std::printf("\n");
                std::fputs(outcomes[i].text.c_str(), stdout);
                status |= outcomes[i].status;
            }
            write_trace();
            return status;
        }

        int status = 0;
        for (size_t i = 0; i < todo.size(); ++i) {
            if (i)
                std::printf("\n");
            status |= runExperiment(*todo[i], opts);
        }
        write_trace();
        return status;
    }

    if (command == "serve")
        return serve::serveMain(argc, argv, 2);
    if (command == "submit")
        return serve::submitMain(argc, argv, 2);
    if (command == "status")
        return serve::statusMain(argc, argv, 2);
    if (command == "result")
        return serve::resultMain(argc, argv, 2);
    if (command == "stats")
        return serve::statsMain(argc, argv, 2);
    if (command == "metrics")
        return serve::metricsMain(argc, argv, 2);
    if (command == "shutdown")
        return serve::shutdownMain(argc, argv, 2);

    std::fprintf(stderr, "%s: unknown command '%s'\n", prog,
                 command.c_str());
    printUsage(stderr, prog);
    return 2;
}

} // namespace api
} // namespace fpraker
