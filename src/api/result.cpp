#include "api/result.h"

#include <cstdio>
#include <cstring>

#include "common/fnv.h"
#include "common/logging.h"
#include "common/table.h"

namespace fpraker {
namespace api {

MetricValue
MetricValue::of(int64_t v)
{
    MetricValue m;
    m.kind = Kind::Int;
    m.i = v;
    return m;
}

MetricValue
MetricValue::of(uint64_t v)
{
    return of(static_cast<int64_t>(v));
}

MetricValue
MetricValue::of(double v, int precision)
{
    MetricValue m;
    m.kind = Kind::Double;
    m.d = v;
    m.precision = precision;
    return m;
}

MetricValue
MetricValue::of(std::string v)
{
    MetricValue m;
    m.kind = Kind::Text;
    m.s = std::move(v);
    return m;
}

MetricValue
MetricValue::of(bool v)
{
    MetricValue m;
    m.kind = Kind::Bool;
    m.b = v;
    return m;
}

JsonValue
MetricValue::toJson() const
{
    switch (kind) {
      case Kind::Int:
        return JsonValue(i);
      case Kind::Double:
        return JsonValue(d, precision);
      case Kind::Text:
        return JsonValue(s);
      case Kind::Bool:
        return JsonValue(b);
    }
    return JsonValue();
}

ResultTable &
ResultTable::addRow(std::vector<std::string> row)
{
    panic_if(row.size() != headers.size(),
             "table '%s': row arity %zu != header arity %zu",
             name.c_str(), row.size(), headers.size());
    rows.push_back(std::move(row));
    return *this;
}

ResultTable &
Result::table(const std::string &name, std::vector<std::string> headers)
{
    ResultTable t;
    t.name = name;
    t.headers = std::move(headers);
    tables_.push_back(std::move(t));
    order_.push_back({DisplayItem::Kind::Table, tables_.size() - 1});
    return tables_.back();
}

void
Result::note(const std::string &text)
{
    notes_.push_back(text);
    order_.push_back({DisplayItem::Kind::Note, notes_.size() - 1});
}

MetricGroup &
Result::group(const std::string &name)
{
    for (MetricGroup &g : groups_)
        if (g.name == name)
            return g;
    MetricGroup g;
    g.name = name;
    groups_.push_back(std::move(g));
    return groups_.back();
}

ResultSeries &
Result::addSeries(const std::string &name,
                  std::vector<std::string> labels,
                  std::vector<double> values)
{
    panic_if(labels.size() != values.size(),
             "series '%s': %zu labels vs %zu values", name.c_str(),
             labels.size(), values.size());
    ResultSeries s;
    s.name = name;
    s.labels = std::move(labels);
    s.values = std::move(values);
    series_.push_back(std::move(s));
    return series_.back();
}

void
Result::fail(const std::string &why)
{
    ok = false;
    note("FAILED: " + why);
}

namespace {

std::string
canonicalMetric(const MetricValue &v)
{
    switch (v.kind) {
      case MetricValue::Kind::Int:
        return "i" + std::to_string(v.i);
      case MetricValue::Kind::Double: {
        uint64_t bits;
        std::memcpy(&bits, &v.d, sizeof(bits));
        return "d" + std::to_string(bits);
      }
      case MetricValue::Kind::Text:
        return "s" + v.s;
      case MetricValue::Kind::Bool:
        return v.b ? "b1" : "b0";
    }
    return "";
}

} // namespace

uint64_t
Result::fingerprint() const
{
    if (hasFingerprintOverride_)
        return fingerprintOverride_;
    Fnv64 f;
    f.add(experiment);
    f.add(std::string(ok ? "ok" : "failed"));
    for (const auto &[key, value] : scalars_) {
        f.add(key);
        f.add(canonicalMetric(value));
    }
    for (const MetricGroup &g : groups_) {
        f.add(g.name);
        for (const auto &[key, value] : g.metrics) {
            f.add(key);
            f.add(canonicalMetric(value));
        }
    }
    for (const ResultTable &t : tables_) {
        f.add(t.name);
        for (const std::string &h : t.headers)
            f.add(h);
        for (const auto &row : t.rows)
            for (const std::string &cell : row)
                f.add(cell);
    }
    for (const ResultSeries &s : series_) {
        f.add(s.name);
        for (const std::string &l : s.labels)
            f.add(l);
        for (double v : s.values)
            f.add(v);
    }
    for (const std::string &n : notes_)
        f.add(n);
    return f.value();
}

JsonValue
Result::toJson() const
{
    JsonValue doc = JsonValue::object();
    doc.set("schema", "fpraker-result-v1");
    doc.set("experiment", experiment);
    doc.set("title", title);
    doc.set("expectation", expectation);
    doc.set("ok", ok);
    {
        char buf[20];
        std::snprintf(buf, sizeof(buf), "%016llx",
                      static_cast<unsigned long long>(fingerprint()));
        doc.set("fingerprint", std::string(buf));
    }

    JsonValue prov = JsonValue::object();
    prov.set("config_digest", configDigest);
    prov.set("threads", threads);
    prov.set("sample_steps", sampleSteps);
    prov.set("simd_level", simdLevel);
    JsonValue vars = JsonValue::array();
    for (const std::string &v : variants)
        vars.push(v);
    prov.set("variants", std::move(vars));
    prov.set("cached", cached);
    // Only when positive: the common (met-deadline) rendering must
    // stay byte-identical to pre-deadline documents.
    if (deadlineOverrunMs > 0)
        prov.set("deadline_overrun_ms", deadlineOverrunMs);
    // Only when the experiment opted in (see result.h): memo warmth
    // varies run to run, so unconditional counts would break the
    // serve layer's document byte-identity.
    if (!memoMode.empty()) {
        prov.set("memo_mode", memoMode);
        prov.set("memo_hits", memoHits);
        prov.set("memo_misses", memoMisses);
    }
    doc.set("provenance", std::move(prov));

    JsonValue scalars = JsonValue::object();
    for (const auto &[key, value] : scalars_)
        scalars.set(key, value.toJson());
    doc.set("scalars", std::move(scalars));

    JsonValue groups = JsonValue::object();
    for (const MetricGroup &g : groups_) {
        JsonValue obj = JsonValue::object();
        for (const auto &[key, value] : g.metrics)
            obj.set(key, value.toJson());
        groups.set(g.name, std::move(obj));
    }
    doc.set("groups", std::move(groups));

    JsonValue tables = JsonValue::array();
    for (const ResultTable &t : tables_) {
        JsonValue obj = JsonValue::object();
        obj.set("name", t.name);
        if (!t.caption.empty())
            obj.set("caption", t.caption);
        JsonValue headers = JsonValue::array();
        for (const std::string &h : t.headers)
            headers.push(h);
        obj.set("headers", std::move(headers));
        JsonValue rows = JsonValue::array();
        for (const auto &row : t.rows) {
            JsonValue r = JsonValue::array();
            for (const std::string &cell : row)
                r.push(cell);
            rows.push(std::move(r));
        }
        obj.set("rows", std::move(rows));
        tables.push(std::move(obj));
    }
    doc.set("tables", std::move(tables));

    JsonValue series = JsonValue::array();
    for (const ResultSeries &s : series_) {
        JsonValue obj = JsonValue::object();
        obj.set("name", s.name);
        JsonValue labels = JsonValue::array();
        for (const std::string &l : s.labels)
            labels.push(l);
        obj.set("labels", std::move(labels));
        JsonValue values = JsonValue::array();
        for (double v : s.values)
            values.push(JsonValue(v));
        obj.set("values", std::move(values));
        series.push(std::move(obj));
    }
    doc.set("series", std::move(series));

    JsonValue notes = JsonValue::array();
    for (const std::string &n : notes_)
        notes.push(n);
    doc.set("notes", std::move(notes));

    // Opt-in only (see result.h): counter values depend on process
    // history and must never perturb the default document bytes.
    if (hasTelemetry)
        doc.set("telemetry", telemetry);
    return doc;
}

std::string
ReportWriter::renderText(const Result &r)
{
    std::string out;
    out += "==================================================="
           "===========\n";
    out += r.display.empty() ? r.experiment : r.display;
    out += ": " + r.title + "\n";
    out += "paper expectation: " + r.expectation + "\n";
    out += "==================================================="
           "===========\n";

    bool first = true;
    for (const Result::DisplayItem &item : r.displayOrder()) {
        if (item.kind == Result::DisplayItem::Kind::Table) {
            const ResultTable &t = r.tables()[item.index];
            if (!first)
                out += "\n";
            if (!t.caption.empty())
                out += t.caption + "\n";
            Table printer(t.headers);
            for (const auto &row : t.rows)
                printer.addRow(row);
            out += printer.render();
        } else {
            out += "\n" + r.notes()[item.index] + "\n";
        }
        first = false;
    }
    return out;
}

void
ReportWriter::print(const Result &r)
{
    std::fputs(renderText(r).c_str(), stdout);
}

std::string
ReportWriter::renderJson(const Result &r)
{
    return r.toJson().dump() + "\n";
}

void
ReportWriter::writeJson(const Result &r, const std::string &path)
{
    FILE *f = std::fopen(path.c_str(), "w");
    // A bad output path is a user error, not a simulator bug.
    fatal_if(!f, "cannot write %s", path.c_str());
    std::string text = renderJson(r);
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
}

} // namespace api
} // namespace fpraker
