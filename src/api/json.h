/**
 * @file
 * Minimal ordered JSON document model for the experiment API.
 *
 * Result documents must round-trip (emit -> parse -> compare) and
 * must serialize with stable key order, so this is a tiny in-house
 * value type instead of an external dependency: objects keep
 * insertion order, integers stay integers, and doubles carry an
 * optional fixed-precision print hint so emitted reports keep the
 * human-readable formatting of the legacy harnesses.
 */

#ifndef FPRAKER_API_JSON_H
#define FPRAKER_API_JSON_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace fpraker {
namespace api {

/** One JSON value; objects preserve insertion order. */
class JsonValue
{
  public:
    enum class Kind { Null, Bool, Int, Double, String, Array, Object };

    JsonValue() = default;
    JsonValue(bool b) : kind_(Kind::Bool), bool_(b) {}
    JsonValue(int v) : kind_(Kind::Int), int_(v) {}
    JsonValue(int64_t v) : kind_(Kind::Int), int_(v) {}
    JsonValue(uint64_t v)
        : kind_(Kind::Int), int_(static_cast<int64_t>(v))
    {
    }
    /** @param precision fixed digits after the point; -1 = shortest
     *  round-trippable representation. */
    JsonValue(double v, int precision = -1)
        : kind_(Kind::Double), double_(v), precision_(precision)
    {
    }
    JsonValue(std::string s) : kind_(Kind::String), str_(std::move(s)) {}
    JsonValue(const char *s) : kind_(Kind::String), str_(s) {}

    static JsonValue array();
    static JsonValue object();

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isObject() const { return kind_ == Kind::Object; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isNumber() const
    {
        return kind_ == Kind::Int || kind_ == Kind::Double;
    }

    bool boolean() const { return bool_; }
    int64_t intValue() const { return int_; }
    /** Numeric value of an Int or Double node. */
    double number() const;
    const std::string &str() const { return str_; }

    /** Array elements / object entries (valid for those kinds). */
    std::vector<JsonValue> &items() { return items_; }
    const std::vector<JsonValue> &items() const { return items_; }
    std::vector<std::pair<std::string, JsonValue>> &entries()
    {
        return entries_;
    }
    const std::vector<std::pair<std::string, JsonValue>> &entries() const
    {
        return entries_;
    }

    /** Append to an array. */
    void push(JsonValue v);
    /** Set (or overwrite) an object key, preserving insertion order. */
    JsonValue &set(const std::string &key, JsonValue v);
    /** Lookup an object key; nullptr when absent. */
    const JsonValue *find(const std::string &key) const;

    /** Pretty-print with 2-space indentation per level. */
    std::string dump(int indent = 0) const;

    /**
     * Single-line rendering (no newlines or indentation) for the
     * newline-delimited serve wire protocol. Parses back to the same
     * tree as dump().
     */
    std::string dumpCompact() const;

    /**
     * Parse a JSON text. On failure returns a Null value and, when
     * @p error is non-null, stores a message with the byte offset.
     */
    static JsonValue parse(const std::string &text,
                           std::string *error = nullptr);

    /**
     * Structural equality: same kind, same values, same key order.
     * Int and Double nodes compare by numeric value (a parsed "4.0"
     * equals an emitted integer 4); print precision is ignored.
     */
    bool operator==(const JsonValue &o) const;
    bool operator!=(const JsonValue &o) const { return !(*this == o); }

    /** Escape a string for embedding in JSON (adds no quotes). */
    static std::string escape(const std::string &s);

  private:
    void dumpTo(std::string &out, int indent) const;
    void dumpCompactTo(std::string &out) const;

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    int64_t int_ = 0;
    double double_ = 0.0;
    int precision_ = -1;
    std::string str_;
    std::vector<JsonValue> items_;
    std::vector<std::pair<std::string, JsonValue>> entries_;
};

} // namespace api
} // namespace fpraker

#endif // FPRAKER_API_JSON_H
