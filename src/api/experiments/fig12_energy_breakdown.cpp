/**
 * @file
 * Fig. 12 — energy breakdown of FPRaker vs the baseline: off-chip
 * DRAM, on-chip SRAM, and core (FPRaker's core split into compute /
 * control / accumulation), normalized to the baseline total.
 */

#include "api/api.h"

namespace fpraker {
namespace {

using namespace api;

REGISTER_EXPERIMENT("fig12", "Fig. 12",
                    "energy breakdown, normalized to baseline total",
                    "FPRaker core well below baseline core; on-chip "
                    "portion comparable; off-chip shrinks with BDC; "
                    "accumulation the largest FPRaker core component")
{
    AcceleratorConfig cfg = AcceleratorConfig::paperDefault();
    cfg.sampleSteps = session.sampleSteps();
    session.withVariant("full", cfg);
    std::vector<ModelRunReport> reports =
        session.runModels(session.zooJobsFor({"full"}));

    Result res;
    ResultTable &t =
        res.table("energy_breakdown",
                  {"model", "fpr core(comp/ctl/accum)", "fpr sram",
                   "fpr dram", "fpr total", "base core", "base sram",
                   "base dram"});
    for (const ModelRunReport &r : reports) {
        double norm = r.baseEnergy.totalPj();
        auto pct = [&](double pj) { return Table::pct(pj / norm); };
        std::string core_split =
            pct(r.fprEnergy.core.computePj) + "/" +
            pct(r.fprEnergy.core.controlPj) + "/" +
            pct(r.fprEnergy.core.accumulationPj);
        t.addRow({r.model, core_split, pct(r.fprEnergy.sramPj),
                  pct(r.fprEnergy.dramPj), pct(r.fprEnergy.totalPj()),
                  pct(r.baseEnergy.core.totalPj()),
                  pct(r.baseEnergy.sramPj), pct(r.baseEnergy.dramPj)});
    }
    return res;
}

} // namespace
} // namespace fpraker
