/**
 * @file
 * Fig. 10 — normalized exponent footprint after base-delta compression,
 * per model and tensor, for channel-wise and spatial groupings.
 */

#include <functional>

#include "api/api.h"
#include "compress/base_delta.h"
#include "trace/tensor_gen.h"

namespace fpraker {
namespace {

using namespace api;

/**
 * Channel-wise grouping follows the generated stream order (strongest
 * correlation); spatial grouping is emulated by striding the stream (a
 * group gathers every 8th value), which weakens — but per the paper
 * does not destroy — the correlation.
 */
double
footprint(const ModelInfo &model, TensorKind kind, double progress,
          bool spatial)
{
    TensorGenerator gen(model.profile.of(kind).at(progress),
                        std::hash<std::string>{}(model.name) +
                            static_cast<uint64_t>(kind) * 13);
    std::vector<BFloat16> values = gen.generate(16384);
    if (spatial) {
        std::vector<BFloat16> strided;
        strided.reserve(values.size());
        const size_t stride = 8;
        for (size_t phase = 0; phase < stride; ++phase)
            for (size_t i = phase; i < values.size(); i += stride)
                strided.push_back(values[i]);
        values.swap(strided);
    }
    BaseDeltaCodec codec;
    return codec.analyze(values).exponentFootprint();
}

REGISTER_EXPERIMENT("fig10", "Fig. 10",
                    "normalized exponent footprint after base-delta "
                    "compression",
                    "30-70% of the raw exponent bits, effective for "
                    "both channel-wise (bars) and spatial (markers) "
                    "groupings")
{
    // Shard per (model, tensor kind, grouping): 54 independent
    // footprint analyses, each writing its own slot.
    const TensorKind kinds[] = {TensorKind::Activation, TensorKind::Weight,
                                TensorKind::Gradient};
    std::vector<double> footprints(modelZoo().size() * 6);
    session.parallelFor(footprints.size(), [&](size_t i) {
        const ModelInfo &model = modelZoo()[i / 6];
        footprints[i] = footprint(model, kinds[(i % 6) % 3],
                                  kDefaultProgress, (i % 6) >= 3);
    });

    Result res;
    ResultTable &t = res.table("footprint",
                               {"model", "A chan", "W chan", "G chan",
                                "A spat", "W spat", "G spat"});
    for (size_t m = 0; m < modelZoo().size(); ++m) {
        std::vector<std::string> row = {modelZoo()[m].name};
        for (size_t i = 0; i < 6; ++i)
            row.push_back(Table::pct(footprints[m * 6 + i]));
        t.addRow(row);
    }
    return res;
}

} // namespace
} // namespace fpraker
