/**
 * @file
 * Fig. 6 — exponent distribution of a mid-network convolution layer's
 * activations, weights, and gradients at the start and end of training
 * (the paper shows ResNet34 conv2d_8 at epochs 0 and 89). The narrow,
 * stable distributions motivate both the limited shifter range and the
 * exponent base-delta compression.
 */

#include <cstdio>
#include <map>

#include "api/api.h"
#include "trace/tensor_gen.h"

namespace fpraker {
namespace {

using namespace api;

/** Binned exponent histogram of the three tensors at one progress. */
struct HistData
{
    std::map<int, double> hist[3];
    uint64_t counts[3] = {};
};

HistData
computeHistogram(const ModelInfo &model, double progress)
{
    HistData h;
    for (TensorKind kind : {TensorKind::Activation, TensorKind::Weight,
                            TensorKind::Gradient}) {
        TensorGenerator gen(model.profile.of(kind).at(progress),
                            0xf16 + static_cast<uint64_t>(kind));
        for (int i = 0; i < 40000; ++i) {
            BFloat16 v = gen.next();
            if (v.isZero())
                continue;
            int bin = (v.unbiasedExponent() / 4) * 4; // 4-wide bins
            h.hist[static_cast<int>(kind)][bin] += 1.0;
            h.counts[static_cast<int>(kind)] += 1;
        }
    }
    return h;
}

void
addHistogram(Result &res, const std::string &slug, const HistData &h,
             double progress, const char *label)
{
    ResultTable &t = res.table(
        slug, {"exponent bin", "Activation", "Weight", "Gradient"});
    char caption[64];
    std::snprintf(caption, sizeof(caption),
                  "%s (training progress %.0f%%)", label,
                  progress * 100.0);
    t.caption = caption;
    std::vector<std::string> labels;
    std::vector<double> shares[3];
    for (int bin = -32; bin <= 8; bin += 4) {
        auto share = [&](int k) {
            auto it = h.hist[k].find(bin);
            double v = it == h.hist[k].end() ? 0.0 : it->second;
            return v / static_cast<double>(h.counts[k]);
        };
        t.addRow({"[" + std::to_string(bin) + "," +
                      std::to_string(bin + 3) + "]",
                  Table::pct(share(0)), Table::pct(share(1)),
                  Table::pct(share(2))});
        labels.push_back("[" + std::to_string(bin) + "," +
                         std::to_string(bin + 3) + "]");
        for (int k = 0; k < 3; ++k)
            shares[k].push_back(share(k));
    }
    static const char *kKindSlug[3] = {"activation", "weight",
                                       "gradient"};
    for (int k = 0; k < 3; ++k)
        res.addSeries(slug + "_" + kKindSlug[k], labels, shares[k]);
}

REGISTER_EXPERIMENT("fig06", "Fig. 6",
                    "exponent histogram of a conv layer, epochs 0 and "
                    "89",
                    "the vast majority of exponents of all three "
                    "tensors lie within a narrow (~10-binade) band "
                    "that is stable across training; gradients "
                    "centered lower")
{
    // A mid-network ResNet-family conv layer stands in for the paper's
    // ResNet34 conv2d_8; our profiles are per-model so we show
    // ResNet50-S2's mid-training statistics.
    const ModelInfo &model = findModel("ResNet50-S2");
    const double points[] = {0.0, 1.0};
    HistData hists[2];
    session.parallelFor(2, [&](size_t i) {
        hists[i] = computeHistogram(model, points[i]);
    });

    Result res;
    addHistogram(res, "epoch_start", hists[0], points[0], "epoch 0");
    addHistogram(res, "epoch_final", hists[1], points[1],
                 "final epoch");
    return res;
}

} // namespace
} // namespace fpraker
