/**
 * @file
 * Perf-regression experiment: times fixed, seeded workloads on the
 * cycle-level simulator and emits BENCH_PR10.json, extending the
 * BENCH_PR<N>.json trajectory each perf PR must beat
 * (docs/PERFORMANCE.md explains how to read and append it).
 *
 * Timed sections:
 *
 *  - tile_kernel — the PR 1 comparison, unchanged: the seed algorithm
 *    (ReferenceColumn / ReferenceTile), the optimized engine at one
 *    thread, and at --threads=N, over identical pre-generated operand
 *    slabs.
 *  - sweep — the PR 2 tentpole: several whole tile-kernel jobs (the
 *    kernel workload replicated under per-job RNG substreams, keeping
 *    sets/sec comparable) submitted through one SweepRunner and timed
 *    at 1, 2, and 8 threads. The FNV-1a checksum over every job's
 *    outputs must be identical at every thread count.
 *  - model_sweep — a three-model sweep of full accelerator runs (the
 *    Fig. 11 unit of work) through the same runner, serial vs
 *    parallel.
 *  - generation — the PR 4 data-supply benchmark: the scalar
 *    value-at-a-time TensorGenerator walk vs the batched slab path
 *    (integer-threshold Bernoullis + SIMD field packing), and the
 *    scalar vs SIMD term classifier (slab_ops countTerms). Both pairs
 *    must produce identical bits; only wall-clock may differ.
 *  - baseline_tile — the functional bit-parallel tile's batched row
 *    walk, serial vs PE rows sharded across an engine, with output
 *    digests that must match.
 *  - serving — the PR 5 serving layer (src/serve/): a cold/hot
 *    request replay against an in-process JobScheduler, reporting
 *    requests/s on both paths, hot p50/p99 latency, and the cache
 *    hit rate (scripts/check_perf_floor.py gates the hot/cold
 *    ratio).
 *  - shed — the PR 6 robustness layer: an open-loop overload burst
 *    against a bounded scheduler queue; admission control must shed
 *    the overflow with retry_after hints at flat accept latency,
 *    and every shed spec must complete under the client
 *    RetryPolicy.
 *  - workload — the PR 8 ingestion seam: replaying a recorded
 *    PhaseTrace through the SlabSupply seam vs synthesizing the same
 *    operand streams with the generator, over one im2col-lowered
 *    conv phase. The replayed and synthesized streams must be
 *    bit-identical.
 *  - memo — the PR 9 memoization grains (sim/sim_memo.h): the same
 *    conv phase simulated end-to-end through runPhaseSample with the
 *    memo off, cold (fresh: every burst misses and inserts), and
 *    warm (primed: every burst hits, skipping the tile), plus the
 *    phase grain over the generator supply. All five result digests
 *    must be identical; the warm-replay speedup over cold is the
 *    payoff scripts/check_perf_floor.py gates.
 *  - telemetry — the PR 10 observability layer (src/obs/): the
 *    per-operation cost of one counter add, one histogram observe,
 *    and a TraceSpan with tracing disabled, over tight loops.
 *    scripts/check_perf_floor.py bounds these absolutely (ns/op):
 *    an instrumented-but-idle seam must stay invisible next to a
 *    microsecond-scale tile step.
 *
 * The experiment refuses to report a speedup over diverging runs
 * (Result::ok goes false, exit status 1). Because the document
 * contains wall-clock readings, it overrides its content fingerprint
 * with the combined determinism checksums — which ARE run-invariant —
 * so `run --all` fingerprint comparisons stay meaningful.
 *
 *   fpraker run perf_regression [--threads=N] [--steps=N] [--reps=N]
 *                               [--out=FILE]
 *
 * FPRAKER_SAMPLE_STEPS scales the tile workload (CI smoke runs pin a
 * small budget and compare the emitted checksums against
 * bench/SMOKE_BASELINE.json via scripts/check_smoke_checksums.sh).
 */

#include <algorithm>
#include <chrono>
#include <cinttypes>
#include <cstring>
#include <functional>

#include <thread>

#include "api/api.h"
#include "common/clock.h"
#include "common/fnv.h"
#include "numeric/slab_ops.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/throughput.h"
#include "numeric/term_lut.h"
#include "sim/sim_memo.h"
#include "sim/reference_column.h"
#include "trace/rng_stream.h"
#include "trace/tensor_gen.h"
#include "workload/supply.h"

namespace fpraker {
namespace {

using namespace api;

/**
 * Raw (separator-free) FNV-1a over native value bytes — the framing
 * bench/SMOKE_BASELINE.json pins, now layered on common/fnv.h.
 */
class Checksum
{
  public:
    void addBytes(const void *data, size_t n) { h_.addBytes(data, n); }
    void add(uint64_t v) { h_.addRaw(v); }
    void add(double v) { h_.addRaw(v); }
    void add(float v) { h_.addRaw(v); }

    void
    add(const PeStats &s)
    {
        add(s.laneUseful);
        add(s.laneNoTerm);
        add(s.laneShiftRange);
        add(s.laneExponent);
        add(s.laneInterPe);
        add(s.setCycles);
        add(s.sets);
        add(s.macs);
        add(s.termsProcessed);
        add(s.termsZeroSkipped);
        add(s.termsObSkipped);
    }

    uint64_t value() const { return h_.value(); }

  private:
    Fnv64 h_;
};

double
now()
{
    return monotonicSeconds();
}

std::string
hex16(uint64_t v)
{
    char buf[20];
    std::snprintf(buf, sizeof(buf), "%016" PRIx64, v);
    return buf;
}

struct TileTiming
{
    double seconds = 0;
    uint64_t cycles = 0;
    uint64_t checksum = 0;
};

/** The fixed tile workload: geometry, burst length, operand slabs. */
struct Workload
{
    TileConfig tile;
    int steps = 0;
    int burst = 32; //!< Steps per output block (accumulator reset).
    std::vector<BFloat16> a; //!< [step][col * lanes + l]
    std::vector<BFloat16> b; //!< [step][row * lanes + l]
};

Workload
makeWorkload(const ModelInfo &model, int steps, uint64_t seed)
{
    Workload w;
    w.tile = AcceleratorConfig::paperDefault().tile;
    w.steps = steps;
    const int lanes = w.tile.pe.lanes;
    const size_t a_len = static_cast<size_t>(w.tile.cols) * lanes;
    const size_t b_len = static_cast<size_t>(w.tile.rows) * lanes;

    ValueProfile serial =
        model.profile.of(TensorKind::Activation).at(0.5);
    ValueProfile parallel = model.profile.of(TensorKind::Weight).at(0.5);
    TensorGenerator a_gen(serial, seed);
    TensorGenerator b_gen(parallel, seed ^ 0x5eed);
    w.a.resize(static_cast<size_t>(steps) * a_len);
    w.b.resize(static_cast<size_t>(steps) * b_len);
    a_gen.fill(w.a.data(), w.a.size());
    b_gen.fill(w.b.data(), w.b.size());
    return w;
}

/** Time the seed-parity algorithm over the workload. */
TileTiming
runSeedSerial(const Workload &w)
{
    const int lanes = w.tile.pe.lanes;
    const size_t a_len = static_cast<size_t>(w.tile.cols) * lanes;
    const size_t b_len = static_cast<size_t>(w.tile.rows) * lanes;

    ReferenceTile tile(w.tile.pe, w.tile.rows, w.tile.cols,
                       w.tile.bufferDepth);
    TileTiming t;
    Checksum sum;
    double t0 = now();
    for (int s = 0; s < w.steps; s += w.burst) {
        size_t burst = static_cast<size_t>(
            std::min(w.burst, w.steps - s));
        ReferenceTileResult res =
            tile.run(w.a.data() + static_cast<size_t>(s) * a_len,
                     w.b.data() + static_cast<size_t>(s) * b_len, burst);
        t.cycles += res.cycles;
        for (int r = 0; r < w.tile.rows; ++r)
            for (int c = 0; c < w.tile.cols; ++c)
                sum.add(tile.output(r, c));
        tile.resetAccumulators();
    }
    t.seconds = now() - t0;
    sum.add(t.cycles);
    sum.add(tile.aggregateStats());
    t.checksum = sum.value();
    return t;
}

/** Time the optimized engine over the workload at a thread count. */
TileTiming
runOptimized(const Workload &w, int threads)
{
    const int lanes = w.tile.pe.lanes;
    const size_t a_len = static_cast<size_t>(w.tile.cols) * lanes;
    const size_t b_len = static_cast<size_t>(w.tile.rows) * lanes;

    SimEngine engine(threads);
    Tile tile(w.tile);
    std::vector<TileStepView> views(static_cast<size_t>(w.burst));
    TileTiming t;
    Checksum sum;
    double t0 = now();
    for (int s = 0; s < w.steps; s += w.burst) {
        size_t burst = static_cast<size_t>(
            std::min(w.burst, w.steps - s));
        for (size_t i = 0; i < burst; ++i) {
            size_t step = static_cast<size_t>(s) + i;
            views[i] = TileStepView{w.a.data() + step * a_len,
                                    w.b.data() + step * b_len};
        }
        TileRunResult res = tile.run(views.data(), burst, &engine);
        t.cycles += res.cycles;
        for (int r = 0; r < w.tile.rows; ++r)
            for (int c = 0; c < w.tile.cols; ++c)
                sum.add(tile.output(r, c));
        tile.resetAccumulators();
    }
    t.seconds = now() - t0;
    sum.add(t.cycles);
    sum.add(tile.aggregateStats());
    t.checksum = sum.value();
    return t;
}

uint64_t
reportChecksum(const ModelRunReport &r)
{
    Checksum sum;
    sum.add(r.fprCycles);
    sum.add(r.baseCycles);
    sum.add(r.fprEnergy.totalPj());
    sum.add(r.baseEnergy.totalPj());
    for (const LayerOpReport &op : r.ops) {
        sum.add(op.fprCycles);
        sum.add(op.baseCycles);
        sum.add(op.avgCyclesPerStep);
        sum.add(op.trafficBytesCompressed);
        sum.add(op.sampleStats);
    }
    return sum.value();
}

REGISTER_EXPERIMENT("perf_regression", "Perf",
                    "perf regression: wall-clock trajectory "
                    "(BENCH_PR<N>.json) + determinism gate",
                    "kernel, sweep, and generation throughput no "
                    "worse than BENCH_PR3.json; checksums "
                    "bit-identical across the seed, serial, parallel, "
                    "sweep, and slab-generation paths")
{
    // The legacy harness defaulted to 8 threads regardless of
    // FPRAKER_THREADS; an explicit --threads=N still wins.
    const int threads = session.threadsExplicit()
                            ? session.requestedThreads()
                            : 8;
    const int steps =
        session.intOption("steps", session.sampleSteps(4096));
    const int reps = session.intOption("reps", 3);
    const std::string out_path =
        session.strOption("out", "BENCH_PR10.json");

    const char *model_name = "ResNet18-Q";
    const ModelInfo &model = findModel(model_name);
    const uint64_t seed = 0xf9a4e5;
    Workload w = makeWorkload(model, steps, seed);
    const uint64_t sets =
        static_cast<uint64_t>(w.steps) * w.tile.cols;

    Result res;
    res.defaultJsonPath = out_path;
    // This experiment drives its own engines at `threads` and samples
    // `steps` tile steps, not the session defaults — record the knobs
    // actually used so the provenance reproduces the run.
    res.threads = threads;
    res.sampleSteps = steps;

    // Best-of-N: each configuration re-runs the identical workload
    // from a fresh tile; the minimum wall time is the least-perturbed
    // sample and every rep must checksum identically.
    bool deterministic_reps = true;
    auto best = [&](const std::function<TileTiming()> &f) {
        TileTiming best_t = f();
        for (int i = 1; i < reps; ++i) {
            TileTiming t = f();
            if (t.checksum != best_t.checksum)
                deterministic_reps = false;
            if (t.seconds < best_t.seconds)
                best_t = t;
        }
        return best_t;
    };
    TileTiming seed_t = best([&] { return runSeedSerial(w); });
    TileTiming serial_t = best([&] { return runOptimized(w, 1); });
    TileTiming par_t = best([&] { return runOptimized(w, threads); });

    bool tile_identical = seed_t.checksum == serial_t.checksum &&
                          seed_t.checksum == par_t.checksum;
    double speedup_serial = seed_t.seconds / serial_t.seconds;
    double speedup_parallel = seed_t.seconds / par_t.seconds;

    char caption[128];
    std::snprintf(caption, sizeof(caption),
                  "tile kernel: %d steps (%" PRIu64
                  " column-sets), %dx%d tile",
                  w.steps, sets, w.tile.rows, w.tile.cols);
    ResultTable &kt = res.table("tile_kernel",
                                {"config", "seconds", "sets/s",
                                 "vs seed", "checksum"});
    kt.caption = caption;
    kt.addRow({"seed serial", Table::cell(seed_t.seconds, 3),
               Table::cell(sets / seed_t.seconds, 0), "1.00",
               hex16(seed_t.checksum)});
    kt.addRow({"optimized serial", Table::cell(serial_t.seconds, 3),
               Table::cell(sets / serial_t.seconds, 0),
               Table::cell(speedup_serial), hex16(serial_t.checksum)});
    kt.addRow({std::to_string(threads) + " threads",
               Table::cell(par_t.seconds, 3),
               Table::cell(sets / par_t.seconds, 0),
               Table::cell(speedup_parallel), hex16(par_t.checksum)});

    // Sweep section: several whole tile-kernel jobs submitted through
    // a single SweepRunner. Jobs replicate the kernel workload (same
    // model profile, so sets/sec stays comparable across the
    // BENCH_PR<N> trajectory) with per-job RNG substreams, and
    // pre-generate their slabs untimed; the timed region is the
    // sharded simulation itself. Every thread count must reproduce
    // the same combined checksum.
    const size_t sweep_jobs = 6;
    const int sweep_steps = std::max(1, steps / 2);
    std::vector<Workload> sweep_w;
    for (size_t j = 0; j < sweep_jobs; ++j)
        sweep_w.push_back(
            makeWorkload(model, sweep_steps, substreamSeed(seed, j)));
    const uint64_t sweep_sets = static_cast<uint64_t>(sweep_jobs) *
                                static_cast<uint64_t>(sweep_steps) *
                                w.tile.cols;

    const int sweep_threads[3] = {1, 2, 8};
    double sweep_s[3] = {};
    uint64_t sweep_sum[3] = {};
    for (int ti = 0; ti < 3; ++ti) {
        auto run_once = [&]() {
            SweepRunner runner(sweep_threads[ti]);
            std::vector<uint64_t> job_sums(sweep_jobs);
            TileTiming t;
            double t0 = now();
            runner.parallelFor(sweep_jobs, [&](size_t j) {
                TileTiming jt = runOptimized(sweep_w[j], 1);
                job_sums[j] = jt.checksum;
            });
            t.seconds = now() - t0;
            Checksum sum;
            for (uint64_t s_j : job_sums)
                sum.add(s_j);
            t.checksum = sum.value();
            return t;
        };
        TileTiming t = best(run_once);
        sweep_s[ti] = t.seconds;
        sweep_sum[ti] = t.checksum;
    }
    bool sweep_identical = sweep_sum[0] == sweep_sum[1] &&
                           sweep_sum[0] == sweep_sum[2];
    double sweep_best_s = std::min({sweep_s[0], sweep_s[1], sweep_s[2]});

    std::snprintf(caption, sizeof(caption),
                  "sweep: %zu tile-kernel jobs (%d steps each, %" PRIu64
                  " column-sets total) via SweepRunner",
                  sweep_jobs, sweep_steps, sweep_sets);
    ResultTable &st = res.table(
        "sweep", {"threads", "seconds", "sets/s", "checksum"});
    st.caption = caption;
    for (int ti = 0; ti < 3; ++ti)
        st.addRow({std::to_string(sweep_threads[ti]),
                   Table::cell(sweep_s[ti], 3),
                   Table::cell(sweep_sets / sweep_s[ti], 0),
                   hex16(sweep_sum[ti])});

    // Model sweep: full accelerator runs (the Fig. 11 unit of work)
    // for three models through one runner, serial vs parallel.
    const char *sweep_models[3] = {"ResNet18-Q", "SNLI",
                                   "SqueezeNet 1.1"};
    AcceleratorConfig mcfg = AcceleratorConfig::paperDefault();
    mcfg.sampleSteps = session.sampleSteps(96);
    // The serial run would warm the memo for the parallel run,
    // contaminating the serial-vs-parallel comparison; values are
    // bit-identical either way, so turn it off for this section.
    mcfg.memoize = false;
    auto model_sweep = [&](int t) {
        SweepRunner runner(t);
        const Accelerator &accel = runner.addAccelerator(mcfg);
        std::vector<SweepJob> jobs;
        for (const char *name : sweep_models)
            jobs.push_back(SweepJob{&accel, &findModel(name), 0.5});
        double t0 = now();
        std::vector<ModelRunReport> reports = runner.runModels(jobs);
        double secs = now() - t0;
        Checksum sum;
        for (const ModelRunReport &r : reports)
            sum.add(reportChecksum(r));
        return std::pair<double, uint64_t>(secs, sum.value());
    };
    auto [model_serial_s, model_sum_1] = model_sweep(1);
    auto [model_parallel_s, model_sum_n] = model_sweep(threads);
    bool model_identical = model_sum_1 == model_sum_n;

    std::snprintf(caption, sizeof(caption),
                  "model sweep (3 models, %d sample steps/op):",
                  mcfg.sampleSteps);
    ResultTable &mt = res.table(
        "model_sweep", {"mode", "seconds", "speedup", "checksum"});
    mt.caption = caption;
    mt.addRow({"serial", Table::cell(model_serial_s, 3), "1.00",
               hex16(model_sum_1)});
    mt.addRow({std::to_string(threads) + " threads",
               Table::cell(model_parallel_s, 3),
               Table::cell(model_serial_s / model_parallel_s),
               hex16(model_sum_n)});

    // Generation section: the tensor data-supply path. Scalar
    // value-at-a-time walk vs the batched slab path over the same
    // profile/seed (digests must match bit for bit), plus the scalar
    // vs SIMD term classifier over the kernel's A slab.
    const size_t gen_n = std::max<size_t>(w.a.size(), 4096);
    std::vector<BFloat16> gen_buf(gen_n);
    ValueProfile gen_profile =
        model.profile.of(TensorKind::Activation).at(0.5);
    auto gen_run = [&](bool batched) {
        TensorGenerator gen(gen_profile, seed ^ 0x6e6);
        TileTiming t;
        double t0 = now();
        if (batched)
            gen.fill(gen_buf.data(), gen_n);
        else
            gen.fillScalar(gen_buf.data(), gen_n);
        t.seconds = now() - t0;
        Checksum sum;
        sum.addBytes(gen_buf.data(), gen_buf.size() * sizeof(BFloat16));
        t.checksum = sum.value();
        return t;
    };
    TileTiming gen_scalar_t = best([&] { return gen_run(false); });
    TileTiming gen_batched_t = best([&] { return gen_run(true); });
    bool gen_identical = gen_scalar_t.checksum == gen_batched_t.checksum;
    double gen_speedup = gen_scalar_t.seconds / gen_batched_t.seconds;

    const TermLut &lut = TermLut::of(TermEncoding::Canonical);
    auto count_run = [&](bool simd) {
        TileTiming t;
        uint64_t zeros = 0, terms = 0;
        double t0 = now();
        if (simd)
            slab::countTerms(w.a.data(), w.a.size(),
                             lut.countsTable(), lut.nibbleLut(),
                             &zeros, &terms);
        else
            slab::countTermsScalar(w.a.data(), w.a.size(),
                                   lut.countsTable(), &zeros, &terms);
        t.seconds = now() - t0;
        Checksum sum;
        sum.add(zeros);
        sum.add(terms);
        t.checksum = sum.value();
        return t;
    };
    TileTiming count_scalar_t = best([&] { return count_run(false); });
    TileTiming count_simd_t = best([&] { return count_run(true); });
    bool count_identical =
        count_scalar_t.checksum == count_simd_t.checksum;
    double count_speedup = count_scalar_t.seconds / count_simd_t.seconds;

    std::snprintf(caption, sizeof(caption),
                  "generation: %zu values (batched slab path, SIMD "
                  "level %s)",
                  gen_n, slab::simdLevel());
    ResultTable &gt = res.table(
        "generation", {"path", "seconds", "values/s", "speedup"});
    gt.caption = caption;
    gt.addRow({"tensor-gen scalar", Table::cell(gen_scalar_t.seconds, 4),
               Table::cell(gen_n / gen_scalar_t.seconds, 0), "1.00"});
    gt.addRow({"tensor-gen batched",
               Table::cell(gen_batched_t.seconds, 4),
               Table::cell(gen_n / gen_batched_t.seconds, 0),
               Table::cell(gen_speedup)});
    gt.addRow({"term-count scalar",
               Table::cell(count_scalar_t.seconds, 4),
               Table::cell(w.a.size() / count_scalar_t.seconds, 0),
               "1.00"});
    gt.addRow({"term-count " + std::string(slab::simdLevel()),
               Table::cell(count_simd_t.seconds, 4),
               Table::cell(w.a.size() / count_simd_t.seconds, 0),
               Table::cell(count_speedup)});

    // Workload ingestion (PR 8): one im2col-lowered conv phase
    // (AlexNet conv2 forward), operand streams supplied two ways —
    // synthesized by the generator-backed supply vs replayed from a
    // recorded PhaseTrace — through the same SlabSupply seam the
    // phase runner consumes. The streams must be bit-identical; the
    // replay should stay ahead of synthesis (it is a window copy).
    const workload::CatalogModel &wl_cat =
        workload::findWorkloadModel("AlexNet");
    workload::LoweredModel wl_model(wl_cat,
                                    workload::BatchGeometry{16, 64});
    AcceleratorConfig wl_cfg = AcceleratorConfig::paperDefault();
    wl_cfg.sampleSteps = steps;
    size_t wl_unit = 0;
    for (size_t i = 0; i < wl_model.units().size(); ++i)
        if (wl_model.units()[i].layer->name == "conv2" &&
            wl_model.units()[i].op == TrainingOp::Forward)
            wl_unit = i;
    const PhasePlan wl_plan =
        workload::unitPlan(wl_model, wl_unit, wl_cfg, 0.5);
    workload::PhaseTrace wl_trace =
        workload::PhaseTrace::capture(wl_plan);
    workload::TraceSlabSupply wl_replay(wl_trace);
    GeneratorSlabSupply wl_gen(wl_plan.serialProfile,
                               wl_plan.parallelProfile,
                               wl_plan.baseSeed);
    const size_t wl_values = wl_trace.serialValues().size() +
                             wl_trace.parallelValues().size();
    // Small --steps budgets (CI smoke) make one pass too short to
    // time; repeat the identical fill loop until the work is a few
    // million values. The round count is a pure function of the
    // knobs, so reps stay comparable and the digest covers one pass.
    const int wl_rounds = std::max<int>(
        1, static_cast<int>(4000000 / std::max<size_t>(1, wl_values)));
    std::vector<BFloat16> wl_sbuf(wl_trace.serialValues().size());
    std::vector<BFloat16> wl_pbuf(wl_trace.parallelValues().size());
    auto wl_run = [&](const SlabSupply &supply) {
        TileTiming t;
        double t0 = now();
        for (int round = 0; round < wl_rounds; ++round) {
            size_t s_off = 0, p_off = 0;
            for (size_t bi = 0; bi < wl_plan.bursts; ++bi) {
                const size_t sb = wl_plan.burstSteps(bi);
                supply.fillSerial(bi, wl_sbuf.data() + s_off,
                                  sb * wl_plan.aLen);
                supply.fillParallel(bi, wl_pbuf.data() + p_off,
                                    sb * wl_plan.bLen);
                s_off += sb * wl_plan.aLen;
                p_off += sb * wl_plan.bLen;
            }
        }
        t.seconds = now() - t0;
        Checksum sum;
        sum.addBytes(wl_sbuf.data(),
                     wl_sbuf.size() * sizeof(BFloat16));
        sum.addBytes(wl_pbuf.data(),
                     wl_pbuf.size() * sizeof(BFloat16));
        t.checksum = sum.value();
        return t;
    };
    TileTiming wl_gen_t = best([&] { return wl_run(wl_gen); });
    TileTiming wl_trace_t = best([&] { return wl_run(wl_replay); });
    bool wl_identical = wl_gen_t.checksum == wl_trace_t.checksum;
    const double wl_total =
        static_cast<double>(wl_values) * wl_rounds;

    std::snprintf(caption, sizeof(caption),
                  "workload ingestion: AlexNet@b16/conv2 fwd, %zu "
                  "values x %d rounds",
                  wl_values, wl_rounds);
    ResultTable &wt = res.table(
        "workload_ingestion", {"path", "seconds", "values/s",
                               "digest"});
    wt.caption = caption;
    wt.addRow({"generator (synthesize)",
               Table::cell(wl_gen_t.seconds, 4),
               Table::cell(wl_total / wl_gen_t.seconds, 0),
               hex16(wl_gen_t.checksum)});
    wt.addRow({"trace (replay)", Table::cell(wl_trace_t.seconds, 4),
               Table::cell(wl_total / wl_trace_t.seconds, 0),
               hex16(wl_trace_t.checksum)});

    // Memoization (PR 9): the same conv phase simulated end-to-end
    // through runPhaseSample over the trace supply — memo off, cold
    // (fresh memo: every burst misses, inserts, and still simulates),
    // warm (primed memo: every burst hits, skipping the tile) — plus
    // the phase grain over the generator supply (a warm hit skips
    // even operand generation). Memo state must never change results,
    // so all five digests must be identical.
    const ModelInfo &wl_carrier = wl_model.carrierOf(wl_unit);
    const workload::WorkloadUnit &wl_u = wl_model.units()[wl_unit];
    uint64_t memo_run_hits = 0;
    auto memo_phase = [&](const SlabSupply *supply, SimMemo *memo,
                          bool memoize) {
        // Mirror workload::unitPlan's PhaseRunConfig so the plan (and
        // thus the streams) match the ingestion section above.
        PhaseRunConfig prc;
        prc.tile = wl_cfg.tile;
        prc.sampleSteps = wl_cfg.sampleSteps;
        prc.seed = wl_cfg.seed;
        prc.autoSerialSide = wl_cfg.autoSerialSide;
        prc.supply = supply;
        prc.memo = memo;
        prc.memoize = memoize;
        TileTiming t;
        double t0 = now();
        PhaseRunResult pr = runPhaseSample(wl_carrier, wl_u.shape,
                                           wl_u.op, 0.5, prc);
        t.seconds = now() - t0;
        memo_run_hits = pr.memoHits;
        Checksum sum;
        sum.add(pr.avgCyclesPerStep);
        sum.add(pr.steps);
        sum.add(static_cast<uint64_t>(pr.serialSide));
        sum.add(pr.peStats);
        sum.add(pr.serialStats.values);
        sum.add(pr.serialStats.zeros);
        sum.add(pr.serialStats.terms);
        sum.add(pr.parallelStats.values);
        sum.add(pr.parallelStats.zeros);
        sum.add(pr.parallelStats.terms);
        t.checksum = sum.value();
        return t;
    };
    const size_t memo_budget = 64u << 20;
    TileTiming memo_off_t = best(
        [&] { return memo_phase(&wl_replay, nullptr, false); });
    TileTiming memo_cold_t = best([&] {
        SimMemo fresh(memo_budget);
        return memo_phase(&wl_replay, &fresh, true);
    });
    SimMemo warm_memo(memo_budget);
    memo_phase(&wl_replay, &warm_memo, true); // prime (untimed)
    TileTiming memo_warm_t = best(
        [&] { return memo_phase(&wl_replay, &warm_memo, true); });
    const uint64_t memo_warm_hits = memo_run_hits;
    SimMemo phase_memo(memo_budget);
    TileTiming memo_pcold_t = best([&] {
        SimMemo pfresh(memo_budget);
        return memo_phase(nullptr, &pfresh, true);
    });
    memo_phase(nullptr, &phase_memo, true); // prime (untimed)
    TileTiming memo_pwarm_t = best(
        [&] { return memo_phase(nullptr, &phase_memo, true); });
    const uint64_t memo_phase_hits = memo_run_hits;

    SimMemo::Stats memo_stats = warm_memo.stats();
    const double memo_hit_rate =
        memo_stats.hits + memo_stats.misses
            ? static_cast<double>(memo_stats.hits) /
                  static_cast<double>(memo_stats.hits +
                                      memo_stats.misses)
            : 0.0;
    bool memo_identical =
        memo_off_t.checksum == memo_cold_t.checksum &&
        memo_off_t.checksum == memo_warm_t.checksum &&
        memo_off_t.checksum == memo_pcold_t.checksum &&
        memo_off_t.checksum == memo_pwarm_t.checksum &&
        memo_warm_hits > 0 && memo_phase_hits > 0;
    double memo_speedup = memo_cold_t.seconds / memo_warm_t.seconds;

    std::snprintf(caption, sizeof(caption),
                  "memo: AlexNet@b16/conv2 fwd, %d steps in %zu "
                  "bursts (%" PRIu64 " warm hits)",
                  wl_cfg.sampleSteps, wl_plan.bursts, memo_warm_hits);
    ResultTable &memo_table = res.table(
        "memo", {"path", "seconds", "steps/s", "digest"});
    memo_table.caption = caption;
    auto memo_row = [&](const char *name, const TileTiming &t) {
        memo_table.addRow(
            {name, Table::cell(t.seconds, 4),
             Table::cell(wl_cfg.sampleSteps / t.seconds, 0),
             hex16(t.checksum)});
    };
    memo_row("off", memo_off_t);
    memo_row("burst cold", memo_cold_t);
    memo_row("burst warm", memo_warm_t);
    memo_row("phase cold", memo_pcold_t);
    memo_row("phase warm", memo_pwarm_t);

    // Functional-baseline tile: the batched row walk, serial vs
    // row-sharded across an engine (BaselineTile::run's PE rows are
    // independent given the pre-decoded batch). Steps reuse the
    // kernel workload's slabs, built untimed.
    const size_t base_steps_n =
        std::min<size_t>(static_cast<size_t>(w.steps), 1024);
    const size_t base_a_len =
        static_cast<size_t>(w.tile.cols) * w.tile.pe.lanes;
    const size_t base_b_len =
        static_cast<size_t>(w.tile.rows) * w.tile.pe.lanes;
    std::vector<TileStep> base_steps(base_steps_n);
    for (size_t s = 0; s < base_steps_n; ++s) {
        base_steps[s].a.assign(w.a.begin() + s * base_a_len,
                               w.a.begin() + (s + 1) * base_a_len);
        base_steps[s].b.assign(w.b.begin() + s * base_b_len,
                               w.b.begin() + (s + 1) * base_b_len);
    }
    auto base_run = [&](int bt) {
        SimEngine bengine(bt);
        BaselineTile btile(w.tile);
        TileTiming t;
        double t0 = now();
        btile.run(base_steps, bt > 1 ? &bengine : nullptr);
        t.seconds = now() - t0;
        Checksum sum;
        for (int r = 0; r < w.tile.rows; ++r)
            for (int c = 0; c < w.tile.cols; ++c)
                sum.add(btile.output(r, c));
        BaselinePeStats bs = btile.aggregateStats();
        sum.add(bs.cycles);
        sum.add(bs.sets);
        sum.add(bs.macs);
        sum.add(bs.ineffectualMacs);
        t.checksum = sum.value();
        return t;
    };
    TileTiming base_serial_t = best([&] { return base_run(1); });
    TileTiming base_shard_t = best([&] { return base_run(threads); });
    bool base_identical =
        base_serial_t.checksum == base_shard_t.checksum;
    // Below kShardMinMacs the sharded call falls back to the serial
    // walk (PR 9: the fork/join barrier cost more than this batch —
    // BENCH_PR8 measured 0.83x), so its "speedup" is serial-vs-serial
    // noise. When the batch IS large enough to shard, a speedup below
    // 1.0 would mean the threshold is mis-set — fail loudly.
    const bool base_shard_fallback =
        threads <= 1 ||
        base_steps_n * static_cast<uint64_t>(
                           w.tile.rows * w.tile.cols *
                           w.tile.pe.lanes) <
            BaselineTile::kShardMinMacs;
    const double base_speedup =
        base_serial_t.seconds / base_shard_t.seconds;
    if (!base_shard_fallback && base_speedup < 1.0)
        res.fail("baseline tile sharding slower than serial above "
                 "the work threshold");

    std::snprintf(caption, sizeof(caption),
                  "baseline tile: %zu steps, rows sharded at %d "
                  "threads",
                  base_steps_n, threads);
    ResultTable &bt_table = res.table(
        "baseline_tile", {"mode", "seconds", "steps/s", "digest"});
    bt_table.caption = caption;
    bt_table.addRow({"serial", Table::cell(base_serial_t.seconds, 4),
                     Table::cell(base_steps_n / base_serial_t.seconds,
                                 0),
                     hex16(base_serial_t.checksum)});
    bt_table.addRow({std::to_string(threads) + " threads",
                     Table::cell(base_shard_t.seconds, 4),
                     Table::cell(base_steps_n / base_shard_t.seconds,
                                 0),
                     hex16(base_shard_t.checksum)});

    // Serving layer: cold/hot request replay against an in-process
    // JobScheduler (the PR 5 tentpole). Small spec budgets keep the
    // cold phase comparable across hosts; the hot path never touches
    // the engine.
    serve::ThroughputOptions serve_opts;
    serve_opts.engineThreads = 1;
    serve_opts.workers = 2;
    // A hot request is ~2us; thousands of them make the hot-path
    // req/s figure stable enough for the CI floor (a few hundred
    // measured in under a millisecond swing +-20% with scheduler
    // jitter alone).
    serve_opts.hotRequests = 4000;
    serve_opts.sampleStepsBase = 12;
    serve::ThroughputReport serve_r =
        serve::measureServeThroughput(serve_opts);
    bool serve_identical =
        serve_r.deterministic && serve_r.allHotCached;

    // Shed section (PR 6): an open-loop overload burst against a
    // bounded queue. Admission must reject the overflow with
    // retry_after hints while keeping accept latency flat, and every
    // shed spec must complete when resubmitted under the client
    // RetryPolicy — so the digest is run-invariant like the others.
    serve::ShedOptions shed_opts;
    shed_opts.engineThreads = 1;
    shed_opts.sampleStepsBase = 12;
    serve::ShedReport shed_r = serve::measureShedBehavior(shed_opts);
    bool shed_ok = shed_r.shed > 0 && shed_r.hintsOk &&
                   shed_r.drained && shed_r.completed;

    std::snprintf(caption, sizeof(caption),
                  "serving: %d cold specs, %d hot requests "
                  "(scheduler workers=%d)",
                  serve_opts.distinctSpecs, serve_opts.hotRequests,
                  serve_opts.workers);
    ResultTable &sv = res.table(
        "serving", {"path", "requests", "seconds", "req/s"});
    sv.caption = caption;
    sv.addRow({"cold (simulate)",
               std::to_string(serve_opts.distinctSpecs),
               Table::cell(serve_r.coldSeconds, 4),
               Table::cell(serve_r.coldRps, 1)});
    sv.addRow({"hot (cache)", std::to_string(serve_opts.hotRequests),
               Table::cell(serve_r.hotSeconds, 4),
               Table::cell(serve_r.hotRps, 1)});

    std::snprintf(caption, sizeof(caption),
                  "shed: burst of %d cold specs at queue depth %llu "
                  "(workers=%d)",
                  shed_opts.burst,
                  static_cast<unsigned long long>(
                      shed_opts.queueDepth),
                  shed_opts.workers);
    ResultTable &sh = res.table(
        "shed", {"accepted", "shed", "retries", "submit p99 ms"});
    sh.caption = caption;
    sh.addRow({std::to_string(shed_r.accepted),
               std::to_string(shed_r.shed),
               std::to_string(shed_r.retryAttempts),
               Table::cell(shed_r.submitP99Ms, 4)});
    if (!shed_ok)
        res.fail("overload shedding contract violated (no sheds, "
                 "missing hints, undrained queue, or an incomplete "
                 "spec)");

    // Telemetry overhead (PR 10): what one instrumented-but-idle seam
    // costs per operation. Counter adds and histogram observes are
    // padded relaxed atomics; a TraceSpan with tracing disabled is
    // one relaxed load plus a branch. Measured over tight loops,
    // best-of-reps; no checksums (pure timing, like every section's
    // seconds columns).
    obs::Counter &tele_counter = obs::Registry::instance().counter(
        "bench.telemetry.counter",
        "perf_regression overhead probe (not a product metric)");
    obs::Histogram &tele_hist = obs::Registry::instance().histogram(
        "bench.telemetry.histogram",
        "perf_regression overhead probe (not a product metric)",
        obs::Buckets::latency());
    const uint64_t tele_ops = 1u << 21;
    auto tele_ns = [&](const std::function<void(uint64_t)> &op) {
        double best_s = 1e300;
        for (int r = 0; r < reps; ++r) {
            double t0 = now();
            for (uint64_t i = 0; i < tele_ops; ++i)
                op(i);
            best_s = std::min(best_s, now() - t0);
        }
        return best_s / static_cast<double>(tele_ops) * 1e9;
    };
    double tele_counter_ns =
        tele_ns([&](uint64_t) { tele_counter.add(); });
    double tele_hist_ns = tele_ns(
        [&](uint64_t i) { tele_hist.observe(1e-6 * (i & 1023)); });
    // Only meaningful with tracing off (the idle-seam case the floor
    // gates); under --trace-out the loop would also append millions
    // of real events, so skip it and let the floor gate pass through.
    const bool tele_tracing_on =
        obs::TraceCollector::instance().enabled();
    double tele_span_ns =
        tele_tracing_on ? 0.0 : tele_ns([&](uint64_t) {
            obs::TraceSpan span("bench", std::string());
        });

    ResultTable &tele_table =
        res.table("telemetry", {"op", "ns/op"});
    tele_table.caption =
        "telemetry: obs hot-path overhead (idle seams)";
    tele_table.addRow({"counter add",
                       Table::cell(tele_counter_ns, 1)});
    tele_table.addRow({"histogram observe",
                       Table::cell(tele_hist_ns, 1)});
    tele_table.addRow({"span (tracing off)",
                       tele_tracing_on
                           ? std::string("skipped (tracing on)")
                           : Table::cell(tele_span_ns, 1)});

    bool all_identical = deterministic_reps && tile_identical &&
                         sweep_identical && model_identical &&
                         gen_identical && count_identical &&
                         wl_identical && memo_identical &&
                         base_identical && serve_identical;
    res.note(std::string("bit-identical: ") +
             (all_identical ? "yes" : "NO — REGRESSION"));
    if (!all_identical)
        res.fail("diverging checksums across configurations");

    const unsigned hc = std::thread::hardware_concurrency();
    if (hc <= 1)
        res.note("single-CPU host: the parallel/sweep thread rows "
                 "measure scheduling overhead, not scaling — the "
                 "serial rows and the generation section are the "
                 "comparable numbers (see docs/PERFORMANCE.md)");

    // ---------------------------------------------------- JSON groups
    // Key names and order mirror the BENCH_PR1/PR2 documents so the
    // smoke-checksum gate and the perf trajectory stay greppable.
    res.group("workload_config")
        .metric("model", model_name)
        .metric("reps", reps)
        .metric("steps", w.steps)
        .metric("column_sets", sets)
        .metric("tile", std::to_string(w.tile.rows) + "x" +
                            std::to_string(w.tile.cols))
        .metric("seed", seed);
    res.group("tile_kernel")
        .metric("threads", threads)
        .metric("seed_serial_s", seed_t.seconds, 6)
        .metric("optimized_serial_s", serial_t.seconds, 6)
        .metric("parallel_s", par_t.seconds, 6)
        .metric("sets_per_sec_seed", sets / seed_t.seconds, 1)
        .metric("sets_per_sec_serial", sets / serial_t.seconds, 1)
        .metric("sets_per_sec_parallel", sets / par_t.seconds, 1)
        .metric("speedup_serial_vs_seed", speedup_serial, 3)
        .metric("speedup_vs_serial", speedup_parallel, 3)
        .metric("checksum_seed", hex16(seed_t.checksum))
        .metric("checksum_serial", hex16(serial_t.checksum))
        .metric("checksum_parallel", hex16(par_t.checksum))
        .metric("bit_identical", tile_identical);
    MetricGroup &sweep_g = res.group("sweep");
    sweep_g.metric("jobs", sweep_jobs)
        .metric("steps_per_job", sweep_steps)
        .metric("column_sets", sweep_sets);
    for (int ti = 0; ti < 3; ++ti) {
        const std::string suffix =
            "_t" + std::to_string(sweep_threads[ti]);
        sweep_g.metric("seconds" + suffix, sweep_s[ti], 6)
            .metric("sets_per_sec" + suffix,
                    sweep_sets / sweep_s[ti], 1)
            .metric("checksum" + suffix, hex16(sweep_sum[ti]));
    }
    sweep_g.metric("sets_per_sec_best", sweep_sets / sweep_best_s, 1)
        .metric("bit_identical", sweep_identical);
    res.group("model_sweep")
        .metric("models", std::string(sweep_models[0]) + ", " +
                              sweep_models[1] + ", " + sweep_models[2])
        .metric("sample_steps", mcfg.sampleSteps)
        .metric("serial_s", model_serial_s, 6)
        .metric("parallel_s", model_parallel_s, 6)
        .metric("speedup", model_serial_s / model_parallel_s, 3)
        .metric("checksum_serial", hex16(model_sum_1))
        .metric("checksum_parallel", hex16(model_sum_n))
        .metric("bit_identical", model_identical);
    // (Digest keys deliberately avoid the "checksum" prefix: the CI
    // smoke gate diffs the checksum_* key sequence against
    // bench/SMOKE_BASELINE.json, which predates this section.)
    res.group("generation")
        .metric("values", static_cast<uint64_t>(gen_n))
        .metric("simd_level", slab::simdLevel())
        .metric("scalar_s", gen_scalar_t.seconds, 6)
        .metric("batched_s", gen_batched_t.seconds, 6)
        .metric("values_per_sec_scalar", gen_n / gen_scalar_t.seconds,
                1)
        .metric("values_per_sec_batched",
                gen_n / gen_batched_t.seconds, 1)
        .metric("speedup_batched", gen_speedup, 3)
        .metric("digest_scalar", hex16(gen_scalar_t.checksum))
        .metric("digest_batched", hex16(gen_batched_t.checksum))
        .metric("count_scalar_s", count_scalar_t.seconds, 6)
        .metric("count_simd_s", count_simd_t.seconds, 6)
        .metric("count_speedup", count_speedup, 3)
        .metric("digest_count_scalar", hex16(count_scalar_t.checksum))
        .metric("digest_count_simd", hex16(count_simd_t.checksum))
        .metric("bit_identical", gen_identical && count_identical);
    // (Digest keys, like generation's: the smoke gate's checksum_*
    // sequence predates this section.)
    res.group("workload")
        .metric("unit", "AlexNet@b16/conv2 fwd")
        .metric("values", static_cast<uint64_t>(wl_values))
        .metric("rounds", wl_rounds)
        .metric("generator_s", wl_gen_t.seconds, 6)
        .metric("trace_s", wl_trace_t.seconds, 6)
        .metric("values_per_sec_generator",
                wl_total / wl_gen_t.seconds, 1)
        .metric("values_per_sec_trace",
                wl_total / wl_trace_t.seconds, 1)
        .metric("replay_speedup",
                wl_gen_t.seconds / wl_trace_t.seconds, 3)
        .metric("digest_generator", hex16(wl_gen_t.checksum))
        .metric("digest_trace", hex16(wl_trace_t.checksum))
        .metric("bit_identical", wl_identical);
    // (Digest keys, like generation's: the smoke gate's checksum_*
    // sequence predates this section.)
    res.group("memo")
        .metric("unit", "AlexNet@b16/conv2 fwd")
        .metric("steps", wl_cfg.sampleSteps)
        .metric("bursts", static_cast<uint64_t>(wl_plan.bursts))
        .metric("off_s", memo_off_t.seconds, 6)
        .metric("cold_s", memo_cold_t.seconds, 6)
        .metric("warm_s", memo_warm_t.seconds, 6)
        .metric("steps_per_sec_cold",
                wl_cfg.sampleSteps / memo_cold_t.seconds, 1)
        .metric("steps_per_sec_warm",
                wl_cfg.sampleSteps / memo_warm_t.seconds, 1)
        .metric("speedup_warm_vs_cold", memo_speedup, 3)
        .metric("warm_hits", memo_warm_hits)
        .metric("hit_rate", memo_hit_rate, 3)
        .metric("bytes_held", memo_stats.bytes)
        .metric("phase_cold_s", memo_pcold_t.seconds, 6)
        .metric("phase_warm_s", memo_pwarm_t.seconds, 6)
        .metric("speedup_phase_warm_vs_cold",
                memo_pcold_t.seconds / memo_pwarm_t.seconds, 3)
        .metric("digest_off", hex16(memo_off_t.checksum))
        .metric("digest_cold", hex16(memo_cold_t.checksum))
        .metric("digest_warm", hex16(memo_warm_t.checksum))
        .metric("digest_phase_cold", hex16(memo_pcold_t.checksum))
        .metric("digest_phase_warm", hex16(memo_pwarm_t.checksum))
        .metric("bit_identical", memo_identical);
    res.group("baseline_tile")
        .metric("steps", static_cast<uint64_t>(base_steps_n))
        .metric("serial_s", base_serial_t.seconds, 6)
        .metric("sharded_s", base_shard_t.seconds, 6)
        .metric("sharded_threads", threads)
        .metric("speedup_sharded", base_speedup, 3)
        .metric("shard_fallback", base_shard_fallback)
        .metric("digest_serial", hex16(base_serial_t.checksum))
        .metric("digest_sharded", hex16(base_shard_t.checksum))
        .metric("bit_identical", base_identical);
    serve::addServingGroup(res, serve_opts, serve_r);
    serve::addShedGroup(res, shed_opts, shed_r);
    res.group("telemetry")
        .metric("ops", tele_ops)
        .metric("counter_ns_per_op", tele_counter_ns, 2)
        .metric("histogram_ns_per_op", tele_hist_ns, 2)
        .metric("span_disabled_ns_per_op", tele_span_ns, 2)
        .metric("span_measured", !tele_tracing_on);
    res.group("host")
        .metric("hardware_concurrency", static_cast<int64_t>(hc))
        .metric("single_cpu_caveat", hc <= 1);

    // Wall-clock readings vary run to run; the determinism checksums
    // do not. Fingerprint over the latter so serial and parallel
    // `run --all` sweeps compare equal.
    Checksum fp;
    fp.add(seed_t.checksum);
    fp.add(serial_t.checksum);
    fp.add(par_t.checksum);
    for (uint64_t s_sum : sweep_sum)
        fp.add(s_sum);
    fp.add(model_sum_1);
    fp.add(model_sum_n);
    fp.add(gen_scalar_t.checksum);
    fp.add(gen_batched_t.checksum);
    fp.add(count_scalar_t.checksum);
    fp.add(count_simd_t.checksum);
    fp.add(wl_gen_t.checksum);
    fp.add(wl_trace_t.checksum);
    fp.add(memo_off_t.checksum);
    fp.add(memo_cold_t.checksum);
    fp.add(memo_warm_t.checksum);
    fp.add(memo_pcold_t.checksum);
    fp.add(memo_pwarm_t.checksum);
    fp.add(base_serial_t.checksum);
    fp.add(base_shard_t.checksum);
    fp.add(serve_r.digest);
    fp.add(shed_r.digest);
    fp.add(static_cast<uint64_t>(all_identical ? 1 : 0));
    res.setFingerprint(fp.value());

    // Memo provenance (opt-in, see result.h): mode reflects the
    // process-wide knob; counts come from this run's measured warm
    // memo. This document carries wall-clock readings and is never
    // byte-compared across runs, so the varying counts are safe here.
    res.memoMode = SimMemo::global() ? "on" : "off";
    res.memoHits = memo_stats.hits;
    res.memoMisses = memo_stats.misses;
    return res;
}

} // namespace
} // namespace fpraker
