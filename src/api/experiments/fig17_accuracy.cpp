/**
 * @file
 * Fig. 17 — end-to-end training accuracy with FPRaker's arithmetic
 * emulated in every MAC (the paper overrides PlaidML's mad() while
 * training ResNet18 on CIFAR-10/100; we train an MLP on the SynthCIFAR
 * substitute — see DESIGN.md for why the substitution preserves the
 * claim).
 */

#include <cstdio>

#include "api/api.h"
#include "train/trainer.h"

namespace fpraker {
namespace {

using namespace api;

REGISTER_EXPERIMENT("fig17", "Fig. 17",
                    "validation accuracy: native FP32 vs bf16 baseline "
                    "vs FPRaker-emulated arithmetic",
                    "all three curves converge together (paper: within "
                    "0.1% of each other at the final epoch) because "
                    "FPRaker skips only work that cannot affect the "
                    "accumulator")
{
    DatasetConfig dcfg;
    dcfg.classes = 10;
    dcfg.imageSize = 10;
    dcfg.trainSamples = 960;
    dcfg.testSamples = 320;
    dcfg.noise = 1.8; // hard enough that accuracy climbs over epochs
    DatasetPair data = makeSynthCifar(dcfg);

    TrainConfig tcfg;
    tcfg.hidden = {32};
    tcfg.epochs = 8;
    tcfg.batchSize = 32;
    tcfg.learningRate = 0.03f;

    // The three arithmetic modes train from the same seed on the same
    // (read-only) dataset; each run owns a private trainer and result
    // slot, so the modes shard across the session's engine.
    const MacMode modes[] = {MacMode::NativeFp32, MacMode::Bf16Chunked,
                             MacMode::FPRakerEmulated};
    TrainResult results[3];
    session.parallelFor(3, [&](size_t i) {
        MlpTrainer trainer(data, tcfg);
        results[i] = trainer.run(modes[i]);
    });
    const TrainResult &fp32 = results[0];
    const TrainResult &bf16c = results[1];
    const TrainResult &fpr = results[2];

    Result res;
    ResultTable &t = res.table("accuracy",
                               {"epoch", "Native_FP32", "Baseline_BF16",
                                "FPRaker_BF16"});
    for (int e = 0; e < tcfg.epochs; ++e) {
        t.addRow({std::to_string(e + 1),
                  Table::pct(fp32.testAccuracy[static_cast<size_t>(e)]),
                  Table::pct(bf16c.testAccuracy[static_cast<size_t>(e)]),
                  Table::pct(fpr.testAccuracy[static_cast<size_t>(e)])});
    }
    double d_bf16 =
        (fpr.finalAccuracy() - bf16c.finalAccuracy()) * 100.0;
    double d_fp32 = (fpr.finalAccuracy() - fp32.finalAccuracy()) * 100.0;
    char note[96];
    std::snprintf(note, sizeof(note),
                  "final-epoch deltas: FPRaker-vs-BF16 %+.2f%%, "
                  "FPRaker-vs-FP32 %+.2f%%",
                  d_bf16, d_fp32);
    res.note(note);
    res.scalar("final_delta_vs_bf16_pct", d_bf16);
    res.scalar("final_delta_vs_fp32_pct", d_fp32);
    return res;
}

} // namespace
} // namespace fpraker
