/**
 * @file
 * Extension — the workload catalog at a glance: described models,
 * their im2col/GEMM lowering at a batch geometry, the per-layer value
 * statistics driving synthesis, and the trace-backed ingestion parity
 * gate (trace-replayed phases must match generator-backed phases
 * exactly).
 */

#include <memory>

#include "api/api.h"
#include "workload/supply.h"

namespace fpraker {
namespace {

using namespace api;
using workload::BatchGeometry;
using workload::CatalogModel;
using workload::LoweredModel;
using workload::PhaseTrace;
using workload::TraceSlabSupply;
using workload::WorkloadUnit;

/** Exact-match check between a generator- and a trace-backed report. */
bool
sameReport(const LayerOpReport &a, const LayerOpReport &b)
{
    return a.fprCycles == b.fprCycles && a.baseCycles == b.baseCycles &&
           a.avgCyclesPerStep == b.avgCyclesPerStep &&
           a.sampleStats.termsProcessed == b.sampleStats.termsProcessed &&
           a.sampleStats.laneUseful == b.sampleStats.laneUseful &&
           a.serialSide == b.serialSide;
}

REGISTER_EXPERIMENT("ext_workload_catalog",
                    "Extension: workload catalog",
                    "described-model catalog, im2col lowering, and "
                    "trace-backed ingestion parity",
                    "lowered GEMM dims follow one transposition rule "
                    "per training op; trace-backed replay is "
                    "bit-identical to generator-backed synthesis")
{
    const BatchGeometry geom{session.intOption("batch", 16),
                             session.intOption("seq", 64)};

    AcceleratorConfig cfg = AcceleratorConfig::paperDefault();
    cfg.sampleSteps = session.sampleSteps(48);
    // The lowering folds the minibatch into GEMM M, so conv weights
    // are already fetched once per batch — no extra amortization.
    cfg.convWeightBatch = 1;
    const Accelerator &accel = session.withVariant("full", cfg);

    std::vector<std::unique_ptr<LoweredModel>> lowered;
    for (const CatalogModel &cm : workload::workloadCatalog())
        lowered.push_back(std::make_unique<LoweredModel>(cm, geom));

    Result res;
    ResultTable &cat = res.table(
        "catalog",
        {"model", "family", "layers", "units", "GMACs/iteration"});
    for (const auto &lm : lowered)
        cat.addRow({lm->model().name, lm->model().family,
                    std::to_string(lm->model().layers.size()),
                    std::to_string(lm->units().size()),
                    Table::cell(static_cast<double>(lm->totalMacs()) /
                                1e9)});

    // The lowering of every unit of one conv layer per model (the
    // transposition rule in the concrete).
    ResultTable &low = res.table(
        "lowering", {"unit", "op", "M", "N", "K", "kernelArea"});
    for (const auto &lm : lowered) {
        for (const WorkloadUnit &u : lm->units()) {
            if (u.layer != &lm->model().layers.front())
                continue;
            low.addRow({lm->name() + "/" + u.layer->name,
                        opLabel(u.op), std::to_string(u.shape.m),
                        std::to_string(u.shape.n),
                        std::to_string(u.shape.k),
                        std::to_string(u.shape.kernelArea)});
        }
    }

    // Measured value/term statistics of each model's mid-depth
    // activation stream (what the per-layer profiles synthesize).
    std::vector<std::string> labels;
    std::vector<double> value_sparsity, term_sparsity;
    for (const auto &lm : lowered) {
        const auto &layers = lm->model().layers;
        const auto &mid = layers[layers.size() / 2];
        ValueProfile p = workload::layerProfile(lm->model(), mid)
                             .activation.at(session.progress());
        TensorGenerator gen(p, cfg.seed ^ 0x9e37);
        TensorStats stats = measureTensor(gen.generate(4096));
        labels.push_back(lm->model().name);
        value_sparsity.push_back(stats.valueSparsity());
        term_sparsity.push_back(stats.termSparsity());
    }
    res.addSeries("value_sparsity", labels, value_sparsity);
    res.addSeries("term_sparsity", labels, term_sparsity);

    // Ingestion parity gate: replaying each model's first unit from a
    // captured trace must reproduce the generator-backed report
    // exactly (same cycles, same stall taxonomy, same serial side).
    std::vector<std::unique_ptr<PhaseTrace>> traces;
    std::vector<std::unique_ptr<TraceSlabSupply>> supplies;
    std::vector<SweepLayerJob> jobs;
    for (const auto &lm : lowered) {
        SweepLayerJob generator_job =
            lm->jobs(accel, session.progress()).front();
        traces.push_back(std::make_unique<PhaseTrace>(
            PhaseTrace::capture(workload::unitPlan(
                *lm, 0, cfg, session.progress()))));
        supplies.push_back(
            std::make_unique<TraceSlabSupply>(*traces.back()));
        SweepLayerJob trace_job = generator_job;
        trace_job.supply = supplies.back().get();
        jobs.push_back(generator_job);
        jobs.push_back(trace_job);
    }
    std::vector<LayerOpReport> reports = session.runLayerOps(jobs);

    bool parity = true;
    ResultTable &par = res.table(
        "trace_parity",
        {"unit", "speedup (generator)", "speedup (trace)", "identical"});
    for (size_t i = 0; i < lowered.size(); ++i) {
        const LayerOpReport &gen_r = reports[2 * i];
        const LayerOpReport &trace_r = reports[2 * i + 1];
        bool same = sameReport(gen_r, trace_r);
        parity = parity && same;
        par.addRow({gen_r.layerName, Table::cell(gen_r.speedup()),
                    Table::cell(trace_r.speedup()),
                    same ? "yes" : "NO"});
    }
    res.scalar("catalog_models",
               static_cast<int64_t>(lowered.size()));
    res.scalar("trace_parity", parity);
    if (!parity)
        res.fail("trace-backed replay diverged from the "
                 "generator-backed phase sample");
    return res;
}

} // namespace
} // namespace fpraker
