/**
 * @file
 * Fig. 21 — FPRaker with per-layer profiled accumulator widths (Sakr
 * et al.) vs a fixed-width accumulator, for AlexNet and ResNet18. A
 * narrower accumulator raises the out-of-bounds threshold's bite and
 * skips more terms; the bit-parallel baseline cannot convert that into
 * cycles.
 */

#include <map>

#include "api/api.h"
#include "train/acc_width_profiler.h"

namespace fpraker {
namespace {

using namespace api;

/** Build an ad-hoc ModelInfo around a layer list with conv-net-like
 * value profiles (these networks train unquantized on ImageNet). */
ModelInfo
makeModel(const std::string &name, std::vector<LayerShape> layers)
{
    ModelInfo m;
    m.name = name;
    m.application = "Image Classification";
    m.dataset = "ImageNet";
    m.layers = std::move(layers);
    // Borrow the natural-training conv-net statistics of VGG16.
    m.profile = findModel("VGG16").profile;
    return m;
}

/** Total FPRaker cycles for the model under a fixed or profiled
 * accumulator width; returns {AxW, GxW, AxG, total} cycles. */
struct PhaseCycles
{
    double axw = 0, gxw = 0, axg = 0;
    double total() const { return axw + gxw + axg; }
};

PhaseCycles
runWidths(Session &session, const std::string &prefix,
          const ModelInfo &model, bool profiled)
{
    AccWidthConfig wcfg;
    // Each (layer, op) carries its own profiled accumulator width.
    // Distinct widths need distinct accelerator variants, but many
    // units share a width (and the fixed sweep shares one config
    // outright), so variants dedupe by threshold — each variant's BDC
    // cache then warms once instead of once per unit.
    auto variant_for = [&](int ob_threshold) -> const Accelerator * {
        std::string name = prefix + "/ob" + std::to_string(ob_threshold);
        if (session.hasVariant(name))
            return &session.variant(name);
        AcceleratorConfig cfg = AcceleratorConfig::paperDefault();
        cfg.sampleSteps = session.sampleSteps(64);
        cfg.tile.pe.obThreshold = ob_threshold;
        return &session.withVariant(name, cfg);
    };
    const int default_threshold =
        AcceleratorConfig::paperDefault().tile.pe.obThreshold;

    std::vector<SweepLayerJob> jobs;
    for (const auto &layer : model.layers) {
        for (TrainingOp op : {TrainingOp::Forward, TrainingOp::InputGrad,
                              TrainingOp::WeightGrad}) {
            int threshold = profiled
                                ? requiredFracBits(
                                      accumulationLength(layer, op), wcfg)
                                : default_threshold;
            jobs.push_back(SweepLayerJob{variant_for(threshold), &model,
                                         &layer, op, kDefaultProgress});
        }
    }
    std::vector<LayerOpReport> reports = session.runLayerOps(jobs);

    PhaseCycles out;
    for (const LayerOpReport &r : reports) {
        switch (r.op) {
          case TrainingOp::Forward:
            out.axw += r.fprCycles;
            break;
          case TrainingOp::InputGrad:
            out.gxw += r.fprCycles;
            break;
          case TrainingOp::WeightGrad:
            out.axg += r.fprCycles;
            break;
        }
    }
    return out;
}

REGISTER_EXPERIMENT("fig21", "Fig. 21",
                    "per-layer profiled accumulator width vs fixed "
                    "width",
                    "profiled widths skip more out-of-bounds terms: "
                    "ResNet18 overall speedup improves substantially "
                    "over the fixed-width configuration (paper: 1.56x "
                    "vs 1.13x over the baseline)")
{
    Result res;
    ResultTable &t = res.table("acc_width",
                               {"network", "AxW cycles", "GxW cycles",
                                "AxG cycles", "total (norm. to fixed)"});
    for (auto &[name, layers] :
         {std::pair<std::string, std::vector<LayerShape>>{
              "AlexNet", alexnetLayers()},
          {"ResNet18", resnet18Layers()}}) {
        ModelInfo model = makeModel(name, layers);
        PhaseCycles fixed =
            runWidths(session, name + "-fixed", model, false);
        PhaseCycles prof =
            runWidths(session, name + "-prof", model, true);
        auto pct = [&](double v, double ref) {
            return Table::pct(v / ref);
        };
        t.addRow({name, pct(fixed.axw, fixed.total()),
                  pct(fixed.gxw, fixed.total()),
                  pct(fixed.axg, fixed.total()), "100.0%"});
        t.addRow({name + "-P", pct(prof.axw, fixed.total()),
                  pct(prof.gxw, fixed.total()),
                  pct(prof.axg, fixed.total()),
                  Table::pct(prof.total() / fixed.total())});
        res.scalar(name + "_profiled_vs_fixed",
                   prof.total() / fixed.total());
    }
    return res;
}

} // namespace
} // namespace fpraker
