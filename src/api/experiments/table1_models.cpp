/**
 * @file
 * Table I — the models studied, with their substituted workload scale.
 */

#include "api/api.h"

namespace fpraker {
namespace {

using namespace api;

REGISTER_EXPERIMENT("table1", "Table I", "models studied",
                    "nine models spanning classification, NLP, "
                    "detection, recommendation, and translation")
{
    // Row contents are cheap (a MAC sum per model), but the walk goes
    // through the session's engine like every other experiment so the
    // zoo iteration pattern is uniform across the registry.
    std::vector<std::vector<std::string>> rows(modelZoo().size());
    session.parallelFor(rows.size(), [&](size_t i) {
        const ModelInfo &m = modelZoo()[i];
        rows[i] = {m.name, m.application, m.dataset,
                   std::to_string(m.layers.size()),
                   Table::cell(static_cast<double>(m.macsPerOp()) / 1e9,
                               2)};
    });

    Result res;
    ResultTable &t = res.table("models",
                               {"model", "application", "dataset",
                                "layers", "GMACs/op"});
    for (const auto &row : rows)
        t.addRow(row);
    return res;
}

} // namespace
} // namespace fpraker
