/**
 * @file
 * Extension — term-skipping payoff versus batch geometry: the catalog
 * models re-lowered at a sweep of minibatch sizes. Batch size moves
 * three things at once: GEMM M (longer phases amortize serial-side
 * setup), the activation-stash footprint (larger batches spill
 * weight-grad reads to DRAM), and the compute/memory balance — so the
 * speedup-vs-batch curves are not flat.
 */

#include <cstdlib>
#include <iterator>
#include <memory>
#include <sstream>

#include "api/api.h"
#include "common/logging.h"
#include "workload/lowering.h"

namespace fpraker {
namespace {

using namespace api;
using workload::BatchGeometry;
using workload::CatalogModel;
using workload::LoweredModel;

/** Parse "8,16,32,64" into a positive-int list. */
std::vector<int>
parseBatchList(const std::string &csv)
{
    // A bad entry empties the list; the experiment turns that into a
    // failed Result rather than a panic, because this value can also
    // arrive over the serve wire and must never abort the daemon.
    std::vector<int> out;
    std::stringstream ss(csv);
    std::string item;
    while (std::getline(ss, item, ',')) {
        int v = std::atoi(item.c_str());
        if (v < 1) return {};
        out.push_back(v);
    }
    return out;
}

REGISTER_EXPERIMENT("ext_batch_sweep",
                    "Extension: batch-geometry sweep",
                    "catalog models lowered at a sweep of minibatch "
                    "sizes; term-skipping speedup vs batch geometry",
                    "batch size shifts GEMM M, activation-stash "
                    "occupancy, and the compute/memory balance, so "
                    "the payoff is geometry-dependent")
{
    const std::vector<int> batches =
        parseBatchList(session.strOption("batches", "8,16,32,64"));
    if (batches.empty()) {
        Result res;
        res.fail("bad --batches list '" +
                 session.strOption("batches", "8,16,32,64") +
                 "' (want comma-separated positive integers)");
        return res;
    }
    const int seq = session.intOption("seq", 64);
    const char *const kModels[] = {"AlexNet", "ResNet-50",
                                   "Transformer-S"};

    AcceleratorConfig cfg = AcceleratorConfig::paperDefault();
    cfg.sampleSteps = session.sampleSteps(48);
    // The lowering folds the minibatch into GEMM M; conv weights are
    // fetched once per batch already.
    cfg.convWeightBatch = 1;
    const Accelerator &accel = session.withVariant("full", cfg);

    // Lower every (model, batch) pair, then flatten all units into one
    // sharded job list. The LoweredModels own the storage the jobs
    // borrow, so they stay alive until the reports are in.
    std::vector<std::unique_ptr<LoweredModel>> lowered;
    std::vector<SweepLayerJob> jobs;
    std::vector<size_t> first;
    for (const char *name : kModels) {
        const CatalogModel &cm = workload::findWorkloadModel(name);
        for (int b : batches) {
            lowered.push_back(std::make_unique<LoweredModel>(
                cm, BatchGeometry{b, seq}));
            first.push_back(jobs.size());
            std::vector<SweepLayerJob> mj =
                lowered.back()->jobs(accel, session.progress());
            jobs.insert(jobs.end(), mj.begin(), mj.end());
        }
    }
    first.push_back(jobs.size());
    std::vector<LayerOpReport> reports = session.runLayerOps(jobs);

    Result res;
    ResultTable &t = res.table(
        "batch_sweep",
        {"model", "batch", "units", "FPRaker Mcycles",
         "baseline Mcycles", "speedup"});
    std::vector<std::string> batch_labels;
    for (int b : batches)
        batch_labels.push_back(std::to_string(b));

    size_t pair = 0;
    std::vector<double> all;
    for (const char *name : kModels) {
        std::vector<double> speedups;
        for (int b : batches) {
            double fpr = 0, base = 0;
            for (size_t i = first[pair]; i < first[pair + 1]; ++i) {
                fpr += reports[i].fprCycles;
                base += reports[i].baseCycles;
            }
            const double speedup = fpr > 0 ? base / fpr : 1.0;
            speedups.push_back(speedup);
            all.push_back(speedup);
            t.addRow({lowered[pair]->name(), std::to_string(b),
                      std::to_string(first[pair + 1] - first[pair]),
                      Table::cell(fpr / 1e6), Table::cell(base / 1e6),
                      Table::cell(speedup)});
            ++pair;
        }
        res.addSeries(std::string("speedup_") + name, batch_labels,
                      speedups);
    }
    res.scalar("geomean_speedup", geomean(all));
    res.scalar("batch_points", static_cast<int64_t>(batches.size()));
    res.scalar("models_swept",
               static_cast<int64_t>(std::size(kModels)));
    res.scalar("seq", static_cast<int64_t>(seq));
    return res;
}

} // namespace
} // namespace fpraker
