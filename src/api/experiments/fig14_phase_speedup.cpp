/**
 * @file
 * Fig. 14 — FPRaker speedup over the baseline for each of the three
 * training phases (AxG weight gradients, GxW input gradients, AxW
 * forward).
 */

#include "api/api.h"

namespace fpraker {
namespace {

using namespace api;

REGISTER_EXPERIMENT("fig14", "Fig. 14", "speedup per training phase",
                    "FPRaker beats the baseline in all three phases "
                    "for every model; phase ordering varies with the "
                    "term sparsity of the serial-side tensor")
{
    AcceleratorConfig cfg = AcceleratorConfig::paperDefault();
    cfg.sampleSteps = session.sampleSteps();
    session.withVariant("full", cfg);
    std::vector<ModelRunReport> reports =
        session.runModels(session.zooJobsFor({"full"}));

    Result res;
    ResultTable &t = res.table(
        "phase_speedup", {"model", "AxG", "GxW", "AxW", "total"});
    std::vector<std::string> labels;
    std::vector<double> g_axg, g_gxw, g_axw, g_tot;
    for (const ModelRunReport &r : reports) {
        double axg = r.speedupForOp(TrainingOp::WeightGrad);
        double gxw = r.speedupForOp(TrainingOp::InputGrad);
        double axw = r.speedupForOp(TrainingOp::Forward);
        labels.push_back(r.model);
        g_axg.push_back(axg);
        g_gxw.push_back(gxw);
        g_axw.push_back(axw);
        g_tot.push_back(r.speedup());
        t.addRow({r.model, Table::cell(axg), Table::cell(gxw),
                  Table::cell(axw), Table::cell(r.speedup())});
    }
    t.addRow({"Geomean", Table::cell(geomean(g_axg)),
              Table::cell(geomean(g_gxw)), Table::cell(geomean(g_axw)),
              Table::cell(geomean(g_tot))});

    res.addSeries("speedup_axg", labels, g_axg);
    res.addSeries("speedup_gxw", labels, g_gxw);
    res.addSeries("speedup_axw", labels, g_axw);
    res.addSeries("speedup_total", labels, g_tot);
    res.scalar("geomean_speedup_total", geomean(g_tot));
    return res;
}

} // namespace
} // namespace fpraker
