/**
 * @file
 * Table II — baseline and FPRaker accelerator configurations.
 */

#include "api/api.h"

namespace fpraker {
namespace {

using namespace api;

REGISTER_EXPERIMENT("table2", "Table II", "accelerator configurations",
                    "FPRaker 36 tiles vs baseline 8 tiles of 8x8 PEs x "
                    "8 lanes; baseline 4096 MACs/cycle; 4MB x 9-bank "
                    "global buffer; 16GB 4-channel LPDDR4-3200")
{
    AcceleratorConfig cfg = AcceleratorConfig::paperDefault();
    Result res;
    ResultTable &t =
        res.table("configs", {"parameter", "FPRaker", "Baseline"});
    std::string tile_geom = std::to_string(cfg.tile.rows) + "x" +
                            std::to_string(cfg.tile.cols);
    t.addRow({"Tile configuration", tile_geom, tile_geom});
    t.addRow({"Tiles", std::to_string(cfg.fprTiles),
              std::to_string(cfg.baselineTiles)});
    t.addRow({"Total PEs",
              std::to_string(cfg.fprTiles * cfg.tile.rows * cfg.tile.cols),
              std::to_string(cfg.baselineTiles * cfg.tile.rows *
                             cfg.tile.cols)});
    t.addRow({"Lanes (multipliers)/PE", std::to_string(cfg.tile.pe.lanes),
              std::to_string(cfg.tile.pe.lanes) + " BFLOAT16"});
    t.addRow({"MACs/cycle", "-",
              std::to_string(cfg.baselineMacsPerCycle())});
    t.addRow({"Global buffer",
              "4MB x " + std::to_string(cfg.globalBuffer.banks) + " banks",
              "same"});
    t.addRow({"Off-chip DRAM", "16GB 4-ch LPDDR4-3200", "same"});
    t.addRow({"Accumulator fraction bits",
              std::to_string(cfg.tile.pe.acc.fracBits), "same"});
    t.addRow({"Chunk size (Sakr et al.)",
              std::to_string(cfg.tile.pe.acc.chunkSize), "same"});
    return res;
}

} // namespace
} // namespace fpraker
