/**
 * @file
 * Fig. 2 — ideal potential speedup from skipping zero terms of the
 * serial operand, per training phase (Eq. 4: work shrinks to the
 * non-zero term fraction of the 8 potential term slots per value).
 */

#include <functional>

#include "accel/phase_runner.h"
#include "api/api.h"
#include "trace/tensor_gen.h"

namespace fpraker {
namespace {

using namespace api;

/** MAC-weighted potential = slots / terms of the serial operand. */
double
potential(const ModelInfo &model, TrainingOp op, double progress)
{
    TensorKind serial = chooseSerialSide(model, op, progress);
    double weighted = 0.0;
    int64_t total = model.macsPerOp();
    for (const auto &layer : model.layers) {
        TensorGenerator gen(
            model.profile.of(serial).at(progress),
            std::hash<std::string>{}(model.name + layer.name) + 3);
        TensorStats s = measureTensor(gen.generate(2048));
        double terms_per_value =
            s.termsPerValue() > 1e-3 ? s.termsPerValue() : 1e-3;
        weighted += static_cast<double>(layer.macs()) /
                    static_cast<double>(total) *
                    (static_cast<double>(kTermSlots) / terms_per_value);
    }
    return weighted;
}

REGISTER_EXPERIMENT("fig02", "Fig. 2",
                    "potential speedup from exploiting term sparsity, "
                    "per phase",
                    "4-16x for most models and phases; gradient-serial "
                    "phases highest (up to ~59x for near-power-of-two "
                    "gradients)")
{
    // Shard per (model, op): each of the 27 potentials owns a slot.
    const TrainingOp ops[] = {TrainingOp::WeightGrad,
                              TrainingOp::InputGrad, TrainingOp::Forward};
    std::vector<double> potentials(modelZoo().size() * 3);
    session.parallelFor(potentials.size(), [&](size_t i) {
        potentials[i] =
            potential(modelZoo()[i / 3], ops[i % 3], kDefaultProgress);
    });

    Result res;
    ResultTable &t =
        res.table("potential", {"model", "AxG", "GxW", "AxW"});
    std::vector<std::string> labels;
    std::vector<double> axg, gxw, axw;
    for (size_t m = 0; m < modelZoo().size(); ++m) {
        t.addRow({modelZoo()[m].name,
                  Table::cell(potentials[3 * m], 1),
                  Table::cell(potentials[3 * m + 1], 1),
                  Table::cell(potentials[3 * m + 2], 1)});
        labels.push_back(modelZoo()[m].name);
        axg.push_back(potentials[3 * m]);
        gxw.push_back(potentials[3 * m + 1]);
        axw.push_back(potentials[3 * m + 2]);
    }
    res.addSeries("potential_axg", labels, axg);
    res.addSeries("potential_gxw", labels, gxw);
    res.addSeries("potential_axw", labels, axw);
    return res;
}

} // namespace
} // namespace fpraker
