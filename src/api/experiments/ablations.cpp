/**
 * @file
 * Ablations of FPRaker's design choices (DESIGN.md section 5), beyond
 * what the paper's figures cover directly, as four registered
 * experiments:
 *
 *   ablation_encoding — canonical vs raw-bit term encoding,
 *   ablation_window   — the per-cycle shifter window (maxDelta),
 *   ablation_buffer   — B-buffer run-ahead depth,
 *   ablation_exponent — exponent-block sharing (the 2-cycle set floor).
 *
 * Each sweep reports geomean iso-area speedup across the model zoo so
 * the cost/benefit of each area optimization is visible. The legacy
 * `ablations` binary runs all four in sequence.
 */

#include "api/api.h"

namespace fpraker {
namespace {

using namespace api;

double
geomeanSpeedup(Session &session, const std::string &name,
               const AcceleratorConfig &cfg)
{
    session.withVariant(name, cfg);
    std::vector<double> speedups;
    for (const ModelRunReport &r :
         session.runModels(session.zooJobsFor({name})))
        speedups.push_back(r.speedup());
    return geomean(speedups);
}

REGISTER_EXPERIMENT("ablation_encoding", "Ablation: term encoding",
                    "canonical (NAF) vs raw-bit significand recoding",
                    "canonical encoding carries the design: fewer "
                    "terms per value means fewer serial cycles")
{
    AcceleratorConfig base_cfg = AcceleratorConfig::paperDefault();
    base_cfg.sampleSteps = session.sampleSteps(48);

    Result res;
    ResultTable &t =
        res.table("encoding", {"term encoding", "geomean speedup"});
    for (TermEncoding enc :
         {TermEncoding::Canonical, TermEncoding::RawBits}) {
        AcceleratorConfig cfg = base_cfg;
        cfg.tile.pe.encoding = enc;
        bool canonical = enc == TermEncoding::Canonical;
        t.addRow({canonical ? "canonical (NAF)" : "raw bits",
                  Table::cell(geomeanSpeedup(
                      session, canonical ? "canonical" : "raw", cfg))});
    }
    return res;
}

REGISTER_EXPERIMENT("ablation_window", "Ablation: shifter window",
                    "per-cycle shifter window (maxDelta) sweep",
                    "the paper picks 3 as its area/performance "
                    "trade-off; wider windows buy little")
{
    AcceleratorConfig base_cfg = AcceleratorConfig::paperDefault();
    base_cfg.sampleSteps = session.sampleSteps(48);

    Result res;
    ResultTable &t = res.table(
        "window", {"shifter window (maxDelta)", "geomean speedup"});
    for (int delta : {0, 1, 3, 7, 1 << 20}) {
        AcceleratorConfig cfg = base_cfg;
        cfg.tile.pe.maxDelta = delta;
        std::string label =
            delta > 100 ? "unlimited" : std::to_string(delta);
        t.addRow({label,
                  Table::cell(geomeanSpeedup(
                      session, "delta-" + label, cfg))});
    }
    res.note("(the paper picks 3 as its area/performance trade-off; "
             "in this model the window costs more than the paper's "
             "few shift-range stalls suggest because a stalled lane "
             "also holds back the other PEs sharing its term stream)");
    return res;
}

REGISTER_EXPERIMENT("ablation_buffer", "Ablation: B-buffer depth",
                    "B-buffer run-ahead depth sweep",
                    "depth 1 already hides inter-PE stalls, matching "
                    "the paper's observation")
{
    AcceleratorConfig base_cfg = AcceleratorConfig::paperDefault();
    base_cfg.sampleSteps = session.sampleSteps(48);

    Result res;
    ResultTable &t =
        res.table("buffer", {"B-buffer depth", "geomean speedup"});
    for (int depth : {1, 2, 4}) {
        AcceleratorConfig cfg = base_cfg;
        cfg.tile.bufferDepth = depth;
        t.addRow({std::to_string(depth),
                  Table::cell(geomeanSpeedup(
                      session, "depth-" + std::to_string(depth), cfg))});
    }
    res.note("(depth 1 already hides inter-PE stalls, matching the "
             "paper's observation)");
    return res;
}

REGISTER_EXPERIMENT("ablation_exponent", "Ablation: exponent block",
                    "exponent-block sharing (set-cycle floor) sweep",
                    "sharing between PE pairs costs little because "
                    "most sets need >= 2 cycles anyway")
{
    AcceleratorConfig base_cfg = AcceleratorConfig::paperDefault();
    base_cfg.sampleSteps = session.sampleSteps(48);

    Result res;
    ResultTable &t =
        res.table("exponent", {"exponent block", "geomean speedup"});
    for (int floor_cycles : {1, 2, 4}) {
        AcceleratorConfig cfg = base_cfg;
        cfg.tile.pe.exponentFloor = floor_cycles;
        const char *label = floor_cycles == 1
                                ? "private (floor 1)"
                                : floor_cycles == 2
                                      ? "shared by 2 (floor 2)"
                                      : "shared by 4 (floor 4)";
        t.addRow({label,
                  Table::cell(geomeanSpeedup(
                      session,
                      "floor-" + std::to_string(floor_cycles), cfg))});
    }
    res.note("(sharing between PE pairs costs little because most "
             "sets need >= 2 cycles anyway)");
    return res;
}

} // namespace
} // namespace fpraker
