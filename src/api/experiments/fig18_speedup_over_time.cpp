/**
 * @file
 * Fig. 18 — FPRaker speedup over the baseline across the training
 * process (the paper samples one batch per epoch; we sweep the
 * training-progress axis of the value profiles).
 */

#include "api/api.h"

namespace fpraker {
namespace {

using namespace api;

REGISTER_EXPERIMENT("fig18", "Fig. 18", "speedup over training time",
                    "stable for most models; VGG16 declines ~15% after "
                    "the first ~30% of training; ResNet18-Q gains "
                    "~12.5% once PACT clipping settles (~30%)")
{
    AcceleratorConfig cfg = AcceleratorConfig::paperDefault();
    cfg.sampleSteps = session.sampleSteps(64);
    const Accelerator &accel = session.withVariant("full", cfg);

    // One job per (model, progress point): the whole time sweep is a
    // single flattened fan-out.
    const double points[] = {0.0, 0.15, 0.3, 0.5, 0.75, 1.0};
    const size_t n_points = sizeof(points) / sizeof(points[0]);
    std::vector<SweepJob> jobs;
    for (const auto &model : modelZoo())
        for (double p : points)
            jobs.push_back(SweepJob{&accel, &model, p});
    std::vector<ModelRunReport> reports = session.runModels(jobs);

    Result res;
    std::vector<std::string> headers = {"model"};
    for (double p : points)
        headers.push_back(Table::pct(p, 0));
    ResultTable &t = res.table("speedup_over_time", headers);
    for (size_t m = 0; m < modelZoo().size(); ++m) {
        std::vector<std::string> row = {reports[m * n_points].model};
        std::vector<std::string> labels;
        std::vector<double> values;
        for (size_t i = 0; i < n_points; ++i) {
            row.push_back(
                Table::cell(reports[m * n_points + i].speedup()));
            labels.push_back(Table::pct(points[i], 0));
            values.push_back(reports[m * n_points + i].speedup());
        }
        t.addRow(row);
        res.addSeries(reports[m * n_points].model, labels, values);
    }
    return res;
}

} // namespace
} // namespace fpraker
