/**
 * @file
 * Fig. 20 — lane-cycle breakdown as the number of rows per tile grows:
 * inter-PE synchronization and no-term (waiting-for-sibling) stalls
 * increase with more PEs sharing one serial-operand stream.
 */

#include "api/api.h"

namespace fpraker {
namespace {

using namespace api;

REGISTER_EXPERIMENT("fig20", "Fig. 20",
                    "cycle breakdown vs rows per tile",
                    "useful share shrinks with rows; no-term and "
                    "inter-PE stalls grow")
{
    const int rows_options[] = {2, 4, 8, 16};
    const int pe_budget = 36 * 64;

    std::vector<std::string> names;
    for (int rows : rows_options) {
        AcceleratorConfig cfg = AcceleratorConfig::paperDefault();
        cfg.sampleSteps = session.sampleSteps(64);
        cfg.tile.rows = rows;
        cfg.fprTiles = pe_budget / (rows * cfg.tile.cols);
        names.push_back(std::to_string(rows) + "-rows");
        session.withVariant(names.back(), cfg);
    }
    std::vector<ModelRunReport> reports =
        session.runModels(session.zooJobsFor(names));
    const size_t n_models = modelZoo().size();

    Result res;
    ResultTable &t = res.table("rows_cycles",
                               {"model", "rows", "useful", "no term",
                                "shift range", "inter-PE", "exponent"});
    for (size_t m = 0; m < n_models; ++m) {
        for (size_t i = 0; i < 4; ++i) {
            const ModelRunReport &r = reports[i * n_models + m];
            double lc = r.activity.laneCycles();
            t.addRow({r.model, std::to_string(rows_options[i]),
                      Table::pct(r.activity.laneUseful / lc),
                      Table::pct(r.activity.laneNoTerm / lc),
                      Table::pct(r.activity.laneShiftRange / lc),
                      Table::pct(r.activity.laneInterPe / lc),
                      Table::pct(r.activity.laneExponent / lc)});
        }
    }
    return res;
}

} // namespace
} // namespace fpraker
