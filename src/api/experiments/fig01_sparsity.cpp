/**
 * @file
 * Fig. 1 — value sparsity (a) and term sparsity (b) of the three
 * tensors during training, weighted by frequency of use (layer MACs).
 */

#include <functional>

#include "api/api.h"
#include "trace/tensor_gen.h"

namespace fpraker {
namespace {

using namespace api;

struct ModelSparsity
{
    TensorStats stats[3]; // per TensorKind
};

ModelSparsity
measure(const ModelInfo &model, double progress)
{
    ModelSparsity out;
    // Weight each layer's contribution by its MAC count by sampling a
    // value population proportional to it.
    int64_t total = model.macsPerOp();
    for (const auto &layer : model.layers) {
        size_t samples = static_cast<size_t>(
            4096.0 * static_cast<double>(layer.macs()) /
            static_cast<double>(total)) + 64;
        for (TensorKind kind : {TensorKind::Activation, TensorKind::Weight,
                                TensorKind::Gradient}) {
            TensorGenerator gen(
                model.profile.of(kind).at(progress),
                std::hash<std::string>{}(model.name + layer.name) +
                    static_cast<uint64_t>(kind));
            out.stats[static_cast<int>(kind)].merge(
                measureTensor(gen.generate(samples)));
        }
    }
    return out;
}

REGISTER_EXPERIMENT("fig01", "Fig. 1",
                    "value and term sparsity of W/A/G during training",
                    "(a) image-classification activations >35% sparse "
                    "(ReLU); weights dense except ResNet50-S2 (~80%); "
                    "NLP models near-dense. (b) term sparsity high "
                    "(60-90%) for ALL tensors and models")
{
    // Per-model measurements write their own slot and shard across
    // the session's engine; rows print in zoo order afterwards.
    std::vector<ModelSparsity> sparsity(modelZoo().size());
    session.parallelFor(modelZoo().size(), [&](size_t m) {
        sparsity[m] = measure(modelZoo()[m], kDefaultProgress);
    });

    Result res;
    ResultTable &a = res.table("value_sparsity",
                               {"model", "Activation", "Weight",
                                "Gradient"});
    a.caption = "(a) value sparsity";
    ResultTable &b = res.table("term_sparsity",
                               {"model", "Activation", "Weight",
                                "Gradient"});
    b.caption =
        "(b) term sparsity (canonical encoding, 8 slots/value)";
    std::vector<std::string> labels;
    std::vector<double> value_sp[3], term_sp[3];
    for (size_t m = 0; m < modelZoo().size(); ++m) {
        const ModelInfo &model = modelZoo()[m];
        const ModelSparsity &s = sparsity[m];
        a.addRow({model.name,
                  Table::pct(s.stats[0].valueSparsity()),
                  Table::pct(s.stats[1].valueSparsity()),
                  Table::pct(s.stats[2].valueSparsity())});
        b.addRow({model.name,
                  Table::pct(s.stats[0].termSparsity()),
                  Table::pct(s.stats[1].termSparsity()),
                  Table::pct(s.stats[2].termSparsity())});
        labels.push_back(model.name);
        for (int k = 0; k < 3; ++k) {
            value_sp[k].push_back(s.stats[k].valueSparsity());
            term_sp[k].push_back(s.stats[k].termSparsity());
        }
    }
    static const char *kKindSlug[3] = {"activation", "weight",
                                       "gradient"};
    for (int k = 0; k < 3; ++k)
        res.addSeries(std::string("value_sparsity_") + kKindSlug[k],
                      labels, value_sp[k]);
    for (int k = 0; k < 3; ++k)
        res.addSeries(std::string("term_sparsity_") + kKindSlug[k],
                      labels, term_sp[k]);
    return res;
}

} // namespace
} // namespace fpraker
