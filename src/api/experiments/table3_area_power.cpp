/**
 * @file
 * Table III — per-tile area and power, FPRaker vs baseline (65 nm,
 * 600 MHz), from the calibrated component model.
 */

#include <cstdio>

#include "api/api.h"
#include "energy/area_model.h"
#include "energy/energy_model.h"

namespace fpraker {
namespace {

using namespace api;

REGISTER_EXPERIMENT("table3", "Table III",
                    "per-tile area and power breakdown",
                    "FPRaker tile 317,068 um^2 / 109.5 mW = 0.22x area "
                    "and 0.23x power of the 1,421,579 um^2 / 475 mW "
                    "baseline; energy efficiency 1.75x per tile")
{
    TileAreaReport fpr = AreaModel::fprTile();
    TileAreaReport base = AreaModel::baselineTile();

    Result res;
    ResultTable &t = res.table(
        "area_power", {"design", "PE array [um^2]", "encoders [um^2]",
                       "total [um^2]", "normalized", "power [mW]",
                       "norm power"});
    t.addRow({"FPRaker", Table::cell(fpr.peArrayUm2, 0),
              Table::cell(fpr.encodersUm2, 0),
              Table::cell(fpr.totalUm2(), 0),
              Table::cell(fpr.totalUm2() / base.totalUm2(), 2),
              Table::cell(fpr.totalMw(), 1),
              Table::cell(fpr.totalMw() / base.totalMw(), 2)});
    t.addRow({"Baseline", Table::cell(base.peArrayUm2, 0), "N/A",
              Table::cell(base.totalUm2(), 0), "1.00",
              Table::cell(base.totalMw(), 1), "1.00"});

    char note[96];
    std::snprintf(note, sizeof(note),
                  "iso-compute-area tiles for 8 baseline tiles: %d",
                  AreaModel::isoComputeTiles(8));
    res.note(note);

    // Per-tile energy efficiency at equal throughput: the baseline tile
    // retires 512 MACs/cycle; an FPRaker tile needs avg-cycles-per-set
    // more cycles but burns 0.23x the power.
    EnergyModel em;
    double per_mac_base = em.baseTileCyclePj() / 512.0;
    double assumed_cycles_per_set = 2.6; // workload average
    double per_mac_fpr =
        em.fprTileCyclePj() * assumed_cycles_per_set / 512.0;
    std::snprintf(note, sizeof(note),
                  "per-MAC energy efficiency vs baseline (at %.1f "
                  "cycles/set): %.2fx",
                  assumed_cycles_per_set, per_mac_base / per_mac_fpr);
    res.note(note);
    res.scalar("per_mac_energy_efficiency", per_mac_base / per_mac_fpr);

    ResultTable &c =
        res.table("pe_breakdown", {"component", "um^2", "share"});
    c.caption = "FPRaker PE component breakdown [um^2]:";
    PeAreaBreakdown b = AreaModel::fprPeBreakdown();
    c.addRow({"exponent block (1/2 shared)",
              Table::cell(b.exponentBlockUm2, 0),
              Table::pct(b.exponentBlockUm2 / b.totalUm2())});
    c.addRow({"shifters", Table::cell(b.shiftersUm2, 0),
              Table::pct(b.shiftersUm2 / b.totalUm2())});
    c.addRow({"adder tree", Table::cell(b.adderTreeUm2, 0),
              Table::pct(b.adderTreeUm2 / b.totalUm2())});
    c.addRow({"accumulator", Table::cell(b.accumulatorUm2, 0),
              Table::pct(b.accumulatorUm2 / b.totalUm2())});
    c.addRow({"control", Table::cell(b.controlUm2, 0),
              Table::pct(b.controlUm2 / b.totalUm2())});
    return res;
}

} // namespace
} // namespace fpraker
