/**
 * @file
 * Section I comparison — why a straight floating-point port of
 * Bit-Pragmatic (or Laconic) fails where FPRaker succeeds: the
 * Bfloat16 Bit-Pragmatic PE is only 2.5x smaller than the bit-parallel
 * PE, so iso-compute area affords 20 tiles instead of FPRaker's 36,
 * and the paper measures it on average 1.72x SLOWER and 1.96x less
 * energy efficient than the optimized baseline.
 */

#include "api/api.h"
#include "energy/area_model.h"
#include "pe/alt_pes.h"
#include "trace/tensor_gen.h"

namespace fpraker {
namespace {

using namespace api;

REGISTER_EXPERIMENT("intro", "Intro comparison",
                    "Bfloat16 Bit-Pragmatic / Laconic vs baseline vs "
                    "FPRaker under iso-compute area",
                    "Bit-Pragmatic-FP: ~1.72x slower, ~1.96x less "
                    "energy efficient than the baseline (worst case "
                    "2.86x/3.2x); Laconic-FP equally disappointing; "
                    "FPRaker ~1.4x faster")
{
    Result res;
    ResultTable &areas = res.table(
        "areas", {"design", "tile um^2", "vs baseline", "iso tiles"});
    areas.caption = "tile areas and iso-compute tile counts:";
    double base_um2 = AreaModel::baselineTile().totalUm2();
    areas.addRow({"Baseline", Table::cell(base_um2, 0), "1.00", "8"});
    areas.addRow({"Bit-Pragmatic-FP",
                  Table::cell(AreaModel::bitPragmaticFpTile().totalUm2(),
                              0),
                  Table::cell(AreaModel::bitPragmaticFpTile().totalUm2() /
                              base_um2),
                  std::to_string(AreaModel::bitPragmaticIsoTiles(8))});
    areas.addRow({"FPRaker",
                  Table::cell(AreaModel::fprTile().totalUm2(), 0),
                  Table::cell(AreaModel::areaRatio()),
                  std::to_string(AreaModel::isoComputeTiles(8))});

    // Performance: run the serial-capable accelerators over the zoo,
    // as one sweep through a shared engine (the accelerator models the
    // baseline machine's cycles analytically — one cycle per step —
    // so the harness's wall-clock is the serial designs' sampling).
    AcceleratorConfig fpr_cfg = AcceleratorConfig::paperDefault();
    fpr_cfg.sampleSteps = session.sampleSteps(64);

    AcceleratorConfig bp_cfg = fpr_cfg;
    bp_cfg.tile.pe = bitPragmaticFpConfig();
    bp_cfg.fprTiles = AreaModel::bitPragmaticIsoTiles(8);
    bp_cfg.useBdc = false;         // no compression scheme
    bp_cfg.autoSerialSide = false; // always serializes one fixed side

    session.withVariant("bit-pragmatic-fp", bp_cfg);
    session.withVariant("fpraker", fpr_cfg);
    std::vector<ModelRunReport> reports = session.runModels(
        session.zooJobsFor({"bit-pragmatic-fp", "fpraker"}));
    const size_t n_models = modelZoo().size();

    // Laconic-FP: measure average cycles/set at the PE level on the
    // forward operands, then scale by its iso-area PE count (its PE is
    // larger than Bit-Pragmatic's; reuse that bound as an optimistic
    // ceiling). Each model's measurement owns its slot, so the loop
    // shards across the same engine.
    std::vector<double> s_lac(n_models);
    session.parallelFor(n_models, [&](size_t m) {
        const ModelInfo &model = modelZoo()[m];
        TensorGenerator ga(model.profile.activation.at(0.5), 101);
        TensorGenerator gw(model.profile.weight.at(0.5), 102);
        LaconicFpPe lac;
        for (int s = 0; s < 512; ++s) {
            MacPair pairs[8];
            for (int l = 0; l < 8; ++l)
                pairs[l] = MacPair{ga.next(), gw.next()};
            lac.processSet(pairs, 8);
        }
        double lac_cycles_per_set =
            static_cast<double>(lac.stats().cycles) /
            static_cast<double>(lac.stats().sets);
        s_lac[m] =
            (static_cast<double>(AreaModel::bitPragmaticIsoTiles(8)) /
             8.0) /
            lac_cycles_per_set;
    });

    ResultTable &t = res.table(
        "speedup", {"model", "Bit-Pragmatic-FP", "Laconic-FP",
                    "FPRaker"});
    t.caption = "iso-compute-area speedup over the baseline:";
    std::vector<double> s_bp, s_fpr;
    for (size_t m = 0; m < n_models; ++m) {
        const ModelRunReport &r_bp = reports[m];
        const ModelRunReport &r_fpr = reports[n_models + m];
        s_bp.push_back(r_bp.speedup());
        s_fpr.push_back(r_fpr.speedup());
        t.addRow({r_bp.model, Table::cell(r_bp.speedup()),
                  Table::cell(s_lac[m]),
                  Table::cell(r_fpr.speedup())});
    }
    t.addRow({"Geomean", Table::cell(geomean(s_bp)),
              Table::cell(geomean(s_lac)), Table::cell(geomean(s_fpr))});
    res.note("(values below 1.0 are slowdowns; the area-starved "
             "serial designs cannot deploy\nenough parallelism to "
             "cover their multi-cycle MACs)");
    res.scalar("geomean_speedup_bit_pragmatic", geomean(s_bp));
    res.scalar("geomean_speedup_laconic", geomean(s_lac));
    res.scalar("geomean_speedup_fpraker", geomean(s_fpr));
    return res;
}

} // namespace
} // namespace fpraker
