/**
 * @file
 * Fig. 13 — breakdown of the terms FPRaker skips: zero terms (empty
 * slots after canonical encoding, including zero values) vs non-zero
 * terms retired as out-of-bounds.
 */

#include "api/api.h"
#include "trace/tensor_gen.h"

namespace fpraker {
namespace {

using namespace api;

REGISTER_EXPERIMENT("fig13", "Fig. 13", "breakdown of skipped terms",
                    "zero terms dominate everywhere; OB skipping adds "
                    "~5-10% more for ResNet50-S2/Detectron2 and least "
                    "for already-sparse VGG16/SNLI")
{
    AcceleratorConfig cfg = AcceleratorConfig::paperDefault();
    cfg.sampleSteps = session.sampleSteps();
    session.withVariant("full", cfg);
    std::vector<ModelRunReport> reports =
        session.runModels(session.zooJobsFor({"full"}));

    Result res;
    ResultTable &t = res.table(
        "skipped_terms",
        {"model", "zero terms", "out-of-bounds terms",
         "OB gain [pp of slots]", "skipped of all slots"});
    for (const ModelRunReport &r : reports) {
        double zero = r.activity.termsZeroSkipped;
        double ob = r.activity.termsObSkipped;
        double skipped = zero + ob;
        double slots = r.activity.macs * kTermSlots;
        t.addRow({r.model, Table::pct(zero / skipped),
                  Table::pct(ob / skipped),
                  Table::cell(ob / slots * 100.0, 2),
                  Table::pct(skipped / slots)});
    }
    return res;
}

} // namespace
} // namespace fpraker
