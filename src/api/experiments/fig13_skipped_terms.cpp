/**
 * @file
 * Fig. 13 — breakdown of the terms FPRaker skips: zero terms (empty
 * slots after canonical encoding, including zero values) vs non-zero
 * terms retired as out-of-bounds.
 */

#include "api/api.h"
#include "trace/tensor_gen.h"

namespace fpraker {
namespace {

using namespace api;

REGISTER_EXPERIMENT("fig13", "Fig. 13", "breakdown of skipped terms",
                    "zero terms dominate everywhere; OB skipping adds "
                    "~5-10% more for ResNet50-S2/Detectron2 and least "
                    "for already-sparse VGG16/SNLI")
{
    AcceleratorConfig cfg = AcceleratorConfig::paperDefault();
    cfg.sampleSteps = session.sampleSteps();
    session.withVariant("full", cfg);
    std::vector<ModelRunReport> reports =
        session.runModels(session.zooJobsFor({"full"}));

    Result res;
    ResultTable &t = res.table(
        "skipped_terms",
        {"model", "zero terms", "out-of-bounds terms",
         "OB gain [pp of slots]", "skipped of all slots"});
    std::vector<std::string> labels;
    std::vector<double> zero_share, ob_share, skipped_of_slots;
    for (const ModelRunReport &r : reports) {
        double zero = r.activity.termsZeroSkipped;
        double ob = r.activity.termsObSkipped;
        double skipped = zero + ob;
        double slots = r.activity.macs * kTermSlots;
        t.addRow({r.model, Table::pct(zero / skipped),
                  Table::pct(ob / skipped),
                  Table::cell(ob / slots * 100.0, 2),
                  Table::pct(skipped / slots)});
        labels.push_back(r.model);
        zero_share.push_back(zero / skipped);
        ob_share.push_back(ob / skipped);
        skipped_of_slots.push_back(skipped / slots);
    }
    res.addSeries("zero_term_share", labels, zero_share);
    res.addSeries("ob_term_share", labels, ob_share);
    res.addSeries("skipped_of_slots", labels, skipped_of_slots);
    return res;
}

} // namespace
} // namespace fpraker
