/**
 * @file
 * Extension (paper section VII) — inference with FPRaker: "while we
 * evaluated FPRaker for training, it can naturally also be used for
 * inference", particularly for models that still need floating point
 * (language and recommendation models). This experiment runs the
 * forward pass only, with frozen (end-of-training) value statistics.
 */

#include "api/api.h"

namespace fpraker {
namespace {

using namespace api;

REGISTER_EXPERIMENT("ext_inference", "Extension: inference",
                    "forward-pass-only speedup at end-of-training "
                    "statistics",
                    "floating-point-dependent models (SNLI, NCF, Bert) "
                    "still benefit; the fixed-point-friendly CNNs "
                    "would use integer accelerators in deployment")
{
    AcceleratorConfig cfg = AcceleratorConfig::paperDefault();
    cfg.sampleSteps = session.sampleSteps(64);
    const Accelerator &accel = session.withVariant("full", cfg);

    // Forward-only layer jobs at end-of-training statistics: the
    // whole zoo's layers flatten into one sharded job list.
    std::vector<SweepLayerJob> jobs;
    std::vector<size_t> first;
    for (const auto &model : modelZoo()) {
        first.push_back(jobs.size());
        for (const auto &layer : model.layers)
            jobs.push_back(SweepLayerJob{&accel, &model, &layer,
                                         TrainingOp::Forward, 1.0});
    }
    first.push_back(jobs.size());
    std::vector<LayerOpReport> reports = session.runLayerOps(jobs);

    Result res;
    ResultTable &t = res.table(
        "inference", {"model", "inference speedup",
                      "serialized tensor"});
    std::vector<std::string> labels;
    std::vector<double> speedups;
    for (size_t m = 0; m < modelZoo().size(); ++m) {
        double fpr = 0, base = 0;
        TensorKind serial = TensorKind::Activation;
        for (size_t i = first[m]; i < first[m + 1]; ++i) {
            fpr += reports[i].fprCycles;
            base += reports[i].baseCycles;
            serial = reports[i].serialSide;
        }
        double speedup = base / fpr;
        labels.push_back(modelZoo()[m].name);
        speedups.push_back(speedup);
        t.addRow({modelZoo()[m].name, Table::cell(speedup),
                  tensorLabel(serial)});
    }
    t.addRow({"Geomean", Table::cell(geomean(speedups)), "-"});
    res.addSeries("inference_speedup", labels, speedups);
    res.scalar("geomean_inference_speedup", geomean(speedups));
    return res;
}

} // namespace
} // namespace fpraker
