/**
 * @file
 * Fig. 15 — breakdown of FPRaker lane-cycles: useful work vs the four
 * stall categories (no-term imbalance, limited shift range, inter-PE
 * synchronization, shared exponent block).
 */

#include "api/api.h"

namespace fpraker {
namespace {

using namespace api;

REGISTER_EXPERIMENT("fig15", "Fig. 15",
                    "lane-cycle breakdown (lane efficiency)",
                    "cross-lane term imbalance ('no term') is the "
                    "largest stall (~33% average, worst for NCF ~55%); "
                    "shift-range and inter-PE stalls small; exponent "
                    "stalls noticeable only for effectively-4b "
                    "ResNet18-Q and SNLI")
{
    AcceleratorConfig cfg = AcceleratorConfig::paperDefault();
    cfg.sampleSteps = session.sampleSteps();
    session.withVariant("full", cfg);
    std::vector<ModelRunReport> reports =
        session.runModels(session.zooJobsFor({"full"}));

    Result res;
    ResultTable &t = res.table("lane_cycles",
                               {"model", "useful", "no term",
                                "shift range", "inter-PE", "exponent"});
    std::vector<std::string> labels;
    std::vector<double> useful, no_term, shift_range, inter_pe,
        exponent;
    for (const ModelRunReport &r : reports) {
        double lc = r.activity.laneCycles();
        t.addRow({r.model, Table::pct(r.activity.laneUseful / lc),
                  Table::pct(r.activity.laneNoTerm / lc),
                  Table::pct(r.activity.laneShiftRange / lc),
                  Table::pct(r.activity.laneInterPe / lc),
                  Table::pct(r.activity.laneExponent / lc)});
        labels.push_back(r.model);
        useful.push_back(r.activity.laneUseful / lc);
        no_term.push_back(r.activity.laneNoTerm / lc);
        shift_range.push_back(r.activity.laneShiftRange / lc);
        inter_pe.push_back(r.activity.laneInterPe / lc);
        exponent.push_back(r.activity.laneExponent / lc);
    }
    res.addSeries("lane_useful", labels, useful);
    res.addSeries("lane_no_term", labels, no_term);
    res.addSeries("lane_shift_range", labels, shift_range);
    res.addSeries("lane_inter_pe", labels, inter_pe);
    res.addSeries("lane_exponent", labels, exponent);
    return res;
}

} // namespace
} // namespace fpraker
