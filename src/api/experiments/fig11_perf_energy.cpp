/**
 * @file
 * Fig. 11 — iso-compute-area performance and energy efficiency of
 * FPRaker vs the baseline, with the contribution breakdown: zero-term
 * skipping, + exponent base-delta compression (BDC), + out-of-bounds
 * (OB) term skipping.
 */

#include "api/api.h"

namespace fpraker {
namespace {

using namespace api;

REGISTER_EXPERIMENT("fig11", "Fig. 11",
                    "iso-compute-area performance and energy "
                    "efficiency vs baseline",
                    "geomean ~1.5x total speedup (zero terms +9%, BDC "
                    "+5.8%, OB +35.2%); ResNet18-Q best conv model "
                    "~2.04x; SNLI ~1.8x; core energy efficiency ~1.4x "
                    "tracking speedup")
{
    AcceleratorVariants variants =
        makeVariants(session.sampleSteps());

    // All 3 variants x 9 models submit through one session runner:
    // the (job, layer, op) units of the whole figure shard across a
    // single engine instead of 27 serial model runs.
    session.withVariant("zero", variants.zeroOnly);
    session.withVariant("zero+bdc", variants.zeroBdc);
    session.withVariant("full", variants.full);
    std::vector<ModelRunReport> reports = session.runModels(
        session.zooJobsFor({"zero", "zero+bdc", "full"}));

    Result res;
    ResultTable &t = res.table("perf_energy",
                               {"model", "perf(zero)", "perf(zero+BDC)",
                                "perf(total:+OB)", "core-energy-eff"});
    std::vector<std::string> labels;
    std::vector<double> s_zero, s_bdc, s_full, e_core;
    const size_t n_models = modelZoo().size();
    for (size_t m = 0; m < n_models; ++m) {
        const ModelRunReport &r0 = reports[m];
        const ModelRunReport &r1 = reports[n_models + m];
        const ModelRunReport &r2 = reports[2 * n_models + m];
        labels.push_back(r0.model);
        s_zero.push_back(r0.speedup());
        s_bdc.push_back(r1.speedup());
        s_full.push_back(r2.speedup());
        e_core.push_back(r2.coreEnergyEfficiency());
        t.addRow({r0.model, Table::cell(r0.speedup()),
                  Table::cell(r1.speedup()), Table::cell(r2.speedup()),
                  Table::cell(r2.coreEnergyEfficiency())});
    }
    t.addRow({"Geomean", Table::cell(geomean(s_zero)),
              Table::cell(geomean(s_bdc)), Table::cell(geomean(s_full)),
              Table::cell(geomean(e_core))});

    res.addSeries("speedup_zero", labels, s_zero);
    res.addSeries("speedup_zero_bdc", labels, s_bdc);
    res.addSeries("speedup_full", labels, s_full);
    res.addSeries("core_energy_efficiency", labels, e_core);
    res.scalar("geomean_speedup_zero", geomean(s_zero));
    res.scalar("geomean_speedup_zero_bdc", geomean(s_bdc));
    res.scalar("geomean_speedup_full", geomean(s_full));
    res.scalar("geomean_core_energy_efficiency", geomean(e_core));
    return res;
}

} // namespace
} // namespace fpraker
