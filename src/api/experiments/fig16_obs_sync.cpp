/**
 * @file
 * Fig. 16 — effect of out-of-bounds term skipping (OBS) on the
 * synchronization overhead: the stall-cycle breakdown with OBS on vs
 * off, plus the overall stall reduction.
 */

#include <cstdio>

#include "api/api.h"

namespace fpraker {
namespace {

using namespace api;

REGISTER_EXPERIMENT("fig16", "Fig. 16",
                    "synchronization overhead with/without OB skipping",
                    "skipping OB terms improves lane load balance: "
                    "~30% average reduction in total stall cycles, "
                    "mostly from the no-term (cross-lane wait) "
                    "category")
{
    AcceleratorConfig on_cfg = AcceleratorConfig::paperDefault();
    on_cfg.sampleSteps = session.sampleSteps();
    AcceleratorConfig off_cfg = on_cfg;
    off_cfg.tile.pe.skipOutOfBounds = false;
    session.withVariant("obs", on_cfg);
    session.withVariant("no-obs", off_cfg);
    std::vector<ModelRunReport> reports =
        session.runModels(session.zooJobsFor({"obs", "no-obs"}));
    const size_t n_models = modelZoo().size();

    Result res;
    ResultTable &t = res.table("stall_breakdown",
                               {"model", "mode", "no term",
                                "shift range", "inter-PE", "exponent",
                                "stall/lane-cycle"});
    double reductions = 0.0;
    for (size_t m = 0; m < n_models; ++m) {
        const ModelRunReport &r_on = reports[m];
        const ModelRunReport &r_off = reports[n_models + m];
        auto add = [&](const char *mode, const ScaledPeActivity &a) {
            double stalls = a.laneNoTerm + a.laneShiftRange +
                            a.laneInterPe + a.laneExponent;
            t.addRow({r_on.model, mode,
                      Table::pct(a.laneNoTerm / stalls),
                      Table::pct(a.laneShiftRange / stalls),
                      Table::pct(a.laneInterPe / stalls),
                      Table::pct(a.laneExponent / stalls),
                      Table::pct(stalls / a.laneCycles())});
            return stalls / a.macs; // stalls per MAC, comparable
        };
        double s_on = add("OBS", r_on.activity);
        double s_off = add("no OBS", r_off.activity);
        reductions += 1.0 - s_on / s_off;
    }
    double avg_reduction =
        reductions / static_cast<double>(n_models) * 100.0;
    char note[80];
    std::snprintf(note, sizeof(note),
                  "average stall-cycle reduction from OBS: %.1f%%",
                  avg_reduction);
    res.note(note);
    res.scalar("avg_stall_reduction_pct", avg_reduction);
    return res;
}

} // namespace
} // namespace fpraker
