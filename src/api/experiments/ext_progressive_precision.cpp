/**
 * @file
 * Extension (paper section VII) — progressive-precision training:
 * "training can start with lower precision and increase the precision
 * per epoch near convergence. FPRaker can adapt dynamically to
 * different precisions". This experiment runs a precision schedule
 * over the training-progress axis: the accumulator's effective width
 * (the OB threshold) starts narrow and widens toward convergence, and
 * FPRaker converts each stage's slack directly into speedup — the
 * fixed-width baseline gains nothing.
 */

#include "api/api.h"

namespace fpraker {
namespace {

using namespace api;

/** The schedule: accumulator fraction bits per training progress. */
int
scheduledFracBits(double progress)
{
    if (progress < 0.25)
        return 6;
    if (progress < 0.5)
        return 8;
    if (progress < 0.8)
        return 10;
    return 12;
}

REGISTER_EXPERIMENT("ext_progressive", "Extension: progressive precision",
                    "accumulator width scheduled over training "
                    "progress",
                    "speedup is highest in the low-precision early "
                    "stages and converges to the fixed-width result "
                    "near the end — rewarding precision-scheduled "
                    "training algorithms without hardware changes")
{
    const double points[] = {0.1, 0.35, 0.65, 0.95};
    const size_t n_points = sizeof(points) / sizeof(points[0]);

    // One accelerator variant per schedule stage plus the fixed-width
    // reference; every (model, stage) pair is one sweep job.
    std::vector<SweepJob> jobs;
    for (double p : points) {
        AcceleratorConfig cfg = AcceleratorConfig::paperDefault();
        cfg.sampleSteps = session.sampleSteps(48);
        cfg.tile.pe.obThreshold = scheduledFracBits(p);
        const Accelerator &accel = session.withVariant(
            "w" + std::to_string(scheduledFracBits(p)), cfg);
        for (const auto &model : modelZoo())
            jobs.push_back(SweepJob{&accel, &model, p});
    }
    AcceleratorConfig fixed = AcceleratorConfig::paperDefault();
    fixed.sampleSteps = session.sampleSteps(48);
    const Accelerator &fixed_accel = session.withVariant("fixed", fixed);
    for (const auto &model : modelZoo())
        jobs.push_back(SweepJob{&fixed_accel, &model, 0.95});
    std::vector<ModelRunReport> reports = session.runModels(jobs);

    Result res;
    std::vector<std::string> headers = {"model"};
    for (double p : points)
        headers.push_back(Table::pct(p, 0) + " (w=" +
                          std::to_string(scheduledFracBits(p)) + ")");
    headers.push_back("fixed w=12 @95%");
    ResultTable &t = res.table("progressive", headers);

    const size_t n_models = modelZoo().size();
    for (size_t m = 0; m < n_models; ++m) {
        std::vector<std::string> row = {modelZoo()[m].name};
        for (size_t i = 0; i < n_points; ++i)
            row.push_back(
                Table::cell(reports[i * n_models + m].speedup()));
        row.push_back(
            Table::cell(reports[n_points * n_models + m].speedup()));
        t.addRow(row);
    }
    return res;
}

} // namespace
} // namespace fpraker
