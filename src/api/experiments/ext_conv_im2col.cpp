/**
 * @file
 * Extension — convolution layers through the im2col lowering, run
 * trace-backed: representative convs from each catalog CNN are lowered
 * to their forward / input-grad / weight-grad GEMM views, their
 * operand streams are captured into PhaseTraces, and the accelerator
 * consumes the recorded streams through the SlabSupply seam (the
 * ingestion path real activation dumps would take).
 */

#include <memory>

#include "api/api.h"
#include "common/logging.h"
#include "workload/supply.h"

namespace fpraker {
namespace {

using namespace api;
using workload::BatchGeometry;
using workload::CatalogLayer;
using workload::CatalogModel;
using workload::LoweredModel;
using workload::PhaseTrace;
using workload::TraceSlabSupply;

/** A representative conv layer: (catalog model, layer name). */
struct ConvPick
{
    const char *model;
    const char *layer;
};

constexpr ConvPick kPicks[] = {
    {"AlexNet", "conv2"},          // large 5x5 mid-net conv
    {"VGG-16", "conv3_2"},         // canonical 3x3 stack member
    {"ResNet-50", "conv1"},        // strided 7x7 stem
    {"ResNet-50", "res3_0/conv2"}, // bottleneck 3x3 core
};

REGISTER_EXPERIMENT("ext_conv_im2col",
                    "Extension: conv im2col ingestion",
                    "representative conv layers lowered via im2col and "
                    "run from recorded operand traces",
                    "per-op term-skipping payoff of real conv "
                    "geometries; trace-backed ingestion matches the "
                    "synthesized path bit-for-bit")
{
    const BatchGeometry geom{session.intOption("batch", 16), 64};

    AcceleratorConfig cfg = AcceleratorConfig::paperDefault();
    cfg.sampleSteps = session.sampleSteps(48);
    // im2col folds the minibatch into GEMM M; weights are fetched once
    // per batch already, so no extra conv weight amortization.
    cfg.convWeightBatch = 1;
    const Accelerator &accel = session.withVariant("full", cfg);

    // One LoweredModel per distinct catalog model (kept alive for the
    // jobs), plus per-pick traces of all three training ops.
    std::vector<std::unique_ptr<LoweredModel>> lowered;
    std::vector<std::unique_ptr<PhaseTrace>> traces;
    std::vector<std::unique_ptr<TraceSlabSupply>> supplies;
    std::vector<SweepLayerJob> jobs;
    std::vector<std::string> pick_labels;

    for (const ConvPick &pick : kPicks) {
        const CatalogModel &cm = workload::findWorkloadModel(pick.model);
        LoweredModel *lm = nullptr;
        for (const auto &existing : lowered)
            if (&existing->model() == &cm)
                lm = existing.get();
        if (!lm) {
            lowered.push_back(
                std::make_unique<LoweredModel>(cm, geom));
            lm = lowered.back().get();
        }

        std::vector<SweepLayerJob> model_jobs =
            lm->jobs(accel, session.progress());
        bool found = false;
        for (size_t i = 0; i < lm->units().size(); ++i) {
            if (lm->units()[i].layer->name != pick.layer)
                continue;
            traces.push_back(std::make_unique<PhaseTrace>(
                PhaseTrace::capture(workload::unitPlan(
                    *lm, i, cfg, session.progress()))));
            supplies.push_back(
                std::make_unique<TraceSlabSupply>(*traces.back()));
            SweepLayerJob job = model_jobs[i];
            job.supply = supplies.back().get();
            jobs.push_back(job);
            found = true;
        }
        panic_if(!found, "catalog model '%s' has no layer '%s'",
                 pick.model, pick.layer);
        pick_labels.push_back(std::string(pick.model) + "/" +
                              pick.layer);
    }
    std::vector<LayerOpReport> reports = session.runLayerOps(jobs);

    Result res;
    ResultTable &t = res.table(
        "conv_im2col", {"layer", "op", "M", "N", "K", "speedup",
                        "serialized tensor"});
    std::vector<double> fwd, igrad, wgrad, all;
    size_t trace_values = 0;
    for (const auto &tr : traces)
        trace_values += tr->serialValues().size() +
                        tr->parallelValues().size();
    for (size_t p = 0; p < pick_labels.size(); ++p) {
        for (size_t o = 0; o < 3; ++o) {
            const LayerOpReport &r = reports[3 * p + o];
            t.addRow({pick_labels[p], opLabel(r.op),
                      std::to_string(jobs[3 * p + o].layer->m),
                      std::to_string(jobs[3 * p + o].layer->n),
                      std::to_string(jobs[3 * p + o].layer->k),
                      Table::cell(r.speedup()),
                      tensorLabel(r.serialSide)});
            all.push_back(r.speedup());
            (o == 0 ? fwd : o == 1 ? igrad : wgrad)
                .push_back(r.speedup());
        }
    }
    t.addRow({"Geomean", "-", "-", "-", "-", Table::cell(geomean(all)),
              "-"});

    res.addSeries("fwd_speedup", pick_labels, fwd);
    res.addSeries("input_grad_speedup", pick_labels, igrad);
    res.addSeries("weight_grad_speedup", pick_labels, wgrad);
    res.scalar("geomean_conv_speedup", geomean(all));
    res.scalar("batch", static_cast<int64_t>(geom.batch));
    res.scalar("trace_values",
               static_cast<int64_t>(trace_values));
    res.note("All phases consumed recorded operand streams "
             "(trace-backed ingestion), not live generators.");
    return res;
}

} // namespace
} // namespace fpraker
