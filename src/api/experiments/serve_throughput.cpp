/**
 * @file
 * Serving-layer load benchmark: replay a mixed cold/hot workload
 * against an in-process JobScheduler (src/serve/) and report request
 * throughput, hot-path latency percentiles, and the cache hit rate.
 *
 *   fpraker run serve_throughput [--threads=N] [--steps=N(hot reqs)]
 *
 * Cold requests simulate through the shared engine; hot requests are
 * served from the content-addressed ResultCache without engine work,
 * so the hot/cold ratio is the headline serving win (the BENCH_PR5
 * acceptance asks for >= 10x). The document contains wall-clock
 * readings, so the fingerprint is overridden with the run-invariant
 * digest over the served documents' fingerprints — which must also be
 * identical between the cold simulation and every hot replay (the
 * determinism gate; Result::ok fails on divergence).
 */

#include "api/api.h"
#include "common/fnv.h"
#include "serve/throughput.h"

namespace fpraker {
namespace {

using namespace api;

REGISTER_EXPERIMENT("serve_throughput", "Serve",
                    "serving layer: requests/s, hot-path latency, "
                    "and cache hit rate under a mixed workload",
                    "hot (cache-served) requests >= 10x cold "
                    "(simulating) requests/s; hot fingerprints "
                    "bit-identical to the cold run's")
{
    serve::ThroughputOptions opts;
    // The scheduler drives its own engine (like perf_regression), so
    // the session's shared pool is not borrowed; --threads=N still
    // sets the engine width.
    opts.engineThreads = session.threadsExplicit()
                             ? session.requestedThreads()
                             : 2;
    opts.workers = 2;
    opts.hotRequests = session.intOption("steps", 240);
    opts.sampleStepsBase = session.sampleSteps(12);

    serve::ThroughputReport r = serve::measureServeThroughput(opts);

    Result res;
    // The scheduler's engine width is the knob that matters here.
    res.threads = opts.engineThreads;
    res.sampleSteps = opts.sampleStepsBase;

    char caption[160];
    std::snprintf(caption, sizeof(caption),
                  "workload: %d distinct %s specs cold, %d hot "
                  "requests cycling them (engine threads=%d, "
                  "workers=%d)",
                  opts.distinctSpecs, opts.experiment.c_str(),
                  opts.hotRequests, opts.engineThreads, opts.workers);
    ResultTable &t = res.table(
        "serving", {"path", "requests", "seconds", "req/s", "p50 ms",
                    "p99 ms"});
    t.caption = caption;
    t.addRow({"cold (simulate)", std::to_string(opts.distinctSpecs),
              Table::cell(r.coldSeconds, 4), Table::cell(r.coldRps, 1),
              "-", "-"});
    t.addRow({"hot (cache)", std::to_string(opts.hotRequests),
              Table::cell(r.hotSeconds, 4), Table::cell(r.hotRps, 1),
              Table::cell(r.hotP50Ms, 4), Table::cell(r.hotP99Ms, 4)});

    res.addSeries("requests_per_sec", {"cold", "hot"},
                  {r.coldRps, r.hotRps});

    serve::addServingGroup(res, opts, r);

    // Overload behavior: burst 4x the queue depth of cold specs at a
    // single worker; admission control must shed the overflow with
    // retry_after hints, accept latency must stay bounded, and every
    // shed spec must complete on retry.
    serve::ShedOptions shedOpts;
    shedOpts.engineThreads = opts.engineThreads;
    shedOpts.sampleStepsBase = opts.sampleStepsBase;
    serve::ShedReport shed = serve::measureShedBehavior(shedOpts);
    serve::addShedGroup(res, shedOpts, shed);

    ResultTable &st = res.table(
        "shed", {"burst", "queue depth", "accepted", "shed",
                 "retries", "submit p99 ms"});
    st.caption = "open-loop overload burst (reject-newest with "
                 "retry_after hints; shed specs resubmitted under "
                 "the client RetryPolicy)";
    st.addRow({std::to_string(shedOpts.burst),
               std::to_string(shedOpts.queueDepth),
               std::to_string(shed.accepted),
               std::to_string(shed.shed),
               std::to_string(shed.retryAttempts),
               Table::cell(shed.submitP99Ms, 4)});

    if (shed.shed == 0)
        res.fail("overload burst was never shed (admission control "
                 "inert)");
    if (!shed.hintsOk)
        res.fail("an overload rejection lacked a retry_after hint");
    if (!shed.drained)
        res.fail("scheduler did not drain after the overload burst");
    if (!shed.completed)
        res.fail("a shed spec never completed under retry");

    char note[160];
    std::snprintf(note, sizeof(note),
                  "hot/cold = %.1fx, cache hit rate %.1f%%, %llu "
                  "simulations for %llu requests",
                  r.coldRps > 0 ? r.hotRps / r.coldRps : 0.0,
                  r.hitRate * 100.0,
                  static_cast<unsigned long long>(r.executions),
                  static_cast<unsigned long long>(r.requests));
    res.note(note);

    if (!r.deterministic)
        res.fail("hot documents diverged from the cold run");
    if (!r.allHotCached)
        res.fail("a hot request missed the cache");

    // Wall-clock document: fingerprint over the served documents'
    // fingerprints instead (run-invariant; the shed digest is too —
    // every spec completes, so its fingerprint set is fixed).
    Fnv64 fp;
    fp.add(r.digest);
    fp.add(static_cast<uint64_t>(
        r.deterministic && r.allHotCached ? 1 : 0));
    fp.add(shed.digest);
    res.setFingerprint(fp.value());
    return res;
}

} // namespace
} // namespace fpraker
