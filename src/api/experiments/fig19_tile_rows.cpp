/**
 * @file
 * Fig. 19 — FPRaker speedup vs the number of PE rows per tile
 * (2/4/8/16) at a fixed total PE budget: more rows share one serial
 * operand stream, increasing intra-column synchronization.
 */

#include "api/api.h"

namespace fpraker {
namespace {

using namespace api;

REGISTER_EXPERIMENT("fig19", "Fig. 19", "speedup vs rows per tile",
                    "increasing rows per tile costs ~6% on average "
                    "from 2 to 16 rows (more PEs synchronized on one "
                    "A stream)")
{
    const int rows_options[] = {2, 4, 8, 16};
    const int pe_budget = 36 * 64; // total PEs at iso-compute area

    // The geometry sweep is where the per-PE retirement-skip summary
    // bit earns its keep (16 PEs share one A stream in the widest
    // configuration); the 4 variants x 9 models fan out as one job
    // list over a shared engine.
    std::vector<std::string> names;
    for (int rows : rows_options) {
        AcceleratorConfig cfg = AcceleratorConfig::paperDefault();
        cfg.sampleSteps = session.sampleSteps(64);
        cfg.tile.rows = rows;
        cfg.fprTiles = pe_budget / (rows * cfg.tile.cols);
        names.push_back(std::to_string(rows) + "-rows");
        session.withVariant(names.back(), cfg);
    }
    std::vector<ModelRunReport> reports =
        session.runModels(session.zooJobsFor(names));
    const size_t n_models = modelZoo().size();

    Result res;
    std::vector<std::string> headers = {"model"};
    for (int rows : rows_options)
        headers.push_back(std::to_string(rows) + " rows");
    ResultTable &t = res.table("rows_speedup", headers);

    std::vector<std::vector<double>> per_rows(4);
    std::vector<std::string> model_labels;
    for (size_t m = 0; m < n_models; ++m) {
        std::vector<std::string> row = {reports[m].model};
        model_labels.push_back(reports[m].model);
        for (size_t i = 0; i < 4; ++i) {
            const ModelRunReport &r = reports[i * n_models + m];
            per_rows[i].push_back(r.speedup());
            row.push_back(Table::cell(r.speedup()));
        }
        t.addRow(row);
    }
    std::vector<std::string> geo = {"Geomean"};
    std::vector<double> geo_values;
    std::vector<std::string> rows_labels;
    for (size_t i = 0; i < 4; ++i) {
        geo.push_back(Table::cell(geomean(per_rows[i])));
        res.scalar("geomean_speedup_" +
                       std::to_string(rows_options[i]) + "_rows",
                   geomean(per_rows[i]));
        geo_values.push_back(geomean(per_rows[i]));
        rows_labels.push_back(std::to_string(rows_options[i]) +
                              " rows");
        res.addSeries("speedup_" + std::to_string(rows_options[i]) +
                          "_rows",
                      model_labels, per_rows[i]);
    }
    t.addRow(geo);
    res.addSeries("geomean_speedup", rows_labels, geo_values);
    return res;
}

} // namespace
} // namespace fpraker
