/**
 * @file
 * Structured experiment results: one document type for every harness.
 *
 * Legacy bench mains each hand-rolled printf tables and ad-hoc JSON;
 * a Result instead collects tables, series, scalar metrics, metric
 * groups, and free-text notes in presentation order, and carries the
 * provenance of the run (experiment id, config digest, thread count,
 * sample budget). ReportWriter renders the same document either as
 * the paper-style text tables (matching the legacy harness output) or
 * as one canonical JSON schema ("fpraker-result-v1") that
 * scripts/check_result_schema.py validates.
 */

#ifndef FPRAKER_API_RESULT_H
#define FPRAKER_API_RESULT_H

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "api/json.h"

namespace fpraker {
namespace api {

/** One scalar metric: integer, double (with print precision), text,
 *  or boolean. */
struct MetricValue
{
    enum class Kind { Int, Double, Text, Bool };
    Kind kind = Kind::Int;
    int64_t i = 0;
    double d = 0.0;
    int precision = -1; //!< Fixed digits for Double; -1 = shortest.
    bool b = false;
    std::string s;

    static MetricValue of(int64_t v);
    static MetricValue of(uint64_t v);
    static MetricValue of(int v) { return of(static_cast<int64_t>(v)); }
    static MetricValue of(double v, int precision = -1);
    static MetricValue of(std::string v);
    static MetricValue of(const char *v) { return of(std::string(v)); }
    static MetricValue of(bool v);

    JsonValue toJson() const;
};

/** A named, ordered bundle of metrics (one JSON sub-object). */
struct MetricGroup
{
    std::string name;
    std::vector<std::pair<std::string, MetricValue>> metrics;

    template <typename T>
    MetricGroup &
    metric(const std::string &key, T v)
    {
        metrics.emplace_back(key, MetricValue::of(v));
        return *this;
    }

    MetricGroup &
    metric(const std::string &key, double v, int precision)
    {
        metrics.emplace_back(key, MetricValue::of(v, precision));
        return *this;
    }
};

/** One printed table: headers + pre-formatted cell strings. */
struct ResultTable
{
    std::string name;    //!< Slug used in the JSON document.
    std::string caption; //!< Optional line printed above the table.
    std::vector<std::string> headers;
    std::vector<std::vector<std::string>> rows;

    ResultTable &addRow(std::vector<std::string> row);
};

/** A named numeric series (one figure line/bar group). */
struct ResultSeries
{
    std::string name;
    std::vector<std::string> labels;
    std::vector<double> values;
};

/**
 * The structured result of one experiment. Identity and provenance
 * fields are filled by the driver (from the registry entry and the
 * Session); the experiment body only adds content.
 */
class Result
{
  public:
    // ------------------------------------------------------- identity
    std::string experiment;  //!< Registry id, e.g. "fig11".
    std::string display;     //!< Banner label, e.g. "Fig. 11".
    std::string title;
    std::string expectation; //!< The paper's expected shape.
    bool ok = true;          //!< False = the experiment failed a gate.
    /**
     * A path the driver writes the JSON document to even without
     * --json (the perf-regression trajectory file BENCH_PR<N>.json);
     * empty for ordinary experiments.
     */
    std::string defaultJsonPath;

    // ----------------------------------------------------- provenance
    std::string configDigest; //!< Hex digest over the session variants.
    int threads = 0;
    int sampleSteps = 0;
    /**
     * slab_ops dispatch tier the run executed under ("scalar",
     * "sse2", "avx2", or "avx512" — whichever activeTier() resolved,
     * including a FPRAKER_SIMD override). Filled by the driver when
     * the experiment leaves it empty. Provenance only — the
     * determinism contract says every tier produces the same bytes,
     * so the tier must never be part of the fingerprint.
     */
    std::string simdLevel;
    std::vector<std::string> variants;
    /**
     * True when this document was served from the ResultCache instead
     * of simulated (src/serve/). Always false for documents a run
     * produces directly; the serve layer patches it on a cache hit.
     * Provenance only — never part of the fingerprint.
     */
    bool cached = false;

    /**
     * Milliseconds this result finished past its serve-layer
     * deadline (0 = met or none). Set only by the JobScheduler on
     * the submitter's copy of an overrunning job's document — the
     * cached copy stays clean, so the field never perturbs cache
     * byte-stability. Rendered as provenance.deadline_overrun_ms
     * only when positive. Provenance only — never fingerprinted.
     */
    int deadlineOverrunMs = 0;

    /**
     * Simulation-memoization provenance (sim/sim_memo.h), rendered as
     * provenance.memo_mode/memo_hits/memo_misses only when an
     * experiment sets memoMode (""/unset omits all three). Opt-in
     * rather than driver-filled because hit counts depend on how warm
     * the process-wide memo already is: unconditional rendering would
     * break the serve layer's cold-document byte-identity (a direct
     * rerun hits where the first run missed). Provenance only — memo
     * state never changes simulated values, so it must never reach
     * the fingerprint.
     */
    std::string memoMode;
    uint64_t memoHits = 0;
    uint64_t memoMisses = 0;

    /**
     * Opt-in obs-registry snapshot (src/obs/metrics.h), rendered as a
     * top-level "telemetry" object only when hasTelemetry is set (the
     * driver sets it for `fpraker run --telemetry`). Opt-in for the
     * same reason as the memo trio: counter values depend on process
     * history, so unconditional rendering would break the serve
     * layer's document byte-identity. Telemetry only — never part of
     * the fingerprint.
     */
    JsonValue telemetry;
    bool hasTelemetry = false;

    // -------------------------------------------------------- content
    /** Append a table (rendered in insertion order). */
    ResultTable &table(const std::string &name,
                       std::vector<std::string> headers);
    /** Append a free-text note (rendered in insertion order). */
    void note(const std::string &text);
    /** Append a named metric group (JSON sub-object). */
    MetricGroup &group(const std::string &name);
    /** Add one top-level scalar metric. */
    template <typename T>
    void
    scalar(const std::string &key, T v)
    {
        scalars_.emplace_back(key, MetricValue::of(v));
    }
    void
    scalar(const std::string &key, double v, int precision)
    {
        scalars_.emplace_back(key, MetricValue::of(v, precision));
    }
    /** Add a named numeric series. */
    ResultSeries &addSeries(const std::string &name,
                            std::vector<std::string> labels,
                            std::vector<double> values);
    /** Mark the experiment failed (exit status 1) with a note. */
    void fail(const std::string &why);

    /**
     * Stable digest (FNV-1a) of the experiment's content — tables,
     * series, scalars, metric groups, and notes, never provenance.
     * The determinism guarantee makes this identical whether the
     * experiment ran serially or sharded (any thread count, `run
     * --all` serial or parallel); scripts/check_fingerprints.py and
     * CI compare the emitted values across modes. Experiments whose
     * documents contain wall-clock readings (perf_regression) must
     * override it with their determinism checksums via
     * setFingerprint, keeping the fingerprint run-invariant.
     */
    uint64_t fingerprint() const;
    /** Replace the computed fingerprint (timing experiments). */
    void
    setFingerprint(uint64_t fp)
    {
        fingerprintOverride_ = fp;
        hasFingerprintOverride_ = true;
    }
    /**
     * True for timing experiments whose document content is NOT
     * run-invariant (wall-clock readings) — the serve layer must not
     * cache such documents.
     */
    bool hasFingerprintOverride() const
    {
        return hasFingerprintOverride_;
    }

    const std::deque<ResultTable> &tables() const { return tables_; }
    const std::vector<std::string> &notes() const { return notes_; }
    const std::deque<MetricGroup> &groups() const { return groups_; }
    const std::vector<std::pair<std::string, MetricValue>> &
    scalars() const
    {
        return scalars_;
    }
    const std::deque<ResultSeries> &series() const { return series_; }

    /** The canonical JSON document ("fpraker-result-v1"). */
    JsonValue toJson() const;

    /** Presentation order of tables and notes. */
    struct DisplayItem
    {
        enum class Kind { Table, Note } kind;
        size_t index;
    };
    const std::vector<DisplayItem> &displayOrder() const
    {
        return order_;
    }

  private:
    // Deques, not vectors: table()/group()/addSeries() hand out
    // references that experiments hold across further insertions
    // (fig01 fills two tables in one loop), so growth must never
    // relocate existing elements.
    std::deque<ResultTable> tables_;
    std::vector<std::string> notes_;
    std::deque<MetricGroup> groups_;
    std::vector<std::pair<std::string, MetricValue>> scalars_;
    std::deque<ResultSeries> series_;
    std::vector<DisplayItem> order_;
    uint64_t fingerprintOverride_ = 0;
    bool hasFingerprintOverride_ = false;
};

/** Renders Result documents: legacy-style text or canonical JSON. */
class ReportWriter
{
  public:
    /** Banner + captioned tables + notes, like the legacy harnesses. */
    static void print(const Result &r);
    /** Render the text report to a string (what print() writes). */
    static std::string renderText(const Result &r);
    /** The canonical JSON text (toJson().dump() + newline). */
    static std::string renderJson(const Result &r);
    /** Write renderJson to @p path; panics if the file can't open. */
    static void writeJson(const Result &r, const std::string &path);
};

} // namespace api
} // namespace fpraker

#endif // FPRAKER_API_RESULT_H
