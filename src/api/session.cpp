#include "api/session.h"

#include <cstdio>
#include <cstdlib>

#include "common/fnv.h"
#include "common/logging.h"
#include "trace/model_zoo.h"

namespace fpraker {
namespace api {

AcceleratorVariants
makeVariants(int sample_steps)
{
    AcceleratorVariants v;
    v.full = AcceleratorConfig::paperDefault();
    v.full.sampleSteps = sample_steps;

    v.zeroBdc = v.full;
    v.zeroBdc.tile.pe.skipOutOfBounds = false;

    v.zeroOnly = v.zeroBdc;
    v.zeroOnly.useBdc = false;
    return v;
}

std::vector<SweepJob>
zooJobs(const std::vector<const Accelerator *> &variants, double progress)
{
    std::vector<SweepJob> jobs;
    for (const Accelerator *accel : variants)
        for (const auto &model : modelZoo())
            jobs.push_back(SweepJob{accel, &model, progress});
    return jobs;
}

Session &
Session::threads(int n)
{
    panic_if(runner_ != nullptr,
             "Session::threads must be set before the runner is used");
    panic_if(n < 1, "Session::threads requires n >= 1 (got %d)", n);
    requestedThreads_ = n;
    return *this;
}

Session &
Session::shareEngine(SimEngine *engine)
{
    panic_if(runner_ != nullptr, "Session::shareEngine must be set "
                                 "before the runner is used");
    panic_if(!engine, "shared engine must not be null");
    sharedEngine_ = engine;
    return *this;
}

Session &
Session::overrideSampleSteps(int n)
{
    panic_if(n < 1,
             "Session::overrideSampleSteps requires n >= 1 (got %d)",
             n);
    requestedSampleSteps_ = n;
    return *this;
}

Session &
Session::progress(double p)
{
    progress_ = p;
    return *this;
}

int
Session::threadCount()
{
    return runner().threads();
}

int
Session::sampleSteps(int fallback)
{
    int v = fallback;
    if (requestedSampleSteps_ > 0) {
        v = requestedSampleSteps_;
    } else if (const char *env = std::getenv("FPRAKER_SAMPLE_STEPS")) {
        int e = std::atoi(env);
        if (e > 0)
            v = e;
    }
    lastSampleSteps_ = v;
    return v;
}

void
Session::setOption(const std::string &key, std::string value)
{
    options_[key] = std::move(value);
}

const std::string *
Session::option(const std::string &key) const
{
    auto it = options_.find(key);
    return it == options_.end() ? nullptr : &it->second;
}

int
Session::intOption(const std::string &key, int fallback) const
{
    const std::string *v = option(key);
    if (!v)
        return fallback;
    int n = std::atoi(v->c_str());
    fatal_if(n < 1, "option --%s requires a positive integer (got %s)",
             key.c_str(), v->c_str());
    return n;
}

std::string
Session::strOption(const std::string &key,
                   const std::string &fallback) const
{
    const std::string *v = option(key);
    return v ? *v : fallback;
}

namespace {

/**
 * Canonical one-line description of a variant config: every knob that
 * can change simulation results, in a fixed order. Feeds the digest
 * and the JSON provenance.
 */
std::string
describeConfig(const AcceleratorConfig &cfg)
{
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "tile=%dx%d lanes=%d depth=%d maxDelta=%d ob=%d obSkip=%d "
        "enc=%d accFrac=%d accInt=%d chunk=%d expFloor=%d "
        "fprTiles=%d baseTiles=%d bdc=%d convBatch=%d stash=%llu "
        "transient=%llu autoSerial=%d reuse=%d samples=%d seed=%llx",
        cfg.tile.rows, cfg.tile.cols, cfg.tile.pe.lanes,
        cfg.tile.bufferDepth, cfg.tile.pe.maxDelta,
        cfg.tile.pe.obThreshold, cfg.tile.pe.skipOutOfBounds ? 1 : 0,
        static_cast<int>(cfg.tile.pe.encoding), cfg.tile.pe.acc.fracBits,
        cfg.tile.pe.acc.intBits, cfg.tile.pe.acc.chunkSize,
        cfg.tile.pe.exponentFloor, cfg.fprTiles, cfg.baselineTiles,
        cfg.useBdc ? 1 : 0, cfg.convWeightBatch,
        static_cast<unsigned long long>(cfg.actStashBytes),
        static_cast<unsigned long long>(cfg.gbTransientBytes),
        cfg.autoSerialSide ? 1 : 0, cfg.scratchpadReuse, cfg.sampleSteps,
        static_cast<unsigned long long>(cfg.seed));
    return buf;
}

} // namespace

const Accelerator &
Session::withVariant(const std::string &name,
                     const AcceleratorConfig &cfg,
                     const EnergyModelConfig &ecfg)
{
    panic_if(variants_.count(name),
             "variant '%s' registered twice", name.c_str());
    const Accelerator &accel = runner().addAccelerator(cfg, ecfg);
    variantNames_.push_back(name);
    variants_[name] = &accel;
    variantDescs_.push_back(name + ": " + describeConfig(cfg));
    return accel;
}

const Accelerator &
Session::variant(const std::string &name) const
{
    auto it = variants_.find(name);
    panic_if(it == variants_.end(), "unknown variant '%s'",
             name.c_str());
    return *it->second;
}

bool
Session::hasVariant(const std::string &name) const
{
    return variants_.count(name) != 0;
}

SweepRunner &
Session::runner()
{
    if (!runner_)
        runner_ = sharedEngine_
                      ? std::make_unique<SweepRunner>(sharedEngine_)
                      : std::make_unique<SweepRunner>(requestedThreads_);
    return *runner_;
}

std::vector<ModelRunReport>
Session::runModels(const std::vector<SweepJob> &jobs)
{
    return runner().runModels(jobs);
}

std::vector<LayerOpReport>
Session::runLayerOps(const std::vector<SweepLayerJob> &jobs)
{
    return runner().runLayerOps(jobs);
}

void
Session::parallelFor(size_t n, const std::function<void(size_t)> &fn)
{
    runner().parallelFor(n, fn);
}

std::vector<SweepJob>
Session::zooJobsFor(const std::vector<std::string> &names)
{
    std::vector<const Accelerator *> accels;
    for (const std::string &name : names)
        accels.push_back(&variant(name));
    return zooJobs(accels, progress_);
}

std::string
Session::configDigest() const
{
    Fnv64 h;
    for (const std::string &desc : variantDescs_)
        h.add(desc);
    return h.hex();
}

} // namespace api
} // namespace fpraker
