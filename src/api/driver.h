/**
 * @file
 * The experiment CLI driver shared by the `fpraker` multiplexer and
 * the per-figure shim binaries.
 *
 * Flag parsing is strict: unknown --flags and out-of-range values
 * (e.g. --threads=0) print usage to stderr and exit with status 2.
 * Exit status 1 means an experiment ran but failed one of its own
 * gates (a determinism check); 0 is success.
 */

#ifndef FPRAKER_API_DRIVER_H
#define FPRAKER_API_DRIVER_H

#include <initializer_list>
#include <string>
#include <vector>

#include "api/registry.h"

namespace fpraker {
namespace api {

/** Parsed command-line options shared by all entry points. */
struct CliOptions
{
    int threads = 0;     //!< 0 = default (FPRAKER_THREADS or serial).
    int sampleSteps = 0; //!< 0 = default (env or experiment fallback).
    std::string json;    //!< --json=FILE (single experiment).
    std::string jsonDir; //!< --json-dir=DIR (one <id>.json each).
    //! --trace-out=FILE: collect obs spans, write Chrome trace_event
    //! JSON when the run finishes (loadable in chrome://tracing).
    std::string traceOut;
    //! --telemetry: fold the obs-registry snapshot into each result
    //! document (opt-in, like memo provenance).
    bool telemetry = false;
    bool all = false;    //!< run --all
    //! Experiment-specific passthrough options (--steps/--reps/--out).
    std::vector<std::pair<std::string, std::string>> extras;
    std::vector<std::string> ids; //!< Positional experiment ids.
};

/**
 * Parse argv[first..). @p allow_positionals permits bare experiment
 * ids (the `fpraker run` form); shims accept flags only. On error
 * fills @p error and returns false.
 */
bool parseCliArgs(int argc, char **argv, int first,
                  bool allow_positionals, CliOptions *opts,
                  std::string *error);

/**
 * Run one registered experiment under a fresh Session configured from
 * @p opts and return the finished Result (identity and provenance
 * filled), without rendering or writing anything. This is the
 * execution core shared by the CLI paths below and the serve layer's
 * JobScheduler (src/serve/scheduler.h). When @p shared is non-null
 * the session borrows it as its worker pool.
 */
Result produceResult(const ExperimentInfo &info, const CliOptions &opts,
                     SimEngine *shared);

/** Buffered outcome of one experiment run. */
struct ExperimentOutcome
{
    int status = 0;   //!< Process exit status contribution (0 or 1).
    std::string text; //!< Rendered report + "wrote ..." lines.
};

/**
 * Run one registered experiment under a fresh Session configured from
 * @p opts, returning the rendered report instead of printing it (so
 * `run --all` can execute experiments concurrently and still emit
 * ordered output). When @p shared is non-null the session borrows it
 * as its worker pool. JSON documents are still written here.
 */
ExperimentOutcome runExperimentBuffered(const ExperimentInfo &info,
                                        const CliOptions &opts,
                                        SimEngine *shared);

/**
 * Run one registered experiment under a fresh Session configured from
 * @p opts, print its text report, and (optionally) write its JSON
 * document. Returns the process exit status contribution (0 or 1).
 */
int runExperiment(const ExperimentInfo &info, const CliOptions &opts);

/**
 * Entry point for the per-figure shim binaries: parse flags strictly,
 * then run the fixed experiment list in order. Returns the process
 * exit status (0 success, 1 experiment failure, 2 usage error).
 */
int experimentMain(std::initializer_list<const char *> ids, int argc,
                   char **argv);

/** Entry point for the `fpraker` multiplexer (list / run). */
int cliMain(int argc, char **argv);

} // namespace api
} // namespace fpraker

#endif // FPRAKER_API_DRIVER_H
