#include "api/json.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace fpraker {
namespace api {

JsonValue
JsonValue::array()
{
    JsonValue v;
    v.kind_ = Kind::Array;
    return v;
}

JsonValue
JsonValue::object()
{
    JsonValue v;
    v.kind_ = Kind::Object;
    return v;
}

double
JsonValue::number() const
{
    return kind_ == Kind::Int ? static_cast<double>(int_) : double_;
}

void
JsonValue::push(JsonValue v)
{
    items_.push_back(std::move(v));
}

JsonValue &
JsonValue::set(const std::string &key, JsonValue v)
{
    for (auto &entry : entries_) {
        if (entry.first == key) {
            entry.second = std::move(v);
            return entry.second;
        }
    }
    entries_.emplace_back(key, std::move(v));
    return entries_.back().second;
}

const JsonValue *
JsonValue::find(const std::string &key) const
{
    for (const auto &entry : entries_)
        if (entry.first == key)
            return &entry.second;
    return nullptr;
}

std::string
JsonValue::escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

void
JsonValue::dumpTo(std::string &out, int indent) const
{
    const std::string pad(static_cast<size_t>(indent) * 2, ' ');
    const std::string pad1(static_cast<size_t>(indent + 1) * 2, ' ');
    char buf[64];
    switch (kind_) {
      case Kind::Null:
        out += "null";
        break;
      case Kind::Bool:
        out += bool_ ? "true" : "false";
        break;
      case Kind::Int:
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(int_));
        out += buf;
        break;
      case Kind::Double:
        if (!std::isfinite(double_)) {
            // JSON has no inf/nan; emit null like most serializers.
            out += "null";
        } else if (precision_ >= 0) {
            std::snprintf(buf, sizeof(buf), "%.*f", precision_, double_);
            out += buf;
        } else {
            // Shortest representation that round-trips a double.
            std::snprintf(buf, sizeof(buf), "%.17g", double_);
            double back = std::strtod(buf, nullptr);
            if (back != double_)
                std::snprintf(buf, sizeof(buf), "%.17g", double_);
            else {
                for (int p = 1; p < 17; ++p) {
                    char tryBuf[64];
                    std::snprintf(tryBuf, sizeof(tryBuf), "%.*g", p,
                                  double_);
                    if (std::strtod(tryBuf, nullptr) == double_) {
                        std::snprintf(buf, sizeof(buf), "%s", tryBuf);
                        break;
                    }
                }
            }
            out += buf;
        }
        break;
      case Kind::String:
        out += '"';
        out += escape(str_);
        out += '"';
        break;
      case Kind::Array: {
        if (items_.empty()) {
            out += "[]";
            break;
        }
        // Arrays of scalars print inline; nested structures one per line.
        bool scalar_only = true;
        for (const JsonValue &v : items_)
            if (v.kind_ == Kind::Array || v.kind_ == Kind::Object)
                scalar_only = false;
        out += '[';
        for (size_t i = 0; i < items_.size(); ++i) {
            if (scalar_only) {
                if (i)
                    out += ", ";
            } else {
                out += i ? ",\n" : "\n";
                out += pad1;
            }
            items_[i].dumpTo(out, indent + 1);
        }
        if (!scalar_only) {
            out += '\n';
            out += pad;
        }
        out += ']';
        break;
      }
      case Kind::Object: {
        if (entries_.empty()) {
            out += "{}";
            break;
        }
        out += '{';
        for (size_t i = 0; i < entries_.size(); ++i) {
            out += i ? ",\n" : "\n";
            out += pad1;
            out += '"';
            out += escape(entries_[i].first);
            out += "\": ";
            entries_[i].second.dumpTo(out, indent + 1);
        }
        out += '\n';
        out += pad;
        out += '}';
        break;
      }
    }
}

std::string
JsonValue::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent);
    return out;
}

void
JsonValue::dumpCompactTo(std::string &out) const
{
    switch (kind_) {
      case Kind::Array: {
        out += '[';
        for (size_t i = 0; i < items_.size(); ++i) {
            if (i)
                out += ", ";
            items_[i].dumpCompactTo(out);
        }
        out += ']';
        break;
      }
      case Kind::Object: {
        out += '{';
        for (size_t i = 0; i < entries_.size(); ++i) {
            if (i)
                out += ", ";
            out += '"';
            out += escape(entries_[i].first);
            out += "\": ";
            entries_[i].second.dumpCompactTo(out);
        }
        out += '}';
        break;
      }
      default:
        // Scalars never contain raw newlines (escape() encodes
        // them), so the pretty renderer is already single-line.
        dumpTo(out, 0);
        break;
    }
}

std::string
JsonValue::dumpCompact() const
{
    std::string out;
    dumpCompactTo(out);
    return out;
}

namespace {

struct Parser
{
    const std::string &text;
    size_t pos = 0;
    std::string error;
    bool failed = false;

    explicit Parser(const std::string &t) : text(t) {}

    void
    fail(const std::string &msg)
    {
        if (!failed) {
            failed = true;
            error = msg + " at offset " + std::to_string(pos);
        }
    }

    void
    skipWs()
    {
        while (pos < text.size() &&
               (text[pos] == ' ' || text[pos] == '\t' ||
                text[pos] == '\n' || text[pos] == '\r'))
            ++pos;
    }

    bool
    consume(char c)
    {
        skipWs();
        if (pos < text.size() && text[pos] == c) {
            ++pos;
            return true;
        }
        return false;
    }

    bool
    literal(const char *word)
    {
        size_t n = 0;
        while (word[n])
            ++n;
        if (text.compare(pos, n, word) == 0) {
            pos += n;
            return true;
        }
        return false;
    }

    std::string
    parseString()
    {
        std::string out;
        if (!consume('"')) {
            fail("expected string");
            return out;
        }
        while (pos < text.size() && text[pos] != '"') {
            char c = text[pos++];
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos >= text.size())
                break;
            char esc = text[pos++];
            switch (esc) {
              case '"':
                out += '"';
                break;
              case '\\':
                out += '\\';
                break;
              case '/':
                out += '/';
                break;
              case 'n':
                out += '\n';
                break;
              case 't':
                out += '\t';
                break;
              case 'r':
                out += '\r';
                break;
              case 'b':
                out += '\b';
                break;
              case 'f':
                out += '\f';
                break;
              case 'u': {
                if (pos + 4 > text.size()) {
                    fail("truncated \\u escape");
                    return out;
                }
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text[pos++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        fail("bad \\u escape");
                }
                // Result strings are ASCII/UTF-8; encode the code
                // point as UTF-8 (BMP only — no surrogate pairing).
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xc0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                } else {
                    out += static_cast<char>(0xe0 | (code >> 12));
                    out += static_cast<char>(0x80 |
                                             ((code >> 6) & 0x3f));
                    out += static_cast<char>(0x80 | (code & 0x3f));
                }
                break;
              }
              default:
                fail("unknown escape");
                return out;
            }
        }
        if (!consume('"'))
            fail("unterminated string");
        return out;
    }

    JsonValue
    parseValue(int depth)
    {
        if (depth > 64) {
            fail("nesting too deep");
            return JsonValue();
        }
        skipWs();
        if (pos >= text.size()) {
            fail("unexpected end of input");
            return JsonValue();
        }
        char c = text[pos];
        if (c == '{') {
            ++pos;
            JsonValue obj = JsonValue::object();
            skipWs();
            if (consume('}'))
                return obj;
            while (!failed) {
                std::string key = parseString();
                if (!consume(':')) {
                    fail("expected ':'");
                    break;
                }
                obj.set(key, parseValue(depth + 1));
                if (consume(','))
                    continue;
                if (!consume('}'))
                    fail("expected ',' or '}'");
                break;
            }
            return obj;
        }
        if (c == '[') {
            ++pos;
            JsonValue arr = JsonValue::array();
            skipWs();
            if (consume(']'))
                return arr;
            while (!failed) {
                arr.push(parseValue(depth + 1));
                if (consume(','))
                    continue;
                if (!consume(']'))
                    fail("expected ',' or ']'");
                break;
            }
            return arr;
        }
        if (c == '"')
            return JsonValue(parseString());
        if (literal("true"))
            return JsonValue(true);
        if (literal("false"))
            return JsonValue(false);
        if (literal("null"))
            return JsonValue();

        // Number, per the JSON grammar: -?digits(.digits)?([eE][+-]?
        // digits)? — stray signs or dots fail instead of silently
        // truncating the token.
        size_t start = pos;
        bool is_double = false;
        auto digits = [&]() {
            size_t n = 0;
            while (pos < text.size() && text[pos] >= '0' &&
                   text[pos] <= '9') {
                ++pos;
                ++n;
            }
            return n > 0;
        };
        if (pos < text.size() && text[pos] == '-')
            ++pos;
        if (!digits()) {
            fail("unexpected character");
            return JsonValue();
        }
        if (pos < text.size() && text[pos] == '.') {
            ++pos;
            is_double = true;
            if (!digits()) {
                fail("digits required after decimal point");
                return JsonValue();
            }
        }
        if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
            ++pos;
            is_double = true;
            if (pos < text.size() &&
                (text[pos] == '+' || text[pos] == '-'))
                ++pos;
            if (!digits()) {
                fail("digits required in exponent");
                return JsonValue();
            }
        }
        std::string num = text.substr(start, pos - start);
        if (is_double)
            return JsonValue(std::strtod(num.c_str(), nullptr));
        return JsonValue(
            static_cast<int64_t>(std::strtoll(num.c_str(), nullptr, 10)));
    }
};

} // namespace

JsonValue
JsonValue::parse(const std::string &text, std::string *error)
{
    Parser p(text);
    JsonValue v = p.parseValue(0);
    p.skipWs();
    if (!p.failed && p.pos != text.size())
        p.fail("trailing characters");
    if (p.failed) {
        if (error)
            *error = p.error;
        return JsonValue();
    }
    if (error)
        error->clear();
    return v;
}

bool
JsonValue::operator==(const JsonValue &o) const
{
    if (isNumber() && o.isNumber())
        return number() == o.number();
    if (kind_ != o.kind_)
        return false;
    switch (kind_) {
      case Kind::Null:
        return true;
      case Kind::Bool:
        return bool_ == o.bool_;
      case Kind::Int:
      case Kind::Double:
        return number() == o.number();
      case Kind::String:
        return str_ == o.str_;
      case Kind::Array:
        return items_ == o.items_;
      case Kind::Object:
        return entries_ == o.entries_;
    }
    return false;
}

} // namespace api
} // namespace fpraker
