/**
 * @file
 * Umbrella header for experiment implementations: the Session /
 * Result / Registry triple plus the helpers every figure harness
 * uses (model zoo, stats, table-cell formatting).
 */

#ifndef FPRAKER_API_API_H
#define FPRAKER_API_API_H

#include "api/registry.h"
#include "api/result.h"
#include "api/session.h"

#include "accel/accelerator.h"
#include "common/stats.h"
#include "common/table.h"
#include "trace/model_zoo.h"

#endif // FPRAKER_API_API_H
