#include "api/registry.h"

#include <algorithm>

#include "common/logging.h"

namespace fpraker {
namespace api {

ExperimentRegistry &
ExperimentRegistry::instance()
{
    // Function-local static: safe to use from the static initializers
    // that REGISTER_EXPERIMENT expands to in other translation units.
    static ExperimentRegistry registry;
    return registry;
}

bool
ExperimentRegistry::add(ExperimentInfo info)
{
    panic_if(info.id.empty() || !info.fn, "malformed experiment");
    panic_if(find(info.id) != nullptr,
             "experiment '%s' registered twice", info.id.c_str());
    experiments_.push_back(std::move(info));
    return true;
}

const ExperimentInfo *
ExperimentRegistry::find(const std::string &id) const
{
    for (const ExperimentInfo &e : experiments_)
        if (e.id == id)
            return &e;
    return nullptr;
}

std::vector<const ExperimentInfo *>
ExperimentRegistry::all() const
{
    std::vector<const ExperimentInfo *> out;
    out.reserve(experiments_.size());
    for (const ExperimentInfo &e : experiments_)
        out.push_back(&e);
    std::sort(out.begin(), out.end(),
              [](const ExperimentInfo *a, const ExperimentInfo *b) {
                  return a->id < b->id;
              });
    return out;
}

} // namespace api
} // namespace fpraker
