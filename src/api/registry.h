/**
 * @file
 * ExperimentRegistry: every figure/table/extension experiment
 * self-registers as a function from Session to Result, and the
 * `fpraker` multiplexer (plus the per-figure shim binaries) looks it
 * up by id. Registration happens from static initializers in the
 * src/api/experiments/ sources via REGISTER_EXPERIMENT, so linking
 * the experiment objects into a binary is what populates the
 * registry.
 */

#ifndef FPRAKER_API_REGISTRY_H
#define FPRAKER_API_REGISTRY_H

#include <functional>
#include <string>
#include <vector>

#include "api/result.h"
#include "api/session.h"

namespace fpraker {
namespace api {

/** The body of an experiment: consume a configured Session, produce
 *  the structured Result (identity/provenance filled by the driver). */
using ExperimentFn = std::function<Result(Session &)>;

struct ExperimentInfo
{
    std::string id;          //!< CLI slug, e.g. "fig11".
    std::string display;     //!< Banner label, e.g. "Fig. 11".
    std::string title;       //!< What the experiment measures.
    std::string expectation; //!< The paper's expected shape.
    ExperimentFn fn;
};

class ExperimentRegistry
{
  public:
    static ExperimentRegistry &instance();

    /** Register an experiment; panics on a duplicate id. */
    bool add(ExperimentInfo info);

    /** Look up by id; nullptr when unknown. */
    const ExperimentInfo *find(const std::string &id) const;

    /** All experiments, sorted by id. */
    std::vector<const ExperimentInfo *> all() const;

    size_t size() const { return experiments_.size(); }

  private:
    ExperimentRegistry() = default;
    std::vector<ExperimentInfo> experiments_;
};

} // namespace api
} // namespace fpraker

#define FPRAKER_REG_CONCAT_(a, b) a##b
#define FPRAKER_REG_CONCAT(a, b) FPRAKER_REG_CONCAT_(a, b)

/**
 * Define and register an experiment. Usage:
 *
 *   REGISTER_EXPERIMENT("fig11", "Fig. 11", "title...", "expectation...")
 *   {
 *       ... body using `session`, returning a Result ...
 *   }
 */
#define REGISTER_EXPERIMENT(id, display, title, expectation)               \
    static ::fpraker::api::Result FPRAKER_REG_CONCAT(                      \
        fprakerExperimentFn_, __LINE__)(::fpraker::api::Session &);        \
    static const bool FPRAKER_REG_CONCAT(fprakerExperimentReg_,            \
                                         __LINE__) =                       \
        ::fpraker::api::ExperimentRegistry::instance().add(                \
            {id, display, title, expectation,                              \
             &FPRAKER_REG_CONCAT(fprakerExperimentFn_, __LINE__)});        \
    static ::fpraker::api::Result FPRAKER_REG_CONCAT(                      \
        fprakerExperimentFn_,                                              \
        __LINE__)([[maybe_unused]] ::fpraker::api::Session &session)

#endif // FPRAKER_API_REGISTRY_H
