#include "trace/model_zoo.h"

#include "common/logging.h"

namespace fpraker {

namespace {

/** Convolution layer in im2col GEMM view. */
LayerShape
conv(const std::string &name, int out_hw, int cout, int cin, int kernel)
{
    LayerShape l;
    l.name = name;
    l.type = LayerType::Conv;
    l.m = static_cast<int64_t>(out_hw) * out_hw;
    l.n = cout;
    l.k = static_cast<int64_t>(cin) * kernel * kernel;
    l.kernelArea = kernel * kernel;
    return l;
}

/** Convolution with a non-square output. */
LayerShape
convHw(const std::string &name, int out_h, int out_w, int cout, int cin,
       int kernel)
{
    LayerShape l;
    l.name = name;
    l.type = LayerType::Conv;
    l.m = static_cast<int64_t>(out_h) * out_w;
    l.n = cout;
    l.k = static_cast<int64_t>(cin) * kernel * kernel;
    l.kernelArea = kernel * kernel;
    return l;
}

/** Fully connected layer (batch folded into M). */
LayerShape
fc(const std::string &name, int64_t batch, int in, int out)
{
    LayerShape l;
    l.name = name;
    l.type = LayerType::FullyConnected;
    l.m = batch;
    l.n = out;
    l.k = in;
    return l;
}

/** One LSTM direction: all four gates fused into one GEMM per step. */
LayerShape
lstm(const std::string &name, int64_t steps_x_batch, int input, int hidden)
{
    LayerShape l;
    l.name = name;
    l.type = LayerType::Lstm;
    l.m = steps_x_batch;
    l.n = 4 * hidden;
    l.k = input + hidden;
    return l;
}

/** Attention GEMM (projections or score/value matmuls). */
LayerShape
attn(const std::string &name, int64_t m, int64_t n, int64_t k)
{
    LayerShape l;
    l.name = name;
    l.type = LayerType::Attention;
    l.m = m;
    l.n = n;
    l.k = k;
    return l;
}

/** SqueezeNet fire module: squeeze 1x1 then expand 1x1 + 3x3. */
void
fire(std::vector<LayerShape> &out, const std::string &name, int hw,
     int cin, int squeeze, int expand)
{
    out.push_back(conv(name + "/squeeze1x1", hw, squeeze, cin, 1));
    out.push_back(conv(name + "/expand1x1", hw, expand, squeeze, 1));
    out.push_back(conv(name + "/expand3x3", hw, expand, squeeze, 3));
}

/** ResNet bottleneck block (1x1 reduce, 3x3, 1x1 expand). */
void
bottleneck(std::vector<LayerShape> &out, const std::string &name, int hw,
           int cin, int mid, int cout)
{
    out.push_back(conv(name + "/conv1", hw, mid, cin, 1));
    out.push_back(conv(name + "/conv2", hw, mid, mid, 3));
    out.push_back(conv(name + "/conv3", hw, cout, mid, 1));
}

std::vector<LayerShape>
squeezenetLayers()
{
    std::vector<LayerShape> l;
    l.push_back(conv("conv1", 111, 64, 3, 3));
    fire(l, "fire2", 55, 64, 16, 64);
    fire(l, "fire3", 55, 128, 16, 64);
    fire(l, "fire4", 27, 128, 32, 128);
    fire(l, "fire5", 27, 256, 32, 128);
    fire(l, "fire6", 13, 256, 48, 192);
    fire(l, "fire7", 13, 384, 48, 192);
    fire(l, "fire8", 13, 384, 64, 256);
    fire(l, "fire9", 13, 512, 64, 256);
    l.push_back(conv("conv10", 13, 1000, 512, 1));
    return l;
}

std::vector<LayerShape>
vgg16Layers()
{
    std::vector<LayerShape> l;
    l.push_back(conv("conv1_1", 224, 64, 3, 3));
    l.push_back(conv("conv1_2", 224, 64, 64, 3));
    l.push_back(conv("conv2_1", 112, 128, 64, 3));
    l.push_back(conv("conv2_2", 112, 128, 128, 3));
    l.push_back(conv("conv3_1", 56, 256, 128, 3));
    l.push_back(conv("conv3_2", 56, 256, 256, 3));
    l.push_back(conv("conv3_3", 56, 256, 256, 3));
    l.push_back(conv("conv4_1", 28, 512, 256, 3));
    l.push_back(conv("conv4_2", 28, 512, 512, 3));
    l.push_back(conv("conv4_3", 28, 512, 512, 3));
    l.push_back(conv("conv5_1", 14, 512, 512, 3));
    l.push_back(conv("conv5_2", 14, 512, 512, 3));
    l.push_back(conv("conv5_3", 14, 512, 512, 3));
    l.push_back(fc("fc6", 32, 25088, 4096));
    l.push_back(fc("fc7", 32, 4096, 4096));
    l.push_back(fc("fc8", 32, 4096, 1000));
    return l;
}

std::vector<LayerShape>
resnet50Layers()
{
    std::vector<LayerShape> l;
    l.push_back(conv("conv1", 112, 64, 3, 7));
    const struct
    {
        const char *stage;
        int blocks, hw, cin, mid, cout;
    } stages[] = {
        {"res2", 3, 56, 64, 64, 256},
        {"res3", 4, 28, 256, 128, 512},
        {"res4", 6, 14, 512, 256, 1024},
        {"res5", 3, 7, 1024, 512, 2048},
    };
    for (const auto &s : stages) {
        for (int b = 0; b < s.blocks; ++b) {
            int cin = b == 0 ? s.cin : s.cout;
            bottleneck(l,
                       std::string(s.stage) + "_" + std::to_string(b), s.hw,
                       cin, s.mid, s.cout);
        }
    }
    l.push_back(fc("fc", 32, 2048, 1000));
    return l;
}

std::vector<LayerShape>
resnet18LayersImpl()
{
    std::vector<LayerShape> l;
    l.push_back(conv("conv1", 112, 64, 3, 7));
    const struct
    {
        const char *stage;
        int hw, cin, cout;
    } stages[] = {
        {"res2", 56, 64, 64},
        {"res3", 28, 64, 128},
        {"res4", 14, 128, 256},
        {"res5", 7, 256, 512},
    };
    for (const auto &s : stages) {
        for (int b = 0; b < 2; ++b) {
            int cin = b == 0 ? s.cin : s.cout;
            std::string base =
                std::string(s.stage) + "_" + std::to_string(b);
            l.push_back(conv(base + "/conv1", s.hw, s.cout, cin, 3));
            l.push_back(conv(base + "/conv2", s.hw, s.cout, s.cout, 3));
        }
    }
    l.push_back(fc("fc", 32, 512, 1000));
    return l;
}

std::vector<LayerShape>
snliLayers()
{
    // FC projection + LSTM encoder + FC classifier head (the paper:
    // fully-connected, LSTM-encoder, ReLU, dropout layers).
    std::vector<LayerShape> l;
    const int64_t tokens = 128 * 25; // batch 128, ~25 tokens/premise
    l.push_back(fc("embed_proj", tokens, 300, 512));
    l.push_back(lstm("lstm_enc", tokens, 512, 512));
    l.push_back(fc("cls_fc1", 128, 2048, 1024));
    l.push_back(fc("cls_fc2", 128, 1024, 1024));
    l.push_back(fc("cls_out", 128, 1024, 3));
    return l;
}

std::vector<LayerShape>
image2textLayers()
{
    // Encoder CNN over rendered formula images + LSTM decoder with
    // attention (im2latex-100k).
    std::vector<LayerShape> l;
    l.push_back(convHw("enc_conv1", 48, 160, 64, 1, 3));
    l.push_back(convHw("enc_conv2", 24, 80, 128, 64, 3));
    l.push_back(convHw("enc_conv3", 24, 80, 256, 128, 3));
    l.push_back(convHw("enc_conv4", 12, 40, 256, 256, 3));
    l.push_back(convHw("enc_conv5", 12, 40, 512, 256, 3));
    l.push_back(convHw("enc_conv6", 6, 20, 512, 512, 3));
    const int64_t dec_tokens = 32 * 80; // batch 32, ~80 output tokens
    l.push_back(lstm("dec_lstm", dec_tokens, 512 + 512, 512));
    l.push_back(fc("attn_score", dec_tokens, 512, 512));
    l.push_back(fc("dec_out", dec_tokens, 512, 500));
    return l;
}

std::vector<LayerShape>
detectron2Layers()
{
    // Mask R-CNN with a ResNet-50 FPN backbone at a 800x1216 input:
    // backbone stages, FPN laterals, RPN, and the ROI heads.
    std::vector<LayerShape> l;
    l.push_back(convHw("stem", 400, 608, 64, 3, 7));
    const struct
    {
        const char *stage;
        int blocks, h, w, cin, mid, cout;
    } stages[] = {
        {"res2", 3, 200, 304, 64, 64, 256},
        {"res3", 4, 100, 152, 256, 128, 512},
        {"res4", 6, 50, 76, 512, 256, 1024},
        {"res5", 3, 25, 38, 1024, 512, 2048},
    };
    for (const auto &s : stages) {
        for (int b = 0; b < s.blocks; ++b) {
            int cin = b == 0 ? s.cin : s.cout;
            std::string base =
                std::string(s.stage) + "_" + std::to_string(b);
            l.push_back(convHw(base + "/conv1", s.h, s.w, s.mid, cin, 1));
            l.push_back(convHw(base + "/conv2", s.h, s.w, s.mid, s.mid, 3));
            l.push_back(convHw(base + "/conv3", s.h, s.w, s.cout, s.mid, 1));
        }
    }
    // FPN laterals and output convs.
    l.push_back(convHw("fpn_lat2", 200, 304, 256, 256, 1));
    l.push_back(convHw("fpn_lat3", 100, 152, 256, 512, 1));
    l.push_back(convHw("fpn_lat4", 50, 76, 256, 1024, 1));
    l.push_back(convHw("fpn_lat5", 25, 38, 256, 2048, 1));
    l.push_back(convHw("fpn_out2", 200, 304, 256, 256, 3));
    l.push_back(convHw("fpn_out3", 100, 152, 256, 256, 3));
    // RPN head over the largest level plus ROI heads (512 proposals).
    l.push_back(convHw("rpn_conv", 200, 304, 256, 256, 3));
    l.push_back(fc("roi_fc1", 512, 12544, 1024));
    l.push_back(fc("roi_fc2", 512, 1024, 1024));
    l.push_back(convHw("mask_conv1", 14, 14 * 100, 256, 256, 3));
    l.push_back(convHw("mask_conv2", 14, 14 * 100, 256, 256, 3));
    return l;
}

std::vector<LayerShape>
ncfLayers()
{
    // NeuMF on ml-20m: embedding lookups feed an MLP tower plus the GMF
    // path; batch 1024 interactions.
    std::vector<LayerShape> l;
    const int64_t batch = 1024;
    l.push_back(fc("mlp_fc1", batch, 256, 256));
    l.push_back(fc("mlp_fc2", batch, 256, 128));
    l.push_back(fc("mlp_fc3", batch, 128, 64));
    l.push_back(fc("neumf_out", batch, 128, 1));
    return l;
}

std::vector<LayerShape>
bertLayers()
{
    // BERT-base fine-tuning on a GLUE task: batch 32, sequence 128.
    std::vector<LayerShape> l;
    const int64_t tok = 32 * 128;
    const int64_t heads_rows = 32 * 12 * 128; // per-head score rows
    for (int i = 0; i < 12; ++i) {
        std::string base = "enc" + std::to_string(i);
        l.push_back(attn(base + "/qkv", tok, 3 * 768, 768));
        l.push_back(attn(base + "/scores", heads_rows, 128, 64));
        l.push_back(attn(base + "/context", heads_rows, 64, 128));
        l.push_back(attn(base + "/attn_out", tok, 768, 768));
        l.push_back(attn(base + "/ffn1", tok, 3072, 768));
        l.push_back(attn(base + "/ffn2", tok, 768, 3072));
    }
    l.push_back(fc("pooler", 32, 768, 768));
    l.push_back(fc("cls_head", 32, 768, 2));
    return l;
}

/** Shorthand profile constructor. */
ValueProfile
vp(double sparsity, double cluster, double mu, double sigma, double corr,
   int mantissa_bits, double bit_density)
{
    ValueProfile p;
    p.sparsity = sparsity;
    p.zeroClusterLen = cluster;
    p.expMu = mu;
    p.expSigma = sigma;
    p.expCorr = corr;
    p.mantissaBits = mantissa_bits;
    p.bitDensity = bit_density;
    return p;
}

std::vector<ModelInfo>
buildZoo()
{
    std::vector<ModelInfo> zoo;

    // Profile calibration: mantissaBits/bitDensity are set so the
    // measured term sparsity (Fig. 1b) lands in the paper's 60-90%
    // band and the iso-area speedups (Fig. 11) reproduce in shape:
    // ResNet18-Q ~2x (PACT 4b values), SNLI ~1.8x (extreme bit
    // sparsity), NCF worst (~1.2x, dense wide-spread values), geomean
    // ~1.5x. See DESIGN.md for the trace-substitution rationale.
    {
        ModelInfo m;
        m.name = "SqueezeNet 1.1";
        m.application = "Image Classification";
        m.dataset = "ImageNet";
        m.layers = squeezenetLayers();
        m.profile.activation = TensorProfile::constant(
            vp(0.38, 12.0, -2.0, 2.2, 0.90, 3, 0.16));
        m.profile.weight = TensorProfile::constant(
            vp(0.02, 1.5, -3.5, 1.8, 0.80, 4, 0.28));
        m.profile.gradient = TensorProfile::constant(
            vp(0.42, 10.0, -9.0, 3.0, 0.85, 2, 0.16));
        zoo.push_back(std::move(m));
    }
    {
        ModelInfo m;
        m.name = "VGG16";
        m.application = "Image Classification";
        m.dataset = "ImageNet";
        m.layers = vgg16Layers();
        // Early training shows more activation/gradient sparsity and
        // fewer active mantissa bits; the advantage shrinks ~15% after
        // the first 30% of training (Fig. 18).
        m.profile.activation = TensorProfile(
            {{0.0, vp(0.62, 14.0, -2.5, 2.2, 0.90, 3, 0.18)},
             {0.3, vp(0.50, 12.0, -2.0, 2.2, 0.90, 3, 0.17)},
             {1.0, vp(0.48, 12.0, -2.0, 2.2, 0.90, 3, 0.17)}});
        m.profile.weight = TensorProfile::constant(
            vp(0.02, 1.5, -4.0, 1.8, 0.80, 4, 0.28));
        m.profile.gradient = TensorProfile(
            {{0.0, vp(0.66, 12.0, -10.0, 3.0, 0.85, 2, 0.15)},
             {0.3, vp(0.57, 10.0, -9.0, 3.0, 0.85, 2, 0.18)},
             {1.0, vp(0.55, 10.0, -9.0, 3.0, 0.85, 2, 0.18)}});
        zoo.push_back(std::move(m));
    }
    {
        ModelInfo m;
        m.name = "ResNet50-S2";
        m.application = "Image Classification";
        m.dataset = "ImageNet";
        m.layers = resnet50Layers();
        // Dynamic sparse reparameterization keeps weights ~80% sparse
        // throughout training.
        m.profile.activation = TensorProfile::constant(
            vp(0.42, 10.0, -2.0, 2.4, 0.90, 3, 0.15));
        m.profile.weight = TensorProfile::constant(
            vp(0.80, 1.5, -3.5, 1.8, 0.80, 4, 0.25));
        m.profile.gradient = TensorProfile::constant(
            vp(0.32, 8.0, -9.5, 3.2, 0.85, 2, 0.18));
        zoo.push_back(std::move(m));
    }
    {
        ModelInfo m;
        m.name = "ResNet18-Q";
        m.application = "Image Classification";
        m.dataset = "ImageNet";
        m.layers = resnet18LayersImpl();
        // PACT quantizes activations and weights to 4 bits; once the
        // clipping hyperparameter settles (~epoch 30), values fit 4b
        // or less and the term count drops further (Fig. 18: +12.5%).
        m.profile.activation = TensorProfile(
            {{0.0, vp(0.48, 10.0, -1.5, 1.6, 0.90, 3, 0.18)},
             {0.3, vp(0.52, 10.0, -1.5, 1.4, 0.90, 2, 0.10)},
             {1.0, vp(0.52, 10.0, -1.5, 1.4, 0.90, 2, 0.10)}});
        m.profile.weight = TensorProfile(
            {{0.0, vp(0.04, 2.0, -2.5, 1.4, 0.80, 3, 0.20)},
             {0.3, vp(0.05, 2.0, -2.5, 1.2, 0.80, 2, 0.12)},
             {1.0, vp(0.05, 2.0, -2.5, 1.2, 0.80, 2, 0.12)}});
        m.profile.gradient = TensorProfile::constant(
            vp(0.30, 8.0, -8.5, 2.6, 0.85, 2, 0.12));
        zoo.push_back(std::move(m));
    }
    {
        ModelInfo m;
        m.name = "SNLI";
        m.application = "Natural Language Infer.";
        m.dataset = "SNLI Corpus";
        m.layers = snliLayers();
        // Very low value sparsity but extreme bit sparsity in all
        // tensors (the paper credits SNLI's 1.8x to bit sparsity).
        m.profile.activation = TensorProfile::constant(
            vp(0.06, 3.0, -3.0, 1.3, 0.85, 2, 0.08));
        m.profile.weight = TensorProfile::constant(
            vp(0.01, 1.5, -4.0, 1.3, 0.80, 2, 0.10));
        m.profile.gradient = TensorProfile::constant(
            vp(0.05, 3.0, -10.0, 2.2, 0.85, 1, 0.08));
        zoo.push_back(std::move(m));
    }
    {
        ModelInfo m;
        m.name = "Image2Text";
        m.application = "Image-to-Text Conversion";
        m.dataset = "im2latex-100k";
        m.layers = image2textLayers();
        m.profile.activation = TensorProfile::constant(
            vp(0.30, 8.0, -2.5, 2.0, 0.88, 3, 0.15));
        m.profile.weight = TensorProfile::constant(
            vp(0.01, 1.5, -3.5, 1.8, 0.80, 4, 0.25));
        m.profile.gradient = TensorProfile::constant(
            vp(0.28, 8.0, -9.0, 3.0, 0.85, 2, 0.15));
        zoo.push_back(std::move(m));
    }
    {
        ModelInfo m;
        m.name = "Detectron2";
        m.application = "Object Detection";
        m.dataset = "COCO";
        m.layers = detectron2Layers();
        m.profile.activation = TensorProfile::constant(
            vp(0.40, 10.0, -2.0, 2.2, 0.90, 2, 0.10));
        m.profile.weight = TensorProfile::constant(
            vp(0.02, 1.5, -3.5, 1.8, 0.80, 4, 0.24));
        m.profile.gradient = TensorProfile::constant(
            vp(0.38, 8.0, -10.0, 3.2, 0.85, 2, 0.08));
        zoo.push_back(std::move(m));
    }
    {
        ModelInfo m;
        m.name = "NCF";
        m.application = "Recommendation";
        m.dataset = "ml-20m";
        m.layers = ncfLayers();
        // Dense values with fuller mantissas and a wide exponent
        // spread: heavy cross-lane term imbalance (the paper's worst
        // no-term stall share, 55%).
        m.profile.activation = TensorProfile::constant(
            vp(0.03, 2.0, -2.5, 2.2, 0.78, 4, 0.22));
        m.profile.weight = TensorProfile::constant(
            vp(0.01, 1.5, -3.0, 2.0, 0.78, 4, 0.22));
        m.profile.gradient = TensorProfile::constant(
            vp(0.05, 2.0, -9.0, 3.0, 0.80, 2, 0.15));
        zoo.push_back(std::move(m));
    }
    {
        ModelInfo m;
        m.name = "Bert";
        m.application = "Language Translation";
        m.dataset = "WMT17";
        m.layers = bertLayers();
        // Fine-tuning: tiny, concentrated gradients (many out-of-
        // bounds terms) over dense activations.
        m.profile.activation = TensorProfile::constant(
            vp(0.02, 2.0, -2.5, 2.0, 0.85, 3, 0.16));
        m.profile.weight = TensorProfile::constant(
            vp(0.00, 1.5, -3.5, 1.6, 0.80, 4, 0.24));
        m.profile.gradient = TensorProfile::constant(
            vp(0.05, 3.0, -12.0, 3.0, 0.85, 1, 0.10));
        zoo.push_back(std::move(m));
    }
    return zoo;
}

} // namespace

const std::vector<ModelInfo> &
modelZoo()
{
    static const std::vector<ModelInfo> zoo = buildZoo();
    return zoo;
}

const ModelInfo &
findModel(const std::string &name)
{
    for (const auto &m : modelZoo())
        if (m.name == name)
            return m;
    fatal("unknown model '%s'", name.c_str());
}

std::vector<LayerShape>
resnet18Layers()
{
    return resnet18LayersImpl();
}

std::vector<LayerShape>
alexnetLayers()
{
    std::vector<LayerShape> l;
    l.push_back(conv("conv1", 55, 96, 3, 11));
    l.push_back(conv("conv2", 27, 256, 96, 5));
    l.push_back(conv("conv3", 13, 384, 256, 3));
    l.push_back(conv("conv4", 13, 384, 384, 3));
    l.push_back(conv("conv5", 13, 256, 384, 3));
    l.push_back(fc("fc6", 32, 9216, 4096));
    l.push_back(fc("fc7", 32, 4096, 4096));
    l.push_back(fc("fc8", 32, 4096, 1000));
    return l;
}

} // namespace fpraker
