/**
 * @file
 * Per-model value-statistics profiles used to synthesize traces.
 *
 * The paper instruments PyTorch training on real datasets and replays
 * the captured tensors; offline we substitute calibrated statistical
 * profiles (see DESIGN.md section 1). The PE/tile timing depends only on
 * the statistics a profile controls:
 *
 *  - value sparsity and its clustering (two-state Markov zero runs, so
 *    channel-wise zero clusters behave like post-ReLU feature maps),
 *  - the exponent distribution (mean/sigma and AR(1) lag-1 correlation,
 *    matching the narrow, correlated distributions of paper Fig. 6),
 *  - the number of active mantissa bits (full 7 for natural training,
 *    ~3 for PACT-quantized ResNet18-Q, low for near-power-of-two
 *    gradient tensors).
 *
 * Profiles are interpolated over training progress in [0, 1] through
 * piecewise-linear knots so Fig. 18's over-time trends reproduce
 * (VGG16's early-epoch advantage, ResNet18-Q's post-clipping gain).
 */

#ifndef FPRAKER_TRACE_TRAINING_PROFILE_H
#define FPRAKER_TRACE_TRAINING_PROFILE_H

#include <string>
#include <vector>

#include "trace/layer.h"

namespace fpraker {

/** Statistical description of one tensor's values at one time. */
struct ValueProfile
{
    double sparsity = 0.0;      //!< Fraction of exact zeros.
    double zeroClusterLen = 8.0;//!< Mean zero-run length (channel-wise).
    double expMu = -4.0;        //!< Mean unbiased exponent.
    double expSigma = 3.0;      //!< Exponent standard deviation.
    double expCorr = 0.85;      //!< Lag-1 exponent correlation.
    int mantissaBits = 7;       //!< Active mantissa bits [0, 7].

    /**
     * Probability that an active mantissa bit is set. Real training
     * tensors are far from uniform in their mantissas — values cluster
     * near powers of two and low-order bits are frequently zero (this
     * is exactly the bit sparsity of the paper's Fig. 1b) — so the
     * default is well below one half.
     */
    double bitDensity = 0.5;

    /** Expected NAF terms per value (for potential-speedup estimates). */
    double expectedTermsPerValue() const;
};

/** A knot on the training-progress axis. */
struct ProfileKnot
{
    double progress; //!< In [0, 1].
    ValueProfile profile;
};

/** Evolution of one tensor's statistics over training. */
class TensorProfile
{
  public:
    TensorProfile() = default;
    explicit TensorProfile(std::vector<ProfileKnot> knots);

    /** Interpolated profile at @p progress (clamped to [0, 1]). */
    ValueProfile at(double progress) const;

    /** Convenience: a constant profile. */
    static TensorProfile constant(const ValueProfile &p);

  private:
    std::vector<ProfileKnot> knots_;
};

/** The three tensor profiles of a model. */
struct ModelProfile
{
    TensorProfile activation;
    TensorProfile weight;
    TensorProfile gradient;

    const TensorProfile &of(TensorKind kind) const;
};

} // namespace fpraker

#endif // FPRAKER_TRACE_TRAINING_PROFILE_H
