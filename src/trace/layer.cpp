#include "trace/layer.h"

#include "common/logging.h"

namespace fpraker {

const char *
opLabel(TrainingOp op)
{
    switch (op) {
      case TrainingOp::Forward:
        return "AxW";
      case TrainingOp::InputGrad:
        return "GxW";
      case TrainingOp::WeightGrad:
        return "AxG";
    }
    panic("bad op");
}

const char *
tensorLabel(TensorKind kind)
{
    switch (kind) {
      case TensorKind::Activation:
        return "Activation";
      case TensorKind::Weight:
        return "Weight";
      case TensorKind::Gradient:
        return "Gradient";
    }
    panic("bad tensor kind");
}

OpOperands
operandsOf(TrainingOp op)
{
    switch (op) {
      case TrainingOp::Forward:
        return {TensorKind::Activation, TensorKind::Weight};
      case TrainingOp::InputGrad:
        return {TensorKind::Gradient, TensorKind::Weight};
      case TrainingOp::WeightGrad:
        return {TensorKind::Activation, TensorKind::Gradient};
    }
    panic("bad op");
}

int64_t
totalMacs(const std::vector<LayerShape> &layers)
{
    int64_t total = 0;
    for (const auto &l : layers)
        total += l.macs();
    return total;
}

} // namespace fpraker
