/**
 * @file
 * The nine models of the paper's Table I, as layer-shape inventories
 * plus calibrated value-statistics profiles.
 *
 * Layer shapes follow the published architectures (im2col GEMM view).
 * The value profiles are the offline substitute for the paper's PyTorch
 * training traces: they are calibrated so the measured value sparsity
 * (Fig. 1a), term sparsity (Fig. 1b), exponent spreads (Fig. 6), and
 * the resulting speedup ordering (Fig. 11: ResNet18-Q ~2x best conv
 * model, SNLI ~1.8x, geomean ~1.5x) reproduce in shape. See DESIGN.md.
 */

#ifndef FPRAKER_TRACE_MODEL_ZOO_H
#define FPRAKER_TRACE_MODEL_ZOO_H

#include <string>
#include <vector>

#include "trace/layer.h"
#include "trace/training_profile.h"

namespace fpraker {

/** A model from Table I: identity, layers, and value statistics. */
struct ModelInfo
{
    std::string name;
    std::string application;
    std::string dataset;
    std::vector<LayerShape> layers;
    ModelProfile profile;

    int64_t macsPerOp() const { return totalMacs(layers); }
};

/** The full Table I zoo (constructed once, in paper order). */
const std::vector<ModelInfo> &modelZoo();

/** Look up a model by name (fatal if unknown). */
const ModelInfo &findModel(const std::string &name);

/** ResNet18/AlexNet inventories for the Fig. 21 study. */
std::vector<LayerShape> resnet18Layers();
std::vector<LayerShape> alexnetLayers();

} // namespace fpraker

#endif // FPRAKER_TRACE_MODEL_ZOO_H
