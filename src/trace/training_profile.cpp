#include "trace/training_profile.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace fpraker {

double
ValueProfile::expectedTermsPerValue() const
{
    if (mantissaBits <= 0)
        return (1.0 - sparsity); // power-of-two values: one term
    // Empirical NAF density: significands with b active mantissa bits,
    // each set with probability d, average about 1 + 0.7*b*d non-zero
    // digits (3.45 at b = 7, d = 0.5, measured over all normalized
    // significands; NAF merges runs so density saturates below raw).
    double terms = 1.0 + 0.7 * static_cast<double>(mantissaBits) *
                             bitDensity;
    return (1.0 - sparsity) * terms;
}

TensorProfile::TensorProfile(std::vector<ProfileKnot> knots)
    : knots_(std::move(knots))
{
    panic_if(knots_.empty(), "profile needs at least one knot");
    for (size_t i = 1; i < knots_.size(); ++i)
        panic_if(knots_[i].progress < knots_[i - 1].progress,
                 "knots must be sorted by progress");
}

TensorProfile
TensorProfile::constant(const ValueProfile &p)
{
    return TensorProfile({ProfileKnot{0.0, p}});
}

ValueProfile
TensorProfile::at(double progress) const
{
    panic_if(knots_.empty(), "uninitialized profile");
    progress = std::clamp(progress, 0.0, 1.0);
    if (progress <= knots_.front().progress)
        return knots_.front().profile;
    if (progress >= knots_.back().progress)
        return knots_.back().profile;
    size_t hi = 1;
    while (knots_[hi].progress < progress)
        ++hi;
    const ProfileKnot &a = knots_[hi - 1];
    const ProfileKnot &b = knots_[hi];
    double span = b.progress - a.progress;
    double t = span <= 0.0 ? 0.0 : (progress - a.progress) / span;

    auto lerp = [t](double x, double y) { return x + (y - x) * t; };
    ValueProfile out;
    out.sparsity = lerp(a.profile.sparsity, b.profile.sparsity);
    out.zeroClusterLen =
        lerp(a.profile.zeroClusterLen, b.profile.zeroClusterLen);
    out.expMu = lerp(a.profile.expMu, b.profile.expMu);
    out.expSigma = lerp(a.profile.expSigma, b.profile.expSigma);
    out.expCorr = lerp(a.profile.expCorr, b.profile.expCorr);
    out.mantissaBits = static_cast<int>(std::lround(
        lerp(a.profile.mantissaBits, b.profile.mantissaBits)));
    out.bitDensity = lerp(a.profile.bitDensity, b.profile.bitDensity);
    return out;
}

const TensorProfile &
ModelProfile::of(TensorKind kind) const
{
    switch (kind) {
      case TensorKind::Activation:
        return activation;
      case TensorKind::Weight:
        return weight;
      case TensorKind::Gradient:
        return gradient;
    }
    panic("bad tensor kind");
}

} // namespace fpraker
