#include "trace/tensor_gen.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "numeric/term_lut.h"

namespace fpraker {

TensorGenerator::TensorGenerator(const ValueProfile &profile, uint64_t seed)
    : profile_(profile), rng_(seed), inZeroRun_(false),
      havePrevExp_(false), prevExp_(0.0)
{
    panic_if(profile_.sparsity < 0.0 || profile_.sparsity > 1.0,
             "sparsity %f out of range", profile_.sparsity);
    panic_if(profile_.mantissaBits < 0 || profile_.mantissaBits > 7,
             "mantissa bits %d out of range", profile_.mantissaBits);

    // Two-state Markov chain with geometric run lengths: the zero-run
    // mean is the profile's cluster length, and the non-zero run mean
    // follows from the target sparsity s: L_n = L_z * (1 - s) / s.
    // Both run means must be at least one value long, so high sparsity
    // implies a floor on the zero-run length (s = 0.8 cannot be hit
    // with runs shorter than 4 — matching i.i.d. zeros, whose runs
    // average 1/(1-s) anyway).
    double s = profile_.sparsity;
    double lz = std::max(1.0, profile_.zeroClusterLen);
    if (s <= 0.0) {
        pEnterZero_ = 0.0;
        pExitZero_ = 1.0;
    } else if (s >= 1.0) {
        pEnterZero_ = 1.0;
        pExitZero_ = 0.0;
        inZeroRun_ = true;
    } else {
        double min_lz = s / (1.0 - s);
        if (lz < min_lz)
            lz = min_lz;
        double ln = lz * (1.0 - s) / s;
        pEnterZero_ = 1.0 / std::max(1.0, ln);
        pExitZero_ = 1.0 / lz;
        // Start in the stationary distribution.
        inZeroRun_ = rng_.bernoulli(s);
    }
}

BFloat16
TensorGenerator::next()
{
    // State transition first, so run lengths are geometric with the
    // configured means.
    if (inZeroRun_) {
        if (rng_.bernoulli(pExitZero_))
            inZeroRun_ = false;
    } else {
        if (rng_.bernoulli(pEnterZero_))
            inZeroRun_ = true;
    }
    if (inZeroRun_)
        return BFloat16();

    // AR(1) exponent process.
    double mu = profile_.expMu;
    double rho = std::clamp(profile_.expCorr, 0.0, 0.999);
    double innovation =
        profile_.expSigma * std::sqrt(1.0 - rho * rho) * rng_.gaussian();
    double e = havePrevExp_
                   ? mu + rho * (prevExp_ - mu) + innovation
                   : mu + profile_.expSigma * rng_.gaussian();
    prevExp_ = e;
    havePrevExp_ = true;

    int exp_i = static_cast<int>(std::lround(e));
    exp_i = std::clamp(exp_i, -126, 127);

    int b = profile_.mantissaBits;
    int mantissa = 0;
    for (int bit = 0; bit < b; ++bit)
        if (rng_.bernoulli(profile_.bitDensity))
            mantissa |= 1 << (6 - bit); // fill from the MSB down
    bool neg = rng_.bernoulli(0.5);
    return BFloat16::fromFields(neg, exp_i + BFloat16::kBias, mantissa);
}

std::vector<BFloat16>
TensorGenerator::generate(size_t n)
{
    std::vector<BFloat16> out(n);
    fill(out.data(), n);
    return out;
}

void
TensorGenerator::fill(BFloat16 *out, size_t n)
{
    for (size_t i = 0; i < n; ++i)
        out[i] = next();
}

TensorStats
measureTensor(const BFloat16 *values, size_t n, TermEncoding encoding)
{
    const TermLut &lut = TermLut::of(encoding);
    TensorStats stats;
    stats.values = n;
    for (size_t i = 0; i < n; ++i) {
        const BFloat16 v = values[i];
        if (v.isZero()) {
            stats.zeros += 1;
            continue;
        }
        stats.terms +=
            static_cast<uint64_t>(lut.countTerms(v.significand()));
    }
    return stats;
}

} // namespace fpraker
