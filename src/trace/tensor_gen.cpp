#include "trace/tensor_gen.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "numeric/slab_ops.h"
#include "numeric/term_lut.h"
#include "trace/rng_stream.h"

namespace fpraker {

namespace {

/**
 * Exact integer threshold for Rng::bernoulli(p): uniform() maps the
 * raw 53-bit draw u to u * 2^-53 (an exact double), so u * 2^-53 < p
 * iff u < ceil(p * 2^53). The product p * 2^53 only rescales the
 * exponent, hence is itself exact, making the integer compare
 * bit-equivalent to the floating compare for every p.
 */
uint64_t
bernoulliThreshold(double p)
{
    if (p <= 0.0)
        return 0;
    if (p >= 1.0)
        return 1ull << 53;
    return static_cast<uint64_t>(std::ceil(p * 0x1.0p53));
}

} // namespace

TensorGenerator::TensorGenerator(const ValueProfile &profile, uint64_t seed)
    : profile_(profile), rng_(seed), inZeroRun_(false),
      havePrevExp_(false), prevExp_(0.0)
{
    panic_if(profile_.sparsity < 0.0 || profile_.sparsity > 1.0,
             "sparsity %f out of range", profile_.sparsity);
    panic_if(profile_.mantissaBits < 0 || profile_.mantissaBits > 7,
             "mantissa bits %d out of range", profile_.mantissaBits);

    // Two-state Markov chain with geometric run lengths: the zero-run
    // mean is the profile's cluster length, and the non-zero run mean
    // follows from the target sparsity s: L_n = L_z * (1 - s) / s.
    // Both run means must be at least one value long, so high sparsity
    // implies a floor on the zero-run length (s = 0.8 cannot be hit
    // with runs shorter than 4 — matching i.i.d. zeros, whose runs
    // average 1/(1-s) anyway).
    double s = profile_.sparsity;
    double lz = std::max(1.0, profile_.zeroClusterLen);
    if (s <= 0.0) {
        pEnterZero_ = 0.0;
        pExitZero_ = 1.0;
    } else if (s >= 1.0) {
        pEnterZero_ = 1.0;
        pExitZero_ = 0.0;
        inZeroRun_ = true;
    } else {
        double min_lz = s / (1.0 - s);
        if (lz < min_lz)
            lz = min_lz;
        double ln = lz * (1.0 - s) / s;
        pEnterZero_ = 1.0 / std::max(1.0, ln);
        pExitZero_ = 1.0 / lz;
        // Start in the stationary distribution.
        inZeroRun_ = rng_.bernoulli(s);
    }

    thrEnterZero_ = bernoulliThreshold(pEnterZero_);
    thrExitZero_ = bernoulliThreshold(pExitZero_);
    thrBit_ = bernoulliThreshold(profile_.bitDensity);
    arRho_ = std::clamp(profile_.expCorr, 0.0, 0.999);
    arInnovScale_ =
        profile_.expSigma * std::sqrt(1.0 - arRho_ * arRho_);
}

BFloat16
TensorGenerator::next()
{
    // State transition first, so run lengths are geometric with the
    // configured means.
    if (inZeroRun_) {
        if (rng_.bernoulli(pExitZero_))
            inZeroRun_ = false;
    } else {
        if (rng_.bernoulli(pEnterZero_))
            inZeroRun_ = true;
    }
    if (inZeroRun_)
        return BFloat16();

    // AR(1) exponent process.
    double mu = profile_.expMu;
    double rho = std::clamp(profile_.expCorr, 0.0, 0.999);
    double innovation =
        profile_.expSigma * std::sqrt(1.0 - rho * rho) * rng_.gaussian();
    double e = havePrevExp_
                   ? mu + rho * (prevExp_ - mu) + innovation
                   : mu + profile_.expSigma * rng_.gaussian();
    prevExp_ = e;
    havePrevExp_ = true;

    int exp_i = static_cast<int>(std::lround(e));
    exp_i = std::clamp(exp_i, -126, 127);

    int b = profile_.mantissaBits;
    int mantissa = 0;
    for (int bit = 0; bit < b; ++bit)
        if (rng_.bernoulli(profile_.bitDensity))
            mantissa |= 1 << (6 - bit); // fill from the MSB down
    bool neg = rng_.bernoulli(0.5);
    return BFloat16::fromFields(neg, exp_i + BFloat16::kBias, mantissa);
}

std::vector<BFloat16>
TensorGenerator::generate(size_t n)
{
    std::vector<BFloat16> out(n);
    fill(out.data(), n);
    return out;
}

void
TensorGenerator::fillScalar(BFloat16 *out, size_t n)
{
    for (size_t i = 0; i < n; ++i)
        out[i] = next();
}

void
TensorGenerator::fill(BFloat16 *out, size_t n)
{
    // The batched walk consumes the RNG stream draw-for-draw like
    // next(): one transition draw per value, then (non-zero values
    // only) the Gaussian draws, mantissaBits mantissa draws, and the
    // sign draw. Only the arithmetic around the draws changes — every
    // Bernoulli is an exact integer threshold compare and the staged
    // field planes are packed to bit patterns by SIMD — so the output
    // slab is bit-identical to the scalar walk.
    constexpr size_t kBlock = 256;
    int16_t exp_plane[kBlock];
    uint8_t man_plane[kBlock];
    uint8_t neg_plane[kBlock];
    const int b = profile_.mantissaBits;
    const double mu = profile_.expMu;
    const double sigma = profile_.expSigma;
    constexpr uint64_t thr_half = 1ull << 52; // bernoulli(0.5)

    size_t done = 0;
    while (done < n) {
        const size_t block = std::min(kBlock, n - done);
        for (size_t i = 0; i < block; ++i) {
            const uint64_t u = rng_.next() >> 11;
            if (inZeroRun_) {
                if (u < thrExitZero_)
                    inZeroRun_ = false;
            } else if (u < thrEnterZero_) {
                inZeroRun_ = true;
            }
            if (inZeroRun_) {
                exp_plane[i] = 0;
                man_plane[i] = 0;
                neg_plane[i] = 0;
                continue;
            }

            // Mirror next() draw-for-draw: the innovation Gaussian is
            // consumed even for the first value (whose ternary then
            // draws a second, unconditioned Gaussian).
            const double innovation = arInnovScale_ * rng_.gaussian();
            const double e = havePrevExp_
                                 ? mu + arRho_ * (prevExp_ - mu) +
                                       innovation
                                 : mu + sigma * rng_.gaussian();
            prevExp_ = e;
            havePrevExp_ = true;
            int exp_i = static_cast<int>(std::lround(e));
            exp_i = std::clamp(exp_i, -126, 127);

            int mantissa = 0;
            for (int bit = 0; bit < b; ++bit)
                if ((rng_.next() >> 11) < thrBit_)
                    mantissa |= 1 << (6 - bit);

            exp_plane[i] =
                static_cast<int16_t>(exp_i + BFloat16::kBias);
            man_plane[i] = static_cast<uint8_t>(mantissa);
            neg_plane[i] = (rng_.next() >> 11) < thr_half ? 1 : 0;
        }
        slab::packBf16(exp_plane, man_plane, neg_plane, block,
                       out + done);
        done += block;
    }
}

void
GeneratorSlabSupply::fillSerial(size_t bi, BFloat16 *out, size_t n) const
{
    TensorGenerator gen(serial_, substreamSeed(baseSeed_, 2 * bi));
    gen.fill(out, n);
}

void
GeneratorSlabSupply::fillParallel(size_t bi, BFloat16 *out,
                                  size_t n) const
{
    TensorGenerator gen(parallel_, substreamSeed(baseSeed_, 2 * bi + 1));
    gen.fill(out, n);
}

TensorStats
measureTensor(const BFloat16 *values, size_t n, TermEncoding encoding)
{
    const TermLut &lut = TermLut::of(encoding);
    TensorStats stats;
    stats.values = n;
    slab::countTerms(values, n, lut.countsTable(), lut.nibbleLut(),
                     &stats.zeros, &stats.terms);
    return stats;
}

} // namespace fpraker
