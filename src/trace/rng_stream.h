/**
 * @file
 * Deterministic RNG substream derivation for sharded sampling.
 *
 * Workload generation must be reproducible AND shardable: when a phase
 * sample's bursts (or a sweep's jobs) run on different workers, each
 * unit has to see the same value stream it would see in a serial walk.
 * Seeding a worker-local Rng from substreamSeed(base, unit_index) makes
 * the stream a function of the *unit*, not of the worker that happens
 * to execute it — which is what keeps results bit-identical at any
 * thread count (see docs/PERFORMANCE.md, "Determinism guarantee").
 *
 * The derivation is a splitmix64 finalizer over the base seed and the
 * unit index. splitmix64 is a bijective avalanche mix, so distinct
 * (base, index) pairs yield well-separated xoshiro256** seeds even for
 * consecutive indices.
 */

#ifndef FPRAKER_TRACE_RNG_STREAM_H
#define FPRAKER_TRACE_RNG_STREAM_H

#include <cstdint>

namespace fpraker {

/** Seed of substream @p index derived from @p base. */
inline uint64_t
substreamSeed(uint64_t base, uint64_t index)
{
    uint64_t z = base + 0x9e3779b97f4a7c15ULL * (index + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

} // namespace fpraker

#endif // FPRAKER_TRACE_RNG_STREAM_H
