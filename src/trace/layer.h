/**
 * @file
 * Layer descriptors and the three training operations.
 *
 * Every layer's work in all three training computations reduces to a
 * GEMM view: forward Z[M,N] = I[M,K] x W[K,N] (Eq. 1), the input
 * gradient dE/dI = dE/dZ x W^T (Eq. 2), and the weight gradient
 * dE/dW = I^T x dE/dZ (Eq. 3). Convolutions take the im2col view
 * (M = output pixels, K = Cin x kh x kw, N = Cout); LSTM and attention
 * layers are unrolled into their constituent GEMMs.
 */

#ifndef FPRAKER_TRACE_LAYER_H
#define FPRAKER_TRACE_LAYER_H

#include <cstdint>
#include <string>
#include <vector>

namespace fpraker {

/** Kind of layer (affects shapes only; all map to GEMMs). */
enum class LayerType
{
    Conv,
    FullyConnected,
    Lstm,
    Attention,
};

/** The three tensors that appear during training. */
enum class TensorKind
{
    Activation,
    Weight,
    Gradient,
};

/** The three per-layer training operations. */
enum class TrainingOp
{
    Forward,    //!< A x W (Eq. 1)
    InputGrad,  //!< G x W (Eq. 2)
    WeightGrad, //!< A x G (Eq. 3)
};

/** Short label used by the figure harnesses ("AxW", "GxW", "AxG"). */
const char *opLabel(TrainingOp op);

/** Label for a tensor kind. */
const char *tensorLabel(TensorKind kind);

/** The two tensor operands a training op multiplies. */
struct OpOperands
{
    TensorKind first;
    TensorKind second;
};

/** Operands of @p op (first x second in the GEMM view). */
OpOperands operandsOf(TrainingOp op);

/** One layer in GEMM view. */
struct LayerShape
{
    std::string name;
    LayerType type = LayerType::Conv;
    int64_t m = 0; //!< Output rows (pixels / tokens / batch elements).
    int64_t n = 0; //!< Output features.
    int64_t k = 0; //!< Reduction (shared) dimension.

    /**
     * im2col duplication factor: a convolution's GEMM view reads each
     * input value kernel^2 times, but only M*K/kernelArea distinct
     * values move through memory. 1 for non-conv layers.
     */
    int kernelArea = 1;

    /** MACs for one training op on this layer. */
    int64_t macs() const { return m * n * k; }

    /** Distinct input-tensor values (undoing im2col duplication). */
    int64_t
    inputFootprintValues() const
    {
        return m * k / kernelArea;
    }
};

/** Sum of MACs over a layer list. */
int64_t totalMacs(const std::vector<LayerShape> &layers);

} // namespace fpraker

#endif // FPRAKER_TRACE_LAYER_H
