/**
 * @file
 * Synthetic tensor-value generation from calibrated profiles.
 *
 * A TensorGenerator streams bfloat16 values whose statistics follow a
 * ValueProfile: zeros arrive in clustered runs (two-state Markov chain),
 * exponents follow an AR(1) process (clamped Gaussian), and mantissas
 * are uniform over the configured number of active bits. Streams are
 * deterministic given a seed. This is the offline substitute for the
 * paper's captured PyTorch training tensors.
 *
 * Two generation paths produce bit-identical streams:
 *
 *  - next() / fillScalar() — the value-at-a-time reference walk;
 *  - fill() / generate() — the batched slab path: the RNG walk stays
 *    scalar (it is inherently serial) but every Bernoulli draw becomes
 *    one integer threshold compare (ceil(p * 2^53) is exact, so the
 *    outcome equals the uniform() < p compare bit for bit), the AR(1)
 *    innovation scale is hoisted out of the loop, and the staged
 *    sign/exponent/mantissa planes are packed into bfloat16 bit
 *    patterns 8/16 values at a time (numeric/slab_ops.h).
 *
 * tests/test_fastpath.cpp fuzzes the two paths against each other.
 */

#ifndef FPRAKER_TRACE_TENSOR_GEN_H
#define FPRAKER_TRACE_TENSOR_GEN_H

#include <vector>

#include "common/rng.h"
#include "numeric/bfloat16.h"
#include "numeric/term_encoder.h"
#include "trace/training_profile.h"

namespace fpraker {

/** Streaming generator of profile-shaped bfloat16 values. */
class TensorGenerator
{
  public:
    TensorGenerator(const ValueProfile &profile, uint64_t seed);

    /** Next value in the stream (scalar reference path). */
    BFloat16 next();

    /** Generate @p n values (batched slab path). */
    std::vector<BFloat16> generate(size_t n);

    /** Fill an existing buffer via the batched slab path. */
    void fill(BFloat16 *out, size_t n);

    /**
     * Fill via the value-at-a-time reference walk. Bit-identical to
     * fill(); kept callable for the differential fuzz tests and the
     * perf_regression generation benchmark.
     */
    void fillScalar(BFloat16 *out, size_t n);

    const ValueProfile &profile() const { return profile_; }

  private:
    ValueProfile profile_;
    Rng rng_;
    bool inZeroRun_;
    bool havePrevExp_;
    double prevExp_;
    double pEnterZero_;
    double pExitZero_;
    // Batched-path constants, fixed at construction: exact integer
    // Bernoulli thresholds and the hoisted AR(1) innovation scale.
    uint64_t thrEnterZero_ = 0;
    uint64_t thrExitZero_ = 0;
    uint64_t thrBit_ = 0;
    double arRho_ = 0.0;
    double arInnovScale_ = 0.0;
};

/**
 * Position-addressable source of operand slabs for sampled phases.
 *
 * A phase sample consumes two value streams (the serial and parallel
 * operands) in independent bursts; each burst @p bi reads one window of
 * each stream. Implementations must be pure functions of the burst
 * index — never of the executing worker — so sharded samples stay
 * bit-identical to the serial walk at any thread count. The slabs use
 * the same bfloat16 layout numeric/slab_ops consumes.
 *
 * Two families exist: GeneratorSlabSupply synthesizes the windows from
 * a ValueProfile on demand (the historical path), and the workload
 * layer's TraceSlabSupply replays pre-recorded streams (trace-backed
 * ingestion, src/workload/supply.h).
 */
class SlabSupply
{
  public:
    virtual ~SlabSupply() = default;

    /** Fill burst @p bi's window of the serial operand (@p n values). */
    virtual void fillSerial(size_t bi, BFloat16 *out,
                            size_t n) const = 0;
    /** Fill burst @p bi's window of the parallel operand. */
    virtual void fillParallel(size_t bi, BFloat16 *out,
                              size_t n) const = 0;
};

/**
 * Generator-backed slab supply: burst @p bi's windows come from fresh
 * TensorGenerators seeded with substreamSeed(base, 2*bi) (serial) and
 * substreamSeed(base, 2*bi + 1) (parallel) — exactly the substream
 * discipline the phase runner has always used, now behind the seam.
 */
class GeneratorSlabSupply final : public SlabSupply
{
  public:
    GeneratorSlabSupply(const ValueProfile &serial,
                        const ValueProfile &parallel, uint64_t base_seed)
        : serial_(serial), parallel_(parallel), baseSeed_(base_seed)
    {
    }

    void fillSerial(size_t bi, BFloat16 *out, size_t n) const override;
    void fillParallel(size_t bi, BFloat16 *out,
                      size_t n) const override;

  private:
    ValueProfile serial_;
    ValueProfile parallel_;
    uint64_t baseSeed_;
};

/** Measured statistics of a value stream (for Fig. 1-style reporting). */
struct TensorStats
{
    uint64_t values = 0;
    uint64_t zeros = 0;
    uint64_t terms = 0;

    double
    valueSparsity() const
    {
        return values ? static_cast<double>(zeros) /
                            static_cast<double>(values)
                      : 0.0;
    }

    /** 1 - terms / (8 slots per value), the paper's term sparsity. */
    double
    termSparsity() const
    {
        return values ? 1.0 - static_cast<double>(terms) /
                                  (static_cast<double>(values) * kTermSlots)
                      : 0.0;
    }

    double
    termsPerValue() const
    {
        return values
                   ? static_cast<double>(terms) / static_cast<double>(values)
                   : 0.0;
    }

    void
    merge(const TensorStats &o)
    {
        values += o.values;
        zeros += o.zeros;
        terms += o.terms;
    }
};

/**
 * Measure sparsity/term statistics of a value stream. Term counts come
 * from the shared TermLut, so this is cheap enough for per-step use in
 * the figure harnesses.
 */
TensorStats measureTensor(const BFloat16 *values, size_t n,
                          TermEncoding encoding = TermEncoding::Canonical);

/** Vector convenience overload. */
inline TensorStats
measureTensor(const std::vector<BFloat16> &values,
              TermEncoding encoding = TermEncoding::Canonical)
{
    return measureTensor(values.data(), values.size(), encoding);
}

} // namespace fpraker

#endif // FPRAKER_TRACE_TENSOR_GEN_H
