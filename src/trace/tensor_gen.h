/**
 * @file
 * Synthetic tensor-value generation from calibrated profiles.
 *
 * A TensorGenerator streams bfloat16 values whose statistics follow a
 * ValueProfile: zeros arrive in clustered runs (two-state Markov chain),
 * exponents follow an AR(1) process (clamped Gaussian), and mantissas
 * are uniform over the configured number of active bits. Streams are
 * deterministic given a seed. This is the offline substitute for the
 * paper's captured PyTorch training tensors.
 */

#ifndef FPRAKER_TRACE_TENSOR_GEN_H
#define FPRAKER_TRACE_TENSOR_GEN_H

#include <vector>

#include "common/rng.h"
#include "numeric/bfloat16.h"
#include "numeric/term_encoder.h"
#include "trace/training_profile.h"

namespace fpraker {

/** Streaming generator of profile-shaped bfloat16 values. */
class TensorGenerator
{
  public:
    TensorGenerator(const ValueProfile &profile, uint64_t seed);

    /** Next value in the stream. */
    BFloat16 next();

    /** Generate @p n values. */
    std::vector<BFloat16> generate(size_t n);

    /** Fill an existing buffer. */
    void fill(BFloat16 *out, size_t n);

    const ValueProfile &profile() const { return profile_; }

  private:
    ValueProfile profile_;
    Rng rng_;
    bool inZeroRun_;
    bool havePrevExp_;
    double prevExp_;
    double pEnterZero_;
    double pExitZero_;
};

/** Measured statistics of a value stream (for Fig. 1-style reporting). */
struct TensorStats
{
    uint64_t values = 0;
    uint64_t zeros = 0;
    uint64_t terms = 0;

    double
    valueSparsity() const
    {
        return values ? static_cast<double>(zeros) /
                            static_cast<double>(values)
                      : 0.0;
    }

    /** 1 - terms / (8 slots per value), the paper's term sparsity. */
    double
    termSparsity() const
    {
        return values ? 1.0 - static_cast<double>(terms) /
                                  (static_cast<double>(values) * kTermSlots)
                      : 0.0;
    }

    double
    termsPerValue() const
    {
        return values
                   ? static_cast<double>(terms) / static_cast<double>(values)
                   : 0.0;
    }

    void
    merge(const TensorStats &o)
    {
        values += o.values;
        zeros += o.zeros;
        terms += o.terms;
    }
};

/**
 * Measure sparsity/term statistics of a value stream. Term counts come
 * from the shared TermLut, so this is cheap enough for per-step use in
 * the figure harnesses.
 */
TensorStats measureTensor(const BFloat16 *values, size_t n,
                          TermEncoding encoding = TermEncoding::Canonical);

/** Vector convenience overload. */
inline TensorStats
measureTensor(const std::vector<BFloat16> &values,
              TermEncoding encoding = TermEncoding::Canonical)
{
    return measureTensor(values.data(), values.size(), encoding);
}

} // namespace fpraker

#endif // FPRAKER_TRACE_TENSOR_GEN_H
