/**
 * @file
 * Lock-cheap metrics registry: counters, gauges, and fixed-bucket
 * latency histograms for every layer of the system (engine, memo,
 * caches, scheduler, daemon, phase runner).
 *
 * Design constraints, in order:
 *
 *  1. DETERMINISM-SAFE. Metrics are observation only — nothing here
 *     may ever feed back into simulated values, fingerprints, or
 *     cache keys. The registry therefore exposes no read-your-write
 *     API on the hot path; aggregation happens only at snapshot time.
 *  2. CHEAP WHEN IDLE, CHEAP WHEN HOT. A counter increment is one
 *     relaxed fetch_add on a cache-line-padded per-thread shard — no
 *     lock, no false sharing with other threads' shards. The perf
 *     floor (scripts/check_perf_floor.py, telemetry group of
 *     BENCH_PR10.json) gates this staying nanosecond-scale.
 *  3. STATIC REGISTRATION. Instruments are created once by name
 *     through Registry::instance() (create-or-find, so the same name
 *     from two translation units aliases one instrument) and live for
 *     the process; the FPRAKER_METRIC_* macros bind file-local
 *     references so call sites pay pointer-chase cost only once.
 *
 * Snapshots render as ordered JSON (the daemon's `metrics` op and the
 * opt-in result-document telemetry section) or Prometheus-style text
 * exposition (`fpraker metrics --prom`). See docs/OBSERVABILITY.md
 * for the metric catalog.
 */

#ifndef FPRAKER_OBS_METRICS_H
#define FPRAKER_OBS_METRICS_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "api/json.h"

namespace fpraker {
namespace obs {

/** Shards per sharded instrument. Threads map round-robin onto
 *  shards, so contention only appears past this many live writers. */
constexpr size_t kMetricShards = 16;

/** This thread's shard index (assigned round-robin at first use). */
size_t threadShardIndex();

/** Monotonic counter, per-thread sharded. */
class Counter
{
  public:
    void
    add(uint64_t n = 1)
    {
        shards_[threadShardIndex() % kMetricShards].v.fetch_add(
            n, std::memory_order_relaxed);
    }

    uint64_t
    value() const
    {
        uint64_t sum = 0;
        for (const Shard &s : shards_)
            sum += s.v.load(std::memory_order_relaxed);
        return sum;
    }

  private:
    struct alignas(64) Shard
    {
        std::atomic<uint64_t> v{0};
    };
    Shard shards_[kMetricShards];
};

/** Instantaneous signed value (queue depths, resident bytes). */
class Gauge
{
  public:
    void set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
    void
    add(int64_t d)
    {
        v_.fetch_add(d, std::memory_order_relaxed);
    }
    int64_t value() const { return v_.load(std::memory_order_relaxed); }

  private:
    std::atomic<int64_t> v_{0};
};

/** Fixed histogram bucket bounds (upper-inclusive, ascending). */
struct Buckets
{
    std::vector<double> bounds;

    /** count bounds: start, start*factor, start*factor^2, … */
    static Buckets exponential(double start, double factor, int count);
    /** The default latency ladder: 1 µs … ~65 s in powers of 4. */
    static Buckets latency();
};

/**
 * Fixed-bucket histogram, per-thread sharded like Counter. observe()
 * is a branchless-ish linear scan over ~13 bounds plus two relaxed
 * atomics — no lock, no allocation. A value lands in the first
 * bucket whose bound is >= it (Prometheus `le` semantics); values
 * above every bound land in the implicit +Inf bucket.
 */
class Histogram
{
  public:
    explicit Histogram(Buckets buckets);

    void observe(double v);

    struct Snapshot
    {
        std::vector<double> bounds;   //!< Ascending upper bounds.
        std::vector<uint64_t> counts; //!< Per-bucket, + trailing +Inf.
        uint64_t count = 0;           //!< Total observations.
        double sum = 0;               //!< Sum of observed values.
    };
    Snapshot snapshot() const;

  private:
    struct alignas(64) Shard
    {
        std::unique_ptr<std::atomic<uint64_t>[]> buckets;
        std::atomic<uint64_t> count{0};
        //! Bit-packed double accumulated by CAS (atomic<double>
        //! fetch_add is not universally lock-free).
        std::atomic<uint64_t> sumBits{0};
    };

    std::vector<double> bounds_;
    Shard shards_[kMetricShards];
};

/**
 * The process-wide instrument registry. create-or-find by name:
 * looking up an existing name returns the same instrument (a kind
 * mismatch panics — two subsystems disagreeing about a name is a
 * bug). Names are dotted paths ("memo.hits", "sched.run_seconds");
 * the Prometheus rendering maps dots to underscores.
 */
class Registry
{
  public:
    static Registry &instance();

    Counter &counter(const std::string &name, const std::string &help);
    Gauge &gauge(const std::string &name, const std::string &help);
    Histogram &histogram(const std::string &name,
                         const std::string &help,
                         const Buckets &buckets);

    /**
     * One ordered JSON object: {"counters": {...}, "gauges": {...},
     * "histograms": {name: {"bounds": [...], "counts": [...],
     * "count": N, "sum": S}}}. Instruments appear in registration
     * order. Zero-valued counters are included — an idle metric is
     * information, not noise.
     */
    api::JsonValue snapshotJson() const;

    /** Prometheus text exposition (HELP/TYPE + samples). */
    std::string renderProm() const;

  private:
    Registry() = default;

    enum class Kind { Counter, Gauge, Histogram };
    struct Instrument
    {
        std::string name;
        std::string help;
        Kind kind;
        std::unique_ptr<Counter> counter;
        std::unique_ptr<Gauge> gauge;
        std::unique_ptr<Histogram> histogram;
    };

    Instrument &findOrCreate(const std::string &name,
                             const std::string &help, Kind kind);

    mutable std::mutex mutex_;
    //! deque-like stability: instruments are pointers, so references
    //! handed out survive later registrations.
    std::vector<std::unique_ptr<Instrument>> instruments_;
};

} // namespace obs
} // namespace fpraker

/**
 * Bind a file-local reference to a registry instrument. Use at
 * namespace scope in the instrumented .cpp:
 *
 *   FPRAKER_METRIC_COUNTER(g_hits, "memo.hits", "memo lookup hits");
 *   ... g_hits.add();
 */
#define FPRAKER_METRIC_COUNTER(var, name, help)                        \
    static ::fpraker::obs::Counter &var =                              \
        ::fpraker::obs::Registry::instance().counter(name, help)
#define FPRAKER_METRIC_GAUGE(var, name, help)                          \
    static ::fpraker::obs::Gauge &var =                                \
        ::fpraker::obs::Registry::instance().gauge(name, help)
#define FPRAKER_METRIC_HISTOGRAM(var, name, help, buckets)             \
    static ::fpraker::obs::Histogram &var =                            \
        ::fpraker::obs::Registry::instance().histogram(name, help,     \
                                                       buckets)

#endif // FPRAKER_OBS_METRICS_H
