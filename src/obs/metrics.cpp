#include "obs/metrics.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace fpraker {
namespace obs {

size_t
threadShardIndex()
{
    static std::atomic<size_t> next{0};
    thread_local size_t idx =
        next.fetch_add(1, std::memory_order_relaxed);
    return idx;
}

Buckets
Buckets::exponential(double start, double factor, int count)
{
    Buckets b;
    b.bounds.reserve(static_cast<size_t>(count));
    double bound = start;
    for (int i = 0; i < count; ++i) {
        b.bounds.push_back(bound);
        bound *= factor;
    }
    return b;
}

Buckets
Buckets::latency()
{
    // 1 µs, 4 µs, 16 µs, … ~68 s: thirteen powers of four span
    // socket round-trips through full-size experiment runs.
    return exponential(1e-6, 4.0, 13);
}

Histogram::Histogram(Buckets buckets) : bounds_(std::move(buckets.bounds))
{
    for (Shard &s : shards_) {
        s.buckets.reset(new std::atomic<uint64_t>[bounds_.size() + 1]);
        for (size_t i = 0; i <= bounds_.size(); ++i)
            s.buckets[i].store(0, std::memory_order_relaxed);
    }
}

void
Histogram::observe(double v)
{
    size_t bucket = bounds_.size(); // +Inf unless a bound catches it
    for (size_t i = 0; i < bounds_.size(); ++i) {
        if (v <= bounds_[i]) {
            bucket = i;
            break;
        }
    }
    Shard &s = shards_[threadShardIndex() % kMetricShards];
    s.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
    s.count.fetch_add(1, std::memory_order_relaxed);
    uint64_t oldBits = s.sumBits.load(std::memory_order_relaxed);
    for (;;) {
        double oldSum;
        std::memcpy(&oldSum, &oldBits, sizeof oldSum);
        const double newSum = oldSum + v;
        uint64_t newBits;
        std::memcpy(&newBits, &newSum, sizeof newBits);
        if (s.sumBits.compare_exchange_weak(oldBits, newBits,
                                            std::memory_order_relaxed))
            break;
    }
}

Histogram::Snapshot
Histogram::snapshot() const
{
    Snapshot snap;
    snap.bounds = bounds_;
    snap.counts.assign(bounds_.size() + 1, 0);
    for (const Shard &s : shards_) {
        for (size_t i = 0; i <= bounds_.size(); ++i)
            snap.counts[i] +=
                s.buckets[i].load(std::memory_order_relaxed);
        snap.count += s.count.load(std::memory_order_relaxed);
        const uint64_t bits =
            s.sumBits.load(std::memory_order_relaxed);
        double part;
        std::memcpy(&part, &bits, sizeof part);
        snap.sum += part;
    }
    return snap;
}

Registry &
Registry::instance()
{
    static Registry registry;
    return registry;
}

Registry::Instrument &
Registry::findOrCreate(const std::string &name, const std::string &help,
                       Kind kind)
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &inst : instruments_) {
        if (inst->name != name)
            continue;
        if (inst->kind != kind) {
            std::fprintf(stderr,
                         "fpraker: metric '%s' registered twice with "
                         "conflicting kinds\n",
                         name.c_str());
            std::abort();
        }
        return *inst;
    }
    instruments_.emplace_back(new Instrument);
    Instrument &inst = *instruments_.back();
    inst.name = name;
    inst.help = help;
    inst.kind = kind;
    return inst;
}

Counter &
Registry::counter(const std::string &name, const std::string &help)
{
    Instrument &inst = findOrCreate(name, help, Kind::Counter);
    if (!inst.counter)
        inst.counter.reset(new Counter);
    return *inst.counter;
}

Gauge &
Registry::gauge(const std::string &name, const std::string &help)
{
    Instrument &inst = findOrCreate(name, help, Kind::Gauge);
    if (!inst.gauge)
        inst.gauge.reset(new Gauge);
    return *inst.gauge;
}

Histogram &
Registry::histogram(const std::string &name, const std::string &help,
                    const Buckets &buckets)
{
    Instrument &inst = findOrCreate(name, help, Kind::Histogram);
    if (!inst.histogram)
        inst.histogram.reset(new Histogram(buckets));
    return *inst.histogram;
}

api::JsonValue
Registry::snapshotJson() const
{
    api::JsonValue counters = api::JsonValue::object();
    api::JsonValue gauges = api::JsonValue::object();
    api::JsonValue histograms = api::JsonValue::object();

    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &inst : instruments_) {
        switch (inst->kind) {
        case Kind::Counter:
            counters.set(inst->name,
                         api::JsonValue(inst->counter->value()));
            break;
        case Kind::Gauge:
            gauges.set(inst->name,
                       api::JsonValue(inst->gauge->value()));
            break;
        case Kind::Histogram: {
            const Histogram::Snapshot snap =
                inst->histogram->snapshot();
            api::JsonValue bounds = api::JsonValue::array();
            for (double b : snap.bounds)
                bounds.push(api::JsonValue(b, 9));
            api::JsonValue counts = api::JsonValue::array();
            for (uint64_t c : snap.counts)
                counts.push(api::JsonValue(c));
            api::JsonValue h = api::JsonValue::object();
            h.set("bounds", std::move(bounds));
            h.set("counts", std::move(counts));
            h.set("count", api::JsonValue(snap.count));
            h.set("sum", api::JsonValue(snap.sum, 9));
            histograms.set(inst->name, std::move(h));
            break;
        }
        }
    }

    api::JsonValue root = api::JsonValue::object();
    root.set("counters", std::move(counters));
    root.set("gauges", std::move(gauges));
    root.set("histograms", std::move(histograms));
    return root;
}

namespace {

std::string
promName(const std::string &name)
{
    std::string out = "fpraker_";
    for (char c : name)
        out.push_back(c == '.' ? '_' : c);
    return out;
}

std::string
promDouble(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.9g", v);
    return buf;
}

} // namespace

std::string
Registry::renderProm() const
{
    std::string out;
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &inst : instruments_) {
        const std::string name = promName(inst->name);
        out += "# HELP " + name + " " + inst->help + "\n";
        switch (inst->kind) {
        case Kind::Counter:
            out += "# TYPE " + name + " counter\n";
            out += name + " " +
                   std::to_string(inst->counter->value()) + "\n";
            break;
        case Kind::Gauge:
            out += "# TYPE " + name + " gauge\n";
            out += name + " " +
                   std::to_string(inst->gauge->value()) + "\n";
            break;
        case Kind::Histogram: {
            out += "# TYPE " + name + " histogram\n";
            const Histogram::Snapshot snap =
                inst->histogram->snapshot();
            uint64_t cumulative = 0;
            for (size_t i = 0; i < snap.bounds.size(); ++i) {
                cumulative += snap.counts[i];
                out += name + "_bucket{le=\"" +
                       promDouble(snap.bounds[i]) + "\"} " +
                       std::to_string(cumulative) + "\n";
            }
            out += name + "_bucket{le=\"+Inf\"} " +
                   std::to_string(snap.count) + "\n";
            out += name + "_sum " + promDouble(snap.sum) + "\n";
            out += name + "_count " + std::to_string(snap.count) +
                   "\n";
            break;
        }
        }
    }
    return out;
}

} // namespace obs
} // namespace fpraker
