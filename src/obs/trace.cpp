#include "obs/trace.h"

#include <cstdio>

#include "api/json.h"

namespace fpraker {
namespace obs {

TraceCollector &
TraceCollector::instance()
{
    static TraceCollector collector;
    return collector;
}

void
TraceCollector::enable()
{
    if (enabled_.load(std::memory_order_relaxed))
        return;
    epochNs_ = now_ns();
    enabled_.store(true, std::memory_order_release);
}

TraceCollector::Buffer &
TraceCollector::threadBuffer()
{
    thread_local Buffer *buffer = nullptr;
    if (!buffer) {
        std::lock_guard<std::mutex> lock(buffersMutex_);
        buffers_.emplace_back(new Buffer);
        buffer = buffers_.back().get();
        buffer->tid = static_cast<int>(buffers_.size());
    }
    return *buffer;
}

void
TraceCollector::complete(const char *category, std::string name,
                         int64_t startNs, int64_t durationNs)
{
    if (!enabled())
        return;
    Buffer &buf = threadBuffer();
    std::lock_guard<std::mutex> lock(buf.mutex);
    buf.events.push_back(Event{'X', category, std::move(name),
                               startNs - epochNs_, durationNs});
}

void
TraceCollector::instant(const char *category, std::string name)
{
    if (!enabled())
        return;
    Buffer &buf = threadBuffer();
    std::lock_guard<std::mutex> lock(buf.mutex);
    buf.events.push_back(
        Event{'i', category, std::move(name), now_ns() - epochNs_, 0});
}

size_t
TraceCollector::eventCount() const
{
    size_t n = 0;
    std::lock_guard<std::mutex> lock(buffersMutex_);
    for (const auto &buf : buffers_) {
        std::lock_guard<std::mutex> bufLock(buf->mutex);
        n += buf->events.size();
    }
    return n;
}

bool
TraceCollector::writeTo(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;

    // Stream events directly instead of building a JsonValue tree:
    // a long `run --all` can hold hundreds of thousands of spans.
    std::fputs("{\"traceEvents\":[", f);
    bool first = true;
    {
        std::lock_guard<std::mutex> lock(buffersMutex_);
        for (const auto &buf : buffers_) {
            std::lock_guard<std::mutex> bufLock(buf->mutex);
            for (const Event &ev : buf->events) {
                if (!first)
                    std::fputc(',', f);
                first = false;
                // trace_event wants microseconds; keep sub-µs
                // resolution with three decimals.
                std::fprintf(
                    f,
                    "{\"ph\":\"%c\",\"cat\":\"%s\",\"name\":\"%s\","
                    "\"pid\":1,\"tid\":%d,\"ts\":%.3f",
                    ev.phase, ev.cat,
                    api::JsonValue::escape(ev.name).c_str(), buf->tid,
                    static_cast<double>(ev.tsNs) * 1e-3);
                if (ev.phase == 'X')
                    std::fprintf(f, ",\"dur\":%.3f",
                                 static_cast<double>(ev.durNs) * 1e-3);
                else
                    std::fputs(",\"s\":\"t\"", f);
                std::fputc('}', f);
            }
        }
    }
    std::fputs("]}\n", f);
    const bool ok = std::fclose(f) == 0;
    return ok;
}

} // namespace obs
} // namespace fpraker
