/**
 * @file
 * Span tracing in Chrome trace_event JSON. `fpraker run --trace-out=`
 * and `fprakerd --trace-out=` enable the collector; the resulting
 * file loads directly in chrome://tracing or Perfetto and shows the
 * experiment -> sweep unit -> phase -> burst hierarchy plus the
 * scheduler's job lifecycle.
 *
 * Determinism and overhead contract (same as obs/metrics.h): spans
 * observe, never influence — no span datum may reach a fingerprint
 * or cache key, and when tracing is disabled every call site is one
 * relaxed atomic load and a branch. Events are buffered per thread
 * (no lock on the hot path after a thread's first event) and merged
 * once at writeTo() time.
 *
 * Only complete ("X") and instant ("i") events are emitted, so the
 * output is balanced by construction — there are no dangling "B"
 * begin events to orphan when a run aborts mid-span.
 */

#ifndef FPRAKER_OBS_TRACE_H
#define FPRAKER_OBS_TRACE_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"

namespace fpraker {
namespace obs {

/** The process-wide trace collector (off until enable()d). */
class TraceCollector
{
  public:
    static TraceCollector &instance();

    /** Start collecting; timestamps become relative to this call. */
    void enable();
    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** Record a completed span (ns on the common/clock.h clock). */
    void complete(const char *category, std::string name,
                  int64_t startNs, int64_t durationNs);
    /** Record a point-in-time marker. */
    void instant(const char *category, std::string name);

    /**
     * Write {"traceEvents": [...]} to @p path, merging every thread's
     * buffer (collection stays enabled; buffers are not cleared, so a
     * later write supersedes an earlier one). Returns false on IO
     * failure. Timestamps are emitted in microseconds as the
     * trace_event format requires.
     */
    bool writeTo(const std::string &path) const;

    /** Events recorded so far (for tests). */
    size_t eventCount() const;

  private:
    TraceCollector() = default;

    struct Event
    {
        char phase;       //!< 'X' complete or 'i' instant.
        const char *cat;  //!< Static category string.
        std::string name;
        int64_t tsNs;     //!< Relative to the enable() epoch.
        int64_t durNs;    //!< 'X' only.
    };

    struct Buffer
    {
        int tid = 0;
        std::mutex mutex; //!< Guards events vs a concurrent writeTo.
        std::vector<Event> events;
    };

    Buffer &threadBuffer();

    std::atomic<bool> enabled_{false};
    int64_t epochNs_ = 0;
    mutable std::mutex buffersMutex_;
    std::vector<std::unique_ptr<Buffer>> buffers_;
};

/**
 * RAII span: times its scope and emits one complete event on
 * destruction. Constructing with the collector disabled costs one
 * atomic load; the name is only materialized when enabled, so call
 * sites may pass a cheap literal or guard expensive name building
 * behind TraceCollector::instance().enabled().
 */
class TraceSpan
{
  public:
    TraceSpan(const char *category, std::string name)
        : active_(TraceCollector::instance().enabled())
    {
        if (active_) {
            category_ = category;
            name_ = std::move(name);
            startNs_ = now_ns();
        }
    }

    ~TraceSpan()
    {
        if (active_)
            TraceCollector::instance().complete(
                category_, std::move(name_), startNs_,
                now_ns() - startNs_);
    }

    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

  private:
    bool active_;
    const char *category_ = nullptr;
    std::string name_;
    int64_t startNs_ = 0;
};

} // namespace obs
} // namespace fpraker

#endif // FPRAKER_OBS_TRACE_H
