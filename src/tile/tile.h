/**
 * @file
 * The FPRaker tile (paper section IV-C) and the baseline tile.
 *
 * A tile is an R x C grid of PEs performing an 8x8 vector-matrix
 * multiply per step: column c carries a serial-operand vector (8 values,
 * shared — with its term encoders — by every PE in the column), row r
 * carries a parallel-operand vector broadcast across the columns, and
 * PE(r, c) accumulates dot8(A_c, B_r).
 *
 * Because the B rows are broadcast, all columns consume B sets in order;
 * per-PE input buffers of depth N let a fast column run up to N sets
 * ahead of the slowest one before it stalls (inter-PE synchronization).
 * Exponent blocks are shared between vertical PE pairs (the
 * exponentFloor of the PE config).
 *
 * The tile model is cycle-accurate within columns (term-level lockstep,
 * see FPRakerColumn) and uses the bounded-run-ahead recurrence across
 * columns:
 *
 *   avail[s]    = max_c finish[c][s - N]   (B set s enters the buffers)
 *   start[c][s] = max(finish[c][s-1], avail[s])
 *   finish[c][s]= start[c][s] + cycles[c][s]
 *
 * Execution is split so the heavy part parallelizes: a column's cycle
 * counts and accumulator contents depend only on its own operand/set
 * sequence, never on the other columns' timing, so phase A simulates
 * each column's whole set batch independently (shardable across a
 * SimEngine), and phase B replays the recurrence over the recorded
 * per-set cycle counts and charges each column its broadcast-wait
 * stalls. Both phases are deterministic, so any thread count produces
 * bit-identical results to the serial seed algorithm.
 */

#ifndef FPRAKER_TILE_TILE_H
#define FPRAKER_TILE_TILE_H

#include <cstdint>
#include <memory>
#include <vector>

#include "pe/baseline_pe.h"
#include "pe/fpraker_pe.h"
#include "sim/sim_engine.h"

namespace fpraker {

/** Geometry and buffering parameters of a tile. */
struct TileConfig
{
    PeConfig pe;
    int rows = 8;        //!< PEs per column (share the column's A stream).
    int cols = 8;        //!< Columns (each with its own A stream).
    int bufferDepth = 1; //!< B-set run-ahead depth (paper: one set).

    bool operator==(const TileConfig &) const = default;
};

/**
 * One tile step: the operand vectors for a single dot-8 fragment.
 * a is indexed [c * lanes + l], b is indexed [r * lanes + l].
 */
struct TileStep
{
    std::vector<BFloat16> a;
    std::vector<BFloat16> b;
};

/**
 * Borrowed view of one tile step's operands (same indexing as
 * TileStep). The hot paths stream steps out of reused flat buffers
 * through these views instead of allocating per-step vectors.
 */
struct TileStepView
{
    const BFloat16 *a = nullptr;
    const BFloat16 *b = nullptr;
};

/** Timing summary of a tile run. */
struct TileRunResult
{
    uint64_t cycles = 0; //!< Wall-clock cycles for the step sequence.
    uint64_t steps = 0;  //!< Steps processed.
    uint64_t macs = 0;   //!< MACs covered (steps x rows x cols x lanes).
};

/**
 * Cycle-level FPRaker tile.
 */
class Tile
{
  public:
    explicit Tile(const TileConfig &cfg);

    /**
     * Process a step sequence; accumulators persist across steps so a
     * sequence forms one K-dimension traversal for the whole output
     * block. Timing state (column skew) resets per call.
     *
     * @param engine optional executor; when it carries more than one
     *        thread the per-column set batches are sharded across it
     *        (bit-identical to the serial walk).
     */
    TileRunResult run(const std::vector<TileStep> &steps,
                      SimEngine *engine = nullptr);

    /** View-based variant: @p steps[i] must have tile arity. */
    TileRunResult run(const TileStepView *steps, size_t n,
                      SimEngine *engine = nullptr);

    /** Accumulated output of PE (r, c). */
    float output(int r, int c) const;

    /** Reset all PE accumulators (new output block). */
    void resetAccumulators();

    /**
     * Restore like-new state (accumulators + statistics), so a pooled
     * tile behaves bit-identically to a freshly constructed one (all
     * remaining per-set state is rebuilt by the next run).
     */
    void
    resetForReuse()
    {
        resetAccumulators();
        clearStats();
    }

    /** Tile-aggregate PE statistics. */
    PeStats aggregateStats() const;

    /** Stats of one column (aggregated over its PEs). */
    PeStats columnStats(int c) const;

    void clearStats();

    const TileConfig &config() const { return cfg_; }

    /** MACs per fully-utilized tile step. */
    int
    macsPerStep() const
    {
        return cfg_.rows * cfg_.cols * cfg_.pe.lanes;
    }

  private:
    TileConfig cfg_;
    std::vector<std::unique_ptr<FPRakerColumn>> columns_;
    //! Shared decoded B rows: the broadcast rows are identical for
    //! every column, so phase A decodes each step's rows once and all
    //! columns consume the decoded form ([s * rows + r] when batched).
    std::vector<FPRakerColumn::DecodedBRow> decodedB_;
    std::vector<int> cycleScratch_; //!< Phase-A cycles, [c * steps + s].
    // Phase-B recurrence scratch, members so repeated run() calls
    // (one per phase burst) stay allocation-free.
    std::vector<uint64_t> finishScratch_; //!< Per-column finish time.
    std::vector<uint64_t> startScratch_;  //!< [s % depth][c], flat.
    std::vector<uint64_t> waitScratch_;   //!< Per-column stall total.
};

/**
 * The baseline tile: the same grid of bit-parallel PEs. Fully pipelined
 * — one cycle per step regardless of values.
 */
class BaselineTile
{
  public:
    explicit BaselineTile(const TileConfig &cfg);

    /**
     * Process a step sequence. When @p engine carries more than one
     * thread AND the batch holds at least kShardMinMacs of work, the
     * PE rows shard across it: the batch's operand vectors are
     * pre-decoded once (steps x (rows + cols) decodes, each sharded
     * too), then each row's PEs walk the whole batch independently —
     * bit-identical to the serial walk because a PE is only ever
     * touched by its own row's worker, in step order. Smaller batches
     * fall back to the serial walk (same bits, no fork/join or
     * whole-batch decode-buffer cost).
     */
    TileRunResult run(const std::vector<TileStep> &steps,
                      SimEngine *engine = nullptr);

    /**
     * Minimum batch MACs before sharding pays. Below this the
     * fork/join barrier plus the whole-batch decode buffers cost more
     * than the walk itself — BENCH_PR8 measured speedup_sharded 0.83x
     * on a 0.5 M-MAC batch — so smaller runs stay on the serial path.
     */
    static constexpr uint64_t kShardMinMacs = 2ull << 20;

    float output(int r, int c) const;
    void resetAccumulators();

    BaselinePeStats aggregateStats() const;
    void clearStats();

    const TileConfig &config() const { return cfg_; }

    int
    macsPerStep() const
    {
        return cfg_.rows * cfg_.cols * cfg_.pe.lanes;
    }

  private:
    TileConfig cfg_;
    std::vector<BaselinePe> pes_; //!< Row-major [r * cols + c].
};

} // namespace fpraker

#endif // FPRAKER_TILE_TILE_H
