#include "tile/tile.h"

#include <algorithm>

#include "common/logging.h"

namespace fpraker {

Tile::Tile(const TileConfig &cfg)
    : cfg_(cfg)
{
    panic_if(cfg_.rows < 1 || cfg_.cols < 1, "degenerate tile %dx%d",
             cfg_.rows, cfg_.cols);
    panic_if(cfg_.bufferDepth < 1, "buffer depth must be at least 1");
    columns_.reserve(static_cast<size_t>(cfg_.cols));
    for (int c = 0; c < cfg_.cols; ++c)
        columns_.push_back(
            std::make_unique<FPRakerColumn>(cfg_.pe, cfg_.rows));
}

TileRunResult
Tile::run(const std::vector<TileStep> &steps)
{
    const int lanes = cfg_.pe.lanes;
    const size_t n_steps = steps.size();
    const int depth = cfg_.bufferDepth;

    // finish[c] holds the completion time of column c's latest set;
    // startHistory[s % depth][c] records when column c began set s: a
    // column's buffer slot frees once the set it held moves into the
    // PE's working registers, so broadcast of set s waits on
    // max_c start[c][s - depth]. With the paper's depth of one this
    // lets a fast column run exactly one set ahead of the slowest.
    std::vector<uint64_t> finish(static_cast<size_t>(cfg_.cols), 0);
    std::vector<std::vector<uint64_t>> startHistory(
        static_cast<size_t>(depth),
        std::vector<uint64_t>(static_cast<size_t>(cfg_.cols), 0));

    TileRunResult result;
    for (size_t s = 0; s < n_steps; ++s) {
        const TileStep &step = steps[s];
        panic_if(step.a.size() !=
                     static_cast<size_t>(cfg_.cols) * lanes,
                 "step %zu: a has %zu values, expected %d", s,
                 step.a.size(), cfg_.cols * lanes);
        panic_if(step.b.size() !=
                     static_cast<size_t>(cfg_.rows) * lanes,
                 "step %zu: b has %zu values, expected %d", s,
                 step.b.size(), cfg_.rows * lanes);

        uint64_t avail = 0;
        if (s >= static_cast<size_t>(depth)) {
            const auto &old =
                startHistory[s % static_cast<size_t>(depth)];
            avail = *std::max_element(old.begin(), old.end());
        }

        auto &starts = startHistory[s % static_cast<size_t>(depth)];
        for (int c = 0; c < cfg_.cols; ++c) {
            uint64_t start = std::max(finish[static_cast<size_t>(c)],
                                      avail);
            uint64_t wait = start - finish[static_cast<size_t>(c)];
            if (wait > 0)
                columns_[static_cast<size_t>(c)]->chargeInterPeStall(
                    static_cast<int>(wait));
            int cycles = columns_[static_cast<size_t>(c)]->runSet(
                step.a.data() + static_cast<size_t>(c) * lanes,
                step.b.data(), lanes);
            starts[static_cast<size_t>(c)] = start;
            finish[static_cast<size_t>(c)] =
                start + static_cast<uint64_t>(cycles);
        }
        result.steps += 1;
        result.macs += static_cast<uint64_t>(macsPerStep());
    }
    result.cycles =
        n_steps == 0 ? 0 : *std::max_element(finish.begin(), finish.end());
    return result;
}

float
Tile::output(int r, int c) const
{
    return columns_[static_cast<size_t>(c)]->accumulator(r).total();
}

void
Tile::resetAccumulators()
{
    for (auto &col : columns_)
        col->resetAccumulators();
}

PeStats
Tile::aggregateStats() const
{
    PeStats agg;
    for (const auto &col : columns_)
        agg.merge(col->aggregateStats());
    return agg;
}

PeStats
Tile::columnStats(int c) const
{
    return columns_[static_cast<size_t>(c)]->aggregateStats();
}

void
Tile::clearStats()
{
    for (auto &col : columns_)
        col->clearStats();
}

BaselineTile::BaselineTile(const TileConfig &cfg)
    : cfg_(cfg)
{
    panic_if(cfg_.rows < 1 || cfg_.cols < 1, "degenerate tile %dx%d",
             cfg_.rows, cfg_.cols);
    pes_.assign(static_cast<size_t>(cfg_.rows) * cfg_.cols,
                BaselinePe(cfg_.pe));
}

TileRunResult
BaselineTile::run(const std::vector<TileStep> &steps)
{
    const int lanes = cfg_.pe.lanes;
    TileRunResult result;
    for (const TileStep &step : steps) {
        panic_if(step.a.size() !=
                     static_cast<size_t>(cfg_.cols) * lanes,
                 "bad a arity %zu", step.a.size());
        panic_if(step.b.size() !=
                     static_cast<size_t>(cfg_.rows) * lanes,
                 "bad b arity %zu", step.b.size());
        for (int r = 0; r < cfg_.rows; ++r) {
            for (int c = 0; c < cfg_.cols; ++c) {
                MacPair pairs[ExponentBlockResult::kMaxLanes];
                for (int l = 0; l < lanes; ++l) {
                    pairs[l] = MacPair{
                        step.a[static_cast<size_t>(c) * lanes + l],
                        step.b[static_cast<size_t>(r) * lanes + l]};
                }
                pes_[static_cast<size_t>(r) * cfg_.cols + c].processSet(
                    pairs, lanes);
            }
        }
        result.steps += 1;
        result.macs += static_cast<uint64_t>(macsPerStep());
    }
    // Fully pipelined: one cycle per step.
    result.cycles = result.steps;
    return result;
}

float
BaselineTile::output(int r, int c) const
{
    return pes_[static_cast<size_t>(r) * cfg_.cols + c].resultFloat();
}

void
BaselineTile::resetAccumulators()
{
    for (auto &pe : pes_)
        pe.reset();
}

BaselinePeStats
BaselineTile::aggregateStats() const
{
    BaselinePeStats agg;
    for (const auto &pe : pes_)
        agg.merge(pe.stats());
    return agg;
}

void
BaselineTile::clearStats()
{
    for (auto &pe : pes_)
        pe.clearStats();
}

} // namespace fpraker
