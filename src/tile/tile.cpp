#include "tile/tile.h"

#include <algorithm>
#include <bit>

#include "common/logging.h"

namespace fpraker {

Tile::Tile(const TileConfig &cfg)
    : cfg_(cfg)
{
    panic_if(cfg_.rows < 1 || cfg_.cols < 1, "degenerate tile %dx%d",
             cfg_.rows, cfg_.cols);
    panic_if(cfg_.bufferDepth < 1, "buffer depth must be at least 1");
    columns_.reserve(static_cast<size_t>(cfg_.cols));
    for (int c = 0; c < cfg_.cols; ++c)
        columns_.push_back(
            std::make_unique<FPRakerColumn>(cfg_.pe, cfg_.rows));
}

TileRunResult
Tile::run(const std::vector<TileStep> &steps, SimEngine *engine)
{
    const int lanes = cfg_.pe.lanes;
    std::vector<TileStepView> views(steps.size());
    for (size_t s = 0; s < steps.size(); ++s) {
        panic_if(steps[s].a.size() !=
                     static_cast<size_t>(cfg_.cols) * lanes,
                 "step %zu: a has %zu values, expected %d", s,
                 steps[s].a.size(), cfg_.cols * lanes);
        panic_if(steps[s].b.size() !=
                     static_cast<size_t>(cfg_.rows) * lanes,
                 "step %zu: b has %zu values, expected %d", s,
                 steps[s].b.size(), cfg_.rows * lanes);
        views[s] = TileStepView{steps[s].a.data(), steps[s].b.data()};
    }
    return run(views.data(), views.size(), engine);
}

TileRunResult
Tile::run(const TileStepView *steps, size_t n_steps, SimEngine *engine)
{
    const int lanes = cfg_.pe.lanes;
    const int depth = cfg_.bufferDepth;
    const size_t cols = static_cast<size_t>(cfg_.cols);

    TileRunResult result;
    result.steps = n_steps;
    result.macs =
        n_steps * static_cast<uint64_t>(macsPerStep());
    if (n_steps == 0)
        return result;

    // Phase A: simulate every column's whole set batch independently.
    // A column's per-set cycle counts, accumulator contents, and
    // datapath statistics depend only on its own operand sequence, so
    // the columns shard across the engine with no synchronization and
    // the recorded cycles feed the timing recurrence below. The
    // broadcast B rows are identical for every column, so each step's
    // rows decode once (instead of once per column) and the columns
    // consume the decoded form — bit-identical either way.
    cycleScratch_.resize(cols * n_steps);
    const size_t rows = static_cast<size_t>(cfg_.rows);
    if (engine && engine->threads() > 1) {
        // Sharded: pre-decode the whole batch (itself sharded over
        // the steps), then the columns shard over the engine.
        decodedB_.resize(n_steps * rows);
        engine->parallelFor(n_steps, [&](size_t s) {
            FPRakerColumn::decodeBRows(steps[s].b, lanes, cfg_.rows,
                                       lanes,
                                       decodedB_.data() + s * rows);
        });
        engine->parallelFor(cols, [&](size_t c) {
            FPRakerColumn &col = *columns_[c];
            int *cycles = cycleScratch_.data() + c * n_steps;
            for (size_t s = 0; s < n_steps; ++s) {
                col.beginSetDecoded(steps[s].a + c * lanes,
                                    decodedB_.data() + s * rows);
                cycles[s] = col.finishSet();
            }
        });
    } else if (cols <= 64) {
        // Serial fused sweep: step-major, so one step's decoded rows
        // feed every column while still hot, and the per-column settle
        // fixpoints advance together under one busy mask that drops
        // each column the cycle it settles. Columns never share
        // mutable state, so any interleaving of their stepCycle calls
        // is bit-identical to the column-major walk.
        decodedB_.resize(rows);
        for (size_t s = 0; s < n_steps; ++s) {
            FPRakerColumn::decodeBRows(steps[s].b, lanes, cfg_.rows,
                                       lanes, decodedB_.data());
            uint64_t busy = 0;
            for (size_t c = 0; c < cols; ++c) {
                columns_[c]->beginSetDecoded(steps[s].a + c * lanes,
                                             decodedB_.data());
                if (columns_[c]->busy())
                    busy |= uint64_t(1) << c;
            }
            while (busy) {
                for (uint64_t m = busy; m; m &= m - 1) {
                    const size_t c =
                        static_cast<size_t>(std::countr_zero(m));
                    FPRakerColumn &col = *columns_[c];
                    col.stepCycle();
                    if (!col.busy())
                        busy &= ~(uint64_t(1) << c);
                }
            }
            for (size_t c = 0; c < cols; ++c)
                cycleScratch_[c * n_steps + s] =
                    columns_[c]->finishSet();
        }
    } else {
        // Tiles wider than the 64-column sweep mask keep the
        // column-major walk (still sharing the decoded B rows).
        decodedB_.resize(n_steps * rows);
        for (size_t s = 0; s < n_steps; ++s)
            FPRakerColumn::decodeBRows(steps[s].b, lanes, cfg_.rows,
                                       lanes,
                                       decodedB_.data() + s * rows);
        for (size_t c = 0; c < cols; ++c) {
            FPRakerColumn &col = *columns_[c];
            int *cycles = cycleScratch_.data() + c * n_steps;
            for (size_t s = 0; s < n_steps; ++s) {
                col.beginSetDecoded(steps[s].a + c * lanes,
                                    decodedB_.data() + s * rows);
                cycles[s] = col.finishSet();
            }
        }
    }

    // Phase B: replay the bounded-run-ahead recurrence over the cycle
    // matrix. finish[c] holds the completion time of column c's latest
    // set; startHistory[s % depth][c] records when column c began set
    // s: a column's buffer slot frees once the set it held moves into
    // the PE's working registers, so broadcast of set s waits on
    // max_c start[c][s - depth]. With the paper's depth of one this
    // lets a fast column run exactly one set ahead of the slowest.
    // The scratch lives in members (assign() re-zeroes without
    // reallocating) so per-burst run() calls stay allocation-free.
    finishScratch_.assign(cols, 0);
    startScratch_.assign(static_cast<size_t>(depth) * cols, 0);
    waitScratch_.assign(cols, 0);
    uint64_t *finish = finishScratch_.data();
    uint64_t *waitTotal = waitScratch_.data();

    for (size_t s = 0; s < n_steps; ++s) {
        uint64_t *starts =
            startScratch_.data() + (s % static_cast<size_t>(depth)) * cols;
        uint64_t avail = 0;
        if (s >= static_cast<size_t>(depth))
            avail = *std::max_element(starts, starts + cols);
        for (size_t c = 0; c < cols; ++c) {
            uint64_t start = std::max(finish[c], avail);
            waitTotal[c] += start - finish[c];
            starts[c] = start;
            finish[c] = start + static_cast<uint64_t>(
                                    cycleScratch_[c * n_steps + s]);
        }
    }
    // Broadcast-wait stalls are pure statistics (they never touch the
    // accumulators), so charging each column its batch total is
    // bit-identical to the seed's per-set charges.
    for (size_t c = 0; c < cols; ++c)
        if (waitTotal[c] > 0)
            columns_[c]->chargeInterPeStall(
                static_cast<int>(waitTotal[c]));

    result.cycles = *std::max_element(finish, finish + cols);
    return result;
}

float
Tile::output(int r, int c) const
{
    return columns_[static_cast<size_t>(c)]->accumulator(r).total();
}

void
Tile::resetAccumulators()
{
    for (auto &col : columns_)
        col->resetAccumulators();
}

PeStats
Tile::aggregateStats() const
{
    PeStats agg;
    for (const auto &col : columns_)
        agg.merge(col->aggregateStats());
    return agg;
}

PeStats
Tile::columnStats(int c) const
{
    return columns_[static_cast<size_t>(c)]->aggregateStats();
}

void
Tile::clearStats()
{
    for (auto &col : columns_)
        col->clearStats();
}

BaselineTile::BaselineTile(const TileConfig &cfg)
    : cfg_(cfg)
{
    panic_if(cfg_.rows < 1 || cfg_.cols < 1, "degenerate tile %dx%d",
             cfg_.rows, cfg_.cols);
    pes_.assign(static_cast<size_t>(cfg_.rows) * cfg_.cols,
                BaselinePe(cfg_.pe));
}

TileRunResult
BaselineTile::run(const std::vector<TileStep> &steps, SimEngine *engine)
{
    const int lanes = cfg_.pe.lanes;
    const size_t rows = static_cast<size_t>(cfg_.rows);
    const size_t cols = static_cast<size_t>(cfg_.cols);
    TileRunResult result;
    result.steps = steps.size();
    result.macs = steps.size() * static_cast<uint64_t>(macsPerStep());
    // Fully pipelined: one cycle per step.
    result.cycles = result.steps;
    if (steps.empty())
        return result;

    for (const TileStep &step : steps) {
        panic_if(step.a.size() != cols * lanes, "bad a arity %zu",
                 step.a.size());
        panic_if(step.b.size() != rows * lanes, "bad b arity %zu",
                 step.b.size());
    }

    // Batched row walk: each A column vector is shared by every PE of
    // its column and each B row vector by every PE of its row, so the
    // operand decode (finite check, sign/exponent/significand split)
    // runs once per vector per step instead of once per PE — the grid
    // then consumes the rows x cols cross product of decoded vectors.
    //
    // With a multi-thread engine the whole batch pre-decodes up front
    // (itself sharded over the steps) and then the PE rows shard: a
    // PE's accumulator/stats are only touched by its own row's worker,
    // in step order, so the result is bit-identical to the serial
    // walk. Serially, decode stays interleaved per step (better cache
    // reuse than a whole-batch decode pass).
    // Sharding only pays once the batch amortizes the fork/join
    // barrier and the whole-batch decode buffers; below kShardMinMacs
    // the serial walk is faster (BENCH_PR8: 0.83x on 0.5 M MACs), so
    // small batches keep the interleaved per-step decode.
    const bool shard_rows =
        engine && engine->threads() > 1 && rows > 1 &&
        result.macs >= kShardMinMacs;
    if (shard_rows) {
        std::vector<DecodedOperands> da(steps.size() * cols);
        std::vector<DecodedOperands> db(steps.size() * rows);
        engine->parallelFor(steps.size(), [&](size_t s) {
            const TileStep &step = steps[s];
            for (size_t c = 0; c < cols; ++c)
                BaselinePe::decode(step.a.data() + c * lanes, lanes,
                                   da[s * cols + c]);
            for (size_t r = 0; r < rows; ++r)
                BaselinePe::decode(step.b.data() + r * lanes, lanes,
                                   db[s * rows + r]);
        });
        engine->parallelFor(rows, [&](size_t r) {
            BaselinePe *row_pes = pes_.data() + r * cols;
            for (size_t s = 0; s < steps.size(); ++s)
                for (size_t c = 0; c < cols; ++c)
                    row_pes[c].processDecoded(da[s * cols + c],
                                              db[s * rows + r]);
        });
        return result;
    }

    std::vector<DecodedOperands> da(cols);
    std::vector<DecodedOperands> db(rows);
    for (const TileStep &step : steps) {
        for (size_t c = 0; c < cols; ++c)
            BaselinePe::decode(step.a.data() + c * lanes, lanes,
                               da[c]);
        for (size_t r = 0; r < rows; ++r)
            BaselinePe::decode(step.b.data() + r * lanes, lanes,
                               db[r]);
        for (size_t r = 0; r < rows; ++r)
            for (size_t c = 0; c < cols; ++c)
                pes_[r * cols + c].processDecoded(da[c], db[r]);
    }
    return result;
}

float
BaselineTile::output(int r, int c) const
{
    return pes_[static_cast<size_t>(r) * cfg_.cols + c].resultFloat();
}

void
BaselineTile::resetAccumulators()
{
    for (auto &pe : pes_)
        pe.reset();
}

BaselinePeStats
BaselineTile::aggregateStats() const
{
    BaselinePeStats agg;
    for (const auto &pe : pes_)
        agg.merge(pe.stats());
    return agg;
}

void
BaselineTile::clearStats()
{
    for (auto &pe : pes_)
        pe.clearStats();
}

} // namespace fpraker
