/**
 * @file
 * On-chip transposer unit (paper section IV-E).
 *
 * The backward pass consumes the weight and activation-gradient arrays
 * in transposed order relative to the forward pass. Rather than
 * duplicating tensors, the accelerator re-orders data on chip: a
 * transposer reads 8 blocks of 8 bfloat16 values (8-value-wide reads,
 * written as rows of an internal 8x8 buffer) and streams them back out
 * as columns, effectively transposing each 8x8 value block.
 */

#ifndef FPRAKER_MEMORY_TRANSPOSER_H
#define FPRAKER_MEMORY_TRANSPOSER_H

#include <cstdint>

#include "numeric/bfloat16.h"

namespace fpraker {

/** Functional + activity model of one 8x8 transposer. */
class Transposer
{
  public:
    static constexpr int kDim = 8;

    /** Load row @p r of the internal buffer (8 values). */
    void loadRow(int r, const BFloat16 *values);

    /** Load all 8 rows from a row-major block with stride @p stride. */
    void loadBlock(const BFloat16 *block, int stride);

    /** Read column @p c (8 values) — the transposed view. */
    void readColumn(int c, BFloat16 *out) const;

    /** Transpose a full 8x8 block: out[j][i] = in[i][j]. */
    static void transposeBlock(const BFloat16 *in, int in_stride,
                               BFloat16 *out, int out_stride);

    uint64_t rowLoads() const { return rowLoads_; }
    uint64_t columnReads() const { return columnReads_; }

  private:
    BFloat16 buffer_[kDim][kDim] = {};
    uint64_t rowLoads_ = 0;
    mutable uint64_t columnReads_ = 0;
};

} // namespace fpraker

#endif // FPRAKER_MEMORY_TRANSPOSER_H
