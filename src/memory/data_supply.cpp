#include "memory/data_supply.h"

#include "common/bitutil.h"
#include "common/logging.h"

namespace fpraker {

ContainerMatrix::ContainerMatrix(int rows, int cols)
    : rows_(rows), cols_(cols), store_(cols, rows, 1)
{
    // The store is indexed (channel, row, column); matrix columns ride
    // the channel axis so channel bursts fetch along a matrix row.
}

void
ContainerMatrix::fillFromSlab(const BFloat16 *values, size_t n)
{
    panic_if(n != static_cast<size_t>(rows_) * cols_,
             "slab holds %zu values for a %dx%d matrix", n, rows_,
             cols_);
    for (int r = 0; r < rows_; ++r)
        for (int c = 0; c < cols_; ++c)
            set(r, c, values[static_cast<size_t>(r) * cols_ + c]);
}

float
ContainerMatrix::at(int r, int c) const
{
    return store_.at(c, r, 0).toFloat();
}

BFloat16
ContainerMatrix::raw(int r, int c) const
{
    return store_.at(c, r, 0);
}

void
ContainerMatrix::set(int r, int c, BFloat16 v)
{
    store_.set(c, r, 0, v);
}

GemmSupply::GemmSupply(const ContainerMatrix &a, const ContainerMatrix &b,
                       bool transpose_a)
    : a_(a), b_(b), transposeA_(transpose_a)
{
    panic_if(k() != b_.rows(),
             "GEMM shape mismatch: A gives K=%d, B gives K=%d", k(),
             b_.rows());
}

int
GemmSupply::m() const
{
    return transposeA_ ? a_.cols() : a_.rows();
}

int
GemmSupply::k() const
{
    return transposeA_ ? a_.rows() : a_.cols();
}

float
GemmSupply::aAt(int r, int c) const
{
    return transposeA_ ? a_.at(c, r) : a_.at(r, c);
}

std::vector<TileStep>
GemmSupply::stepsForBlock(int m0, int n0, const TileConfig &cfg)
{
    const int lanes = cfg.pe.lanes;
    const int k_total = k();
    std::vector<TileStep> steps;
    steps.reserve(static_cast<size_t>(divCeil(k_total, lanes)));

    for (int k0 = 0; k0 < k_total; k0 += lanes) {
        TileStep step;
        step.a.assign(static_cast<size_t>(cfg.cols) * lanes, BFloat16());
        step.b.assign(static_cast<size_t>(cfg.rows) * lanes, BFloat16());

        // Tile column c carries A row (m0 + c): an 8-value burst along
        // the K axis. When A is consumed transposed, the burst walks a
        // stored column instead, which the hardware serves through an
        // 8x8 transposer (one block load per 8x8 region touched).
        for (int c = 0; c < cfg.cols; ++c) {
            int row = m0 + c;
            if (row >= m())
                break;
            for (int l = 0; l < lanes; ++l) {
                int kk = k0 + l;
                if (kk >= k_total)
                    break;
                step.a[static_cast<size_t>(c) * lanes + l] =
                    transposeA_ ? a_.raw(kk, row) : a_.raw(row, kk);
            }
            stats_.gbAccesses += 1;
            if (transposeA_ && c % Transposer::kDim == 0)
                stats_.transposerLoads += 1;
        }

        // Tile row r carries B column (n0 + r) over the same K burst.
        for (int r = 0; r < cfg.rows; ++r) {
            int col = n0 + r;
            if (col >= n())
                break;
            for (int l = 0; l < lanes; ++l) {
                int kk = k0 + l;
                if (kk >= k_total)
                    break;
                step.b[static_cast<size_t>(r) * lanes + l] =
                    b_.raw(kk, col);
            }
            stats_.gbAccesses += 1;
        }
        steps.push_back(std::move(step));
    }
    return steps;
}

double
GemmSupply::reference(int r, int c) const
{
    double sum = 0.0;
    for (int kk = 0; kk < k(); ++kk)
        sum += static_cast<double>(aAt(r, kk)) *
               static_cast<double>(b_.at(kk, c));
    return sum;
}

} // namespace fpraker
