#include "memory/container.h"

#include "common/bitutil.h"
#include "common/logging.h"

namespace fpraker {

ContainerStore::ContainerStore(int channels, int rows, int cols)
    : channels_(channels), rows_(rows), cols_(cols),
      chanTiles_(divCeil(channels, ContainerGeometry::kChannels)),
      colTiles_(divCeil(cols, ContainerGeometry::kColumns))
{
    panic_if(channels < 1 || rows < 1 || cols < 1,
             "degenerate tensor %dx%dx%d", channels, rows, cols);
    data_.assign(static_cast<size_t>(chanTiles_) * rows_ * colTiles_ *
                     ContainerGeometry::kValues,
                 BFloat16());
}

size_t
ContainerStore::containerOf(int c, int r, int k) const
{
    panic_if(c < 0 || c >= channels_ || r < 0 || r >= rows_ || k < 0 ||
                 k >= cols_,
             "coordinate (%d,%d,%d) out of bounds", c, r, k);
    int ct = c / ContainerGeometry::kChannels;
    int kt = k / ContainerGeometry::kColumns;
    // Containers are stored in channel, column, row order: channel tiles
    // vary fastest, then column tiles, then rows.
    return static_cast<size_t>(r) * colTiles_ * chanTiles_ +
           static_cast<size_t>(kt) * chanTiles_ + static_cast<size_t>(ct);
}

int
ContainerStore::offsetInContainer(int c, int /*r*/, int k) const
{
    int co = c % ContainerGeometry::kChannels;
    int ko = k % ContainerGeometry::kColumns;
    // Channel-major inside the container so tiles can fetch 8
    // consecutive channels in one access.
    return ko * ContainerGeometry::kChannels + co;
}

size_t
ContainerStore::flatIndex(int c, int r, int k) const
{
    return containerOf(c, r, k) * ContainerGeometry::kValues +
           static_cast<size_t>(offsetInContainer(c, r, k));
}

BFloat16
ContainerStore::at(int c, int r, int k) const
{
    return data_[flatIndex(c, r, k)];
}

void
ContainerStore::set(int c, int r, int k, BFloat16 v)
{
    data_[flatIndex(c, r, k)] = v;
}

void
ContainerStore::readBurst8(int c, int r, int k, BFloat16 *out) const
{
    for (int i = 0; i < 8; ++i) {
        int ci = c + i;
        out[i] = (ci < channels_) ? at(ci, r, k) : BFloat16();
    }
}

size_t
ContainerStore::numContainers() const
{
    return static_cast<size_t>(chanTiles_) * rows_ * colTiles_;
}

size_t
ContainerStore::paddedBytes() const
{
    return numContainers() * ContainerGeometry::kBytes;
}

size_t
ContainerStore::logicalBytes() const
{
    return static_cast<size_t>(channels_) * rows_ * cols_ * 2;
}

double
ContainerStore::paddingOverhead() const
{
    return static_cast<double>(paddedBytes()) /
               static_cast<double>(logicalBytes()) -
           1.0;
}

} // namespace fpraker
