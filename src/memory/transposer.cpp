#include "memory/transposer.h"

#include "common/logging.h"

namespace fpraker {

void
Transposer::loadRow(int r, const BFloat16 *values)
{
    panic_if(r < 0 || r >= kDim, "row %d out of range", r);
    for (int c = 0; c < kDim; ++c)
        buffer_[r][c] = values[c];
    ++rowLoads_;
}

void
Transposer::loadBlock(const BFloat16 *block, int stride)
{
    for (int r = 0; r < kDim; ++r)
        loadRow(r, block + static_cast<size_t>(r) * stride);
}

void
Transposer::readColumn(int c, BFloat16 *out) const
{
    panic_if(c < 0 || c >= kDim, "column %d out of range", c);
    for (int r = 0; r < kDim; ++r)
        out[r] = buffer_[r][c];
    ++columnReads_;
}

void
Transposer::transposeBlock(const BFloat16 *in, int in_stride,
                           BFloat16 *out, int out_stride)
{
    for (int r = 0; r < kDim; ++r)
        for (int c = 0; c < kDim; ++c)
            out[static_cast<size_t>(c) * out_stride + r] =
                in[static_cast<size_t>(r) * in_stride + c];
}

} // namespace fpraker
