/**
 * @file
 * On-chip global buffer (SRAM) model.
 *
 * Table II: the global buffer is 4 MB x 9 banks, split across
 * activation, weight, and gradient memories, plus 2 KB scratchpads per
 * tile. The odd bank count reduces conflicts for strided layers. The
 * model tracks access counts per bank (for energy) and serializes
 * same-cycle conflicts (for a bandwidth-derating statistic).
 */

#ifndef FPRAKER_MEMORY_GLOBAL_BUFFER_H
#define FPRAKER_MEMORY_GLOBAL_BUFFER_H

#include <cstdint>
#include <vector>

namespace fpraker {

/** Global-buffer parameters. */
struct GlobalBufferConfig
{
    int banks = 9;
    uint64_t bytesPerBank = 4ull << 20; //!< 4 MB per bank (Table II).
    int accessBytes = 16;               //!< 8 bfloat16 values per access.
};

/** Access statistics for the SRAM energy roll-up. */
struct GlobalBufferStats
{
    uint64_t reads = 0;
    uint64_t writes = 0;
    uint64_t readBytes = 0;
    uint64_t writeBytes = 0;
    uint64_t bankConflicts = 0;

    void
    merge(const GlobalBufferStats &o)
    {
        reads += o.reads;
        writes += o.writes;
        readBytes += o.readBytes;
        writeBytes += o.writeBytes;
        bankConflicts += o.bankConflicts;
    }
};

/**
 * Behavioural model: address-to-bank mapping, access accounting, and a
 * per-cycle conflict check for batched access groups.
 */
class GlobalBuffer
{
  public:
    explicit GlobalBuffer(GlobalBufferConfig cfg = {});

    /** Bank servicing byte address @p addr (interleaved at access size). */
    int bankOf(uint64_t addr) const;

    /** Record one read/write of @p bytes at @p addr. */
    void read(uint64_t addr, uint64_t bytes);
    void write(uint64_t addr, uint64_t bytes);

    /**
     * Issue a group of same-cycle read addresses; returns the cycles the
     * group needs (max accesses landing on one bank) and records
     * conflicts beyond the first access per bank.
     */
    int accessGroup(const std::vector<uint64_t> &addrs);

    uint64_t capacityBytes() const;

    const GlobalBufferStats &stats() const { return stats_; }
    void clearStats() { stats_ = GlobalBufferStats{}; }

    const GlobalBufferConfig &config() const { return cfg_; }

  private:
    GlobalBufferConfig cfg_;
    GlobalBufferStats stats_;
};

} // namespace fpraker

#endif // FPRAKER_MEMORY_GLOBAL_BUFFER_H
