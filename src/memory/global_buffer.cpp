#include "memory/global_buffer.h"

#include <algorithm>

#include "common/logging.h"

namespace fpraker {

GlobalBuffer::GlobalBuffer(GlobalBufferConfig cfg)
    : cfg_(cfg)
{
    panic_if(cfg_.banks < 1, "need at least one bank");
    panic_if(cfg_.accessBytes < 1, "bad access size");
}

int
GlobalBuffer::bankOf(uint64_t addr) const
{
    // Interleave at access granularity; the odd bank count (9) spreads
    // power-of-two strides across banks.
    return static_cast<int>((addr / static_cast<uint64_t>(cfg_.accessBytes)) %
                            static_cast<uint64_t>(cfg_.banks));
}

void
GlobalBuffer::read(uint64_t addr, uint64_t bytes)
{
    (void)addr;
    stats_.reads += 1;
    stats_.readBytes += bytes;
}

void
GlobalBuffer::write(uint64_t addr, uint64_t bytes)
{
    (void)addr;
    stats_.writes += 1;
    stats_.writeBytes += bytes;
}

int
GlobalBuffer::accessGroup(const std::vector<uint64_t> &addrs)
{
    std::vector<int> per_bank(static_cast<size_t>(cfg_.banks), 0);
    for (uint64_t a : addrs) {
        per_bank[static_cast<size_t>(bankOf(a))] += 1;
        read(a, static_cast<uint64_t>(cfg_.accessBytes));
    }
    int worst = 0;
    for (int n : per_bank) {
        worst = std::max(worst, n);
        if (n > 1)
            stats_.bankConflicts += static_cast<uint64_t>(n - 1);
    }
    return std::max(worst, 1);
}

uint64_t
GlobalBuffer::capacityBytes() const
{
    return static_cast<uint64_t>(cfg_.banks) * cfg_.bytesPerBank;
}

} // namespace fpraker
