/**
 * @file
 * Off-chip container layout (paper section IV-E).
 *
 * Tensors are stored in memory as "square" containers of 32x32 bfloat16
 * values — 2 KB, matching typical DDR4 row sizes for high-bandwidth
 * streaming. A container holds coordinates (c, r, k) .. (c+31, r, k+31)
 * — 32 channels x 1 row x 32 columns — with c and k divisible by 32 and
 * padding as necessary; containers are ordered channel, column, row.
 */

#ifndef FPRAKER_MEMORY_CONTAINER_H
#define FPRAKER_MEMORY_CONTAINER_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "numeric/bfloat16.h"

namespace fpraker {

/** Container geometry constants. */
struct ContainerGeometry
{
    static constexpr int kChannels = 32; //!< Channels per container.
    static constexpr int kColumns = 32;  //!< Columns per container.
    static constexpr int kValues = kChannels * kColumns;
    static constexpr int kBytes = kValues * 2;
};

/**
 * A (channels x rows x cols) bfloat16 tensor stored in container order.
 * Provides logical indexing, container addressing, and padding
 * accounting; the DRAM model uses container addresses to credit
 * row-buffer locality.
 */
class ContainerStore
{
  public:
    ContainerStore(int channels, int rows, int cols);

    /** Logical tensor value at (c, r, k); padding reads as zero. */
    BFloat16 at(int c, int r, int k) const;
    void set(int c, int r, int k, BFloat16 v);

    /** Index of the container holding (c, r, k). */
    size_t containerOf(int c, int r, int k) const;

    /** Flat offset of (c, r, k) inside its container [0, 1024). */
    int offsetInContainer(int c, int r, int k) const;

    /**
     * Read 8 consecutive channel-major values starting at (c, r, k)
     * (the tiles' native 8-value access). Crossing the container's
     * channel edge pads with zeros.
     */
    void readBurst8(int c, int r, int k, BFloat16 *out) const;

    int channels() const { return channels_; }
    int rows() const { return rows_; }
    int cols() const { return cols_; }

    size_t numContainers() const;
    /** Bytes occupied including padding. */
    size_t paddedBytes() const;
    /** Bytes of live values only. */
    size_t logicalBytes() const;
    /** Padding overhead fraction (padded / logical - 1). */
    double paddingOverhead() const;

  private:
    size_t flatIndex(int c, int r, int k) const;

    int channels_, rows_, cols_;
    int chanTiles_, colTiles_;
    std::vector<BFloat16> data_;
};

} // namespace fpraker

#endif // FPRAKER_MEMORY_CONTAINER_H
