/**
 * @file
 * Off-chip DRAM timing and energy model.
 *
 * Table II: 16 GB of 4-channel LPDDR4-3200. The model converts byte
 * traffic into core cycles at the configured core clock (600 MHz per the
 * paper's synthesis) with a streaming-efficiency factor: container
 * reads (2 KB, matching the DRAM row size) stream near peak bandwidth,
 * while scattered accesses are derated. Energy follows a pJ/bit figure
 * in the LPDDR4 range (Micron power-calculator territory).
 */

#ifndef FPRAKER_MEMORY_DRAM_H
#define FPRAKER_MEMORY_DRAM_H

#include <cstdint>

namespace fpraker {

/** DRAM and interface parameters. */
struct DramConfig
{
    int channels = 4;
    double transfersPerSec = 3200e6; //!< LPDDR4-3200.
    int bytesPerTransfer = 2;        //!< x16 channel.
    double coreClockHz = 600e6;      //!< Accelerator clock.
    double streamEfficiency = 0.90;  //!< Container-sized sequential reads.
    double randomEfficiency = 0.40;  //!< Scattered accesses.
    double energyPerBitPj = 10.0;    //!< LPDDR4 access+IO energy.
};

/** Byte-traffic accounting. */
struct DramStats
{
    uint64_t readBytes = 0;
    uint64_t writeBytes = 0;

    void
    merge(const DramStats &o)
    {
        readBytes += o.readBytes;
        writeBytes += o.writeBytes;
    }
};

/** Bandwidth/energy model with sequential/random access classes. */
class DramModel
{
  public:
    explicit DramModel(DramConfig cfg = {});

    /** Peak bytes per core cycle across all channels. */
    double peakBytesPerCycle() const;

    /** Effective bytes per cycle for streaming (container) traffic. */
    double streamBytesPerCycle() const;

    /** Core cycles to move @p bytes sequentially / randomly. */
    uint64_t cyclesForStream(uint64_t bytes) const;
    uint64_t cyclesForRandom(uint64_t bytes) const;

    /** Access energy in picojoules for @p bytes. */
    double energyPj(uint64_t bytes) const;

    /** Record traffic. */
    void recordRead(uint64_t bytes) { stats_.readBytes += bytes; }
    void recordWrite(uint64_t bytes) { stats_.writeBytes += bytes; }

    const DramStats &stats() const { return stats_; }
    void clearStats() { stats_ = DramStats{}; }

    const DramConfig &config() const { return cfg_; }

  private:
    DramConfig cfg_;
    DramStats stats_;
};

} // namespace fpraker

#endif // FPRAKER_MEMORY_DRAM_H
