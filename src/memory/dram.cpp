#include "memory/dram.h"

#include <cmath>

#include "common/logging.h"

namespace fpraker {

DramModel::DramModel(DramConfig cfg)
    : cfg_(cfg)
{
    panic_if(cfg_.channels < 1, "need at least one channel");
    panic_if(cfg_.coreClockHz <= 0, "bad core clock");
}

double
DramModel::peakBytesPerCycle() const
{
    double bytes_per_sec = static_cast<double>(cfg_.channels) *
                           cfg_.transfersPerSec * cfg_.bytesPerTransfer;
    return bytes_per_sec / cfg_.coreClockHz;
}

double
DramModel::streamBytesPerCycle() const
{
    return peakBytesPerCycle() * cfg_.streamEfficiency;
}

uint64_t
DramModel::cyclesForStream(uint64_t bytes) const
{
    return static_cast<uint64_t>(
        std::ceil(static_cast<double>(bytes) / streamBytesPerCycle()));
}

uint64_t
DramModel::cyclesForRandom(uint64_t bytes) const
{
    return static_cast<uint64_t>(std::ceil(
        static_cast<double>(bytes) /
        (peakBytesPerCycle() * cfg_.randomEfficiency)));
}

double
DramModel::energyPj(uint64_t bytes) const
{
    return static_cast<double>(bytes) * 8.0 * cfg_.energyPerBitPj;
}

} // namespace fpraker
