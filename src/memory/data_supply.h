/**
 * @file
 * Data supply for the three training computations (paper section IV-E).
 *
 * Training touches the same three arrays (I, W, G) in different orders
 * per operation; rather than re-packing tensors, the accelerator stores
 * them once in 32x32 containers and re-orders on chip: tiles read 8
 * consecutive bfloat16 values per access, and the operations that need
 * the transpose of an array route their reads through 8x8 transposer
 * units.
 *
 * GemmSupply drives one Z = A x B GEMM from container-stored operands,
 * producing the TileStep stream for one tile's output block and
 * accounting the global-buffer and transposer activity — making the
 * memory path functionally testable end to end against a reference
 * matrix multiplication.
 */

#ifndef FPRAKER_MEMORY_DATA_SUPPLY_H
#define FPRAKER_MEMORY_DATA_SUPPLY_H

#include <cstdint>
#include <vector>

#include "memory/container.h"
#include "memory/global_buffer.h"
#include "memory/transposer.h"
#include "tile/tile.h"

namespace fpraker {

/**
 * A 2D matrix view stored in container order: rows map to the
 * container row/column plane, columns to channels (so an 8-value
 * channel burst fetches 8 consecutive matrix columns).
 */
class ContainerMatrix
{
  public:
    /** rows x cols matrix (cols along the container channel axis). */
    ContainerMatrix(int rows, int cols);

    /**
     * Fill row-major from a value slab (the layout slab_ops and the
     * SlabSupply seam produce), so container storage can be loaded
     * straight from a generator stream or a recorded workload trace.
     * @p n must equal rows * cols.
     */
    void fillFromSlab(const BFloat16 *values, size_t n);

    float at(int r, int c) const;
    void set(int r, int c, BFloat16 v);
    BFloat16 raw(int r, int c) const;

    int rows() const { return rows_; }
    int cols() const { return cols_; }

    const ContainerStore &store() const { return store_; }

  private:
    int rows_, cols_;
    ContainerStore store_;
};

/** Activity counters of one GEMM's data supply. */
struct SupplyStats
{
    uint64_t gbAccesses = 0;      //!< 8-value global-buffer reads.
    uint64_t transposerLoads = 0; //!< 8x8 blocks pushed through.

    void
    merge(const SupplyStats &o)
    {
        gbAccesses += o.gbAccesses;
        transposerLoads += o.transposerLoads;
    }
};

/**
 * Feeds a tile with the steps of Z[M,N] = A[M,K] x B[K,N], where A
 * supplies the serial operand (tile columns hold 8 rows of A) and B
 * the parallel one (tile rows hold 8 columns of B).
 *
 * @param transpose_a read A in transposed order (A is stored [K, M]
 *        and served through the transposer), as the backward pass
 *        requires for the weight and activation-gradient arrays.
 */
class GemmSupply
{
  public:
    GemmSupply(const ContainerMatrix &a, const ContainerMatrix &b,
               bool transpose_a = false);

    int m() const;
    int n() const { return b_.cols(); }
    int k() const;

    /**
     * Build the step stream for the output block whose rows start at
     * @p m0 (8 tile columns) and columns at @p n0 (8 tile rows),
     * covering the full K dimension in fragments of 8.
     */
    std::vector<TileStep> stepsForBlock(int m0, int n0,
                                        const TileConfig &cfg);

    /** Reference output value Z[r][c] in FP64. */
    double reference(int r, int c) const;

    const SupplyStats &stats() const { return stats_; }

  private:
    float aAt(int r, int c) const;

    const ContainerMatrix &a_;
    const ContainerMatrix &b_;
    bool transposeA_;
    SupplyStats stats_;
};

} // namespace fpraker

#endif // FPRAKER_MEMORY_DATA_SUPPLY_H
