/**
 * @file
 * Exponent base-delta compression (paper section IV-D, Figs. 9/10).
 *
 * Training values are spatially correlated: consecutive values along the
 * channel (or H) dimension have similar magnitudes and hence similar
 * exponents. FPRaker exploits this off-chip with a base-delta scheme
 * (after Pekhimenko et al.): values are blocked into groups of 32; the
 * first value's 8-bit exponent field is the group base, and the
 * remaining exponents are stored as signed deltas whose bit-width is
 * chosen per group (3-bit metadata). Signs and mantissas are stored
 * verbatim — only the exponent footprint shrinks, which is what Fig. 10
 * reports.
 *
 * Zero values would wreck the delta range (their exponent field is 0,
 * ~127 below typical values), so the codec exploits the no-denormal
 * rule — exponent field 0 always means zero — and reserves the most
 * negative delta codeword (-2^(w-1)) as the "zero value" marker. The
 * group base is the first non-zero value's exponent; deltas of normal
 * values use the remaining two's-complement range.
 */

#ifndef FPRAKER_COMPRESS_BASE_DELTA_H
#define FPRAKER_COMPRESS_BASE_DELTA_H

#include <cstddef>
#include <cstdint>
#include <vector>

#include "numeric/bfloat16.h"

namespace fpraker {

/** Footprint accounting for a compressed stream. */
struct BdcResult
{
    uint64_t values = 0;
    uint64_t groups = 0;
    uint64_t exponentBitsRaw = 0;        //!< 8 bits per value.
    uint64_t exponentBitsCompressed = 0; //!< base + metadata + deltas.
    uint64_t totalBitsRaw = 0;           //!< 16 bits per value.
    uint64_t totalBitsCompressed = 0;

    /** Fig. 10's metric: compressed / raw exponent footprint. */
    double
    exponentFootprint() const
    {
        return exponentBitsRaw == 0
                   ? 1.0
                   : static_cast<double>(exponentBitsCompressed) /
                         static_cast<double>(exponentBitsRaw);
    }

    /** Whole-value compression ratio (compressed / raw). */
    double
    totalFootprint() const
    {
        return totalBitsRaw == 0
                   ? 1.0
                   : static_cast<double>(totalBitsCompressed) /
                         static_cast<double>(totalBitsRaw);
    }

    void
    merge(const BdcResult &o)
    {
        values += o.values;
        groups += o.groups;
        exponentBitsRaw += o.exponentBitsRaw;
        exponentBitsCompressed += o.exponentBitsCompressed;
        totalBitsRaw += o.totalBitsRaw;
        totalBitsCompressed += o.totalBitsCompressed;
    }
};

/**
 * Encoder/decoder and footprint analyzer for the exponent base-delta
 * scheme.
 */
class BaseDeltaCodec
{
  public:
    /** @param group_size values per group (the paper uses 32). */
    explicit BaseDeltaCodec(int group_size = 32);

    /** Per-group delta width for a group of raw exponent fields. */
    int deltaBitsForGroup(const uint8_t *exponents, int n) const;

    /** Footprint accounting without materializing the bitstream. */
    BdcResult analyze(const std::vector<BFloat16> &values) const;

    /** Encode into a packed byte stream (header + deltas + mantissas). */
    std::vector<uint8_t> encode(const std::vector<BFloat16> &values) const;

    /**
     * Decode @p count values from a stream produced by encode().
     * Round-trips exactly.
     */
    std::vector<BFloat16> decode(const std::vector<uint8_t> &stream,
                                 size_t count) const;

    int groupSize() const { return groupSize_; }

  private:
    int groupSize_;
};

} // namespace fpraker

#endif // FPRAKER_COMPRESS_BASE_DELTA_H
